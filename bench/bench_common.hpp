#pragma once
// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench accepts:
//   --scale <f>   fraction of the paper's dataset sizes (default 0.1)
//   --seed <s>    dataset seed (default 42)
//   --full        shorthand for --scale 1.0
// Scaled runs also scale the KV pool by the same fraction so the
// data-to-cache ratio (the regime that makes reordering matter) is
// preserved; see ExecConfig::scale_kv_pool.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/benchmark_suite.hpp"
#include "data/generators.hpp"
#include "query/executor.hpp"
#include "query/metrics.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

namespace llmq::bench {

struct BenchOptions {
  double scale = 0.1;
  std::uint64_t seed = 42;

  std::size_t rows_for(const std::string& dataset_key) const {
    const auto full = data::paper_rows(dataset_key);
    const auto n = static_cast<std::size_t>(static_cast<double>(full) * scale);
    return std::max<std::size_t>(50, std::min(n, full));
  }

  double kv_fraction(const std::string& dataset_key) const {
    return static_cast<double>(rows_for(dataset_key)) /
           static_cast<double>(data::paper_rows(dataset_key));
  }
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      opt.scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opt.scale = 1.0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale f] [--seed s] [--full]\n", argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

inline data::Dataset load(const std::string& key, const BenchOptions& opt) {
  data::GenOptions g;
  g.n_rows = opt.rows_for(key);
  g.seed = opt.seed;
  return data::generate_dataset(key, g);
}

inline void print_header(const char* title, const BenchOptions& opt) {
  std::printf("=== %s ===\n", title);
  std::printf("(synthetic reproduction; scale=%.3g of paper dataset sizes, "
              "seed=%llu — compare shapes/ratios, not absolute values)\n\n",
              opt.scale, static_cast<unsigned long long>(opt.seed));
}

/// Format simulated seconds for table cells.
inline std::string secs(double s) { return util::fmt(s, 1); }
inline std::string pct(double f) { return util::fmt(100.0 * f, 1) + "%"; }

}  // namespace llmq::bench
