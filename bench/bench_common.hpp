#pragma once
// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench accepts:
//   --scale <f>   fraction of the paper's dataset sizes (default 0.1)
//   --seed <s>    dataset seed (default 42)
//   --full        shorthand for --scale 1.0
//   --json <path> also write results as machine-readable JSON (the
//                 BENCH_*.json perf-trajectory format; see JsonReport)
// Scaled runs also scale the KV pool by the same fraction so the
// data-to-cache ratio (the regime that makes reordering matter) is
// preserved; see ExecConfig::scale_kv_pool.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "data/benchmark_suite.hpp"
#include "data/generators.hpp"
#include "query/executor.hpp"
#include "query/metrics.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

namespace llmq::bench {

struct BenchOptions {
  double scale = 0.1;
  std::uint64_t seed = 42;
  std::string json_path;   // empty = no JSON output
  std::string trace_path;  // empty = tracing disabled (--trace <path>)

  std::size_t rows_for(const std::string& dataset_key) const {
    const auto full = data::paper_rows(dataset_key);
    const auto n = static_cast<std::size_t>(static_cast<double>(full) * scale);
    return std::max<std::size_t>(50, std::min(n, full));
  }

  double kv_fraction(const std::string& dataset_key) const {
    return static_cast<double>(rows_for(dataset_key)) /
           static_cast<double>(data::paper_rows(dataset_key));
  }
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      opt.scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opt.scale = 1.0;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--scale f] [--seed s] [--full] [--json path] "
          "[--trace path]\n"
          "  --trace writes a Perfetto trace of one representative run\n"
          "  (load it at ui.perfetto.dev; <path>.jsonl gets the raw events)\n",
          argv[0]);
      std::exit(0);
    }
  }
  return opt;
}

/// One key of a JSON result record: either numeric or string.
struct JsonField {
  std::string key;
  bool is_number = false;
  double num = 0.0;
  std::string str;
  JsonField(std::string k, double v)
      : key(std::move(k)), is_number(true), num(v) {}
  JsonField(std::string k, int v)
      : key(std::move(k)), is_number(true), num(v) {}
  JsonField(std::string k, std::size_t v)
      : key(std::move(k)), is_number(true), num(static_cast<double>(v)) {}
  JsonField(std::string k, std::string v)
      : key(std::move(k)), str(std::move(v)) {}
  JsonField(std::string k, const char* v) : key(std::move(k)), str(v) {}
};

/// Machine-readable bench output (--json): named sections of records,
/// written once via util::JsonWriter when the report is finalized.
///
///   { "bench": ..., "scale": ..., "seed": ..., "schema_version": ...,
///     "provenance": { build_type, sanitizer, compiler, compiler_version },
///     "sections": { "<name>": [ { k: v, ... }, ... ], ... } }
///
/// Provenance pins the toolchain a BENCH_*.json snapshot came from so a
/// golden-vs-rerun diff can tell "the code regressed" apart from "you are
/// comparing a sanitizer debug build against a release golden".
class JsonReport {
 public:
  JsonReport(std::string bench_name, const BenchOptions& opt)
      : name_(std::move(bench_name)), opt_(opt) {}

  void add(const std::string& section, std::vector<JsonField> record) {
    if (opt_.json_path.empty()) return;  // recording disabled
    for (auto& [name, records] : sections_) {
      if (name == section) {
        records.push_back(std::move(record));
        return;
      }
    }
    sections_.emplace_back(section,
                           std::vector<std::vector<JsonField>>{
                               std::move(record)});
  }

  /// Write the report if --json was given. Safe to call once at the end of
  /// main; prints the output path on success.
  void write() const {
    if (opt_.json_path.empty()) return;
    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value(name_);
    w.key("scale").value(opt_.scale);
    w.key("seed").value(static_cast<std::int64_t>(opt_.seed));
    // Bump when the envelope shape (not section contents) changes.
    w.key("schema_version").value(std::int64_t{2});
    w.key("provenance").begin_object();
#ifdef NDEBUG
    w.key("build_type").value("release");
#else
    w.key("build_type").value("debug");
#endif
#if defined(LLMQ_TSAN_BUILD)
    w.key("sanitizer").value("thread");
#elif defined(LLMQ_SANITIZE_BUILD)
    w.key("sanitizer").value("address,undefined");
#else
    w.key("sanitizer").value("none");
#endif
#if defined(__clang__)
    w.key("compiler").value("clang");
    w.key("compiler_version")
        .value(std::to_string(__clang_major__) + "." +
               std::to_string(__clang_minor__) + "." +
               std::to_string(__clang_patchlevel__));
#elif defined(__GNUC__)
    w.key("compiler").value("gcc");
    w.key("compiler_version")
        .value(std::to_string(__GNUC__) + "." +
               std::to_string(__GNUC_MINOR__) + "." +
               std::to_string(__GNUC_PATCHLEVEL__));
#else
    w.key("compiler").value("unknown");
    w.key("compiler_version").value("0");
#endif
    w.end_object();
    w.key("sections").begin_object();
    for (const auto& [section, records] : sections_) {
      w.key(section).begin_array();
      for (const auto& record : records) {
        w.begin_object();
        for (const auto& f : record) {
          w.key(f.key);
          if (f.is_number)
            w.value(f.num);
          else
            w.value(f.str);
        }
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    w.end_object();
    std::ofstream out(opt_.json_path);
    out << w.str() << "\n";
    out.flush();
    if (out.good())
      std::printf("\n[json results written to %s]\n", opt_.json_path.c_str());
    else
      std::fprintf(stderr, "\n[error: could not write json to %s]\n",
                   opt_.json_path.c_str());
  }

 private:
  std::string name_;
  BenchOptions opt_;
  // Section insertion order is preserved (vector, not map).
  std::vector<std::pair<std::string, std::vector<std::vector<JsonField>>>>
      sections_;
};

/// Min-of-K wall-clock timing with warm-up: run the workload `warmup`
/// times untimed (populate allocator pools, fault in pages, settle the
/// scheduler), then report the fastest of `reps` timed runs. The minimum
/// — not the mean — is the estimator: wall-clock noise on a shared box is
/// strictly additive, so the fastest observation is the closest to the
/// true cost. Every wall-clock number a bench reports (trace-overhead
/// guard, threaded-fleet scaling) goes through this one helper so the
/// methodology cannot drift between benches. Wall-clock keys are never
/// golden-diffed — they measure the machine, not the simulator.
class WallClockTimer {
 public:
  explicit WallClockTimer(int reps = 5, int warmup = 1)
      : reps_(reps < 1 ? 1 : reps), warmup_(warmup < 0 ? 0 : warmup) {}

  /// Fastest observed wall-clock seconds of `fn()` across the timed reps.
  template <typename Fn>
  double min_seconds(Fn&& fn) const {
    for (int i = 0; i < warmup_; ++i) fn();
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps_; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  }

  int reps() const { return reps_; }

 private:
  int reps_;
  int warmup_;
};

inline data::Dataset load(const std::string& key, const BenchOptions& opt) {
  data::GenOptions g;
  g.n_rows = opt.rows_for(key);
  g.seed = opt.seed;
  return data::generate_dataset(key, g);
}

inline void print_header(const char* title, const BenchOptions& opt) {
  std::printf("=== %s ===\n", title);
  std::printf("(synthetic reproduction; scale=%.3g of paper dataset sizes, "
              "seed=%llu — compare shapes/ratios, not absolute values)\n\n",
              opt.scale, static_cast<unsigned long long>(opt.seed));
}

/// Format simulated seconds for table cells.
inline std::string secs(double s) { return util::fmt(s, 1); }
inline std::string pct(double f) { return util::fmt(100.0 * f, 1) + "%"; }

}  // namespace llmq::bench
