// Concurrent query serving — N relational LLM queries on one shared
// replica fleet (serve/query_client.hpp) vs serial cold-cache execution.
//
// The paper optimizes LLM invocations *within* one analytical query; this
// bench asks what happens when many such queries — the same dashboards
// refreshed by many users — contend for one serving fleet with a fixed KV
// budget:
//
//   1. concurrent queries {1,2,4,8} x routing policy: aggregate prefix
//      hit rate, the exact-duplicate memo's fan-out savings, and the
//      wall-clock speedup over running the queries back to back on cold
//      caches;
//   2. the effective hit fraction decomposed into prefix hits vs memo
//      hits, showing the two layers are additive, not double-counted.
//
// The query mix repeats each spec (filter/filter/projection/projection/
// aggregation/aggregation/multi/multi), the realistic shape for shared
// endpoints: identical queries dedup wholesale, distinct queries contend
// for cache. The fleet's total KV budget is held fixed across the sweep.
//
// Use --json <path> for machine-readable results.

#include "bench_common.hpp"
#include "serve/query_client.hpp"

using namespace llmq;

namespace {

struct SerialBaseline {
  double phr = 0.0;      // aggregate cached / prompt tokens
  double seconds = 0.0;  // back-to-back job time, cold cache per query
};

SerialBaseline run_serial(const data::Dataset& d,
                          const std::vector<const data::QuerySpec*>& specs,
                          const query::ExecConfig& cfg) {
  SerialBaseline out;
  std::uint64_t hit = 0, total = 0;
  for (const data::QuerySpec* spec : specs) {
    const auto r = query::run_query(d, *spec, cfg);
    out.seconds += r.total_seconds;
    for (const auto& st : r.stages) {
      hit += st.engine.cached_prompt_tokens;
      total += st.engine.prompt_tokens;
    }
  }
  out.phr = total ? static_cast<double>(hit) / static_cast<double>(total)
                  : 0.0;
  return out;
}

const serve::RouterPolicy kPolicies[] = {
    serve::RouterPolicy::RoundRobin, serve::RouterPolicy::LeastLoaded,
    serve::RouterPolicy::TenantHash, serve::RouterPolicy::PrefixAffinity};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Concurrent query serving — shared fleet vs serial cold-cache", opt);
  bench::JsonReport json("bench_concurrent_queries", opt);

  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), 400);
  g.seed = opt.seed;
  const data::Dataset d = data::generate_dataset(key, g);
  const double kvf = static_cast<double>(d.table.num_rows()) /
                     static_cast<double>(data::paper_rows(key));

  query::ExecConfig cfg = query::ExecConfig::standard(query::Method::CacheGgr);
  cfg.scale_kv_pool(kvf);

  // Repeating mix: many users, few distinct dashboards.
  const std::vector<const data::QuerySpec*> mix = {
      &data::query_by_id("movies-filter"),
      &data::query_by_id("movies-filter"),
      &data::query_by_id("movies-projection"),
      &data::query_by_id("movies-projection"),
      &data::query_by_id("movies-aggregation"),
      &data::query_by_id("movies-aggregation"),
      &data::query_by_id("movies-multi"),
      &data::query_by_id("movies-multi")};

  std::printf("%zu movies rows, 2 replicas, fixed fleet KV budget\n\n",
              d.table.num_rows());

  util::print_banner("concurrent queries x routing policy");
  util::TablePrinter tp({"queries", "router", "serial PHR", "agg PHR",
                         "effective hit", "dedup hits", "speedup",
                         "p99 TTFT (s)"});
  for (const std::size_t nq : {1u, 2u, 4u, 8u}) {
    const std::vector<const data::QuerySpec*> specs(mix.begin(),
                                                    mix.begin() + nq);
    const SerialBaseline serial = run_serial(d, specs, cfg);

    for (const serve::RouterPolicy rp : kPolicies) {
      std::vector<serve::ServedQuerySpec> qs;
      for (std::size_t i = 0; i < nq; ++i) {
        serve::ServedQuerySpec q;
        q.dataset = &d;
        q.query = specs[i];
        q.config = cfg;
        q.start_time = 0.05 * static_cast<double>(i);
        q.request_interval = 0.01;
        qs.push_back(q);
      }
      serve::FleetConfig fleet = serve::fleet_from_exec(cfg);
      fleet.n_replicas = 2;
      fleet.router = rp;
      // Fixed fleet budget: per-replica pool = single-engine pool / 2.
      fleet.scale_kv_pool(kvf / 2.0);

      const auto r = serve::run_queries_served(qs, fleet);
      const double speedup = r.serving.latency.makespan > 0.0
                                 ? serial.seconds / r.serving.latency.makespan
                                 : 0.0;
      tp.add_row({std::to_string(nq), serve::to_string(rp),
                  bench::pct(serial.phr),
                  bench::pct(r.serving.engine.prompt_cache_hit_rate()),
                  bench::pct(r.serving.effective_hit_fraction()),
                  std::to_string(r.serving.dedup.hits),
                  util::fmt(speedup, 2) + "x",
                  util::fmt(r.serving.latency.p99_ttft, 2)});
      json.add("queries_router",
               {{"queries", nq},
                {"router", serve::to_string(rp)},
                {"replicas", 2},
                {"serial_phr", serial.phr},
                {"serial_seconds", serial.seconds},
                {"agg_phr", r.serving.engine.prompt_cache_hit_rate()},
                {"effective_hit_fraction", r.serving.effective_hit_fraction()},
                {"dedup_hits", r.serving.dedup.hits},
                {"dedup_saved_prompt_tokens",
                 r.serving.dedup.saved_prompt_tokens},
                {"makespan_s", r.serving.latency.makespan},
                {"speedup_vs_serial", speedup},
                {"p50_ttft_s", r.serving.latency.p50_ttft},
                {"p99_ttft_s", r.serving.latency.p99_ttft},
                {"load_imbalance", r.serving.load_imbalance}});
    }
  }
  tp.print();

  json.write();
  return 0;
}
