// Fig 6 — impact of GGR reordering on answer accuracy, via statistical
// bootstrapping (10,000 resamples of exact-match accuracy), for
// Llama-3-8B, Llama-3-70B, and GPT-4o task-model profiles.
// Paper: GGR within ±5% of original everywhere except FEVER + Llama3-8B,
// where moving the claim field to the end *helps* by +14.2%; the larger
// models are robust to field position.

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace llmq;

namespace {

std::vector<double> exact_match(const std::vector<std::string>& answers,
                                const std::vector<std::string>& truth) {
  // The paper grades 100 hand-labeled rows per dataset (FEVER: all); we
  // cap the graded subset so full-scale runs stay fast while keeping CIs
  // tight enough to see the FEVER effect.
  const std::size_t n = std::min<std::size_t>(truth.size(), 1500);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(i < answers.size() && answers[i] == truth[i] ? 1.0 : 0.0);
  return xs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Fig 6 — accuracy, original vs GGR ordering", opt);

  const std::size_t kResamples = 10000;
  struct ModelCase {
    llm::ModelProfile profile;
  };
  const ModelCase models[] = {{llm::profile_llama3_8b()},
                              {llm::profile_llama3_70b()},
                              {llm::profile_gpt4o()}};

  for (const auto& mc : models) {
    util::print_banner(mc.profile.name);
    util::TablePrinter tp({"dataset", "orig acc (median)", "GGR acc (median)",
                           "diff", "95% CI orig", "95% CI GGR"});
    for (const char* key :
         {"movies", "products", "bird", "pdmx", "beer", "fever"}) {
      const auto d = bench::load(key, opt);
      const std::string qid =
          std::string(key) + (std::string(key) == "fever" ? "-rag" : "-filter");
      const auto& spec = data::query_by_id(qid);

      auto cfg_orig = query::ExecConfig::standard(query::Method::CacheOriginal);
      auto cfg_ggr = query::ExecConfig::standard(query::Method::CacheGgr);
      cfg_orig.model_profile = mc.profile;
      cfg_ggr.model_profile = mc.profile;
      cfg_orig.scale_kv_pool(opt.kv_fraction(key));
      cfg_ggr.scale_kv_pool(opt.kv_fraction(key));

      const auto orig = query::run_query(d, spec, cfg_orig);
      const auto ggr = query::run_query(d, spec, cfg_ggr);

      const auto xs_orig = exact_match(orig.answers, d.truth);
      const auto xs_ggr = exact_match(ggr.answers, d.truth);
      util::Rng rng_o(opt.seed ^ 0xACC0);
      util::Rng rng_g(opt.seed ^ 0xACC1);
      const auto b_orig = util::bootstrap_mean(xs_orig, kResamples, rng_o);
      const auto b_ggr = util::bootstrap_mean(xs_ggr, kResamples, rng_g);

      const double diff = b_ggr.median_of_medians - b_orig.median_of_medians;
      tp.add_row({d.name, bench::pct(b_orig.median_of_medians),
                  bench::pct(b_ggr.median_of_medians),
                  (diff >= 0 ? "+" : "") + util::fmt(100 * diff, 1) + "%",
                  "[" + bench::pct(b_orig.ci_low) + ", " +
                      bench::pct(b_orig.ci_high) + "]",
                  "[" + bench::pct(b_ggr.ci_low) + ", " +
                      bench::pct(b_ggr.ci_high) + "]"});
    }
    tp.print();
  }
  std::printf("\npaper reference (median diff GGR - original):\n"
              "  Llama3-8B : +3 -1 +0 +1 -6 +14.2 (FEVER outlier: claim "
              "moved to prompt end)\n"
              "  Llama3-70B: +4 +1 +1 -1 -3 +1.7\n"
              "  GPT-4o    : -3 -2 -1 +4 -3 -2.4\n");
  return 0;
}
