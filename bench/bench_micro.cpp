// Micro-benchmarks (google-benchmark): hot paths of the library —
// tokenizer throughput, PHC evaluation, radix-tree matching, GGR and the
// fixed-order baselines, and prompt encoding.

#include <benchmark/benchmark.h>

#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "core/phc.hpp"
#include "cache/prefix_cache.hpp"
#include "data/generators.hpp"
#include "query/prompt.hpp"
#include "util/wordbank.hpp"

using namespace llmq;

namespace {

const data::Dataset& movies_1k() {
  static const data::Dataset d = [] {
    data::GenOptions g;
    g.n_rows = 1000;
    g.seed = 42;
    return data::generate_movies(g);
  }();
  return d;
}

std::string prose(std::size_t tokens) {
  util::Rng rng(7);
  return util::default_wordbank().text_of_tokens(rng, tokens);
}

void BM_TokenizerEncode(benchmark::State& state) {
  const std::string text = prose(static_cast<std::size_t>(state.range(0)));
  const auto& tok = tokenizer::global_tokenizer();
  for (auto _ : state) benchmark::DoNotOptimize(tok.encode(text));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_TokenizerEncode)->Arg(64)->Arg(512)->Arg(4096);

void BM_TokenizerCount(benchmark::State& state) {
  const std::string text = prose(512);
  const auto& tok = tokenizer::global_tokenizer();
  for (auto _ : state) benchmark::DoNotOptimize(tok.count(text));
}
BENCHMARK(BM_TokenizerCount);

void BM_PhcEvaluate(benchmark::State& state) {
  const auto& d = movies_1k();
  const auto ordering = core::stats_fixed_ordering(d.table);
  const core::CellLengths lengths(d.table, core::LengthMeasure::Tokens);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::phc_with_lengths(d.table, lengths, ordering));
}
BENCHMARK(BM_PhcEvaluate);

void BM_GgrSolve(benchmark::State& state) {
  data::GenOptions g;
  g.n_rows = static_cast<std::size_t>(state.range(0));
  g.seed = 42;
  const auto d = data::generate_movies(g);
  core::GgrOptions go;
  go.max_row_depth = 4;
  go.max_col_depth = 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::ggr(d.table, d.fds, go));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GgrSolve)->Arg(200)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_StatsFixedOrdering(benchmark::State& state) {
  const auto& d = movies_1k();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::stats_fixed_ordering(d.table));
}
BENCHMARK(BM_StatsFixedOrdering)->Unit(benchmark::kMillisecond);

void BM_RadixInsertMatch(benchmark::State& state) {
  // Stream of prompts sharing a 128-token prefix with unique 32-token
  // tails — the cache's hot pattern.
  std::vector<tokenizer::TokenSeq> prompts;
  util::Rng rng(3);
  tokenizer::TokenSeq prefix(128);
  for (auto& t : prefix) t = static_cast<tokenizer::TokenId>(rng.next_u64());
  for (int i = 0; i < 256; ++i) {
    auto p = prefix;
    for (int k = 0; k < 32; ++k)
      p.push_back(static_cast<tokenizer::TokenId>(rng.next_u64()));
    prompts.push_back(std::move(p));
  }
  for (auto _ : state) {
    cache::PrefixCache pc(cache::CacheConfig{16, 0, true});
    for (const auto& p : prompts) {
      auto lease = pc.lookup(p);
      pc.admit(p, lease);
      pc.release(lease);
    }
    benchmark::DoNotOptimize(pc.stats().hit_tokens);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_RadixInsertMatch)->Unit(benchmark::kMillisecond);

void BM_PromptEncode(benchmark::State& state) {
  const auto& d = movies_1k();
  const query::PromptEncoder enc(
      query::PromptTemplate{"You are a data analyst.", "Filter the rows."});
  std::vector<std::size_t> fields(d.table.num_cols());
  for (std::size_t c = 0; c < fields.size(); ++c) fields[c] = c;
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(d.table, row, fields));
    row = (row + 1) % d.table.num_rows();
  }
}
BENCHMARK(BM_PromptEncode);

void BM_MineFds(benchmark::State& state) {
  data::GenOptions g;
  g.n_rows = 500;
  g.seed = 42;
  const auto d = data::generate_beer(g);
  for (auto _ : state) benchmark::DoNotOptimize(table::mine_fds(d.table));
}
BENCHMARK(BM_MineFds)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
