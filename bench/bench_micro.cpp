// Hot-path microbenchmarks: the per-token inner loops the serving stack
// spends its time in at fleet scale — token_ops kernels (LCP / equality /
// block hash, SIMD vs scalar), RadixTree child lookup across fan-outs,
// the end-to-end lookup→admit→release cache cycle, batch eviction, and a
// steady-state allocation audit that asserts the arena claim: once warm,
// cache churn performs ZERO heap allocations and carves no new node
// slots.
//
// Emits the standard BENCH_*.json envelope. Deterministic keys
// (checksums, counts, steady_allocs) are golden-diffed exactly; us/op
// keys are wall-clock and only compared between release/no-sanitizer
// builds (tests/benchjson/test_golden_diff.cpp). The bench exits
// non-zero if any bit-identity or zero-allocation assertion fails, so a
// plain smoke run doubles as a correctness check.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "cache/prefix_cache.hpp"
#include "cache/radix_tree.hpp"
#include "tokenizer/tokenizer.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/token_ops.hpp"

namespace {
// Global allocation counter: every operator new in the process bumps it,
// which is what lets alloc_steadystate() assert "zero heap allocations
// per steady-state request" at the whole-program level rather than
// trusting any container's bookkeeping.
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace llmq;

namespace {

namespace ops = util::token_ops;

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

void fail(const char* what) {
  std::fprintf(stderr, "bench_micro: ASSERTION FAILED: %s\n", what);
  std::exit(1);
}

std::vector<tokenizer::TokenId> random_tokens(util::Rng& rng, std::size_t n) {
  std::vector<tokenizer::TokenId> v(n);
  for (auto& t : v) t = static_cast<tokenizer::TokenId>(rng.next_u64());
  return v;
}

/// Iterations per timed rep, sized so each rep touches ~4M tokens at
/// --full and proportionally fewer at small scales (floors keep the
/// timer above its granularity).
std::size_t iters_for(double scale, std::size_t tokens_per_iter) {
  const double target = 4.0e6 * std::max(scale, 0.01);
  const auto it = static_cast<std::size_t>(target /
                                           static_cast<double>(tokens_per_iter));
  return std::max<std::size_t>(16, it);
}

// ---- Section: token_ops (SIMD vs scalar kernels). ----

void bench_token_ops(const bench::BenchOptions& opt, bench::JsonReport& json) {
  const char* isa = util::simd::name(util::simd::active_isa());
  std::printf("token_ops kernels (dispatched isa=%s vs scalar)\n", isa);
  std::printf("  %6s  %10s %10s %8s  %10s %10s %8s\n", "len", "lcp_us",
              "lcp_sc_us", "speedup", "hash_us", "hash_sc_us", "speedup");

  const bench::WallClockTimer timer(5, 2);
  util::Rng rng(opt.seed);
  for (const std::size_t len : {std::size_t{16}, std::size_t{64},
                                std::size_t{513}, std::size_t{4096}}) {
    const auto a = random_tokens(rng, len);
    const auto b = a;  // identical: LCP/equal walk the full run (worst case)
    const std::size_t iters = iters_for(opt.scale, len);

    // Bit-identity cross-check before timing anything.
    if (ops::lcp(a.data(), b.data(), len) !=
        ops::scalar::lcp(a.data(), b.data(), len))
      fail("dispatched lcp != scalar lcp");
    if (ops::hash(a.data(), len) != ops::scalar::hash(a.data(), len))
      fail("dispatched hash != scalar hash");
    if (ops::equal(a.data(), b.data(), len) !=
        ops::scalar::equal(a.data(), b.data(), len))
      fail("dispatched equal != scalar equal");

    const auto time_per_op = [&](auto&& fn) {
      const double s = timer.min_seconds([&] {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < iters; ++i) acc += fn();
        g_sink = acc;
      });
      return s / static_cast<double>(iters) * 1e6;
    };

    const double lcp_us =
        time_per_op([&] { return ops::lcp(a.data(), b.data(), len); });
    const double lcp_sc_us =
        time_per_op([&] { return ops::scalar::lcp(a.data(), b.data(), len); });
    const double hash_us = time_per_op([&] { return ops::hash(a.data(), len); });
    const double hash_sc_us =
        time_per_op([&] { return ops::scalar::hash(a.data(), len); });
    const double eq_us = time_per_op(
        [&] { return ops::equal(a.data(), b.data(), len) ? 1u : 0u; });
    const double eq_sc_us = time_per_op(
        [&] { return ops::scalar::equal(a.data(), b.data(), len) ? 1u : 0u; });

    // 64-bit hash folded to 32 bits so it survives the double-typed JSON
    // number path exactly.
    const std::uint64_t h = ops::hash(a.data(), len);
    const auto hash_check = static_cast<std::size_t>(h & 0xFFFFFFFFu);

    std::printf("  %6zu  %10.4f %10.4f %7.2fx  %10.4f %10.4f %7.2fx\n", len,
                lcp_us, lcp_sc_us, lcp_sc_us / lcp_us, hash_us, hash_sc_us,
                hash_sc_us / hash_us);
    json.add("token_ops",
             {{"len", len},
              {"isa", isa},
              {"lcp_us", lcp_us},
              {"lcp_scalar_us", lcp_sc_us},
              {"lcp_speedup", lcp_sc_us / lcp_us},
              {"hash_us", hash_us},
              {"hash_scalar_us", hash_sc_us},
              {"hash_speedup", hash_sc_us / hash_us},
              {"equal_us", eq_us},
              {"equal_scalar_us", eq_sc_us},
              {"hash_check", hash_check}});
  }
  std::printf("\n");
}

// ---- Section: radix_fanout (child lookup vs fan-out). ----

void bench_radix_fanout(const bench::BenchOptions& opt,
                        bench::JsonReport& json) {
  constexpr std::size_t kBlock = 16;
  std::printf("radix find_child (block=%zu tokens)\n", kBlock);
  std::printf("  %7s  %10s %10s\n", "fanout", "hit_us", "miss_us");

  const bench::WallClockTimer timer(5, 2);
  for (const std::size_t fanout :
       {std::size_t{4}, std::size_t{64}, std::size_t{512}}) {
    util::Rng rng(opt.seed + fanout);
    cache::RadixTree tree(kBlock);
    std::vector<std::vector<tokenizer::TokenId>> blocks;
    blocks.reserve(fanout);
    for (std::size_t i = 0; i < fanout; ++i) {
      blocks.push_back(random_tokens(rng, kBlock));
      tree.insert(blocks.back(), i);
    }
    const auto miss = random_tokens(rng, kBlock);

    const std::size_t iters = iters_for(opt.scale, kBlock);
    std::uint64_t check = 0;
    const auto probe = [&](std::span<const tokenizer::TokenId> p) {
      return static_cast<std::uint64_t>(tree.match_tokens(p));
    };
    for (const auto& blk : blocks) check += probe(blk);
    check += probe(miss);

    const double hit_us = timer.min_seconds([&] {
                            std::uint64_t acc = 0;
                            for (std::size_t i = 0; i < iters; ++i)
                              acc += probe(blocks[i % fanout]);
                            g_sink = acc;
                          }) /
                          static_cast<double>(iters) * 1e6;
    const double miss_us = timer.min_seconds([&] {
                             std::uint64_t acc = 0;
                             for (std::size_t i = 0; i < iters; ++i)
                               acc += probe(miss);
                             g_sink = acc;
                           }) /
                           static_cast<double>(iters) * 1e6;

    std::printf("  %7zu  %10.4f %10.4f\n", fanout, hit_us, miss_us);
    json.add("radix_fanout", {{"fanout", fanout},
                              {"hit_us", hit_us},
                              {"miss_us", miss_us},
                              {"check", static_cast<std::size_t>(check)}});
  }
  std::printf("\n");
}

// ---- Section: radix_stream (full cache cycle on a shared-prefix mix). ----

struct StreamOutcome {
  std::uint64_t hit_tokens = 0;
  std::uint64_t inserted_blocks = 0;
};

StreamOutcome run_stream(
    const std::vector<std::vector<tokenizer::TokenId>>& prompts) {
  cache::PrefixCache pc(cache::CacheConfig{16, 0, true});
  for (const auto& p : prompts) {
    auto lease = pc.lookup(p);
    pc.admit(p, lease);
    pc.release(lease);
  }
  const cache::CacheStats s = pc.stats();
  return {s.hit_tokens, s.inserted_blocks};
}

void bench_radix_stream(const bench::BenchOptions& opt,
                        bench::JsonReport& json) {
  const auto n_prompts = std::max<std::size_t>(
      64, static_cast<std::size_t>(2048.0 * opt.scale));
  util::Rng rng(opt.seed);
  const auto prefix = random_tokens(rng, 128);
  std::vector<std::vector<tokenizer::TokenId>> prompts;
  prompts.reserve(n_prompts);
  for (std::size_t i = 0; i < n_prompts; ++i) {
    auto p = prefix;
    const auto tail = random_tokens(rng, 32);
    p.insert(p.end(), tail.begin(), tail.end());
    prompts.push_back(std::move(p));
  }

  const StreamOutcome first = run_stream(prompts);
  if (const StreamOutcome again = run_stream(prompts);
      again.hit_tokens != first.hit_tokens ||
      again.inserted_blocks != first.inserted_blocks)
    fail("radix_stream outcome not deterministic across runs");

  const bench::WallClockTimer timer(5, 1);
  const double us_per_request =
      timer.min_seconds([&] { g_sink = run_stream(prompts).hit_tokens; }) /
      static_cast<double>(n_prompts) * 1e6;

  std::printf("radix_stream: %zu shared-prefix requests, %.3f us/request "
              "(hit_tokens=%llu)\n\n",
              n_prompts, us_per_request,
              static_cast<unsigned long long>(first.hit_tokens));
  json.add("radix_stream",
           {{"requests", n_prompts},
            {"us_per_request", us_per_request},
            {"hit_tokens", static_cast<std::size_t>(first.hit_tokens)},
            {"inserted_blocks",
             static_cast<std::size_t>(first.inserted_blocks)}});
}

// ---- Section: evict_batch (single-scan batch eviction). ----

void bench_evict_batch(const bench::BenchOptions& opt,
                       bench::JsonReport& json) {
  constexpr std::size_t kBlock = 16;
  const auto n_prompts = std::max<std::size_t>(
      32, static_cast<std::size_t>(1024.0 * opt.scale));
  constexpr std::size_t kBlocksPerPrompt = 8;

  std::vector<std::vector<tokenizer::TokenId>> prompts;
  prompts.reserve(n_prompts);
  util::Rng rng(opt.seed);
  for (std::size_t i = 0; i < n_prompts; ++i)
    prompts.push_back(random_tokens(rng, kBlock * kBlocksPerPrompt));

  const auto build = [&] {
    cache::RadixTree tree(kBlock);
    std::uint64_t now = 0;
    for (const auto& p : prompts) tree.insert(p, ++now);
    return tree;
  };

  std::size_t nodes = 0, evicted = 0;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    cache::RadixTree tree = build();
    nodes = tree.num_blocks();
    const auto t0 = std::chrono::steady_clock::now();
    evicted = tree.evict_lru(nodes);
    const auto t1 = std::chrono::steady_clock::now();
    if (evicted != nodes) fail("evict_batch failed to drain the tree");
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  const double us_per_block = best / static_cast<double>(nodes) * 1e6;

  std::printf("evict_batch: drained %zu blocks in one call, %.4f us/block\n\n",
              nodes, us_per_block);
  json.add("evict_batch", {{"nodes", nodes},
                           {"evicted", evicted},
                           {"us_per_block", us_per_block}});
}

// ---- Section: alloc_steadystate (the arena zero-allocation audit). ----

void bench_alloc_steadystate(const bench::BenchOptions& opt,
                             bench::JsonReport& json) {
  constexpr std::size_t kBlock = 16;
  constexpr std::size_t kPrompts = 32;
  constexpr std::size_t kBlocksPerPrompt = 4;
  constexpr std::size_t kCapacityBlocks = 64;  // < working set: churn forever

  util::Rng rng(opt.seed);
  std::vector<std::vector<tokenizer::TokenId>> prompts;
  prompts.reserve(kPrompts);
  for (std::size_t i = 0; i < kPrompts; ++i)
    prompts.push_back(random_tokens(rng, kBlock * kBlocksPerPrompt));

  // Cache-level churn: capacity-limited, every pass evicts and re-inserts.
  cache::PrefixCache pc(cache::CacheConfig{kBlock, kCapacityBlocks, true});
  const auto pass = [&] {
    for (const auto& p : prompts) {
      auto lease = pc.lookup(p);
      pc.admit(p, lease);
      pc.release(lease);
    }
  };
  const std::uint64_t before_warm = g_allocs.load(std::memory_order_relaxed);
  pass();
  pass();  // two warm-up passes: pools, slabs, scratch all reach high water
  const std::uint64_t warmup_allocs =
      g_allocs.load(std::memory_order_relaxed) - before_warm;
  constexpr int kSteadyPasses = 3;
  const std::uint64_t before_steady = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < kSteadyPasses; ++i) pass();
  const std::uint64_t steady_allocs =
      g_allocs.load(std::memory_order_relaxed) - before_steady;
  if (steady_allocs != 0) fail("steady-state cache churn allocated");

  // Tree-level churn: node slots must stay flat once warm (satellite:
  // recycled slots reuse their storage instead of re-growing it).
  cache::RadixTree tree(kBlock);
  std::uint64_t now = 0;
  const auto tree_pass = [&] {
    for (const auto& p : prompts) tree.insert(p, ++now);
    tree.evict_lru(tree.num_blocks());
  };
  tree_pass();
  tree_pass();
  const std::size_t slots_warm = tree.node_slots();
  for (int i = 0; i < kSteadyPasses; ++i) tree_pass();
  const std::size_t slots_delta = tree.node_slots() - slots_warm;
  if (slots_delta != 0) fail("steady-state tree churn carved new node slots");

  std::printf("alloc_steadystate: warmup_allocs=%llu steady_allocs=%llu "
              "node_slots_delta=%zu (over %d churn passes)\n\n",
              static_cast<unsigned long long>(warmup_allocs),
              static_cast<unsigned long long>(steady_allocs), slots_delta,
              kSteadyPasses);
  json.add("alloc_steadystate",
           {{"steady_passes", static_cast<std::size_t>(kSteadyPasses)},
            {"warmup_allocs", static_cast<std::size_t>(warmup_allocs)},
            {"steady_allocs", static_cast<std::size_t>(steady_allocs)},
            {"node_slots_delta", slots_delta}});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::print_header("hot-path microbenchmarks", opt);
  bench::JsonReport json("bench_micro", opt);

  bench_token_ops(opt, json);
  bench_radix_fanout(opt, json);
  bench_radix_stream(opt, json);
  bench_evict_batch(opt, json);
  bench_alloc_steadystate(opt, json);

  json.write();
  return 0;
}
