// Online serving — cache-aware windowed reordering under streaming load.
//
// The paper's evaluation reorders a fully known batch; this bench serves
// the same table as a *stream* and asks how much of the batch-mode
// prompt-cache win survives online, and what it costs in latency:
//
//   1. arrival rate × policy: FIFO vs windowed-GGR vs tenant-partitioned
//      GGR on the same multi-tenant Poisson trace;
//   2. window deadline sweep: buffering longer raises the hit rate and
//      the time-to-first-token together — the serving tradeoff the
//      windowed extension (core/windowed.hpp) predicts offline;
//   3. burstiness: the same mean rate delivered smoothly vs in bursts.
//
// Use --json <path> for machine-readable results.

#include <chrono>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "serve/online.hpp"

using namespace llmq;

namespace {

struct ServeSetup {
  table::Table table;
  table::FdSet fds;
  serve::OnlineConfig config;  // scheduler policy/bounds set per run
};

ServeSetup make_setup(const bench::BenchOptions& opt, std::size_t row_cap) {
  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), row_cap);
  g.seed = opt.seed;
  data::Dataset d = data::generate_dataset(key, g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");

  ServeSetup s;
  s.table = spec.stage1.fields.empty() ? d.table
                                       : d.table.project(spec.stage1.fields);
  s.fds = d.fds;
  s.config.prompt.system_prompt = spec.system_prompt;
  s.config.prompt.user_prompt = spec.stage1.user_prompt;
  s.config.avg_output_tokens = spec.stage1.avg_output_tokens;
  s.config.ttft_slo_seconds = 30.0;
  const double kvf = static_cast<double>(s.table.num_rows()) /
                     static_cast<double>(data::paper_rows(key));
  s.config.scale_kv_pool(kvf);
  return s;
}

serve::OnlineRunResult run_policy(const ServeSetup& s,
                                  const std::vector<serve::Arrival>& arrivals,
                                  serve::Policy policy,
                                  std::size_t window_rows, double max_wait) {
  serve::OnlineConfig cfg = s.config;
  cfg.scheduler.policy = policy;
  cfg.scheduler.window_rows = window_rows;
  cfg.scheduler.max_wait_seconds = max_wait;
  return serve::run_online(s.table, s.fds, arrivals, cfg);
}

std::string ms(double seconds) { return util::fmt(1000.0 * seconds, 0); }

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Online serving — streaming scheduler, cache-aware windowed reordering",
      opt);
  bench::JsonReport json("bench_serving_online", opt);

  const ServeSetup s = make_setup(opt, 1000);
  const std::size_t n = s.table.num_rows();
  std::printf("serving %zu rows of movies-filter as a request stream\n\n", n);

  const serve::Policy policies[] = {serve::Policy::Fifo,
                                    serve::Policy::WindowedGgr,
                                    serve::Policy::TenantGgr};

  // ---- 1. arrival rate × policy (shared trace per rate). ----
  {
    util::print_banner(
        "arrival rate x policy (Poisson, 4 tenants, Zipf 1.0, window 64, "
        "deadline 8s)");
    util::TablePrinter tp({"rate (r/s)", "policy", "PHR", "p50 TTFT (ms)",
                           "p99 TTFT (ms)", "queue (ms)", "goodput (r/s)",
                           "windows"});
    for (double rate : {16.0, 48.0}) {
      serve::WorkloadOptions w;
      w.arrival_rate = rate;
      w.n_tenants = 4;
      w.tenant_skew = 1.0;
      w.seed = opt.seed;
      const auto arrivals = serve::generate_arrivals(n, w);
      for (serve::Policy p : policies) {
        const auto r = run_policy(s, arrivals, p, 64, 8.0);
        tp.add_row({util::fmt(rate, 0), serve::to_string(p),
                    bench::pct(r.engine.prompt_cache_hit_rate()),
                    ms(r.latency.p50_ttft), ms(r.latency.p99_ttft),
                    ms(r.latency.mean_queue_delay),
                    util::fmt(r.latency.goodput_rps, 1),
                    std::to_string(r.windows)});
        json.add("rate_policy",
                 {{"rate", rate},
                  {"policy", serve::to_string(p)},
                  {"phr", r.engine.prompt_cache_hit_rate()},
                  {"p50_ttft_s", r.latency.p50_ttft},
                  {"p99_ttft_s", r.latency.p99_ttft},
                  {"mean_queue_delay_s", r.latency.mean_queue_delay},
                  {"goodput_rps", r.latency.goodput_rps},
                  {"windows", r.windows},
                  {"phc", r.phc}});
      }
    }
    tp.print();
  }

  // ---- 2. window deadline sweep (hit rate vs latency). ----
  {
    util::print_banner(
        "window deadline sweep (16 r/s, single tenant, window cap 256)");
    util::TablePrinter tp({"deadline (s)", "policy", "PHR", "p50 TTFT (ms)",
                           "p99 TTFT (ms)", "mean window"});
    serve::WorkloadOptions w;
    w.arrival_rate = 16.0;
    w.seed = opt.seed;
    const auto arrivals = serve::generate_arrivals(n, w);
    for (double deadline : {0.25, 1.0, 4.0, 16.0}) {
      for (serve::Policy p :
           {serve::Policy::Fifo, serve::Policy::WindowedGgr}) {
        const auto r = run_policy(s, arrivals, p, 256, deadline);
        const double mean_window =
            r.windows ? static_cast<double>(r.requests.size()) /
                            static_cast<double>(r.windows)
                      : 0.0;
        tp.add_row({util::fmt(deadline, 2), serve::to_string(p),
                    bench::pct(r.engine.prompt_cache_hit_rate()),
                    ms(r.latency.p50_ttft), ms(r.latency.p99_ttft),
                    util::fmt(mean_window, 1)});
        json.add("deadline_sweep",
                 {{"deadline_s", deadline},
                  {"policy", serve::to_string(p)},
                  {"phr", r.engine.prompt_cache_hit_rate()},
                  {"p50_ttft_s", r.latency.p50_ttft},
                  {"p99_ttft_s", r.latency.p99_ttft},
                  {"mean_window_rows", mean_window}});
      }
    }
    tp.print();
  }

  // ---- 3. burstiness at a fixed mean rate. ----
  {
    util::print_banner(
        "burstiness (mean 16 r/s, windowed-GGR, window 64, deadline 2s)");
    util::TablePrinter tp({"process", "PHR", "p50 TTFT (ms)", "p99 TTFT (ms)",
                           "peak batch"});
    for (const bool bursty : {false, true}) {
      serve::WorkloadOptions w;
      w.process = bursty ? serve::ArrivalProcess::Bursty
                         : serve::ArrivalProcess::Poisson;
      w.arrival_rate = 16.0;
      w.burst_multiplier = 4.0;
      w.burst_fraction = 0.2;
      w.cycle_seconds = 4.0;
      w.seed = opt.seed;
      const auto arrivals = serve::generate_arrivals(n, w);
      const auto r =
          run_policy(s, arrivals, serve::Policy::WindowedGgr, 64, 2.0);
      tp.add_row({bursty ? "bursty (4x/20%)" : "poisson",
                  bench::pct(r.engine.prompt_cache_hit_rate()),
                  ms(r.latency.p50_ttft), ms(r.latency.p99_ttft),
                  std::to_string(r.engine.peak_batch_size)});
      json.add("burstiness",
               {{"process", bursty ? "bursty" : "poisson"},
                {"phr", r.engine.prompt_cache_hit_rate()},
                {"p50_ttft_s", r.latency.p50_ttft},
                {"p99_ttft_s", r.latency.p99_ttft},
                {"peak_batch", r.engine.peak_batch_size}});
    }
    tp.print();
  }

  // ---- 4. tracing: representative traced run + overhead guard. ----
  {
    serve::WorkloadOptions w;
    w.arrival_rate = 16.0;
    w.n_tenants = 4;
    w.tenant_skew = 1.0;
    w.seed = opt.seed;
    const auto arrivals = serve::generate_arrivals(n, w);
    serve::OnlineConfig cfg = s.config;
    cfg.scheduler.policy = serve::Policy::WindowedGgr;
    cfg.scheduler.window_rows = 64;
    cfg.scheduler.max_wait_seconds = 2.0;

    if (!opt.trace_path.empty()) {
      obs::TraceLog log;
      obs::TimeSeries ts;
      serve::OnlineConfig traced = cfg;
      traced.trace.sink = &log;
      traced.trace.timeseries = &ts;
      (void)serve::run_online(s.table, s.fds, arrivals, traced);
      if (obs::write_perfetto_trace(opt.trace_path, log, &ts))
        std::printf("\n[trace: %zu events -> %s (+ %s.jsonl)]\n", log.size(),
                    opt.trace_path.c_str(), opt.trace_path.c_str());
      obs::write_text_file(opt.trace_path + ".jsonl",
                           obs::trace_to_jsonl(log));
    }

    // Overhead guard: wall-clock the same run with tracing disabled (null
    // sink — one pointer test per emission site) and enabled. Min-of-5
    // after a warm-up (WallClockTimer) filters scheduler/allocator noise;
    // CI asserts the disabled path is not slower than the traced one
    // beyond noise. Wall-clock keys only — golden diffs must never
    // compare them.
    const bench::WallClockTimer timer(/*reps=*/5, /*warmup=*/1);
    const auto wall_min = [&](bool traced) {
      return timer.min_seconds([&] {
        obs::TraceLog log;
        serve::OnlineConfig c = cfg;
        if (traced) c.trace.sink = &log;
        (void)serve::run_online(s.table, s.fds, arrivals, c);
      });
    };
    const double off = wall_min(false);
    const double on = wall_min(true);
    const double frac = off > 0.0 ? on / off - 1.0 : 0.0;
    std::printf("\ntrace overhead: %.1f ms untraced vs %.1f ms traced "
                "(%+.1f%%)\n",
                1000.0 * off, 1000.0 * on, 100.0 * frac);
    json.add("trace_overhead", {{"wall_s_no_trace", off},
                                {"wall_s_traced", on},
                                {"overhead_frac", frac}});
  }

  json.write();
  return 0;
}
