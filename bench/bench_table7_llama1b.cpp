// Table 7 (Appendix D.2) — filter queries with Llama-3.2-1B on one L4.
// Paper: PHR matches the 8B runs (the reordering is model-independent),
// but the runtime ratio shrinks (1.2-1.5x vs 1.8-3.0x for 8B) because the
// small model leaves ample GPU memory — large decode batches are possible
// without cache sharing, so caching's memory relief matters less.

#include "bench_common.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 7 — filter queries (T1), Llama-3.2-1B, 1x L4 [simulated]", opt);

  struct Paper {
    const char* dataset;
    double ratio;
    double orig_phr;
    double ggr_phr;
  };
  const Paper paper[] = {{"bird", 1.5, 10.41, 83.99},
                         {"movies", 1.3, 29.32, 82.10},
                         {"pdmx", 1.3, 11.97, 56.00},
                         {"products", 1.4, 24.06, 82.10},
                         {"beer", 1.2, 47.98, 73.93}};

  util::TablePrinter tp({"dataset", "runtime orig/GGR (1B)",
                         "runtime orig/GGR (8B)", "Orig PHR", "GGR PHR",
                         "paper ratio", "paper GGR PHR"});
  for (const auto& p : paper) {
    const auto d = bench::load(p.dataset, opt);
    const auto& spec = data::query_by_id(std::string(p.dataset) + "-filter");
    const double kvf = opt.kv_fraction(p.dataset);
    const auto tiny =
        query::compare_methods(d, spec, llm::llama3_1b(), llm::l4(), kvf);
    const auto big =
        query::compare_methods(d, spec, llm::llama3_8b(), llm::l4(), kvf);
    tp.add_row({d.name, query::format_speedup(tiny.speedup_vs_original()),
                query::format_speedup(big.speedup_vs_original()),
                bench::pct(tiny.cache_original.overall_phr()),
                bench::pct(tiny.cache_ggr.overall_phr()),
                query::format_speedup(p.ratio),
                util::fmt(p.ggr_phr, 1) + "%"});
  }
  tp.print();
  std::printf("\nshape check: 1B ratios should sit below the 8B ratios while "
              "PHRs stay comparable across model sizes\n");
  return 0;
}
