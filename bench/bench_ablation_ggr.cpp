// Ablations of the GGR design choices DESIGN.md calls out:
//  (a) functional dependencies on/off — solver time and PHC quality;
//  (b) recursion depth limits — quality vs solver time;
//  (c) HITCOUNT early-stop threshold sweep;
//  (d) policy ladder: original vs sorted vs stats-fixed vs GGR vs GGR+FD —
//      how much each ingredient of the paper's design buys.

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "core/phc.hpp"
#include "core/refine.hpp"
#include "core/windowed.hpp"

using namespace llmq;

namespace {

double hit_fraction(const table::Table& t, const core::Ordering& o) {
  return core::phc_breakdown(t, o).hit_fraction();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablations — GGR design choices", opt);

  // (d) policy ladder across datasets.
  {
    util::print_banner("policy ladder (squared-length hit fraction)");
    util::TablePrinter tp({"dataset", "original", "sorted rows",
                           "stats-fixed", "GGR no-FD", "GGR + FD"});
    for (const auto& key : data::dataset_keys()) {
      data::GenOptions g;
      g.n_rows = std::min<std::size_t>(opt.rows_for(key), 2000);
      g.seed = opt.seed;
      const auto d = data::generate_dataset(key, g);
      core::GgrOptions go;
      go.max_row_depth = 4;
      go.max_col_depth = 2;
      auto go_nofd = go;
      go_nofd.use_fds = false;
      tp.add_row(
          {d.name,
           bench::pct(hit_fraction(d.table, core::original_ordering(d.table))),
           bench::pct(
               hit_fraction(d.table, core::sorted_original_fields(d.table))),
           bench::pct(
               hit_fraction(d.table, core::stats_fixed_ordering(d.table))),
           bench::pct(hit_fraction(d.table, core::ggr(d.table, go_nofd).ordering)),
           bench::pct(
               hit_fraction(d.table, core::ggr(d.table, d.fds, go).ordering))});
    }
    tp.print();
  }

  // (a)+(b) depth sweep with and without FDs on the FD-rich datasets.
  {
    util::print_banner("depth sweep (movies): PHC fraction / solver ms");
    util::TablePrinter tp({"row depth", "col depth", "no-FD frac", "no-FD ms",
                           "FD frac", "FD ms", "fallbacks (FD)"});
    data::GenOptions g;
    g.n_rows = std::min<std::size_t>(opt.rows_for("movies"), 3000);
    g.seed = opt.seed;
    const auto d = data::generate_dataset("movies", g);
    for (int rd : {0, 1, 2, 4, 8, 16}) {
      for (int cd : {1, 2, 4}) {
        core::GgrOptions go;
        go.max_row_depth = rd;
        go.max_col_depth = cd;
        auto go_nofd = go;
        go_nofd.use_fds = false;
        const auto no_fd = core::ggr(d.table, go_nofd);
        const auto with_fd = core::ggr(d.table, d.fds, go);
        tp.add_row({std::to_string(rd), std::to_string(cd),
                    bench::pct(hit_fraction(d.table, no_fd.ordering)),
                    util::fmt(no_fd.solve_seconds * 1e3, 1),
                    bench::pct(hit_fraction(d.table, with_fd.ordering)),
                    util::fmt(with_fd.solve_seconds * 1e3, 1),
                    std::to_string(with_fd.counters.fallbacks)});
      }
    }
    tp.print();
  }

  // (c) threshold sweep.
  {
    util::print_banner("HITCOUNT threshold sweep (products)");
    util::TablePrinter tp(
        {"threshold", "hit frac", "solver ms", "recursion nodes"});
    data::GenOptions g;
    g.n_rows = std::min<std::size_t>(opt.rows_for("products"), 3000);
    g.seed = opt.seed;
    const auto d = data::generate_dataset("products", g);
    for (double thr : {0.0, 1e3, 1e4, 1e5, 1e6, 1e9}) {
      core::GgrOptions go;
      go.max_row_depth = -1;
      go.max_col_depth = -1;
      go.hitcount_threshold = thr;
      const auto res = core::ggr(d.table, d.fds, go);
      tp.add_row({thr == 0.0 ? "off" : util::fmt(thr, 0),
                  bench::pct(hit_fraction(d.table, res.ordering)),
                  util::fmt(res.solve_seconds * 1e3, 1),
                  std::to_string(res.counters.recursion_nodes)});
    }
    tp.print();
  }

  // Extension: does cheap local search close the GGR gap?
  {
    util::print_banner("local-search refinement (hit fraction / extra ms)");
    util::TablePrinter tp({"dataset", "GGR", "GGR+refine", "moves",
                           "refine ms"});
    for (const char* key : {"movies", "pdmx", "beer"}) {
      data::GenOptions g;
      g.n_rows = std::min<std::size_t>(opt.rows_for(key), 2000);
      g.seed = opt.seed;
      const auto d = data::generate_dataset(key, g);
      core::GgrOptions go;
      go.max_row_depth = 4;
      go.max_col_depth = 2;
      const auto base = core::ggr(d.table, d.fds, go);
      const auto refined = core::refine_ordering(d.table, base.ordering, {});
      tp.add_row({d.name, bench::pct(hit_fraction(d.table, base.ordering)),
                  bench::pct(hit_fraction(d.table, refined.ordering)),
                  std::to_string(refined.moves_applied),
                  util::fmt(refined.seconds * 1e3, 1)});
    }
    tp.print();
  }

  // Streaming extension: how much buffering do the gains need?
  {
    util::print_banner(
        "windowed GGR (movies): hit fraction vs reorder buffer size");
    util::TablePrinter tp({"window rows", "hit frac", "windows", "solver ms"});
    data::GenOptions g;
    g.n_rows = std::min<std::size_t>(opt.rows_for("movies"), 3000);
    g.seed = opt.seed;
    const auto d = data::generate_dataset("movies", g);
    for (std::size_t window : {16u, 64u, 256u, 1024u, 0u}) {
      core::WindowedOptions wo;
      wo.window_rows = window;
      wo.ggr.max_row_depth = 4;
      wo.ggr.max_col_depth = 2;
      const auto res = core::windowed_ggr(d.table, d.fds, wo);
      tp.add_row({window == 0 ? "full table" : std::to_string(window),
                  bench::pct(hit_fraction(d.table, res.ordering)),
                  std::to_string(res.windows),
                  util::fmt(res.solve_seconds * 1e3, 1)});
    }
    tp.print();
  }

  // Literal-paper HITCOUNT (unsquared inferred lengths) vs PHC-unit score.
  {
    util::print_banner("HITCOUNT inferred-length squaring (beer)");
    data::GenOptions g;
    g.n_rows = std::min<std::size_t>(opt.rows_for("beer"), 3000);
    g.seed = opt.seed;
    const auto d = data::generate_dataset("beer", g);
    core::GgrOptions go;
    go.max_row_depth = 4;
    go.max_col_depth = 2;
    auto literal = go;
    literal.square_inferred_lengths = false;
    const auto squared = core::ggr(d.table, d.fds, go);
    const auto lit = core::ggr(d.table, d.fds, literal);
    std::printf("squared (ours): %s   literal (Algorithm 1 line 6): %s\n",
                bench::pct(hit_fraction(d.table, squared.ordering)).c_str(),
                bench::pct(hit_fraction(d.table, lit.ordering)).c_str());
  }
  return 0;
}
