// Fig 1 case studies (§3.2): how badly a fixed field ordering can lose to
// per-row reordering, plus the section's 42%-savings pricing example.
//
// Fig 1a: first field unique, remaining m-1 fields constant.
//   Fixed (default) ordering PHC = 0; optimal = (n-1)(m-1).
// Fig 1b: m non-overlapping groups of x rows, one per field.
//   Any fixed ordering PHC = x-1; per-row reordering = m(x-1).

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "core/ophr.hpp"
#include "core/phc.hpp"
#include "pricing/price_sheet.hpp"

using namespace llmq;

namespace {

table::Table fig1a_table(std::size_t n, std::size_t m) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  table::Table t(table::Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row{"unique" + std::to_string(r)};
    for (std::size_t c = 1; c < m; ++c) row.push_back("v");
    t.append_row(std::move(row));
  }
  return t;
}

table::Table fig1b_table(std::size_t x, std::size_t m) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  table::Table t(table::Schema::of_names(names));
  std::size_t uid = 0;
  for (std::size_t g = 0; g < m; ++g) {
    for (std::size_t i = 0; i < x; ++i) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < m; ++c)
        row.push_back(c == g ? "G" + std::to_string(g)
                             : "u" + std::to_string(uid++));
      t.append_row(std::move(row));
    }
  }
  return t;
}

double best_fixed_ordering_phc(const table::Table& t) {
  // Exhaustive over single fixed field priorities (sort rows, same field
  // order in every row) — the best any fixed-field scheme can do here.
  double best = 0.0;
  for (std::size_t lead = 0; lead < t.num_cols(); ++lead) {
    std::vector<std::size_t> order{lead};
    for (std::size_t c = 0; c < t.num_cols(); ++c)
      if (c != lead) order.push_back(c);
    const auto o = core::Ordering::fixed_fields(t.sorted_row_order(order), order);
    best = std::max(best, core::phc(t, o, core::LengthMeasure::Unit));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Fig 1 — fixed field ordering case studies", opt);

  {
    util::TablePrinter tp({"scenario", "n", "m", "default PHC", "best fixed PHC",
                           "per-row PHC (GGR)", "optimal PHC", "paper optimal"});
    for (auto [n, m] : {std::pair<std::size_t, std::size_t>{8, 4},
                        {16, 5}, {32, 8}}) {
      const auto t = fig1a_table(n, m);
      core::GgrOptions go;
      go.measure = core::LengthMeasure::Unit;
      go.max_row_depth = -1;
      go.max_col_depth = -1;
      const auto g = core::ggr(t, go);
      const auto o = core::ophr(t, {.measure = core::LengthMeasure::Unit,
                                    .time_budget_seconds = 10});
      tp.add_row({"Fig1a", std::to_string(n), std::to_string(m),
                  util::fmt(core::phc(t, core::original_ordering(t),
                                      core::LengthMeasure::Unit), 0),
                  util::fmt(best_fixed_ordering_phc(t), 0),
                  util::fmt(g.phc, 0),
                  o ? util::fmt(core::phc(t, o->ordering,
                                          core::LengthMeasure::Unit), 0)
                    : "timeout",
                  std::to_string((n - 1) * (m - 1))});
    }
    for (auto [x, m] : {std::pair<std::size_t, std::size_t>{4, 3},
                        {6, 3}, {5, 4}}) {
      const auto t = fig1b_table(x, m);
      core::GgrOptions go;
      go.measure = core::LengthMeasure::Unit;
      go.max_row_depth = -1;
      go.max_col_depth = -1;
      const auto g = core::ggr(t, go);
      const auto o = core::ophr(t, {.measure = core::LengthMeasure::Unit,
                                    .time_budget_seconds = 10});
      tp.add_row({"Fig1b", std::to_string(x * m), std::to_string(m),
                  util::fmt(core::phc(t, core::original_ordering(t),
                                      core::LengthMeasure::Unit), 0),
                  util::fmt(best_fixed_ordering_phc(t), 0),
                  util::fmt(g.phc, 0),
                  o ? util::fmt(core::phc(t, o->ordering,
                                          core::LengthMeasure::Unit), 0)
                    : "timeout",
                  std::to_string(m * (x - 1))});
    }
    tp.print();
  }

  // §3.2 pricing example: 9-field table, fixed ordering 10% hit rate,
  // per-row ordering approaching m-fold improvement -> ~42% savings under
  // OpenAI's half-price cached tokens.
  {
    util::print_banner("§3.2 pricing example (OpenAI half-price cached)");
    const auto sheet = pricing::openai_gpt4o_mini();
    const double fixed_hr = 0.10;
    const double optimized_hr = 0.90;  // ~m-fold with m = 9
    const double savings =
        pricing::estimated_savings(sheet, fixed_hr, optimized_hr);
    std::printf("fixed hit rate 10%% -> optimized 90%%: %s cost savings "
                "(paper: ~42%%)\n",
                bench::pct(savings).c_str());
  }
  return 0;
}
