// Fig 3a — end-to-end runtime of the five LLM *filter* queries (T1) under
// {No Cache, Cache (Original), Cache (GGR)}, Llama-3-8B on one L4.
// Paper: GGR achieves 2.1-3.8x over No Cache and 1.8-3.0x over Original.

#include "bench_common.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig 3a — filter queries (T1), Llama-3-8B, 1x L4 [simulated]", opt);

  util::TablePrinter tp({"dataset", "rows", "No Cache (s)", "Cache Orig (s)",
                         "Cache GGR (s)", "GGR vs NoCache", "GGR vs Orig",
                         "GGR PHR"});
  for (const auto& spec : data::queries_of_type(data::QueryType::Filter)) {
    const auto d = bench::load(spec.dataset, opt);
    const auto cmp = query::compare_methods(d, spec, llm::llama3_8b(),
                                            llm::l4(),
                                            opt.kv_fraction(spec.dataset));
    tp.add_row({d.name, std::to_string(d.table.num_rows()),
                bench::secs(cmp.no_cache.total_seconds),
                bench::secs(cmp.cache_original.total_seconds),
                bench::secs(cmp.cache_ggr.total_seconds),
                query::format_speedup(cmp.speedup_vs_no_cache()),
                query::format_speedup(cmp.speedup_vs_original()),
                bench::pct(cmp.cache_ggr.overall_phr())});
  }
  tp.print();
  std::printf("\npaper reference: GGR vs NoCache 2.1-3.8x; GGR vs Original "
              "1.8-3.0x (Movies 3.8/3.0, Products 2.5/2.7, BIRD 3.8/2.6, "
              "PDMX 2.1/1.8, Beer 3.8/2.0)\n");
  return 0;
}
