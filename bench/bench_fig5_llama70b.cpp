// Fig 5 — filter queries with Llama-3-70B on 8x L4 (tensor parallel).
// Paper: Cache (GGR) achieves 1.9-3.3x over Cache (Original).

#include "bench_common.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig 5 — filter queries (T1), Llama-3-70B, 8x L4 TP [simulated]", opt);

  util::TablePrinter tp({"dataset", "rows", "Cache Orig (s)", "Cache GGR (s)",
                         "GGR vs Orig", "GGR PHR", "Orig PHR"});
  for (const auto& spec : data::queries_of_type(data::QueryType::Filter)) {
    const auto d = bench::load(spec.dataset, opt);
    const auto cmp = query::compare_methods(d, spec, llm::llama3_70b(),
                                            llm::l4_x8(),
                                            opt.kv_fraction(spec.dataset));
    tp.add_row({d.name, std::to_string(d.table.num_rows()),
                bench::secs(cmp.cache_original.total_seconds),
                bench::secs(cmp.cache_ggr.total_seconds),
                query::format_speedup(cmp.speedup_vs_original()),
                bench::pct(cmp.cache_ggr.overall_phr()),
                bench::pct(cmp.cache_original.overall_phr())});
  }
  tp.print();
  std::printf("\npaper reference: Movies 3.2x, Products 3.3x, BIRD 2.6x, "
              "PDMX 1.9x, Beer 2.2x over Cache (Original)\n");
  return 0;
}
