// Table 5 — GGR solver wall-clock time per dataset with the paper's
// configuration (row depth 4, column depth 2). Paper: 1.2-12.6 s on the
// full datasets (up to ~30K rows / 57 fields), i.e. <0.01% of query time.
//
// By default this bench runs the *full* paper-sized tables for the five
// relational datasets (solver time is the point here); pass --scale to
// shrink. RAG datasets honor --scale because their generation includes a
// KNN retrieval pass.

#include <chrono>

#include "bench_common.hpp"
#include "core/ggr.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 5 — GGR solver time (s)", opt);

  struct Row {
    const char* key;
    bool full_size;
    double paper_seconds;
  };
  const Row rows[] = {{"movies", true, 3.3},  {"products", true, 4.5},
                      {"bird", true, 1.2},    {"pdmx", true, 12.6},
                      {"beer", true, 8.0},    {"fever", false, 5.6},
                      {"squad", false, 4.5}};

  util::TablePrinter tp({"dataset", "rows", "fields", "solver (s)",
                         "paper (s)", "nodes", "fallbacks"});
  for (const auto& r : rows) {
    data::GenOptions g;
    g.seed = opt.seed;
    g.n_rows = r.full_size ? data::paper_rows(r.key) : opt.rows_for(r.key);
    const auto d = data::generate_dataset(r.key, g);

    core::GgrOptions go;
    go.max_row_depth = 4;
    go.max_col_depth = 2;
    const auto res = core::ggr(d.table, d.fds, go);
    tp.add_row({d.name, std::to_string(d.table.num_rows()),
                std::to_string(d.table.num_cols()),
                util::fmt(res.solve_seconds, 2), util::fmt(r.paper_seconds, 1),
                std::to_string(res.counters.recursion_nodes),
                std::to_string(res.counters.fallbacks)});
  }
  tp.print();
  std::printf("\n(memory: GGR keeps only the input table plus O(n) index "
              "vectors; recursion splits never copy cell data)\n");
  return 0;
}
