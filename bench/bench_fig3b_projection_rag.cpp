// Fig 3b — end-to-end runtime of the five *projection* queries (T2) and
// the two *RAG* queries (T5). Paper: projection gains shrink relative to
// filters because long decode dilutes prefill savings; RAG gains 1.7-1.8x
// over Cache (Original).

#include "bench_common.hpp"

using namespace llmq;

namespace {

void run_set(const std::vector<data::QuerySpec>& specs,
             const bench::BenchOptions& opt, util::TablePrinter& tp) {
  for (const auto& spec : specs) {
    const auto d = bench::load(spec.dataset, opt);
    const auto cmp = query::compare_methods(d, spec, llm::llama3_8b(),
                                            llm::l4(),
                                            opt.kv_fraction(spec.dataset));
    tp.add_row({d.name, data::to_string(spec.type),
                std::to_string(d.table.num_rows()),
                bench::secs(cmp.no_cache.total_seconds),
                bench::secs(cmp.cache_original.total_seconds),
                bench::secs(cmp.cache_ggr.total_seconds),
                query::format_speedup(cmp.speedup_vs_no_cache()),
                query::format_speedup(cmp.speedup_vs_original())});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig 3b — projection (T2) + RAG (T5), Llama-3-8B, 1x L4 [simulated]",
      opt);

  util::TablePrinter tp({"dataset", "type", "rows", "No Cache (s)",
                         "Cache Orig (s)", "Cache GGR (s)", "GGR vs NoCache",
                         "GGR vs Orig"});
  run_set(data::queries_of_type(data::QueryType::Projection), opt, tp);
  run_set(data::queries_of_type(data::QueryType::Rag), opt, tp);
  tp.print();
  std::printf("\npaper reference: projection 2.4-3.7x vs NoCache / 1.5-3.4x "
              "vs Original; RAG 1.9x vs NoCache, 1.7-1.8x vs Original\n");
  return 0;
}
