// Table 6 (Appendix D.1) — OPHR (exact) vs GGR on small dataset samples.
// The paper tests the first {10,25,50,100,200} rows with a 2-hour cap and
// reports the largest completed run; we use a per-size time budget
// (default 10 s) and report the largest sample OPHR finished. PDMX is
// reduced to its first 10 columns, as in the paper.
// Paper: GGR within ~2% of OPHR's hit rate, orders of magnitude faster.

#include "bench_common.hpp"
#include "core/ggr.hpp"
#include "core/ophr.hpp"
#include "core/phc.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 6 — OPHR vs GGR on small samples", opt);
  const double budget_s = opt.scale >= 1.0 ? 60.0 : 10.0;

  util::TablePrinter tp({"sample", "OPHR hit%", "GGR hit%", "diff",
                         "OPHR time (s)", "GGR time (s)"});
  for (const auto& key : data::dataset_keys()) {
    data::GenOptions g;
    g.seed = opt.seed;
    g.n_rows = 400;
    auto d = data::generate_dataset(key, g);
    if (key == "pdmx") {
      std::vector<std::size_t> first10;
      for (std::size_t c = 0; c < 10; ++c) first10.push_back(c);
      d.table = d.table.project(first10);
    }

    std::optional<core::OphrResult> best;
    std::size_t best_rows = 0;
    for (std::size_t rows : {10u, 25u, 50u, 100u, 200u}) {
      const auto sample = d.table.head(rows);
      core::OphrOptions oo;
      oo.time_budget_seconds = budget_s;
      auto res = core::ophr(sample, oo);
      if (!res) break;  // larger samples will also time out
      best = std::move(res);
      best_rows = rows;
    }
    if (!best) {
      tp.add_row({d.name + "-10", "timeout", "-", "-", "-", "-"});
      continue;
    }

    const auto sample = d.table.head(best_rows);
    core::GgrOptions go;  // unlimited depth: quality comparison
    go.max_row_depth = -1;
    go.max_col_depth = -1;
    const auto ggr = core::ggr(sample, d.fds, go);

    const auto ophr_b = core::phc_breakdown(sample, best->ordering);
    const auto ggr_b = core::phc_breakdown(sample, ggr.ordering);
    tp.add_row({d.name + "-" + std::to_string(best_rows),
                bench::pct(ophr_b.hit_fraction()),
                bench::pct(ggr_b.hit_fraction()),
                util::fmt(100 * (ggr_b.hit_fraction() - ophr_b.hit_fraction()),
                          1),
                util::fmt(best->solve_seconds, 2),
                util::fmt(ggr.solve_seconds, 4)});
  }
  tp.print();
  std::printf("\npaper reference: GGR within 0-2%% of OPHR; OPHR runtimes up "
              "to 2556 s vs GGR <=0.25 s\n");
  return 0;
}
