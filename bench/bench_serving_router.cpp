// Replicated serving — cache-affinity routing across engine replicas.
//
// PR 1 asked how much of the paper's batch-mode prompt-cache win survives
// a stream; this bench asks how much survives *sharding*. Requests are
// scheduled by the same windowed-GGR scheduler, then routed across
// n_replicas independent engine+cache replicas:
//
//   1. replicas {1,2,4,8} x routing policy at a fixed arrival rate: how
//      fast round-robin destroys the locality the scheduler just created,
//      and how much of it affinity routing recovers;
//   2. policy x arrival rate at 4 replicas: affinity under light vs heavy
//      load (load pressure is where pure affinity pays a balance cost —
//      the load-imbalance column — and LeastLoaded pays a locality cost).
//
// The fleet's total KV budget is held fixed: each replica gets the
// single-engine pool divided by n_replicas, so sweeping the replica count
// changes sharding, not aggregate memory.
//
// Use --json <path> for machine-readable results.

#include "bench_common.hpp"
#include "serve/online.hpp"

using namespace llmq;

namespace {

struct ServeSetup {
  table::Table table;
  table::FdSet fds;
  serve::OnlineConfig config;
};

ServeSetup make_setup(const bench::BenchOptions& opt, std::size_t row_cap) {
  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), row_cap);
  g.seed = opt.seed;
  data::Dataset d = data::generate_dataset(key, g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");

  ServeSetup s;
  s.table = spec.stage1.fields.empty() ? d.table
                                       : d.table.project(spec.stage1.fields);
  s.fds = d.fds;
  s.config.prompt.system_prompt = spec.system_prompt;
  s.config.prompt.user_prompt = spec.stage1.user_prompt;
  s.config.avg_output_tokens = spec.stage1.avg_output_tokens;
  s.config.ttft_slo_seconds = 30.0;
  s.config.scheduler.policy = serve::Policy::TenantGgr;
  s.config.scheduler.window_rows = 64;
  s.config.scheduler.max_wait_seconds = 4.0;
  return s;
}

serve::OnlineRunResult run_sharded(const ServeSetup& s,
                                   const std::vector<serve::Arrival>& arrivals,
                                   std::size_t n_replicas,
                                   serve::RouterPolicy router,
                                   double kv_fraction) {
  serve::OnlineConfig cfg = s.config;
  cfg.n_replicas = n_replicas;
  cfg.router = router;
  // Fixed fleet budget: per-replica pool = single-engine pool / replicas.
  cfg.scale_kv_pool(kv_fraction / static_cast<double>(n_replicas));
  return serve::run_online(s.table, s.fds, arrivals, cfg);
}

std::string ms(double seconds) { return util::fmt(1000.0 * seconds, 0); }

const serve::RouterPolicy kPolicies[] = {
    serve::RouterPolicy::RoundRobin, serve::RouterPolicy::LeastLoaded,
    serve::RouterPolicy::TenantHash, serve::RouterPolicy::PrefixAffinity};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Replicated serving — cache-affinity routing vs naive sharding", opt);
  bench::JsonReport json("bench_serving_router", opt);

  const ServeSetup s = make_setup(opt, 1000);
  const std::size_t n = s.table.num_rows();
  const double kvf = static_cast<double>(n) /
                     static_cast<double>(data::paper_rows("movies"));

  serve::WorkloadOptions w;
  w.n_tenants = 8;
  w.tenant_skew = 1.0;
  w.n_requests = 2 * n;  // repeat traffic: prefixes recur across the stream
  w.seed = opt.seed;
  std::printf(
      "serving %zu requests over %zu movies rows (8 tenants, Zipf 1.0, "
      "Tenant-GGR windows)\n\n",
      w.n_requests, n);

  // ---- 1. replica count x routing policy (fixed rate). ----
  {
    util::print_banner(
        "replicas x routing policy (48 r/s; fleet KV budget fixed)");
    util::TablePrinter tp({"replicas", "router", "agg PHR", "p50 TTFT (ms)",
                           "p99 TTFT (ms)", "imbalance", "goodput (r/s)"});
    w.arrival_rate = 48.0;
    const auto arrivals = serve::generate_arrivals(n, w);
    for (const std::size_t reps : {1u, 2u, 4u, 8u}) {
      for (const serve::RouterPolicy rp : kPolicies) {
        const auto r = run_sharded(s, arrivals, reps, rp, kvf);
        tp.add_row({std::to_string(reps), serve::to_string(rp),
                    bench::pct(r.engine.prompt_cache_hit_rate()),
                    ms(r.latency.p50_ttft), ms(r.latency.p99_ttft),
                    util::fmt(r.load_imbalance, 2),
                    util::fmt(r.latency.goodput_rps, 1)});
        json.add("replicas_policy",
                 {{"replicas", reps},
                  {"router", serve::to_string(rp)},
                  {"rate", 48.0},
                  {"agg_phr", r.engine.prompt_cache_hit_rate()},
                  {"p50_ttft_s", r.latency.p50_ttft},
                  {"p99_ttft_s", r.latency.p99_ttft},
                  {"load_imbalance", r.load_imbalance},
                  {"goodput_rps", r.latency.goodput_rps},
                  {"phc", r.phc}});
      }
    }
    tp.print();
  }

  // ---- 2. routing policy x arrival rate at 4 replicas. ----
  {
    util::print_banner("routing policy x arrival rate (4 replicas)");
    util::TablePrinter tp({"rate (r/s)", "router", "agg PHR", "p50 TTFT (ms)",
                           "p99 TTFT (ms)", "imbalance", "goodput (r/s)"});
    for (const double rate : {16.0, 48.0, 96.0}) {
      w.arrival_rate = rate;
      const auto arrivals = serve::generate_arrivals(n, w);
      for (const serve::RouterPolicy rp : kPolicies) {
        const auto r = run_sharded(s, arrivals, 4, rp, kvf);
        tp.add_row({util::fmt(rate, 0), serve::to_string(rp),
                    bench::pct(r.engine.prompt_cache_hit_rate()),
                    ms(r.latency.p50_ttft), ms(r.latency.p99_ttft),
                    util::fmt(r.load_imbalance, 2),
                    util::fmt(r.latency.goodput_rps, 1)});
        json.add("policy_rate",
                 {{"replicas", 4},
                  {"router", serve::to_string(rp)},
                  {"rate", rate},
                  {"agg_phr", r.engine.prompt_cache_hit_rate()},
                  {"p50_ttft_s", r.latency.p50_ttft},
                  {"p99_ttft_s", r.latency.p99_ttft},
                  {"load_imbalance", r.load_imbalance},
                  {"goodput_rps", r.latency.goodput_rps}});
      }
    }
    tp.print();
  }

  json.write();
  return 0;
}
