// Table 4 — estimated cost savings across all datasets, assuming future
// automatic prefix caching at arbitrary lengths: apply the measured PHRs
// (Table 2 pipeline) to the OpenAI and Anthropic pricing models.
// Paper: 20-39% savings under OpenAI, 48-79% under Anthropic.

#include "bench_common.hpp"
#include "pricing/price_sheet.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 4 — estimated cost savings from PHR [simulated]",
                      opt);

  struct Row {
    const char* dataset;
    const char* query;
    double paper_openai;
    double paper_anthropic;
  };
  const Row rows[] = {{"movies", "movies-filter", 31, 73},
                      {"products", "products-filter", 33, 73},
                      {"bird", "bird-filter", 39, 79},
                      {"pdmx", "pdmx-filter", 24, 48},
                      {"beer", "beer-filter", 20, 55},
                      {"fever", "fever-rag", 30, 60},
                      {"squad", "squad-rag", 31, 63}};

  const auto openai = pricing::openai_gpt4o_mini();
  const auto anthropic = pricing::anthropic_claude35_sonnet();

  util::TablePrinter tp({"dataset", "Orig PHR", "GGR PHR", "OpenAI save",
                         "Anthropic save", "paper OA", "paper An"});
  for (const auto& r : rows) {
    const auto d = bench::load(r.dataset, opt);
    const auto& spec = data::query_by_id(r.query);
    auto cfg_orig = query::ExecConfig::standard(query::Method::CacheOriginal);
    auto cfg_ggr = query::ExecConfig::standard(query::Method::CacheGgr);
    cfg_orig.scale_kv_pool(opt.kv_fraction(r.dataset));
    cfg_ggr.scale_kv_pool(opt.kv_fraction(r.dataset));
    const double phr_orig =
        query::run_query(d, spec, cfg_orig).overall_phr();
    const double phr_ggr = query::run_query(d, spec, cfg_ggr).overall_phr();
    tp.add_row({d.name, bench::pct(phr_orig), bench::pct(phr_ggr),
                bench::pct(pricing::estimated_savings(openai, phr_orig, phr_ggr)),
                bench::pct(
                    pricing::estimated_savings(anthropic, phr_orig, phr_ggr)),
                util::fmt(r.paper_openai, 0) + "%",
                util::fmt(r.paper_anthropic, 0) + "%"});
  }
  tp.print();
  return 0;
}
