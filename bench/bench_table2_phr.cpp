// Table 2 — prefix hit rate (PHR %) of the LLM filter and RAG queries for
// the Original and GGR orderings.
// Paper: Original {35,27,10,12,50,11,11}%, GGR {86,83,85,57,80,67,70}%.

#include "bench_common.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 2 — PHR (%), filter + RAG queries [simulated]",
                      opt);

  struct Row {
    const char* dataset;
    const char* query;
    double paper_orig;
    double paper_ggr;
  };
  const Row rows[] = {{"movies", "movies-filter", 35, 86},
                      {"products", "products-filter", 27, 83},
                      {"bird", "bird-filter", 10, 85},
                      {"pdmx", "pdmx-filter", 12, 57},
                      {"beer", "beer-filter", 50, 80},
                      {"fever", "fever-rag", 11, 67},
                      {"squad", "squad-rag", 11, 70}};

  bench::JsonReport json("bench_table2_phr", opt);
  util::TablePrinter tp({"dataset", "rows", "Original PHR", "GGR PHR",
                         "delta", "paper Orig", "paper GGR"});
  for (const auto& r : rows) {
    const auto d = bench::load(r.dataset, opt);
    const auto& spec = data::query_by_id(r.query);
    auto cfg_orig = query::ExecConfig::standard(query::Method::CacheOriginal);
    auto cfg_ggr = query::ExecConfig::standard(query::Method::CacheGgr);
    cfg_orig.scale_kv_pool(opt.kv_fraction(r.dataset));
    cfg_ggr.scale_kv_pool(opt.kv_fraction(r.dataset));
    const auto orig = query::run_query(d, spec, cfg_orig);
    const auto ggr = query::run_query(d, spec, cfg_ggr);
    tp.add_row({d.name, std::to_string(d.table.num_rows()),
                bench::pct(orig.overall_phr()), bench::pct(ggr.overall_phr()),
                "+" + util::fmt(100 * (ggr.overall_phr() - orig.overall_phr()),
                                1),
                util::fmt(r.paper_orig, 0) + "%",
                util::fmt(r.paper_ggr, 0) + "%"});
    json.add("phr", {{"dataset", r.dataset},
                     {"rows", d.table.num_rows()},
                     {"original_phr", orig.overall_phr()},
                     {"ggr_phr", ggr.overall_phr()},
                     {"paper_original_phr", r.paper_orig / 100.0},
                     {"paper_ggr_phr", r.paper_ggr / 100.0}});
  }
  tp.print();
  json.write();
  return 0;
}
