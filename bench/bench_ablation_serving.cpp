// Serving-side ablations: how the end-to-end benefit of GGR reordering
// depends on (a) KV-cache size, (b) maximum batch size, and (c) cache
// block granularity. These isolate the mechanisms behind Figs 3-5 and
// Table 7: reordering matters most when the cache is oversubscribed, and
// sharing buys extra batch head-room when memory is tight.

#include "bench_common.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablations — serving engine", opt);
  bench::JsonReport json("bench_ablation_serving", opt);

  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), 2000);
  g.seed = opt.seed;
  const auto d = data::generate_dataset(key, g);
  const auto& spec = data::query_by_id("movies-filter");
  const double base_kvf = static_cast<double>(d.table.num_rows()) /
                          static_cast<double>(data::paper_rows(key));

  // (a) cache size sweep: GGR's edge grows as the pool shrinks.
  {
    util::print_banner("KV pool sweep (fraction of data-proportional pool)");
    util::TablePrinter tp({"pool frac", "orig PHR", "GGR PHR", "orig (s)",
                           "GGR (s)", "GGR vs orig"});
    for (double mult : {8.0, 4.0, 2.0, 1.0, 0.5}) {
      auto cfg_o = query::ExecConfig::standard(query::Method::CacheOriginal);
      auto cfg_g = query::ExecConfig::standard(query::Method::CacheGgr);
      cfg_o.scale_kv_pool(base_kvf * mult);
      cfg_g.scale_kv_pool(base_kvf * mult);
      const auto ro = query::run_query(d, spec, cfg_o);
      const auto rg = query::run_query(d, spec, cfg_g);
      tp.add_row({util::fmt(mult, 1) + "x", bench::pct(ro.overall_phr()),
                  bench::pct(rg.overall_phr()), bench::secs(ro.total_seconds),
                  bench::secs(rg.total_seconds),
                  query::format_speedup(ro.total_seconds / rg.total_seconds)});
      json.add("kv_pool_sweep", {{"pool_mult", mult},
                                 {"original_phr", ro.overall_phr()},
                                 {"ggr_phr", rg.overall_phr()},
                                 {"original_s", ro.total_seconds},
                                 {"ggr_s", rg.total_seconds}});
    }
    tp.print();
  }

  // (b) batch size sweep.
  {
    util::print_banner("max batch size sweep");
    util::TablePrinter tp({"max batch", "orig (s)", "GGR (s)", "GGR vs orig",
                           "GGR mean batch"});
    for (std::size_t bs : {1u, 4u, 8u, 16u, 32u, 64u}) {
      auto cfg_o = query::ExecConfig::standard(query::Method::CacheOriginal);
      auto cfg_g = query::ExecConfig::standard(query::Method::CacheGgr);
      cfg_o.engine.max_batch_size = bs;
      cfg_g.engine.max_batch_size = bs;
      cfg_o.scale_kv_pool(base_kvf);
      cfg_g.scale_kv_pool(base_kvf);
      const auto ro = query::run_query(d, spec, cfg_o);
      const auto rg = query::run_query(d, spec, cfg_g);
      tp.add_row({std::to_string(bs), bench::secs(ro.total_seconds),
                  bench::secs(rg.total_seconds),
                  query::format_speedup(ro.total_seconds / rg.total_seconds),
                  util::fmt(rg.stages[0].engine.mean_batch_size(), 1)});
      json.add("batch_size_sweep", {{"max_batch", bs},
                                    {"original_s", ro.total_seconds},
                                    {"ggr_s", rg.total_seconds}});
    }
    tp.print();
  }

  // (c) block granularity sweep: coarser blocks lose partial-prefix hits.
  {
    util::print_banner("cache block size sweep (GGR)");
    util::TablePrinter tp({"block tokens", "GGR PHR", "GGR (s)"});
    for (std::size_t block : {4u, 8u, 16u, 32u, 64u, 128u}) {
      auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);
      cfg.engine.block_size = block;
      cfg.scale_kv_pool(base_kvf);
      const auto r = query::run_query(d, spec, cfg);
      tp.add_row({std::to_string(block), bench::pct(r.overall_phr()),
                  bench::secs(r.total_seconds)});
      json.add("block_size_sweep", {{"block_tokens", block},
                                    {"ggr_phr", r.overall_phr()},
                                    {"ggr_s", r.total_seconds}});
    }
    tp.print();
  }
  json.write();
  return 0;
}
