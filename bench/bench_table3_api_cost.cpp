// Table 3 — real-API cost simulation: FEVER, 1000 rows, each field value
// duplicated 5x so prompts clear the providers' 1024-token caching
// minimum (§6.3). OpenAI GPT-4o-mini (automatic caching) and Anthropic
// Claude 3.5 Sonnet (conservative breakpoint on the first 1024 tokens).
// Paper: GGR saves 32% (OpenAI, 62.2% PHR) and 21% (Anthropic, 30.6% PHR);
// Original gets 0% cached (prefix below the minimum).

#include "bench_common.hpp"
#include "core/ggr.hpp"
#include "pricing/cost_report.hpp"
#include "query/prompt.hpp"

using namespace llmq;

namespace {

std::vector<pricing::PricedRequest> build_stream(const table::Table& t,
                                                 const core::Ordering& o,
                                                 const query::PromptEncoder& enc) {
  std::vector<pricing::PricedRequest> s;
  s.reserve(o.num_rows());
  for (std::size_t pos = 0; pos < o.num_rows(); ++pos) {
    pricing::PricedRequest r;
    r.prompt = enc.encode(t, o.row_at(pos), o.fields_at(pos));
    r.output_tokens = 3;
    s.push_back(std::move(r));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Table 3 — OpenAI / Anthropic API cost, FEVER-1000, fields x5", opt);

  // The paper fixes this experiment at 1000 rows regardless of scale.
  data::GenOptions g;
  g.n_rows = static_cast<std::size_t>(1000 * std::min(1.0, opt.scale * 10));
  g.seed = opt.seed;
  auto d = data::generate_fever(g);

  // Duplicate each field value 5x (paper: "we duplicate each field value
  // five times, approximating a more realistic dataset").
  table::Table big(d.table.schema());
  for (std::size_t r = 0; r < d.table.num_rows(); ++r) {
    auto row = d.table.row(r);
    for (auto& cell : row) {
      std::string dup;
      for (int i = 0; i < 5; ++i) {
        dup += cell;
        dup += ' ';
      }
      cell = std::move(dup);
    }
    big.append_row(std::move(row));
  }
  d.table = std::move(big);

  core::GgrOptions go;
  go.max_row_depth = 4;
  go.max_col_depth = 2;
  const auto ggr = core::ggr(d.table, d.fds, go);
  const auto original =
      core::Ordering::identity(d.table.num_rows(), d.table.num_cols());

  const auto& spec = data::query_by_id("fever-rag");
  const query::PromptEncoder enc(
      query::PromptTemplate{spec.system_prompt, spec.stage1.user_prompt});
  const auto stream_orig = build_stream(d.table, original, enc);
  const auto stream_ggr = build_stream(d.table, ggr.ordering, enc);

  util::TablePrinter tp({"model", "method", "PHR", "cost ($)", "savings",
                         "paper PHR", "paper savings"});
  {
    const auto sheet = pricing::openai_gpt4o_mini();
    const auto o = pricing::price_stream_auto(sheet, stream_orig);
    const auto g2 = pricing::price_stream_auto(sheet, stream_ggr);
    tp.add_row({"GPT-4o-mini", "Original", bench::pct(o.prompt_hit_rate),
                util::fmt(o.cost_usd, 2), "-", "0%", "-"});
    tp.add_row({"GPT-4o-mini", "GGR", bench::pct(g2.prompt_hit_rate),
                util::fmt(g2.cost_usd, 2),
                bench::pct(1.0 - g2.cost_usd / o.cost_usd), "62.2%", "32%"});
  }
  {
    const auto sheet = pricing::anthropic_claude35_sonnet();
    const auto o = pricing::price_stream_breakpoint(sheet, stream_orig);
    const auto g2 = pricing::price_stream_breakpoint(sheet, stream_ggr);
    tp.add_row({"Claude 3.5 Sonnet", "Original", bench::pct(o.prompt_hit_rate),
                util::fmt(o.cost_usd, 2), "-", "0%", "-"});
    tp.add_row({"Claude 3.5 Sonnet", "GGR", bench::pct(g2.prompt_hit_rate),
                util::fmt(g2.cost_usd, 2),
                bench::pct(1.0 - g2.cost_usd / o.cost_usd), "30.6%", "21%"});
  }
  tp.print();
  return 0;
}
