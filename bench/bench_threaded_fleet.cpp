// Threaded fleet — wall-clock scaling of the real-threads runtime.
//
// Every other bench in this repo reports *simulated* seconds: the
// virtual clock is the oracle and wall time is irrelevant. This bench is
// the one place wall time is the subject. ThreadedFleet runs one worker
// thread per replica and is property-pinned to produce bit-identical
// simulated results to the single-threaded virtual-clock driver
// (tests/threaded/), so the question left is purely operational: how
// much faster does the simulation itself run when replicas execute on
// real threads?
//
//   replicas {1,2,4,8}: min-of-K wall clock of the virtual-clock driver
//   vs the threaded runtime on the same stream, the threaded runtime's
//   real requests/s and tokens/s, and a determinism cross-check of the
//   simulated headline numbers between the two.
//
// Scaling expectations depend on the machine: on a multi-core box the
// 4-replica threaded run should beat the 1-replica threaded run on wall
// clock (the CI assertion); on a single-core container the threads
// serialize and the barrier overhead is the honest result. The host's
// core count is recorded alongside the numbers for exactly that reason.
// Wall-clock keys are never golden-diffed.
//
// Use --json <path> for machine-readable results.

#include <thread>

#include "bench_common.hpp"
#include "serve/online.hpp"
#include "serve/threaded_fleet.hpp"

using namespace llmq;

namespace {

struct ServeSetup {
  table::Table table;
  table::FdSet fds;
  serve::OnlineConfig config;
};

ServeSetup make_setup(const bench::BenchOptions& opt, std::size_t row_cap) {
  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), row_cap);
  g.seed = opt.seed;
  data::Dataset d = data::generate_dataset(key, g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");

  ServeSetup s;
  s.table = spec.stage1.fields.empty() ? d.table
                                       : d.table.project(spec.stage1.fields);
  s.fds = d.fds;
  s.config.prompt.system_prompt = spec.system_prompt;
  s.config.prompt.user_prompt = spec.stage1.user_prompt;
  s.config.avg_output_tokens = spec.stage1.avg_output_tokens;
  s.config.ttft_slo_seconds = 30.0;
  s.config.scheduler.policy = serve::Policy::TenantGgr;
  s.config.scheduler.window_rows = 64;
  s.config.scheduler.max_wait_seconds = 4.0;
  s.config.router = serve::RouterPolicy::PrefixAffinity;
  return s;
}

/// Simulated headline numbers match between the two runtimes (the full
/// bit-identity lives in tests/threaded/; this is the bench's tripwire).
bool determinism_match(const serve::OnlineRunResult& a,
                       const serve::OnlineRunResult& b) {
  return a.requests.size() == b.requests.size() &&
         a.engine.prompt_tokens == b.engine.prompt_tokens &&
         a.engine.cached_prompt_tokens == b.engine.cached_prompt_tokens &&
         a.engine.output_tokens == b.engine.output_tokens &&
         a.engine.preemptions == b.engine.preemptions &&
         a.phc == b.phc && a.latency.p99_ttft == b.latency.p99_ttft &&
         a.load_imbalance == b.load_imbalance;
}

std::string ms(double seconds) { return util::fmt(1000.0 * seconds, 0); }

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Threaded fleet — wall-clock scaling vs replica count",
                      opt);
  bench::JsonReport json("bench_threaded_fleet", opt);

  const ServeSetup s = make_setup(opt, 1000);
  const std::size_t n = s.table.num_rows();
  const double kvf = static_cast<double>(n) /
                     static_cast<double>(data::paper_rows("movies"));
  const unsigned cores = std::thread::hardware_concurrency();

  serve::WorkloadOptions w;
  w.n_tenants = 8;
  w.tenant_skew = 1.0;
  w.n_requests = 2 * n;  // repeat traffic: prefixes recur across the stream
  w.arrival_rate = 48.0;
  w.seed = opt.seed;
  const auto arrivals = serve::generate_arrivals(n, w);
  std::printf("serving %zu requests over %zu movies rows on %u hardware "
              "threads (PrefixAffinity, Tenant-GGR windows, fixed fleet KV "
              "budget)\n\n",
              w.n_requests, n, cores);

  util::print_banner("wall-clock: virtual-clock driver vs threaded runtime");
  util::TablePrinter tp({"replicas", "virtual (ms)", "threaded (ms)",
                         "speedup vs 1", "real r/s", "real tok/s", "agg PHR",
                         "p99 TTFT (ms)", "identical"});

  const bench::WallClockTimer timer(/*reps=*/3, /*warmup=*/1);
  double threaded_1rep_s = 0.0;
  for (const std::size_t reps : {1u, 2u, 4u, 8u}) {
    serve::OnlineConfig cfg = s.config;
    cfg.n_replicas = reps;
    // Fixed fleet budget: per-replica pool = single-engine pool / replicas.
    cfg.scale_kv_pool(kvf / static_cast<double>(reps));

    serve::OnlineRunResult virt, thr;
    const double virt_s = timer.min_seconds(
        [&] { virt = serve::run_online(s.table, s.fds, arrivals, cfg); });
    const double thr_s = timer.min_seconds([&] {
      thr = serve::run_online_threaded(s.table, s.fds, arrivals, cfg);
    });
    if (reps == 1) threaded_1rep_s = thr_s;

    const bool identical = determinism_match(virt, thr);
    const double speedup = thr_s > 0.0 ? threaded_1rep_s / thr_s : 0.0;
    const double rps =
        thr_s > 0.0 ? static_cast<double>(thr.requests.size()) / thr_s : 0.0;
    const double tps =
        thr_s > 0.0 ? static_cast<double>(thr.engine.prompt_tokens +
                                          thr.engine.output_tokens) /
                          thr_s
                    : 0.0;
    tp.add_row({std::to_string(reps), ms(virt_s), ms(thr_s),
                util::fmt(speedup, 2), util::fmt(rps, 0), util::fmt(tps, 0),
                bench::pct(thr.engine.prompt_cache_hit_rate()),
                ms(thr.latency.p99_ttft), identical ? "yes" : "NO"});
    json.add("threaded_scaling",
             {{"replicas", reps},
              {"hardware_threads", static_cast<std::size_t>(cores)},
              {"wall_s_virtual", virt_s},
              {"wall_s_threaded", thr_s},
              {"speedup_vs_1", speedup},
              {"wall_rps", rps},
              {"wall_tps", tps},
              {"agg_phr", thr.engine.prompt_cache_hit_rate()},
              {"p99_ttft_s", thr.latency.p99_ttft},
              {"load_imbalance", thr.load_imbalance},
              {"determinism_match", identical ? 1 : 0}});
    if (!identical) {
      std::fprintf(stderr,
                   "ERROR: threaded run diverged from the virtual-clock "
                   "oracle at %zu replicas\n",
                   reps);
      json.write();
      return 1;
    }
  }
  tp.print();

  std::printf(
      "\n(threaded beats virtual only when replicas can actually run in\n"
      " parallel — on %u hardware threads expect wins up to ~%u replicas;\n"
      " simulated metrics above are bit-identical either way)\n",
      cores, cores);

  json.write();
  return 0;
}
