// Fig 4 — multi-LLM invocation (T3) and aggregation (T4) on Movies and
// Products. Paper: GGR 2.7-3.7x over No Cache, 1.7-2.8x over Original;
// the multi-LLM gain is diluted by stage 1 (distinct review text).

#include "bench_common.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Fig 4 — multi-LLM (T3) + aggregation (T4), Llama-3-8B [simulated]",
      opt);

  util::TablePrinter tp({"query", "rows", "sel. rows", "No Cache (s)",
                         "Cache Orig (s)", "Cache GGR (s)", "GGR vs NoCache",
                         "GGR vs Orig"});
  std::vector<data::QuerySpec> specs;
  for (const auto& q : data::queries_of_type(data::QueryType::MultiLlm))
    specs.push_back(q);
  for (const auto& q : data::queries_of_type(data::QueryType::Aggregation))
    specs.push_back(q);
  for (const auto& spec : specs) {
    const auto d = bench::load(spec.dataset, opt);
    const auto cmp = query::compare_methods(d, spec, llm::llama3_8b(),
                                            llm::l4(),
                                            opt.kv_fraction(spec.dataset));
    tp.add_row({spec.id, std::to_string(d.table.num_rows()),
                std::to_string(cmp.cache_ggr.rows_selected),
                bench::secs(cmp.no_cache.total_seconds),
                bench::secs(cmp.cache_original.total_seconds),
                bench::secs(cmp.cache_ggr.total_seconds),
                query::format_speedup(cmp.speedup_vs_no_cache()),
                query::format_speedup(cmp.speedup_vs_original())});
  }
  tp.print();
  std::printf("\npaper reference: Movies T3 2.7x/1.7x, Products T3 2.8x/2.2x, "
              "Movies T4 3.5x/2.5x, Products T4 3.7x/2.8x\n");

  // Aggregation semantics check: report the AVG the queries compute.
  util::print_banner("aggregation results (AVG of LLM sentiment scores)");
  for (const auto& spec : data::queries_of_type(data::QueryType::Aggregation)) {
    const auto d = bench::load(spec.dataset, opt);
    auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);
    cfg.scale_kv_pool(opt.kv_fraction(spec.dataset));
    const auto r = query::run_query(d, spec, cfg);
    std::printf("%s: AVG = %.2f over %zu rows\n", spec.id.c_str(), r.aggregate,
                r.rows_selected);
  }
  return 0;
}
