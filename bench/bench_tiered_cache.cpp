// Tiered KV cache + elastic fleet — GPU/host tiers vs a flat cache under
// multi-tenant Zipf overload (DESIGN.md §13).
//
// A flat cache destroys every block it evicts; the tier hierarchy demotes
// cold blocks to host DRAM and promotes them back on hit, paying the
// per-tier link price (CostModel::promote_seconds) into TTFT. The bench
// pits the two against each other on the same fixed fleet KV budget:
//
//   1. tiers_vs_flat: 2-8 replicas serving a Zipf multi-tenant overload
//      stream. SELF-CHECKED headline: at every replica count the tiered
//      arm's aggregate PHR must be >= the flat arm's (strictly greater
//      somewhere), with interactive p99 TTFT no worse — promotion is
//      priced, so this is an honest win, not free-hit accounting;
//   2. split_sweep: host-tier capacity from tiny to unbounded at fixed
//      replicas — how much host DRAM buys how much hit rate;
//   3. elasticity: watermark-driven scale-up under a burst, cold spawns
//      vs warm spawns that migrate hot prefixes from the most-loaded
//      donor; the trace auditor must pass either way;
//   4. determinism: the tiered + elastic run on the real-threads runtime
//      must match the virtual-clock oracle (exit 1 on divergence).
//
// Use --json <path> for machine-readable results.

#include "bench_common.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"
#include "serve/online.hpp"
#include "serve/threaded_fleet.hpp"

using namespace llmq;

namespace {

struct TierSetup {
  table::Table table;
  table::FdSet fds;
  serve::OnlineConfig config;
  double kvf = 1.0;
};

TierSetup make_setup(const bench::BenchOptions& opt, std::size_t row_cap) {
  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), row_cap);
  g.seed = opt.seed;
  data::Dataset d = data::generate_dataset(key, g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");

  TierSetup s;
  s.table = spec.stage1.fields.empty() ? d.table
                                       : d.table.project(spec.stage1.fields);
  s.fds = d.fds;
  s.kvf = static_cast<double>(s.table.num_rows()) /
          static_cast<double>(data::paper_rows(key));
  s.config.prompt.system_prompt = spec.system_prompt;
  s.config.prompt.user_prompt = spec.stage1.user_prompt;
  s.config.avg_output_tokens = 6.0;
  s.config.class_output_multiplier = {0.5, 1.0, 4.0};
  s.config.ttft_slo_seconds = 2.0;
  s.config.scheduler.policy = serve::Policy::WindowedGgr;
  s.config.scheduler.window_rows = 32;
  s.config.scheduler.max_wait_seconds = 1.0;
  s.config.scheduler.priority_order = true;
  s.config.scheduler.aging_seconds = 8.0;
  s.config.engine.max_batch_size = 8;
  s.config.engine.priority_aging_seconds = 8.0;
  s.config.router = serve::RouterPolicy::PrefixAffinity;
  return s;
}

std::vector<serve::Arrival> make_stream(const TierSetup& s, double rate,
                                        std::uint64_t seed) {
  serve::WorkloadOptions w;
  w.arrival_rate = rate;
  w.n_tenants = 9;        // 3 tenants per class
  w.tenant_skew = 1.0;    // Zipf: a few hot tenants dominate the prefixes
  w.tenant_classes = {llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard,
                      llm::PriorityClass::Batch};
  w.n_requests = 3 * s.table.num_rows();  // repeat traffic: prefixes recur
  w.seed = seed;
  return serve::generate_arrivals(s.table.num_rows(), w);
}

const serve::PriorityClassMetrics& cls(const serve::OnlineRunResult& r,
                                       llm::PriorityClass c) {
  return r.per_class[static_cast<std::size_t>(c)];
}

/// Shared fleet budget, deliberately tight: the per-replica GPU pool is
/// HALF the proportional share, so the flat cache sheds shared prefixes
/// under load — the regime the tier hierarchy exists for.
void apply_pool(serve::OnlineConfig& cfg, const TierSetup& s,
                std::size_t reps) {
  cfg.n_replicas = reps;
  cfg.scale_kv_pool(0.5 * s.kvf / static_cast<double>(reps));
}

bool determinism_match(const serve::OnlineRunResult& a,
                       const serve::OnlineRunResult& b) {
  return a.requests.size() == b.requests.size() &&
         a.engine.prompt_tokens == b.engine.prompt_tokens &&
         a.engine.cached_prompt_tokens == b.engine.cached_prompt_tokens &&
         a.engine.output_tokens == b.engine.output_tokens &&
         a.engine.cache.demoted_blocks == b.engine.cache.demoted_blocks &&
         a.engine.cache.promoted_blocks == b.engine.cache.promoted_blocks &&
         a.phc == b.phc && a.latency.p99_ttft == b.latency.p99_ttft &&
         a.load_imbalance == b.load_imbalance;
}

std::string ms(double seconds) { return util::fmt(1000.0 * seconds, 1); }

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Tiered KV cache + elastic fleet vs flat cache", opt);
  bench::JsonReport json("bench_tiered_cache", opt);

  const TierSetup s = make_setup(opt, 600);
  const std::size_t n = s.table.num_rows();
  // Constant per-replica overload: arrivals outpace sustainable goodput at
  // every fleet size without collapsing the small fleets into a pure
  // queueing regime where ordering noise swamps the cache effect.
  const double rate_per_replica = 8.0;
  std::printf("serving %zu requests over %zu movies rows, 9 Zipf tenants "
              "(3 per class), fixed tight fleet KV budget\n\n",
              3 * n, n);
  bool ok = true;

  // ---- 1. tiers vs flat across fleet sizes. ----
  {
    util::print_banner("tiers vs flat (2-8 replicas, Zipf overload)");
    util::TablePrinter tp({"replicas", "arm", "agg PHR", "int p99 TTFT (ms)",
                           "goodput r/s", "demoted", "promoted",
                           "promote (ms)"});
    bool phr_strict_win = false;
    for (const std::size_t reps : {2u, 4u, 8u}) {
      serve::OnlineConfig flat_cfg = s.config;
      apply_pool(flat_cfg, s, reps);
      serve::OnlineConfig tier_cfg = flat_cfg;
      tier_cfg.engine.cache_tiers = 2;  // host tier unbounded
      const auto arrivals =
          make_stream(s, rate_per_replica * static_cast<double>(reps),
                      opt.seed);

      const auto flat = serve::run_online(s.table, s.fds, arrivals, flat_cfg);
      const auto tier = serve::run_online(s.table, s.fds, arrivals, tier_cfg);
      for (const auto* arm : {&flat, &tier}) {
        const bool tiered = arm == &tier;
        const auto& ic = cls(*arm, llm::PriorityClass::Interactive);
        tp.add_row({std::to_string(reps), tiered ? "tiered" : "flat",
                    bench::pct(arm->engine.prompt_cache_hit_rate()),
                    ms(ic.latency.p99_ttft),
                    util::fmt(arm->latency.goodput_rps, 1),
                    std::to_string(arm->engine.cache.demoted_blocks),
                    std::to_string(arm->engine.cache.promoted_blocks),
                    ms(arm->engine.promote_seconds)});
        json.add("tiers_vs_flat",
                 {{"replicas", reps},
                  {"arm", tiered ? "tiered" : "flat"},
                  {"agg_phr", arm->engine.prompt_cache_hit_rate()},
                  {"interactive_p99_ttft_s", ic.latency.p99_ttft},
                  {"p99_ttft_s", arm->latency.p99_ttft},
                  {"goodput_rps", arm->latency.goodput_rps},
                  {"demoted_blocks", arm->engine.cache.demoted_blocks},
                  {"promoted_blocks", arm->engine.cache.promoted_blocks},
                  {"promote_seconds", arm->engine.promote_seconds},
                  {"load_imbalance", arm->load_imbalance}});
      }

      // The self-checked headline: tiers must pay for themselves.
      const double phr_f = flat.engine.prompt_cache_hit_rate();
      const double phr_t = tier.engine.prompt_cache_hit_rate();
      const double p99_f =
          cls(flat, llm::PriorityClass::Interactive).latency.p99_ttft;
      const double p99_t =
          cls(tier, llm::PriorityClass::Interactive).latency.p99_ttft;
      if (phr_t < phr_f) {
        std::fprintf(stderr,
                     "ERROR: tiered PHR %.4f below flat %.4f at %zu "
                     "replicas\n",
                     phr_t, phr_f, reps);
        ok = false;
      }
      if (p99_t > p99_f + 1e-9) {
        std::fprintf(stderr,
                     "ERROR: tiered interactive p99 TTFT %.6fs worse than "
                     "flat %.6fs at %zu replicas\n",
                     p99_t, p99_f, reps);
        ok = false;
      }
      if (tier.engine.cache.demoted_blocks == 0) {
        std::fprintf(stderr,
                     "ERROR: tiered arm never demoted at %zu replicas — "
                     "the pool is not tight enough to exercise tiers\n",
                     reps);
        ok = false;
      }
      phr_strict_win = phr_strict_win || phr_t > phr_f;
    }
    tp.print();
    if (!phr_strict_win) {
      std::fprintf(stderr,
                   "ERROR: tiered never strictly beat flat PHR at any "
                   "fleet size\n");
      ok = false;
    }
  }

  // ---- 2. host-capacity split sweep. ----
  {
    util::print_banner("host-tier capacity sweep (4 replicas)");
    util::TablePrinter tp({"host cap (blocks)", "agg PHR",
                           "int p99 TTFT (ms)", "demoted", "evicted",
                           "promote (ms)"});
    for (const std::size_t host_cap : {8u, 32u, 128u, 0u}) {
      serve::OnlineConfig cfg = s.config;
      apply_pool(cfg, s, 4);
      cfg.engine.cache_tiers = 2;
      cfg.engine.host_capacity_blocks = host_cap;
      const auto arrivals = make_stream(s, 4.0 * rate_per_replica, opt.seed);
      const auto r = serve::run_online(s.table, s.fds, arrivals, cfg);
      const auto& ic = cls(r, llm::PriorityClass::Interactive);
      const std::string cap_str =
          host_cap ? std::to_string(host_cap) : std::string("unbounded");
      tp.add_row({cap_str, bench::pct(r.engine.prompt_cache_hit_rate()),
                  ms(ic.latency.p99_ttft),
                  std::to_string(r.engine.cache.demoted_blocks),
                  std::to_string(r.engine.cache.evicted_blocks),
                  ms(r.engine.promote_seconds)});
      json.add("split_sweep",
               {{"host_capacity_blocks", host_cap},
                {"agg_phr", r.engine.prompt_cache_hit_rate()},
                {"interactive_p99_ttft_s", ic.latency.p99_ttft},
                {"demoted_blocks", r.engine.cache.demoted_blocks},
                {"evicted_blocks", r.engine.cache.evicted_blocks},
                {"promote_seconds", r.engine.promote_seconds}});
    }
    tp.print();
  }

  // ---- 3. elasticity: cold vs warm spawns under a burst. ----
  {
    util::print_banner("elastic scale-up under burst (cold vs warm spawns)");
    util::TablePrinter tp({"spawn", "agg PHR", "int p99 TTFT (ms)", "spawns",
                           "drains", "migrations", "migrated blocks",
                           "audit"});
    // The whole fleet's traffic lands on one replica until the watermarks
    // react — the scale-up burst the elasticity hooks exist for.
    const auto burst = make_stream(s, 36.0, opt.seed);
    for (const std::size_t migrate : {0u, 64u}) {
      serve::OnlineConfig cfg = s.config;
      apply_pool(cfg, s, 1);  // start small, grow under the burst
      cfg.engine.cache_tiers = 2;
      cfg.elasticity.enabled = true;
      cfg.elasticity.min_replicas = 1;
      cfg.elasticity.max_replicas = 3;
      cfg.elasticity.high_watermark_tokens = 600;
      cfg.elasticity.low_watermark_tokens = 100;
      cfg.elasticity.migrate_max_blocks = migrate;
      cfg.elasticity.cooldown_seconds = 0.5;
      obs::TraceLog log;
      cfg.trace.sink = &log;
      const auto r = serve::run_online(s.table, s.fds, burst, cfg);
      const auto audit = obs::audit_trace(log);
      const auto& ic = cls(r, llm::PriorityClass::Interactive);
      if (!audit.ok()) {
        std::fprintf(stderr, "ERROR: elasticity audit failed: %s\n",
                     audit.first_violation().c_str());
        ok = false;
      }
      tp.add_row({migrate ? "warm" : "cold",
                  bench::pct(r.engine.prompt_cache_hit_rate()),
                  ms(ic.latency.p99_ttft),
                  std::to_string(audit.replica_spawns),
                  std::to_string(audit.replica_drains),
                  std::to_string(audit.prefix_migrations),
                  std::to_string(audit.migrated_blocks),
                  audit.ok() ? "ok" : "FAIL"});
      json.add("elasticity",
               {{"spawn", migrate ? "warm" : "cold"},
                {"migrate_max_blocks", migrate},
                {"agg_phr", r.engine.prompt_cache_hit_rate()},
                {"interactive_p99_ttft_s", ic.latency.p99_ttft},
                {"p99_ttft_s", r.latency.p99_ttft},
                {"replica_spawns", audit.replica_spawns},
                {"replica_drains", audit.replica_drains},
                {"prefix_migrations", audit.prefix_migrations},
                {"migrated_blocks", audit.migrated_blocks},
                {"audit_ok", audit.ok() ? 1 : 0}});
    }
    tp.print();
  }

  // ---- 4. determinism: threaded runtime vs virtual-clock oracle. ----
  {
    util::print_banner("determinism (tiered + elastic, threaded vs oracle)");
    serve::OnlineConfig cfg = s.config;
    apply_pool(cfg, s, 2);
    cfg.engine.cache_tiers = 2;
    cfg.elasticity.enabled = true;
    cfg.elasticity.max_replicas = 3;
    cfg.elasticity.high_watermark_tokens = 600;
    cfg.elasticity.low_watermark_tokens = 100;
    cfg.elasticity.migrate_max_blocks = 64;
    cfg.elasticity.cooldown_seconds = 0.5;
    const auto burst = make_stream(s, 36.0, opt.seed);
    const auto virt = serve::run_online_replicated(s.table, s.fds, burst,
                                                   cfg);
    const auto thr = serve::run_online_threaded(s.table, s.fds, burst, cfg);
    const bool identical = determinism_match(virt, thr);
    std::printf("threaded runtime vs virtual clock: %s\n",
                identical ? "bit-identical headline numbers"
                          : "DIVERGED");
    json.add("determinism",
             {{"replicas", std::size_t{2}},
              {"determinism_match", identical ? 1 : 0}});
    if (!identical) {
      std::fprintf(stderr,
                   "ERROR: threaded tiered/elastic run diverged from the "
                   "virtual-clock oracle\n");
      ok = false;
    }
  }

  json.write();
  if (!ok) {
    std::fprintf(stderr, "\nbench_tiered_cache: SELF-CHECK FAILED\n");
    return 1;
  }
  std::printf("\nself-checks passed: tiered PHR >= flat everywhere (strict "
              "somewhere),\ninteractive p99 TTFT no worse, audits clean, "
              "drivers bit-identical\n");
  return 0;
}
