// Serving scenarios — multi-turn sessions, agentic loops, and
// length-aware (SPJF) scheduling.
//
// Every number here is simulated (virtual-clock) time, so every section
// is golden-diffable. Four sections, each with a built-in self-check that
// exits nonzero on violation — the bench doubles as an acceptance gate:
//
//   session_turns    — the same root stream served as 1-, 2-, and 4-turn
//                      chat sessions. A follow-up turn's prompt extends
//                      its parent's prompt + output verbatim, so the
//                      parent prefix is sitting in the KV cache when the
//                      child arrives: aggregate PHR at >= 2 turns must
//                      beat the one-shot baseline.
//   agentic          — tool-use loops (each completion spawns the next
//                      call) on a replicated fleet, traced; the run must
//                      pass obs::audit_trace including its session
//                      turn-chaining invariant, with exactly
//                      roots * (turns - 1) TurnSpawn events.
//   spjf_overload    — an overloaded single-class stream where half the
//                      tenants decode ~16x longer than the other half.
//                      With the per-tenant length predictor feeding
//                      shortest-predicted-job-first admission + dispatch,
//                      short-tenant p99 TTFT must improve over FIFO
//                      without losing a single completion.
//   penalty_ablation — the mispredict-penalty knob replayed over a fixed
//                      observation stream: predictions must be monotone
//                      nondecreasing in the penalty (the knob only ever
//                      pads, never shrinks).
//
// Use --json <path> for machine-readable results.

#include <cmath>

#include "bench_common.hpp"
#include "obs/audit.hpp"
#include "serve/online.hpp"
#include "util/stats.hpp"

using namespace llmq;

namespace {

struct ServeSetup {
  table::Table table;
  table::FdSet fds;
  serve::OnlineConfig config;
  double kv_fraction = 1.0;
};

ServeSetup make_setup(const bench::BenchOptions& opt, std::size_t row_cap) {
  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), row_cap);
  g.seed = opt.seed;
  data::Dataset d = data::generate_dataset(key, g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");

  ServeSetup s;
  s.table = spec.stage1.fields.empty() ? d.table
                                       : d.table.project(spec.stage1.fields);
  s.fds = d.fds;
  s.kv_fraction = static_cast<double>(s.table.num_rows()) /
                  static_cast<double>(data::paper_rows(key));
  s.config.prompt.system_prompt = spec.system_prompt;
  s.config.prompt.user_prompt = spec.stage1.user_prompt;
  s.config.avg_output_tokens = spec.stage1.avg_output_tokens;
  s.config.ttft_slo_seconds = 30.0;
  s.config.router = serve::RouterPolicy::PrefixAffinity;
  return s;
}

/// p99 TTFT over the completions a predicate selects; 0 when none match.
template <typename Pred>
double p99_ttft_where(const serve::OnlineRunResult& r, Pred&& pred) {
  std::vector<double> xs;
  for (const serve::ServedRequest& sr : r.requests)
    if (pred(sr)) xs.push_back(sr.ttft());
  return xs.empty() ? 0.0 : util::percentile(std::move(xs), 99.0);
}

int fail(const char* what) {
  std::fprintf(stderr, "SELF-CHECK FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Serving scenarios — sessions, agents & length-aware scheduling", opt);
  bench::JsonReport json("bench_scenarios", opt);

  const ServeSetup s = make_setup(opt, 600);
  const std::size_t n = s.table.num_rows();

  // ---- 1. Multi-turn chat sessions vs the one-shot baseline. ----
  util::print_banner("multi-turn chat: PHR vs session depth");
  {
    util::TablePrinter tp({"turns", "requests", "agg PHR", "p99 TTFT (ms)",
                           "p50 e2e (s)", "windows"});
    serve::WorkloadOptions w;
    w.n_tenants = 6;
    w.tenant_skew = 1.0;
    w.n_requests = n / 2;
    w.seed = opt.seed;

    double phr1 = 0.0, phr2 = 0.0, phr4 = 0.0;
    for (const std::size_t turns : {1u, 2u, 4u}) {
      // Constant offered load across arms: a depth-k session multiplies
      // each root into k requests, so roots arrive k-times slower — the
      // comparison isolates prefix reuse, not admission overload.
      w.arrival_rate = 6.0 / static_cast<double>(turns);
      serve::SessionOptions so;
      so.kind = serve::SessionKind::Chat;
      so.turns = turns;
      so.mean_gap_seconds = 0.4;
      const serve::SessionWorkload sw =
          serve::generate_sessions(n, w, so);

      serve::OnlineConfig cfg = s.config;
      cfg.scheduler.policy = serve::Policy::Fifo;
      cfg.scheduler.window_rows = 32;
      cfg.scheduler.max_wait_seconds = 0.5;
      cfg.sessions = &sw;
      // Headroom over the per-stream scaling: session prompts are 2-4x
      // longer, and the PHR claim is about prefix reuse, not eviction
      // pressure — the paper-regime pressure sections are elsewhere. The
      // pool scales with depth so offered KV demand / capacity stays
      // constant across arms (a depth-k turn carries ~k turns of history).
      cfg.scale_kv_pool(std::min(
          1.0, 8.0 * s.kv_fraction * static_cast<double>(turns)));
      const serve::OnlineRunResult r =
          serve::run_online(s.table, s.fds, sw.roots, cfg);

      const double phr = r.engine.prompt_cache_hit_rate();
      if (turns == 1) phr1 = phr;
      if (turns == 2) phr2 = phr;
      if (turns == 4) phr4 = phr;
      tp.add_row({std::to_string(turns), std::to_string(r.requests.size()),
                  bench::pct(phr), util::fmt(1000.0 * r.latency.p99_ttft, 0),
                  util::fmt(r.latency.p50_e2e, 2),
                  std::to_string(r.windows)});
      json.add("session_turns", {{"turns", turns},
                                 {"requests", r.requests.size()},
                                 {"agg_phr", phr},
                                 {"p99_ttft_s", r.latency.p99_ttft},
                                 {"p50_e2e_s", r.latency.p50_e2e},
                                 {"windows", r.windows}});
    }
    tp.print();
    std::printf("\n(a follow-up turn replays its parent's prompt + output as "
                "an exact prefix,\n so deeper sessions push PHR up)\n\n");
    if (!(phr2 > phr1) || !(phr4 > phr1)) {
      json.write();
      return fail("session PHR at >= 2 turns must beat the one-shot PHR");
    }
  }

  // ---- 2. Agentic tool-use loops, traced + audited. ----
  util::print_banner("agentic loops: feedback arrivals under audit");
  {
    serve::WorkloadOptions w;
    w.n_tenants = 4;
    w.tenant_skew = 1.0;
    w.n_requests = n / 2;
    w.arrival_rate = 16.0;
    w.seed = opt.seed;
    serve::SessionOptions so;
    so.kind = serve::SessionKind::Agent;
    so.turns = 3;
    so.mean_gap_seconds = 0.2;
    const serve::SessionWorkload sw =
        serve::generate_sessions(n, w, so);

    obs::TraceLog log;
    serve::OnlineConfig cfg = s.config;
    cfg.scheduler.policy = serve::Policy::Fifo;
    cfg.scheduler.window_rows = 16;
    cfg.scheduler.max_wait_seconds = 0.5;
    cfg.sessions = &sw;
    cfg.n_replicas = 2;
    cfg.trace.sink = &log;
    cfg.scale_kv_pool(s.kv_fraction);
    const serve::OnlineRunResult r =
        serve::run_online(s.table, s.fds, sw.roots, cfg);
    const obs::AuditResult audit = obs::audit_trace(log);

    const std::size_t roots = sw.roots.size();
    const std::size_t expected_spawns = roots * (so.turns - 1);
    std::printf("%zu agent loops x %zu turns on 2 replicas: %zu completions, "
                "%zu turn spawns, audit %s (%zu events)\n\n",
                roots, static_cast<std::size_t>(so.turns), r.requests.size(),
                audit.turn_spawns, audit.ok() ? "ok" : "FAILED", audit.events);
    json.add("agentic", {{"replicas", std::size_t{2}},
                         {"roots", roots},
                         {"turns", static_cast<std::size_t>(so.turns)},
                         {"requests", r.requests.size()},
                         {"turn_spawns", audit.turn_spawns},
                         {"audit_ok", audit.ok() ? 1 : 0},
                         {"agg_phr", r.engine.prompt_cache_hit_rate()}});
    if (!audit.ok()) {
      std::fprintf(stderr, "audit: %s\n", audit.first_violation().c_str());
      json.write();
      return fail("agentic trace must pass audit_trace");
    }
    if (audit.turn_spawns != expected_spawns ||
        r.requests.size() != roots * so.turns) {
      json.write();
      return fail("agentic run must spawn every turn exactly once");
    }
  }

  // ---- 3. SPJF under overload: short-predicted jobs first. ----
  util::print_banner("SPJF at overload: predictor-ordered admission");
  double base_short_p99 = 0.0, spjf_short_p99 = 0.0;
  std::size_t base_done = 0, spjf_done = 0;
  serve::OnlineRunResult base_run;  // penalty ablation replays its stream
  {
    util::TablePrinter tp({"arm", "completions", "short p99 TTFT (s)",
                           "long p99 TTFT (s)", "p99 TTFT (s)", "agg PHR"});
    serve::WorkloadOptions w;
    w.n_tenants = 8;
    w.tenant_skew = 0.0;  // uniform: every tenant contributes to both p99s
    w.n_requests = 2 * n;
    w.arrival_rate = 160.0;  // well past the service rate: queues build
    w.seed = opt.seed;
    const auto arrivals = serve::generate_arrivals(n, w);

    for (const bool spjf : {false, true}) {
      serve::OnlineConfig cfg = s.config;
      cfg.scheduler.policy = serve::Policy::Fifo;
      cfg.scheduler.window_rows = 16;
      cfg.scheduler.max_wait_seconds = 0.25;
      // Even tenants are short generations, odd tenants ~16x longer.
      cfg.tenant_output_multiplier = {0.25, 4.0};
      cfg.predictor.enabled = true;
      cfg.scheduler.spjf = spjf;
      cfg.engine.spjf = spjf;
      cfg.scale_kv_pool(s.kv_fraction);
      const serve::OnlineRunResult r =
          serve::run_online(s.table, s.fds, arrivals, cfg);

      const auto is_short = [](const serve::ServedRequest& sr) {
        return sr.tenant % 2 == 0;
      };
      const auto is_long = [](const serve::ServedRequest& sr) {
        return sr.tenant % 2 == 1;
      };
      const double short_p99 = p99_ttft_where(r, is_short);
      const double long_p99 = p99_ttft_where(r, is_long);
      if (spjf) {
        spjf_short_p99 = short_p99;
        spjf_done = r.requests.size();
      } else {
        base_short_p99 = short_p99;
        base_done = r.requests.size();
        base_run = r;
      }
      tp.add_row({spjf ? "spjf" : "fifo", std::to_string(r.requests.size()),
                  util::fmt(short_p99, 2), util::fmt(long_p99, 2),
                  util::fmt(r.latency.p99_ttft, 2),
                  bench::pct(r.engine.prompt_cache_hit_rate())});
      json.add("spjf_overload",
               {{"arm", spjf ? "spjf" : "fifo"},
                {"completions", r.requests.size()},
                {"short_p99_ttft_s", short_p99},
                {"long_p99_ttft_s", long_p99},
                {"p99_ttft_s", r.latency.p99_ttft},
                {"agg_phr", r.engine.prompt_cache_hit_rate()}});
    }
    tp.print();
    std::printf("\n(short-predicted tenants jump the queue within their "
                "class; every request\n still completes — the long tail "
                "pays latency, not completions)\n\n");
    if (spjf_done != base_done) {
      json.write();
      return fail("SPJF must not change the number of completions");
    }
    if (!(spjf_short_p99 < base_short_p99)) {
      json.write();
      return fail("SPJF must improve short-tenant p99 TTFT at overload");
    }
  }

  // ---- 4. Mispredict-penalty ablation over a fixed stream. ----
  util::print_banner("mispredict penalty: prediction padding ablation");
  {
    util::TablePrinter tp({"penalty", "mean predicted (tok)"});
    double prev = 0.0;
    bool monotone = true;
    bool first = true;
    for (const double penalty : {0.0, 0.5, 1.0, 2.0}) {
      serve::LengthPredictorOptions popt;
      popt.enabled = true;
      popt.mispredict_penalty = penalty;
      serve::LengthPredictor pred(popt);
      // Replay the FIFO arm's completion stream — identical observations
      // per penalty, so the comparison isolates the knob.
      for (const serve::ServedRequest& sr : base_run.requests)
        pred.observe(sr.tenant, sr.output_tokens);
      double sum = 0.0;
      for (std::uint32_t tenant = 0; tenant < 8; ++tenant)
        sum += pred.predict(tenant);
      const double mean_pred = sum / 8.0;
      if (!first && mean_pred + 1e-12 < prev) monotone = false;
      first = false;
      prev = mean_pred;
      tp.add_row({util::fmt(penalty, 1), util::fmt(mean_pred, 2)});
      json.add("penalty_ablation",
               {{"penalty", penalty}, {"mean_predicted_tokens", mean_pred}});
    }
    tp.print();
    std::printf("\n(the penalty pads each prediction by penalty x EWMA "
                "absolute error — it can\n only grow predictions, trading "
                "SPJF aggressiveness for mispredict safety)\n");
    if (!monotone) {
      json.write();
      return fail("mean prediction must be monotone in mispredict_penalty");
    }
  }

  json.write();
  return 0;
}
