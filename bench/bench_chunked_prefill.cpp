// Chunked prefill + continuous batching — decode stalls vs chunk size.
//
// Monolithic admission prefill (prefill_chunk_tokens = 0) freezes every
// in-flight decode for the full prefill of whatever gets admitted: on a
// mixed stream where batch tenants submit long documents and interactive
// tenants short rows, that head-of-line blocking lands directly on the
// interactive TTFT/ITL tails. This bench sweeps:
//
//   1. chunk-size x workload-mix: prefill chunk {0 = monolithic, 32..256}
//      against short-only / mixed / document-heavy streams. The headline:
//      on the document-heavy mix, chunking cuts interactive p99 TTFT and
//      p99 ITL (and the engine's worst decode stall) while total token
//      accounting is conserved;
//   2. deep-backlog admission: wall-clock per admitted request when a
//      multi-thousand-request backlog lands on a small-batch engine at
//      once — near-flat scaling across depths pins the per-class FIFO
//      admission queues (the old linear-scan pick + mid-deque erase was
//      O(P^2) per step under backlog).
//
// Use --json <path> for machine-readable results.

#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "llm/engine_session.hpp"
#include "obs/export.hpp"
#include "serve/online.hpp"

using namespace llmq;

namespace {

using table::Schema;
using table::Table;

/// Every `long_every`-th row carries a ~`long_words`-word document cell;
/// the rest are short labels — the mixed long-prefill / short-decode
/// serving shape.
Table mixed_table(std::size_t n, std::size_t long_every,
                  std::size_t long_words) {
  Table t(Schema::of_names({"label", "document"}));
  for (std::size_t r = 0; r < n; ++r) {
    std::string doc;
    if (long_every > 0 && r % long_every == 0) {
      for (std::size_t w = 0; w < long_words; ++w)
        doc += "token" + std::to_string(r) + "word" + std::to_string(w) + " ";
    } else {
      doc = "short entry " + std::to_string(r);
    }
    t.append_row({"label_" + std::to_string(r % 5), std::move(doc)});
  }
  return t;
}

struct Mix {
  const char* name;
  std::size_t long_every;  // 0 = no long rows at all
  std::size_t long_words;
  double rate;
};

/// Interactive tenants hit short rows, a batch tenant replays the long
/// documents (when the mix has any) — classes assigned through the
/// arrivals_from_trace tenant->class mapping.
std::vector<serve::Arrival> mixed_stream(const Table& t, std::size_t n,
                                         const Mix& mix) {
  std::vector<double> times;
  std::vector<std::size_t> rows;
  std::vector<std::uint32_t> tenants;
  std::size_t next_short = 1, next_long = 0;
  for (std::size_t i = 0; i < n; ++i) {
    times.push_back(static_cast<double>(i) / mix.rate);
    if (mix.long_every > 0 && i % 3 == 0) {
      rows.push_back(next_long % t.num_rows());
      next_long += mix.long_every;
      tenants.push_back(1);
    } else {
      rows.push_back(next_short % t.num_rows());
      ++next_short;
      if (mix.long_every > 0 && next_short % mix.long_every == 0) ++next_short;
      tenants.push_back(0);
    }
  }
  return serve::arrivals_from_trace(
      times, rows, tenants,
      serve::classes_for_tenants(tenants, {llm::PriorityClass::Interactive,
                                           llm::PriorityClass::Batch}));
}

serve::OnlineConfig serving_config() {
  serve::OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 6.0;
  cfg.scheduler.policy = serve::Policy::Fifo;
  cfg.scheduler.window_rows = 4;
  cfg.scheduler.max_wait_seconds = 0.25;
  cfg.engine.max_batch_size = 8;
  cfg.engine.kv_pool_blocks_override = 1u << 14;
  cfg.ttft_slo_seconds = 1.0;
  return cfg;
}

std::string ms(double seconds) { return util::fmt(1000.0 * seconds, 0); }

// ---- deep-backlog admission microbench ----

llm::ModelSpec tiny_model() {
  llm::ModelSpec m;
  m.name = "tiny";
  m.params = 1e9;
  m.n_layers = 8;
  m.hidden_dim = 512;
  m.n_heads = 8;
  m.n_kv_heads = 8;
  m.head_dim = 64;
  m.dtype_bytes = 2;
  return m;
}

/// Drop `depth` tiny requests (cycling all three classes) on an engine
/// with few batch slots and time the drain: admission work dominates, so
/// microseconds per request growing with depth would expose a
/// superlinear admission path.
double backlog_us_per_request(std::size_t depth) {
  llm::EngineConfig ec;
  ec.max_batch_size = 16;
  ec.block_size = 16;
  ec.kv_pool_blocks_override = 1u << 16;
  const llm::ServingEngine engine(llm::CostModel(tiny_model(), llm::l4()), ec);
  auto cache = engine.make_session_cache();
  llm::EngineSession session(engine, cache);
  constexpr llm::PriorityClass kClasses[] = {llm::PriorityClass::Interactive,
                                             llm::PriorityClass::Standard,
                                             llm::PriorityClass::Batch};
  for (std::size_t i = 0; i < depth; ++i) {
    llm::Request r;
    r.id = i;
    r.priority = kClasses[i % 3];
    r.output_tokens = 1;
    for (std::size_t k = 0; k < 8; ++k)
      r.prompt.push_back(static_cast<tokenizer::TokenId>(i * 16 + k));
    session.submit(std::move(r));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t done = session.drain().size();
  const auto t1 = std::chrono::steady_clock::now();
  if (done != depth) std::abort();  // accounting bug, not a perf question
  return std::chrono::duration<double, std::micro>(t1 - t0).count() /
         static_cast<double>(depth);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Chunked prefill — decode stalls, tails, and admission scaling", opt);
  bench::JsonReport json("bench_chunked_prefill", opt);
  bool all_conserved = true;

  const std::size_t n_rows = std::max<std::size_t>(
      50, static_cast<std::size_t>(640.0 * opt.scale));
  const std::size_t n_arrivals = n_rows + n_rows / 8;

  // ---- 1. chunk-size x workload-mix sweep. ----
  {
    util::print_banner(
        "chunk sweep (prefill chunk tokens x workload mix, 0 = monolithic)");
    util::TablePrinter tp({"mix", "chunk", "int p99 TTFT (ms)",
                           "int p99 ITL (ms)", "max stall (ms)",
                           "batch p99 e2e (ms)", "goodput (r/s)"});
    const Mix mixes[] = {
        {"short-only", 0, 0, 12.0},
        {"mixed-docs", 4, 150, 12.0},
        {"heavy-docs", 4, 300, 12.0},
    };
    for (const Mix& mix : mixes) {
      const Table t = mixed_table(n_rows, mix.long_every, mix.long_words);
      const table::FdSet fds;
      const auto arrivals = mixed_stream(t, n_arrivals, mix);
      double mono_ttft = 0.0, mono_itl = 0.0;
      for (std::size_t chunk : {0u, 32u, 64u, 128u, 256u}) {
        serve::OnlineConfig cfg = serving_config();
        cfg.engine.prefill_chunk_tokens = chunk;
        const auto r = serve::run_online(t, fds, arrivals, cfg);
        const auto& ic = r.per_class[static_cast<std::size_t>(
            llm::PriorityClass::Interactive)];
        const auto& bc =
            r.per_class[static_cast<std::size_t>(llm::PriorityClass::Batch)];
        if (chunk == 0) {
          mono_ttft = ic.latency.p99_ttft;
          mono_itl = ic.latency.p99_itl;
        }
        // Conservation: every prompt token is a hit or computed exactly
        // once, and the chunk ledger covers the computed work.
        const bool conserved =
            r.engine.cached_prompt_tokens + r.engine.computed_prompt_tokens ==
                r.engine.prompt_tokens &&
            (chunk == 0 || r.engine.chunked_prefill_tokens ==
                               r.engine.computed_prompt_tokens +
                                   r.engine.recompute_prefill_tokens);
        all_conserved = all_conserved && conserved;
        tp.add_row({mix.name, std::to_string(chunk),
                    ms(ic.latency.p99_ttft), ms(ic.latency.p99_itl),
                    ms(r.engine.max_decode_stall_seconds),
                    ms(bc.latency.p99_e2e),
                    util::fmt(r.latency.goodput_rps, 1)});
        json.add("chunk_mix_sweep",
                 {{"mix", mix.name},
                  {"chunk_tokens", chunk},
                  {"interactive_p99_ttft_s", ic.latency.p99_ttft},
                  {"interactive_p99_itl_s", ic.latency.p99_itl},
                  {"max_decode_stall_s", r.engine.max_decode_stall_seconds},
                  {"batch_p99_e2e_s", bc.latency.p99_e2e},
                  {"goodput_rps", r.latency.goodput_rps},
                  {"prompt_tokens", r.engine.prompt_tokens},
                  {"chunked_prefill_tokens", r.engine.chunked_prefill_tokens},
                  {"tokens_conserved", conserved ? "yes" : "NO"}});
      }
      if (mono_ttft > 0.0 && mix.long_every > 0) {
        serve::OnlineConfig cfg = serving_config();
        cfg.engine.prefill_chunk_tokens = 64;
        const auto r = serve::run_online(t, fds, arrivals, cfg);
        const auto& ic = r.per_class[static_cast<std::size_t>(
            llm::PriorityClass::Interactive)];
        std::printf("  %s @ chunk=64: int p99 TTFT %s -> %s ms, "
                    "p99 ITL %s -> %s ms vs monolithic\n",
                    mix.name, ms(mono_ttft).c_str(),
                    ms(ic.latency.p99_ttft).c_str(), ms(mono_itl).c_str(),
                    ms(ic.latency.p99_itl).c_str());
      }
    }
    tp.print();
  }

  // ---- tracing: preemption-and-chunking-rich representative run. ----
  if (!opt.trace_path.empty()) {
    const Mix mix = {"heavy-docs", 4, 300, 12.0};
    const Table t = mixed_table(n_rows, mix.long_every, mix.long_words);
    const table::FdSet fds;
    const auto arrivals = mixed_stream(t, n_arrivals, mix);
    serve::OnlineConfig cfg = serving_config();
    cfg.engine.prefill_chunk_tokens = 64;
    obs::TraceLog log;
    obs::TimeSeries ts;
    cfg.trace.sink = &log;
    cfg.trace.timeseries = &ts;
    (void)serve::run_online(t, fds, arrivals, cfg);
    if (obs::write_perfetto_trace(opt.trace_path, log, &ts))
      std::printf("\n[trace: %zu events (heavy-docs, chunk=64) -> %s "
                  "(+ %s.jsonl)]\n",
                  log.size(), opt.trace_path.c_str(), opt.trace_path.c_str());
    obs::write_text_file(opt.trace_path + ".jsonl", obs::trace_to_jsonl(log));
  }

  // ---- 2. deep-backlog admission scaling. ----
  {
    util::print_banner(
        "deep-backlog admission (wall-clock per request, mixed classes)");
    util::TablePrinter tp({"backlog depth", "us / request"});
    const std::size_t base = std::max<std::size_t>(
        256, static_cast<std::size_t>(16384.0 * opt.scale));
    for (const std::size_t depth : {base / 4, base / 2, base}) {
      const double us = backlog_us_per_request(depth);
      tp.add_row({std::to_string(depth), util::fmt(us, 3)});
      json.add("deep_backlog",
               {{"depth", depth}, {"us_per_request", us}});
    }
    tp.print();
    std::printf("near-flat us/request across depths = amortized near-linear "
                "admission (per-class FIFO queues)\n");
  }

  json.write();
  if (!all_conserved) {
    std::fprintf(stderr,
                 "FAIL: token accounting not conserved in at least one "
                 "configuration (see tokens_conserved in the sweep)\n");
    return 1;  // the benchjson suite and CI smoke-run require exit 0
  }
  return 0;
}
