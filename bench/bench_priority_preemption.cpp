// Priority classes under overload — engine-level preemption vs waiting.
//
// The serving stack treats every request as equal until priority classes
// arrive: under overload an interactive row queues behind batch analytics
// scans, and the only lever is admission order. This bench serves a
// three-class stream (interactive / standard / batch tenants; batch rows
// decode ~8x longer, the analytics shape) at multiples of a sustainable
// base rate and toggles EngineConfig::preemption:
//
//   1. overload sweep: rate multiplier x preemption on/off. The headline
//      is per-class: interactive p99 TTFT must improve at >= 2x overload
//      when preemption can evict running batch rows, while batch-class
//      completion is preserved (aging re-queues victims, every request
//      finishes) and pays with recompute + degraded latency;
//   2. aging sweep: the anti-starvation knob at 2x overload — small
//      horizons protect batch latency, large ones protect interactive.
//
// Use --json <path> for machine-readable results.

#include <array>

#include "bench_common.hpp"
#include "serve/online.hpp"

using namespace llmq;

namespace {

struct PrioSetup {
  table::Table table;
  table::FdSet fds;
  serve::OnlineConfig config;
};

PrioSetup make_setup(const bench::BenchOptions& opt, std::size_t row_cap) {
  const char* key = "movies";
  data::GenOptions g;
  g.n_rows = std::min<std::size_t>(opt.rows_for(key), row_cap);
  g.seed = opt.seed;
  data::Dataset d = data::generate_dataset(key, g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");

  PrioSetup s;
  s.table = spec.stage1.fields.empty() ? d.table
                                       : d.table.project(spec.stage1.fields);
  s.fds = d.fds;
  s.config.prompt.system_prompt = spec.system_prompt;
  s.config.prompt.user_prompt = spec.stage1.user_prompt;
  s.config.avg_output_tokens = 8.0;
  // Interactive rows are short completions; batch rows are long analytics
  // generations that hold batch slots — the preemption target.
  s.config.class_output_multiplier = {0.5, 1.0, 8.0};
  s.config.ttft_slo_seconds = 2.0;
  s.config.scheduler.policy = serve::Policy::WindowedGgr;
  s.config.scheduler.window_rows = 32;
  s.config.scheduler.max_wait_seconds = 1.0;
  s.config.scheduler.priority_order = true;
  s.config.scheduler.aging_seconds = 60.0;
  s.config.engine.max_batch_size = 8;
  s.config.engine.priority_aging_seconds = 60.0;
  s.config.n_replicas = 2;
  s.config.router = serve::RouterPolicy::PrefixAffinity;
  const double kvf = static_cast<double>(s.table.num_rows()) /
                     static_cast<double>(data::paper_rows(key));
  s.config.scale_kv_pool(kvf);
  return s;
}

std::vector<serve::Arrival> make_stream(const PrioSetup& s, double rate,
                                        std::uint64_t seed) {
  serve::WorkloadOptions w;
  w.arrival_rate = rate;
  w.n_tenants = 3;
  w.tenant_skew = 0.0;  // balanced classes: each ~1/3 of arrivals
  w.tenant_classes = {llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard,
                      llm::PriorityClass::Batch};
  w.n_requests = 2 * s.table.num_rows();
  w.seed = seed;
  return serve::generate_arrivals(s.table.num_rows(), w);
}

const serve::PriorityClassMetrics& cls(const serve::OnlineRunResult& r,
                                       llm::PriorityClass c) {
  return r.per_class[static_cast<std::size_t>(c)];
}

std::string ms(double seconds) { return util::fmt(1000.0 * seconds, 0); }

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Priority classes — engine-level preemption under overload", opt);
  bench::JsonReport json("bench_priority_preemption", opt);

  const PrioSetup s = make_setup(opt, 600);
  const std::size_t n = s.table.num_rows();
  std::printf("serving %zu movie rows as a 3-class stream "
              "(interactive/standard/batch tenants, batch decodes 8x)\n\n",
              n);

  // Base rate: what the two-replica fleet sustains with headroom at this
  // scale (empirically ~its aggregate decode throughput for this mix).
  const double base_rate = 4.0;

  // ---- 1. overload sweep x preemption. ----
  double p99_on_2x = 0.0, p99_off_2x = 0.0;
  {
    util::print_banner(
        "overload sweep (rate = mult x base, preemption off vs on)");
    util::TablePrinter tp({"mult", "preempt", "int p99 TTFT (ms)",
                           "std p99 TTFT (ms)", "batch p99 e2e (ms)",
                           "int goodput (r/s)", "batch done", "preempts",
                           "recompute tok"});
    for (double mult : {1.0, 2.0, 3.0}) {
      const auto arrivals = make_stream(s, mult * base_rate, opt.seed);
      for (const bool preempt : {false, true}) {
        serve::OnlineConfig cfg = s.config;
        cfg.engine.preemption = preempt;
        const auto r = serve::run_online(s.table, s.fds, arrivals, cfg);
        const auto& ic = cls(r, llm::PriorityClass::Interactive);
        const auto& sc = cls(r, llm::PriorityClass::Standard);
        const auto& bc = cls(r, llm::PriorityClass::Batch);
        if (mult == 2.0 && preempt) p99_on_2x = ic.latency.p99_ttft;
        if (mult == 2.0 && !preempt) p99_off_2x = ic.latency.p99_ttft;
        tp.add_row({util::fmt(mult, 0), preempt ? "on" : "off",
                    ms(ic.latency.p99_ttft), ms(sc.latency.p99_ttft),
                    ms(bc.latency.p99_e2e),
                    util::fmt(ic.latency.goodput_rps, 1),
                    std::to_string(bc.requests),
                    std::to_string(r.engine.preemptions),
                    std::to_string(r.engine.recompute_prefill_tokens)});
        json.add("overload",
                 {{"rate_mult", mult},
                  {"rate_rps", mult * base_rate},
                  {"preemption", preempt ? "on" : "off"},
                  {"interactive_p99_ttft_s", ic.latency.p99_ttft},
                  {"standard_p99_ttft_s", sc.latency.p99_ttft},
                  {"batch_p99_e2e_s", bc.latency.p99_e2e},
                  {"interactive_goodput_rps", ic.latency.goodput_rps},
                  {"batch_completed", bc.requests},
                  {"preemptions", r.engine.preemptions},
                  {"recompute_tokens", r.engine.recompute_prefill_tokens},
                  {"agg_phr", r.engine.prompt_cache_hit_rate()}});
      }
    }
    tp.print();
    if (p99_off_2x > 0.0)
      std::printf("\nat 2x overload: interactive p99 TTFT %s ms (preempt on) "
                  "vs %s ms (off) — %.2fx\n",
                  ms(p99_on_2x).c_str(), ms(p99_off_2x).c_str(),
                  p99_on_2x > 0.0 ? p99_off_2x / p99_on_2x : 0.0);
  }

  // ---- 2. aging sweep at 2x overload (preemption on). ----
  {
    util::print_banner("aging sweep (2x overload, preemption on)");
    util::TablePrinter tp({"aging (s)", "int p99 TTFT (ms)",
                           "batch p99 e2e (ms)", "batch done", "preempts"});
    const auto arrivals = make_stream(s, 2.0 * base_rate, opt.seed);
    for (double aging : {15.0, 60.0, 240.0}) {
      serve::OnlineConfig cfg = s.config;
      cfg.engine.preemption = true;
      cfg.engine.priority_aging_seconds = aging;
      cfg.scheduler.aging_seconds = aging;
      const auto r = serve::run_online(s.table, s.fds, arrivals, cfg);
      const auto& ic = cls(r, llm::PriorityClass::Interactive);
      const auto& bc = cls(r, llm::PriorityClass::Batch);
      tp.add_row({util::fmt(aging, 0), ms(ic.latency.p99_ttft),
                  ms(bc.latency.p99_e2e), std::to_string(bc.requests),
                  std::to_string(r.engine.preemptions)});
      json.add("aging_sweep",
               {{"aging_s", aging},
                {"interactive_p99_ttft_s", ic.latency.p99_ttft},
                {"batch_p99_e2e_s", bc.latency.p99_e2e},
                {"batch_completed", bc.requests},
                {"preemptions", r.engine.preemptions}});
    }
    tp.print();
  }

  json.write();
  return 0;
}
