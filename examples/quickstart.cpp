// Quickstart: the llmq pipeline on a small inline table.
//
//  1. Build a relational table (reviews joined with product metadata).
//  2. Declare functional dependencies.
//  3. Plan a request ordering with GGR and compare its prefix hit count
//     against the original ordering.
//  4. Serve both schedules through the simulated LLM engine and compare
//     job completion times.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "core/phc.hpp"
#include "llm/engine.hpp"
#include "query/llm_operator.hpp"
#include "query/prompt.hpp"
#include "table/table.hpp"

using namespace llmq;

int main() {
  // -- 1. A table of product reviews, metadata repeated per product. ----
  table::Table t(table::Schema::of_names(
      {"review", "rating", "product", "description"}));
  const char* products[][2] = {
      {"Nebula X1 Headphones",
       "Wireless over-ear headphones with active noise cancelling and a "
       "thirty hour battery life, tuned for studio-flat response"},
      {"Aurora Desk Lamp",
       "Adjustable LED desk lamp with three color temperatures, a USB "
       "charging port and a five year warranty"}};
  const char* reviews[] = {
      "Crisp highs and deep bass, easily the best value in this range",
      "Battery life is as advertised, comfort is superb on long flights",
      "The hinge feels flimsy and mine developed a rattle within a week",
      "Bright, flicker free and the color modes genuinely help at night",
      "Arrived with a dead LED strip, replacement took three weeks",
      "Perfect reading companion, the warm mode is easy on the eyes"};
  const int product_of[] = {0, 0, 0, 1, 1, 1};
  const char* rating_of[] = {"5", "5", "2", "5", "1", "4"};
  // Interleave products so the original ordering has no adjacent sharing.
  for (int i : {0, 3, 1, 4, 2, 5})
    t.append_row({reviews[i], rating_of[i], products[product_of[i]][0],
                  products[product_of[i]][1]});

  // -- 2. FDs: the product name determines its description. -------------
  table::FdSet fds;
  fds.add_group({"product", "description"});

  // -- 3. Plan with GGR; compare PHC against the original ordering. -----
  core::GgrOptions opts;  // paper defaults: depth (4, 2), token lengths
  const auto plan = core::ggr(t, fds, opts);
  const auto original = core::original_ordering(t);
  std::printf("PHC original : %.0f\n", core::phc(t, original));
  std::printf("PHC GGR      : %.0f  (solver %.3f ms)\n", plan.phc,
              plan.solve_seconds * 1e3);

  std::printf("\nGGR schedule (row -> field order):\n");
  for (std::size_t pos = 0; pos < plan.ordering.num_rows(); ++pos) {
    std::printf("  row %zu: ", plan.ordering.row_at(pos));
    for (std::size_t f : plan.ordering.fields_at(pos))
      std::printf("%s ", t.schema().field(f).name.c_str());
    std::printf("\n");
  }

  // -- 4. Serve both schedules and compare simulated job time. ----------
  query::LlmOperatorSpec op;
  op.tmpl.system_prompt =
      "You are a data analyst. Use the provided JSON data to answer the "
      "user query based on the specified fields.";
  op.tmpl.user_prompt =
      "Does the review match the product description? Answer Yes or No.";
  op.avg_output_tokens = 2;
  const llm::TaskModel task_model(llm::profile_llama3_8b());

  llm::EngineConfig ec;
  ec.cache_enabled = true;
  llm::ServingEngine engine(llm::CostModel(llm::llama3_8b(), llm::l4()), ec);

  for (const auto& [name, ordering] :
       {std::pair<const char*, const core::Ordering&>{"original", original},
        {"GGR", plan.ordering}}) {
    const auto reqs = query::build_requests(t, ordering, op, task_model, {});
    const auto run = engine.run(reqs.requests);
    std::printf("\n%-8s: %.2f simulated s, prompt cache hit rate %.0f%%\n",
                name, run.metrics.total_seconds,
                100.0 * run.metrics.prompt_cache_hit_rate());
  }
  return 0;
}
