// Concurrent query serving demo: four relational LLM queries from four
// "users" share one 2-replica serving fleet instead of each spinning up a
// private engine.
//
// Two users refresh the same filter dashboard (their invocations are
// exact duplicates — answered once, fanned out by the dedup memo), one
// runs a projection, one a two-stage multi-LLM query whose stage 2 is
// submitted from inside the event loop when stage 1's filter resolves.
// The demo prints each query's answers-equivalence with the offline
// executor, then the fleet-level attribution: per-query lanes, prefix
// hits vs memo hits, and the speedup over running the queries serially
// on cold caches.
//
// Build & run:  ./build/example_concurrent_queries

#include <cstdio>

#include "query/executor.hpp"
#include "serve/query_client.hpp"

using namespace llmq;

int main() {
  // -- 1. Data + query mix. ---------------------------------------------
  data::GenOptions g;
  g.n_rows = 300;
  g.seed = 7;
  const data::Dataset d = data::generate_dataset("movies", g);
  const std::vector<const data::QuerySpec*> mix = {
      &data::query_by_id("movies-filter"),
      &data::query_by_id("movies-filter"),  // same dashboard, second user
      &data::query_by_id("movies-projection"),
      &data::query_by_id("movies-multi")};

  query::ExecConfig cfg = query::ExecConfig::standard(query::Method::CacheGgr);
  cfg.scale_kv_pool(300.0 / static_cast<double>(data::paper_rows("movies")));

  // -- 2. Serial baseline: each query alone on a cold engine. -----------
  double serial_seconds = 0.0;
  std::vector<query::QueryRunResult> offline;
  for (const auto* spec : mix) {
    offline.push_back(query::run_query(d, *spec, cfg));
    serial_seconds += offline.back().total_seconds;
  }

  // -- 3. The same four queries, concurrently on one shared fleet. ------
  std::vector<serve::ServedQuerySpec> qs;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    serve::ServedQuerySpec q;
    q.dataset = &d;
    q.query = mix[i];
    q.config = cfg;
    q.start_time = 0.1 * static_cast<double>(i);
    q.request_interval = 0.01;
    qs.push_back(q);
  }
  serve::FleetConfig fleet = serve::fleet_from_exec(cfg);
  fleet.n_replicas = 2;
  fleet.router = serve::RouterPolicy::PrefixAffinity;
  fleet.scale_kv_pool(300.0 / static_cast<double>(data::paper_rows("movies")) /
                      2.0);  // fixed fleet budget
  const auto r = serve::run_queries_served(qs, fleet);

  // -- 4. Results: same answers, shared-fleet economics. ----------------
  std::printf("query lanes (2 replicas, PrefixAffinity):\n");
  for (std::size_t i = 0; i < r.queries.size(); ++i) {
    const auto& lane = r.serving.per_query[i];
    std::printf(
        "  [%zu] %-18s rows %4zu  answers==offline %s  PHR %5.1f%%  "
        "memo hits %zu\n",
        i, r.queries[i].query_id.c_str(), r.queries[i].answers.size(),
        r.queries[i].answers == offline[i].answers ? "yes" : "NO",
        100.0 * lane.hit_rate(), lane.dedup_hits);
  }
  const auto& s = r.serving;
  const double eff = s.effective_hit_fraction();
  std::printf(
      "\nfleet: %zu completions, engine PHR %.1f%%, effective hit %.1f%% "
      "(%llu prompt tokens never prefilled via memo)\n",
      s.requests.size(), 100.0 * s.engine.prompt_cache_hit_rate(),
      100.0 * eff,
      static_cast<unsigned long long>(s.dedup.saved_prompt_tokens));
  std::printf("serial cold-cache: %.1fs   shared fleet: %.1fs   (%.2fx)\n",
              serial_seconds, s.latency.makespan,
              serial_seconds / s.latency.makespan);
  return 0;
}
