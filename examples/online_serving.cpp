// Online serving demo: the paper's reordering win, live on a stream.
//
// Generates a Poisson stream of multi-tenant requests over the synthetic
// Movies table and serves it twice through the online scheduler — once
// FIFO (dispatch in arrival order), once with cache-aware windowed GGR
// reordering — then prints the serving metrics side by side: prompt-cache
// hit rate, TTFT percentiles, queueing delay, goodput.
//
// Build & run:  ./build/example_online_serving

#include <cstdio>

#include "data/benchmark_suite.hpp"
#include "data/generators.hpp"
#include "serve/online.hpp"

using namespace llmq;

int main() {
  // -- 1. Data: 400 rows of the Movies benchmark table. -----------------
  data::GenOptions g;
  g.n_rows = 400;
  g.seed = 7;
  const data::Dataset d = data::generate_dataset("movies", g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");
  const table::Table t = spec.stage1.fields.empty()
                             ? d.table
                             : d.table.project(spec.stage1.fields);

  // -- 2. Workload: 2 tenants, 20 req/s Poisson. ------------------------
  serve::WorkloadOptions w;
  w.arrival_rate = 20.0;
  w.n_tenants = 2;
  w.seed = 7;
  const auto arrivals = serve::generate_arrivals(t.num_rows(), w);
  std::printf("stream: %zu arrivals over %.1f simulated s\n\n",
              arrivals.size(), arrivals.back().time);

  // -- 3. Serve the same stream under both policies. --------------------
  serve::OnlineConfig cfg;
  cfg.prompt.system_prompt = spec.system_prompt;
  cfg.prompt.user_prompt = spec.stage1.user_prompt;
  cfg.avg_output_tokens = spec.stage1.avg_output_tokens;
  cfg.scheduler.window_rows = 64;
  cfg.scheduler.max_wait_seconds = 4.0;
  // Oversubscribe the KV cache the way paper-scale tables do.
  cfg.scale_kv_pool(static_cast<double>(t.num_rows()) /
                    static_cast<double>(data::paper_rows("movies")));

  for (const serve::Policy policy :
       {serve::Policy::Fifo, serve::Policy::WindowedGgr}) {
    cfg.scheduler.policy = policy;
    const serve::OnlineRunResult r = serve::run_online(t, d.fds, arrivals, cfg);
    std::printf("%-12s: PHR %.0f%%  TTFT p50 %.2fs p99 %.2fs  queue %.2fs  "
                "goodput %.1f req/s  (%zu windows, planner %.1f ms)\n",
                serve::to_string(policy).c_str(),
                100.0 * r.engine.prompt_cache_hit_rate(), r.latency.p50_ttft,
                r.latency.p99_ttft, r.latency.mean_queue_delay,
                r.latency.goodput_rps, r.windows, 1e3 * r.solve_seconds);
  }
  std::printf(
      "\nSame trace, same engine: the windowed-GGR scheduler turns buffer "
      "slack\ninto prefix-cache hits — the paper's batch-mode win, online.\n");
  return 0;
}
