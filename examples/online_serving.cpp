// Online serving demo: the paper's reordering win, live on a stream.
//
// Generates a Poisson stream of multi-tenant requests over the synthetic
// Movies table and serves it twice through the online scheduler — once
// FIFO (dispatch in arrival order), once with cache-aware windowed GGR
// reordering — then prints the serving metrics side by side: prompt-cache
// hit rate, TTFT percentiles, queueing delay, goodput.
//
// Build & run:  ./build/example_online_serving
// Pass --trace out.json to also record the windowed-GGR run as a Perfetto
// trace (open it at ui.perfetto.dev): one track per replica, an async span
// per request, counter tracks for KV blocks and queue depths.

#include <cstdio>
#include <cstring>
#include <string>

#include "data/benchmark_suite.hpp"
#include "data/generators.hpp"
#include "obs/export.hpp"
#include "serve/online.hpp"

using namespace llmq;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  // -- 1. Data: 400 rows of the Movies benchmark table. -----------------
  data::GenOptions g;
  g.n_rows = 400;
  g.seed = 7;
  const data::Dataset d = data::generate_dataset("movies", g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");
  const table::Table t = spec.stage1.fields.empty()
                             ? d.table
                             : d.table.project(spec.stage1.fields);

  // -- 2. Workload: 2 tenants, 20 req/s Poisson. ------------------------
  serve::WorkloadOptions w;
  w.arrival_rate = 20.0;
  w.n_tenants = 2;
  w.seed = 7;
  const auto arrivals = serve::generate_arrivals(t.num_rows(), w);
  std::printf("stream: %zu arrivals over %.1f simulated s\n\n",
              arrivals.size(), arrivals.back().time);

  // -- 3. Serve the same stream under both policies. --------------------
  serve::OnlineConfig cfg;
  cfg.prompt.system_prompt = spec.system_prompt;
  cfg.prompt.user_prompt = spec.stage1.user_prompt;
  cfg.avg_output_tokens = spec.stage1.avg_output_tokens;
  cfg.scheduler.window_rows = 64;
  cfg.scheduler.max_wait_seconds = 4.0;
  // Oversubscribe the KV cache the way paper-scale tables do.
  cfg.scale_kv_pool(static_cast<double>(t.num_rows()) /
                    static_cast<double>(data::paper_rows("movies")));

  obs::TraceLog trace_log;
  obs::TimeSeries timeseries;
  for (const serve::Policy policy :
       {serve::Policy::Fifo, serve::Policy::WindowedGgr}) {
    cfg.scheduler.policy = policy;
    // Trace the windowed-GGR pass only: tracing is pure (the sink never
    // feeds back into scheduling), so its metrics match the untraced run.
    const bool traced =
        !trace_path.empty() && policy == serve::Policy::WindowedGgr;
    cfg.trace.sink = traced ? &trace_log : nullptr;
    cfg.trace.timeseries = traced ? &timeseries : nullptr;
    const serve::OnlineRunResult r = serve::run_online(t, d.fds, arrivals, cfg);
    std::printf("%-12s: PHR %.0f%%  TTFT p50 %.2fs p99 %.2fs  queue %.2fs  "
                "goodput %.1f req/s  (%zu windows, planner %.1f ms)\n",
                serve::to_string(policy).c_str(),
                100.0 * r.engine.prompt_cache_hit_rate(), r.latency.p50_ttft,
                r.latency.p99_ttft, r.latency.mean_queue_delay,
                r.latency.goodput_rps, r.windows, 1e3 * r.solve_seconds);
  }
  if (!trace_path.empty() &&
      obs::write_perfetto_trace(trace_path, trace_log, &timeseries))
    std::printf("\n[%zu trace events -> %s; open at ui.perfetto.dev]\n",
                trace_log.size(), trace_path.c_str());
  std::printf(
      "\nSame trace, same engine: the windowed-GGR scheduler turns buffer "
      "slack\ninto prefix-cache hits — the paper's batch-mode win, online.\n");
  return 0;
}
