// SQL demo: run the paper's actual SQL snippets (Appendix A) against the
// synthetic benchmark datasets through the llmq SQL front end. Every
// LLM(...) call is transparently planned with GGR before hitting the
// simulated serving engine.
//
// Build & run:  ./build/examples/sql_demo

#include <cstdio>

#include "sql/executor.hpp"

using namespace llmq;

namespace {

void show(const char* title, const sql::SqlResult& res, std::size_t max_rows) {
  std::printf("-- %s\n", title);
  std::printf("   result: %zu rows x %zu cols | simulated %.1f s | "
              "solver %.3f s | PHR %.1f%% | LLM stages %zu\n",
              res.result.num_rows(), res.result.num_cols(),
              res.simulated_seconds, res.solver_seconds,
              100.0 * res.overall_phr(), res.stages.size());
  for (std::size_t r = 0; r < std::min(max_rows, res.result.num_rows()); ++r) {
    std::printf("   | ");
    for (std::size_t c = 0; c < res.result.num_cols(); ++c) {
      std::string cell = res.result.cell(r, c);
      if (cell.size() > 40) cell = cell.substr(0, 37) + "...";
      std::printf("%s | ", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Catalog: scaled-down synthetic Movies + Beer benchmark tables.
  sql::Catalog catalog;
  data::GenOptions g;
  g.n_rows = 600;
  g.seed = 7;
  catalog.put_dataset("MOVIES", data::generate_movies(g));
  catalog.put_dataset("BEER", data::generate_beer(g));

  sql::SqlOptions opt;  // defaults to Cache (GGR), Llama-3-8B on one L4
  opt.exec.scale_kv_pool(600.0 / 15000.0);

  // 1. The paper's LLM filter (Appendix A).
  show("LLM filter: kid-suitable movies",
       sql::execute(
           "SELECT t.movietitle FROM MOVIES WHERE LLM('Given the following "
           "fields, determine whether the movie is suitable for kids. "
           "Answer ONLY with Yes or No.', movieinfo, reviewcontent, "
           "reviewtype, movietitle) = 'Yes'",
           catalog, opt),
       4);

  // 2. The paper's LLM projection.
  show("LLM projection: summarize favorable qualities",
       sql::execute(
           "SELECT LLM('Given the following information, summarize good "
           "qualities in this movie that led to a favorable rating.', "
           "reviewcontent, movieinfo) AS summary FROM MOVIES",
           catalog, opt),
       3);

  // 3. The paper's multi-LLM invocation (filter + projection).
  show("multi-LLM: summarize NEGATIVE reviews",
       sql::execute(
           "SELECT LLM('Given the information about a movie, summarize the "
           "good qualities that led to a favorable rating.', reviewtype, "
           "reviewcontent, movieinfo, genres) FROM MOVIES WHERE LLM('Given "
           "the following review, answer whether the sentiment is POSITIVE "
           "or NEGATIVE.', reviewcontent) = 'NEGATIVE'",
           catalog, opt),
       3);

  // 4. The paper's LLM aggregation.
  show("LLM aggregation: AVG sentiment score",
       sql::execute(
           "SELECT AVG(LLM('Rate sentiment in numerical values from 1 "
           "(bad) to 5 (good).', reviewcontent, movieinfo)) AS AverageScore "
           "FROM MOVIES",
           catalog, opt),
       1);

  // 5. Same filter, original ordering — the end-to-end win in one line.
  sql::SqlOptions orig = opt;
  orig.exec = query::ExecConfig::standard(query::Method::CacheOriginal);
  orig.exec.scale_kv_pool(600.0 / 15000.0);
  const char* q =
      "SELECT movietitle FROM MOVIES WHERE LLM('Suitable for kids?', "
      "movieinfo, reviewcontent, reviewtype, movietitle) = 'Yes'";
  const auto r_orig = sql::execute(q, catalog, orig);
  const auto r_ggr = sql::execute(q, catalog, opt);
  std::printf("-- ordering comparison on the same SQL --\n");
  std::printf("   Cache (Original): %6.1f s  (PHR %.1f%%)\n",
              r_orig.simulated_seconds, 100.0 * r_orig.overall_phr());
  std::printf("   Cache (GGR)     : %6.1f s  (PHR %.1f%%)  -> %.1fx speedup\n",
              r_ggr.simulated_seconds, 100.0 * r_ggr.overall_phr(),
              r_orig.simulated_seconds / r_ggr.simulated_seconds);
  return 0;
}
