// RAG pipeline example (paper §6.2 "RAG"):
//
//   SELECT LLM('Given a question and four supporting contexts, answer the
//               provided question.', VectorDB.search(question, k=4),
//              question)
//   FROM FEVER
//
// Build a small evidence corpus, index it, retrieve per-claim contexts,
// and show how GGR rearranges questions *and* context fields so claims
// sharing evidence run back-to-back with the shared contexts fronted.
//
// Build & run:  ./build/examples/rag_pipeline

#include <cstdio>

#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "core/phc.hpp"
#include "rag/context_builder.hpp"
#include "util/wordbank.hpp"

using namespace llmq;

int main() {
  util::Rng rng(99);
  const auto& bank = util::default_wordbank();

  // -- corpus: 4 topics x 4 evidence passages ---------------------------
  rag::VectorIndex index{rag::Embedder(128)};
  std::vector<std::string> topics;
  for (int t = 0; t < 4; ++t) {
    topics.push_back(bank.title(rng, 3));
    for (int p = 0; p < 4; ++p)
      index.add(topics.back() + ". " + bank.text_of_tokens(rng, 120));
  }
  std::printf("indexed %zu evidence passages across %zu topics\n",
              index.size(), topics.size());

  // -- claims: several per topic, interleaved ---------------------------
  std::vector<std::string> claims;
  for (int round = 0; round < 5; ++round)
    for (const auto& topic : topics)
      claims.push_back(topic + " is associated with " + bank.title(rng, 2) +
                       ".");

  // -- retrieval: top-4 contexts per claim ------------------------------
  rag::RagTableOptions ro;
  ro.k = 4;
  ro.question_field = "claim";
  ro.context_prefix = "evidence";
  const auto rag_table = rag::build_rag_table(index, claims, ro);
  std::printf("RAG table: %zu rows x %zu fields (claim + 4 contexts)\n\n",
              rag_table.num_rows(), rag_table.num_cols());

  // -- plan: GGR vs the original claim-first layout ---------------------
  core::GgrOptions opts;
  const auto plan = core::ggr(rag_table, table::FdSet{}, opts);
  const auto original = core::original_ordering(rag_table);

  const auto b_orig = core::phc_breakdown(rag_table, original);
  const auto b_ggr = core::phc_breakdown(rag_table, plan.ordering);
  std::printf("adjacent-row sharing (squared-token hit fraction):\n");
  std::printf("  original : %5.1f%%   (claim field first blocks everything)\n",
              100.0 * b_orig.hit_fraction());
  std::printf("  GGR      : %5.1f%%   (shared evidence fronted, claim last)\n",
              100.0 * b_ggr.hit_fraction());

  // Show one reordered row: evidence fields come first, claim last.
  const auto& fo = plan.ordering.fields_at(0);
  std::printf("\nfirst scheduled row's field order: ");
  for (std::size_t f : fo)
    std::printf("%s ", rag_table.schema().field(f).name.c_str());
  std::printf("\n\nThe paper's §6.4 observation follows directly: GGR tends "
              "to move the\nclaim to the end of the prompt, which (for "
              "Llama3-8B on FEVER) also\nimproved answer accuracy by 14.2%%.\n");
  return 0;
}
