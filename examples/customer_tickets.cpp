// The paper's introduction example:
//
//   SELECT user_id, request, support_response,
//          LLM('Did {support_response} address {request}?',
//              support_response, request) AS success
//   FROM customer_tickets WHERE support_response <> NULL
//
// We generate a synthetic customer_tickets table where canned support
// macros repeat across tickets (the realistic sharing structure), run the
// LLM filter under the three method arms, and show the per-arm cost.
//
// Build & run:  ./build/examples/customer_tickets [n_tickets]

#include <cstdio>
#include <cstdlib>

#include "core/schedule.hpp"
#include "llm/engine.hpp"
#include "query/llm_operator.hpp"
#include "table/stats.hpp"
#include "util/wordbank.hpp"

using namespace llmq;

namespace {

table::Table make_tickets(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto& bank = util::default_wordbank();

  // Support teams answer from a macro library: responses repeat heavily.
  std::vector<std::string> macros;
  for (int i = 0; i < 12; ++i)
    macros.push_back(bank.text_of_tokens(rng, 90));

  table::Table t(table::Schema::of_names(
      {"user_id", "request", "support_response"}));
  for (std::size_t i = 0; i < n; ++i) {
    t.append_row({"u" + std::to_string(100000 + rng.next_below(50000)),
                  bank.text_of_tokens(rng, 45),
                  macros[rng.next_below(macros.size())]});
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  const auto tickets = make_tickets(n, 2024);

  // The planner discovers there are no useful FDs here; run it anyway to
  // show the full pipeline (mine_fds is cheap at this width).
  const auto fds = table::mine_fds(tickets, 0.01);

  query::LlmOperatorSpec op;
  op.tmpl.system_prompt =
      "You are a data analyst. Use the provided JSON data to answer the "
      "user query based on the specified fields.";
  op.tmpl.user_prompt =
      "Did the support_response address the request? Answer ONLY 'Yes' or "
      "'No'.";
  op.avg_output_tokens = 2;
  const llm::TaskModel task_model(llm::profile_llama3_8b());

  std::printf("customer_tickets: %zu rows, %zu support macros in rotation\n\n",
              tickets.num_rows(), std::size_t{12});
  std::printf("%-22s %12s %14s %12s\n", "method", "job time (s)",
              "prompt PHR", "prefill (s)");

  struct Arm {
    const char* label;
    core::Policy policy;
    bool cache_on;
  };
  const Arm arms[] = {{"No Cache", core::Policy::Original, false},
                      {"Cache (Original)", core::Policy::Original, true},
                      {"Cache (GGR)", core::Policy::Ggr, true}};
  for (const auto& [label, policy, cache_on] : arms) {
    core::PlanRequest preq;
    preq.policy = policy;
    const auto plan = core::plan_ordering(tickets, fds, preq);
    const auto reqs =
        query::build_requests(tickets, plan.ordering, op, task_model, {});

    llm::EngineConfig ec;
    ec.cache_enabled = cache_on;
    // Keep the cache oversubscribed relative to the job, as production
    // tables are (see DESIGN.md): pool sized to ~5% of the job's tokens.
    std::uint64_t total_tokens = 0;
    for (const auto& r : reqs.requests) total_tokens += r.prompt.size();
    ec.kv_pool_blocks_override =
        std::max<std::size_t>(256, total_tokens / 20 / ec.block_size);
    llm::ServingEngine engine(llm::CostModel(llm::llama3_8b(), llm::l4()), ec);
    const auto run = engine.run(reqs.requests);
    std::printf("%-22s %12.1f %13.1f%% %12.1f\n", label,
                run.metrics.total_seconds,
                100.0 * run.metrics.prompt_cache_hit_rate(),
                run.metrics.prefill_seconds);
  }

  std::printf("\nThe repeated support macros are exactly the sharing the\n"
              "paper exploits: GGR groups tickets answered by the same macro\n"
              "and fronts the response field, so the long macro text is\n"
              "prefilled once per group instead of once per ticket.\n");
  return 0;
}
