// plan_csv: the "apply it to your own data" tool.
//
// Reads a CSV table, mines functional dependencies from the data, plans a
// GGR request ordering, reports predicted prefix sharing for every policy,
// and optionally writes the reordered table (rows permuted; a
// `llmq_field_order` column records each row's field order) so the
// schedule can be fed to any serving stack.
//
// Usage:
//   ./build/examples/plan_csv <in.csv> [--out reordered.csv]
//                             [--policy ggr|original|stats-fixed|sorted-fixed]
//                             [--window N] [--fd-tolerance f]

#include <cstdio>
#include <cstring>

#include "core/schedule.hpp"
#include "core/windowed.hpp"
#include "table/csv.hpp"
#include "table/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

using namespace llmq;

namespace {

core::Ordering plan_with(const table::Table& t, const table::FdSet& fds,
                         core::Policy policy, std::size_t window) {
  if (policy == core::Policy::Ggr && window > 0) {
    core::WindowedOptions wo;
    wo.window_rows = window;
    return core::windowed_ggr(t, fds, wo).ordering;
  }
  core::PlanRequest req;
  req.policy = policy;
  return core::plan_ordering(t, fds, req).ordering;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <in.csv> [--out f.csv] [--policy p] "
                 "[--window N] [--fd-tolerance f]\n",
                 argv[0]);
    return 2;
  }
  std::string out_path;
  std::string policy_name = "ggr";
  std::size_t window = 0;
  double fd_tolerance = 0.0;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--policy") && i + 1 < argc)
      policy_name = argv[++i];
    else if (!std::strcmp(argv[i], "--window") && i + 1 < argc)
      window = std::strtoul(argv[++i], nullptr, 10);
    else if (!std::strcmp(argv[i], "--fd-tolerance") && i + 1 < argc)
      fd_tolerance = std::atof(argv[++i]);
  }
  const auto policy = core::policy_from_string(policy_name);
  if (!policy) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }

  const table::Table t = table::read_csv_file(argv[1]);
  std::printf("table: %zu rows x %zu fields\n", t.num_rows(), t.num_cols());

  // Column statistics (what the planner sees).
  {
    const auto stats = table::compute_stats(t);
    util::TablePrinter tp({"field", "cardinality", "avg tokens",
                           "max group", "expected hit score"});
    for (const auto& c : stats.columns)
      tp.add_row({c.name, std::to_string(c.cardinality),
                  util::fmt(c.avg_len_tokens, 1),
                  std::to_string(c.max_group_size),
                  util::fmt(c.expected_hit_score(stats.n_rows), 0)});
    tp.print();
  }

  // FD mining.
  const auto fds = table::mine_fds(t, fd_tolerance);
  std::printf("\nmined %zu functional dependencies (tolerance %.2g)\n",
              fds.num_edges(), fd_tolerance);
  for (const auto& e : fds.edges())
    std::printf("  %s -> %s\n", e.determinant.c_str(), e.dependent.c_str());

  // Predicted sharing per policy.
  {
    util::print_banner("predicted adjacent-request sharing by policy");
    util::TablePrinter tp({"policy", "PHC", "hit fraction"});
    for (core::Policy p :
         {core::Policy::Original, core::Policy::SortedFixed,
          core::Policy::StatsFixed, core::Policy::Ggr}) {
      const auto o = plan_with(t, fds, p, p == core::Policy::Ggr ? window : 0);
      const auto b = core::phc_breakdown(t, o);
      tp.add_row({core::to_string(p), util::fmt(b.total, 0),
                  util::fmt(100.0 * b.hit_fraction(), 1) + "%"});
    }
    tp.print();
  }

  if (!out_path.empty()) {
    const auto ordering = plan_with(t, fds, *policy, window);
    std::vector<std::string> names;
    for (std::size_t c = 0; c < t.num_cols(); ++c)
      names.push_back(t.schema().field(c).name);
    names.push_back("llmq_field_order");
    table::Table out{table::Schema::of_names(names)};
    for (std::size_t pos = 0; pos < ordering.num_rows(); ++pos) {
      auto row = t.row(ordering.row_at(pos));
      std::vector<std::string> order_names;
      for (std::size_t f : ordering.fields_at(pos))
        order_names.push_back(t.schema().field(f).name);
      row.push_back(util::join(order_names, ";"));
      out.append_row(std::move(row));
    }
    table::write_csv_file(out, out_path);
    std::printf("\nwrote %s (%zu rows, policy %s%s)\n", out_path.c_str(),
                out.num_rows(), policy_name.c_str(),
                window ? (", window " + std::to_string(window)).c_str() : "");
  }
  return 0;
}
