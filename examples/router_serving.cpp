// Replicated serving demo: cache-affinity routing across engine replicas.
//
// Serves one multi-tenant Poisson stream over the synthetic Movies table
// through 4 independent engine+cache replicas, once per routing policy,
// and prints the fleet-level serving metrics side by side: aggregate
// prompt-cache hit rate, per-replica hit rates, load imbalance, TTFT.
// Round-robin scatters prefix-sharing requests across replicas (every
// replica re-prefills the same tenant prefix); prefix-affinity probes each
// replica's radix tree read-only and keeps sharers together.
//
// Build & run:  ./build/example_router_serving

#include <cstdio>

#include "data/benchmark_suite.hpp"
#include "data/generators.hpp"
#include "serve/online.hpp"

using namespace llmq;

int main() {
  // -- 1. Data: 400 rows of the Movies benchmark table. -----------------
  data::GenOptions g;
  g.n_rows = 400;
  g.seed = 7;
  const data::Dataset d = data::generate_dataset("movies", g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");
  const table::Table t = spec.stage1.fields.empty()
                             ? d.table
                             : d.table.project(spec.stage1.fields);

  // -- 2. Workload: 6 tenants, 40 req/s, repeat traffic. ----------------
  serve::WorkloadOptions w;
  w.arrival_rate = 40.0;
  w.n_tenants = 6;
  w.n_requests = 2 * t.num_rows();
  w.seed = 7;
  const auto arrivals = serve::generate_arrivals(t.num_rows(), w);
  std::printf("stream: %zu arrivals over %.1f simulated s, 4 replicas\n\n",
              arrivals.size(), arrivals.back().time);

  // -- 3. Same stream, same fleet, four routing policies. ---------------
  serve::OnlineConfig cfg;
  cfg.prompt.system_prompt = spec.system_prompt;
  cfg.prompt.user_prompt = spec.stage1.user_prompt;
  cfg.avg_output_tokens = spec.stage1.avg_output_tokens;
  cfg.scheduler.policy = serve::Policy::TenantGgr;
  cfg.scheduler.window_rows = 64;
  cfg.scheduler.max_wait_seconds = 4.0;
  cfg.n_replicas = 4;
  // Hold the fleet KV budget at the single-engine pool: each replica gets
  // a quarter, so sharding changes locality, not total memory.
  cfg.scale_kv_pool(static_cast<double>(t.num_rows()) /
                    static_cast<double>(data::paper_rows("movies")) / 4.0);

  for (const serve::RouterPolicy rp :
       {serve::RouterPolicy::RoundRobin, serve::RouterPolicy::LeastLoaded,
        serve::RouterPolicy::TenantHash,
        serve::RouterPolicy::PrefixAffinity}) {
    cfg.router = rp;
    const serve::OnlineRunResult r = serve::run_online(t, d.fds, arrivals, cfg);
    std::printf("%-14s: agg PHR %4.1f%%  TTFT p50 %.2fs p99 %.2fs  "
                "imbalance %.2f  per-replica PHR [",
                serve::to_string(rp).c_str(),
                100.0 * r.engine.prompt_cache_hit_rate(), r.latency.p50_ttft,
                r.latency.p99_ttft, r.load_imbalance);
    for (std::size_t i = 0; i < r.replicas.size(); ++i)
      std::printf("%s%.0f%%", i ? " " : "", 100.0 * r.replicas[i].hit_rate());
    std::printf("]\n");
  }
  return 0;
}
