// Priority-preemption demo: interactive rows evict batch analytics rows.
//
// Serves a three-class stream (interactive / standard / batch tenants;
// batch rows decode 8x longer) over the synthetic Movies table at 2x the
// sustainable rate, once without and once with engine-level preemption,
// and prints the per-class serving breakdown side by side. Without
// preemption the only lever is admission order, so an interactive arrival
// waits for a running batch generation to finish; with preemption the
// engine releases the batch row's KV blocks (its cached prompt prefix
// stays in the radix tree), admits the interactive row immediately, and
// later resumes the victim by replaying prefill through the prefix cache.
//
// Build & run:  ./build/example_priority_preemption

#include <cstdio>

#include "data/benchmark_suite.hpp"
#include "data/generators.hpp"
#include "serve/online.hpp"

using namespace llmq;

int main() {
  // -- 1. Data: 400 rows of the Movies benchmark table. -----------------
  data::GenOptions g;
  g.n_rows = 400;
  g.seed = 7;
  const data::Dataset d = data::generate_dataset("movies", g);
  const data::QuerySpec& spec = data::query_by_id("movies-filter");
  const table::Table t = spec.stage1.fields.empty()
                             ? d.table
                             : d.table.project(spec.stage1.fields);

  // -- 2. Workload: three tenants, one per priority class. --------------
  serve::WorkloadOptions w;
  w.arrival_rate = 8.0;  // ~2x what this fleet sustains for the mix
  w.n_tenants = 3;
  w.tenant_skew = 0.0;
  w.tenant_classes = {llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard,
                      llm::PriorityClass::Batch};
  w.n_requests = 2 * t.num_rows();
  w.seed = 7;
  const auto arrivals = serve::generate_arrivals(t.num_rows(), w);
  std::printf("stream: %zu arrivals over %.1f simulated s, 3 classes\n\n",
              arrivals.size(), arrivals.back().time);

  // -- 3. Same stream, same fleet, preemption off vs on. ----------------
  serve::OnlineConfig cfg;
  cfg.prompt.system_prompt = spec.system_prompt;
  cfg.prompt.user_prompt = spec.stage1.user_prompt;
  cfg.avg_output_tokens = 8.0;
  cfg.class_output_multiplier = {0.5, 1.0, 8.0};  // batch = long decodes
  cfg.ttft_slo_seconds = 2.0;
  cfg.scheduler.policy = serve::Policy::WindowedGgr;
  cfg.scheduler.window_rows = 32;
  cfg.scheduler.max_wait_seconds = 1.0;
  cfg.scheduler.priority_order = true;
  cfg.scheduler.aging_seconds = 60.0;
  cfg.engine.max_batch_size = 8;
  cfg.engine.priority_aging_seconds = 60.0;
  cfg.n_replicas = 2;
  cfg.scale_kv_pool(static_cast<double>(t.num_rows()) /
                    static_cast<double>(data::paper_rows("movies")));

  for (const bool preempt : {false, true}) {
    cfg.engine.preemption = preempt;
    const auto r = serve::run_online(t, d.fds, arrivals, cfg);
    std::printf("preemption %-3s  (%llu preemptions, %llu recompute tokens)\n",
                preempt ? "ON" : "OFF",
                static_cast<unsigned long long>(r.engine.preemptions),
                static_cast<unsigned long long>(
                    r.engine.recompute_prefill_tokens));
    for (const auto& pc : r.per_class) {
      if (pc.requests == 0) continue;
      std::printf(
          "  %-12s %4zu done | p50 TTFT %7.0f ms | p99 TTFT %7.0f ms | "
          "goodput %.2f r/s | preempted %zu\n",
          llm::to_string(pc.priority).c_str(), pc.requests,
          1000.0 * pc.latency.p50_ttft, 1000.0 * pc.latency.p99_ttft,
          pc.latency.goodput_rps, pc.preemptions);
    }
    std::printf("\n");
  }

  std::printf(
      "Interactive p99 TTFT collapses when preemption can evict running\n"
      "batch rows; batch rows all still finish — aging re-queues them and\n"
      "their resumes replay prefill through the prefix cache.\n");
  return 0;
}
