// Cost explorer: estimate proprietary-API spend for an LLM query over a
// CSV table, under original vs GGR ordering, for OpenAI and Anthropic
// pricing (paper §6.3).
//
// Usage:
//   ./build/examples/cost_explorer [table.csv] [avg_output_tokens]
//
// Without arguments a demo table is generated. With a CSV path, the file's
// rows are priced as one-LLM-call-per-row requests.

#include <cstdio>
#include <cstdlib>

#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "pricing/cost_report.hpp"
#include "query/prompt.hpp"
#include "table/csv.hpp"
#include "table/fd.hpp"
#include "util/wordbank.hpp"

using namespace llmq;

namespace {

table::Table demo_table() {
  util::Rng rng(7);
  const auto& bank = util::default_wordbank();
  std::vector<std::string> policies;
  for (int i = 0; i < 6; ++i) policies.push_back(bank.text_of_tokens(rng, 400));
  table::Table t(table::Schema::of_names({"claim_id", "claim_text", "policy"}));
  for (int i = 0; i < 400; ++i)
    t.append_row({"C" + std::to_string(88000 + i), bank.text_of_tokens(rng, 60),
                  policies[rng.next_below(policies.size())]});
  return t;
}

std::vector<pricing::PricedRequest> to_stream(const table::Table& t,
                                              const core::Ordering& o,
                                              std::uint64_t out_tokens) {
  const query::PromptEncoder enc(query::PromptTemplate{
      "You are a data analyst. Use the provided JSON data to answer the "
      "user query based on the specified fields.",
      "Does the policy cover the claim? Answer Yes or No with a one line "
      "justification."});
  std::vector<pricing::PricedRequest> s;
  s.reserve(o.num_rows());
  for (std::size_t pos = 0; pos < o.num_rows(); ++pos) {
    pricing::PricedRequest r;
    r.prompt = enc.encode(t, o.row_at(pos), o.fields_at(pos));
    r.output_tokens = out_tokens;
    s.push_back(std::move(r));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  table::Table t = argc > 1 ? table::read_csv_file(argv[1]) : demo_table();
  const auto out_tokens = static_cast<std::uint64_t>(
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20);
  std::printf("table: %zu rows x %zu fields; %llu output tokens/request\n\n",
              t.num_rows(), t.num_cols(),
              static_cast<unsigned long long>(out_tokens));

  const auto fds = table::mine_fds(t, 0.02);
  core::GgrOptions opts;
  const auto plan = core::ggr(t, fds, opts);
  const auto original = core::original_ordering(t);

  std::printf("%-22s %-10s %12s %10s %10s\n", "provider/model", "ordering",
              "cost ($)", "PHR", "savings");
  for (const auto& [sheet, breakpoint] :
       {std::pair<pricing::PriceSheet, bool>{pricing::openai_gpt4o_mini(),
                                             false},
        {pricing::anthropic_claude35_sonnet(), true}}) {
    const auto price = [&](const core::Ordering& o) {
      const auto stream = to_stream(t, o, out_tokens);
      return breakpoint ? pricing::price_stream_breakpoint(sheet, stream)
                        : pricing::price_stream_auto(sheet, stream);
    };
    const auto orig = price(original);
    const auto ggr = price(plan.ordering);
    const std::string name = sheet.provider + " " + sheet.model;
    std::printf("%-22s %-10s %12.4f %9.1f%% %10s\n", name.c_str(), "original",
                orig.cost_usd, 100 * orig.prompt_hit_rate, "-");
    std::printf("%-22s %-10s %12.4f %9.1f%% %9.1f%%\n", name.c_str(), "GGR",
                ggr.cost_usd, 100 * ggr.prompt_hit_rate,
                100 * (1.0 - ggr.cost_usd / orig.cost_usd));
  }
  std::printf("\n(both providers enforce a 1024-token minimum cacheable "
              "prefix; short\nprompts therefore price identically under "
              "either ordering)\n");
  return 0;
}
