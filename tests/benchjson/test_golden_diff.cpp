// Golden bench snapshot diffs.
//
// BENCH_*.json at the repo root are committed snapshots of small-scale
// bench runs (the perf-trajectory anchors). This suite re-runs each bench
// at the snapshot's own scale/seed and diffs the *virtual-time* headline
// numbers against the snapshot within tolerance bands: the simulation is
// a pure function of (seed, config), so a drift here is a real behavior
// change — a scheduler tweak moving p99 TTFT, a cache change moving PHR —
// that must be acknowledged by regenerating the snapshot, not discovered
// by downstream tooling. Wall-clock keys measure the host, not the code:
// virtual-time benches never compare them at all, and bench_micro's us/op
// keys are compared only between release non-sanitizer builds (provenance
// gate) within a coarse catastrophe band.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

#ifndef LLMQ_BIN_DIR
#define LLMQ_BIN_DIR "."
#endif
#ifndef LLMQ_REPO_ROOT
#define LLMQ_REPO_ROOT "."
#endif

namespace llmq {
namespace {

struct DiffKey {
  const char* section;
  const char* key;
  bool relative;  // tolerance as a fraction of the golden value
  double tol;
  // Wall-clock keys (us/op) measure the host, not the simulation: they
  // are only compared when BOTH the golden and the rerun were produced by
  // a release, sanitizer-free build — a Debug or ASan/TSan rerun would
  // fail any honest band. Virtual-time keys never set this.
  bool wallclock = false;
};

struct GoldenSpec {
  const char* binary;
  const char* golden;  // filename at the repo root
  std::vector<DiffKey> keys;
};

const std::vector<GoldenSpec>& golden_specs() {
  // PHR compares absolutely (it is already a fraction); latency tails
  // relatively, floored at 1 ms so near-zero arms don't demand exactness.
  static const std::vector<GoldenSpec> specs = {
      {"bench_serving_online",
       "BENCH_serving_online.json",
       {{"rate_policy", "phr", false, 0.02},
        {"rate_policy", "p99_ttft_s", true, 0.10},
        {"rate_policy", "goodput_rps", true, 0.10},
        {"deadline_sweep", "phr", false, 0.02},
        {"deadline_sweep", "p99_ttft_s", true, 0.10},
        {"burstiness", "phr", false, 0.02}}},
      {"bench_chunked_prefill",
       "BENCH_chunked_prefill.json",
       {{"chunk_mix_sweep", "interactive_p99_ttft_s", true, 0.10},
        {"chunk_mix_sweep", "interactive_p99_itl_s", true, 0.10},
        {"chunk_mix_sweep", "goodput_rps", true, 0.10}}},
      {"bench_serving_router",
       "BENCH_serving_router.json",
       {{"replicas_policy", "agg_phr", false, 0.02},
        {"replicas_policy", "p50_ttft_s", true, 0.10},
        {"replicas_policy", "p99_ttft_s", true, 0.10},
        {"replicas_policy", "goodput_rps", true, 0.10},
        {"replicas_policy", "load_imbalance", true, 0.10},
        {"replicas_policy", "phc", true, 0.05},
        {"policy_rate", "agg_phr", false, 0.02},
        {"policy_rate", "p99_ttft_s", true, 0.10},
        {"policy_rate", "goodput_rps", true, 0.10}}},
      {"bench_priority_preemption",
       "BENCH_priority_preemption.json",
       {{"overload", "agg_phr", false, 0.02},
        {"overload", "interactive_p99_ttft_s", true, 0.10},
        {"overload", "standard_p99_ttft_s", true, 0.10},
        {"overload", "batch_p99_e2e_s", true, 0.10},
        {"overload", "interactive_goodput_rps", true, 0.10},
        {"overload", "batch_completed", true, 0.10},
        {"overload", "preemptions", true, 0.10},
        {"overload", "recompute_tokens", true, 0.10},
        {"aging_sweep", "interactive_p99_ttft_s", true, 0.10},
        {"aging_sweep", "batch_p99_e2e_s", true, 0.10},
        {"aging_sweep", "batch_completed", true, 0.10},
        {"aging_sweep", "preemptions", true, 0.10}}},
      {"bench_threaded_fleet",
       "BENCH_threaded_fleet.json",
       {{"threaded_scaling", "agg_phr", false, 0.02},
        {"threaded_scaling", "p99_ttft_s", true, 0.10},
        {"threaded_scaling", "load_imbalance", true, 0.10},
        // The threaded run must STILL match the virtual-clock oracle —
        // exact, not banded (wall_s_* keys measure the host and are
        // deliberately not compared).
        {"threaded_scaling", "determinism_match", false, 0.0}}},
      {"bench_concurrent_queries",
       "BENCH_concurrent_queries.json",
       {{"queries_router", "agg_phr", false, 0.02},
        {"queries_router", "effective_hit_fraction", false, 0.02},
        {"queries_router", "dedup_hits", false, 0.0},
        {"queries_router", "makespan_s", true, 0.10},
        {"queries_router", "speedup_vs_serial", true, 0.10},
        {"queries_router", "p99_ttft_s", true, 0.10},
        {"queries_router", "load_imbalance", true, 0.10}}},
      // Sessions / agents / length-aware scheduling. Conservation counts
      // (requests, turn spawns, audit verdict, completions) are exact;
      // PHR and tails use the standard bands; predictor means are exact
      // up to the absolute band (pure EWMA replay, no simulation noise).
      {"bench_scenarios",
       "BENCH_scenarios.json",
       {{"session_turns", "agg_phr", false, 0.02},
        {"session_turns", "requests", false, 0.0},
        {"session_turns", "windows", true, 0.10},
        {"session_turns", "p99_ttft_s", true, 0.10},
        {"agentic", "requests", false, 0.0},
        {"agentic", "turn_spawns", false, 0.0},
        {"agentic", "audit_ok", false, 0.0},
        {"agentic", "agg_phr", false, 0.02},
        {"spjf_overload", "completions", false, 0.0},
        {"spjf_overload", "short_p99_ttft_s", true, 0.10},
        {"spjf_overload", "agg_phr", false, 0.02},
        {"penalty_ablation", "mean_predicted_tokens", false, 0.01}}},
      // Hot-path microbench: the deterministic outputs (hash fingerprints,
      // cache hit/insert/evict counts, the zero-steady-state-allocation
      // audit) must match the snapshot exactly. us/op keys are compared
      // only between release non-sanitizer builds, and in a 2x band —
      // single-core hosts jitter +/-40% run to run, so the band is an
      // anti-catastrophe tripwire (a lost SIMD dispatch is 4-5x, a lost
      // child index 10x+), not a precision perf gate.
      {"bench_micro",
       "BENCH_micro.json",
       {{"token_ops", "hash_check", false, 0.0},
        {"token_ops", "lcp_us", true, 1.0, true},
        {"token_ops", "hash_us", true, 1.0, true},
        {"radix_fanout", "check", false, 0.0},
        {"radix_fanout", "hit_us", true, 1.0, true},
        {"radix_stream", "hit_tokens", false, 0.0},
        {"radix_stream", "inserted_blocks", false, 0.0},
        {"radix_stream", "us_per_request", true, 1.0, true},
        {"evict_batch", "evicted", false, 0.0},
        {"evict_batch", "us_per_block", true, 1.0, true},
        {"alloc_steadystate", "steady_allocs", false, 0.0},
        {"alloc_steadystate", "node_slots_delta", false, 0.0}}},
      // Tier hierarchy + elasticity. PHR and tails use the standard
      // bands; the headline tiered-vs-flat ordering is re-asserted by the
      // bench itself (it exits nonzero on violation), so the golden pins
      // the magnitudes. Audit verdicts and the threaded-vs-oracle match
      // are exact — a band on a boolean hides a broken invariant.
      {"bench_tiered_cache",
       "BENCH_tiered_cache.json",
       {{"tiers_vs_flat", "agg_phr", false, 0.02},
        {"tiers_vs_flat", "interactive_p99_ttft_s", true, 0.10},
        {"tiers_vs_flat", "goodput_rps", true, 0.10},
        {"tiers_vs_flat", "promote_seconds", true, 0.10},
        {"split_sweep", "agg_phr", false, 0.02},
        {"split_sweep", "interactive_p99_ttft_s", true, 0.10},
        {"elasticity", "agg_phr", false, 0.02},
        {"elasticity", "replica_spawns", false, 0.0},
        {"elasticity", "prefix_migrations", false, 0.0},
        {"elasticity", "audit_ok", false, 0.0},
        {"determinism", "determinism_match", false, 0.0}}},
  };
  return specs;
}

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

/// True when a report's provenance says "release build, no sanitizer" —
/// the only configuration whose wall-clock numbers are comparable.
bool timing_comparable(const util::JsonValue& doc) {
  const util::JsonValue* prov = doc.find("provenance");
  if (prov == nullptr) return false;
  const util::JsonValue* build = prov->find("build_type");
  const util::JsonValue* san = prov->find("sanitizer");
  return build != nullptr && san != nullptr &&
         build->as_string() == "release" && san->as_string() == "none";
}

std::optional<util::JsonValue> parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  return util::json_parse(buf.str());
}

class BenchGoldenDiff : public ::testing::TestWithParam<GoldenSpec> {};

TEST_P(BenchGoldenDiff, HeadlineNumbersMatchSnapshotWithinTolerance) {
  const GoldenSpec& spec = GetParam();
  const std::string binary = std::string(LLMQ_BIN_DIR) + "/" + spec.binary;
  if (!file_exists(binary))
    GTEST_SKIP() << binary << " not built (benches disabled?)";

  const std::string golden_path =
      std::string(LLMQ_REPO_ROOT) + "/" + spec.golden;
  const auto golden = parse_file(golden_path);
  ASSERT_TRUE(golden.has_value())
      << spec.golden << " missing or unparseable — regenerate with `"
      << spec.binary << " --scale <s> --seed <n> --json " << spec.golden
      << "`";

  // Re-run at the snapshot's own scale/seed (read from its envelope, so
  // regenerating a golden at a new scale needs no test edit).
  const util::JsonValue* scale = golden->find("scale");
  const util::JsonValue* seed = golden->find("seed");
  ASSERT_NE(scale, nullptr);
  ASSERT_NE(seed, nullptr);
  char scale_buf[32];
  std::snprintf(scale_buf, sizeof scale_buf, "%.17g", scale->as_number());
  const std::string out_path =
      ::testing::TempDir() + "llmq_golden_rerun_" + spec.binary + ".json";
  const std::string cmd =
      binary + " --scale " + scale_buf + " --seed " +
      std::to_string(static_cast<long long>(seed->as_number())) + " --json " +
      out_path + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const auto fresh = parse_file(out_path);
  ASSERT_TRUE(fresh.has_value()) << "rerun emitted unparseable JSON";

  const util::JsonValue* gsec = golden->find("sections");
  const util::JsonValue* fsec = fresh->find("sections");
  ASSERT_NE(gsec, nullptr);
  ASSERT_NE(fsec, nullptr);
  const bool compare_wallclock =
      timing_comparable(*golden) && timing_comparable(*fresh);
  for (const DiffKey& dk : spec.keys) {
    if (dk.wallclock && !compare_wallclock) continue;
    const util::JsonValue* grecs = gsec->find(dk.section);
    const util::JsonValue* frecs = fsec->find(dk.section);
    ASSERT_NE(grecs, nullptr) << "golden lacks section " << dk.section;
    ASSERT_NE(frecs, nullptr) << "rerun lacks section " << dk.section;
    ASSERT_EQ(grecs->as_array().size(), frecs->as_array().size())
        << dk.section << " record count changed — regenerate the golden";
    for (std::size_t i = 0; i < grecs->as_array().size(); ++i) {
      const util::JsonValue* gv = grecs->as_array()[i].find(dk.key);
      const util::JsonValue* fv = frecs->as_array()[i].find(dk.key);
      ASSERT_NE(gv, nullptr) << dk.section << "[" << i << "]." << dk.key;
      ASSERT_NE(fv, nullptr) << dk.section << "[" << i << "]." << dk.key;
      const double g = gv->as_number();
      const double f = fv->as_number();
      const double allowed =
          dk.relative ? std::max(dk.tol * std::fabs(g), 1e-3) : dk.tol;
      EXPECT_NEAR(f, g, allowed)
          << dk.section << "[" << i << "]." << dk.key
          << " drifted from the committed snapshot (" << spec.golden
          << "); if intentional, regenerate it";
    }
  }
  std::remove(out_path.c_str());
}

std::string spec_name(const ::testing::TestParamInfo<GoldenSpec>& info) {
  return info.param.binary;
}

INSTANTIATE_TEST_SUITE_P(CommittedGoldens, BenchGoldenDiff,
                         ::testing::ValuesIn(golden_specs()), spec_name);

}  // namespace
}  // namespace llmq
