// Golden JSON schema tests for the --json-capable bench binaries.
//
// Each bench's --json report feeds downstream perf-trajectory tooling;
// a silently renamed key or retyped value breaks that tooling without
// failing any test. This harness runs every JSON bench at trivial scale
// and validates the report's shape with util::json_parse: the standard
// envelope (bench / scale / seed / sections) plus, per section, the
// required record keys and their types. Extra keys are allowed —
// reports may grow — but required keys may not vanish or change type.
//
// The bench binary directory is compiled in (LLMQ_BIN_DIR, set by
// CMakeLists.txt to the build root); when the binaries are absent (e.g.
// a -DLLMQ_BUILD_BENCHES=OFF build) the tests skip rather than fail.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

#ifndef LLMQ_BIN_DIR
#define LLMQ_BIN_DIR "."
#endif

namespace llmq {
namespace {

struct KeySpec {
  const char* key;
  util::JsonValue::Type type;
};

struct SectionSpec {
  const char* name;
  std::vector<KeySpec> keys;
};

struct BenchSpec {
  const char* binary;
  std::vector<SectionSpec> sections;
};

constexpr auto kNum = util::JsonValue::Type::Number;
constexpr auto kStr = util::JsonValue::Type::String;

const std::vector<BenchSpec>& bench_specs() {
  static const std::vector<BenchSpec> specs = {
      {"bench_table2_phr",
       {{"phr",
         {{"dataset", kStr},
          {"rows", kNum},
          {"original_phr", kNum},
          {"ggr_phr", kNum},
          {"paper_original_phr", kNum},
          {"paper_ggr_phr", kNum}}}}},
      {"bench_serving_online",
       {{"rate_policy",
         {{"policy", kStr},
          {"rate", kNum},
          {"phr", kNum},
          {"phc", kNum},
          {"windows", kNum},
          {"p50_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"mean_queue_delay_s", kNum},
          {"goodput_rps", kNum}}},
        {"deadline_sweep",
         {{"policy", kStr},
          {"deadline_s", kNum},
          {"phr", kNum},
          {"p50_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"mean_window_rows", kNum}}},
        {"burstiness",
         {{"process", kStr},
          {"phr", kNum},
          {"p50_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"peak_batch", kNum}}},
        {"trace_overhead",
         {{"wall_s_no_trace", kNum},
          {"wall_s_traced", kNum},
          {"overhead_frac", kNum}}}}},
      {"bench_serving_router",
       {{"replicas_policy",
         {{"replicas", kNum},
          {"router", kStr},
          {"rate", kNum},
          {"agg_phr", kNum},
          {"p50_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"load_imbalance", kNum},
          {"goodput_rps", kNum},
          {"phc", kNum}}},
        {"policy_rate",
         {{"replicas", kNum},
          {"router", kStr},
          {"rate", kNum},
          {"agg_phr", kNum},
          {"load_imbalance", kNum},
          {"goodput_rps", kNum}}}}},
      {"bench_ablation_serving",
       {{"kv_pool_sweep",
         {{"pool_mult", kNum},
          {"original_phr", kNum},
          {"ggr_phr", kNum},
          {"original_s", kNum},
          {"ggr_s", kNum}}},
        {"batch_size_sweep",
         {{"max_batch", kNum}, {"original_s", kNum}, {"ggr_s", kNum}}},
        {"block_size_sweep",
         {{"block_tokens", kNum}, {"ggr_phr", kNum}, {"ggr_s", kNum}}}}},
      {"bench_priority_preemption",
       {{"overload",
         {{"rate_mult", kNum},
          {"rate_rps", kNum},
          {"preemption", kStr},
          {"interactive_p99_ttft_s", kNum},
          {"standard_p99_ttft_s", kNum},
          {"batch_p99_e2e_s", kNum},
          {"interactive_goodput_rps", kNum},
          {"batch_completed", kNum},
          {"preemptions", kNum},
          {"recompute_tokens", kNum},
          {"agg_phr", kNum}}},
        {"aging_sweep",
         {{"aging_s", kNum},
          {"interactive_p99_ttft_s", kNum},
          {"batch_p99_e2e_s", kNum},
          {"batch_completed", kNum},
          {"preemptions", kNum}}}}},
      {"bench_chunked_prefill",
       {{"chunk_mix_sweep",
         {{"mix", kStr},
          {"chunk_tokens", kNum},
          {"interactive_p99_ttft_s", kNum},
          {"interactive_p99_itl_s", kNum},
          {"max_decode_stall_s", kNum},
          {"batch_p99_e2e_s", kNum},
          {"goodput_rps", kNum},
          {"prompt_tokens", kNum},
          {"chunked_prefill_tokens", kNum},
          {"tokens_conserved", kStr}}},
        {"deep_backlog",
         {{"depth", kNum}, {"us_per_request", kNum}}}}},
      {"bench_micro",
       {{"token_ops",
         {{"len", kNum},
          {"isa", kStr},
          {"lcp_us", kNum},
          {"lcp_scalar_us", kNum},
          {"lcp_speedup", kNum},
          {"hash_us", kNum},
          {"hash_scalar_us", kNum},
          {"hash_speedup", kNum},
          {"equal_us", kNum},
          {"equal_scalar_us", kNum},
          {"hash_check", kNum}}},
        {"radix_fanout",
         {{"fanout", kNum}, {"hit_us", kNum}, {"miss_us", kNum},
          {"check", kNum}}},
        {"radix_stream",
         {{"requests", kNum},
          {"us_per_request", kNum},
          {"hit_tokens", kNum},
          {"inserted_blocks", kNum}}},
        {"evict_batch",
         {{"nodes", kNum}, {"evicted", kNum}, {"us_per_block", kNum}}},
        {"alloc_steadystate",
         {{"steady_passes", kNum},
          {"warmup_allocs", kNum},
          {"steady_allocs", kNum},
          {"node_slots_delta", kNum}}}}},
      {"bench_concurrent_queries",
       {{"queries_router",
         {{"queries", kNum},
          {"router", kStr},
          {"replicas", kNum},
          {"serial_phr", kNum},
          {"agg_phr", kNum},
          {"effective_hit_fraction", kNum},
          {"dedup_hits", kNum},
          {"dedup_saved_prompt_tokens", kNum},
          {"makespan_s", kNum},
          {"speedup_vs_serial", kNum},
          {"p50_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"load_imbalance", kNum}}}}},
      {"bench_scenarios",
       {{"session_turns",
         {{"turns", kNum},
          {"requests", kNum},
          {"agg_phr", kNum},
          {"p99_ttft_s", kNum},
          {"p50_e2e_s", kNum},
          {"windows", kNum}}},
        {"agentic",
         {{"replicas", kNum},
          {"roots", kNum},
          {"turns", kNum},
          {"requests", kNum},
          {"turn_spawns", kNum},
          {"audit_ok", kNum},
          {"agg_phr", kNum}}},
        {"spjf_overload",
         {{"arm", kStr},
          {"completions", kNum},
          {"short_p99_ttft_s", kNum},
          {"long_p99_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"agg_phr", kNum}}},
        {"penalty_ablation",
         {{"penalty", kNum}, {"mean_predicted_tokens", kNum}}}}},
      {"bench_tiered_cache",
       {{"tiers_vs_flat",
         {{"replicas", kNum},
          {"arm", kStr},
          {"agg_phr", kNum},
          {"interactive_p99_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"goodput_rps", kNum},
          {"demoted_blocks", kNum},
          {"promoted_blocks", kNum},
          {"promote_seconds", kNum},
          {"load_imbalance", kNum}}},
        {"split_sweep",
         {{"host_capacity_blocks", kNum},
          {"agg_phr", kNum},
          {"interactive_p99_ttft_s", kNum},
          {"demoted_blocks", kNum},
          {"evicted_blocks", kNum},
          {"promote_seconds", kNum}}},
        {"elasticity",
         {{"spawn", kStr},
          {"migrate_max_blocks", kNum},
          {"agg_phr", kNum},
          {"interactive_p99_ttft_s", kNum},
          {"p99_ttft_s", kNum},
          {"replica_spawns", kNum},
          {"replica_drains", kNum},
          {"prefix_migrations", kNum},
          {"migrated_blocks", kNum},
          {"audit_ok", kNum}}},
        {"determinism",
         {{"replicas", kNum}, {"determinism_match", kNum}}}}},
  };
  return specs;
}

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

class BenchJsonSchema : public ::testing::TestWithParam<BenchSpec> {};

TEST_P(BenchJsonSchema, TrivialRunEmitsRequiredKeysAndTypes) {
  const BenchSpec& spec = GetParam();
  const std::string binary = std::string(LLMQ_BIN_DIR) + "/" + spec.binary;
  if (!file_exists(binary))
    GTEST_SKIP() << binary << " not built (benches disabled?)";

  const std::string out_path =
      ::testing::TempDir() + "llmq_" + spec.binary + ".json";
  const std::string cmd = binary + " --scale 0.01 --seed 7 --json " +
                          out_path + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(out_path);
  ASSERT_TRUE(in.good()) << "bench wrote no JSON to " << out_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = util::json_parse(buf.str());
  ASSERT_TRUE(doc.has_value()) << "bench emitted unparseable JSON";

  // Envelope: bench name echoes the binary; scale/seed numeric.
  ASSERT_TRUE(doc->is_object());
  const util::JsonValue* name = doc->find("bench");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->as_string(), spec.binary);
  ASSERT_NE(doc->find("scale"), nullptr);
  EXPECT_TRUE(doc->find("scale")->is_number());
  ASSERT_NE(doc->find("seed"), nullptr);
  EXPECT_TRUE(doc->find("seed")->is_number());
  // Envelope v2: schema version + toolchain provenance (a golden diff
  // must be able to refuse cross-toolchain comparisons).
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_TRUE(doc->find("schema_version")->is_number());
  const util::JsonValue* prov = doc->find("provenance");
  ASSERT_NE(prov, nullptr);
  ASSERT_TRUE(prov->is_object());
  for (const char* key :
       {"build_type", "sanitizer", "compiler", "compiler_version"}) {
    const util::JsonValue* v = prov->find(key);
    ASSERT_NE(v, nullptr) << "provenance lacks " << key;
    EXPECT_TRUE(v->is_string()) << "provenance." << key;
    EXPECT_FALSE(v->as_string().empty()) << "provenance." << key;
  }
  const util::JsonValue* sections = doc->find("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_TRUE(sections->is_object());

  for (const SectionSpec& sec : spec.sections) {
    const util::JsonValue* records = sections->find(sec.name);
    ASSERT_NE(records, nullptr) << "missing section " << sec.name;
    ASSERT_TRUE(records->is_array()) << sec.name;
    ASSERT_FALSE(records->as_array().empty()) << sec.name << " is empty";
    std::size_t i = 0;
    for (const util::JsonValue& rec : records->as_array()) {
      ASSERT_TRUE(rec.is_object()) << sec.name << "[" << i << "]";
      for (const KeySpec& k : sec.keys) {
        const util::JsonValue* v = rec.find(k.key);
        ASSERT_NE(v, nullptr)
            << sec.name << "[" << i << "] lacks key " << k.key;
        EXPECT_EQ(static_cast<int>(v->type()), static_cast<int>(k.type))
            << sec.name << "[" << i << "]." << k.key << " changed type";
      }
      ++i;
    }
  }
  std::remove(out_path.c_str());
}

std::string spec_name(const ::testing::TestParamInfo<BenchSpec>& info) {
  return info.param.binary;
}

INSTANTIATE_TEST_SUITE_P(AllJsonBenches, BenchJsonSchema,
                         ::testing::ValuesIn(bench_specs()), spec_name);

}  // namespace
}  // namespace llmq
