#include <gtest/gtest.h>

#include <numeric>

#include "pricing/api_simulator.hpp"
#include "pricing/cost_report.hpp"
#include "pricing/price_sheet.hpp"

namespace llmq::pricing {
namespace {

tokenizer::TokenSeq iota_seq(std::size_t n, std::uint32_t start = 0) {
  tokenizer::TokenSeq s(n);
  std::iota(s.begin(), s.end(), start);
  return s;
}

TEST(PriceSheet, PublishedNumbers) {
  const auto oa = openai_gpt4o_mini();
  EXPECT_DOUBLE_EQ(oa.cached_read_per_mtok / oa.input_per_mtok, 0.5);
  const auto an = anthropic_claude35_sonnet();
  EXPECT_DOUBLE_EQ(an.cache_write_per_mtok / an.input_per_mtok, 1.25);
  EXPECT_DOUBLE_EQ(an.cached_read_per_mtok / an.input_per_mtok, 0.1);
  EXPECT_EQ(oa.min_prefix_tokens, 1024u);
  EXPECT_EQ(an.min_prefix_tokens, 1024u);
}

TEST(PriceSheet, CostArithmetic) {
  TokenUsage u;
  u.uncached_input = 1'000'000;
  u.cached_input = 2'000'000;
  u.output = 500'000;
  const auto oa = openai_gpt4o_mini();
  EXPECT_NEAR(cost_usd(oa, u), 0.15 + 2 * 0.075 + 0.5 * 0.60, 1e-9);
}

TEST(PriceSheet, InputCostFraction) {
  const auto oa = openai_gpt4o_mini();
  EXPECT_DOUBLE_EQ(input_cost_fraction(oa, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(input_cost_fraction(oa, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(input_cost_fraction(oa, 0.4), 0.8);
}

TEST(PriceSheet, EstimatedSavingsMatchesPaperExample) {
  // Paper §3.2: nine-field table, fixed ordering 10% hit rate, optimized
  // ~m-fold better (~90%): ~42% savings under OpenAI pricing.
  const auto oa = openai_gpt4o_mini();
  const double s = estimated_savings(oa, 0.10, 0.90);
  EXPECT_NEAR(s, 0.42, 0.012);
}

TEST(PriceSheet, Table4MoviesShape) {
  // Movies row of Table 4: PHR 34.6% -> 85.7% gives ~31% OpenAI savings.
  const auto oa = openai_gpt4o_mini();
  EXPECT_NEAR(estimated_savings(oa, 0.346, 0.857), 0.31, 0.02);
  // Anthropic savings are much larger (cached reads at 10%).
  const auto an = anthropic_claude35_sonnet();
  EXPECT_GT(estimated_savings(an, 0.346, 0.857), 0.55);
}

TEST(AutoCacheApi, MinimumPrefixEnforced) {
  auto sheet = openai_gpt4o_mini();
  AutoCacheApi api(sheet);
  const auto p = iota_seq(512);  // shorter than the 1024 minimum
  api.submit(p, 4);
  const auto c = api.submit(p, 4);
  EXPECT_EQ(c.cached_tokens, 0u);  // matched but below minimum: not billed
  EXPECT_DOUBLE_EQ(api.prompt_hit_rate(), 0.0);
}

TEST(AutoCacheApi, LongSharedPrefixBills) {
  auto sheet = openai_gpt4o_mini();
  AutoCacheApi api(sheet);
  const auto p = iota_seq(2048);
  api.submit(p, 4);
  const auto c = api.submit(p, 4);
  EXPECT_EQ(c.cached_tokens, 2048u);
  EXPECT_EQ(c.usage.uncached_input, 0u);
}

TEST(AutoCacheApi, IncrementGranularity) {
  auto sheet = openai_gpt4o_mini();
  AutoCacheApi api(sheet);
  auto a = iota_seq(1500);
  api.submit(a, 1);
  auto b = iota_seq(1500);
  b[1400] = 999999;  // diverges after 1400 tokens
  const auto c = api.submit(b, 1);
  // Matched prefix rounds down to a 128-token boundary >= 1024.
  EXPECT_EQ(c.cached_tokens % 128, 0u);
  EXPECT_GE(c.cached_tokens, 1024u);
  EXPECT_LE(c.cached_tokens, 1400u);
}

TEST(AutoCacheApi, CostDropsWithSharing) {
  auto sheet = openai_gpt4o_mini();
  std::vector<PricedRequest> stream;
  const auto shared = iota_seq(1536);
  for (int i = 0; i < 50; ++i) {
    PricedRequest r;
    r.prompt = shared;
    r.prompt.push_back(static_cast<std::uint32_t>(100000 + i));
    r.output_tokens = 4;
    stream.push_back(std::move(r));
  }
  const auto cached = price_stream_auto(sheet, stream);
  const auto uncached = price_stream_uncached(sheet, stream);
  EXPECT_LT(cached.cost_usd, uncached.cost_usd);
  EXPECT_GT(cached.prompt_hit_rate, 0.9);
  // 49 of 50 requests ~fully cached at half price: ~48% input savings.
  EXPECT_NEAR(1.0 - cached.cost_usd / uncached.cost_usd, 0.47, 0.05);
}

TEST(BreakpointCacheApi, FirstWriteThenReads) {
  auto sheet = anthropic_claude35_sonnet();
  BreakpointCacheApi api(sheet);
  const auto p = iota_seq(1500);
  const auto first = api.submit(p, 2);
  EXPECT_EQ(first.usage.cache_write, 1024u);
  EXPECT_EQ(first.usage.cached_input, 0u);
  EXPECT_EQ(first.usage.uncached_input, 1500u - 1024u);
  const auto second = api.submit(p, 2);
  EXPECT_EQ(second.usage.cached_input, 1024u);
  EXPECT_EQ(second.usage.cache_write, 0u);
}

TEST(BreakpointCacheApi, ShortPromptsNeverCache) {
  auto sheet = anthropic_claude35_sonnet();
  BreakpointCacheApi api(sheet);
  const auto p = iota_seq(500);
  api.submit(p, 2);
  const auto c = api.submit(p, 2);
  EXPECT_EQ(c.usage.cached_input, 0u);
  EXPECT_EQ(c.usage.uncached_input, 500u);
}

TEST(BreakpointCacheApi, DivergentPrefixesWriteSeparately) {
  auto sheet = anthropic_claude35_sonnet();
  BreakpointCacheApi api(sheet);
  api.submit(iota_seq(1200, 0), 1);
  const auto c = api.submit(iota_seq(1200, 5000), 1);
  EXPECT_EQ(c.usage.cache_write, 1024u);  // different prefix: new write
}

TEST(BreakpointCacheApi, WritePremiumCanExceedUncached) {
  // A stream of all-distinct prompts under breakpoint caching costs *more*
  // than no caching (every request pays the 25% write premium).
  auto sheet = anthropic_claude35_sonnet();
  std::vector<PricedRequest> stream;
  for (int i = 0; i < 20; ++i) {
    PricedRequest r;
    r.prompt = iota_seq(1200, static_cast<std::uint32_t>(i * 10000));
    r.output_tokens = 2;
    stream.push_back(std::move(r));
  }
  const auto bp = price_stream_breakpoint(sheet, stream);
  const auto plain = price_stream_uncached(sheet, stream);
  EXPECT_GT(bp.cost_usd, plain.cost_usd);
}

}  // namespace
}  // namespace llmq::pricing
