// Router unit tests plus the replicated-serving properties:
//   * the n_replicas == 1 replicated run is equivalent — emitted ordering,
//     PHC, hit rate, and timings — to the single-engine run_online;
//   * multi-replica runs serve every arrival exactly once across replicas;
//   * PrefixAffinity beats RoundRobin on aggregate hit rate when a
//     shared-prefix stream is sharded over >= 2 replicas.

#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "serve/online.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

// ---- Router unit tests. ----

tokenizer::TokenSeq iota_seq(std::size_t n, cache::TokenId start = 0) {
  tokenizer::TokenSeq s(n);
  std::iota(s.begin(), s.end(), start);
  return s;
}

std::vector<Router::ReplicaView> plain_views(std::size_t n) {
  return std::vector<Router::ReplicaView>(n);
}

TEST(Router, PolicyNamesRoundTrip) {
  EXPECT_EQ(to_string(RouterPolicy::RoundRobin), "RoundRobin");
  EXPECT_EQ(to_string(RouterPolicy::PrefixAffinity), "PrefixAffinity");
  EXPECT_EQ(router_policy_from_string("round-robin"),
            RouterPolicy::RoundRobin);
  EXPECT_EQ(router_policy_from_string("least-loaded"),
            RouterPolicy::LeastLoaded);
  EXPECT_EQ(router_policy_from_string("tenant-hash"),
            RouterPolicy::TenantHash);
  EXPECT_EQ(router_policy_from_string("affinity"),
            RouterPolicy::PrefixAffinity);
  EXPECT_FALSE(router_policy_from_string("nope").has_value());
}

TEST(Router, RejectsZeroReplicasAndBadViews) {
  EXPECT_THROW(Router(RouterPolicy::RoundRobin, 0), std::invalid_argument);
  Router r(RouterPolicy::RoundRobin, 3);
  const auto p = iota_seq(4);
  EXPECT_THROW(r.route(p, 0, plain_views(2)), std::invalid_argument);
}

TEST(Router, RoundRobinCycles) {
  Router r(RouterPolicy::RoundRobin, 3);
  const auto p = iota_seq(4);
  const auto v = plain_views(3);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(r.route(p, 0, v), i % 3);
}

TEST(Router, LeastLoadedPicksFewestOutstandingTokens) {
  Router r(RouterPolicy::LeastLoaded, 3);
  const auto p = iota_seq(4);
  auto v = plain_views(3);
  v[0].outstanding_prompt_tokens = 50;
  v[1].outstanding_prompt_tokens = 10;
  v[2].outstanding_prompt_tokens = 90;
  EXPECT_EQ(r.route(p, 0, v), 1u);
  v[1].outstanding_prompt_tokens = 50;  // three-way tie -> lowest index
  v[2].outstanding_prompt_tokens = 50;
  EXPECT_EQ(r.route(p, 0, v), 0u);
}

TEST(Router, TenantHashIsDeterministicAndSpreads) {
  Router r(RouterPolicy::TenantHash, 4);
  const auto p = iota_seq(4);
  const auto v = plain_views(4);
  std::set<std::size_t> hit;
  for (std::uint32_t t = 0; t < 64; ++t) {
    const std::size_t a = r.route(p, t, v);
    EXPECT_LT(a, 4u);
    EXPECT_EQ(a, r.route(p, t, v));  // same tenant, same replica
    hit.insert(a);
  }
  EXPECT_EQ(hit.size(), 4u);  // 64 tenants cover all 4 replicas
}

TEST(Router, PrefixAffinityFollowsTheLongestCachedPrefix) {
  cache::CacheConfig cc;
  cc.block_size = 4;
  cache::PrefixCache cold(cc), warm(cc);
  const auto prompt = iota_seq(16);
  auto lease = warm.lookup(prompt);
  warm.admit(prompt, lease);
  warm.release(lease);

  Router r(RouterPolicy::PrefixAffinity, 2);
  std::vector<Router::ReplicaView> v(2);
  v[0].cache = &cold;
  v[1].cache = &warm;
  // Affinity outranks load while the backlog gap stays within the spill
  // guard (2x the fleet minimum + the prompt).
  v[0].outstanding_prompt_tokens = 600;
  v[1].outstanding_prompt_tokens = 1000;
  EXPECT_EQ(r.route(prompt, 0, v), 1u);

  // No cached prefix anywhere: fall back to the tenant hash (stable, so a
  // cold burst stays together), not to least loaded (which would scatter
  // it across the fleet).
  const auto other = iota_seq(16, 500);
  Router th(RouterPolicy::TenantHash, 2);
  for (std::uint32_t tenant = 0; tenant < 8; ++tenant) {
    const std::size_t pick = r.route(other, tenant, v);
    EXPECT_EQ(pick, th.route(other, tenant, v));
    EXPECT_EQ(pick, r.route(other, tenant, v));  // stable
  }

  // Past the guard, affinity yields to balance: the warm replica is far
  // more loaded than the idle one, so the request spills despite the hit.
  v[0].outstanding_prompt_tokens = 0;
  v[1].outstanding_prompt_tokens = 5000;
  EXPECT_EQ(r.route(prompt, 0, v), 0u);

  // Routing must not have perturbed the probed caches.
  EXPECT_EQ(cold.stats().lookups, 0u);
  EXPECT_EQ(warm.stats().lookups, 1u);  // only the explicit lookup above
}

// ---- Replicated serving runs. ----

Table groupy_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back("value_" + std::string(1, static_cast<char>(
                                                  'a' + rng.next_below(
                                                            alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 2.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.kv_pool_blocks_override = 2048;  // ample, deterministic
  return cfg;
}

std::vector<Arrival> stream_over(std::size_t n, double rate,
                                 std::uint64_t seed,
                                 std::size_t n_tenants = 1) {
  WorkloadOptions w;
  w.arrival_rate = rate;
  w.seed = seed;
  w.n_tenants = n_tenants;
  return generate_arrivals(n, w);
}

TEST(ReplicatedServing, SingleReplicaEquivalentToSingleEngineRun) {
  // The ISSUE property: an n_replicas == 1 router run must be equivalent
  // to the single-engine run_online — same emitted ordering, PHC, and hit
  // rate — under every routing policy (with one replica every policy
  // routes identically). The clock-merge rule makes the equivalence
  // exact, so timings are compared bit-for-bit too.
  util::Rng rng(41);
  const Table t = groupy_table(rng, 60, 3, 3);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 16;
  cfg.scheduler.max_wait_seconds = 1.5;
  const auto arrivals = stream_over(60, 25.0, 11, 3);

  const auto single = run_online(t, fds, arrivals, cfg);
  for (const RouterPolicy policy :
       {RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::TenantHash, RouterPolicy::PrefixAffinity}) {
    OnlineConfig rcfg = cfg;
    rcfg.n_replicas = 1;
    rcfg.router = policy;
    const auto routed = run_online_replicated(t, fds, arrivals, rcfg);

    EXPECT_EQ(routed.emitted.row_order(), single.emitted.row_order());
    EXPECT_EQ(routed.emitted.field_orders(), single.emitted.field_orders());
    EXPECT_DOUBLE_EQ(routed.phc, single.phc);
    EXPECT_DOUBLE_EQ(routed.engine.prompt_cache_hit_rate(),
                     single.engine.prompt_cache_hit_rate());
    EXPECT_EQ(routed.engine.cached_prompt_tokens,
              single.engine.cached_prompt_tokens);
    EXPECT_DOUBLE_EQ(routed.engine.total_seconds, single.engine.total_seconds);
    EXPECT_DOUBLE_EQ(routed.latency.mean_ttft, single.latency.mean_ttft);
    EXPECT_DOUBLE_EQ(routed.latency.p99_e2e, single.latency.p99_e2e);
    EXPECT_DOUBLE_EQ(routed.load_imbalance, 1.0);
    ASSERT_EQ(routed.replicas.size(), 1u);
    EXPECT_EQ(routed.replicas[0].requests, single.requests.size());
    ASSERT_EQ(routed.requests.size(), single.requests.size());
    for (std::size_t i = 0; i < routed.requests.size(); ++i) {
      EXPECT_EQ(routed.requests[i].id, single.requests[i].id);
      EXPECT_DOUBLE_EQ(routed.requests[i].finish_time,
                       single.requests[i].finish_time);
    }
  }
}

TEST(ReplicatedServing, ServesEveryArrivalOnceAcrossReplicas) {
  util::Rng rng(42);
  const Table t = groupy_table(rng, 80, 3, 3);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 16;
  cfg.scheduler.max_wait_seconds = 1.0;
  cfg.n_replicas = 4;
  const auto arrivals = stream_over(80, 40.0, 12, 4);

  for (const RouterPolicy policy :
       {RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::TenantHash, RouterPolicy::PrefixAffinity}) {
    cfg.router = policy;
    const auto r = run_online(t, fds, arrivals, cfg);
    ASSERT_EQ(r.requests.size(), 80u) << to_string(policy);
    ASSERT_EQ(r.replicas.size(), 4u);

    std::set<std::uint64_t> ids;
    for (const auto& sr : r.requests) {
      EXPECT_TRUE(ids.insert(sr.id).second);
      EXPECT_LE(sr.arrival_time, sr.dispatch_time);
      EXPECT_LE(sr.dispatch_time, sr.admit_time);
      EXPECT_LE(sr.admit_time, sr.first_token_time);
      EXPECT_LE(sr.first_token_time, sr.finish_time);
    }
    std::size_t routed = 0;
    std::uint64_t prompt_tokens = 0;
    for (const auto& rep : r.replicas) {
      routed += rep.requests;
      prompt_tokens += rep.routed_prompt_tokens;
    }
    EXPECT_EQ(routed, 80u);
    // Per-request replica attribution reconciles with the per-replica
    // breakdown.
    std::vector<std::size_t> by_replica(4, 0);
    for (const auto& sr : r.requests) {
      ASSERT_LT(sr.replica, 4u);
      ++by_replica[sr.replica];
    }
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(by_replica[i], r.replicas[i].requests);
    EXPECT_EQ(prompt_tokens, r.engine.prompt_tokens);
    EXPECT_GE(r.load_imbalance, 1.0);
    EXPECT_LE(r.load_imbalance, 4.0 + 1e-9);
    EXPECT_TRUE(r.emitted.validate(80, t.num_cols()));
    // RoundRobin by construction spreads requests across all replicas.
    if (policy == RouterPolicy::RoundRobin) {
      for (const auto& rep : r.replicas) EXPECT_EQ(rep.requests, 20u);
    }
  }
}

/// Shared-prefix workload: few long repeated metadata columns + unique
/// text, multi-tenant — the shape where routing locality decides how many
/// replicas must re-prefill the same prefix.
Table shared_prefix_table(util::Rng& rng, std::size_t n_rows,
                          std::size_t n_products) {
  Table t{Schema::of_names({"product", "description", "review"})};
  std::vector<std::string> product, description;
  for (std::size_t p = 0; p < n_products; ++p) {
    product.push_back("product_" + std::to_string(p));
    std::string d;
    for (int k = 0; k < 12; ++k)
      d += "spec" + std::to_string(p) + "word" + std::to_string(k) + " ";
    description.push_back(d);
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    const std::size_t p = rng.next_below(n_products);
    std::string review;
    for (int k = 0; k < 10; ++k)
      review += "tok" + std::to_string(rng.next_u64() % 100000) + " ";
    t.append_row({product[p], description[p], std::move(review)});
  }
  return t;
}

TEST(ReplicatedServing, PrefixAffinityBeatsRoundRobinHitRate) {
  util::Rng rng(43);
  const Table t = shared_prefix_table(rng, 120, 6);
  table::FdSet fds;
  fds.add_group({"product", "description"});

  OnlineConfig cfg = small_config();
  cfg.scheduler.policy = Policy::TenantGgr;
  cfg.scheduler.window_rows = 40;
  cfg.scheduler.max_wait_seconds = 2.0;
  cfg.n_replicas = 2;

  WorkloadOptions w;
  w.arrival_rate = 40.0;
  w.n_tenants = 4;
  w.tenant_skew = 1.0;
  w.n_requests = 240;  // repeat traffic: every row visited ~twice
  w.seed = 13;
  const auto arrivals = generate_arrivals(t.num_rows(), w);

  cfg.router = RouterPolicy::RoundRobin;
  const auto rr = run_online(t, fds, arrivals, cfg);
  cfg.router = RouterPolicy::PrefixAffinity;
  const auto aff = run_online(t, fds, arrivals, cfg);

  ASSERT_EQ(rr.requests.size(), aff.requests.size());
  EXPECT_GT(aff.engine.prompt_cache_hit_rate(),
            rr.engine.prompt_cache_hit_rate());
}

TEST(ReplicatedServing, ZeroReplicasRejectedEmptyStreamOk) {
  util::Rng rng(44);
  const Table t = groupy_table(rng, 5, 2, 2);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.n_replicas = 0;
  EXPECT_THROW(run_online(t, fds, {}, cfg), std::invalid_argument);
  EXPECT_THROW(run_online_replicated(t, fds, {}, cfg), std::invalid_argument);

  cfg.n_replicas = 3;
  const auto r = run_online(t, fds, {}, cfg);
  EXPECT_TRUE(r.requests.empty());
  EXPECT_EQ(r.replicas.size(), 3u);
  EXPECT_DOUBLE_EQ(r.load_imbalance, 1.0);
}

}  // namespace
}  // namespace llmq::serve
