// Tier-aware routing: PrefixAffinity scores a GPU-resident prefix above
// the same prefix demoted to host, a host hit above a miss, and every
// policy routes around draining replicas.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "serve/router.hpp"

namespace llmq::serve {
namespace {

using cache::CacheConfig;
using cache::PrefixCache;

tokenizer::TokenSeq iota_prompt(std::size_t n, tokenizer::TokenId start) {
  tokenizer::TokenSeq p(n);
  std::iota(p.begin(), p.end(), start);
  return p;
}

void warm(PrefixCache& c, const tokenizer::TokenSeq& p) {
  auto lease = c.lookup(p);
  c.admit(p, lease);
  c.release(lease);
}

TEST(TierRouting, GpuHitOutranksHostHitOutranksMiss) {
  const auto prompt = iota_prompt(32, 100);
  PrefixCache gpu_hot(CacheConfig{4, 8, true, 0, 2, 0, 0});
  PrefixCache host_only(CacheConfig{4, 8, true, 0, 2, 0, 0});
  PrefixCache cold(CacheConfig{4, 8, true, 0, 2, 0, 0});
  warm(gpu_hot, prompt);
  warm(host_only, prompt);
  // Demote one replica's copy: same matched tokens, lower tier.
  ASSERT_EQ(host_only.evict(host_only.gpu_resident_blocks()), 8u);
  ASSERT_EQ(host_only.tier_resident_blocks(1), 8u);

  Router r(RouterPolicy::PrefixAffinity, 3);
  std::vector<Router::ReplicaView> v(3);
  v[0].cache = &cold;
  v[1].cache = &host_only;
  v[2].cache = &gpu_hot;

  // Full GPU residency wins even from the highest index.
  EXPECT_EQ(r.route(prompt, 0, v), 2u);
  // Without the GPU copy, the host hit still beats the miss — demoted
  // affinity is worth routing for, just less than hot affinity.
  v[2].cache = &cold;
  EXPECT_EQ(r.route(prompt, 0, v), 1u);
  // Routing probes are side-effect-free: nothing got promoted.
  EXPECT_EQ(host_only.tier_resident_blocks(1), 8u);
  EXPECT_EQ(host_only.stats().promoted_blocks, 0u);
}

TEST(TierRouting, FlatCachesPreserveThePreTierOrdering) {
  // With flat caches the tier score is a monotone transform of matched
  // tokens, so the pre-tier winner must still win — including its
  // load-based tie-break.
  const auto prompt = iota_prompt(24, 500);
  PrefixCache a(CacheConfig{4, 0, true});
  PrefixCache b(CacheConfig{4, 0, true});
  warm(a, prompt);
  warm(b, prompt);  // identical affinity: fall through to load
  Router r(RouterPolicy::PrefixAffinity, 2);
  std::vector<Router::ReplicaView> v(2);
  v[0].cache = &a;
  v[1].cache = &b;
  v[0].outstanding_prompt_tokens = 64;
  v[1].outstanding_prompt_tokens = 8;
  EXPECT_EQ(r.route(prompt, 0, v), 1u);
  v[1].outstanding_prompt_tokens = 64;
  EXPECT_EQ(r.route(prompt, 0, v), 0u);  // full tie: lower index
}

TEST(TierRouting, EveryPolicyRoutesAroundDrainingReplicas) {
  const auto prompt = iota_prompt(16, 900);
  PrefixCache warm_cache(CacheConfig{4, 0, true});
  warm(warm_cache, prompt);

  for (const RouterPolicy policy :
       {RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::TenantHash, RouterPolicy::PrefixAffinity}) {
    Router r(policy, 3);
    std::vector<Router::ReplicaView> v(3);
    // Make the draining replica the one every heuristic would pick:
    // warmest cache, least load.
    v[1].cache = &warm_cache;
    v[0].outstanding_prompt_tokens = 100;
    v[2].outstanding_prompt_tokens = 200;
    v[1].draining = true;
    for (std::uint32_t tenant = 0; tenant < 6; ++tenant)
      EXPECT_NE(r.route(prompt, tenant, v), 1u)
          << to_string(policy) << " routed to a draining replica";
  }
}

}  // namespace
}  // namespace llmq::serve
