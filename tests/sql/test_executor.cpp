#include "sql/executor.hpp"

#include <gtest/gtest.h>

#include "table/value.hpp"

namespace llmq::sql {
namespace {

Catalog make_catalog(std::size_t n = 150) {
  Catalog cat;
  data::GenOptions g;
  g.n_rows = n;
  g.seed = 17;
  cat.put_dataset("movies", data::generate_movies(g));
  cat.put_dataset("beer", data::generate_beer(g));
  return cat;
}

SqlOptions fast_options() {
  SqlOptions opt;
  opt.exec = query::ExecConfig::standard(query::Method::CacheGgr);
  return opt;
}

TEST(SqlCatalog, PutGetNames) {
  const auto cat = make_catalog(30);
  EXPECT_TRUE(cat.has("movies"));
  EXPECT_FALSE(cat.has("nope"));
  EXPECT_THROW(cat.get("nope"), std::invalid_argument);
  EXPECT_EQ(cat.names().size(), 2u);
  EXPECT_EQ(cat.get("movies").table.num_rows(), 30u);
}

TEST(SqlExec, ColumnProjection) {
  const auto cat = make_catalog(40);
  const auto res =
      execute("SELECT movietitle, reviewtype FROM movies", cat, fast_options());
  EXPECT_EQ(res.result.num_rows(), 40u);
  EXPECT_EQ(res.result.num_cols(), 2u);
  EXPECT_EQ(res.result.schema().field(0).name, "movietitle");
  EXPECT_TRUE(res.stages.empty());  // no LLM calls
  EXPECT_DOUBLE_EQ(res.simulated_seconds, 0.0);
}

TEST(SqlExec, LlmFilterSelectsSubset) {
  const auto cat = make_catalog(120);
  const auto res = execute(
      "SELECT movietitle FROM movies WHERE LLM('Suitable for kids? Answer "
      "ONLY Yes or No.', movieinfo, reviewcontent) = 'Yes'",
      cat, fast_options());
  EXPECT_GT(res.result.num_rows(), 0u);
  EXPECT_LT(res.result.num_rows(), 120u);
  ASSERT_EQ(res.stages.size(), 1u);
  EXPECT_EQ(res.stages[0].metrics.rows, 120u);
  EXPECT_GT(res.simulated_seconds, 0.0);
}

TEST(SqlExec, LlmProjectionProducesText) {
  const auto cat = make_catalog(25);
  const auto res = execute(
      "SELECT LLM('Summarize the review.', reviewcontent, movieinfo) AS "
      "summary FROM movies",
      cat, fast_options());
  EXPECT_EQ(res.result.num_rows(), 25u);
  EXPECT_EQ(res.result.schema().field(0).name, "summary");
  for (std::size_t r = 0; r < res.result.num_rows(); ++r)
    EXPECT_FALSE(res.result.cell(r, 0).empty());
}

TEST(SqlExec, AvgLlmProducesSingleNumericRow) {
  const auto cat = make_catalog(60);
  const auto res = execute(
      "SELECT AVG(LLM('Rate sentiment 1-5.', reviewcontent, movieinfo)) AS "
      "score FROM movies",
      cat, fast_options());
  EXPECT_EQ(res.result.num_rows(), 1u);
  const auto v = table::parse_double(res.result.cell(0, 0));
  ASSERT_TRUE(v.has_value());
  EXPECT_GE(*v, 1.0);
  EXPECT_LE(*v, 5.0);
}

TEST(SqlExec, AvgMixedWithColumnRejected) {
  const auto cat = make_catalog(20);
  EXPECT_THROW(
      execute("SELECT movietitle, AVG(LLM('q', reviewcontent)) FROM movies",
              cat, fast_options()),
      std::invalid_argument);
}

TEST(SqlExec, MultiLlmPipeline) {
  const auto cat = make_catalog(100);
  const auto res = execute(
      "SELECT LLM('Summarize good qualities.', reviewtype, reviewcontent, "
      "movieinfo, genres) FROM movies "
      "WHERE LLM('Sentiment POSITIVE or NEGATIVE?', reviewcontent) = "
      "'NEGATIVE'",
      cat, fast_options());
  ASSERT_EQ(res.stages.size(), 2u);
  EXPECT_EQ(res.stages[0].metrics.rows, 100u);   // WHERE over all rows
  EXPECT_EQ(res.stages[1].metrics.rows, res.result.num_rows());
  EXPECT_GT(res.result.num_rows(), 0u);
}

TEST(SqlExec, RelationalAtomsApplyWithoutLlm) {
  const auto cat = make_catalog(80);
  const auto res = execute(
      "SELECT movietitle FROM movies WHERE reviewtype = 'Fresh'", cat,
      fast_options());
  EXPECT_GT(res.result.num_rows(), 0u);
  EXPECT_LT(res.result.num_rows(), 80u);
  EXPECT_TRUE(res.stages.empty());
}

TEST(SqlExec, GgrBeatsOriginalOnSqlQuery) {
  const auto cat = make_catalog(200);
  const char* q =
      "SELECT movietitle FROM movies WHERE LLM('Suitable for kids?', "
      "movieinfo, reviewcontent, genres, movietitle) = 'Yes'";
  SqlOptions ggr = fast_options();
  ggr.exec.scale_kv_pool(200.0 / 15000.0);
  SqlOptions orig = fast_options();
  orig.exec = query::ExecConfig::standard(query::Method::CacheOriginal);
  orig.exec.scale_kv_pool(200.0 / 15000.0);
  const auto r_ggr = execute(q, cat, ggr);
  const auto r_orig = execute(q, cat, orig);
  EXPECT_LT(r_ggr.simulated_seconds, r_orig.simulated_seconds);
  EXPECT_GT(r_ggr.overall_phr(), r_orig.overall_phr());
}

TEST(SqlExec, UnknownTableThrows) {
  const auto cat = make_catalog(10);
  EXPECT_THROW(execute("SELECT a FROM nope", cat, fast_options()),
               std::invalid_argument);
}

TEST(SqlExec, UnknownColumnThrows) {
  const auto cat = make_catalog(10);
  EXPECT_THROW(execute("SELECT no_such_column FROM movies", cat, fast_options()),
               std::out_of_range);
}

TEST(SqlExec, JoinedFromClause) {
  Catalog cat;
  BoundTable reviews;
  reviews.table = table::Table(table::Schema::of_names({"review", "asin"}));
  reviews.table.append_row({"great", "A1"});
  reviews.table.append_row({"poor", "A2"});
  reviews.table.append_row({"fine", "A1"});
  cat.put("reviews", std::move(reviews));
  BoundTable products;
  products.table =
      table::Table(table::Schema::of_names({"asin", "description"}));
  products.table.append_row({"A1", "A fine widget for all your needs"});
  products.table.append_row({"A2", "A gadget of questionable provenance"});
  cat.put("product", std::move(products));

  const auto res = execute(
      "SELECT LLM('Summarize: ', pr.*) FROM reviews JOIN product ON "
      "r.asin = p.asin",
      cat, fast_options());
  EXPECT_EQ(res.result.num_rows(), 3u);
  ASSERT_EQ(res.stages.size(), 1u);
  EXPECT_EQ(res.stages[0].metrics.rows, 3u);
}

TEST(SqlExec, EmptyFilterResultShortCircuits) {
  const auto cat = make_catalog(20);
  const auto res = execute(
      "SELECT movietitle FROM movies WHERE reviewtype = 'NoSuchType'", cat,
      fast_options());
  EXPECT_EQ(res.result.num_rows(), 0u);
}

TEST(SqlExec, DeterministicResults) {
  const auto cat = make_catalog(60);
  const char* q =
      "SELECT LLM('Sum.', reviewcontent) FROM movies WHERE "
      "LLM('Kids?', movieinfo) = 'Yes'";
  const auto a = execute(q, cat, fast_options());
  const auto b = execute(q, cat, fast_options());
  EXPECT_EQ(a.result, b.result);
  EXPECT_DOUBLE_EQ(a.simulated_seconds, b.simulated_seconds);
}

}  // namespace
}  // namespace llmq::sql
