#include "sql/lexer.hpp"

#include <gtest/gtest.h>

namespace llmq::sql {
namespace {

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::End);
}

TEST(Lexer, KeywordsCaseInsensitive) {
  const auto toks = lex("select FROM Where aNd");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].text, "FROM");
  EXPECT_EQ(toks[2].text, "WHERE");
  EXPECT_EQ(toks[3].text, "AND");
  for (int i = 0; i < 4; ++i) EXPECT_EQ(toks[i].kind, TokenKind::Keyword);
}

TEST(Lexer, IdentifiersKeepCaseAndQualifiers) {
  const auto toks = lex("MOVIES t.reviewcontent beer/beerId");
  EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[0].text, "MOVIES");  // not a keyword
  EXPECT_EQ(toks[1].text, "t.reviewcontent");
  EXPECT_EQ(toks[2].text, "beer/beerId");
}

TEST(Lexer, StringLiteralWithEscapedQuote) {
  const auto toks = lex("'it''s a test'");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::String);
  EXPECT_EQ(toks[0].text, "it's a test");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("'oops"), LexError);
}

TEST(Lexer, SymbolsIncludingNotEquals) {
  const auto toks = lex("( ) , = * <>");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[5].text, "<>");
  for (int i = 0; i < 6; ++i) EXPECT_EQ(toks[i].kind, TokenKind::Symbol);
}

TEST(Lexer, Numbers) {
  const auto toks = lex("42 1.5");
  EXPECT_EQ(toks[0].kind, TokenKind::Number);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].text, "1.5");
}

TEST(Lexer, LineCommentsSkipped) {
  const auto toks = lex("SELECT -- comment text\nFROM");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "FROM");
}

TEST(Lexer, UnexpectedCharacterThrows) { EXPECT_THROW(lex("@"), LexError); }

TEST(Lexer, OffsetsTrackPosition) {
  const auto toks = lex("SELECT x");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 7u);
}

TEST(Lexer, IsKeywordHelper) {
  EXPECT_TRUE(is_keyword("LLM"));
  EXPECT_TRUE(is_keyword("NULL"));
  EXPECT_FALSE(is_keyword("MOVIES"));
}

}  // namespace
}  // namespace llmq::sql
