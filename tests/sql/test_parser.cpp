#include "sql/parser.hpp"

#include <gtest/gtest.h>

namespace llmq::sql {
namespace {

TEST(Parser, SimpleColumnSelect) {
  const auto stmt = parse("SELECT movietitle FROM movies");
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].kind, SelectItem::Kind::Column);
  EXPECT_EQ(stmt.items[0].column, "movietitle");
  EXPECT_EQ(stmt.from.table, "movies");
  EXPECT_TRUE(stmt.where.empty());
}

TEST(Parser, LlmProjectionWithFields) {
  const auto stmt = parse(
      "SELECT LLM('Summarize the movie.', reviewcontent, movieinfo) "
      "FROM movies");
  ASSERT_EQ(stmt.items.size(), 1u);
  const auto& item = stmt.items[0];
  EXPECT_EQ(item.kind, SelectItem::Kind::Llm);
  EXPECT_EQ(item.llm.prompt, "Summarize the movie.");
  EXPECT_EQ(item.llm.fields,
            (std::vector<std::string>{"reviewcontent", "movieinfo"}));
  EXPECT_FALSE(item.llm.star);
}

TEST(Parser, LlmStarArgument) {
  const auto stmt = parse("SELECT LLM('Summarize: ', pr.*) FROM pr");
  EXPECT_TRUE(stmt.items[0].llm.star);
  EXPECT_TRUE(stmt.items[0].llm.fields.empty());
}

TEST(Parser, BareStarArgument) {
  const auto stmt = parse("SELECT LLM('Summarize: ', *) FROM t");
  EXPECT_TRUE(stmt.items[0].llm.star);
}

TEST(Parser, PaperIntroQuery) {
  // The paper's §1 customer-tickets query (LLM in SELECT with alias, a
  // NOT NULL guard in WHERE).
  const auto stmt = parse(
      "SELECT user_id, request, support_response, "
      "LLM('Did {support_response} address {request}?', support_response, "
      "request) AS success "
      "FROM customer_tickets WHERE support_response <> NULL");
  ASSERT_EQ(stmt.items.size(), 4u);
  EXPECT_EQ(stmt.items[0].column, "user_id");
  EXPECT_EQ(stmt.items[3].kind, SelectItem::Kind::Llm);
  EXPECT_EQ(stmt.items[3].alias, "success");
  ASSERT_EQ(stmt.where.size(), 1u);
  EXPECT_EQ(stmt.where[0].kind, PredicateAtom::Kind::ColumnNotNull);
  EXPECT_EQ(stmt.where[0].column, "support_response");
}

TEST(Parser, PaperFilterQuery) {
  const auto stmt = parse(
      "SELECT t.movietitle FROM MOVIES WHERE LLM('Given the following "
      "fields, determine whether the movie is suitable for kids. Answer "
      "ONLY with \"Yes\" or \"No\".', movieinfo, reviewcontent, reviewtype, "
      "movietitle) = 'Yes'");
  EXPECT_EQ(stmt.items[0].column, "movietitle");  // qualifier stripped
  ASSERT_EQ(stmt.where.size(), 1u);
  const auto& atom = stmt.where[0];
  EXPECT_EQ(atom.kind, PredicateAtom::Kind::LlmEquals);
  EXPECT_EQ(atom.literal, "Yes");
  EXPECT_EQ(atom.llm.fields.size(), 4u);
}

TEST(Parser, PaperAggregationQuery) {
  const auto stmt = parse(
      "SELECT AVG(LLM('Rate sentiment in numerical values from 1 (bad) to "
      "5 (good).', reviewcontent, movieinfo)) AS AverageScore FROM MOVIES");
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].kind, SelectItem::Kind::AvgLlm);
  EXPECT_EQ(stmt.items[0].alias, "AverageScore");
  EXPECT_EQ(stmt.items[0].llm.fields.size(), 2u);
}

TEST(Parser, MultiLlmQuery) {
  // Paper's multi-LLM invocation: LLM in SELECT and in WHERE.
  const auto stmt = parse(
      "SELECT LLM('Summarize good qualities.', reviewtype, reviewcontent, "
      "movieinfo, genres) FROM MOVIES WHERE LLM('Sentiment?', "
      "reviewcontent) = 'NEGATIVE'");
  EXPECT_EQ(stmt.items[0].kind, SelectItem::Kind::Llm);
  ASSERT_EQ(stmt.where.size(), 1u);
  EXPECT_EQ(stmt.where[0].literal, "NEGATIVE");
}

TEST(Parser, JoinClause) {
  const auto stmt = parse(
      "SELECT review FROM reviews JOIN product ON r.asin = p.asin");
  EXPECT_EQ(stmt.from.table, "reviews");
  ASSERT_TRUE(stmt.from.join_table.has_value());
  EXPECT_EQ(*stmt.from.join_table, "product");
  EXPECT_EQ(stmt.from.left_key, "r.asin");
  EXPECT_EQ(stmt.from.right_key, "p.asin");
}

TEST(Parser, ConjunctivePredicates) {
  const auto stmt = parse(
      "SELECT a FROM t WHERE a <> NULL AND b = 'x' AND "
      "LLM('q', a) = 'Yes'");
  ASSERT_EQ(stmt.where.size(), 3u);
  EXPECT_EQ(stmt.where[0].kind, PredicateAtom::Kind::ColumnNotNull);
  EXPECT_EQ(stmt.where[1].kind, PredicateAtom::Kind::ColumnEquals);
  EXPECT_EQ(stmt.where[2].kind, PredicateAtom::Kind::LlmEquals);
}

TEST(Parser, ErrorsAreSpecific) {
  EXPECT_THROW(parse("FROM t"), ParseError);                    // no SELECT
  EXPECT_THROW(parse("SELECT a"), ParseError);                  // no FROM
  EXPECT_THROW(parse("SELECT LLM(a) FROM t"), ParseError);      // no prompt
  EXPECT_THROW(parse("SELECT a FROM t WHERE a = b"), ParseError);  // literal
  EXPECT_THROW(parse("SELECT a FROM t extra"), ParseError);     // trailing
  EXPECT_THROW(parse("SELECT a FROM t WHERE LLM('q', a) = 5"),
               ParseError);  // non-string comparison
}

TEST(Parser, SlashFieldNames) {
  const auto stmt =
      parse("SELECT LLM('q', beer/beerId, review/overall) FROM beer");
  EXPECT_EQ(stmt.items[0].llm.fields,
            (std::vector<std::string>{"beer/beerId", "review/overall"}));
}

}  // namespace
}  // namespace llmq::sql
