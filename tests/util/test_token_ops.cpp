// Property tests pinning the token_ops SIMD kernels to the scalar
// reference (the specification): for every implementation the host can
// run, lcp/equal/hash must be bit-identical to namespace scalar over
// randomized contents, lengths straddling every vector-width boundary,
// unaligned spans, empty input, and divergence at every lane position.
// These run under ASan/UBSan and TSan via the sanitizer CI jobs.
#include "util/token_ops.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace llmq::util::token_ops {
namespace {

struct Impl {
  const char* name;
  std::size_t (*lcp)(const Token*, const Token*, std::size_t);
  bool (*equal)(const Token*, const Token*, std::size_t);
  std::uint64_t (*hash)(const Token*, std::size_t);
};

// Every implementation the host can execute, plus the dispatched entry
// points (whatever active_isa() picked — including a forced-scalar run
// under LLMQ_SIMD=scalar). The ISA-specific kernels are gated on the
// compile-time macro AND the runtime CPU check: calling avx2::* on a
// host without AVX2 would fault.
std::vector<Impl> impls() {
  std::vector<Impl> v;
  v.push_back({"dispatched", &lcp, &equal, &hash});
#if defined(LLMQ_TOKEN_OPS_AVX2)
  if (simd::detail::detect() == simd::Isa::Avx2)
    v.push_back({"avx2", &avx2::lcp, &avx2::equal, &avx2::hash});
#endif
#if defined(LLMQ_TOKEN_OPS_NEON)
  v.push_back({"neon", &neon::lcp, &neon::equal, &neon::hash});
#endif
  return v;
}

// Lengths straddling every vector-width boundary: 8 (one AVX2 vector /
// two NEON vectors), 16 (the 2x-unrolled compare stride and the default
// cache block size), and 32 (one full hash-accumulator rotation).
const std::size_t kLens[] = {0,  1,  2,  3,  7,  8,  9,   15,  16,  17,
                             31, 32, 33, 47, 63, 64, 65,  100, 127, 128,
                             129, 255, 256, 513, 1000, 4096, 4097};

std::vector<Token> random_tokens(Rng& rng, std::size_t n) {
  std::vector<Token> v(n);
  for (auto& t : v) t = static_cast<Token>(rng.next_u64());
  return v;
}

TEST(TokenOps, HashMatchesScalarAcrossLengths) {
  Rng rng(1234);
  for (const auto& impl : impls()) {
    SCOPED_TRACE(impl.name);
    for (std::size_t n : kLens) {
      const auto d = random_tokens(rng, n);
      EXPECT_EQ(impl.hash(d.data(), n), scalar::hash(d.data(), n))
          << "len=" << n;
    }
  }
}

TEST(TokenOps, HashEmptyIsPureLengthSeed) {
  // Zero length never dereferences the pointer; nullptr must be legal.
  const std::uint64_t h = scalar::hash(nullptr, 0);
  for (const auto& impl : impls())
    EXPECT_EQ(impl.hash(nullptr, 0), h) << impl.name;
  // And it differs from a one-token hash (length is folded in).
  const Token t = 0;
  EXPECT_NE(scalar::hash(&t, 1), h);
}

TEST(TokenOps, HashUnalignedSpans) {
  // Slide a window over a shared buffer so the data pointer takes every
  // alignment mod 32 bytes — the AVX2 path must use unaligned loads.
  Rng rng(99);
  const auto buf = random_tokens(rng, 4096 + 16);
  for (const auto& impl : impls()) {
    SCOPED_TRACE(impl.name);
    for (std::size_t off = 0; off < 9; ++off)
      for (std::size_t n : {std::size_t{16}, std::size_t{33}, std::size_t{513}})
        EXPECT_EQ(impl.hash(buf.data() + off, n),
                  scalar::hash(buf.data() + off, n))
            << "off=" << off << " len=" << n;
  }
}

TEST(TokenOps, LcpDivergenceAtEveryPosition) {
  // For every divergence index i in a run (covering each lane of the
  // 16-token unrolled compare), every implementation must report exactly
  // i — not the containing vector boundary.
  Rng rng(7);
  const std::size_t n = 70;  // > 4 full unrolled iterations + tail
  const auto a = random_tokens(rng, n);
  for (const auto& impl : impls()) {
    SCOPED_TRACE(impl.name);
    EXPECT_EQ(impl.lcp(a.data(), a.data(), n), n);  // self-compare
    for (std::size_t i = 0; i < n; ++i) {
      auto b = a;
      b[i] ^= 0x8000'0001u;
      EXPECT_EQ(impl.lcp(a.data(), b.data(), n), i);
      EXPECT_EQ(scalar::lcp(a.data(), b.data(), n), i);
      EXPECT_FALSE(impl.equal(a.data(), b.data(), n));
    }
  }
}

TEST(TokenOps, EqualMatchesScalarOnRandomPairs) {
  Rng rng(2024);
  for (const auto& impl : impls()) {
    SCOPED_TRACE(impl.name);
    for (std::size_t n : kLens) {
      const auto a = random_tokens(rng, n);
      // Identical contents in a distinct allocation.
      std::vector<Token> b = a;
      EXPECT_TRUE(impl.equal(a.data(), b.data(), n)) << "len=" << n;
      EXPECT_EQ(impl.lcp(a.data(), b.data(), n), n) << "len=" << n;
      // Random independent contents: compare verdicts, not assumptions —
      // collisions are possible in principle, so check against scalar.
      const auto c = random_tokens(rng, n);
      EXPECT_EQ(impl.equal(a.data(), c.data(), n),
                scalar::equal(a.data(), c.data(), n))
          << "len=" << n;
      EXPECT_EQ(impl.lcp(a.data(), c.data(), n),
                scalar::lcp(a.data(), c.data(), n))
          << "len=" << n;
    }
  }
}

TEST(TokenOps, RandomizedFuzzSweep) {
  // Broad randomized sweep: random length, random shared-prefix length,
  // random alignment offset — the property net under the sanitizers.
  Rng rng(555);
  const auto pool = random_tokens(rng, 8192);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.next_range(0, 300));
    const std::size_t off =
        static_cast<std::size_t>(rng.next_range(0, 15));
    const Token* a = pool.data() + off;
    std::vector<Token> b(a, a + n);
    const std::size_t cut = static_cast<std::size_t>(
        rng.next_range(0, static_cast<std::int64_t>(n)));
    if (cut < n) b[cut] += 1;  // diverge at cut (maybe; += can't wrap to ==)
    const std::size_t want_lcp = scalar::lcp(a, b.data(), n);
    const bool want_eq = scalar::equal(a, b.data(), n);
    const std::uint64_t want_hash = scalar::hash(b.data(), n);
    for (const auto& impl : impls()) {
      ASSERT_EQ(impl.lcp(a, b.data(), n), want_lcp)
          << impl.name << " n=" << n << " cut=" << cut << " off=" << off;
      ASSERT_EQ(impl.equal(a, b.data(), n), want_eq)
          << impl.name << " n=" << n << " cut=" << cut;
      ASSERT_EQ(impl.hash(b.data(), n), want_hash)
          << impl.name << " n=" << n;
    }
  }
}

TEST(TokenOps, SpanConveniencesMatchPointerForms) {
  Rng rng(31);
  const auto a = random_tokens(rng, 100);
  auto b = a;
  b[57] ^= 1u;
  const std::span<const Token> sa(a), sb(b);
  EXPECT_EQ(lcp(sa, sb), 57u);
  EXPECT_EQ(lcp(sa.subspan(0, 40), sb), 40u);  // min-length rule
  EXPECT_FALSE(equal(sa, sb));
  EXPECT_FALSE(equal(sa.subspan(0, 40), sb));  // length mismatch
  EXPECT_TRUE(equal(sa.subspan(0, 57), sb.subspan(0, 57)));
  EXPECT_EQ(hash(sa), hash(a.data(), a.size()));
}

TEST(TokenOps, IsaNamesAndOverride) {
  using simd::Isa;
  EXPECT_STREQ(simd::name(Isa::Scalar), "scalar");
  EXPECT_STREQ(simd::name(Isa::Avx2), "avx2");
  EXPECT_STREQ(simd::name(Isa::Neon), "neon");
  // active_isa() is cached; we can't flip the env mid-process, but it
  // must be one of the values detect() can produce or forced scalar.
  const Isa active = simd::active_isa();
  EXPECT_TRUE(active == simd::detail::detect() || active == Isa::Scalar);
}

}  // namespace
}  // namespace llmq::util::token_ops
