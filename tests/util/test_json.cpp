#include "util/json.hpp"

#include <gtest/gtest.h>

namespace llmq::util {
namespace {

TEST(Json, EscapeSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonWriter w;
  w.begin_object().kv("zeta", "1").kv("alpha", "2").kv("mid", "3").end_object();
  EXPECT_EQ(w.str(), R"({"zeta":"1","alpha":"2","mid":"3"})");
}

TEST(Json, NestedStructures) {
  JsonWriter w;
  w.begin_object()
      .key("rows")
      .begin_array()
      .begin_object()
      .kv("a", "x")
      .end_object()
      .value(std::int64_t{42})
      .end_array()
      .key("flag")
      .value(true)
      .key("nothing")
      .null()
      .end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"a":"x"},42],"flag":true,"nothing":null})");
}

TEST(Json, NumbersAndBooleans) {
  JsonWriter w;
  w.begin_array().value(std::int64_t{-7}).value(false).value(2.5).end_array();
  EXPECT_EQ(w.str(), "[-7,false,2.5]");
}

TEST(Json, TakeMovesBuffer) {
  JsonWriter w;
  w.begin_array().end_array();
  EXPECT_EQ(w.take(), "[]");
}

}  // namespace
}  // namespace llmq::util
