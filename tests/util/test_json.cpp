#include "util/json.hpp"

#include <gtest/gtest.h>

namespace llmq::util {
namespace {

TEST(Json, EscapeSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonWriter w;
  w.begin_object().kv("zeta", "1").kv("alpha", "2").kv("mid", "3").end_object();
  EXPECT_EQ(w.str(), R"({"zeta":"1","alpha":"2","mid":"3"})");
}

TEST(Json, NestedStructures) {
  JsonWriter w;
  w.begin_object()
      .key("rows")
      .begin_array()
      .begin_object()
      .kv("a", "x")
      .end_object()
      .value(std::int64_t{42})
      .end_array()
      .key("flag")
      .value(true)
      .key("nothing")
      .null()
      .end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"a":"x"},42],"flag":true,"nothing":null})");
}

TEST(Json, NumbersAndBooleans) {
  JsonWriter w;
  w.begin_array().value(std::int64_t{-7}).value(false).value(2.5).end_array();
  EXPECT_EQ(w.str(), "[-7,false,2.5]");
}

TEST(Json, TakeMovesBuffer) {
  JsonWriter w;
  w.begin_array().end_array();
  EXPECT_EQ(w.take(), "[]");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null")->is_null());
  EXPECT_TRUE(json_parse("true")->as_bool());
  EXPECT_FALSE(json_parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(json_parse("-7")->as_number(), -7.0);
  EXPECT_DOUBLE_EQ(json_parse("2.5e2")->as_number(), 250.0);
  EXPECT_EQ(json_parse("\"hi\\n\\u0041\"")->as_string(), "hi\nA");
}

TEST(JsonParse, StructuresAndLookup) {
  const auto v = json_parse(
      R"({"bench":"x","scale":0.1,"sections":{"a":[{"k":1},{"k":2}]}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("bench")->as_string(), "x");
  EXPECT_DOUBLE_EQ(v->find("scale")->as_number(), 0.1);
  const JsonValue* a = v->find("sections")->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].find("k")->as_number(), 2.0);
  EXPECT_EQ(v->find("absent"), nullptr);
  // Member order preserved (the writer's insertion order is load-bearing
  // for prompts; the reader keeps it for symmetry).
  EXPECT_EQ(v->as_object()[0].first, "bench");
  EXPECT_EQ(v->as_object()[2].first, "sections");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("line\nbreak \"quoted\" \\ tab\t\x01");
  w.key("n").value(-0.125);
  w.key("arr").begin_array().value(true).null().end_array();
  w.end_object();
  const auto v = json_parse(w.str());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("s")->as_string(), "line\nbreak \"quoted\" \\ tab\t\x01");
  EXPECT_DOUBLE_EQ(v->find("n")->as_number(), -0.125);
  ASSERT_EQ(v->find("arr")->as_array().size(), 2u);
  EXPECT_TRUE(v->find("arr")->as_array()[1].is_null());
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse("[1,]").has_value());
  EXPECT_FALSE(json_parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(json_parse("\"unterminated").has_value());
  EXPECT_FALSE(json_parse("12x").has_value());
  EXPECT_FALSE(json_parse("1 2").has_value());
  EXPECT_FALSE(json_parse("tru").has_value());
  EXPECT_FALSE(json_parse("\"bad \\q escape\"").has_value());
}

TEST(JsonParse, TypeMismatchThrows) {
  const auto v = json_parse("[1]");
  EXPECT_THROW(v->as_object(), std::logic_error);
  EXPECT_THROW(v->as_array()[0].as_string(), std::logic_error);
}

}  // namespace
}  // namespace llmq::util
