#include "util/wordbank.hpp"

#include <gtest/gtest.h>

#include "tokenizer/tokenizer.hpp"

namespace llmq::util {
namespace {

TEST(WordBank, DeterministicAcrossInstances) {
  WordBank a(7, 1000), b(7, 1000);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(a.word(i), b.word(i));
}

TEST(WordBank, SeedChangesVocabulary) {
  WordBank a(7, 100), b(8, 100);
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i)
    if (a.word(i) == b.word(i)) ++same;
  EXPECT_LT(same, 20);
}

TEST(WordBank, SentenceWordCount) {
  Rng rng(3);
  const auto s = default_wordbank().sentence(rng, 12);
  int spaces = 0;
  for (char c : s)
    if (c == ' ') ++spaces;
  EXPECT_EQ(spaces, 11);
  EXPECT_EQ(s.back(), '.');
}

TEST(WordBank, SentenceDeterministicGivenRngState) {
  Rng r1(9), r2(9);
  EXPECT_EQ(default_wordbank().sentence(r1, 30),
            default_wordbank().sentence(r2, 30));
}

TEST(WordBank, TextOfTokensApproximatesTarget) {
  // The tokens/word calibration should land within 30% of target for
  // realistic sizes.
  const auto& tok = tokenizer::global_tokenizer();
  Rng rng(21);
  for (std::size_t target : {50u, 200u, 800u}) {
    const auto text = default_wordbank().text_of_tokens(rng, target);
    const double actual = static_cast<double>(tok.count(text));
    EXPECT_GT(actual, 0.7 * static_cast<double>(target));
    EXPECT_LT(actual, 1.3 * static_cast<double>(target));
  }
}

TEST(WordBank, TitleIsTitleCase) {
  Rng rng(4);
  const auto t = default_wordbank().title(rng, 3);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(t[0])));
  int spaces = 0;
  for (char c : t)
    if (c == ' ') ++spaces;
  EXPECT_EQ(spaces, 2);
}

}  // namespace
}  // namespace llmq::util
