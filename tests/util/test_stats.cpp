#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace llmq::util {
namespace {

TEST(Stats, MeanBasics) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stats, VarianceAndStddev) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(Stats, MinMax) {
  std::vector<double> xs{3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Bootstrap, MedianDeterministicAndCentered) {
  std::vector<double> xs;
  Rng gen(5);
  for (int i = 0; i < 200; ++i) xs.push_back(10.0 + gen.next_gaussian());
  Rng r1(7), r2(7);
  auto b1 = bootstrap_median(xs, 1000, r1);
  auto b2 = bootstrap_median(xs, 1000, r2);
  EXPECT_DOUBLE_EQ(b1.median_of_medians, b2.median_of_medians);
  EXPECT_NEAR(b1.median_of_medians, 10.0, 0.3);
  EXPECT_LT(b1.ci_low, b1.median_of_medians);
  EXPECT_GT(b1.ci_high, b1.median_of_medians);
  EXPECT_EQ(b1.samples.size(), 1000u);
}

TEST(Bootstrap, MeanOfBinaryAccuracy) {
  // 70 of 100 exact matches: bootstrap mean should center near 0.70.
  std::vector<double> xs(100, 0.0);
  for (int i = 0; i < 70; ++i) xs[i] = 1.0;
  Rng rng(11);
  auto b = bootstrap_mean(xs, 2000, rng);
  EXPECT_NEAR(b.median_of_medians, 0.70, 0.03);
  EXPECT_GT(b.ci_high - b.ci_low, 0.05);  // sampling noise visible
}

TEST(Bootstrap, ThrowsOnEmpty) {
  Rng rng(1);
  EXPECT_THROW(bootstrap_median({}, 10, rng), std::invalid_argument);
}

TEST(RunningStat, MatchesBatch) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6};
  RunningStat rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 6.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace llmq::util
