#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace llmq::util {
namespace {

TEST(Zipf, ThrowsOnZeroSize) { EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument); }

TEST(Zipf, SamplesInRange) {
  Zipf z(50, 1.1);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.sample(rng), 50u);
}

TEST(Zipf, SkewFavorsLowRanks) {
  Zipf z(100, 1.2);
  Rng rng(2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, UniformWhenSkewZero) {
  Zipf z(10, 0.0);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
}

TEST(Zipf, PmfSumsToOne) {
  Zipf z(20, 1.5);
  double sum = 0.0;
  for (std::size_t k = 0; k < 20; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(z.pmf(20), 0.0);
}

TEST(Zipf, PmfMatchesEmpiricalFrequency) {
  Zipf z(5, 1.0);
  Rng rng(4);
  std::vector<int> counts(5, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01);
}

}  // namespace
}  // namespace llmq::util
