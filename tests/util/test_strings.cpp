#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace llmq::util {
namespace {

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmptySegments) {
  auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Strings, SplitNoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> v{"x", "y", "z"};
  EXPECT_EQ(join(v, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123"); }

TEST(Strings, StartsWithAndContains) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(contains("haystack", "sta"));
  EXPECT_FALSE(contains("haystack", "xyz"));
}

TEST(Strings, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(12345678), "12,345,678");
}

}  // namespace
}  // namespace llmq::util
