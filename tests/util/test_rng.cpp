#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace llmq::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 * 0.9);
    EXPECT_LT(c, n / 10 * 1.1);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(19);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(31);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
  // Forking is deterministic.
  Rng parent2(31);
  Rng c1_again = parent2.fork(1);
  Rng c1_ref = Rng(31).fork(1);
  EXPECT_EQ(c1_again.next_u64(), c1_ref.next_u64());
}

TEST(Hash64, StableAndSensitive) {
  const std::string a = "hello", b = "hellp";
  EXPECT_EQ(hash64(a.data(), a.size()), hash64(a.data(), a.size()));
  EXPECT_NE(hash64(a.data(), a.size()), hash64(b.data(), b.size()));
}

TEST(Hash64, EmptyInputOk) {
  EXPECT_EQ(hash64(nullptr, 0), hash64(nullptr, 0));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace llmq::util
