// Bounded MPSC queue: FIFO order, blocking push/pop, close semantics,
// and a cross-thread soak. FIFO is load-bearing for the threaded fleet
// (Submit messages must precede the RunUntil that opens an epoch).

#include "util/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace llmq::util {
namespace {

TEST(MpscQueue, FifoOrderSingleThread) {
  MpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) q.push(i);
  EXPECT_EQ(q.size(), 8u);
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpscQueue, CapacityFloorsAtOne) {
  MpscQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  q.push(42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(MpscQueue, TryPopOnEmptyReturnsFalse) {
  MpscQueue<int> q(4);
  int v = 0;
  EXPECT_FALSE(q.try_pop(v));
  q.push(7);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpscQueue, CloseDrainsThenReportsClosed) {
  MpscQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  q.close();  // idempotent
  EXPECT_TRUE(q.closed());
  int v = 0;
  EXPECT_TRUE(q.pop(v));  // buffered items still drain
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // drained + closed -> no more items, no block
  EXPECT_THROW(q.push(3), std::runtime_error);
}

TEST(MpscQueue, PopBlocksUntilPush) {
  MpscQueue<int> q(2);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    int v = 0;
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 99);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());  // consumer parked on the empty queue
  q.push(99);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(MpscQueue, PushBlocksWhenFullUntilPop) {
  MpscQueue<int> q(1);
  q.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // queue is full: blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
}

TEST(MpscQueue, CloseWakesBlockedConsumer) {
  MpscQueue<int> q(2);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(q.pop(v));  // woken by close on an empty queue
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(MpscQueue, MultiProducerSoakPreservesPerProducerOrder) {
  // 4 producers x 500 items through a tiny buffer: the consumer must see
  // every item exactly once, and each producer's items in its push order.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  MpscQueue<std::pair<int, int>> q(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push({p, i});
    });
  std::vector<int> next_expected(kProducers, 0);
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    std::pair<int, int> item;
    ASSERT_TRUE(q.pop(item));
    ASSERT_LT(item.first, kProducers);
    EXPECT_EQ(item.second, next_expected[item.first]);
    ++next_expected[item.first];
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(std::all_of(next_expected.begin(), next_expected.end(),
                          [](int n) { return n == kPerProducer; }));
  std::pair<int, int> unused;
  EXPECT_FALSE(q.try_pop(unused));
}

}  // namespace
}  // namespace llmq::util
