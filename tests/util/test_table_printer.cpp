#include "util/table_printer.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace llmq::util {
namespace {

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter tp({"name", "value"});
  tp.add_row({"alpha", "1.5"});
  tp.add_row({"b", "22"});
  const std::string out = tp.render();
  EXPECT_TRUE(contains(out, "name"));
  EXPECT_TRUE(contains(out, "alpha"));
  EXPECT_TRUE(contains(out, "22"));
  // header + separator + two rows
  EXPECT_EQ(split(out, '\n').size(), 5u);  // includes trailing empty
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter tp({"a", "b", "c"});
  tp.add_row({"only"});
  EXPECT_NO_THROW(tp.render());
}

TEST(TablePrinter, ColumnsAligned) {
  TablePrinter tp({"x", "yy"});
  tp.add_row({"longcell", "1"});
  const auto lines = split(tp.render(), '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].size(), lines[2].size());
}

}  // namespace
}  // namespace llmq::util
