#include "cache/radix_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace llmq::cache {
namespace {

tokenizer::TokenSeq seq(std::initializer_list<TokenId> ids) { return ids; }

tokenizer::TokenSeq iota_seq(std::size_t n, TokenId start = 0) {
  tokenizer::TokenSeq s(n);
  std::iota(s.begin(), s.end(), start);
  return s;
}

TEST(RadixTree, ZeroBlockSizeRejected) {
  EXPECT_THROW(RadixTree(0), std::invalid_argument);
}

TEST(RadixTree, EmptyTreeMatchesNothing) {
  RadixTree t(4);
  EXPECT_EQ(t.match(iota_seq(16)).matched_tokens, 0u);
  EXPECT_EQ(t.num_blocks(), 0u);
}

TEST(RadixTree, InsertThenFullMatch) {
  RadixTree t(4);
  const auto s = iota_seq(12);
  const auto ins = t.insert(s, 1);
  EXPECT_EQ(ins.new_blocks, 3u);
  EXPECT_EQ(t.num_blocks(), 3u);
  const auto m = t.match(s);
  EXPECT_EQ(m.matched_tokens, 12u);
  EXPECT_EQ(m.path.size(), 3u);
}

TEST(RadixTree, PartialBlockNotCached) {
  RadixTree t(4);
  t.insert(iota_seq(10), 1);  // 2 full blocks; trailing 2 tokens dropped
  EXPECT_EQ(t.num_blocks(), 2u);
  EXPECT_EQ(t.match(iota_seq(10)).matched_tokens, 8u);
}

TEST(RadixTree, SharedPrefixSharesNodes) {
  RadixTree t(4);
  auto a = iota_seq(8);                 // blocks [0..3][4..7]
  auto b = iota_seq(8);
  b[6] = 99;                            // second block differs
  t.insert(a, 1);
  const auto ins_b = t.insert(b, 2);
  EXPECT_EQ(ins_b.new_blocks, 1u);      // first block reused
  EXPECT_EQ(t.num_blocks(), 3u);
  EXPECT_EQ(t.match(a).matched_tokens, 8u);
  EXPECT_EQ(t.match(b).matched_tokens, 8u);
}

TEST(RadixTree, MatchStopsAtDivergence) {
  RadixTree t(4);
  t.insert(iota_seq(8), 1);
  auto probe = iota_seq(8);
  probe[5] = 42;
  EXPECT_EQ(t.match(probe).matched_tokens, 4u);
}

TEST(RadixTree, InsertRespectsMaxNewBlocks) {
  RadixTree t(4);
  const auto ins = t.insert(iota_seq(16), 1, 2);
  EXPECT_EQ(ins.new_blocks, 2u);
  EXPECT_EQ(t.num_blocks(), 2u);
  EXPECT_EQ(ins.path.size(), 2u);
}

TEST(RadixTree, EvictLruRemovesOldestLeaf) {
  RadixTree t(4);
  t.insert(seq({1, 2, 3, 4}), 1);
  t.insert(seq({5, 6, 7, 8}), 2);
  EXPECT_EQ(t.evict_lru(1), 1u);
  // The older (time 1) chain must be gone; the newer remains.
  EXPECT_EQ(t.match(seq({1, 2, 3, 4})).matched_tokens, 0u);
  EXPECT_EQ(t.match(seq({5, 6, 7, 8})).matched_tokens, 4u);
}

TEST(RadixTree, EvictionIsLeafFirst) {
  RadixTree t(4);
  t.insert(iota_seq(12), 1);  // chain of 3
  EXPECT_EQ(t.evict_lru(1), 1u);
  // Prefix-closed: the first two blocks still match.
  EXPECT_EQ(t.match(iota_seq(12)).matched_tokens, 8u);
}

TEST(RadixTree, PinnedNodesNotEvicted) {
  RadixTree t(4);
  const auto ins = t.insert(seq({1, 2, 3, 4}), 1);
  t.pin(ins.path);
  EXPECT_EQ(t.evict_lru(5), 0u);
  EXPECT_EQ(t.pinned_blocks(), 1u);
  t.unpin(ins.path);
  EXPECT_EQ(t.evict_lru(5), 1u);
}

TEST(RadixTree, UnpinWithoutPinThrows) {
  RadixTree t(4);
  const auto ins = t.insert(seq({1, 2, 3, 4}), 1);
  EXPECT_THROW(t.unpin(ins.path), std::logic_error);
}

TEST(RadixTree, TouchProtectsFromLru) {
  RadixTree t(4);
  const auto a = t.insert(seq({1, 2, 3, 4}), 1);
  t.insert(seq({5, 6, 7, 8}), 2);
  t.touch(a.path, 3);  // refresh the older entry
  EXPECT_EQ(t.evict_lru(1), 1u);
  EXPECT_EQ(t.match(seq({1, 2, 3, 4})).matched_tokens, 4u);
  EXPECT_EQ(t.match(seq({5, 6, 7, 8})).matched_tokens, 0u);
}

TEST(RadixTree, NodeReuseAfterEviction) {
  RadixTree t(2);
  for (int round = 0; round < 50; ++round) {
    t.insert(seq({static_cast<TokenId>(round), 1}), round);
    t.evict_lru(1);
  }
  EXPECT_EQ(t.num_blocks(), 0u);
}

TEST(RadixTree, HighFanoutChildIndexFindsEveryChild) {
  // Push root fan-out far past kIndexMinFanout so child lookup goes
  // through the open-addressed index; every child must still be found
  // exactly, misses must still miss, and the structural invariants
  // (index coherence included) must hold throughout.
  RadixTree t(4);
  constexpr int kChildren = 400;
  for (int i = 0; i < kChildren; ++i)
    t.insert(iota_seq(4, static_cast<TokenId>(10 * i)), i + 1);
  EXPECT_EQ(t.num_blocks(), static_cast<std::size_t>(kChildren));
  EXPECT_EQ(t.check_invariants(), "");
  for (int i = 0; i < kChildren; ++i) {
    const auto probe = iota_seq(4, static_cast<TokenId>(10 * i));
    EXPECT_EQ(t.match(probe).matched_tokens, 4u) << "child " << i;
    EXPECT_EQ(t.match_tokens(probe), 4u);
  }
  // A block that collides with no child (distinct first token space).
  EXPECT_EQ(t.match_tokens(iota_seq(4, 999'999)), 0u);
}

TEST(RadixTree, HighFanoutEvictionKeepsIndexCoherent) {
  // Interleave eviction waves with re-inserts at high fan-out: the index
  // erase path (backward-shift deletion) and slot recycling must keep
  // lookups exact. Eviction takes the oldest children first.
  RadixTree t(4);
  constexpr int kChildren = 100;
  for (int i = 0; i < kChildren; ++i)
    t.insert(iota_seq(4, static_cast<TokenId>(10 * i)), i + 1);
  const std::size_t slots_high_water = t.node_slots();

  EXPECT_EQ(t.evict_lru(30), 30u);  // oldest 30 = children 0..29
  EXPECT_EQ(t.check_invariants(), "");
  for (int i = 0; i < kChildren; ++i) {
    const auto probe = iota_seq(4, static_cast<TokenId>(10 * i));
    EXPECT_EQ(t.match_tokens(probe), i < 30 ? 0u : 4u) << "child " << i;
  }

  // Re-insert the evicted 30: recycled slots, no new slab growth.
  for (int i = 0; i < 30; ++i)
    t.insert(iota_seq(4, static_cast<TokenId>(10 * i)), 1000 + i);
  EXPECT_EQ(t.num_blocks(), static_cast<std::size_t>(kChildren));
  EXPECT_EQ(t.node_slots(), slots_high_water);
  EXPECT_EQ(t.check_invariants(), "");
  for (int i = 0; i < kChildren; ++i)
    EXPECT_EQ(t.match_tokens(iota_seq(4, static_cast<TokenId>(10 * i))), 4u);

  // Drain completely through the heap-based batch path.
  EXPECT_EQ(t.evict_lru(kChildren), static_cast<std::size_t>(kChildren));
  EXPECT_EQ(t.num_blocks(), 0u);
  EXPECT_EQ(t.check_invariants(), "");
}

TEST(RadixTree, BatchEvictMatchesOneByOneEviction) {
  // The single-scan min-heap batch eviction must take exactly the victims
  // the classic rescan-per-victim loop would: build two identical trees,
  // evict k in one batch from one and k times singly from the other, and
  // compare the surviving match sets.
  auto build = [] {
    RadixTree t(2);
    // Mixed topology: shared chains + wide fan-out. Timestamps must be
    // monotone (the tree's clock contract), so LRU diversity comes from
    // a scrambled insertion order instead.
    std::uint64_t now = 1;
    for (int step = 0; step < 24; ++step) {
      const int i = (step * 11) % 24;  // gcd(11,24)=1: a permutation
      const auto a = static_cast<TokenId>(i % 6);
      const auto b = static_cast<TokenId>(i);
      t.insert(seq({a, a, b, b, static_cast<TokenId>(i * 7 % 5), 1}), now++);
    }
    return t;
  };
  auto survivors = [](RadixTree& t) {
    std::vector<std::size_t> out;
    for (int i = 0; i < 24; ++i) {
      const auto a = static_cast<TokenId>(i % 6);
      const auto b = static_cast<TokenId>(i);
      out.push_back(t.match_tokens(
          seq({a, a, b, b, static_cast<TokenId>(i * 7 % 5), 1})));
    }
    return out;
  };
  for (std::size_t k : {1u, 3u, 7u, 20u, 100u}) {
    RadixTree batch = build();
    RadixTree single = build();
    const std::size_t got = batch.evict_lru(k);
    std::size_t got_single = 0;
    for (std::size_t i = 0; i < k; ++i) got_single += single.evict_lru(1);
    EXPECT_EQ(got, got_single) << "k=" << k;
    EXPECT_EQ(survivors(batch), survivors(single)) << "k=" << k;
    EXPECT_EQ(batch.check_invariants(), "");
    EXPECT_EQ(single.check_invariants(), "");
  }
}

TEST(RadixTree, MatchVariantsAgree) {
  RadixTree t(4);
  t.insert(iota_seq(16), 1);
  t.insert(iota_seq(8, 100), 2);
  for (const auto& probe :
       {iota_seq(16), iota_seq(12), iota_seq(8, 100), iota_seq(16, 100),
        iota_seq(3), tokenizer::TokenSeq{}}) {
    const auto m = t.match(probe);
    EXPECT_EQ(t.match_tokens(probe), m.matched_tokens);
    std::vector<NodeId> path{kNoNode};  // stale content must be cleared
    EXPECT_EQ(t.match_into(probe, path), m.matched_tokens);
    EXPECT_EQ(path, m.path);
  }
}

TEST(RadixTree, DeepSharedHierarchy) {
  RadixTree t(2);
  // 4 sequences sharing progressively longer prefixes.
  t.insert(seq({1, 2, 3, 4, 5, 6}), 1);
  t.insert(seq({1, 2, 3, 4, 9, 9}), 2);
  t.insert(seq({1, 2, 8, 8, 8, 8}), 3);
  // seq1 adds 3 blocks; seq2 reuses 2 and adds 1; seq3 reuses 1, adds 2.
  EXPECT_EQ(t.num_blocks(), 6u);
  EXPECT_EQ(t.match(seq({1, 2, 3, 4, 5, 6})).matched_tokens, 6u);
  EXPECT_EQ(t.match(seq({1, 2, 8, 8})).matched_tokens, 4u);
}

}  // namespace
}  // namespace llmq::cache
