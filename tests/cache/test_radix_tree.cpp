#include "cache/radix_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace llmq::cache {
namespace {

tokenizer::TokenSeq seq(std::initializer_list<TokenId> ids) { return ids; }

tokenizer::TokenSeq iota_seq(std::size_t n, TokenId start = 0) {
  tokenizer::TokenSeq s(n);
  std::iota(s.begin(), s.end(), start);
  return s;
}

TEST(RadixTree, ZeroBlockSizeRejected) {
  EXPECT_THROW(RadixTree(0), std::invalid_argument);
}

TEST(RadixTree, EmptyTreeMatchesNothing) {
  RadixTree t(4);
  EXPECT_EQ(t.match(iota_seq(16)).matched_tokens, 0u);
  EXPECT_EQ(t.num_blocks(), 0u);
}

TEST(RadixTree, InsertThenFullMatch) {
  RadixTree t(4);
  const auto s = iota_seq(12);
  const auto ins = t.insert(s, 1);
  EXPECT_EQ(ins.new_blocks, 3u);
  EXPECT_EQ(t.num_blocks(), 3u);
  const auto m = t.match(s);
  EXPECT_EQ(m.matched_tokens, 12u);
  EXPECT_EQ(m.path.size(), 3u);
}

TEST(RadixTree, PartialBlockNotCached) {
  RadixTree t(4);
  t.insert(iota_seq(10), 1);  // 2 full blocks; trailing 2 tokens dropped
  EXPECT_EQ(t.num_blocks(), 2u);
  EXPECT_EQ(t.match(iota_seq(10)).matched_tokens, 8u);
}

TEST(RadixTree, SharedPrefixSharesNodes) {
  RadixTree t(4);
  auto a = iota_seq(8);                 // blocks [0..3][4..7]
  auto b = iota_seq(8);
  b[6] = 99;                            // second block differs
  t.insert(a, 1);
  const auto ins_b = t.insert(b, 2);
  EXPECT_EQ(ins_b.new_blocks, 1u);      // first block reused
  EXPECT_EQ(t.num_blocks(), 3u);
  EXPECT_EQ(t.match(a).matched_tokens, 8u);
  EXPECT_EQ(t.match(b).matched_tokens, 8u);
}

TEST(RadixTree, MatchStopsAtDivergence) {
  RadixTree t(4);
  t.insert(iota_seq(8), 1);
  auto probe = iota_seq(8);
  probe[5] = 42;
  EXPECT_EQ(t.match(probe).matched_tokens, 4u);
}

TEST(RadixTree, InsertRespectsMaxNewBlocks) {
  RadixTree t(4);
  const auto ins = t.insert(iota_seq(16), 1, 2);
  EXPECT_EQ(ins.new_blocks, 2u);
  EXPECT_EQ(t.num_blocks(), 2u);
  EXPECT_EQ(ins.path.size(), 2u);
}

TEST(RadixTree, EvictLruRemovesOldestLeaf) {
  RadixTree t(4);
  t.insert(seq({1, 2, 3, 4}), 1);
  t.insert(seq({5, 6, 7, 8}), 2);
  EXPECT_EQ(t.evict_lru(1), 1u);
  // The older (time 1) chain must be gone; the newer remains.
  EXPECT_EQ(t.match(seq({1, 2, 3, 4})).matched_tokens, 0u);
  EXPECT_EQ(t.match(seq({5, 6, 7, 8})).matched_tokens, 4u);
}

TEST(RadixTree, EvictionIsLeafFirst) {
  RadixTree t(4);
  t.insert(iota_seq(12), 1);  // chain of 3
  EXPECT_EQ(t.evict_lru(1), 1u);
  // Prefix-closed: the first two blocks still match.
  EXPECT_EQ(t.match(iota_seq(12)).matched_tokens, 8u);
}

TEST(RadixTree, PinnedNodesNotEvicted) {
  RadixTree t(4);
  const auto ins = t.insert(seq({1, 2, 3, 4}), 1);
  t.pin(ins.path);
  EXPECT_EQ(t.evict_lru(5), 0u);
  EXPECT_EQ(t.pinned_blocks(), 1u);
  t.unpin(ins.path);
  EXPECT_EQ(t.evict_lru(5), 1u);
}

TEST(RadixTree, UnpinWithoutPinThrows) {
  RadixTree t(4);
  const auto ins = t.insert(seq({1, 2, 3, 4}), 1);
  EXPECT_THROW(t.unpin(ins.path), std::logic_error);
}

TEST(RadixTree, TouchProtectsFromLru) {
  RadixTree t(4);
  const auto a = t.insert(seq({1, 2, 3, 4}), 1);
  t.insert(seq({5, 6, 7, 8}), 2);
  t.touch(a.path, 3);  // refresh the older entry
  EXPECT_EQ(t.evict_lru(1), 1u);
  EXPECT_EQ(t.match(seq({1, 2, 3, 4})).matched_tokens, 4u);
  EXPECT_EQ(t.match(seq({5, 6, 7, 8})).matched_tokens, 0u);
}

TEST(RadixTree, NodeReuseAfterEviction) {
  RadixTree t(2);
  for (int round = 0; round < 50; ++round) {
    t.insert(seq({static_cast<TokenId>(round), 1}), round);
    t.evict_lru(1);
  }
  EXPECT_EQ(t.num_blocks(), 0u);
}

TEST(RadixTree, DeepSharedHierarchy) {
  RadixTree t(2);
  // 4 sequences sharing progressively longer prefixes.
  t.insert(seq({1, 2, 3, 4, 5, 6}), 1);
  t.insert(seq({1, 2, 3, 4, 9, 9}), 2);
  t.insert(seq({1, 2, 8, 8, 8, 8}), 3);
  // seq1 adds 3 blocks; seq2 reuses 2 and adds 1; seq3 reuses 1, adds 2.
  EXPECT_EQ(t.num_blocks(), 6u);
  EXPECT_EQ(t.match(seq({1, 2, 3, 4, 5, 6})).matched_tokens, 6u);
  EXPECT_EQ(t.match(seq({1, 2, 8, 8})).matched_tokens, 4u);
}

}  // namespace
}  // namespace llmq::cache
