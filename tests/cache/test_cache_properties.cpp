// Property tests: the radix-tree PrefixCache against a brute-force
// reference model over randomized request streams.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "util/rng.hpp"

namespace llmq::cache {
namespace {

/// Reference model for an *unbounded* cache: remembers every admitted
/// sequence; a lookup's hit is the longest block-aligned common prefix
/// with any previously admitted sequence.
class ReferenceCache {
 public:
  explicit ReferenceCache(std::size_t block) : block_(block) {}

  std::size_t lookup(const tokenizer::TokenSeq& p) const {
    std::size_t best = 0;
    for (const auto& s : seen_) {
      std::size_t k = 0;
      const std::size_t lim = std::min(s.size(), p.size());
      while (k < lim && s[k] == p[k]) ++k;
      best = std::max(best, k);
    }
    return (best / block_) * block_;
  }

  void admit(const tokenizer::TokenSeq& p) {
    // Only full blocks are retained.
    tokenizer::TokenSeq full(p.begin(),
                             p.begin() + static_cast<std::ptrdiff_t>(
                                             (p.size() / block_) * block_));
    seen_.push_back(std::move(full));
  }

 private:
  std::size_t block_;
  std::vector<tokenizer::TokenSeq> seen_;
};

struct StreamParams {
  std::size_t block;
  std::size_t n_requests;
  std::size_t vocab;        // small vocab => heavy prefix collisions
  std::size_t max_len;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const StreamParams& p) {
  return os << "b" << p.block << "n" << p.n_requests << "v" << p.vocab << "l"
            << p.max_len << "s" << p.seed;
}

std::vector<tokenizer::TokenSeq> make_stream(const StreamParams& p) {
  util::Rng rng(p.seed);
  std::vector<tokenizer::TokenSeq> out;
  for (std::size_t i = 0; i < p.n_requests; ++i) {
    const std::size_t len = 1 + rng.next_below(p.max_len);
    tokenizer::TokenSeq s(len);
    for (auto& t : s)
      t = static_cast<tokenizer::TokenId>(rng.next_below(p.vocab));
    // Half the time, extend a previous request instead (realistic reuse).
    if (!out.empty() && rng.next_bool(0.5)) {
      const auto& base = out[rng.next_below(out.size())];
      const std::size_t keep = rng.next_below(base.size() + 1);
      s.insert(s.begin(), base.begin(),
               base.begin() + static_cast<std::ptrdiff_t>(keep));
      if (s.size() > 4 * p.max_len) s.resize(4 * p.max_len);
    }
    out.push_back(std::move(s));
  }
  return out;
}

class CacheVsReference : public ::testing::TestWithParam<StreamParams> {};

TEST_P(CacheVsReference, UnboundedCacheMatchesReferenceExactly) {
  const auto params = GetParam();
  const auto stream = make_stream(params);
  PrefixCache cache(CacheConfig{params.block, 0, true});
  ReferenceCache ref(params.block);
  for (const auto& p : stream) {
    auto lease = cache.lookup(p);
    EXPECT_EQ(lease.cached_tokens, ref.lookup(p));
    cache.admit(p, lease);
    ref.admit(p);
    cache.release(lease);
  }
}

TEST_P(CacheVsReference, BoundedCacheNeverBeatsReference) {
  const auto params = GetParam();
  const auto stream = make_stream(params);
  PrefixCache cache(CacheConfig{params.block, 24, true});
  ReferenceCache ref(params.block);
  for (const auto& p : stream) {
    auto lease = cache.lookup(p);
    EXPECT_LE(lease.cached_tokens, ref.lookup(p));
    cache.admit(p, lease);
    ref.admit(p);
    cache.release(lease);
  }
  EXPECT_LE(cache.resident_blocks(), 24u);
}

TEST_P(CacheVsReference, ResidencyNeverExceedsInsertedMinusEvicted) {
  const auto params = GetParam();
  const auto stream = make_stream(params);
  PrefixCache cache(CacheConfig{params.block, 16, true});
  for (const auto& p : stream) {
    auto lease = cache.lookup(p);
    cache.admit(p, lease);
    cache.release(lease);
    EXPECT_EQ(cache.resident_blocks(),
              cache.stats().inserted_blocks - cache.stats().evicted_blocks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheVsReference,
    ::testing::Values(StreamParams{1, 60, 2, 6, 1},
                      StreamParams{2, 80, 3, 10, 2},
                      StreamParams{4, 100, 2, 16, 3},
                      StreamParams{4, 100, 8, 24, 4},
                      StreamParams{8, 60, 4, 40, 5},
                      StreamParams{16, 50, 2, 64, 6},
                      StreamParams{3, 120, 2, 9, 7}));

TEST(CachePinning, ConcurrentLeasesAccountCorrectly) {
  // Many in-flight leases over a shared prefix: pin counts must allow all
  // to release exactly once, and eviction must respect every pin.
  PrefixCache cache(CacheConfig{4, 0, true});
  tokenizer::TokenSeq shared(16);
  std::iota(shared.begin(), shared.end(), 0u);

  std::vector<CacheLease> leases;
  for (int i = 0; i < 8; ++i) {
    auto lease = cache.lookup(shared);
    cache.admit(shared, lease);
    leases.push_back(std::move(lease));
  }
  EXPECT_EQ(cache.resident_blocks(), 4u);
  EXPECT_EQ(cache.evict(100), 0u);  // all pinned
  for (int i = 0; i < 7; ++i) cache.release(leases[i]);
  EXPECT_EQ(cache.evict(100), 0u);  // one lease still pins the path
  cache.release(leases[7]);
  EXPECT_EQ(cache.evict(100), 4u);
  EXPECT_EQ(cache.resident_blocks(), 0u);
}

TEST(CachePinning, DoubleReleaseIsSafeNoOp) {
  PrefixCache cache(CacheConfig{4, 0, true});
  tokenizer::TokenSeq p{1, 2, 3, 4};
  auto lease = cache.lookup(p);
  cache.admit(p, lease);
  cache.release(lease);
  // Lease cleared on release; releasing again must not throw or unpin
  // anything else.
  EXPECT_NO_THROW(cache.release(lease));
}

TEST(CacheStats, CancelLookupUndoesExactlyOneLookup) {
  // The deferred-admission path: the engine looks up, cannot fit the
  // request, cancels, and looks up again later. Stats must read as if
  // only the final lookup happened.
  PrefixCache cache(CacheConfig{4, 0, true});
  tokenizer::TokenSeq p{1, 2, 3, 4, 5, 6, 7, 8};
  auto first = cache.lookup(p);
  cache.admit(p, first);
  cache.release(first);
  const CacheStats before = cache.stats();

  for (int retry = 0; retry < 5; ++retry) {
    auto lease = cache.lookup(p);
    cache.cancel_lookup(lease, p.size());
  }
  EXPECT_EQ(cache.stats().lookups, before.lookups);
  EXPECT_EQ(cache.stats().hit_tokens, before.hit_tokens);
  EXPECT_EQ(cache.stats().lookup_tokens, before.lookup_tokens);
  EXPECT_EQ(cache.check_invariants(), "");
}

// ---- Churn properties: randomized op interleavings. ----
//
// A seed-swept driver interleaves lookup/admit, release, evict, peek, and
// the cancel_lookup path against one PrefixCache, walking the radix tree's
// structural checker after every op: node/token accounting, alive vs
// free-list partitioning, and the LRU/pin path-monotonicity invariants
// (a node is never more recent or more pinned than its parent).

struct ChurnParams {
  std::size_t block;
  std::size_t capacity;  // 0 = unbounded
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const ChurnParams& p) {
  return os << "b" << p.block << "c" << p.capacity << "s" << p.seed;
}

tokenizer::TokenSeq random_prompt(util::Rng& rng, std::size_t max_len,
                                  std::size_t vocab) {
  tokenizer::TokenSeq s(1 + rng.next_below(max_len));
  for (auto& t : s)
    t = static_cast<tokenizer::TokenId>(rng.next_below(vocab));
  return s;
}

class CacheChurn : public ::testing::TestWithParam<ChurnParams> {};

TEST_P(CacheChurn, InvariantsHoldUnderRandomInterleavings) {
  const auto p = GetParam();
  util::Rng rng(p.seed * 6151 + 7);
  PrefixCache cache(CacheConfig{p.block, p.capacity, true});

  std::vector<tokenizer::TokenSeq> prompts;  // shared-prefix-heavy pool
  for (int i = 0; i < 12; ++i)
    prompts.push_back(random_prompt(rng, 6 * p.block, 3));
  std::vector<CacheLease> held;
  std::vector<std::size_t> held_len;  // prompt length per held lease

  for (int step = 0; step < 150; ++step) {
    const auto& prompt = prompts[rng.next_below(prompts.size())];
    switch (rng.next_below(6)) {
      case 0:
      case 1: {  // lookup + admit, keep the lease in flight
        auto lease = cache.lookup(prompt);
        EXPECT_LE(lease.cached_tokens, prompt.size());
        cache.admit(prompt, lease);
        held_len.push_back(prompt.size());
        held.push_back(std::move(lease));
        break;
      }
      case 2: {  // release a random in-flight lease
        if (held.empty()) break;
        const std::size_t i = rng.next_below(held.size());
        cache.release(held[i]);
        held[i] = std::move(held.back());
        held_len[i] = held_len.back();
        held.pop_back();
        held_len.pop_back();
        break;
      }
      case 3:  // background eviction pressure
        cache.evict(1 + rng.next_below(4));
        break;
      case 4:  // read-only probe
        EXPECT_LE(cache.peek(prompt), prompt.size());
        break;
      case 5: {  // the deferred-admission path
        auto lease = cache.lookup(prompt);
        cache.cancel_lookup(lease, prompt.size());
        break;
      }
    }
    ASSERT_EQ(cache.check_invariants(), "") << "step " << step;
    EXPECT_LE(cache.stats().hit_tokens, cache.stats().lookup_tokens);
    if (p.capacity) {
      EXPECT_LE(cache.resident_blocks(), p.capacity);
    }
  }

  // Drain: release everything, then the whole tree must be evictable.
  for (auto& lease : held) cache.release(lease);
  cache.evict(cache.resident_blocks());
  EXPECT_EQ(cache.resident_blocks(), 0u);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST_P(CacheChurn, PeekNeverChangesSubsequentLookupResults) {
  // Two caches run the identical lookup/admit/release/evict script; one
  // additionally absorbs a barrage of peeks. Every lookup must return the
  // same hit length on both, and the final stats and residency must be
  // identical — peek() has no observable side effect, ever.
  const auto p = GetParam();
  util::Rng ops(p.seed * 2693 + 29);
  util::Rng peeks(p.seed * 353 + 101);
  PrefixCache quiet(CacheConfig{p.block, p.capacity, true});
  PrefixCache peeked(CacheConfig{p.block, p.capacity, true});

  std::vector<tokenizer::TokenSeq> prompts;
  for (int i = 0; i < 10; ++i)
    prompts.push_back(random_prompt(ops, 5 * p.block, 3));
  std::vector<CacheLease> quiet_held, peeked_held;

  for (int step = 0; step < 120; ++step) {
    // Peek barrage against one cache only.
    const std::size_t n_peeks = 1 + peeks.next_below(3);
    for (std::size_t k = 0; k < n_peeks; ++k)
      peeked.peek(prompts[peeks.next_below(prompts.size())]);

    const auto& prompt = prompts[ops.next_below(prompts.size())];
    switch (ops.next_below(4)) {
      case 0:
      case 1: {
        auto a = quiet.lookup(prompt);
        auto b = peeked.lookup(prompt);
        ASSERT_EQ(a.cached_tokens, b.cached_tokens) << "step " << step;
        quiet.admit(prompt, a);
        peeked.admit(prompt, b);
        quiet_held.push_back(std::move(a));
        peeked_held.push_back(std::move(b));
        break;
      }
      case 2: {
        if (quiet_held.empty()) break;
        const std::size_t i = ops.next_below(quiet_held.size());
        quiet.release(quiet_held[i]);
        peeked.release(peeked_held[i]);
        quiet_held[i] = std::move(quiet_held.back());
        quiet_held.pop_back();
        peeked_held[i] = std::move(peeked_held.back());
        peeked_held.pop_back();
        break;
      }
      case 3: {
        const std::size_t n = 1 + ops.next_below(3);
        ASSERT_EQ(quiet.evict(n), peeked.evict(n)) << "step " << step;
        break;
      }
    }
  }
  EXPECT_EQ(quiet.resident_blocks(), peeked.resident_blocks());
  EXPECT_EQ(quiet.stats().lookups, peeked.stats().lookups);
  EXPECT_EQ(quiet.stats().hit_tokens, peeked.stats().hit_tokens);
  EXPECT_EQ(quiet.stats().lookup_tokens, peeked.stats().lookup_tokens);
  EXPECT_EQ(quiet.stats().inserted_blocks, peeked.stats().inserted_blocks);
  EXPECT_EQ(quiet.stats().evicted_blocks, peeked.stats().evicted_blocks);
  EXPECT_EQ(quiet.check_invariants(), "");
  EXPECT_EQ(peeked.check_invariants(), "");
}

std::vector<ChurnParams> churn_sweep() {
  std::vector<ChurnParams> out;
  for (std::uint64_t seed = 1; seed <= 22; ++seed) {
    const std::size_t blocks[] = {2, 4, 8};
    const std::size_t caps[] = {0, 12, 24};  // unbounded / tight / roomy
    out.push_back(
        ChurnParams{blocks[(seed / 3) % 3], caps[seed % 3], seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheChurn,
                         ::testing::ValuesIn(churn_sweep()));

}  // namespace
}  // namespace llmq::cache
