// Property tests: the radix-tree PrefixCache against a brute-force
// reference model over randomized request streams.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "util/rng.hpp"

namespace llmq::cache {
namespace {

/// Reference model for an *unbounded* cache: remembers every admitted
/// sequence; a lookup's hit is the longest block-aligned common prefix
/// with any previously admitted sequence.
class ReferenceCache {
 public:
  explicit ReferenceCache(std::size_t block) : block_(block) {}

  std::size_t lookup(const tokenizer::TokenSeq& p) const {
    std::size_t best = 0;
    for (const auto& s : seen_) {
      std::size_t k = 0;
      const std::size_t lim = std::min(s.size(), p.size());
      while (k < lim && s[k] == p[k]) ++k;
      best = std::max(best, k);
    }
    return (best / block_) * block_;
  }

  void admit(const tokenizer::TokenSeq& p) {
    // Only full blocks are retained.
    tokenizer::TokenSeq full(p.begin(),
                             p.begin() + static_cast<std::ptrdiff_t>(
                                             (p.size() / block_) * block_));
    seen_.push_back(std::move(full));
  }

 private:
  std::size_t block_;
  std::vector<tokenizer::TokenSeq> seen_;
};

struct StreamParams {
  std::size_t block;
  std::size_t n_requests;
  std::size_t vocab;        // small vocab => heavy prefix collisions
  std::size_t max_len;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const StreamParams& p) {
  return os << "b" << p.block << "n" << p.n_requests << "v" << p.vocab << "l"
            << p.max_len << "s" << p.seed;
}

std::vector<tokenizer::TokenSeq> make_stream(const StreamParams& p) {
  util::Rng rng(p.seed);
  std::vector<tokenizer::TokenSeq> out;
  for (std::size_t i = 0; i < p.n_requests; ++i) {
    const std::size_t len = 1 + rng.next_below(p.max_len);
    tokenizer::TokenSeq s(len);
    for (auto& t : s)
      t = static_cast<tokenizer::TokenId>(rng.next_below(p.vocab));
    // Half the time, extend a previous request instead (realistic reuse).
    if (!out.empty() && rng.next_bool(0.5)) {
      const auto& base = out[rng.next_below(out.size())];
      const std::size_t keep = rng.next_below(base.size() + 1);
      s.insert(s.begin(), base.begin(),
               base.begin() + static_cast<std::ptrdiff_t>(keep));
      if (s.size() > 4 * p.max_len) s.resize(4 * p.max_len);
    }
    out.push_back(std::move(s));
  }
  return out;
}

class CacheVsReference : public ::testing::TestWithParam<StreamParams> {};

TEST_P(CacheVsReference, UnboundedCacheMatchesReferenceExactly) {
  const auto params = GetParam();
  const auto stream = make_stream(params);
  PrefixCache cache(CacheConfig{params.block, 0, true});
  ReferenceCache ref(params.block);
  for (const auto& p : stream) {
    auto lease = cache.lookup(p);
    EXPECT_EQ(lease.cached_tokens, ref.lookup(p));
    cache.admit(p, lease);
    ref.admit(p);
    cache.release(lease);
  }
}

TEST_P(CacheVsReference, BoundedCacheNeverBeatsReference) {
  const auto params = GetParam();
  const auto stream = make_stream(params);
  PrefixCache cache(CacheConfig{params.block, 24, true});
  ReferenceCache ref(params.block);
  for (const auto& p : stream) {
    auto lease = cache.lookup(p);
    EXPECT_LE(lease.cached_tokens, ref.lookup(p));
    cache.admit(p, lease);
    ref.admit(p);
    cache.release(lease);
  }
  EXPECT_LE(cache.resident_blocks(), 24u);
}

TEST_P(CacheVsReference, ResidencyNeverExceedsInsertedMinusEvicted) {
  const auto params = GetParam();
  const auto stream = make_stream(params);
  PrefixCache cache(CacheConfig{params.block, 16, true});
  for (const auto& p : stream) {
    auto lease = cache.lookup(p);
    cache.admit(p, lease);
    cache.release(lease);
    EXPECT_EQ(cache.resident_blocks(),
              cache.stats().inserted_blocks - cache.stats().evicted_blocks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheVsReference,
    ::testing::Values(StreamParams{1, 60, 2, 6, 1},
                      StreamParams{2, 80, 3, 10, 2},
                      StreamParams{4, 100, 2, 16, 3},
                      StreamParams{4, 100, 8, 24, 4},
                      StreamParams{8, 60, 4, 40, 5},
                      StreamParams{16, 50, 2, 64, 6},
                      StreamParams{3, 120, 2, 9, 7}));

TEST(CachePinning, ConcurrentLeasesAccountCorrectly) {
  // Many in-flight leases over a shared prefix: pin counts must allow all
  // to release exactly once, and eviction must respect every pin.
  PrefixCache cache(CacheConfig{4, 0, true});
  tokenizer::TokenSeq shared(16);
  std::iota(shared.begin(), shared.end(), 0u);

  std::vector<CacheLease> leases;
  for (int i = 0; i < 8; ++i) {
    auto lease = cache.lookup(shared);
    cache.admit(shared, lease);
    leases.push_back(std::move(lease));
  }
  EXPECT_EQ(cache.resident_blocks(), 4u);
  EXPECT_EQ(cache.evict(100), 0u);  // all pinned
  for (int i = 0; i < 7; ++i) cache.release(leases[i]);
  EXPECT_EQ(cache.evict(100), 0u);  // one lease still pins the path
  cache.release(leases[7]);
  EXPECT_EQ(cache.evict(100), 4u);
  EXPECT_EQ(cache.resident_blocks(), 0u);
}

TEST(CachePinning, DoubleReleaseIsSafeNoOp) {
  PrefixCache cache(CacheConfig{4, 0, true});
  tokenizer::TokenSeq p{1, 2, 3, 4};
  auto lease = cache.lookup(p);
  cache.admit(p, lease);
  cache.release(lease);
  // Lease cleared on release; releasing again must not throw or unpin
  // anything else.
  EXPECT_NO_THROW(cache.release(lease));
}

}  // namespace
}  // namespace llmq::cache
