// Striped PrefixCache contracts:
//   * striped == unstriped on any serialized operation sequence (the
//     striping is an implementation detail of thread safety, not a
//     behavior change);
//   * peek() stays side-effect-free through the stripe-locked read path —
//     the regression pinned here is peek racing concurrent lookup()s once
//     the cache went sharded;
//   * a multi-threaded churn soak (lookup/admit/release/cancel/evict
//     across N threads) ends with a consistent pin ledger and clean
//     invariants. Run under ASan in the default CI job and under TSan in
//     the LLMQ_SANITIZE=TSAN job.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "util/rng.hpp"

namespace llmq::cache {
namespace {

tokenizer::TokenSeq iota_seq(std::size_t n, TokenId start = 0) {
  tokenizer::TokenSeq s(n);
  std::iota(s.begin(), s.end(), start);
  return s;
}

CacheConfig cfg(std::size_t stripes, std::size_t block = 4,
                std::size_t cap = 0) {
  CacheConfig c;
  c.block_size = block;
  c.capacity_blocks = cap;
  c.lock_stripes = stripes;
  return c;
}

/// A deterministic prompt pool with shared prefixes across several
/// "families" (distinct first blocks -> distinct stripes).
std::vector<tokenizer::TokenSeq> prompt_pool(std::size_t families,
                                             std::size_t per_family,
                                             std::size_t block) {
  std::vector<tokenizer::TokenSeq> prompts;
  for (std::size_t f = 0; f < families; ++f) {
    const tokenizer::TokenSeq base =
        iota_seq(3 * block, static_cast<TokenId>(1000 * f));
    for (std::size_t i = 0; i < per_family; ++i) {
      tokenizer::TokenSeq p = base;
      const auto tail = iota_seq((i % 3 + 1) * block,
                                 static_cast<TokenId>(1000 * f + 500 + 7 * i));
      p.insert(p.end(), tail.begin(), tail.end());
      prompts.push_back(std::move(p));
    }
  }
  return prompts;
}

void expect_stats_eq(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.hit_tokens, b.hit_tokens);
  EXPECT_EQ(a.lookup_tokens, b.lookup_tokens);
  EXPECT_EQ(a.inserted_blocks, b.inserted_blocks);
  EXPECT_EQ(a.evicted_blocks, b.evicted_blocks);
}

// ---- Serialized equivalence: striping is behavior-invisible. ----

TEST(CacheConcurrency, StripedMatchesUnstripedSerialized) {
  // The same scripted sequence of lookup/admit/peek/release/cancel/evict
  // against an unstriped and a striped cache must produce identical
  // stats, residency, pins, and per-prompt peek results at every step.
  const auto prompts = prompt_pool(6, 8, 4);
  for (std::size_t stripes : {1u, 4u, 16u}) {
    SCOPED_TRACE("stripes=" + std::to_string(stripes));
    PrefixCache plain(cfg(0, 4, 64));
    PrefixCache striped(cfg(stripes, 4, 64));
    std::vector<CacheLease> plain_leases, striped_leases;
    util::Rng rng(2024);
    for (std::size_t step = 0; step < 400; ++step) {
      const std::size_t op = rng.next_below(10);
      if (op < 4 || plain_leases.empty()) {  // lookup (+ maybe admit)
        const auto& p = prompts[rng.next_below(prompts.size())];
        CacheLease a = plain.lookup(p);
        CacheLease b = striped.lookup(p);
        EXPECT_EQ(a.cached_tokens, b.cached_tokens);
        if (rng.next_below(4) == 0) {  // deferred: cancel the lookup
          plain.cancel_lookup(a, p.size());
          striped.cancel_lookup(b, p.size());
        } else {
          EXPECT_EQ(plain.admit(p, a), striped.admit(p, b));
          plain_leases.push_back(a);
          striped_leases.push_back(b);
        }
      } else if (op < 7) {  // release a random outstanding lease
        const std::size_t i = rng.next_below(plain_leases.size());
        plain.release(plain_leases[i]);
        striped.release(striped_leases[i]);
        plain_leases.erase(plain_leases.begin() + i);
        striped_leases.erase(striped_leases.begin() + i);
      } else if (op < 9) {  // peek a random prompt
        const auto& p = prompts[rng.next_below(prompts.size())];
        EXPECT_EQ(plain.peek(p), striped.peek(p));
      } else {  // evict a couple of blocks
        EXPECT_EQ(plain.evict(2), striped.evict(2));
      }
      expect_stats_eq(plain.stats(), striped.stats());
      EXPECT_EQ(plain.resident_blocks(), striped.resident_blocks());
      EXPECT_EQ(plain.pinned_blocks(), striped.pinned_blocks());
    }
    for (std::size_t i = 0; i < plain_leases.size(); ++i) {
      plain.release(plain_leases[i]);
      striped.release(striped_leases[i]);
    }
    EXPECT_EQ(plain.check_invariants(), "");
    EXPECT_EQ(striped.check_invariants(), "");
    expect_stats_eq(plain.stats(), striped.stats());
  }
}

TEST(CacheConcurrency, EvictionSequenceMatchesUnstripedUnderChurn) {
  // Eviction-order regression: under sustained churn on a tight capacity
  // (so admits trigger implicit capacity eviction, not just explicit
  // evict() calls), a striped cache must shed exactly the blocks the
  // unstriped one does at every step. lru_age() and evict_lru() share
  // one victim predicate; this pins that the cross-stripe global-LRU
  // merge reproduces the single-tree order even while leases pin and
  // unpin paths mid-stream.
  const auto prompts = prompt_pool(8, 10, 4);
  for (std::size_t stripes : {2u, 8u, 32u}) {
    SCOPED_TRACE("stripes=" + std::to_string(stripes));
    PrefixCache plain(cfg(0, 4, 40));     // tight: ~1/4 of the working set
    PrefixCache striped(cfg(stripes, 4, 40));
    std::vector<CacheLease> plain_leases, striped_leases;
    util::Rng rng(777);
    for (std::size_t step = 0; step < 600; ++step) {
      const std::size_t op = rng.next_below(8);
      if (op < 4 || plain_leases.empty()) {
        const auto& p = prompts[rng.next_below(prompts.size())];
        CacheLease a = plain.lookup(p);
        CacheLease b = striped.lookup(p);
        EXPECT_EQ(a.cached_tokens, b.cached_tokens);
        EXPECT_EQ(plain.admit(p, a), striped.admit(p, b));
        plain_leases.push_back(a);
        striped_leases.push_back(b);
      } else if (op < 6) {
        const std::size_t i = rng.next_below(plain_leases.size());
        plain.release(plain_leases[i]);
        striped.release(striped_leases[i]);
        plain_leases.erase(plain_leases.begin() + i);
        striped_leases.erase(striped_leases.begin() + i);
      } else {
        const std::size_t k = 1 + rng.next_below(4);
        EXPECT_EQ(plain.evict(k), striped.evict(k));
      }
      // Same evictions at the same step, block for block.
      EXPECT_EQ(plain.stats().evicted_blocks, striped.stats().evicted_blocks);
      EXPECT_EQ(plain.resident_blocks(), striped.resident_blocks());
      if (step % 37 == 0) {  // full residency fingerprint now and then
        for (const auto& p : prompts)
          EXPECT_EQ(plain.peek(p), striped.peek(p)) << "step " << step;
      }
    }
    for (std::size_t i = 0; i < plain_leases.size(); ++i) {
      plain.release(plain_leases[i]);
      striped.release(striped_leases[i]);
    }
    expect_stats_eq(plain.stats(), striped.stats());
    EXPECT_EQ(plain.check_invariants(), "");
    EXPECT_EQ(striped.check_invariants(), "");
  }
}

// ---- peek() transparency (the satellite regression). ----

TEST(CacheConcurrency, PeekIsSideEffectFreeOnStripedCache) {
  PrefixCache pc(cfg(8));
  const auto prompts = prompt_pool(4, 4, 4);
  for (const auto& p : prompts) {
    auto lease = pc.lookup(p);
    pc.admit(p, lease);
    pc.release(lease);
  }
  const CacheStats before = pc.stats();
  const std::size_t resident = pc.resident_blocks();
  std::vector<std::size_t> first_peek;
  for (const auto& p : prompts) first_peek.push_back(pc.peek(p));
  for (std::size_t round = 0; round < 3; ++round)
    for (std::size_t i = 0; i < prompts.size(); ++i)
      EXPECT_EQ(pc.peek(prompts[i]), first_peek[i]);
  expect_stats_eq(pc.stats(), before);  // no lookup/hit accounting
  EXPECT_EQ(pc.resident_blocks(), resident);
  EXPECT_EQ(pc.pinned_blocks(), 0u);  // no pins taken
  EXPECT_EQ(pc.check_invariants(), "");
}

TEST(CacheConcurrency, PeekRacesMutatorsWithoutCorruption) {
  // The actual race the sharded read path fixes: routers peek() from the
  // driver thread while worker threads mutate the same cache. Pin the
  // absence of data races (TSan) and of accounting corruption (ASan +
  // invariants): peeks never perturb stats, and results stay in range.
  PrefixCache pc(cfg(8, 4, 128));
  const auto prompts = prompt_pool(8, 6, 4);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> peeks_done{0};

  std::vector<std::thread> peekers;
  for (int t = 0; t < 2; ++t)
    peekers.emplace_back([&, t] {
      util::Rng rng(900 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& p = prompts[rng.next_below(prompts.size())];
        const std::size_t got = pc.peek(p);
        ASSERT_LE(got, p.size());
        ASSERT_EQ(got % 4, 0u);  // block-aligned by contract
        peeks_done.fetch_add(1, std::memory_order_relaxed);
      }
    });

  std::vector<std::thread> mutators;
  for (int t = 0; t < 3; ++t)
    mutators.emplace_back([&, t] {
      util::Rng rng(100 + t);
      for (int i = 0; i < 400; ++i) {
        const auto& p = prompts[rng.next_below(prompts.size())];
        CacheLease lease = pc.lookup(p);
        if (rng.next_below(5) == 0) {
          pc.cancel_lookup(lease, p.size());
          continue;
        }
        pc.admit(p, lease);
        if (rng.next_below(7) == 0) pc.evict(1);
        pc.release(lease);
      }
    });

  for (auto& t : mutators) t.join();
  stop.store(true);
  for (auto& t : peekers) t.join();
  EXPECT_GT(peeks_done.load(), 0u);
  EXPECT_EQ(pc.pinned_blocks(), 0u);
  EXPECT_EQ(pc.check_invariants(), "");
}

// ---- Multi-threaded churn soak. ----

TEST(CacheConcurrency, ConcurrentChurnKeepsLedgersConsistent) {
  // N threads hammer the full mutating API on a capacity-bound striped
  // cache. At join: every pin returned, tree/pool/stats accounting ties
  // out (check_invariants), and the lookup ledger balances exactly —
  // churn is deterministic per thread, so lookups - cancels is exact.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 300;
  PrefixCache pc(cfg(8, 4, 96));
  const auto prompts = prompt_pool(8, 8, 4);
  std::atomic<std::uint64_t> lookups{0}, cancels{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      util::Rng rng(31 * (t + 1));
      std::vector<std::pair<CacheLease, std::size_t>> held;  // lease, tokens
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::size_t op = rng.next_below(10);
        if (op < 5) {
          const auto& p = prompts[rng.next_below(prompts.size())];
          CacheLease lease = pc.lookup(p);
          lookups.fetch_add(1, std::memory_order_relaxed);
          ASSERT_LE(lease.cached_tokens, p.size());
          if (rng.next_below(4) == 0) {
            pc.cancel_lookup(lease, p.size());
            cancels.fetch_add(1, std::memory_order_relaxed);
          } else {
            pc.admit(p, lease);
            held.emplace_back(lease, p.size());
          }
        } else if (op < 8 && !held.empty()) {
          const std::size_t j = rng.next_below(held.size());
          pc.release(held[j].first);
          held.erase(held.begin() + j);
        } else if (op < 9) {
          pc.evict(1 + rng.next_below(3));
        } else {
          const auto& p = prompts[rng.next_below(prompts.size())];
          ASSERT_LE(pc.peek(p), p.size());
        }
      }
      for (auto& lt : held) pc.release(lt.first);
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(pc.pinned_blocks(), 0u);
  EXPECT_EQ(pc.check_invariants(), "");
  const CacheStats s = pc.stats();
  EXPECT_EQ(s.lookups, lookups.load() - cancels.load());
  EXPECT_LE(s.evicted_blocks, s.inserted_blocks);
  EXPECT_LE(pc.resident_blocks(), 96u);
  EXPECT_EQ(pc.resident_blocks(), s.inserted_blocks - s.evicted_blocks);
}

TEST(CacheConcurrency, ConcurrentTieredChurnKeepsTierLedgerConsistent) {
  // The tiered demote/promote paths under the same multi-threaded churn:
  // a tight GPU tier over an unbounded host tier, so eviction pressure
  // constantly demotes and lower-tier hits promote back — all racing
  // across stripes. At join the tier ledger must tie out exactly: one
  // tier per block, promotions never exceed demotions, and nothing was
  // destroyed (the host tier caught every demoted block).
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 300;
  CacheConfig config = cfg(8, 4, 48);
  config.tiers = 2;
  PrefixCache pc(config);
  const auto prompts = prompt_pool(8, 8, 4);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      util::Rng rng(47 * (t + 1));
      std::vector<CacheLease> held;
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::size_t op = rng.next_below(10);
        if (op < 5) {
          const auto& p = prompts[rng.next_below(prompts.size())];
          CacheLease lease = pc.lookup(p);
          ASSERT_LE(lease.cached_tokens, p.size());
          if (rng.next_below(4) == 0) {
            pc.cancel_lookup(lease, p.size());
          } else {
            pc.admit(p, lease);
            held.push_back(lease);
          }
        } else if (op < 8 && !held.empty()) {
          const std::size_t j = rng.next_below(held.size());
          pc.release(held[j]);
          held.erase(held.begin() + j);
        } else if (op < 9) {
          pc.evict(1 + rng.next_below(3));  // demotion pressure
        } else {
          const auto& p = prompts[rng.next_below(prompts.size())];
          const auto tp = pc.peek_tiers(p);
          ASSERT_LE(tp.total(), p.size());
        }
      }
      for (auto& lease : held) pc.release(lease);
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(pc.pinned_blocks(), 0u);
  EXPECT_EQ(pc.check_invariants(), "");
  const CacheStats s = pc.stats();
  EXPECT_LE(pc.gpu_resident_blocks(), 48u);
  EXPECT_EQ(pc.tier_resident_blocks(0) + pc.tier_resident_blocks(1),
            pc.resident_blocks());
  EXPECT_LE(s.promoted_blocks, s.demoted_blocks);
  EXPECT_EQ(s.evicted_blocks, 0u);  // unbounded host: demoted, not killed
  EXPECT_EQ(pc.resident_blocks(), s.inserted_blocks - s.evicted_blocks);
}

}  // namespace
}  // namespace llmq::cache
