#include "cache/prefix_cache.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

namespace llmq::cache {
namespace {

tokenizer::TokenSeq iota_seq(std::size_t n, TokenId start = 0) {
  tokenizer::TokenSeq s(n);
  std::iota(s.begin(), s.end(), start);
  return s;
}

CacheConfig cfg(std::size_t block = 4, std::size_t cap = 0, bool on = true) {
  CacheConfig c;
  c.block_size = block;
  c.capacity_blocks = cap;
  c.enabled = on;
  return c;
}

TEST(PrefixCache, ColdLookupMisses) {
  PrefixCache pc(cfg());
  const auto p = iota_seq(16);
  auto lease = pc.lookup(p);
  EXPECT_EQ(lease.cached_tokens, 0u);
  EXPECT_EQ(pc.stats().hit_tokens, 0u);
  EXPECT_EQ(pc.stats().lookup_tokens, 16u);
}

TEST(PrefixCache, AdmitThenHit) {
  PrefixCache pc(cfg());
  const auto p = iota_seq(16);
  auto lease = pc.lookup(p);
  pc.admit(p, lease);
  pc.release(lease);
  auto lease2 = pc.lookup(p);
  EXPECT_EQ(lease2.cached_tokens, 16u);
  EXPECT_DOUBLE_EQ(pc.stats().hit_rate(), 0.5);  // 16 of 32 looked-up tokens
  pc.release(lease2);
}

TEST(PrefixCache, DisabledCacheNeverHits) {
  PrefixCache pc(cfg(4, 0, /*on=*/false));
  const auto p = iota_seq(16);
  auto lease = pc.lookup(p);
  EXPECT_EQ(pc.admit(p, lease), 0u);
  auto lease2 = pc.lookup(p);
  EXPECT_EQ(lease2.cached_tokens, 0u);
  EXPECT_EQ(pc.resident_blocks(), 0u);
}

TEST(PrefixCache, DisabledCacheReportsNoLookupTraffic) {
  // Regression: lookups/lookup_tokens used to be counted before the
  // enabled check, so "No Cache" runs reported nonzero lookup traffic and
  // skewed hit-rate denominators in the ablation benches.
  PrefixCache pc(cfg(4, 0, /*on=*/false));
  const auto p = iota_seq(16);
  for (int i = 0; i < 3; ++i) {
    auto lease = pc.lookup(p);
    pc.admit(p, lease);
    pc.release(lease);
  }
  EXPECT_EQ(pc.stats().lookups, 0u);
  EXPECT_EQ(pc.stats().lookup_tokens, 0u);
  EXPECT_EQ(pc.stats().hit_tokens, 0u);
  EXPECT_DOUBLE_EQ(pc.stats().hit_rate(), 0.0);
}

TEST(PrefixCache, PeekMatchesLookupWithoutSideEffects) {
  PrefixCache pc(cfg());
  const auto p = iota_seq(16);
  EXPECT_EQ(pc.peek(p), 0u);  // cold
  auto lease = pc.lookup(p);
  pc.admit(p, lease);
  pc.release(lease);

  const CacheStats before = pc.stats();
  auto partial = iota_seq(16);
  partial[12] = 999;  // last block diverges
  EXPECT_EQ(pc.peek(p), 16u);
  EXPECT_EQ(pc.peek(partial), 12u);
  EXPECT_EQ(pc.peek(iota_seq(16, 500)), 0u);
  // No stats movement, no pinning, no insertions.
  EXPECT_EQ(pc.stats().lookups, before.lookups);
  EXPECT_EQ(pc.stats().hit_tokens, before.hit_tokens);
  EXPECT_EQ(pc.stats().lookup_tokens, before.lookup_tokens);
  EXPECT_EQ(pc.resident_blocks(), 4u);

  PrefixCache off(cfg(4, 0, /*on=*/false));
  EXPECT_EQ(off.peek(p), 0u);
}

TEST(PrefixCache, PeekDoesNotTouchLruRecency) {
  // A admitted before B; peeking A (however often) must not refresh its
  // recency, so A's leaf is still the LRU eviction victim.
  PrefixCache pc(cfg());
  const auto a = iota_seq(8, 0);
  const auto b = iota_seq(8, 100);
  auto la = pc.lookup(a);
  pc.admit(a, la);
  pc.release(la);
  auto lb = pc.lookup(b);
  pc.admit(b, lb);
  pc.release(lb);
  ASSERT_EQ(pc.resident_blocks(), 4u);

  for (int i = 0; i < 10; ++i) EXPECT_EQ(pc.peek(a), 8u);
  EXPECT_EQ(pc.evict(1), 1u);
  EXPECT_EQ(pc.peek(a), 4u);  // A's leaf was evicted despite the peeks
  EXPECT_EQ(pc.peek(b), 8u);
}

TEST(PrefixCache, SharedPrefixAcrossRequests) {
  PrefixCache pc(cfg());
  auto a = iota_seq(16);
  auto b = iota_seq(16);
  b[12] = 999;  // last block differs
  auto la = pc.lookup(a);
  pc.admit(a, la);
  pc.release(la);
  auto lb = pc.lookup(b);
  EXPECT_EQ(lb.cached_tokens, 12u);
  pc.admit(b, lb);
  pc.release(lb);
  EXPECT_EQ(pc.resident_blocks(), 5u);  // 4 + 1 divergent
}

TEST(PrefixCache, CapacityEvictsLru) {
  PrefixCache pc(cfg(4, /*cap=*/4));
  // Fill with request A (4 blocks), release, then admit B (4 blocks).
  const auto a = iota_seq(16, 0);
  const auto b = iota_seq(16, 100);
  auto la = pc.lookup(a);
  pc.admit(a, la);
  pc.release(la);
  auto lb = pc.lookup(b);
  pc.admit(b, lb);
  pc.release(lb);
  EXPECT_LE(pc.resident_blocks(), 4u);
  EXPECT_GT(pc.stats().evicted_blocks, 0u);
}

TEST(PrefixCache, PinnedLeaseSurvivesPressure) {
  PrefixCache pc(cfg(4, /*cap=*/4));
  const auto a = iota_seq(16, 0);
  auto la = pc.lookup(a);
  pc.admit(a, la);  // pinned, 4 blocks
  const auto b = iota_seq(16, 100);
  auto lb = pc.lookup(b);
  pc.admit(b, lb);  // nothing evictable; b admitted partially or not at all
  // a's full path must still hit.
  EXPECT_EQ(pc.resident_blocks(), 4u);
  pc.release(la);
  pc.release(lb);
  auto la2 = pc.lookup(a);
  EXPECT_EQ(la2.cached_tokens, 16u);
  pc.release(la2);
}

TEST(PrefixCache, EngineDrivenEvict) {
  PrefixCache pc(cfg(4, 0));
  const auto a = iota_seq(16);
  auto la = pc.lookup(a);
  pc.admit(a, la);
  pc.release(la);
  EXPECT_EQ(pc.resident_blocks(), 4u);
  EXPECT_EQ(pc.evict(2), 2u);
  EXPECT_EQ(pc.resident_blocks(), 2u);
}

TEST(PrefixCache, BlocksNeededArithmetic) {
  PrefixCache pc(cfg(4, 0));
  EXPECT_EQ(pc.blocks_needed(16, 0), 4u);
  EXPECT_EQ(pc.blocks_needed(16, 8), 2u);
  EXPECT_EQ(pc.blocks_needed(18, 16), 0u);  // partial tail not cached
  EXPECT_EQ(pc.blocks_needed(3, 0), 0u);
}

TEST(PrefixCache, StatsAccumulate) {
  PrefixCache pc(cfg());
  const auto p = iota_seq(8);
  for (int i = 0; i < 3; ++i) {
    auto lease = pc.lookup(p);
    pc.admit(p, lease);
    pc.release(lease);
  }
  EXPECT_EQ(pc.stats().lookups, 3u);
  EXPECT_EQ(pc.stats().lookup_tokens, 24u);
  EXPECT_EQ(pc.stats().hit_tokens, 16u);  // 2nd and 3rd fully cached
  EXPECT_EQ(pc.stats().inserted_blocks, 2u);
}

TEST(CacheStatsDelta, AccumulateAndDeltaAreExactInverses) {
  CacheStats a{10, 20, 30, 40, 50};
  const CacheStats b{1, 2, 3, 4, 5};
  const CacheStats d = a - b;
  EXPECT_EQ(d.lookups, 9u);
  EXPECT_EQ(d.hit_tokens, 18u);
  EXPECT_EQ(d.lookup_tokens, 27u);
  EXPECT_EQ(d.inserted_blocks, 36u);
  EXPECT_EQ(d.evicted_blocks, 45u);
  CacheStats back = d;
  back += b;
  EXPECT_EQ(back.lookups, a.lookups);
  EXPECT_EQ(back.evicted_blocks, a.evicted_blocks);
}

TEST(CacheStatsDelta, EveryFieldParticipatesInTheDelta) {
  // Byte-pattern check that does NOT enumerate fields: fill one stats
  // block with 0x02 bytes and another with 0x01 bytes. Since CacheStats
  // is purely uint64 counters (the static_assert next to the operators
  // pins the size), a correct field-wise subtraction yields exactly the
  // 0x01 pattern. A counter added to the struct but missed in
  // operator-= keeps its 0x02 bytes and fails the comparison — this is
  // the test the old hand-subtracting EngineSession::metrics() had no
  // analogue of.
  const auto pattern = [](unsigned char byte) {
    unsigned char buf[sizeof(CacheStats)];
    std::memset(buf, byte, sizeof buf);
    CacheStats s;
    std::memcpy(&s, buf, sizeof s);
    return s;
  };
  const CacheStats hi = pattern(0x02), lo = pattern(0x01);
  const CacheStats expect = pattern(0x01);
  const CacheStats d = hi - lo;
  EXPECT_EQ(std::memcmp(&d, &expect, sizeof d), 0)
      << "a CacheStats field was skipped by operator-=";
  CacheStats sum = lo;
  sum += lo;
  const CacheStats expect_sum = pattern(0x02);
  EXPECT_EQ(std::memcmp(&sum, &expect_sum, sizeof sum), 0)
      << "a CacheStats field was skipped by operator+=";
}

}  // namespace
}  // namespace llmq::cache
