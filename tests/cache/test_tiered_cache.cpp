// Tier-hierarchy properties: the GPU/host/disk PrefixCache under random
// churn, demotion/promotion round trips, and cascade eviction.
//
// The flat cache's churn suite (test_cache_properties.cpp) pins the radix
// tree's structural invariants; this file adds the tier ledger on top:
// every resident block sits in exactly one tier, bounded tiers respect
// their capacities, demotion moves blocks without destroying them, and a
// lower-tier hit is promoted back before the lease pins it.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "util/rng.hpp"

namespace llmq::cache {
namespace {

tokenizer::TokenSeq random_prompt(util::Rng& rng, std::size_t max_len,
                                  std::size_t vocab) {
  tokenizer::TokenSeq s(1 + rng.next_below(max_len));
  for (auto& t : s)
    t = static_cast<tokenizer::TokenId>(rng.next_below(vocab));
  return s;
}

struct TieredChurnParams {
  std::size_t block;
  std::size_t gpu_cap;   // GPU tier capacity (0 = unbounded)
  std::size_t host_cap;  // host tier capacity (0 = unbounded)
  std::size_t disk_cap;  // disk tier capacity (0 = unbounded)
  std::size_t tiers;     // 2 or 3
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const TieredChurnParams& p) {
  return os << "b" << p.block << "g" << p.gpu_cap << "h" << p.host_cap
            << "d" << p.disk_cap << "t" << p.tiers << "s" << p.seed;
}

class TieredChurn : public ::testing::TestWithParam<TieredChurnParams> {};

TEST_P(TieredChurn, TierLedgerHoldsUnderRandomInterleavings) {
  const auto p = GetParam();
  util::Rng rng(p.seed * 9371 + 13);
  PrefixCache cache(CacheConfig{p.block, p.gpu_cap, true, 0, p.tiers,
                                p.host_cap, p.disk_cap});

  std::vector<tokenizer::TokenSeq> prompts;  // shared-prefix-heavy pool
  for (int i = 0; i < 12; ++i)
    prompts.push_back(random_prompt(rng, 6 * p.block, 3));
  std::vector<CacheLease> held;

  for (int step = 0; step < 150; ++step) {
    const auto& prompt = prompts[rng.next_below(prompts.size())];
    switch (rng.next_below(6)) {
      case 0:
      case 1: {  // lookup + admit, keep the lease in flight
        auto lease = cache.lookup(prompt);
        EXPECT_LE(lease.cached_tokens, prompt.size());
        // Everything a lease pins must be GPU-resident: the lookup
        // promotes lower-tier hits before it pins.
        EXPECT_LE(lease.promoted_host_blocks + lease.promoted_disk_blocks,
                  cache.gpu_resident_blocks());
        cache.admit(prompt, lease);
        held.push_back(std::move(lease));
        break;
      }
      case 2: {  // release a random in-flight lease
        if (held.empty()) break;
        const std::size_t i = rng.next_below(held.size());
        cache.release(held[i]);
        held[i] = std::move(held.back());
        held.pop_back();
        break;
      }
      case 3:  // GPU pressure => demotion, not destruction
        cache.evict(1 + rng.next_below(4));
        break;
      case 4: {  // read-only tier probe
        const TierPeek tp = cache.peek_tiers(prompt);
        EXPECT_EQ(tp.total(), cache.peek(prompt));
        if (p.tiers < 3) {
          EXPECT_EQ(tp.disk_tokens, 0u);
        }
        break;
      }
      case 5: {  // the deferred-admission path
        auto lease = cache.lookup(prompt);
        cache.cancel_lookup(lease, prompt.size());
        break;
      }
    }

    // The tier ledger, every step: one tier per block, caps respected.
    ASSERT_EQ(cache.check_invariants(), "") << "step " << step;
    const std::size_t gpu = cache.tier_resident_blocks(0);
    const std::size_t host = cache.tier_resident_blocks(1);
    const std::size_t disk = cache.tier_resident_blocks(2);
    ASSERT_EQ(gpu + host + disk, cache.resident_blocks()) << "step " << step;
    ASSERT_EQ(gpu, cache.gpu_resident_blocks()) << "step " << step;
    if (p.gpu_cap) {
      ASSERT_LE(gpu, p.gpu_cap) << "step " << step;
    }
    if (p.host_cap) {
      ASSERT_LE(host, p.host_cap) << "step " << step;
    }
    if (p.disk_cap) {
      ASSERT_LE(disk, p.disk_cap) << "step " << step;
    }
    if (p.tiers < 3) {
      ASSERT_EQ(disk, 0u) << "step " << step;
    }
    // Only demoted blocks can ever be promoted back.
    ASSERT_LE(cache.stats().promoted_blocks, cache.stats().demoted_blocks);
    // Tiering never destroys a block that a flat cache would have kept:
    // residency still reconciles against the insert/evict counters.
    ASSERT_EQ(cache.resident_blocks(),
              cache.stats().inserted_blocks - cache.stats().evicted_blocks);
  }

  // Drain: release everything, then the whole hierarchy must empty.
  for (auto& lease : held) cache.release(lease);
  cache.evict(cache.resident_blocks());
  // evict() only pushes GPU blocks down / out; lower tiers may retain
  // blocks. Those are unreachable from leases now, so repeated lookups
  // must still hit them (demotion preserved the bytes).
  EXPECT_EQ(cache.gpu_resident_blocks() + cache.tier_resident_blocks(1) +
                cache.tier_resident_blocks(2),
            cache.resident_blocks());
  EXPECT_EQ(cache.check_invariants(), "");
}

std::vector<TieredChurnParams> tiered_sweep() {
  std::vector<TieredChurnParams> out;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t blocks[] = {2, 4, 8};
    const std::size_t gpu_caps[] = {6, 10, 16};    // tight => demotion churn
    const std::size_t host_caps[] = {0, 8, 12};    // 0 = unbounded host
    const std::size_t tiers = 2 + seed % 2;        // alternate 2 / 3 tiers
    out.push_back(TieredChurnParams{blocks[seed % 3],
                                    gpu_caps[(seed / 2) % 3],
                                    host_caps[(seed / 3) % 3],
                                    (tiers == 3 && seed % 4 == 0)
                                        ? std::size_t{10}
                                        : std::size_t{0},
                                    tiers, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TieredChurn,
                         ::testing::ValuesIn(tiered_sweep()));

TEST(TieredCache, UnpressuredTieredMatchesFlatExactly) {
  // With an unbounded GPU tier nothing ever demotes, so a tiered cache
  // must be observationally identical to the flat one — the tiers=1
  // bit-identity contract, exercised from the other side.
  util::Rng rng(77);
  PrefixCache flat(CacheConfig{4, 0, true});
  PrefixCache tiered(CacheConfig{4, 0, true, 0, 3, 0, 0});
  std::vector<tokenizer::TokenSeq> prompts;
  for (int i = 0; i < 10; ++i) prompts.push_back(random_prompt(rng, 24, 3));

  for (int step = 0; step < 200; ++step) {
    const auto& prompt = prompts[rng.next_below(prompts.size())];
    auto a = flat.lookup(prompt);
    auto b = tiered.lookup(prompt);
    ASSERT_EQ(a.cached_tokens, b.cached_tokens) << "step " << step;
    ASSERT_EQ(b.promoted_host_blocks, 0u);
    ASSERT_EQ(b.promoted_disk_blocks, 0u);
    flat.admit(prompt, a);
    tiered.admit(prompt, b);
    flat.release(a);
    tiered.release(b);
  }
  EXPECT_EQ(tiered.stats().demoted_blocks, 0u);
  EXPECT_EQ(tiered.stats().promoted_blocks, 0u);
  EXPECT_EQ(flat.resident_blocks(), tiered.resident_blocks());
  EXPECT_EQ(flat.stats().hit_tokens, tiered.stats().hit_tokens);
  EXPECT_EQ(flat.stats().inserted_blocks, tiered.stats().inserted_blocks);
}

TEST(TieredCache, DemotionPreservesHitsAndPromotionRestoresGpu) {
  // Flat caches destroy what they evict; tiered caches demote. The same
  // pressure that would zero a flat cache's hit rate must leave a tiered
  // cache able to serve the prefix from host — at a price the lease
  // reports so the engine can charge it.
  PrefixCache cache(CacheConfig{4, 4, true, 0, 2, 0, 0});
  tokenizer::TokenSeq prompt(16);
  std::iota(prompt.begin(), prompt.end(), 100u);

  auto lease = cache.lookup(prompt);
  EXPECT_EQ(lease.cached_tokens, 0u);
  cache.admit(prompt, lease);
  cache.release(lease);
  EXPECT_EQ(cache.gpu_resident_blocks(), 4u);

  // Pressure: push everything off the GPU.
  EXPECT_EQ(cache.evict(4), 4u);
  EXPECT_EQ(cache.gpu_resident_blocks(), 0u);
  EXPECT_EQ(cache.tier_resident_blocks(1), 4u);
  EXPECT_EQ(cache.stats().demoted_blocks, 4u);
  EXPECT_EQ(cache.stats().evicted_blocks, 0u);  // nothing destroyed

  // The prefix still hits — from host, promoted back to GPU and priced.
  auto again = cache.lookup(prompt);
  EXPECT_EQ(again.cached_tokens, 16u);
  EXPECT_EQ(again.promoted_host_blocks, 4u);
  EXPECT_EQ(cache.gpu_resident_blocks(), 4u);
  EXPECT_EQ(cache.tier_resident_blocks(1), 0u);
  EXPECT_EQ(cache.stats().promoted_blocks, 4u);
  cache.admit(prompt, again);
  cache.release(again);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(TieredCache, HostPressureCascadesToDiskThenDestroys) {
  // tiers=3: host overflow demotes to disk; disk overflow (or tiers=2
  // host overflow) is destroyed for real and shows up in evicted_blocks.
  PrefixCache cascade(CacheConfig{2, 2, true, 0, 3, 2, 2});
  PrefixCache two_tier(CacheConfig{2, 2, true, 0, 2, 2, 0});

  // Three disjoint 2-block prompts = 6 blocks through a 2-block GPU.
  for (int i = 0; i < 3; ++i) {
    tokenizer::TokenSeq prompt(4);
    std::iota(prompt.begin(), prompt.end(),
              static_cast<tokenizer::TokenId>(1000 * (i + 1)));
    for (PrefixCache* c : {&cascade, &two_tier}) {
      auto lease = c->lookup(prompt);
      c->admit(prompt, lease);
      c->release(lease);
      c->evict(c->gpu_resident_blocks());  // force full demotion each round
    }
  }
  // Cascade cache: 2 blocks per tier below GPU, nothing destroyed until
  // the disk tier itself overflows.
  EXPECT_LE(cascade.tier_resident_blocks(1), 2u);
  EXPECT_LE(cascade.tier_resident_blocks(2), 2u);
  EXPECT_GT(cascade.tier_resident_blocks(2), 0u);
  // Two-tier cache: host overflow had nowhere to go.
  EXPECT_LE(two_tier.tier_resident_blocks(1), 2u);
  EXPECT_EQ(two_tier.tier_resident_blocks(2), 0u);
  EXPECT_GT(two_tier.stats().evicted_blocks, 0u);
  EXPECT_EQ(cascade.check_invariants(), "");
  EXPECT_EQ(two_tier.check_invariants(), "");
}

TEST(TieredCache, PinnedBlocksAreNeverDemoted) {
  // A lease pins the GPU copy; pressure must route around it.
  PrefixCache cache(CacheConfig{4, 4, true, 0, 2, 0, 0});
  tokenizer::TokenSeq prompt(16);
  std::iota(prompt.begin(), prompt.end(), 7u);
  auto lease = cache.lookup(prompt);
  cache.admit(prompt, lease);  // lease still held
  EXPECT_EQ(cache.evict(4), 0u);
  EXPECT_EQ(cache.gpu_resident_blocks(), 4u);
  EXPECT_EQ(cache.stats().demoted_blocks, 0u);
  cache.release(lease);
  EXPECT_EQ(cache.evict(4), 4u);
  EXPECT_EQ(cache.tier_resident_blocks(1), 4u);
  EXPECT_EQ(cache.check_invariants(), "");
}

}  // namespace
}  // namespace llmq::cache
