// Property tests: tokenizer invariants over randomized text.

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>

#include "tokenizer/tokenizer.hpp"
#include "util/rng.hpp"
#include "util/wordbank.hpp"

namespace llmq::tokenizer {
namespace {

std::string random_text(util::Rng& rng, std::size_t len) {
  static const char* alphabet =
      "abcdefghij KLMNOP.,!?  0123456789\t\n'\"-_/";
  const std::size_t n_chars = std::strlen(alphabet);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s += alphabet[rng.next_below(n_chars)];
  return s;
}

class TokenizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenizerProperty, CountAlwaysMatchesEncode) {
  util::Rng rng(GetParam());
  const Tokenizer tok;
  for (int trial = 0; trial < 50; ++trial) {
    const auto text = random_text(rng, rng.next_below(200));
    EXPECT_EQ(tok.count(text), tok.encode(text).size()) << text;
  }
}

TEST_P(TokenizerProperty, EqualStringsEqualStreams) {
  util::Rng rng(GetParam());
  const Tokenizer tok;
  for (int trial = 0; trial < 30; ++trial) {
    const auto text = random_text(rng, 1 + rng.next_below(120));
    EXPECT_EQ(tok.encode(text), tok.encode(std::string(text)));
  }
}

TEST_P(TokenizerProperty, SharedWordPrefixSharesTokenPrefix) {
  // If two texts agree on a word-boundary-aligned prefix, the token
  // streams agree on the corresponding tokens.
  util::Rng rng(GetParam());
  const Tokenizer tok;
  const auto& bank = util::default_wordbank();
  for (int trial = 0; trial < 25; ++trial) {
    const auto prefix = bank.sentence(rng, 5 + rng.next_below(20));
    const auto a = prefix + " " + bank.sentence(rng, 10);
    const auto b = prefix + " " + bank.sentence(rng, 10);
    const auto ta = tok.encode(a);
    const auto tb = tok.encode(b);
    const auto prefix_tokens = tok.count(prefix);
    EXPECT_GE(common_prefix_len(ta, tb), prefix_tokens);
  }
}

TEST_P(TokenizerProperty, TokenCountBounds) {
  // 1 <= tokens <= chars for non-empty text (each token covers >= 1 char,
  // whitespace folds into neighbors).
  util::Rng rng(GetParam() ^ 0xb0b);
  const Tokenizer tok;
  for (int trial = 0; trial < 40; ++trial) {
    const auto text = random_text(rng, 1 + rng.next_below(150));
    const auto n = tok.count(text);
    EXPECT_LE(n, text.size());
    bool all_space = true;
    for (char c : text)
      if (!std::isspace(static_cast<unsigned char>(c))) all_space = false;
    if (!all_space) {
      EXPECT_GE(n, 1u);
    }
  }
}

TEST_P(TokenizerProperty, ConcatenationNeverCreatesFewerPieces) {
  // Tokens of (a + b) >= tokens(a-trimmed) since boundaries only split.
  util::Rng rng(GetParam() ^ 0xc4c4);
  const Tokenizer tok;
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = random_text(rng, 1 + rng.next_below(60));
    const auto b = random_text(rng, 1 + rng.next_below(60));
    EXPECT_GE(tok.count(a + b) + 1, tok.count(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace llmq::tokenizer
