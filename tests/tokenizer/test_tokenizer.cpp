#include "tokenizer/tokenizer.hpp"

#include <gtest/gtest.h>

namespace llmq::tokenizer {
namespace {

TEST(Tokenizer, Deterministic) {
  const Tokenizer tok;
  const std::string text = "The quick brown fox, 42 times!";
  EXPECT_EQ(tok.encode(text), tok.encode(text));
}

TEST(Tokenizer, EmptyString) {
  const Tokenizer tok;
  EXPECT_TRUE(tok.encode("").empty());
  EXPECT_EQ(tok.count(""), 0u);
}

TEST(Tokenizer, CountMatchesEncode) {
  const Tokenizer tok;
  for (const char* s :
       {"hello world", "a,b,c", "  spaces   everywhere  ", "punct!?.",
        "supercalifragilisticexpialidocious", "x", "42.5% of $100"}) {
    EXPECT_EQ(tok.count(s), tok.encode(s).size()) << s;
  }
}

TEST(Tokenizer, IdenticalStringsShareAllTokens) {
  const Tokenizer tok;
  const auto a = tok.encode("repeatable value");
  const auto b = tok.encode("repeatable value");
  EXPECT_EQ(common_prefix_len(a, b), a.size());
}

TEST(Tokenizer, SharedTextPrefixSharesTokenPrefix) {
  const Tokenizer tok;
  const auto a = tok.encode("SELECT review FROM table one");
  const auto b = tok.encode("SELECT review FROM table two");
  const auto shared = common_prefix_len(a, b);
  EXPECT_GE(shared, 4u);
  EXPECT_LT(shared, a.size());
}

TEST(Tokenizer, DifferentTextsDiverge) {
  const Tokenizer tok;
  const auto a = tok.encode("alpha beta");
  const auto b = tok.encode("gamma delta");
  EXPECT_EQ(common_prefix_len(a, b), 0u);
}

TEST(Tokenizer, LongWordsSplitIntoPieces) {
  const Tokenizer tok;
  // 26 chars, max piece 6 -> ceil(26/6) = 5 tokens.
  EXPECT_EQ(tok.count("abcdefghijklmnopqrstuvwxyz"), 5u);
}

TEST(Tokenizer, WhitespaceRunsCollapse) {
  const Tokenizer tok;
  // Space attaches to the following token; runs collapse to one marker.
  EXPECT_EQ(tok.count("a b"), tok.count("a  b"));
}

TEST(Tokenizer, PunctuationIsSeparate) {
  const Tokenizer tok;
  EXPECT_EQ(tok.count("a"), 1u);
  EXPECT_EQ(tok.count("a."), 2u);
  EXPECT_EQ(tok.count("a.b"), 3u);
}

TEST(Tokenizer, SpacePrefixDistinguishesBoundary) {
  const Tokenizer tok;
  // "ab" as one word differs from "a b": joins can't create false matches.
  EXPECT_NE(tok.encode("ab"), tok.encode("a b"));
}

TEST(Tokenizer, TokensPerCharRealistic) {
  // English-like prose should land near 3-5 chars/token, matching the
  // ratios the paper's Table 1 implies.
  const Tokenizer tok;
  const std::string text =
      "This movie was a delightful surprise with strong performances "
      "and a script that kept the audience engaged from start to finish.";
  const double ratio =
      static_cast<double>(text.size()) / static_cast<double>(tok.count(text));
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 7.0);
}

TEST(Tokenizer, EncodeAppendConcatenates) {
  const Tokenizer tok;
  TokenSeq out;
  tok.encode_append("hello ", out);
  const std::size_t first = out.size();
  tok.encode_append("world", out);
  EXPECT_GT(out.size(), first);
  // Appending in pieces equals encoding whole only when the boundary has
  // no cross-piece space interaction; exact equality for this simple case:
  EXPECT_EQ(out.size(), tok.encode("hello ").size() + tok.encode("world").size());
}

TEST(Tokenizer, CommonPrefixLenEdgeCases) {
  TokenSeq a{1, 2, 3}, b{1, 2, 3, 4}, c{};
  EXPECT_EQ(common_prefix_len(a, b), 3u);
  EXPECT_EQ(common_prefix_len(a, c), 0u);
  EXPECT_EQ(common_prefix_len(c, c), 0u);
}

TEST(Tokenizer, GlobalTokenizerIsStable) {
  EXPECT_EQ(global_tokenizer().encode("stable"),
            global_tokenizer().encode("stable"));
}

}  // namespace
}  // namespace llmq::tokenizer
