// Engine-level priority preemption: pause/evict/resume mechanics,
// strict-priority admission, aging, and the exactly-once token + cache-stat
// accounting contract across preempt/resume cycles (DESIGN.md §5).

#include <gtest/gtest.h>

#include <algorithm>

#include "llm/engine_session.hpp"
#include "util/rng.hpp"

namespace llmq::llm {
namespace {

ModelSpec tiny_model() {
  ModelSpec m;
  m.name = "tiny";
  m.params = 1e9;
  m.n_layers = 8;
  m.hidden_dim = 512;
  m.n_heads = 8;
  m.n_kv_heads = 8;
  m.head_dim = 64;
  m.dtype_bytes = 2;
  return m;
}

ServingEngine make_engine(std::size_t pool_blocks, std::size_t max_batch,
                          bool preemption, double aging_seconds = 0.0) {
  EngineConfig ec;
  ec.max_batch_size = max_batch;
  ec.block_size = 16;
  ec.kv_pool_blocks_override = pool_blocks;
  ec.preemption = preemption;
  ec.priority_aging_seconds = aging_seconds;
  return ServingEngine(CostModel(tiny_model(), l4()), ec);
}

Request make_request(std::uint64_t id, std::size_t prompt_len,
                     std::size_t output_tokens, PriorityClass cls,
                     std::uint32_t stem = 0) {
  Request r;
  r.id = id;
  r.priority = cls;
  r.output_tokens = output_tokens;
  for (std::size_t k = 0; k < prompt_len; ++k)
    r.prompt.push_back(static_cast<tokenizer::TokenId>(stem * 10000 + k));
  return r;
}

TEST(PriorityClassVocab, ToStringFromStringRoundTrip) {
  for (PriorityClass c : {PriorityClass::Interactive, PriorityClass::Standard,
                          PriorityClass::Batch})
    EXPECT_EQ(priority_from_string(to_string(c)), c);
  EXPECT_FALSE(priority_from_string("turbo").has_value());
}

TEST(PriorityClassVocab, AgingPromotesTowardInteractiveAndClamps) {
  EXPECT_EQ(aged_class(PriorityClass::Batch, 100.0, 0.0),
            PriorityClass::Batch);  // aging disabled
  EXPECT_EQ(aged_class(PriorityClass::Batch, 0.5, 1.0), PriorityClass::Batch);
  EXPECT_EQ(aged_class(PriorityClass::Batch, 1.5, 1.0),
            PriorityClass::Standard);
  EXPECT_EQ(aged_class(PriorityClass::Batch, 2.5, 1.0),
            PriorityClass::Interactive);
  EXPECT_EQ(aged_class(PriorityClass::Batch, 500.0, 1.0),
            PriorityClass::Interactive);  // clamped
  EXPECT_EQ(aged_class(PriorityClass::Interactive, 500.0, 1.0),
            PriorityClass::Interactive);
}

TEST(EngineSessionPreemption, ExplicitPauseEvictResumeRoundTrip) {
  const ServingEngine engine = make_engine(4096, 8, /*preemption=*/false);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 64, 16, PriorityClass::Batch));
  session.step();  // admit + one decode step
  ASSERT_EQ(session.num_running(), 1u);

  // Pause: the request leaves the batch and its KV pins are returned.
  EXPECT_TRUE(session.preempt(1));
  EXPECT_EQ(session.num_running(), 0u);
  EXPECT_EQ(session.num_parked(), 1u);
  EXPECT_FALSE(session.has_work());  // parked != work; the pauser owns it
  EXPECT_EQ(cache.check_invariants(), "");
  // Still outstanding: the request has not completed.
  EXPECT_EQ(session.outstanding_prompt_tokens(), 64u);
  EXPECT_FALSE(session.preempt(1));  // not running anymore

  // Resume re-queues; drain completes it with full output.
  EXPECT_TRUE(session.resume(1));
  EXPECT_FALSE(session.resume(1));  // no longer parked
  const auto results = session.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].output_tokens, 16u);
  EXPECT_EQ(results[0].preemptions, 1u);
  EXPECT_GT(results[0].recomputed_tokens, 0u);
  EXPECT_EQ(session.outstanding_prompt_tokens(), 0u);

  const EngineMetrics m = session.metrics();
  EXPECT_EQ(m.preemptions, 1u);
  EXPECT_EQ(m.recompute_prefill_tokens, results[0].recomputed_tokens);
  EXPECT_GT(m.recompute_prefill_seconds, 0.0);
  // Exactly-once: prompt/output counted once despite two admissions.
  EXPECT_EQ(m.prompt_tokens, 64u);
  EXPECT_EQ(m.output_tokens, 16u);
  EXPECT_EQ(m.cache.lookups, 1u);  // the resume probe did not count
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(EngineSessionPreemption, ResumeReplaysThroughCacheCheaply) {
  // Preempt after some decode, leave the cached prompt blocks resident:
  // the resume's recompute must cover only the uncached prompt suffix plus
  // the generated tokens — not the whole prompt.
  const ServingEngine engine = make_engine(4096, 8, false);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(7, 64, 16, PriorityClass::Batch));
  session.step();
  session.step();  // 2 tokens generated
  ASSERT_TRUE(session.preempt(7));
  ASSERT_TRUE(session.resume(7));
  const auto results = session.drain();
  ASSERT_EQ(results.size(), 1u);
  // Prompt is 4 full blocks, all admitted to cache at first admission and
  // still resident (nothing evicted in a huge pool): recompute = 0 prompt
  // tokens + 2 generated tokens.
  EXPECT_EQ(results[0].recomputed_tokens, 2u);
  EXPECT_EQ(results[0].output_tokens, 16u);
}

TEST(EngineSessionPreemption, AutoPreemptionAdmitsInteractiveUnderKvPressure) {
  // Pool sized so one long batch request saturates KV; an interactive
  // arrival must evict it rather than queue behind it.
  const ServingEngine engine = make_engine(8, 8, /*preemption=*/true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 64, 64, PriorityClass::Batch, /*stem=*/1));
  session.step();
  ASSERT_EQ(session.num_running(), 1u);

  session.submit(make_request(2, 64, 8, PriorityClass::Interactive, 2));
  const auto ev = session.step();
  EXPECT_EQ(ev.preempted, 1u);
  EXPECT_EQ(ev.admitted, 1u);
  ASSERT_EQ(session.num_running(), 1u);

  const auto results = session.drain();
  ASSERT_EQ(results.size(), 2u);
  // Interactive finishes first despite arriving second.
  EXPECT_EQ(results[0].id, 2u);
  EXPECT_EQ(results[0].preemptions, 0u);
  EXPECT_EQ(results[1].id, 1u);
  EXPECT_GE(results[1].preemptions, 1u);
  EXPECT_EQ(results[1].output_tokens, 64u);
  EXPECT_EQ(session.metrics().preemptions, results[1].preemptions);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(EngineSessionPreemption, BatchSlotPreemptionPrefersLatestAdmission) {
  // Slots are the scarce resource (huge KV pool, max_batch = 2): an
  // interactive arrival evicts the most recently admitted of the two
  // batch requests (least decoded work lost).
  const ServingEngine engine = make_engine(4096, 2, true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 32, 64, PriorityClass::Batch, 1));
  session.step();
  session.submit(make_request(2, 32, 64, PriorityClass::Batch, 2));
  session.step();
  ASSERT_EQ(session.num_running(), 2u);

  session.submit(make_request(3, 32, 4, PriorityClass::Interactive, 3));
  const auto ev = session.step();
  EXPECT_EQ(ev.preempted, 1u);
  // Request 2 (admitted later) was the victim; request 1 kept running.
  const auto results = session.drain();
  std::size_t p1 = 0, p2 = 0;
  for (const auto& r : results) {
    if (r.id == 1) p1 = r.preemptions;
    if (r.id == 2) p2 = r.preemptions;
  }
  EXPECT_EQ(p1, 0u);
  EXPECT_GE(p2, 1u);
}

TEST(EngineSessionPreemption, EqualClassNeverPreempts) {
  const ServingEngine engine = make_engine(8, 8, true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 64, 32, PriorityClass::Interactive, 1));
  session.step();
  session.submit(make_request(2, 64, 8, PriorityClass::Interactive, 2));
  const auto ev = session.step();
  EXPECT_EQ(ev.preempted, 0u);  // same class: waits for memory instead
  const auto results = session.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 1u);  // FIFO within the class
  EXPECT_EQ(session.metrics().preemptions, 0u);
}

TEST(EngineSessionPreemption, StrictPriorityAdmissionFifoWithinClass) {
  // One slot; everything queues; admission must go by class then seq.
  const ServingEngine engine = make_engine(4096, 1, false);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 32, 2, PriorityClass::Batch, 1));
  session.submit(make_request(2, 32, 2, PriorityClass::Standard, 2));
  session.submit(make_request(3, 32, 2, PriorityClass::Interactive, 3));
  session.submit(make_request(4, 32, 2, PriorityClass::Interactive, 4));
  const auto results = session.drain();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].id, 3u);
  EXPECT_EQ(results[1].id, 4u);
  EXPECT_EQ(results[2].id, 2u);
  EXPECT_EQ(results[3].id, 1u);
}

TEST(EngineSessionPreemption, AgingEventuallyAdmitsBatchAheadOfFreshWork) {
  // Without aging, a batch request starves behind a steady interactive
  // feed on a single slot; with aging it is promoted and jumps ahead of
  // fresh interactive arrivals (oldest seq wins at the promoted class).
  for (const bool aging : {false, true}) {
    const ServingEngine engine =
        make_engine(4096, 1, true, aging ? 1e-3 : 0.0);
    auto cache = engine.make_session_cache();
    EngineSession session(engine, cache);

    session.submit(make_request(100, 32, 2, PriorityClass::Batch, 9));
    std::vector<RequestResult> completed;
    for (std::uint64_t i = 0; i < 40; ++i) {
      session.submit(
          make_request(i, 32, 2, PriorityClass::Interactive, 1 + i % 3));
      const auto ev = session.step();
      completed.insert(completed.end(), ev.completed.begin(),
                       ev.completed.end());
    }
    const auto rest = session.drain();
    completed.insert(completed.end(), rest.begin(), rest.end());
    ASSERT_EQ(completed.size(), 41u);
    double batch_finish = -1.0;
    std::size_t served_interactive_before_batch = 0;
    for (const auto& r : completed) {
      if (r.id == 100)
        batch_finish = r.finish_time;
      else if (batch_finish < 0.0)
        ++served_interactive_before_batch;
    }
    ASSERT_GT(batch_finish, 0.0);
    if (aging)
      EXPECT_LT(served_interactive_before_batch, 10u)
          << "aging should promote the batch request past fresh arrivals";
    else
      EXPECT_GE(served_interactive_before_batch, 35u)
          << "without aging strict priority starves the batch request";
  }
}

TEST(EngineSessionPreemption, PreemptDuringDeferredAdmissionCountsOnce) {
  // Audit regression (PR 3 cancel_lookup interplay): while request D is
  // deferred for KV memory — its probe canceled every retry — preempting
  // and resuming the running victim around it must leave cache stats
  // exactly-once: one counted lookup per request, hit credits equal to
  // engine-side cached tokens, and a clean pin ledger.
  const ServingEngine engine = make_engine(8, 8, false);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 64, 32, PriorityClass::Standard, 1));
  session.step();
  ASSERT_EQ(session.num_running(), 1u);

  // D defers: pool is saturated by request 1.
  session.submit(make_request(2, 64, 8, PriorityClass::Standard, 2));
  session.step();
  session.step();
  ASSERT_EQ(session.num_pending(), 1u);

  // Preempt the victim mid-defer, then resume it; D admits in between.
  ASSERT_TRUE(session.preempt(1));
  session.step();  // D admits into the freed memory
  EXPECT_EQ(session.num_running(), 1u);
  ASSERT_TRUE(session.resume(1));
  const auto results = session.drain();
  ASSERT_EQ(results.size(), 2u);

  const EngineMetrics m = session.metrics();
  EXPECT_EQ(m.cache.lookups, 2u);  // one per request, across all retries
  EXPECT_EQ(m.cache.hit_tokens, m.cached_prompt_tokens);
  EXPECT_EQ(m.cache.lookup_tokens, 128u);
  EXPECT_EQ(m.prompt_tokens, 128u);
  EXPECT_EQ(m.output_tokens, 40u);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(EngineSessionPreemption, RepeatedCyclesStayExactlyOnce) {
  // Arbitrary preempt/resume cycles: prompt/output/lookup counters never
  // drift, recompute accumulates, invariants hold after every cycle.
  const ServingEngine engine = make_engine(4096, 8, false);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(5, 48, 32, PriorityClass::Batch, 4));
  session.step();
  for (int cycle = 0; cycle < 5; ++cycle) {
    ASSERT_TRUE(session.preempt(5));
    EXPECT_EQ(cache.check_invariants(), "");
    ASSERT_TRUE(session.resume(5));
    session.step();
  }
  const auto results = session.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].preemptions, 5u);
  EXPECT_EQ(results[0].output_tokens, 32u);
  EXPECT_EQ(results[0].prompt_tokens, 48u);
  EXPECT_EQ(results[0].cached_tokens + results[0].computed_tokens, 48u);

  const EngineMetrics m = session.metrics();
  EXPECT_EQ(m.prompt_tokens, 48u);
  EXPECT_EQ(m.output_tokens, 32u);
  EXPECT_EQ(m.preemptions, 5u);
  EXPECT_EQ(m.cache.lookups, 1u);
  EXPECT_EQ(m.recompute_prefill_tokens, results[0].recomputed_tokens);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(EngineSessionPreemption, ResumedVictimKeepsFifoPositionInItsClass) {
  // Regression: the admission tie-break is seq, not queue position. A
  // preempted victim re-queues at the back of the deque, but being the
  // oldest of its class it must still admit before younger same-class
  // requests once the preemptor finishes.
  const ServingEngine engine = make_engine(4096, 1, /*preemption=*/true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 32, 32, PriorityClass::Batch, 1));  // A
  session.step();  // A running
  session.submit(make_request(2, 32, 32, PriorityClass::Batch, 2));  // B
  session.submit(make_request(3, 32, 2, PriorityClass::Interactive, 3));
  const auto ev = session.step();  // C preempts A (pending: B, C->ran, A)
  EXPECT_EQ(ev.preempted, 1u);

  const auto results = session.drain();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, 3u);  // interactive first
  EXPECT_EQ(results[1].id, 1u);  // the older victim resumes before B
  EXPECT_EQ(results[2].id, 2u);
}

TEST(EngineSessionPreemption, PreemptUnknownIdIsRejected) {
  const ServingEngine engine = make_engine(4096, 8, true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  EXPECT_FALSE(session.preempt(99));
  EXPECT_FALSE(session.resume(99));
}

}  // namespace
}  // namespace llmq::llm
