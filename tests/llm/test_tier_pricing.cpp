// Tier promotion is honestly priced: a prefix hit served from the host
// tier must pay CostModel::promote_seconds into TTFT before the engine
// reuses it — cheaper than recompute, but never free — and a flat cache
// must pay exactly nothing (the tiers=1 bit-identity contract).

#include <gtest/gtest.h>

#include <numeric>

#include "llm/engine_session.hpp"

namespace llmq::llm {
namespace {

ModelSpec tiny_model() {
  ModelSpec m;
  m.name = "tiny";
  m.params = 1e9;
  m.n_layers = 8;
  m.hidden_dim = 512;
  m.n_heads = 8;
  m.n_kv_heads = 8;
  m.head_dim = 64;
  m.dtype_bytes = 2;
  return m;
}

ServingEngine make_engine(std::size_t tiers) {
  EngineConfig ec;
  ec.max_batch_size = 8;
  ec.block_size = 16;
  ec.kv_pool_blocks_override = 4096;
  ec.cache_tiers = tiers;
  return ServingEngine(CostModel(tiny_model(), l4()), ec);
}

Request prompt_request(std::uint64_t id) {
  Request r;
  r.id = id;
  r.row_tag = id;
  r.prompt.resize(64);  // 4 full blocks at block_size 16
  std::iota(r.prompt.begin(), r.prompt.end(), 100u);
  r.output_tokens = 3;
  return r;
}

TEST(TierPricing, CostModelPromotePricing) {
  const ServingEngine engine = make_engine(2);
  const CostModel& cm = engine.cost_model();
  EXPECT_EQ(cm.promote_seconds(0, 0, 16), 0.0);
  const double host4 = cm.promote_seconds(4, 0, 16);
  const double disk4 = cm.promote_seconds(0, 4, 16);
  EXPECT_GT(host4, 0.0);
  // Disk is the slower, higher-latency link for the same bytes.
  EXPECT_GT(disk4, host4);
  // Mixed promotion pays both links.
  EXPECT_DOUBLE_EQ(cm.promote_seconds(4, 4, 16), host4 + disk4);
}

TEST(TierPricing, HostHitPaysPromoteSecondsIntoTtft) {
  // Two identical tiered engines run the same two-request script; one
  // suffers GPU pressure between the requests (prefix demoted to host).
  // The second request must still hit in full, and its first token must
  // land later by exactly the priced promotion time.
  const ServingEngine engine = make_engine(2);
  auto warm_cache = engine.make_session_cache();
  auto cold_cache = engine.make_session_cache();
  EngineSession warm(engine, warm_cache);    // GPU hit
  EngineSession cold(engine, cold_cache);    // host hit after demotion

  warm.submit(prompt_request(1));
  cold.submit(prompt_request(1));
  warm.drain();
  cold.drain();

  // Pressure on one session only: demote the whole prefix to host.
  ASSERT_EQ(cold_cache.evict(cold_cache.gpu_resident_blocks()), 4u);
  ASSERT_EQ(cold_cache.tier_resident_blocks(1), 4u);

  warm.submit(prompt_request(2));
  cold.submit(prompt_request(2));
  const auto warm_res = warm.drain();
  const auto cold_res = cold.drain();
  ASSERT_EQ(warm_res.size(), 1u);
  ASSERT_EQ(cold_res.size(), 1u);

  // The demoted prefix still serves in full — that is the point of tiers.
  EXPECT_EQ(cold_res[0].cached_tokens, 64u);
  EXPECT_EQ(cold_res[0].cached_tokens, warm_res[0].cached_tokens);

  const double promote_s = engine.cost_model().promote_seconds(4, 0, 16);
  ASSERT_GT(promote_s, 0.0);
  // The engine ledger records exactly the priced transfer.
  EXPECT_EQ(cold.metrics().promote_seconds, promote_s);
  EXPECT_EQ(cold.metrics().promoted_host_blocks, 4u);
  EXPECT_EQ(cold.metrics().promoted_disk_blocks, 0u);
  EXPECT_EQ(warm.metrics().promote_seconds, 0.0);
  // And TTFT honestly pays it: same script, same engine, the host hit
  // lands the first token later by the transfer time.
  EXPECT_NEAR(cold_res[0].first_token_time - warm_res[0].first_token_time,
              promote_s, 1e-12);
}

TEST(TierPricing, FlatCacheNeverPaysPromotion) {
  // tiers=1: eviction destroys, the re-request misses, and the promotion
  // ledger stays zero — recompute is the only price a flat cache knows.
  const ServingEngine engine = make_engine(1);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  session.submit(prompt_request(1));
  session.drain();
  ASSERT_EQ(cache.evict(cache.resident_blocks()), 4u);
  EXPECT_EQ(cache.resident_blocks(), 0u);  // destroyed, not demoted

  session.submit(prompt_request(2));
  const auto res = session.drain();
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].cached_tokens, 0u);
  EXPECT_EQ(session.metrics().promote_seconds, 0.0);
  EXPECT_EQ(session.metrics().promoted_host_blocks, 0u);
  EXPECT_EQ(session.metrics().promoted_disk_blocks, 0u);
}

}  // namespace
}  // namespace llmq::llm
