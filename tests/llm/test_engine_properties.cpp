// Property tests: serving-engine invariants over randomized workloads.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "llm/engine.hpp"
#include "util/rng.hpp"

namespace llmq::llm {
namespace {

struct WorkloadParams {
  std::size_t n_requests;
  std::size_t vocab;
  std::size_t max_prompt;
  std::size_t max_output;
  bool cache_on;
  std::size_t pool_blocks;  // 0 = GPU-derived
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const WorkloadParams& p) {
  return os << "n" << p.n_requests << "v" << p.vocab << "p" << p.max_prompt
            << "o" << p.max_output << (p.cache_on ? "C" : "_") << "k"
            << p.pool_blocks << "s" << p.seed;
}

std::vector<Request> make_workload(const WorkloadParams& p) {
  util::Rng rng(p.seed);
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < p.n_requests; ++i) {
    Request r;
    r.id = i;
    r.row_tag = i;
    const std::size_t len = 1 + rng.next_below(p.max_prompt);
    r.prompt.resize(len);
    for (auto& t : r.prompt)
      t = static_cast<tokenizer::TokenId>(rng.next_below(p.vocab));
    r.output_tokens = 1 + rng.next_below(p.max_output);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

class EngineProperty : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(EngineProperty, ConservationLaws) {
  const auto params = GetParam();
  const auto reqs = make_workload(params);
  EngineConfig cfg;
  cfg.max_batch_size = 8;
  cfg.block_size = 4;
  cfg.cache_enabled = params.cache_on;
  cfg.kv_pool_blocks_override = params.pool_blocks;
  ServingEngine engine(CostModel(llama3_8b(), l4()), cfg);
  const auto run = engine.run(reqs);

  // Every request completes exactly once.
  ASSERT_EQ(run.results.size(), reqs.size());
  std::set<std::uint64_t> ids;
  for (const auto& r : run.results) ids.insert(r.id);
  EXPECT_EQ(ids.size(), reqs.size());

  // Token conservation.
  std::uint64_t prompt_total = 0, out_total = 0;
  for (const auto& r : reqs) {
    prompt_total += r.prompt.size();
    out_total += r.output_tokens;
  }
  EXPECT_EQ(run.metrics.prompt_tokens, prompt_total);
  EXPECT_EQ(run.metrics.output_tokens, out_total);
  EXPECT_EQ(run.metrics.cached_prompt_tokens +
                run.metrics.computed_prompt_tokens,
            prompt_total);

  // Per-request accounting agrees with aggregates.
  std::uint64_t cached_sum = 0;
  for (const auto& r : run.results) {
    EXPECT_LE(r.cached_tokens, r.prompt_tokens);
    EXPECT_EQ(r.cached_tokens + r.computed_tokens, r.prompt_tokens);
    EXPECT_GE(r.finish_time, r.admit_time);
    cached_sum += r.cached_tokens;
  }
  EXPECT_EQ(cached_sum, run.metrics.cached_prompt_tokens);

  // Time decomposes into prefill + decode.
  EXPECT_NEAR(run.metrics.total_seconds,
              run.metrics.prefill_seconds + run.metrics.decode_seconds, 1e-9);

  // No cache => no cached tokens.
  if (!params.cache_on) {
    EXPECT_EQ(run.metrics.cached_prompt_tokens, 0u);
  }

  // Batch never exceeds the configured maximum.
  EXPECT_LE(run.metrics.peak_batch_size, cfg.max_batch_size);
}

TEST_P(EngineProperty, CachingNeverSlower) {
  const auto params = GetParam();
  const auto reqs = make_workload(params);
  EngineConfig cfg;
  cfg.max_batch_size = 8;
  cfg.block_size = 4;
  cfg.kv_pool_blocks_override = params.pool_blocks;

  cfg.cache_enabled = false;
  const auto cold = ServingEngine(CostModel(llama3_8b(), l4()), cfg).run(reqs);
  cfg.cache_enabled = true;
  const auto warm = ServingEngine(CostModel(llama3_8b(), l4()), cfg).run(reqs);
  EXPECT_LE(warm.metrics.prefill_seconds, cold.metrics.prefill_seconds + 1e-9);
  EXPECT_LE(warm.metrics.total_seconds, cold.metrics.total_seconds + 1e-9);
}

TEST_P(EngineProperty, CompletionTimesNondecreasingPerAdmission) {
  const auto params = GetParam();
  const auto reqs = make_workload(params);
  EngineConfig cfg;
  cfg.max_batch_size = 8;
  cfg.block_size = 4;
  cfg.cache_enabled = params.cache_on;
  cfg.kv_pool_blocks_override = params.pool_blocks;
  const auto run = ServingEngine(CostModel(llama3_8b(), l4()), cfg).run(reqs);
  // Completion order is by finish time (we retire in decode order).
  for (std::size_t i = 1; i < run.results.size(); ++i)
    EXPECT_LE(run.results[i - 1].finish_time,
              run.results[i].finish_time + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperty,
    ::testing::Values(
        WorkloadParams{30, 4, 30, 6, true, 0, 1},
        WorkloadParams{30, 4, 30, 6, false, 0, 2},
        WorkloadParams{50, 2, 20, 3, true, 0, 3},   // heavy sharing
        WorkloadParams{40, 1000, 40, 8, true, 0, 4},  // no sharing
        WorkloadParams{25, 8, 25, 10, true, 60, 5},   // memory pressure
        WorkloadParams{25, 8, 25, 10, false, 60, 6},
        WorkloadParams{1, 4, 10, 2, true, 0, 7},      // single request
        WorkloadParams{60, 3, 12, 2, true, 30, 8}));  // tiny pool, shared

}  // namespace
}  // namespace llmq::llm
