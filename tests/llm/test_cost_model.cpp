#include "llm/cost_model.hpp"

#include <gtest/gtest.h>

namespace llmq::llm {
namespace {

TEST(ModelSpec, KvBytesMatchHandComputation) {
  // Llama-3-8B: 2 * 32 layers * 8 kv-heads * 128 head-dim * 2 bytes = 128KB.
  EXPECT_DOUBLE_EQ(llama3_8b().kv_bytes_per_token(), 131072.0);
  // 70B: 2 * 80 * 8 * 128 * 2 = 320KB.
  EXPECT_DOUBLE_EQ(llama3_70b().kv_bytes_per_token(), 327680.0);
  // 1B: 2 * 16 * 8 * 64 * 2 = 32KB.
  EXPECT_DOUBLE_EQ(llama3_1b().kv_bytes_per_token(), 32768.0);
}

TEST(GpuSpec, TensorParallelScales) {
  const auto one = l4();
  const auto eight = l4_x8();
  EXPECT_GT(eight.total_memory(), 7.0 * one.total_memory() * 0.8);
  EXPECT_GT(eight.total_flops(), 4.0 * one.total_flops());
}

TEST(CostModel, PrefillZeroTokensFree) {
  const CostModel cm(llama3_8b(), l4());
  EXPECT_DOUBLE_EQ(cm.prefill_flops(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(cm.prefill_seconds(0, 100), 0.0);
}

TEST(CostModel, PrefillLinearTermDominatesShortContext) {
  const CostModel cm(llama3_8b(), l4());
  // 2 * 8.03e9 params * 100 tokens ~ 1.6e12 FLOPs; attention adds little.
  const double f = cm.prefill_flops(100, 0);
  EXPECT_GT(f, 1.5e12);
  EXPECT_LT(f, 2.0e12);
}

TEST(CostModel, CachedPrefixReducesPrefill) {
  const CostModel cm(llama3_8b(), l4());
  const double cold = cm.prefill_seconds(1000, 0);
  const double warm = cm.prefill_seconds(200, 800);
  EXPECT_LT(warm, cold);
  // The saving is at least proportional to the skipped linear work.
  EXPECT_LT(warm, cold * 0.35);
}

TEST(CostModel, PrefillQuadraticTermGrowsWithContext) {
  const CostModel cm(llama3_8b(), l4());
  // Same new tokens, larger cached context -> more attention FLOPs.
  EXPECT_GT(cm.prefill_flops(100, 10000), cm.prefill_flops(100, 0));
}

TEST(CostModel, DecodeStepIsBandwidthBoundAtSmallBatch) {
  const CostModel cm(llama3_8b(), l4());
  // Single sequence: time ~ weights / bandwidth ~ 16GB / 210GB/s ~ 76ms.
  const double t = cm.decode_step_seconds({500});
  EXPECT_GT(t, 0.05);
  EXPECT_LT(t, 0.12);
}

TEST(CostModel, BatchingAmortizesWeightReads) {
  const CostModel cm(llama3_8b(), l4());
  const double single = cm.decode_step_seconds({500});
  std::vector<std::size_t> batch(32, 500);
  const double batched = cm.decode_step_seconds(batch);
  // 32x the tokens for well under 2x the step time.
  EXPECT_LT(batched, single * 2.0);
}

TEST(CostModel, LongContextsSlowDecode) {
  const CostModel cm(llama3_8b(), l4());
  std::vector<std::size_t> short_ctx(8, 100), long_ctx(8, 20000);
  EXPECT_GT(cm.decode_step_seconds(long_ctx),
            cm.decode_step_seconds(short_ctx));
}

TEST(CostModel, EmptyBatchFree) {
  const CostModel cm(llama3_8b(), l4());
  EXPECT_DOUBLE_EQ(cm.decode_step_seconds({}), 0.0);
}

TEST(CostModel, KvPoolSizes) {
  // 8B on one L4: ~5.5GB free for KV -> ~42K tokens.
  const CostModel small(llama3_8b(), l4());
  EXPECT_GT(small.kv_pool_tokens(), 30000u);
  EXPECT_LT(small.kv_pool_tokens(), 60000u);
  // 1B on one L4: far more headroom (the Table 7 mechanism).
  const CostModel tiny(llama3_1b(), l4());
  EXPECT_GT(tiny.kv_pool_tokens(), 8 * small.kv_pool_tokens());
  // 70B does not fit on a single L4 at all.
  const CostModel huge(llama3_70b(), l4());
  EXPECT_EQ(huge.kv_pool_tokens(), 0u);
  // ...but fits on 8xL4.
  const CostModel tp(llama3_70b(), l4_x8());
  EXPECT_GT(tp.kv_pool_tokens(), 50000u);
}

TEST(CostModel, PoolBlocks) {
  const CostModel cm(llama3_8b(), l4());
  EXPECT_EQ(cm.kv_pool_blocks(16), cm.kv_pool_tokens() / 16);
}

}  // namespace
}  // namespace llmq::llm
