#include "llm/engine_session.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace llmq::llm {
namespace {

ModelSpec tiny_model() {
  ModelSpec m;
  m.name = "tiny";
  m.params = 1e9;
  m.n_layers = 8;
  m.hidden_dim = 512;
  m.n_heads = 8;
  m.n_kv_heads = 8;
  m.head_dim = 64;
  m.dtype_bytes = 2;
  return m;
}

ServingEngine make_engine(std::size_t pool_blocks = 4096,
                          std::size_t max_batch = 8) {
  EngineConfig ec;
  ec.max_batch_size = max_batch;
  ec.block_size = 16;
  ec.kv_pool_blocks_override = pool_blocks;
  return ServingEngine(CostModel(tiny_model(), l4()), ec);
}

std::vector<Request> random_requests(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.row_tag = i;
    const std::size_t len = 20 + rng.next_below(60);
    // Shared 16-token stem so the prefix cache has something to find.
    for (std::size_t k = 0; k < len; ++k)
      r.prompt.push_back(
          k < 16 ? static_cast<tokenizer::TokenId>(k)
                 : static_cast<tokenizer::TokenId>(rng.next_below(1000)));
    r.output_tokens = 1 + rng.next_below(6);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(EngineSession, OutstandingPromptTokensTrackSubmitAndRetire) {
  const ServingEngine engine = make_engine();
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  EXPECT_EQ(session.outstanding_prompt_tokens(), 0u);

  const auto reqs = random_requests(6, 17);
  std::size_t total = 0;
  for (const auto& r : reqs) {
    total += r.prompt.size();
    session.submit(r);
    EXPECT_EQ(session.outstanding_prompt_tokens(), total);
  }
  // Outstanding covers pending AND running: admission must not change it.
  session.try_admit();
  EXPECT_EQ(session.outstanding_prompt_tokens(), total);

  std::size_t finished = 0;
  while (session.has_work()) {
    const auto ev = session.step();
    for (const auto& res : ev.completed) finished += res.prompt_tokens;
    EXPECT_EQ(session.outstanding_prompt_tokens(), total - finished);
  }
  EXPECT_EQ(session.outstanding_prompt_tokens(), 0u);
}

TEST(EngineSession, CacheAccessorExposesReadOnlyPeekPath) {
  const ServingEngine engine = make_engine();
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  auto reqs = random_requests(1, 18);
  const auto prompt = reqs[0].prompt;
  session.submit(std::move(reqs[0]));
  session.drain();
  // The session's cache handle sees what the run admitted; peeking it is
  // the router's affinity probe and must not move the stats.
  const auto before = session.cache().stats();
  const std::size_t full_blocks = prompt.size() / 16;
  EXPECT_EQ(session.cache().peek(prompt), full_blocks * 16);
  EXPECT_EQ(session.cache().stats().lookups, before.lookups);
}

TEST(EngineSession, DrainMatchesBatchRunExactly) {
  const ServingEngine engine = make_engine();
  const auto reqs = random_requests(40, 99);

  auto cache_a = engine.make_session_cache();
  ServingEngine mutable_engine = engine;
  const BatchRunResult batch = mutable_engine.run(reqs, cache_a);

  auto cache_b = engine.make_session_cache();
  EngineSession session(engine, cache_b);
  for (const auto& r : reqs) session.submit(r);
  const auto results = session.drain();
  const EngineMetrics m = session.metrics();

  ASSERT_EQ(results.size(), batch.results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].id, batch.results[i].id);
    EXPECT_EQ(results[i].cached_tokens, batch.results[i].cached_tokens);
    EXPECT_DOUBLE_EQ(results[i].admit_time, batch.results[i].admit_time);
    EXPECT_DOUBLE_EQ(results[i].finish_time, batch.results[i].finish_time);
    EXPECT_DOUBLE_EQ(results[i].first_token_time,
                     batch.results[i].first_token_time);
  }
  EXPECT_DOUBLE_EQ(m.total_seconds, batch.metrics.total_seconds);
  EXPECT_EQ(m.prompt_tokens, batch.metrics.prompt_tokens);
  EXPECT_EQ(m.cached_prompt_tokens, batch.metrics.cached_prompt_tokens);
  EXPECT_EQ(m.decode_steps, batch.metrics.decode_steps);
  EXPECT_EQ(m.cache.hit_tokens, batch.metrics.cache.hit_tokens);
}

TEST(EngineSession, StepByStepLifecycle) {
  const ServingEngine engine = make_engine();
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  EXPECT_FALSE(session.has_work());
  EXPECT_DOUBLE_EQ(session.now(), 0.0);

  Request r;
  r.id = 42;
  for (int k = 0; k < 30; ++k)
    r.prompt.push_back(static_cast<tokenizer::TokenId>(k));
  r.output_tokens = 3;
  session.submit(r);
  EXPECT_TRUE(session.has_work());
  EXPECT_EQ(session.num_pending(), 1u);

  // Step 1: admission (prefill advances the clock) + first token.
  auto ev = session.step();
  EXPECT_EQ(ev.admitted, 1u);
  EXPECT_TRUE(ev.completed.empty());
  EXPECT_EQ(session.num_running(), 1u);
  EXPECT_GT(session.now(), 0.0);

  // Two more decode steps finish the request.
  ev = session.step();
  EXPECT_TRUE(ev.completed.empty());
  ev = session.step();
  ASSERT_EQ(ev.completed.size(), 1u);
  const RequestResult& res = ev.completed[0];
  EXPECT_EQ(res.id, 42u);
  EXPECT_EQ(res.output_tokens, 3u);
  EXPECT_GT(res.admit_time, 0.0);
  EXPECT_GT(res.first_token_time, res.admit_time);
  EXPECT_GT(res.finish_time, res.first_token_time);
  EXPECT_FALSE(session.has_work());

  // A step with no work is a no-op.
  const double t = session.now();
  ev = session.step();
  EXPECT_EQ(ev.admitted, 0u);
  EXPECT_DOUBLE_EQ(session.now(), t);
}

TEST(EngineSession, AdvanceToOnlyWhenIdle) {
  const ServingEngine engine = make_engine();
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  session.advance_to(5.0);
  EXPECT_DOUBLE_EQ(session.now(), 5.0);
  session.advance_to(3.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(session.now(), 5.0);

  Request r;
  r.id = 1;
  for (int k = 0; k < 20; ++k)
    r.prompt.push_back(static_cast<tokenizer::TokenId>(k));
  session.submit(r);
  EXPECT_THROW(session.advance_to(10.0), std::logic_error);
  session.drain();
  session.advance_to(100.0);
  EXPECT_DOUBLE_EQ(session.now(), 100.0);
}

TEST(EngineSession, LateSubmissionsInterleaveWithExecution) {
  // The capability run() cannot express: submit, execute a while, submit
  // more, and the cache state carries over within one session.
  const ServingEngine engine = make_engine();
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  Request a;
  a.id = 1;
  for (int k = 0; k < 64; ++k)
    a.prompt.push_back(static_cast<tokenizer::TokenId>(k));
  a.output_tokens = 4;
  session.submit(a);
  session.step();  // admit + 1 token

  Request b = a;  // identical prompt: should hit the cache fully
  b.id = 2;
  session.submit(b);
  auto results = session.drain();
  ASSERT_EQ(results.size(), 2u);
  const auto& rb = results[0].id == 2 ? results[0] : results[1];
  EXPECT_EQ(rb.cached_tokens, 64u);  // whole (block-aligned) prompt cached
  EXPECT_GT(session.metrics().cache.hit_tokens, 0u);
}

TEST(EngineSession, DeferredAdmissionCountsExactlyOneLookupPerRequest) {
  // Regression: a request that waits K steps for KV memory used to count
  // K+1 lookups (each retry re-ran cache.lookup and kept its stats),
  // inflating lookups / hit_tokens / lookup_tokens under memory pressure.
  // With a pool sized so requests must queue, stats must still read one
  // lookup per admitted request, and the cache-side hit accounting must
  // equal the engine-side cached-token accounting.
  const ServingEngine engine = make_engine(/*pool_blocks=*/12,
                                           /*max_batch=*/8);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  const auto reqs = random_requests(10, 23);
  for (const auto& r : reqs) session.submit(r);
  // Step one at a time so deferred requests retry try_admit repeatedly.
  const auto results = session.drain();
  ASSERT_EQ(results.size(), reqs.size());

  const EngineMetrics m = session.metrics();
  EXPECT_EQ(m.cache.lookups, reqs.size());
  EXPECT_EQ(m.cache.hit_tokens, m.cached_prompt_tokens);
  std::uint64_t prompt_total = 0;
  for (const auto& r : reqs) prompt_total += r.prompt.size();
  EXPECT_EQ(m.cache.lookup_tokens, prompt_total);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(EngineSession, ThrowsWhenModelDoesNotFit) {
  ModelSpec huge = tiny_model();
  huge.params = 1e13;  // 20 TB of weights on a 24 GB card
  EngineConfig ec;
  ServingEngine engine(CostModel(huge, l4()), ec);
  auto cache = engine.make_session_cache();
  EXPECT_THROW(EngineSession(engine, cache), std::runtime_error);
}

}  // namespace
}  // namespace llmq::llm
