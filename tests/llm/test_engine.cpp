#include "llm/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace llmq::llm {
namespace {

tokenizer::TokenSeq iota_seq(std::size_t n, std::uint32_t start = 0) {
  tokenizer::TokenSeq s(n);
  std::iota(s.begin(), s.end(), start);
  return s;
}

Request make_request(std::uint64_t id, tokenizer::TokenSeq prompt,
                     std::size_t out_tokens) {
  Request r;
  r.id = id;
  r.prompt = std::move(prompt);
  r.output_tokens = out_tokens;
  r.row_tag = id;
  return r;
}

EngineConfig small_config(bool cache_on, std::size_t pool_blocks = 0) {
  EngineConfig c;
  c.max_batch_size = 8;
  c.block_size = 4;
  c.cache_enabled = cache_on;
  c.kv_pool_blocks_override = pool_blocks;
  return c;
}

ServingEngine make_engine(bool cache_on, std::size_t pool_blocks = 0) {
  return ServingEngine(CostModel(llama3_8b(), l4()),
                       small_config(cache_on, pool_blocks));
}

TEST(Engine, ModelMustFit) {
  ServingEngine e(CostModel(llama3_70b(), l4()), small_config(true));
  EXPECT_THROW(e.run({make_request(0, iota_seq(8), 2)}), std::runtime_error);
}

TEST(Engine, AllRequestsComplete) {
  auto e = make_engine(true);
  std::vector<Request> reqs;
  for (std::uint64_t i = 0; i < 20; ++i)
    reqs.push_back(make_request(i, iota_seq(40, static_cast<std::uint32_t>(i * 100)), 5));
  const auto run = e.run(reqs);
  EXPECT_EQ(run.results.size(), 20u);
  EXPECT_EQ(run.metrics.output_tokens, 100u);
  EXPECT_GT(run.metrics.total_seconds, 0.0);
  EXPECT_NEAR(run.metrics.total_seconds,
              run.metrics.prefill_seconds + run.metrics.decode_seconds, 1e-9);
}

TEST(Engine, NoCacheComputesEveryPromptToken) {
  auto e = make_engine(false);
  std::vector<Request> reqs;
  const auto shared = iota_seq(40);
  for (std::uint64_t i = 0; i < 10; ++i) reqs.push_back(make_request(i, shared, 3));
  const auto run = e.run(reqs);
  EXPECT_EQ(run.metrics.cached_prompt_tokens, 0u);
  EXPECT_EQ(run.metrics.computed_prompt_tokens, 400u);
}

TEST(Engine, IdenticalPromptsHitAfterFirst) {
  auto e = make_engine(true);
  std::vector<Request> reqs;
  const auto shared = iota_seq(40);  // 10 blocks of 4
  for (std::uint64_t i = 0; i < 10; ++i) reqs.push_back(make_request(i, shared, 3));
  const auto run = e.run(reqs);
  // 9 of 10 requests fully cached at block granularity.
  EXPECT_EQ(run.metrics.cached_prompt_tokens, 9u * 40u);
  EXPECT_GT(run.metrics.prompt_cache_hit_rate(), 0.85);
}

TEST(Engine, CachingReducesJobTime) {
  std::vector<Request> reqs;
  const auto shared = iota_seq(200);
  for (std::uint64_t i = 0; i < 30; ++i) {
    auto p = shared;
    p.push_back(static_cast<std::uint32_t>(10000 + i));  // unique tail
    reqs.push_back(make_request(i, std::move(p), 4));
  }
  const auto cold = make_engine(false).run(reqs);
  const auto warm = make_engine(true).run(reqs);
  EXPECT_LT(warm.metrics.total_seconds, cold.metrics.total_seconds);
  EXPECT_LT(warm.metrics.prefill_seconds, cold.metrics.prefill_seconds * 0.2);
}

TEST(Engine, ContinuousBatchingReachesConfiguredWidth) {
  auto e = make_engine(true);
  std::vector<Request> reqs;
  for (std::uint64_t i = 0; i < 32; ++i)
    reqs.push_back(make_request(i, iota_seq(20, static_cast<std::uint32_t>(i * 50)), 50));
  const auto run = e.run(reqs);
  EXPECT_EQ(run.metrics.peak_batch_size, 8u);  // max_batch_size
  EXPECT_GT(run.metrics.mean_batch_size(), 4.0);
}

TEST(Engine, MemoryPressureLimitsBatch) {
  // Pool of 30 blocks, each request needs ~11 private blocks (40 prompt
  // tokens uncacheable + 4 outputs) with cache off -> at most 2 in flight.
  auto e = make_engine(false, 30);
  std::vector<Request> reqs;
  for (std::uint64_t i = 0; i < 8; ++i)
    reqs.push_back(make_request(i, iota_seq(40, static_cast<std::uint32_t>(i * 100)), 4));
  const auto run = e.run(reqs);
  EXPECT_EQ(run.results.size(), 8u);
  EXPECT_LE(run.metrics.peak_batch_size, 2u);
}

TEST(Engine, SharedPrefixEnablesLargerBatchUnderPressure) {
  // Same memory budget: sharing the 40-token prompt leaves room for more
  // concurrent requests than no-cache.
  std::vector<Request> reqs;
  const auto shared = iota_seq(40);
  for (std::uint64_t i = 0; i < 8; ++i) reqs.push_back(make_request(i, shared, 16));
  const auto uncached = make_engine(false, 30).run(reqs);
  const auto cached = make_engine(true, 30).run(reqs);
  EXPECT_GT(cached.metrics.peak_batch_size, uncached.metrics.peak_batch_size);
  EXPECT_LT(cached.metrics.total_seconds, uncached.metrics.total_seconds);
}

TEST(Engine, SingleRequestTooLargeThrows) {
  auto e = make_engine(false, 5);  // 20 tokens of KV
  EXPECT_THROW(e.run({make_request(0, iota_seq(100), 4)}), std::runtime_error);
}

TEST(Engine, ResultsCarryTimingAndTags) {
  auto e = make_engine(true);
  const auto run = e.run({make_request(7, iota_seq(12), 3)});
  ASSERT_EQ(run.results.size(), 1u);
  const auto& r = run.results[0];
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.row_tag, 7u);
  EXPECT_EQ(r.prompt_tokens, 12u);
  EXPECT_EQ(r.output_tokens, 3u);
  EXPECT_GT(r.finish_time, r.admit_time);
}

TEST(Engine, ZeroOutputTreatedAsOne) {
  auto e = make_engine(true);
  const auto run = e.run({make_request(0, iota_seq(8), 0)});
  ASSERT_EQ(run.results.size(), 1u);
  EXPECT_EQ(run.results[0].output_tokens, 1u);
}

TEST(Engine, RunsAreIndependent) {
  auto e = make_engine(true);
  const auto reqs = std::vector<Request>{make_request(0, iota_seq(40), 3)};
  const auto first = e.run(reqs);
  const auto second = e.run(reqs);
  // Cold cache each run: identical results.
  EXPECT_DOUBLE_EQ(first.metrics.total_seconds, second.metrics.total_seconds);
  EXPECT_EQ(second.metrics.cached_prompt_tokens, 0u);
}

TEST(Engine, SessionCachePersistsAcrossRuns) {
  auto e = make_engine(true);
  auto cache = e.make_session_cache();
  std::vector<Request> reqs{make_request(0, iota_seq(40), 3)};
  const auto first = e.run(reqs, cache);
  EXPECT_EQ(first.metrics.cached_prompt_tokens, 0u);
  const auto second = e.run(reqs, cache);
  // The prompt's full blocks survive the first run.
  EXPECT_EQ(second.metrics.cached_prompt_tokens, 40u);
  EXPECT_LT(second.metrics.prefill_seconds, first.metrics.prefill_seconds);
  // Per-run cache stats are deltas, not session totals.
  EXPECT_EQ(second.metrics.cache.lookups, 1u);
  EXPECT_EQ(second.metrics.cache.inserted_blocks, 0u);
}

TEST(Engine, SessionCacheRespectsBudgetAcrossRuns) {
  auto e = make_engine(true, /*pool_blocks=*/30);
  auto cache = e.make_session_cache();
  for (std::uint32_t round = 0; round < 6; ++round) {
    std::vector<Request> reqs{
        make_request(round, iota_seq(40, round * 1000), 3)};
    e.run(reqs, cache);
    EXPECT_LE(cache.resident_blocks(), 30u);
  }
}

TEST(Engine, OrderingChangesHitRate) {
  // Alternating vs grouped identical prompts: grouped still hits (radix
  // cache persists), but with a tiny pool that evicts between groups the
  // interleaved order loses. Here we verify both orders hit with ample
  // memory, and the grouped order never does worse.
  std::vector<Request> grouped, interleaved;
  const auto a = iota_seq(40, 0), b = iota_seq(40, 1000);
  for (std::uint64_t i = 0; i < 6; ++i) {
    grouped.push_back(make_request(i, i < 3 ? a : b, 2));
    interleaved.push_back(make_request(i, (i % 2) ? b : a, 2));
  }
  const auto g = make_engine(true).run(grouped);
  const auto il = make_engine(true).run(interleaved);
  EXPECT_GE(g.metrics.cached_prompt_tokens, il.metrics.cached_prompt_tokens);
}

}  // namespace
}  // namespace llmq::llm
