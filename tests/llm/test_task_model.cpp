#include "llm/task_model.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace llmq::llm {
namespace {

TEST(TaskModel, SuccessProbabilityClampedAndCentered) {
  TaskModel m(profile_llama3_8b());
  const double base = m.profile().base_accuracy;
  EXPECT_DOUBLE_EQ(m.success_probability(0.5, 0.3), base);
  EXPECT_GT(m.success_probability(1.0, 0.3), base);
  EXPECT_LT(m.success_probability(0.0, 0.3), base);
  EXPECT_LE(m.success_probability(1.0, 10.0), 0.999);
  EXPECT_GE(m.success_probability(0.0, 10.0), 0.01);
}

TEST(TaskModel, RobustModelsBarelyMove) {
  TaskModel big(profile_llama3_70b());
  const double lo = big.success_probability(0.0, 0.3);
  const double hi = big.success_probability(1.0, 0.3);
  EXPECT_LT(hi - lo, 0.05);
  TaskModel small(profile_llama3_8b());
  EXPECT_GT(small.success_probability(1.0, 0.3) -
                small.success_probability(0.0, 0.3),
            hi - lo);
}

TEST(TaskModel, AnswerDeterministic) {
  TaskModel m(profile_llama3_8b());
  const std::vector<std::string> alts{"Yes", "No"};
  for (int i = 0; i < 20; ++i) {
    const std::string key = "row-" + std::to_string(i);
    EXPECT_EQ(m.answer(key, "Yes", alts, 0.5, 0.1),
              m.answer(key, "Yes", alts, 0.5, 0.1));
  }
}

TEST(TaskModel, AccuracyTracksProbability) {
  TaskModel m(profile_llama3_8b());
  const std::vector<std::string> alts{"Yes", "No"};
  int correct = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const std::string key = "sample-" + std::to_string(i);
    if (m.answer(key, "Yes", alts, 0.5, 0.0) == "Yes") ++correct;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, m.profile().base_accuracy,
              0.02);
}

TEST(TaskModel, PositionShiftMovesMeasuredAccuracy) {
  // FEVER-like task with strong sensitivity: accuracy at frac=1.0 should
  // exceed frac=0.0 by roughly susceptibility * sensitivity.
  TaskModel m(profile_llama3_8b());
  const std::vector<std::string> alts{"SUPPORTS", "REFUTES"};
  const double sens = 0.30;
  int early = 0, late = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const std::string key = "claim-" + std::to_string(i);
    if (m.answer(key, "SUPPORTS", alts, 0.0, sens) == "SUPPORTS") ++early;
    if (m.answer(key, "SUPPORTS", alts, 1.0, sens) == "SUPPORTS") ++late;
  }
  const double gap = static_cast<double>(late - early) / n;
  EXPECT_NEAR(gap, m.profile().position_susceptibility * sens, 0.02);
}

TEST(TaskModel, PairedFlips) {
  // A row that is correct at the *lower* probability must also be correct
  // at the higher one (the channel is a threshold on a fixed latent).
  TaskModel m(profile_llama3_8b());
  const std::vector<std::string> alts{"A", "B"};
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    const bool lo_ok = m.answer(key, "A", alts, 0.0, 0.3) == "A";
    const bool hi_ok = m.answer(key, "A", alts, 1.0, 0.3) == "A";
    if (lo_ok) {
      EXPECT_TRUE(hi_ok) << key;
    }
  }
}

TEST(TaskModel, WrongAnswerComesFromAlternatives) {
  ModelProfile p = profile_llama3_8b();
  p.base_accuracy = 0.01;  // essentially always wrong
  TaskModel m(p);
  const std::vector<std::string> alts{"Yes", "No"};
  int wrong_is_no = 0, total_wrong = 0;
  for (int i = 0; i < 200; ++i) {
    const auto a = m.answer("k" + std::to_string(i), "Yes", alts, 0.5, 0.0);
    if (a != "Yes") {
      ++total_wrong;
      if (a == "No") ++wrong_is_no;
    }
  }
  EXPECT_GT(total_wrong, 150);
  EXPECT_EQ(wrong_is_no, total_wrong);
}

TEST(TaskModel, NoAlternativesGarbles) {
  ModelProfile p = profile_llama3_8b();
  p.base_accuracy = 0.01;
  TaskModel m(p);
  bool saw_garbled = false;
  for (int i = 0; i < 100; ++i) {
    const auto a = m.answer("k" + std::to_string(i), "truth", {}, 0.5, 0.0);
    if (a != "truth") {
      saw_garbled = true;
      EXPECT_NE(a.find("garbled"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_garbled);
}

TEST(TaskModel, OutputTokensSpreadAroundMean) {
  TaskModel m(profile_llama3_8b());
  double sum = 0.0;
  std::size_t lo = SIZE_MAX, hi = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto t = m.output_tokens("r" + std::to_string(i), 40.0);
    sum += static_cast<double>(t);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_NEAR(sum / n, 40.0, 2.0);
  EXPECT_GE(lo, 30u);
  EXPECT_LE(hi, 50u);
}

TEST(TaskModel, OutputTokensFloorOne) {
  TaskModel m(profile_llama3_8b());
  EXPECT_GE(m.output_tokens("x", 0.1), 1u);
}

}  // namespace
}  // namespace llmq::llm
