// Chunked prefill + token-budget continuous batching (EngineSession).
//
// The contract under test: prefill_chunk_tokens == 0 keeps the monolithic
// admission prefill bit-exactly (the historical behavior the replay and
// equivalence suites pin); > 0 turns an admission into a prefill phase
// whose chunks interleave with decode steps, bounding the stall any
// in-flight decode sits through, admitting the prompt into the prefix
// cache incrementally at block-aligned boundaries, and keeping every
// token/lookup/pin ledger exactly-once across preempt/resume cycles.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "llm/engine_session.hpp"
#include "util/rng.hpp"

namespace llmq::llm {
namespace {

ModelSpec tiny_model() {
  ModelSpec m;
  m.name = "tiny";
  m.params = 1e9;
  m.n_layers = 8;
  m.hidden_dim = 512;
  m.n_heads = 8;
  m.n_kv_heads = 8;
  m.head_dim = 64;
  m.dtype_bytes = 2;
  return m;
}

ServingEngine make_engine(std::size_t chunk_tokens,
                          std::size_t pool_blocks = 4096,
                          std::size_t max_batch = 8,
                          bool preemption = false,
                          std::size_t step_budget = 0) {
  EngineConfig ec;
  ec.max_batch_size = max_batch;
  ec.block_size = 16;
  ec.kv_pool_blocks_override = pool_blocks;
  ec.preemption = preemption;
  ec.prefill_chunk_tokens = chunk_tokens;
  ec.step_token_budget = step_budget;
  return ServingEngine(CostModel(tiny_model(), l4()), ec);
}

Request make_request(std::uint64_t id, std::size_t prompt_len,
                     std::size_t output_tokens, PriorityClass cls,
                     std::uint32_t stem = 0) {
  Request r;
  r.id = id;
  r.priority = cls;
  r.output_tokens = output_tokens;
  for (std::size_t k = 0; k < prompt_len; ++k)
    r.prompt.push_back(static_cast<tokenizer::TokenId>(stem * 100000 + k));
  return r;
}

/// `shared_stem` > 0 prefixes every prompt with that many common tokens
/// (prefix-cache traffic); 0 makes all prompts pairwise divergent.
std::vector<Request> random_requests(std::size_t n, std::uint64_t seed,
                                     std::size_t shared_stem) {
  util::Rng rng(seed);
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    const std::size_t len =
        std::max<std::size_t>(shared_stem + 8, 24 + rng.next_below(200));
    for (std::size_t k = 0; k < len; ++k)
      r.prompt.push_back(
          k < shared_stem
              ? static_cast<tokenizer::TokenId>(k)
              : static_cast<tokenizer::TokenId>(1000 + i * 100000 +
                                                rng.next_below(1000)));
    r.output_tokens = 1 + rng.next_below(8);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

BatchRunResult run_batch(const ServingEngine& engine,
                         const std::vector<Request>& reqs) {
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  for (const auto& r : reqs) session.submit(r);
  BatchRunResult out;
  out.results = session.drain();
  out.metrics = session.metrics();
  EXPECT_EQ(cache.check_invariants(), "");
  return out;
}

TEST(CostModelChunking, ChunkScheduleTelescopesToMonolithicFlops) {
  const CostModel cm(tiny_model(), l4());
  // Sum over chunks of (t*c + t^2/2) with the context grown per chunk is
  // exactly the monolithic attended-position count, so the chunk schedule
  // costs the same seconds (modulo FP summation order).
  for (std::size_t chunk : {1u, 7u, 16u, 100u, 1000u}) {
    EXPECT_NEAR(cm.chunked_prefill_seconds(513, 64, chunk),
                cm.prefill_seconds(513, 64),
                1e-12 + 1e-9 * cm.prefill_seconds(513, 64))
        << "chunk=" << chunk;
  }
  EXPECT_EQ(cm.chunked_prefill_seconds(100, 0, 0), cm.prefill_seconds(100, 0));
  EXPECT_EQ(cm.chunked_prefill_seconds(0, 10, 8), 0.0);
}

TEST(ChunkedPrefill, DivergentPromptsMatchMonolithicAccountingExactly) {
  // With no prefix sharing the cache is irrelevant to WHAT gets computed,
  // so chunking must change only the schedule: every token counter and
  // per-request result matches the monolithic run, and the total prefill
  // seconds telescope to the same sum.
  const auto reqs = random_requests(24, 99, /*shared_stem=*/0);
  const auto mono = run_batch(make_engine(/*chunk=*/0), reqs);
  EXPECT_EQ(mono.metrics.prefill_chunks, 0u);
  EXPECT_EQ(mono.metrics.chunked_prefill_tokens, 0u);
  for (std::size_t chunk : {16u, 64u, 256u}) {
    const auto chk = run_batch(make_engine(chunk), reqs);
    EXPECT_EQ(chk.metrics.prompt_tokens, mono.metrics.prompt_tokens);
    EXPECT_EQ(chk.metrics.cached_prompt_tokens, 0u);
    EXPECT_EQ(chk.metrics.computed_prompt_tokens,
              mono.metrics.computed_prompt_tokens);
    EXPECT_EQ(chk.metrics.output_tokens, mono.metrics.output_tokens);
    EXPECT_EQ(chk.metrics.cache.lookups, mono.metrics.cache.lookups);
    // No preemption here: every chunk is first-pass work.
    EXPECT_EQ(chk.metrics.recompute_prefill_tokens, 0u);
    EXPECT_EQ(chk.metrics.chunked_prefill_tokens,
              chk.metrics.computed_prompt_tokens);
    EXPECT_GT(chk.metrics.prefill_chunks, 0u);
    // Same total prefill work, reordered (FP-summation tolerance).
    EXPECT_NEAR(chk.metrics.prefill_seconds, mono.metrics.prefill_seconds,
                1e-9 * mono.metrics.prefill_seconds + 1e-12);

    ASSERT_EQ(chk.results.size(), mono.results.size());
    std::map<std::uint64_t, RequestResult> by_id;
    for (const auto& r : mono.results) by_id[r.id] = r;
    for (const auto& r : chk.results) {
      const auto& m = by_id.at(r.id);
      EXPECT_EQ(r.prompt_tokens, m.prompt_tokens);
      EXPECT_EQ(r.cached_tokens, m.cached_tokens);
      EXPECT_EQ(r.computed_tokens, m.computed_tokens);
      EXPECT_EQ(r.output_tokens, m.output_tokens);
      EXPECT_EQ(r.preemptions, 0u);
    }
  }
}

TEST(ChunkedPrefill, SharedPrefixRunConservesPromptAccounting) {
  // With a shared stem the cache DOES move work between requests, and the
  // chunked schedule legitimately shifts how much each follower finds
  // cached (a same-round follower sees only the leader's chunk progress,
  // not its completed prefill). What must hold regardless: per-run
  // conservation — every prompt token was either a hit or first-pass
  // computed, chunk bookkeeping covers exactly the computed work, and
  // lookups stay one per request.
  const auto reqs = random_requests(24, 4242, /*shared_stem=*/48);
  const auto mono = run_batch(make_engine(/*chunk=*/0), reqs);
  for (std::size_t chunk : {16u, 64u}) {
    const auto chk = run_batch(make_engine(chunk), reqs);
    EXPECT_EQ(chk.metrics.prompt_tokens, mono.metrics.prompt_tokens);
    EXPECT_EQ(chk.metrics.output_tokens, mono.metrics.output_tokens);
    EXPECT_EQ(chk.metrics.cache.lookups, mono.metrics.cache.lookups);
    EXPECT_EQ(chk.metrics.cached_prompt_tokens +
                  chk.metrics.computed_prompt_tokens,
              chk.metrics.prompt_tokens);
    EXPECT_EQ(chk.metrics.chunked_prefill_tokens,
              chk.metrics.computed_prompt_tokens);
    EXPECT_GT(chk.metrics.cached_prompt_tokens, 0u);
  }
}

TEST(ChunkedPrefill, BoundsTheDecodeStallAMonolithicAdmissionCauses) {
  // A short interactive request is mid-decode when a very long prompt
  // arrives. Monolithic admission freezes its decode for the entire
  // prefill; chunking caps the gap near one chunk + one decode step.
  const auto run = [](std::size_t chunk) {
    const ServingEngine engine = make_engine(chunk, 1u << 14, 8);
    auto cache = engine.make_session_cache();
    EngineSession session(engine, cache);
    session.submit(make_request(1, 32, 64, PriorityClass::Standard, 1));
    session.step();  // admit + first decode token
    session.submit(make_request(2, 4096, 4, PriorityClass::Standard, 2));
    while (session.has_work()) session.step();
    return session.metrics();
  };
  const EngineMetrics mono = run(0);
  const EngineMetrics chk = run(128);
  EXPECT_GT(mono.max_decode_stall_seconds, 0.0);
  EXPECT_GT(chk.max_decode_stall_seconds, 0.0);
  // The monolithic stall is the whole 4096-token prefill; the chunked one
  // is ~128 tokens of prefill + a decode step. Require a big margin so
  // the test pins the mechanism, not a lucky constant.
  EXPECT_LT(chk.max_decode_stall_seconds,
            0.25 * mono.max_decode_stall_seconds);
}

TEST(ChunkedPrefill, PartiallyPrefilledPromptIsReusableByFollowers) {
  const std::size_t bs = 16;
  const ServingEngine engine = make_engine(/*chunk=*/64, 1u << 14);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  const Request leader = make_request(1, 1024, 4, PriorityClass::Standard, 7);
  session.submit(leader);
  session.step();  // admits; runs the first chunk
  // Mid-prefill, the chunk-boundary admits must already expose the
  // block-aligned progress to a read-only probe...
  const std::size_t mid = cache.peek(leader.prompt);
  EXPECT_GT(mid, 0u);
  EXPECT_LT(mid, 1024u);
  EXPECT_EQ(mid % bs, 0u);
  session.step();
  // ...and coverage grows chunk by chunk.
  EXPECT_GT(cache.peek(leader.prompt), mid);

  // A follower sharing the prompt admits against the partial prefix and
  // reports the hit, long before the leader finished prefilling.
  Request follower = leader;
  follower.id = 2;
  session.submit(follower);
  std::vector<RequestResult> done = session.drain();
  ASSERT_EQ(done.size(), 2u);
  for (const auto& r : done) {
    if (r.id == 2) {
      EXPECT_GT(r.cached_tokens, 0u);
    }
  }
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(ChunkedPrefill, StepBudgetSharesChunksAcrossConcurrentPrefills) {
  // Two long prompts prefilling concurrently: with a budget of exactly one
  // chunk per step, each step runs one chunk total; with a 2-chunk budget
  // both make progress per step and total steps drop.
  const auto steps_to_drain = [](std::size_t budget) {
    const ServingEngine engine =
        make_engine(/*chunk=*/64, 1u << 14, 8, false, budget);
    auto cache = engine.make_session_cache();
    EngineSession session(engine, cache);
    session.submit(make_request(1, 640, 2, PriorityClass::Standard, 1));
    session.submit(make_request(2, 640, 2, PriorityClass::Standard, 2));
    std::size_t steps = 0;
    while (session.has_work()) {
      session.step();
      ++steps;
    }
    return steps;
  };
  EXPECT_LT(steps_to_drain(128), steps_to_drain(64));
}

TEST(ChunkedPrefill, PreemptDuringPrefillKeepsLedgersExactlyOnce) {
  // max_batch_size 1 forces slot preemption: a batch-class long prompt is
  // mid-prefill when an interactive request arrives and evicts it. The
  // victim's resume must replay through the cache with no double-counted
  // lookup/hit stats, the pin ledger must balance at every step, and
  // first-pass + recompute chunk work must sum to chunked_prefill_tokens.
  const ServingEngine engine =
      make_engine(/*chunk=*/32, 1u << 14, /*max_batch=*/1, /*preemption=*/true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 512, 4, PriorityClass::Batch, 1));
  session.step();  // admit the batch request; first prefill chunk runs
  ASSERT_EQ(session.num_running(), 1u);
  session.submit(make_request(2, 64, 2, PriorityClass::Interactive, 2));

  std::size_t completed = 0;
  std::size_t victim_preemptions = 0;
  while (session.has_work()) {
    const auto ev = session.step();
    ASSERT_EQ(cache.check_invariants(), "") << "pin ledger broke mid-run";
    for (const auto& res : ev.completed) {
      ++completed;
      if (res.id == 1) victim_preemptions = res.preemptions;
    }
  }
  EXPECT_EQ(completed, 2u);
  EXPECT_GE(victim_preemptions, 1u);

  const EngineMetrics m = session.metrics();
  // Exactly-once: one lookup per request despite the preempt/resume cycle,
  // prompt counters booked at first admission only.
  EXPECT_EQ(m.cache.lookups, 2u);
  EXPECT_EQ(m.prompt_tokens, 512u + 64u);
  // Every chunk booked exactly once, to first-pass OR recompute, and every
  // prompt position computed exactly once across the preempt/resume cycle
  // — so prompt conservation holds even under preemption.
  EXPECT_EQ(m.chunked_prefill_tokens,
            m.computed_prompt_tokens + m.recompute_prefill_tokens);
  EXPECT_EQ(m.cached_prompt_tokens + m.computed_prompt_tokens,
            m.prompt_tokens);
  // Block-aligned chunks (32 = 2 blocks) admit everything they prefill,
  // and the victim had not decoded yet: the preemption wasted NO work, and
  // the recompute ledger says so.
  EXPECT_EQ(m.recompute_prefill_tokens, 0u);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(ChunkedPrefill, UnalignedChunkPreemptionReplaysOnlyTheLostTail) {
  // chunk = 24 on 16-token blocks: each chunk strands up to 8 tokens past
  // the last block boundary. A preemption mid-prefill loses exactly that
  // unadmitted tail — the recompute ledger must show the stranded tokens
  // (and only them) while prompt conservation still holds.
  const ServingEngine engine =
      make_engine(/*chunk=*/24, 1u << 14, /*max_batch=*/1, /*preemption=*/true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  session.submit(make_request(1, 512, 4, PriorityClass::Batch, 1));
  session.step();  // one 24-token chunk; only 16 tokens hit the cache
  session.submit(make_request(2, 64, 2, PriorityClass::Interactive, 2));
  while (session.has_work()) {
    session.step();
    ASSERT_EQ(cache.check_invariants(), "");
  }

  const EngineMetrics m = session.metrics();
  EXPECT_GT(m.preemptions, 0u);
  // The stranded 8 tokens were prefilled twice: once as first-pass before
  // the preemption, once as replay after it.
  EXPECT_EQ(m.recompute_prefill_tokens, 8u);
  EXPECT_EQ(m.cached_prompt_tokens + m.computed_prompt_tokens,
            m.prompt_tokens);
  EXPECT_EQ(m.chunked_prefill_tokens,
            m.computed_prompt_tokens + m.recompute_prefill_tokens);
}

TEST(ChunkedPrefill, ExplicitPreemptDuringPrefillReleasesReservation) {
  // Park a request mid-prefill via the public preempt(); its shared-block
  // reservation and private blocks must be returned (another long prompt
  // can then admit), and resume() completes it with balanced ledgers.
  const ServingEngine engine = make_engine(/*chunk=*/32, 256, 4);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  // 256-block pool; 200*16=3200-token prompt needs 200 shared blocks.
  session.submit(make_request(1, 3200, 2, PriorityClass::Standard, 1));
  session.step();
  ASSERT_EQ(session.num_running(), 1u);
  ASSERT_TRUE(session.preempt(1));
  EXPECT_EQ(session.num_parked(), 1u);

  // With the reservation released, an equally long prompt fits (the
  // victim's already-admitted blocks are unpinned and evictable).
  session.submit(make_request(2, 3200, 2, PriorityClass::Standard, 2));
  std::size_t completed = 0;
  while (session.has_work()) {
    completed += session.step().completed.size();
    ASSERT_EQ(cache.check_invariants(), "");
  }
  EXPECT_EQ(completed, 1u);  // request 2; request 1 is still parked
  ASSERT_TRUE(session.resume(1));
  const auto done = session.drain();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, 1u);
  EXPECT_EQ(session.metrics().cache.lookups, 2u);
  EXPECT_EQ(cache.check_invariants(), "");
}

TEST(ChunkedPrefill, SharedPromptPreemptResumeStillConservesAccounting) {
  // The adversarial sharing case: victim A is preempted mid-prefill and
  // the preemptor B carries the IDENTICAL prompt, so B fills the cache
  // past A's prefill line while A is parked. A's resume finds the whole
  // prompt cached and skips to decode — those positions must be booked as
  // cache hits (they were computed once, by B) or cached + computed
  // silently loses them.
  const ServingEngine engine =
      make_engine(/*chunk=*/32, 1u << 14, /*max_batch=*/1, /*preemption=*/true);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);

  const Request a = make_request(1, 512, 4, PriorityClass::Batch, 9);
  session.submit(a);
  session.step();  // one chunk of A's prefill
  Request b = a;
  b.id = 2;
  b.priority = PriorityClass::Interactive;
  b.output_tokens = 2;
  session.submit(b);  // preempts A, prefills the same prompt fully

  std::size_t completed = 0;
  while (session.has_work()) {
    completed += session.step().completed.size();
    ASSERT_EQ(cache.check_invariants(), "");
  }
  EXPECT_EQ(completed, 2u);

  const EngineMetrics m = session.metrics();
  EXPECT_EQ(m.prompt_tokens, 1024u);
  EXPECT_EQ(m.cached_prompt_tokens + m.computed_prompt_tokens,
            m.prompt_tokens);
  EXPECT_EQ(m.chunked_prefill_tokens,
            m.computed_prompt_tokens + m.recompute_prefill_tokens);
  // Each of the 512 positions was computed exactly once fleet-wide (A's
  // first chunk + B's remainder); nothing was wasted, nothing replayed.
  EXPECT_EQ(m.computed_prompt_tokens, 512u);
  EXPECT_EQ(m.recompute_prefill_tokens, 0u);
}

TEST(ChunkedPrefill, FullyCachedAdmissionSkipsThePrefillPhase) {
  const ServingEngine engine = make_engine(/*chunk=*/32, 1u << 14);
  auto cache = engine.make_session_cache();
  EngineSession session(engine, cache);
  // Block-aligned prompt: after the leader, a duplicate is 100% cached and
  // must start decoding on its very first step (no prefill phase).
  const Request leader = make_request(1, 128, 2, PriorityClass::Standard, 3);
  session.submit(leader);
  session.drain();
  Request dup = leader;
  dup.id = 2;
  session.submit(dup);
  const auto ev = session.step();
  EXPECT_EQ(ev.admitted, 1u);
  const auto done = session.drain();
  const EngineMetrics m = session.metrics();
  EXPECT_EQ(m.cached_prompt_tokens, 128u);
  EXPECT_EQ(cache.check_invariants(), "");
  (void)done;
}

}  // namespace
}  // namespace llmq::llm
