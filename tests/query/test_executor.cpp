#include "query/executor.hpp"

#include <gtest/gtest.h>

#include "query/llm_operator.hpp"
#include "query/metrics.hpp"

namespace llmq::query {
namespace {

data::GenOptions small(std::size_t n = 120) {
  data::GenOptions o;
  o.n_rows = n;
  o.seed = 11;
  return o;
}

TEST(KeyFieldFraction, PositionsAndFallbacks) {
  const auto schema = table::Schema::of_names({"a", "b", "c"});
  const std::size_t first[] = {0, 1, 2};
  const std::size_t last[] = {1, 2, 0};
  EXPECT_DOUBLE_EQ(key_field_fraction(schema, first, "a"), 0.0);
  EXPECT_DOUBLE_EQ(key_field_fraction(schema, last, "a"), 1.0);
  EXPECT_DOUBLE_EQ(key_field_fraction(schema, first, "b"), 0.5);
  EXPECT_DOUBLE_EQ(key_field_fraction(schema, first, "missing"), 0.5);
  EXPECT_DOUBLE_EQ(key_field_fraction(schema, first, ""), 0.5);
}

TEST(Executor, FilterQueryRunsAllArms) {
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-filter");
  for (Method m : {Method::NoCache, Method::CacheOriginal, Method::CacheGgr}) {
    const auto r = run_query(d, spec, ExecConfig::standard(m));
    EXPECT_GT(r.total_seconds, 0.0) << to_string(m);
    EXPECT_EQ(r.stages.size(), 1u);
    EXPECT_EQ(r.stages[0].rows, 120u);
    EXPECT_GT(r.rows_selected, 0u);
    EXPECT_LT(r.rows_selected, 120u);
  }
}

TEST(Executor, GgrBeatsOriginalWhichBeatsNoCache) {
  const auto d = data::generate_movies(small(200));
  const auto& spec = data::query_by_id("movies-filter");
  const auto cmp = compare_methods(d, spec, llm::llama3_8b(), llm::l4(),
                                   200.0 / data::paper_rows("movies"));
  EXPECT_GT(cmp.speedup_vs_no_cache(), 1.0);
  EXPECT_GT(cmp.speedup_vs_original(), 1.0);
  EXPECT_GE(cmp.original_vs_no_cache(), 1.0);
  EXPECT_GT(cmp.cache_ggr.overall_phr(), cmp.cache_original.overall_phr());
}

TEST(Executor, AnswersStableAcrossCachingArms) {
  // Caching must not change semantics: NoCache and CacheOriginal share the
  // ordering, so answers are identical. (GGR may differ slightly — that is
  // the Fig 6 experiment.)
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-filter");
  const auto a = run_query(d, spec, ExecConfig::standard(Method::NoCache));
  const auto b =
      run_query(d, spec, ExecConfig::standard(Method::CacheOriginal));
  EXPECT_EQ(a.answers, b.answers);
  EXPECT_EQ(a.rows_selected, b.rows_selected);
}

TEST(Executor, ProjectionUsesSpecFields) {
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-projection");
  const auto r =
      run_query(d, spec, ExecConfig::standard(Method::CacheGgr));
  EXPECT_EQ(r.rows_selected, d.table.num_rows());
  // Long decode: output tokens dominate per-request work.
  EXPECT_GT(r.stages[0].engine.output_tokens, 20u * d.table.num_rows());
}

TEST(Executor, AggregationProducesValueInRange) {
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-aggregation");
  const auto r = run_query(d, spec, ExecConfig::standard(Method::CacheGgr));
  EXPECT_GE(r.aggregate, 1.0);
  EXPECT_LE(r.aggregate, 5.0);
  EXPECT_EQ(r.rows_selected, d.table.num_rows());
}

TEST(Executor, MultiLlmRunsTwoStages) {
  const auto d = data::generate_movies(small(200));
  const auto& spec = data::query_by_id("movies-multi");
  const auto r = run_query(d, spec, ExecConfig::standard(Method::CacheGgr));
  ASSERT_EQ(r.stages.size(), 2u);
  EXPECT_EQ(r.stages[0].rows, 200u);
  EXPECT_EQ(r.stages[1].rows, r.rows_selected);
  EXPECT_GT(r.rows_selected, 0u);
  EXPECT_NEAR(r.total_seconds,
              r.stages[0].engine.total_seconds + r.stages[1].engine.total_seconds,
              1e-9);
}

TEST(Executor, SessionCacheStatsAttributionAcrossStages) {
  // Regression for the shared session-cache path (multi-LLM queries):
  // each stage's cache stats must be that stage's *delta* — exactly one
  // lookup per row, hit tokens equal to the engine's cached-token count,
  // lookup tokens equal to the engine's prompt-token count — even with
  // the KV pool oversubscribed, where stage-2 admissions stall against
  // stage-1's resident blocks and retry. (Before the cancel_lookup fix,
  // every retry re-counted the lookup, so stalled stages reported
  // inflated lookup and hit-token stats.)
  const auto d = data::generate_movies(small(200));
  const auto& spec = data::query_by_id("movies-multi");
  ExecConfig cfg = ExecConfig::standard(Method::CacheGgr);
  cfg.scale_kv_pool(200.0 / static_cast<double>(data::paper_rows("movies")));
  const auto r = run_query(d, spec, cfg);
  ASSERT_EQ(r.stages.size(), 2u);
  for (std::size_t s = 0; s < r.stages.size(); ++s) {
    const auto& st = r.stages[s];
    EXPECT_EQ(st.engine.cache.lookups, st.rows) << "stage " << s;
    EXPECT_EQ(st.engine.cache.hit_tokens, st.engine.cached_prompt_tokens)
        << "stage " << s;
    EXPECT_EQ(st.engine.cache.lookup_tokens, st.engine.prompt_tokens)
        << "stage " << s;
  }
}

TEST(Executor, RagQueryRuns) {
  const auto d = data::generate_fever(small(150));
  const auto& spec = data::query_by_id("fever-rag");
  const auto cmp = compare_methods(d, spec, llm::llama3_8b(), llm::l4(),
                                   150.0 / data::paper_rows("fever"));
  EXPECT_GT(cmp.speedup_vs_original(), 1.0);
}

TEST(Executor, SolverOverheadRecordedForGgr) {
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-filter");
  const auto r = run_query(d, spec, ExecConfig::standard(Method::CacheGgr));
  EXPECT_GE(r.solver_seconds, 0.0);
  // Solver wall-clock must be negligible vs simulated job time at scale.
  EXPECT_LT(r.solver_seconds, 10.0);
}

TEST(Executor, FormatSpeedup) {
  EXPECT_EQ(format_speedup(3.42), "3.4x");
  EXPECT_EQ(format_speedup(1.0), "1.0x");
}

}  // namespace
}  // namespace llmq::query
