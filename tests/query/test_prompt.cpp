#include "query/prompt.hpp"

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace llmq::query {
namespace {

table::Table sample() {
  table::Table t(table::Schema::of_names({"a", "b"}));
  t.append_row({"va", "vb"});
  t.append_row({"va", "other"});
  return t;
}

PromptTemplate tmpl() {
  return PromptTemplate{"You are a data analyst.", "Is it good?"};
}

TEST(Prompt, InstructionPrefixLayout) {
  const auto p = render_instruction_prefix(tmpl());
  EXPECT_TRUE(util::starts_with(p, "You are a data analyst."));
  EXPECT_TRUE(util::contains(p, "Answer the below query:\nIs it good?"));
  EXPECT_TRUE(util::contains(p, "Given the following data:"));
}

TEST(Prompt, RowJsonRespectsFieldOrder) {
  const auto t = sample();
  const std::size_t fo1[] = {0, 1};
  const std::size_t fo2[] = {1, 0};
  EXPECT_EQ(render_row_json(t, 0, fo1), R"({"a":"va","b":"vb"})");
  EXPECT_EQ(render_row_json(t, 0, fo2), R"({"b":"vb","a":"va"})");
}

TEST(Prompt, JsonEscapesCellContent) {
  table::Table t(table::Schema::of_names({"x"}));
  t.append_row({"line\nwith \"quotes\""});
  const std::size_t fo[] = {0};
  EXPECT_EQ(render_row_json(t, 0, fo), R"({"x":"line\nwith \"quotes\""})");
}

TEST(Prompt, FullPromptConcatenation) {
  const auto t = sample();
  const std::size_t fo[] = {0, 1};
  const auto p = render_prompt(tmpl(), t, 0, fo);
  EXPECT_TRUE(util::contains(p, R"({"a":"va","b":"vb"})"));
  EXPECT_TRUE(util::starts_with(p, "You are a data analyst."));
}

TEST(PromptEncoder, SharedInstructionPrefixAligns) {
  const auto t = sample();
  const PromptEncoder enc(tmpl());
  const std::size_t fo[] = {0, 1};
  const auto p0 = enc.encode(t, 0, fo);
  const auto p1 = enc.encode(t, 1, fo);
  // Both prompts share the instruction prefix plus the common leading cell.
  const auto shared = tokenizer::common_prefix_len(p0, p1);
  EXPECT_GE(shared, enc.instruction_tokens());
  EXPECT_GT(shared, 0u);
  EXPECT_LT(shared, p0.size());
}

TEST(PromptEncoder, FieldOrderChangesSuffixNotPrefix) {
  const auto t = sample();
  const PromptEncoder enc(tmpl());
  const std::size_t fo1[] = {0, 1};
  const std::size_t fo2[] = {1, 0};
  const auto a = enc.encode(t, 0, fo1);
  const auto b = enc.encode(t, 0, fo2);
  const auto shared = tokenizer::common_prefix_len(a, b);
  EXPECT_GE(shared, enc.instruction_tokens());
  EXPECT_NE(a, b);
}

TEST(PromptEncoder, TokenCountTracksTextLength) {
  const auto t = sample();
  const PromptEncoder enc(tmpl());
  const std::size_t fo[] = {0, 1};
  const auto toks = enc.encode(t, 0, fo);
  EXPECT_GT(toks.size(), enc.instruction_tokens());
}

}  // namespace
}  // namespace llmq::query
