// The threaded-runtime determinism property: run_online_threaded produces
// a bit-identical OnlineRunResult to the single-threaded virtual-clock
// oracle across replicas x preemption x chunking x seeds — every request
// field, latency/per-class summary, engine + cache ledger, the emitted
// ordering, PHC, and load imbalance. solve_seconds is planner wall clock
// and the one field excluded from comparison.
//
// Trace byte-identity and gauge time-series equality are pinned against
// run_online_replicated: the n == 1 run_online takes the session path,
// which (by design) emits no RouteDecision events, while the threaded
// runtime always routes — replicated(1) == run_online(1) is already
// pinned in tests/router.

#include "serve/threaded_fleet.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/online.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table groupy_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back("value_" + std::string(1, static_cast<char>(
                                                  'a' + rng.next_below(
                                                            alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 2.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.kv_pool_blocks_override = 2048;  // ample, deterministic
  return cfg;
}

std::vector<Arrival> stream_over(std::size_t n, double rate,
                                 std::uint64_t seed,
                                 std::size_t n_tenants = 1,
                                 bool classed = false) {
  WorkloadOptions w;
  w.arrival_rate = rate;
  w.seed = seed;
  w.n_tenants = n_tenants;
  if (classed)
    w.tenant_classes = {llm::PriorityClass::Interactive,
                        llm::PriorityClass::Standard,
                        llm::PriorityClass::Batch};
  return generate_arrivals(n, w);
}

// ---- Field-wise equality helpers (exact; no tolerances). ----

void expect_cache_eq(const cache::CacheStats& a, const cache::CacheStats& b,
                     const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.hit_tokens, b.hit_tokens);
  EXPECT_EQ(a.lookup_tokens, b.lookup_tokens);
  EXPECT_EQ(a.inserted_blocks, b.inserted_blocks);
  EXPECT_EQ(a.evicted_blocks, b.evicted_blocks);
}

void expect_engine_eq(const llm::EngineMetrics& a, const llm::EngineMetrics& b,
                      const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.prefill_seconds, b.prefill_seconds);
  EXPECT_DOUBLE_EQ(a.decode_seconds, b.decode_seconds);
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens);
  EXPECT_EQ(a.cached_prompt_tokens, b.cached_prompt_tokens);
  EXPECT_EQ(a.computed_prompt_tokens, b.computed_prompt_tokens);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_DOUBLE_EQ(a.sum_batch_size, b.sum_batch_size);
  EXPECT_EQ(a.peak_batch_size, b.peak_batch_size);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.recompute_prefill_tokens, b.recompute_prefill_tokens);
  EXPECT_DOUBLE_EQ(a.recompute_prefill_seconds, b.recompute_prefill_seconds);
  EXPECT_EQ(a.prefill_chunks, b.prefill_chunks);
  EXPECT_EQ(a.chunked_prefill_tokens, b.chunked_prefill_tokens);
  EXPECT_DOUBLE_EQ(a.max_decode_stall_seconds, b.max_decode_stall_seconds);
  expect_cache_eq(a.cache, b.cache, "cache");
}

void expect_latency_eq(const LatencySummary& a, const LatencySummary& b,
                       const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean_ttft, b.mean_ttft);
  EXPECT_DOUBLE_EQ(a.p50_ttft, b.p50_ttft);
  EXPECT_DOUBLE_EQ(a.p90_ttft, b.p90_ttft);
  EXPECT_DOUBLE_EQ(a.p95_ttft, b.p95_ttft);
  EXPECT_DOUBLE_EQ(a.p99_ttft, b.p99_ttft);
  EXPECT_DOUBLE_EQ(a.mean_queue_delay, b.mean_queue_delay);
  EXPECT_DOUBLE_EQ(a.p90_queue_delay, b.p90_queue_delay);
  EXPECT_DOUBLE_EQ(a.p99_queue_delay, b.p99_queue_delay);
  EXPECT_DOUBLE_EQ(a.mean_itl, b.mean_itl);
  EXPECT_DOUBLE_EQ(a.p50_itl, b.p50_itl);
  EXPECT_DOUBLE_EQ(a.p90_itl, b.p90_itl);
  EXPECT_DOUBLE_EQ(a.p99_itl, b.p99_itl);
  EXPECT_DOUBLE_EQ(a.p50_e2e, b.p50_e2e);
  EXPECT_DOUBLE_EQ(a.p99_e2e, b.p99_e2e);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_DOUBLE_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_DOUBLE_EQ(a.ttft_slo, b.ttft_slo);
}

void expect_requests_eq(const std::vector<ServedRequest>& a,
                        const std::vector<ServedRequest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_EQ(a[i].replica, b[i].replica);
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_DOUBLE_EQ(a[i].dispatch_time, b[i].dispatch_time);
    EXPECT_DOUBLE_EQ(a[i].admit_time, b[i].admit_time);
    EXPECT_DOUBLE_EQ(a[i].first_token_time, b[i].first_token_time);
    EXPECT_DOUBLE_EQ(a[i].finish_time, b[i].finish_time);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].cached_tokens, b[i].cached_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    EXPECT_EQ(a[i].deduped, b[i].deduped);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].preemptions, b[i].preemptions);
    EXPECT_EQ(a[i].recomputed_tokens, b[i].recomputed_tokens);
    EXPECT_EQ(a[i].session, b[i].session);
    EXPECT_EQ(a[i].turn, b[i].turn);
  }
}

void expect_ordering_eq(const core::Ordering& a, const core::Ordering& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    SCOPED_TRACE("emitted position " + std::to_string(i));
    EXPECT_EQ(a.row_at(i), b.row_at(i));
    EXPECT_EQ(a.fields_at(i), b.fields_at(i));
  }
}

/// Everything except solve_seconds (planner wall clock).
void expect_result_eq(const OnlineRunResult& a, const OnlineRunResult& b) {
  expect_requests_eq(a.requests, b.requests);
  expect_latency_eq(a.latency, b.latency, "aggregate latency");
  expect_engine_eq(a.engine, b.engine, "aggregate engine");
  EXPECT_EQ(a.windows, b.windows);
  expect_ordering_eq(a.emitted, b.emitted);
  EXPECT_DOUBLE_EQ(a.phc, b.phc);
  EXPECT_EQ(a.per_tenant, b.per_tenant);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t r = 0; r < a.replicas.size(); ++r) {
    SCOPED_TRACE("replica " + std::to_string(r));
    EXPECT_EQ(a.replicas[r].requests, b.replicas[r].requests);
    EXPECT_EQ(a.replicas[r].routed_prompt_tokens,
              b.replicas[r].routed_prompt_tokens);
    expect_engine_eq(a.replicas[r].engine, b.replicas[r].engine,
                     "replica engine");
  }
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    SCOPED_TRACE("class " + std::to_string(c));
    EXPECT_EQ(a.per_class[c].priority, b.per_class[c].priority);
    EXPECT_EQ(a.per_class[c].requests, b.per_class[c].requests);
    EXPECT_EQ(a.per_class[c].preemptions, b.per_class[c].preemptions);
    EXPECT_EQ(a.per_class[c].recomputed_tokens,
              b.per_class[c].recomputed_tokens);
    expect_latency_eq(a.per_class[c].latency, b.per_class[c].latency,
                      "class latency");
  }
  EXPECT_EQ(a.per_query.size(), b.per_query.size());
  EXPECT_EQ(a.dedup.leaders, b.dedup.leaders);
  EXPECT_EQ(a.dedup.hits, b.dedup.hits);
  EXPECT_EQ(a.dedup.saved_prompt_tokens, b.dedup.saved_prompt_tokens);
  EXPECT_EQ(a.dedup.saved_output_tokens, b.dedup.saved_output_tokens);
  EXPECT_DOUBLE_EQ(a.load_imbalance, b.load_imbalance);
}

void expect_trace_eq(const obs::TraceLog& a, const obs::TraceLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("trace event " + std::to_string(i));
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].cls, b.events()[i].cls);
    EXPECT_EQ(a.events()[i].replica, b.events()[i].replica);
    EXPECT_DOUBLE_EQ(a.events()[i].time, b.events()[i].time);
    EXPECT_EQ(a.events()[i].id, b.events()[i].id);
    EXPECT_EQ(a.events()[i].a, b.events()[i].a);
    EXPECT_EQ(a.events()[i].b, b.events()[i].b);
    EXPECT_EQ(a.events()[i].c, b.events()[i].c);
  }
}

void expect_timeseries_eq(const obs::TimeSeries& a, const obs::TimeSeries& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.replica, b.replica);
  EXPECT_EQ(a.kv_resident_blocks, b.kv_resident_blocks);
  EXPECT_EQ(a.kv_private_blocks, b.kv_private_blocks);
  EXPECT_EQ(a.kv_reserved_blocks, b.kv_reserved_blocks);
  EXPECT_EQ(a.kv_pinned_blocks, b.kv_pinned_blocks);
  EXPECT_EQ(a.pending_interactive, b.pending_interactive);
  EXPECT_EQ(a.pending_standard, b.pending_standard);
  EXPECT_EQ(a.pending_batch, b.pending_batch);
  EXPECT_EQ(a.running_prefill, b.running_prefill);
  EXPECT_EQ(a.running_decode, b.running_decode);
  EXPECT_EQ(a.parked, b.parked);
  EXPECT_EQ(a.outstanding_prompt_tokens, b.outstanding_prompt_tokens);
  EXPECT_EQ(a.rolling_phr, b.rolling_phr);
}

// ---- The determinism property. ----

struct MatrixCase {
  std::size_t replicas;
  bool preemption;
  std::size_t chunk;
  std::uint64_t seed;
};

// replicas {1,2,4,8} x preemption {off,on} x chunk {0,64}, a distinct
// seed per cell — 16 seeded configurations (>= the 12 the acceptance
// criterion asks for), each exercising multi-tenant, multi-class traffic
// with a pool tight enough to evict (and preempt when enabled).
std::vector<MatrixCase> property_matrix() {
  std::vector<MatrixCase> cases;
  std::uint64_t seed = 101;
  for (std::size_t replicas : {1u, 2u, 4u, 8u})
    for (bool preemption : {false, true})
      for (std::size_t chunk : {0u, 64u})
        cases.push_back({replicas, preemption, chunk, seed++});
  return cases;
}

OnlineConfig matrix_config(const MatrixCase& mc) {
  OnlineConfig cfg = small_config();
  cfg.n_replicas = mc.replicas;
  cfg.router = RouterPolicy::PrefixAffinity;
  cfg.scheduler.window_rows = 8;
  cfg.scheduler.max_wait_seconds = 0.15;
  cfg.ttft_slo_seconds = 0.25;
  cfg.engine.preemption = mc.preemption;
  cfg.engine.prefill_chunk_tokens = mc.chunk;
  // Tight pool per replica: forces LRU eviction, and preemption when on.
  cfg.engine.kv_pool_blocks_override = mc.preemption ? 96 : 256;
  if (mc.preemption) cfg.engine.priority_aging_seconds = 1.0;
  return cfg;
}

TEST(ThreadedFleetProperty, BitIdenticalToVirtualClockAcrossMatrix) {
  util::Rng rng(7);
  const Table t = groupy_table(rng, 64, 3, 3);
  const table::FdSet fds;
  std::uint64_t preemptions_seen = 0;
  std::uint64_t chunks_seen = 0;
  for (const MatrixCase& mc : property_matrix()) {
    SCOPED_TRACE("replicas=" + std::to_string(mc.replicas) +
                 " preemption=" + std::to_string(mc.preemption) +
                 " chunk=" + std::to_string(mc.chunk) +
                 " seed=" + std::to_string(mc.seed));
    const OnlineConfig cfg = matrix_config(mc);
    const auto arrivals = stream_over(64, 40.0, mc.seed, 6, true);
    const OnlineRunResult oracle = run_online(t, fds, arrivals, cfg);
    const OnlineRunResult threaded =
        run_online_threaded(t, fds, arrivals, cfg);
    expect_result_eq(oracle, threaded);
    ASSERT_EQ(oracle.requests.size(), arrivals.size());
    if (mc.preemption) preemptions_seen += oracle.engine.preemptions;
    if (mc.chunk > 0) chunks_seen += oracle.engine.prefill_chunks;
  }
  // The matrix must actually exercise the machinery it claims to pin
  // (high replica counts legitimately spread load below the preemption
  // threshold; the tight 1-2 replica cells must trigger it).
  EXPECT_GT(preemptions_seen, 0u);
  EXPECT_GT(chunks_seen, 0u);
}

TEST(ThreadedFleetProperty, UnstripedCacheAlsoBitIdentical) {
  // lock_stripes = 0 routes the threaded fleet through the original
  // single-tree cache path; determinism must not depend on striping.
  util::Rng rng(9);
  const Table t = groupy_table(rng, 48, 3, 3);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.n_replicas = 4;
  cfg.scheduler.window_rows = 8;
  cfg.scheduler.max_wait_seconds = 0.1;
  const auto arrivals = stream_over(48, 35.0, 77, 4);
  ThreadedFleetOptions opt;
  opt.cache_lock_stripes = 0;
  expect_result_eq(run_online(t, fds, arrivals, cfg),
                   run_online_threaded(t, fds, arrivals, cfg, opt));
}

TEST(ThreadedFleetProperty, TraceBytesIdenticalToReplicatedOracle) {
  util::Rng rng(5);
  const Table t = groupy_table(rng, 60, 3, 3);
  const table::FdSet fds;
  for (std::size_t replicas : {1u, 2u, 4u}) {
    SCOPED_TRACE("replicas=" + std::to_string(replicas));
    OnlineConfig cfg = small_config();
    cfg.n_replicas = replicas;
    cfg.router = RouterPolicy::PrefixAffinity;
    cfg.scheduler.window_rows = 8;
    cfg.scheduler.max_wait_seconds = 0.12;
    cfg.engine.preemption = true;
    cfg.engine.kv_pool_blocks_override = 128;
    const auto arrivals = stream_over(60, 45.0, 33, 5, true);

    obs::TraceLog oracle_log;
    OnlineConfig oracle_cfg = cfg;
    oracle_cfg.trace.sink = &oracle_log;
    const auto oracle = run_online_replicated(t, fds, arrivals, oracle_cfg);

    obs::TraceLog threaded_log;
    OnlineConfig threaded_cfg = cfg;
    threaded_cfg.trace.sink = &threaded_log;
    const auto threaded = run_online_threaded(t, fds, arrivals, threaded_cfg);

    ASSERT_GT(oracle_log.size(), 0u);
    expect_trace_eq(oracle_log, threaded_log);
    expect_requests_eq(oracle.requests, threaded.requests);
  }
}

TEST(ThreadedFleetProperty, TimeSeriesIdenticalToReplicatedOracle) {
  util::Rng rng(13);
  const Table t = groupy_table(rng, 60, 3, 3);
  const table::FdSet fds;
  for (std::size_t replicas : {1u, 3u}) {
    SCOPED_TRACE("replicas=" + std::to_string(replicas));
    OnlineConfig cfg = small_config();
    cfg.n_replicas = replicas;
    cfg.scheduler.window_rows = 8;
    cfg.scheduler.max_wait_seconds = 0.1;
    const auto arrivals = stream_over(60, 30.0, 21, 3);

    obs::TimeSeries oracle_ts;
    OnlineConfig oracle_cfg = cfg;
    oracle_cfg.trace.timeseries = &oracle_ts;
    oracle_cfg.trace.sample_interval_seconds = 0.05;
    run_online_replicated(t, fds, arrivals, oracle_cfg);

    obs::TimeSeries threaded_ts;
    OnlineConfig threaded_cfg = cfg;
    threaded_cfg.trace.timeseries = &threaded_ts;
    threaded_cfg.trace.sample_interval_seconds = 0.05;
    run_online_threaded(t, fds, arrivals, threaded_cfg);

    ASSERT_GT(oracle_ts.time.size(), 0u);
    expect_timeseries_eq(oracle_ts, threaded_ts);
  }
}

TEST(ThreadedFleetProperty, TracedRunMatchesUntracedRun) {
  // Tracing through the ordered merger must not perturb the simulation
  // (the purity contract every TraceSink already obeys).
  util::Rng rng(3);
  const Table t = groupy_table(rng, 40, 3, 3);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.n_replicas = 3;
  cfg.scheduler.window_rows = 8;
  cfg.scheduler.max_wait_seconds = 0.1;
  const auto arrivals = stream_over(40, 30.0, 55, 3);

  const auto plain = run_online_threaded(t, fds, arrivals, cfg);
  obs::TraceLog log;
  obs::TimeSeries ts;
  OnlineConfig traced_cfg = cfg;
  traced_cfg.trace.sink = &log;
  traced_cfg.trace.timeseries = &ts;
  const auto traced = run_online_threaded(t, fds, arrivals, traced_cfg);
  expect_result_eq(plain, traced);
}

// ---- Feedback-arrival (session / agentic) axis. ----
//
// Follow-up turns materialize as feedback arrivals at parent finish +
// gap, so the threaded runtime must cut an epoch before every spawn it
// cannot yet see (the min-inflight-gap cap in threaded_fleet.cpp). The
// matrix pins the whole result — including the spawned stream itself —
// bit-identical to the virtual-clock oracle across replica counts and
// both session kinds, plus threaded-rerun determinism.

TEST(ThreadedFleetProperty, SessionRunsBitIdenticalAcrossKindsAndReplicas) {
  util::Rng rng(17);
  const Table t = groupy_table(rng, 48, 3, 3);
  const table::FdSet fds;
  std::uint64_t seed = 301;
  for (std::size_t replicas : {1u, 2u, 4u}) {
    for (const SessionKind kind : {SessionKind::Chat, SessionKind::Agent}) {
      SCOPED_TRACE("replicas=" + std::to_string(replicas) +
                   " kind=" + std::to_string(static_cast<int>(kind)) +
                   " seed=" + std::to_string(seed));
      OnlineConfig cfg = small_config();
      cfg.n_replicas = replicas;
      cfg.router = RouterPolicy::PrefixAffinity;
      cfg.scheduler.window_rows = 8;
      cfg.scheduler.max_wait_seconds = 0.15;
      cfg.engine.preemption = true;
      cfg.engine.kv_pool_blocks_override = 192;  // tight enough to evict

      WorkloadOptions w;
      w.arrival_rate = 30.0;
      w.n_tenants = 4;
      w.n_requests = 36;
      w.tenant_classes = {llm::PriorityClass::Interactive,
                          llm::PriorityClass::Standard,
                          llm::PriorityClass::Batch};
      w.seed = seed++;
      SessionOptions so;
      so.kind = kind;
      so.turns = 3;
      so.mean_gap_seconds = 0.2;
      const SessionWorkload sw = generate_sessions(48, w, so);
      cfg.sessions = &sw;

      const OnlineRunResult oracle = run_online(t, fds, sw.roots, cfg);
      const OnlineRunResult threaded =
          run_online_threaded(t, fds, sw.roots, cfg);
      expect_result_eq(oracle, threaded);
      ASSERT_EQ(oracle.requests.size(), sw.roots.size() * so.turns);
      // Rerun determinism: the threaded runtime spawns the exact same
      // feedback stream again.
      expect_result_eq(threaded, run_online_threaded(t, fds, sw.roots, cfg));
    }
  }
}

TEST(ThreadedFleetProperty, SessionWithSpjfPredictorAlsoBitIdentical) {
  // Predictor state feeds SPJF decisions; it advances in oracle
  // completion order, so the threaded run must reproduce every
  // admission choice bit-for-bit too.
  util::Rng rng(23);
  const Table t = groupy_table(rng, 48, 3, 3);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.n_replicas = 3;
  cfg.scheduler.window_rows = 8;
  cfg.scheduler.max_wait_seconds = 0.1;
  cfg.tenant_output_multiplier = {0.5, 3.0};
  cfg.predictor.enabled = true;
  cfg.scheduler.spjf = true;
  cfg.engine.spjf = true;

  WorkloadOptions w;
  w.arrival_rate = 40.0;
  w.n_tenants = 4;
  w.n_requests = 32;
  w.seed = 311;
  SessionOptions so;
  so.kind = SessionKind::Agent;
  so.turns = 2;
  so.mean_gap_seconds = 0.15;
  const SessionWorkload sw = generate_sessions(48, w, so);
  cfg.sessions = &sw;

  expect_result_eq(run_online(t, fds, sw.roots, cfg),
                   run_online_threaded(t, fds, sw.roots, cfg));
}

TEST(ThreadedFleetProperty, SessionTraceBytesIdenticalToReplicatedOracle) {
  util::Rng rng(29);
  const Table t = groupy_table(rng, 40, 3, 3);
  const table::FdSet fds;
  for (std::size_t replicas : {1u, 2u}) {
    SCOPED_TRACE("replicas=" + std::to_string(replicas));
    OnlineConfig cfg = small_config();
    cfg.n_replicas = replicas;
    cfg.router = RouterPolicy::PrefixAffinity;
    cfg.scheduler.window_rows = 8;
    cfg.scheduler.max_wait_seconds = 0.12;

    WorkloadOptions w;
    w.arrival_rate = 25.0;
    w.n_tenants = 3;
    w.n_requests = 24;
    w.seed = 401;
    SessionOptions so;
    so.kind = SessionKind::Chat;
    so.turns = 3;
    so.mean_gap_seconds = 0.2;
    const SessionWorkload sw = generate_sessions(40, w, so);
    cfg.sessions = &sw;

    obs::TraceLog oracle_log;
    OnlineConfig oracle_cfg = cfg;
    oracle_cfg.trace.sink = &oracle_log;
    const auto oracle = run_online_replicated(t, fds, sw.roots, oracle_cfg);

    obs::TraceLog threaded_log;
    OnlineConfig threaded_cfg = cfg;
    threaded_cfg.trace.sink = &threaded_log;
    const auto threaded = run_online_threaded(t, fds, sw.roots, threaded_cfg);

    // Turn chaining is on the tape: one TurnSpawn per follow-up, byte-
    // identical between the two runtimes.
    std::size_t spawns = 0;
    for (const obs::TraceEvent& e : oracle_log.events())
      if (e.kind == obs::EventKind::TurnSpawn) ++spawns;
    EXPECT_EQ(spawns, sw.roots.size() * 2);
    expect_trace_eq(oracle_log, threaded_log);
    expect_requests_eq(oracle.requests, threaded.requests);
  }
}

TEST(ThreadedFleet, EmptyStreamAndZeroReplicas) {
  util::Rng rng(1);
  const Table t = groupy_table(rng, 4, 2, 2);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.n_replicas = 0;
  EXPECT_THROW(run_online_threaded(t, fds, {}, cfg), std::invalid_argument);
  cfg.n_replicas = 2;
  const auto out = run_online_threaded(t, fds, {}, cfg);
  EXPECT_TRUE(out.requests.empty());
  EXPECT_EQ(out.replicas.size(), 2u);
  EXPECT_EQ(out.windows, 0u);
}

TEST(ThreadedFleet, ShutdownIsIdempotentAndDestructorJoins) {
  OnlineConfig cfg = small_config();
  cfg.n_replicas = 4;
  ThreadedFleet fleet(cfg.fleet());
  EXPECT_EQ(fleet.n_replicas(), 4u);
  EXPECT_FALSE(fleet.any_work());
  fleet.shutdown();
  fleet.shutdown();  // second call is a no-op
}

}  // namespace
}  // namespace llmq::serve
