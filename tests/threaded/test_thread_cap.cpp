// The worker-pool cap property: ThreadedFleet multiplexes any number of
// replicas onto at most max_threads workers (default: hardware
// concurrency minus one), and the cap is invisible in the output — the
// same run at every thread count, from fully serialized (1 worker owning
// every replica) through one-worker-per-replica, is bit-identical to the
// virtual-clock replicated oracle. Replica-to-worker assignment is pure
// routing: per-replica execution, the epoch barrier protocol, and the
// (pre_clock, replica, order) merge are untouched by ownership.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/online.hpp"
#include "serve/threaded_fleet.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table tiny_table(std::size_t n) {
  Table t(Schema::of_names({"category", "region", "status"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"cat_" + std::to_string(r % 3),
                  "region_" + std::to_string(r % 4),
                  r % 2 ? "active" : "archived"});
  return t;
}

OnlineConfig fleet_config(std::size_t n_replicas) {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a serving assistant.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 6.0;
  cfg.class_output_multiplier = {0.5, 1.0, 4.0};
  cfg.ttft_slo_seconds = 5.0;
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 16;
  cfg.scheduler.max_wait_seconds = 1.0;
  cfg.scheduler.priority_order = true;
  cfg.scheduler.aging_seconds = 4.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.max_batch_size = 4;
  cfg.engine.kv_pool_blocks_override = 96;  // tight: defer traffic
  cfg.engine.preemption = true;
  cfg.engine.priority_aging_seconds = 4.0;
  cfg.n_replicas = n_replicas;
  cfg.router = RouterPolicy::PrefixAffinity;
  return cfg;
}

std::vector<Arrival> arrivals_for(std::size_t n_rows) {
  WorkloadOptions w;
  w.arrival_rate = 40.0;
  w.n_tenants = 3;
  w.tenant_classes = {llm::PriorityClass::Batch,
                      llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard};
  w.n_requests = 2 * n_rows;
  w.seed = 1234;
  return generate_arrivals(n_rows, w);
}

void expect_run_identical(const OnlineRunResult& a, const OnlineRunResult& b,
                          const std::string& where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    ASSERT_EQ(a.requests[i].id, b.requests[i].id) << "request " << i;
    ASSERT_EQ(a.requests[i].replica, b.requests[i].replica) << "request " << i;
    ASSERT_EQ(a.requests[i].admit_time, b.requests[i].admit_time)
        << "request " << i;
    ASSERT_EQ(a.requests[i].first_token_time, b.requests[i].first_token_time)
        << "request " << i;
    ASSERT_EQ(a.requests[i].finish_time, b.requests[i].finish_time)
        << "request " << i;
    ASSERT_EQ(a.requests[i].cached_tokens, b.requests[i].cached_tokens)
        << "request " << i;
    ASSERT_EQ(a.requests[i].preemptions, b.requests[i].preemptions)
        << "request " << i;
  }
  EXPECT_EQ(a.latency.p99_ttft, b.latency.p99_ttft);
  EXPECT_EQ(a.latency.makespan, b.latency.makespan);
  EXPECT_EQ(a.engine.cache.hit_tokens, b.engine.cache.hit_tokens);
  EXPECT_EQ(a.engine.preemptions, b.engine.preemptions);
  EXPECT_EQ(a.load_imbalance, b.load_imbalance);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t r = 0; r < a.replicas.size(); ++r)
    EXPECT_EQ(a.replicas[r].requests, b.replicas[r].requests) << "replica "
                                                              << r;
}

class ThreadCapMatrix : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadCapMatrix, CappedPoolIsBitIdenticalToOracle) {
  // 5 replicas on caps {0 = auto, 1, 2, 3, 5}: every configuration below
  // one-thread-per-replica multiplexes several replicas onto one worker
  // and must still match the virtual-clock oracle exactly.
  const std::size_t cap = GetParam();
  const std::size_t n_rows = 60;
  const Table t = tiny_table(n_rows);
  const table::FdSet fds;
  const OnlineConfig cfg = fleet_config(5);
  const auto arrivals = arrivals_for(n_rows);

  const OnlineRunResult oracle = run_online_replicated(t, fds, arrivals, cfg);
  ThreadedFleetOptions opts;
  opts.max_threads = cap;
  const OnlineRunResult threaded =
      run_online_threaded(t, fds, arrivals, cfg, opts);
  expect_run_identical(oracle, threaded,
                       "max_threads=" + std::to_string(cap));
}

INSTANTIATE_TEST_SUITE_P(Caps, ThreadCapMatrix,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{2}, std::size_t{3},
                                           std::size_t{5}));

}  // namespace
}  // namespace llmq::serve
