// Edge-case and failure-injection tests for the data + query layers.

#include <gtest/gtest.h>

#include "core/ggr.hpp"
#include "table/stats.hpp"
#include "query/executor.hpp"
#include "query/metrics.hpp"

namespace llmq::data {
namespace {

class TinyDatasets : public ::testing::TestWithParam<std::string> {};

TEST_P(TinyDatasets, SingleRowGenerates) {
  GenOptions o;
  o.n_rows = 1;
  o.seed = 3;
  const auto d = generate_dataset(GetParam(), o);
  EXPECT_EQ(d.table.num_rows(), 1u);
  EXPECT_EQ(d.truth.size(), 1u);
  // Planning a 1-row table is trivial but must not crash.
  core::GgrOptions go;
  const auto r = core::ggr(d.table, d.fds, go);
  EXPECT_DOUBLE_EQ(r.phc, 0.0);
}

TEST_P(TinyDatasets, TwoRowsGenerate) {
  GenOptions o;
  o.n_rows = 2;
  o.seed = 3;
  const auto d = generate_dataset(GetParam(), o);
  EXPECT_EQ(d.table.num_rows(), 2u);
  core::GgrOptions go;
  EXPECT_NO_THROW(core::ggr(d.table, d.fds, go));
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, TinyDatasets,
                         ::testing::ValuesIn(dataset_keys()),
                         [](const auto& info) { return info.param; });

TEST(EdgeCases, QueryOverSingleRowDataset) {
  GenOptions o;
  o.n_rows = 1;
  o.seed = 5;
  const auto d = generate_movies(o);
  const auto& spec = query_by_id("movies-filter");
  const auto r = query::run_query(
      d, spec, query::ExecConfig::standard(query::Method::CacheGgr));
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_LE(r.rows_selected, 1u);
}

TEST(EdgeCases, MultiLlmWithNoSurvivorsSkipsStageTwo) {
  // Force stage 1 to select nothing by making the model always answer the
  // kept class's opposite... easiest: position-robust model plus a truth
  // vector of all-POSITIVE and a keep-class of NEGATIVE with near-perfect
  // accuracy.
  GenOptions o;
  o.n_rows = 30;
  o.seed = 6;
  auto d = generate_movies(o);
  std::fill(d.sentiment_truth.begin(), d.sentiment_truth.end(), "POSITIVE");
  const auto& spec = query_by_id("movies-multi");
  auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);
  cfg.model_profile.base_accuracy = 0.999;  // never answers NEGATIVE
  cfg.model_profile.position_susceptibility = 0.0;
  const auto r = query::run_query(d, spec, cfg);
  EXPECT_EQ(r.rows_selected, 0u);
  EXPECT_EQ(r.stages.size(), 1u);  // stage 2 skipped entirely
}

TEST(EdgeCases, KvPoolScalingIsMonotoneInFraction) {
  auto a = query::ExecConfig::standard(query::Method::CacheGgr);
  auto b = query::ExecConfig::standard(query::Method::CacheGgr);
  a.scale_kv_pool(0.01);
  b.scale_kv_pool(0.5);
  EXPECT_LE(a.engine.kv_pool_blocks_override, b.engine.kv_pool_blocks_override);
  // Floor guarantees a workable minimum.
  EXPECT_GE(a.engine.kv_pool_blocks_override, 4096u / a.engine.block_size);
}

TEST(EdgeCases, GeneratorsScaleLinearly) {
  // Structure (cards per row) should be scale-free: doubling rows roughly
  // doubles metadata-pool sizes, keeping the rows-per-group ratio.
  GenOptions small_o, large_o;
  small_o.n_rows = 300;
  large_o.n_rows = 600;
  small_o.seed = large_o.seed = 9;
  const auto s = generate_movies(small_o);
  const auto l = generate_movies(large_o);
  const auto title = s.table.schema().require("movietitle");
  const auto cs = table::compute_stats(s.table).columns[title].cardinality;
  const auto cl = table::compute_stats(l.table).columns[title].cardinality;
  const double ratio = static_cast<double>(cl) / static_cast<double>(cs);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.6);
}

TEST(EdgeCases, CompareMethodsHandlesUnitFraction) {
  GenOptions o;
  o.n_rows = 60;
  o.seed = 10;
  const auto d = generate_beer(o);
  const auto& spec = query_by_id("beer-filter");
  // kv_fraction = 1.0 must mean "GPU-derived pool", no override.
  const auto cmp =
      query::compare_methods(d, spec, llm::llama3_8b(), llm::l4(), 1.0);
  EXPECT_GT(cmp.no_cache.total_seconds, 0.0);
}

}  // namespace
}  // namespace llmq::data
