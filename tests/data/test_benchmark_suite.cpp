#include "data/benchmark_suite.hpp"

#include <gtest/gtest.h>

#include <set>

namespace llmq::data {
namespace {

TEST(BenchmarkSuite, SixteenQueries) {
  EXPECT_EQ(benchmark_queries().size(), 16u);
}

TEST(BenchmarkSuite, TypeBreakdownMatchesPaper) {
  EXPECT_EQ(queries_of_type(QueryType::Filter).size(), 5u);
  EXPECT_EQ(queries_of_type(QueryType::Projection).size(), 5u);
  EXPECT_EQ(queries_of_type(QueryType::MultiLlm).size(), 2u);
  EXPECT_EQ(queries_of_type(QueryType::Aggregation).size(), 2u);
  EXPECT_EQ(queries_of_type(QueryType::Rag).size(), 2u);
}

TEST(BenchmarkSuite, UniqueIds) {
  std::set<std::string> ids;
  for (const auto& q : benchmark_queries()) ids.insert(q.id);
  EXPECT_EQ(ids.size(), 16u);
}

TEST(BenchmarkSuite, LookupById) {
  const auto& q = query_by_id("movies-filter");
  EXPECT_EQ(q.dataset, "movies");
  EXPECT_EQ(q.type, QueryType::Filter);
  EXPECT_THROW(query_by_id("nope"), std::invalid_argument);
}

TEST(BenchmarkSuite, DatasetsResolvable) {
  for (const auto& q : benchmark_queries()) {
    GenOptions o;
    o.n_rows = 20;
    EXPECT_NO_THROW(generate_dataset(q.dataset, o)) << q.id;
  }
}

TEST(BenchmarkSuite, StageFieldsExistInDataset) {
  GenOptions o;
  o.n_rows = 20;
  for (const auto& q : benchmark_queries()) {
    const auto d = generate_dataset(q.dataset, o);
    for (const auto& f : q.stage1.fields)
      EXPECT_TRUE(d.table.schema().has(f)) << q.id << ": " << f;
    if (q.stage2) {
      for (const auto& f : q.stage2->fields)
        EXPECT_TRUE(d.table.schema().has(f)) << q.id << ": " << f;
    }
  }
}

TEST(BenchmarkSuite, MultiLlmQueriesHaveTwoStages) {
  for (const auto& q : queries_of_type(QueryType::MultiLlm))
    EXPECT_TRUE(q.stage2.has_value()) << q.id;
  for (const auto& q : queries_of_type(QueryType::Filter))
    EXPECT_FALSE(q.stage2.has_value()) << q.id;
}

TEST(BenchmarkSuite, FilterAnswersMatchDatasetChoices) {
  GenOptions o;
  o.n_rows = 20;
  for (const auto& q : queries_of_type(QueryType::Filter)) {
    const auto d = generate_dataset(q.dataset, o);
    EXPECT_EQ(q.stage1.answers, d.label_choices) << q.id;
  }
}

TEST(BenchmarkSuite, OutputLengthsMatchTable1) {
  EXPECT_DOUBLE_EQ(query_by_id("movies-filter").stage1.avg_output_tokens, 2);
  EXPECT_DOUBLE_EQ(query_by_id("movies-projection").stage1.avg_output_tokens,
                   29);
  EXPECT_DOUBLE_EQ(query_by_id("products-projection").stage1.avg_output_tokens,
                   107);
  EXPECT_DOUBLE_EQ(query_by_id("squad-rag").stage1.avg_output_tokens, 11);
  EXPECT_DOUBLE_EQ(query_by_id("fever-rag").stage1.avg_output_tokens, 3);
}

TEST(BenchmarkSuite, FeverHasStrongestPositionSensitivity) {
  const double fever = query_by_id("fever-rag").position_sensitivity;
  for (const auto& q : benchmark_queries()) {
    if (q.id != "fever-rag") {
      EXPECT_LT(q.position_sensitivity, fever) << q.id;
    }
  }
}

TEST(BenchmarkSuite, SystemPromptShared) {
  const auto& first = benchmark_queries().front().system_prompt;
  EXPECT_FALSE(first.empty());
  for (const auto& q : benchmark_queries())
    EXPECT_EQ(q.system_prompt, first);
}

}  // namespace
}  // namespace llmq::data
