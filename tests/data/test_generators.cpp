#include "data/generators.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "core/ggr.hpp"
#include "core/phc.hpp"
#include "data/benchmark_suite.hpp"
#include "query/prompt.hpp"
#include "table/stats.hpp"
#include "tokenizer/tokenizer.hpp"

namespace llmq::data {
namespace {

GenOptions small(std::size_t n = 300) {
  GenOptions o;
  o.n_rows = n;
  o.seed = 7;
  return o;
}

class GeneratorShape : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorShape, RowCountAndTruthAlign) {
  const auto d = generate_dataset(GetParam(), small());
  EXPECT_EQ(d.table.num_rows(), 300u);
  EXPECT_EQ(d.truth.size(), 300u);
  EXPECT_FALSE(d.name.empty());
}

TEST_P(GeneratorShape, Deterministic) {
  const auto a = generate_dataset(GetParam(), small());
  const auto b = generate_dataset(GetParam(), small());
  EXPECT_EQ(a.table, b.table);
  EXPECT_EQ(a.truth, b.truth);
}

TEST_P(GeneratorShape, SeedChangesContent) {
  auto o1 = small();
  auto o2 = small();
  o2.seed = 8;
  const auto a = generate_dataset(GetParam(), o1);
  const auto b = generate_dataset(GetParam(), o2);
  EXPECT_FALSE(a.table == b.table);
}

TEST_P(GeneratorShape, DeclaredFdsHoldOnData) {
  const auto d = generate_dataset(GetParam(), small());
  for (const auto& e : d.fds.edges()) {
    const auto det = d.table.schema().index_of(e.determinant);
    const auto dep = d.table.schema().index_of(e.dependent);
    ASSERT_TRUE(det.has_value()) << e.determinant;
    ASSERT_TRUE(dep.has_value()) << e.dependent;
    EXPECT_DOUBLE_EQ(table::fd_violation_rate(d.table, *det, *dep), 0.0)
        << e.determinant << " -> " << e.dependent;
  }
}

TEST_P(GeneratorShape, KeyFieldExists) {
  const auto d = generate_dataset(GetParam(), small());
  EXPECT_TRUE(d.table.schema().has(d.key_field)) << d.key_field;
}

TEST_P(GeneratorShape, TruthDrawnFromChoicesWhenCategorical) {
  const auto d = generate_dataset(GetParam(), small());
  if (d.label_choices.empty()) return;  // open-ended QA
  std::unordered_set<std::string> choices(d.label_choices.begin(),
                                          d.label_choices.end());
  for (const auto& t : d.truth) EXPECT_TRUE(choices.count(t)) << t;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorShape,
                         ::testing::ValuesIn(dataset_keys()),
                         [](const auto& info) { return info.param; });

TEST(Generators, FieldCountsMatchAppendixB) {
  EXPECT_EQ(generate_movies(small()).table.num_cols(), 8u);
  EXPECT_EQ(generate_products(small()).table.num_cols(), 8u);
  EXPECT_EQ(generate_bird(small()).table.num_cols(), 4u);
  EXPECT_EQ(generate_pdmx(small()).table.num_cols(), 57u);
  EXPECT_EQ(generate_beer(small()).table.num_cols(), 9u);
  EXPECT_EQ(generate_squad(small()).table.num_cols(), 6u);
  EXPECT_EQ(generate_fever(small()).table.num_cols(), 5u);
}

TEST(Generators, UnknownKeyThrows) {
  EXPECT_THROW(generate_dataset("nope", small()), std::invalid_argument);
}

TEST(Generators, PaperRowCounts) {
  EXPECT_EQ(paper_rows("movies"), 15000u);
  EXPECT_EQ(paper_rows("beer"), 28479u);
  EXPECT_THROW(paper_rows("nope"), std::invalid_argument);
}

TEST(Generators, MoviesMetadataRepeatsAcrossReviews) {
  const auto d = generate_movies(small(500));
  const auto stats = table::compute_stats(d.table);
  const auto title = d.table.schema().require("movietitle");
  const auto review = d.table.schema().require("reviewcontent");
  // ~10 reviews per movie: title cardinality far below row count; review
  // content unique.
  EXPECT_LT(stats.columns[title].cardinality, 120u);
  EXPECT_EQ(stats.columns[review].cardinality, 500u);
}

TEST(Generators, BeerTimeOrderedWithRepeatedBeers) {
  const auto d = generate_beer(small(400));
  const auto stats = table::compute_stats(d.table);
  const auto id_col = d.table.schema().require("beer/beerId");
  const auto time_col = d.table.schema().require("review/time");
  // ~35 reviews per beer, but interleaved by time: ids repeat heavily...
  EXPECT_LT(stats.columns[id_col].cardinality, 30u);
  // ...and timestamps are sorted ascending (the export order).
  for (std::size_t r = 1; r < d.table.num_rows(); ++r)
    EXPECT_LE(std::stoull(d.table.cell(r - 1, time_col)),
              std::stoull(d.table.cell(r, time_col)));
  // Sub-scores are tier-correlated: appearance determines palate exactly.
  const auto app = d.table.schema().require("review/appearance");
  const auto pal = d.table.schema().require("review/palate");
  EXPECT_DOUBLE_EQ(table::fd_violation_rate(d.table, app, pal), 0.0);
}

TEST(Generators, FeverEvidenceSharedAcrossClaims) {
  const auto d = generate_fever(small(300));
  const auto ev1 = d.table.schema().require("evidence1");
  const auto stats = table::compute_stats(d.table);
  // Many claims share topics -> evidence1 cardinality well below n.
  EXPECT_LT(stats.columns[ev1].cardinality, 250u);
}

TEST(Generators, InputTokenLengthsTrackTable1) {
  // Average full-request tokens (instructions + JSON row, as Table 1
  // reports them) should be within a factor ~2 of the paper's averages.
  struct Expect {
    const char* key;
    const char* query;
    double target;
  };
  const Expect cases[] = {
      {"movies", "movies-filter", 276},   {"products", "products-filter", 377},
      {"bird", "bird-filter", 765},       {"pdmx", "pdmx-filter", 738},
      {"beer", "beer-filter", 156},       {"squad", "squad-rag", 1047},
      {"fever", "fever-rag", 1302}};
  for (const auto& c : cases) {
    const auto d = generate_dataset(c.key, small(120));
    const auto& spec = query_by_id(c.query);
    const query::PromptEncoder enc(
        query::PromptTemplate{spec.system_prompt, spec.stage1.user_prompt});
    std::vector<std::size_t> fields(d.table.num_cols());
    std::iota(fields.begin(), fields.end(), 0);
    double total = 0.0;
    for (std::size_t r = 0; r < d.table.num_rows(); ++r)
      total += static_cast<double>(enc.encode(d.table, r, fields).size());
    const double avg = total / static_cast<double>(d.table.num_rows());
    EXPECT_GT(avg, c.target * 0.5) << c.key << " avg=" << avg;
    EXPECT_LT(avg, c.target * 2.0) << c.key << " avg=" << avg;
  }
}

TEST(Generators, GgrFindsSubstantialHitsOnEveryDataset) {
  // Smoke check of the central premise: every benchmark dataset has
  // exploitable structure. PDMX is exempt from the fraction floor — its
  // PHC mass sits in long per-row-unique text (the paper reports a 43%
  // irreducible miss there), so its squared-length hit *fraction* is small
  // even though GGR still helps.
  for (const auto& key : dataset_keys()) {
    const auto d = generate_dataset(key, small(200));
    core::GgrOptions opts;
    opts.max_row_depth = 4;
    opts.max_col_depth = 2;
    const auto r = core::ggr(d.table, d.fds, opts);
    const double original = core::phc(d.table, core::Ordering::identity(
                                                   d.table.num_rows(),
                                                   d.table.num_cols()));
    EXPECT_GT(r.phc, original) << key;
    if (key != "pdmx") {
      const auto b = core::phc_breakdown(d.table, r.ordering);
      EXPECT_GT(b.hit_fraction(), 0.2) << key;
    }
  }
}

}  // namespace
}  // namespace llmq::data
