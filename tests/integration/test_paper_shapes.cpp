// Scaled-down checks of the paper's headline result *shapes* (the full
// reproductions live in bench/). Kept small enough for CI.

#include <gtest/gtest.h>

#include "pricing/cost_report.hpp"
#include "query/executor.hpp"
#include "query/llm_operator.hpp"
#include "query/metrics.hpp"

namespace llmq::query {
namespace {

data::GenOptions small(std::size_t n, std::uint64_t seed = 5) {
  data::GenOptions o;
  o.n_rows = n;
  o.seed = seed;
  return o;
}

TEST(PaperShapes, FilterSpeedupsInPlausibleBand) {
  // Fig 3a reports 1.8-3.0x GGR-vs-original and 2.1-3.8x vs no-cache on
  // filter queries; at 1/50 scale we accept a wider band but demand real
  // wins on the join-structured datasets.
  for (const char* key : {"movies", "products", "bird"}) {
    const auto d = data::generate_dataset(key, small(300));
    const auto& spec = data::query_by_id(std::string(key) + "-filter");
    const auto cmp = compare_methods(d, spec, llm::llama3_8b(), llm::l4(),
                                     300.0 / data::paper_rows(key));
    EXPECT_GT(cmp.speedup_vs_original(), 1.3) << key;
    EXPECT_GT(cmp.speedup_vs_no_cache(), 1.5) << key;
    EXPECT_LT(cmp.speedup_vs_no_cache(), 10.0) << key;
  }
}

TEST(PaperShapes, ProjectionGainsSmallerThanFilter) {
  // §6.2: long decode shrinks the relative benefit of prefill caching.
  const auto d = data::generate_products(small(250));
  const double kvf = 250.0 / data::paper_rows("products");
  const auto filter_cmp =
      compare_methods(d, data::query_by_id("products-filter"),
                      llm::llama3_8b(), llm::l4(), kvf);
  const auto proj_cmp =
      compare_methods(d, data::query_by_id("products-projection"),
                      llm::llama3_8b(), llm::l4(), kvf);
  EXPECT_LT(proj_cmp.speedup_vs_no_cache(), filter_cmp.speedup_vs_no_cache());
  EXPECT_GT(proj_cmp.speedup_vs_original(), 1.0);
}

TEST(PaperShapes, Table2HitRateOrdering) {
  // Table 2: GGR PHR beats original by 30-75 points on every dataset.
  // Beer uses a larger sample: its rows are short, so a tiny sample's
  // whole prefix space fits in even the floored KV pool and the original
  // ordering stays artificially warm.
  struct Case {
    const char* key;
    std::size_t n;
  };
  for (const Case c : {Case{"movies", 250}, Case{"beer", 1500},
                       Case{"fever", 250}}) {
    const auto d = data::generate_dataset(c.key, small(c.n));
    const std::string qid = std::string(c.key) +
                            (std::string(c.key) == "fever" ? "-rag"
                                                           : "-filter");
    const auto& spec = data::query_by_id(qid);
    auto cfg_orig = ExecConfig::standard(Method::CacheOriginal);
    auto cfg_ggr = ExecConfig::standard(Method::CacheGgr);
    const double kvf = static_cast<double>(c.n) /
                       static_cast<double>(data::paper_rows(c.key));
    cfg_orig.scale_kv_pool(kvf);
    cfg_ggr.scale_kv_pool(kvf);
    const auto orig = run_query(d, spec, cfg_orig);
    const auto ggr = run_query(d, spec, cfg_ggr);
    EXPECT_GT(ggr.overall_phr(), orig.overall_phr() + 0.15) << c.key;
    EXPECT_GT(ggr.overall_phr(), 0.5) << c.key;
  }
}

TEST(PaperShapes, BeerOriginalAlreadyWarm) {
  // §6.2: the Beer export is grouped by beer, so Cache (Original) starts
  // near 50% PHR.
  const auto d = data::generate_beer(small(2000));
  const auto& spec = data::query_by_id("beer-filter");
  auto cfg = ExecConfig::standard(Method::CacheOriginal);
  cfg.scale_kv_pool(2000.0 / static_cast<double>(data::paper_rows("beer")));
  const auto orig = run_query(d, spec, cfg);
  EXPECT_GT(orig.overall_phr(), 0.35);
  EXPECT_LT(orig.overall_phr(), 0.75);
}

TEST(PaperShapes, MultiLlmGainDilutedByStageOne) {
  // §6.2: stage 1 runs over distinct review text, where reordering cannot
  // help, so the end-to-end multi-LLM speedup trails the plain projection
  // speedup on the same dataset.
  const auto d = data::generate_movies(small(300));
  const double kvf = 300.0 / data::paper_rows("movies");
  const auto multi = compare_methods(d, data::query_by_id("movies-multi"),
                                     llm::llama3_8b(), llm::l4(), kvf);
  const auto filter = compare_methods(d, data::query_by_id("movies-filter"),
                                      llm::llama3_8b(), llm::l4(), kvf);
  EXPECT_GT(multi.speedup_vs_original(), 1.0);
  EXPECT_LT(multi.speedup_vs_original(), filter.speedup_vs_original());
}

TEST(PaperShapes, SeventyBModelStillGains) {
  // Fig 5: 1.9-3.3x on 8xL4 with the 70B model.
  const auto d = data::generate_movies(small(200));
  const auto cmp = compare_methods(d, data::query_by_id("movies-filter"),
                                   llm::llama3_70b(), llm::l4_x8(),
                                   200.0 / data::paper_rows("movies"));
  EXPECT_GT(cmp.speedup_vs_original(), 1.3);
}

TEST(PaperShapes, OneBModelGainsLessThanEightB) {
  // Table 7: similar PHR, smaller runtime ratio for the 1B model (ample
  // GPU memory dilutes the batching benefit of sharing).
  const auto d = data::generate_movies(small(300));
  const auto& spec = data::query_by_id("movies-filter");
  const double kvf = 300.0 / data::paper_rows("movies");
  const auto big = compare_methods(d, spec, llm::llama3_8b(), llm::l4(), kvf);
  const auto tiny = compare_methods(d, spec, llm::llama3_1b(), llm::l4(), kvf);
  EXPECT_GT(tiny.speedup_vs_original(), 1.0);
  EXPECT_NEAR(tiny.cache_ggr.overall_phr(), big.cache_ggr.overall_phr(), 0.1);
}

TEST(PaperShapes, FeverCostSavingsShape) {
  // Table 3: ~32% OpenAI savings, ~21% Anthropic (conservative breakpoint)
  // on FEVER with fields duplicated 5x to clear the 1024-token minimum.
  auto d = data::generate_fever(small(120));
  // Duplicate each field value 5x, as in §6.3.
  table::Table big(d.table.schema());
  for (std::size_t r = 0; r < d.table.num_rows(); ++r) {
    auto row = d.table.row(r);
    for (auto& cell : row) {
      std::string dup;
      for (int i = 0; i < 5; ++i) dup += cell + " ";
      cell = std::move(dup);
    }
    big.append_row(std::move(row));
  }
  d.table = std::move(big);

  core::GgrOptions gopt;
  gopt.max_row_depth = 4;
  gopt.max_col_depth = 2;
  const auto g = core::ggr(d.table, d.fds, gopt);

  const PromptEncoder enc(PromptTemplate{
      data::query_by_id("fever-rag").system_prompt,
      data::query_by_id("fever-rag").stage1.user_prompt});
  auto stream = [&](const core::Ordering& o) {
    std::vector<pricing::PricedRequest> s;
    for (std::size_t pos = 0; pos < o.num_rows(); ++pos) {
      pricing::PricedRequest r;
      r.prompt = enc.encode(d.table, o.row_at(pos), o.fields_at(pos));
      r.output_tokens = 3;
      s.push_back(std::move(r));
    }
    return s;
  };
  const auto sheet = pricing::openai_gpt4o_mini();
  const auto ggr_cost =
      pricing::price_stream_auto(sheet, stream(g.ordering));
  const auto orig_cost = pricing::price_stream_auto(
      sheet, stream(core::Ordering::identity(d.table.num_rows(),
                                             d.table.num_cols())));
  EXPECT_LT(ggr_cost.cost_usd, orig_cost.cost_usd);
  const double savings = 1.0 - ggr_cost.cost_usd / orig_cost.cost_usd;
  EXPECT_GT(savings, 0.10);
  EXPECT_LT(savings, 0.55);
  // Original ordering: claim-first prompts rarely clear the 1024 minimum.
  EXPECT_LT(orig_cost.prompt_hit_rate, 0.15);
  EXPECT_GT(ggr_cost.prompt_hit_rate, 0.3);
}

}  // namespace
}  // namespace llmq::query
