// Cross-module integration: planner + prompt + cache + engine agree with
// each other on shared quantities.

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/phc.hpp"
#include "query/executor.hpp"
#include "query/llm_operator.hpp"
#include "query/prompt.hpp"

namespace llmq::query {
namespace {

data::GenOptions small(std::size_t n) {
  data::GenOptions o;
  o.n_rows = n;
  o.seed = 3;
  return o;
}

TEST(EndToEnd, TokenPhrTracksPlannerPhc) {
  // A higher-PHC ordering must serialize into a request stream with a
  // higher adjacent-request token-sharing rate.
  const auto d = data::generate_movies(small(150));
  core::GgrOptions gopt;
  gopt.max_row_depth = 4;
  gopt.max_col_depth = 2;
  const auto g = core::ggr(d.table, d.fds, gopt);
  const auto original = core::original_ordering(d.table);
  ASSERT_GT(g.phc, core::phc(d.table, original));

  const PromptEncoder enc(
      PromptTemplate{"System prompt.", "Filter the row."});
  auto streams = [&](const core::Ordering& o) {
    std::vector<std::vector<std::uint32_t>> reqs;
    for (std::size_t pos = 0; pos < o.num_rows(); ++pos)
      reqs.push_back(enc.encode(d.table, o.row_at(pos), o.fields_at(pos)));
    return reqs;
  };
  const auto phr_ggr = core::token_phr(streams(g.ordering));
  const auto phr_orig = core::token_phr(streams(original));
  EXPECT_GT(phr_ggr.rate(), phr_orig.rate());
}

TEST(EndToEnd, EnginePhrConsistentWithAdjacentSharing) {
  // The radix cache retains *all* prior prompts, so its hit rate is at
  // least the adjacent-sharing rate (minus block-granularity loss).
  const auto d = data::generate_beer(small(1200));
  const auto& spec = data::query_by_id("beer-filter");
  auto cfg_ggr = ExecConfig::standard(Method::CacheGgr);
  auto cfg_orig = ExecConfig::standard(Method::CacheOriginal);
  cfg_ggr.scale_kv_pool(1200.0 / static_cast<double>(data::paper_rows("beer")));
  cfg_orig.scale_kv_pool(1200.0 / static_cast<double>(data::paper_rows("beer")));
  const auto r = run_query(d, spec, cfg_ggr);
  const auto r0 = run_query(d, spec, cfg_orig);
  EXPECT_GT(r.overall_phr(), r0.overall_phr());
  EXPECT_GT(r.overall_phr(), 0.5);
}

TEST(EndToEnd, CacheDisabledMatchesZeroHits) {
  const auto d = data::generate_bird(small(80));
  const auto& spec = data::query_by_id("bird-filter");
  const auto r = run_query(d, spec, ExecConfig::standard(Method::NoCache));
  EXPECT_DOUBLE_EQ(r.overall_phr(), 0.0);
  EXPECT_EQ(r.stages[0].engine.cached_prompt_tokens, 0u);
}

TEST(EndToEnd, RequestsCoverEveryRowExactlyOnce) {
  const auto d = data::generate_products(small(100));
  core::GgrOptions gopt;
  const auto g = core::ggr(d.table, d.fds, gopt);
  LlmOperatorSpec op;
  op.tmpl = PromptTemplate{"sys", "query"};
  op.answers = {"POSITIVE", "NEGATIVE", "NEUTRAL"};
  op.key_field = d.key_field;
  const llm::TaskModel tm(llm::profile_llama3_8b());
  const auto out = build_requests(d.table, g.ordering, op, tm, d.truth);
  ASSERT_EQ(out.requests.size(), 100u);
  std::vector<bool> seen(100, false);
  for (const auto& r : out.requests) {
    EXPECT_LT(r.row_tag, 100u);
    EXPECT_FALSE(seen[r.row_tag]);
    seen[r.row_tag] = true;
    EXPECT_GT(r.prompt.size(), 0u);
    EXPECT_GE(r.output_tokens, 1u);
  }
  for (std::size_t r = 0; r < 100; ++r)
    EXPECT_FALSE(out.answers[r].empty());
}

TEST(EndToEnd, DeterministicAcrossProcessRuns) {
  const auto d1 = data::generate_movies(small(60));
  const auto d2 = data::generate_movies(small(60));
  const auto& spec = data::query_by_id("movies-filter");
  const auto r1 = run_query(d1, spec, ExecConfig::standard(Method::CacheGgr));
  const auto r2 = run_query(d2, spec, ExecConfig::standard(Method::CacheGgr));
  EXPECT_DOUBLE_EQ(r1.total_seconds, r2.total_seconds);
  EXPECT_EQ(r1.answers, r2.answers);
}

TEST(EndToEnd, ReorderingPreservesQuerySemanticsExactlyWhenRobust) {
  // With a fully position-robust model, GGR answers == original answers:
  // reordering "preserves query semantics" (paper abstract).
  auto d = data::generate_movies(small(100));
  const auto& spec = data::query_by_id("movies-filter");
  auto cfg_orig = ExecConfig::standard(Method::CacheOriginal);
  auto cfg_ggr = ExecConfig::standard(Method::CacheGgr);
  cfg_orig.model_profile.position_susceptibility = 0.0;
  cfg_ggr.model_profile.position_susceptibility = 0.0;
  const auto a = run_query(d, spec, cfg_orig);
  const auto b = run_query(d, spec, cfg_ggr);
  EXPECT_EQ(a.answers, b.answers);
}

}  // namespace
}  // namespace llmq::query
