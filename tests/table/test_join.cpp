#include "table/join.hpp"

#include <gtest/gtest.h>

namespace llmq::table {
namespace {

Table reviews() {
  Table t(Schema::of_names({"review", "asin"}));
  t.append_row({"great", "A1"});
  t.append_row({"meh", "A2"});
  t.append_row({"awful", "A1"});
  t.append_row({"orphan", "A9"});
  return t;
}

Table products() {
  Table t(Schema::of_names({"asin", "title", "description"}));
  t.append_row({"A1", "Widget", "A fine widget"});
  t.append_row({"A2", "Gadget", "A fine gadget"});
  t.append_row({"A3", "Nothing", "Never referenced"});
  return t;
}

TEST(HashJoin, InnerJoinBasics) {
  const auto j = hash_join(reviews(), "asin", products(), "asin");
  EXPECT_EQ(j.num_rows(), 3u);  // orphan dropped, A3 unreferenced
  EXPECT_EQ(j.num_cols(), 4u);  // review, asin, title, description
  EXPECT_EQ(j.schema().field(2).name, "title");
}

TEST(HashJoin, RepeatedKeyDuplicatesMetadata) {
  const auto j = hash_join(reviews(), "asin", products(), "asin");
  // Both A1 reviews carry the same product metadata — the repetition GGR
  // exploits is created here.
  std::size_t widget_rows = 0;
  for (std::size_t r = 0; r < j.num_rows(); ++r)
    if (j.cell(r, 2) == "Widget") ++widget_rows;
  EXPECT_EQ(widget_rows, 2u);
}

TEST(HashJoin, PreservesLeftOrder) {
  const auto j = hash_join(reviews(), "asin", products(), "asin");
  EXPECT_EQ(j.cell(0, 0), "great");
  EXPECT_EQ(j.cell(1, 0), "meh");
  EXPECT_EQ(j.cell(2, 0), "awful");
}

TEST(HashJoin, NameClashSuffixed) {
  Table l(Schema::of_names({"k", "title"}));
  l.append_row({"1", "left title"});
  Table r(Schema::of_names({"k", "title"}));
  r.append_row({"1", "right title"});
  const auto j = hash_join(l, "k", r, "k");
  EXPECT_EQ(j.schema().field(2).name, "title_r");
  EXPECT_EQ(j.cell(0, 2), "right title");
}

TEST(HashJoin, ManyToManyProducesCrossProduct) {
  Table l(Schema::of_names({"k", "lv"}));
  l.append_row({"x", "l1"});
  l.append_row({"x", "l2"});
  Table r(Schema::of_names({"k", "rv"}));
  r.append_row({"x", "r1"});
  r.append_row({"x", "r2"});
  const auto j = hash_join(l, "k", r, "k");
  EXPECT_EQ(j.num_rows(), 4u);
}

TEST(HashJoin, MissingKeyThrows) {
  EXPECT_THROW(hash_join(reviews(), "nope", products(), "asin"),
               std::out_of_range);
}

TEST(HashJoin, EmptyInputs) {
  Table l(Schema::of_names({"k"}));
  Table r(Schema::of_names({"k", "v"}));
  const auto j = hash_join(l, "k", r, "k");
  EXPECT_EQ(j.num_rows(), 0u);
  EXPECT_EQ(j.num_cols(), 2u);
}

}  // namespace
}  // namespace llmq::table
