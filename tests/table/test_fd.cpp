#include "table/fd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace llmq::table {
namespace {

Table beer_like() {
  Table t(Schema::of_names({"beerId", "name", "review"}));
  t.append_row({"1", "Pale Ale", "good"});
  t.append_row({"1", "Pale Ale", "bad"});
  t.append_row({"2", "Stout", "rich"});
  t.append_row({"2", "Stout", "dark"});
  return t;
}

TEST(FdSet, GroupCreatesSymmetricEdges) {
  FdSet fds;
  fds.add_group({"a", "b", "c"});
  EXPECT_EQ(fds.num_edges(), 6u);  // 3 ordered pairs * 2 directions
}

TEST(FdSet, DuplicateEdgesIgnored) {
  FdSet fds;
  fds.add("a", "b");
  fds.add("a", "b");
  EXPECT_EQ(fds.num_edges(), 1u);
}

TEST(FdSet, InferredColumnsResolveAgainstSchema) {
  const auto schema = Schema::of_names({"beerId", "name", "review"});
  FdSet fds;
  fds.add_group({"beerId", "name"});
  const auto inferred = fds.inferred_columns(schema, 0);
  EXPECT_EQ(inferred, (std::vector<std::size_t>{1}));
  EXPECT_TRUE(fds.inferred_columns(schema, 2).empty());
}

TEST(FdSet, TransitiveClosure) {
  const auto schema = Schema::of_names({"a", "b", "c"});
  FdSet fds;
  fds.add("a", "b");
  fds.add("b", "c");
  const auto inferred = fds.inferred_columns(schema, 0);
  EXPECT_EQ(inferred, (std::vector<std::size_t>{1, 2}));
}

TEST(FdSet, MissingFieldsIgnored) {
  const auto schema = Schema::of_names({"a"});
  FdSet fds;
  fds.add("a", "not_in_schema");
  EXPECT_TRUE(fds.inferred_columns(schema, 0).empty());
}

TEST(FdViolation, ExactFdIsZero) {
  const auto t = beer_like();
  EXPECT_DOUBLE_EQ(fd_violation_rate(t, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(fd_violation_rate(t, 1, 0), 0.0);
}

TEST(FdViolation, NonFdPositive) {
  const auto t = beer_like();
  // beerId does not determine review: each id maps to 2 reviews -> half the
  // rows deviate from the majority.
  EXPECT_DOUBLE_EQ(fd_violation_rate(t, 0, 2), 0.5);
}

TEST(FdViolation, EmptyTableZero) {
  Table t(Schema::of_names({"x", "y"}));
  EXPECT_DOUBLE_EQ(fd_violation_rate(t, 0, 1), 0.0);
}

TEST(MineFds, FindsExactDependencies) {
  const auto t = beer_like();
  const auto fds = mine_fds(t);
  const auto schema = t.schema();
  // beerId <-> name discovered; review -> beerId also holds here since all
  // review values are unique (a unique column determines everything).
  const auto from_id = fds.inferred_columns(schema, 0);
  EXPECT_TRUE(std::find(from_id.begin(), from_id.end(), 1u) != from_id.end());
  const auto from_name = fds.inferred_columns(schema, 1);
  EXPECT_TRUE(std::find(from_name.begin(), from_name.end(), 0u) !=
              from_name.end());
}

TEST(MineFds, ToleranceAdmitsApproximateFds) {
  Table t(Schema::of_names({"k", "v"}));
  for (int i = 0; i < 9; ++i) t.append_row({"a", "same"});
  t.append_row({"a", "different"});  // 10% violation of k -> v
  // Strict mining rejects k -> v (but discovers the exact reverse v -> k,
  // since each v value maps to the single k value "a").
  EXPECT_TRUE(mine_fds(t, 0.0).inferred_columns(t.schema(), 0).empty());
  const auto loose = mine_fds(t, 0.15);
  const auto inferred = loose.inferred_columns(t.schema(), 0);
  EXPECT_EQ(inferred, (std::vector<std::size_t>{1}));
}

}  // namespace
}  // namespace llmq::table
