#include "table/csv.hpp"

#include <gtest/gtest.h>

namespace llmq::table {
namespace {

TEST(Csv, RoundTripSimple) {
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"1", "x"});
  t.append_row({"2", "y"});
  const auto back = from_csv(to_csv(t));
  EXPECT_EQ(back, t);
}

TEST(Csv, RoundTripQuoting) {
  Table t(Schema::of_names({"text", "note"}));
  t.append_row({"has,comma", "has\"quote"});
  t.append_row({"has\nnewline", "plain"});
  t.append_row({"", "empty left"});
  const auto back = from_csv(to_csv(t));
  EXPECT_EQ(back, t);
}

TEST(Csv, ParsesCrLf) {
  const auto t = from_csv("a,b\r\n1,2\r\n");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, 1), "2");
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(from_csv("a,b\n1\n"), std::runtime_error);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(from_csv("a\n\"oops\n"), std::runtime_error);
}

TEST(Csv, EmptyInputThrows) {
  EXPECT_THROW(from_csv(""), std::runtime_error);
}

TEST(Csv, HeaderOnly) {
  const auto t = from_csv("x,y,z\n");
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(Csv, FileRoundTrip) {
  Table t(Schema::of_names({"k", "v"}));
  t.append_row({"key", "value with, comma"});
  const std::string path = ::testing::TempDir() + "/llmq_csv_test.csv";
  write_csv_file(t, path);
  EXPECT_EQ(read_csv_file(path), t);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace llmq::table
