#include "table/stats.hpp"

#include <gtest/gtest.h>

namespace llmq::table {
namespace {

TEST(TableStats, CardinalityAndLengths) {
  Table t(Schema::of_names({"dup", "uniq"}));
  t.append_row({"same", "a"});
  t.append_row({"same", "b"});
  t.append_row({"same", "c"});
  t.append_row({"other", "d"});
  const auto stats = compute_stats(t);
  EXPECT_EQ(stats.n_rows, 4u);
  EXPECT_EQ(stats.columns[0].cardinality, 2u);
  EXPECT_EQ(stats.columns[1].cardinality, 4u);
  EXPECT_EQ(stats.columns[0].max_group_size, 3u);
  EXPECT_EQ(stats.columns[1].max_group_size, 1u);
  EXPECT_GT(stats.columns[0].avg_len_tokens, 0.0);
}

TEST(TableStats, ExpectedScoreZeroWhenAllDistinct) {
  Table t(Schema::of_names({"u"}));
  t.append_row({"a"});
  t.append_row({"b"});
  const auto stats = compute_stats(t);
  EXPECT_DOUBLE_EQ(stats.columns[0].expected_hit_score(t.num_rows()), 0.0);
}

TEST(TableStats, ExpectedScorePositiveWithRepeats) {
  Table t(Schema::of_names({"r"}));
  for (int i = 0; i < 10; ++i) t.append_row({"repeated value"});
  const auto stats = compute_stats(t);
  EXPECT_GT(stats.columns[0].expected_hit_score(t.num_rows()), 0.0);
}

TEST(TableStats, FieldRankingPrefersRepetitiveLongColumns) {
  Table t(Schema::of_names({"unique_short", "repeated_long"}));
  for (int i = 0; i < 20; ++i)
    t.append_row({std::to_string(i),
                  "a very long repeated product description paragraph"});
  const auto stats = compute_stats(t);
  const auto order = stats.fields_by_expected_score();
  EXPECT_EQ(order.front(), 1u);
}

TEST(TableStats, SqLenAtLeastLenSquaredOfAvg) {
  // Jensen: E[len^2] >= (E[len])^2.
  Table t(Schema::of_names({"c"}));
  t.append_row({"one"});
  t.append_row({"three parts here"});
  t.append_row({"five tokens in this cell yes"});
  const auto stats = compute_stats(t);
  const auto& c = stats.columns[0];
  EXPECT_GE(c.avg_sq_len_tokens + 1e-9, c.avg_len_tokens * c.avg_len_tokens);
}

TEST(TableStats, EmptyTable) {
  Table t(Schema::of_names({"a", "b"}));
  const auto stats = compute_stats(t);
  EXPECT_EQ(stats.n_rows, 0u);
  EXPECT_EQ(stats.columns[0].cardinality, 0u);
  EXPECT_DOUBLE_EQ(stats.columns[0].expected_hit_score(0), 0.0);
}

}  // namespace
}  // namespace llmq::table
