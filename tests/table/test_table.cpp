#include "table/table.hpp"

#include <gtest/gtest.h>

#include "table/value.hpp"

namespace llmq::table {
namespace {

Table make_test_table() {
  Table t(Schema::of_names({"id", "name", "city"}));
  t.append_row({"1", "ann", "berlin"});
  t.append_row({"2", "bob", "berlin"});
  t.append_row({"3", "ann", "munich"});
  return t;
}

TEST(Schema, DuplicateNamesRejected) {
  EXPECT_THROW(Schema::of_names({"a", "a"}), std::invalid_argument);
}

TEST(Schema, IndexLookup) {
  const auto s = Schema::of_names({"x", "y"});
  EXPECT_EQ(s.index_of("y"), 1u);
  EXPECT_FALSE(s.index_of("z").has_value());
  EXPECT_EQ(s.require("x"), 0u);
  EXPECT_THROW(s.require("nope"), std::out_of_range);
}

TEST(Table, AppendAndAccess) {
  const auto t = make_test_table();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.cell(1, 1), "bob");
  EXPECT_EQ(t.column("city")[2], "munich");
}

TEST(Table, AppendRowArityMismatchThrows) {
  Table t(Schema::of_names({"a", "b"}));
  EXPECT_THROW(t.append_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RowMaterialization) {
  const auto t = make_test_table();
  const auto r = t.row(2);
  EXPECT_EQ(r, (std::vector<std::string>{"3", "ann", "munich"}));
}

TEST(Table, TakeRowsReorders) {
  const auto t = make_test_table();
  const auto sub = t.take_rows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.cell(0, 1), "ann");
  EXPECT_EQ(sub.cell(0, 2), "munich");
  EXPECT_EQ(sub.cell(1, 0), "1");
}

TEST(Table, ProjectByIndexAndName) {
  const auto t = make_test_table();
  const auto p = t.project(std::vector<std::size_t>{2, 0});
  EXPECT_EQ(p.schema().field(0).name, "city");
  EXPECT_EQ(p.cell(0, 1), "1");
  const auto q = t.project(std::vector<std::string>{"name"});
  EXPECT_EQ(q.num_cols(), 1u);
  EXPECT_EQ(q.cell(1, 0), "bob");
}

TEST(Table, HeadClamps) {
  const auto t = make_test_table();
  EXPECT_EQ(t.head(2).num_rows(), 2u);
  EXPECT_EQ(t.head(99).num_rows(), 3u);
}

TEST(Table, AppendTableSchemaChecked) {
  auto t = make_test_table();
  auto u = make_test_table();
  t.append_table(u);
  EXPECT_EQ(t.num_rows(), 6u);
  Table other(Schema::of_names({"different"}));
  EXPECT_THROW(t.append_table(other), std::invalid_argument);
}

TEST(Table, GroupByValueFirstSeenOrder) {
  const auto t = make_test_table();
  const auto groups = t.group_by_value(1);  // name
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].value, "ann");
  EXPECT_EQ(groups[0].rows, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1].value, "bob");
}

TEST(Table, SortedRowOrderLexicographic) {
  const auto t = make_test_table();
  // Sort by (city, name): berlin/ann, berlin/bob, munich/ann.
  const auto order = t.sorted_row_order({2, 1});
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
  // Sort by (name, city): ann/berlin, ann/munich, bob/berlin.
  const auto order2 = t.sorted_row_order({1, 2});
  EXPECT_EQ(order2, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(Table, EmptyTableBasics) {
  Table t(Schema::of_names({"a"}));
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_TRUE(t.group_by_value(0).empty());
  EXPECT_TRUE(t.sorted_row_order({0}).empty());
}

TEST(Value, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Value, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_FALSE(parse_double("1.2.3").has_value());
}

TEST(Value, ParseBool) {
  EXPECT_EQ(parse_bool("True"), true);
  EXPECT_EQ(parse_bool("no"), false);
  EXPECT_FALSE(parse_bool("maybe").has_value());
}

}  // namespace
}  // namespace llmq::table
