#include <gtest/gtest.h>

#include <set>

#include "rag/context_builder.hpp"
#include "rag/embedding.hpp"
#include "rag/vector_index.hpp"

namespace llmq::rag {
namespace {

TEST(Embedding, DeterministicAndNormalized) {
  Embedder e(128);
  const auto a = e.embed("the quick brown fox");
  const auto b = e.embed("the quick brown fox");
  EXPECT_EQ(a, b);
  double norm = 0.0;
  for (float x : a) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(Embedding, EmptyTextIsZeroVector) {
  Embedder e(64);
  const auto v = e.embed("");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(Embedding, SimilarTextsCloserThanDissimilar) {
  Embedder e(256);
  const auto a = e.embed("machine learning systems research paper");
  const auto b = e.embed("machine learning systems conference paper");
  const auto c = e.embed("baking sourdough bread at home slowly");
  EXPECT_GT(cosine_similarity(a, b), cosine_similarity(a, c));
}

TEST(Embedding, CosineEdgeCases) {
  EXPECT_EQ(cosine_similarity({}, {}), 0.0f);
  EXPECT_EQ(cosine_similarity({0.0f, 0.0f}, {1.0f, 0.0f}), 0.0f);
  EXPECT_NEAR(cosine_similarity({1.0f, 0.0f}, {1.0f, 0.0f}), 1.0f, 1e-6);
  EXPECT_NEAR(cosine_similarity({1.0f, 0.0f}, {-1.0f, 0.0f}), -1.0f, 1e-6);
}

TEST(VectorIndex, ExactSelfRetrieval) {
  VectorIndex idx{Embedder(128)};
  const auto id0 = idx.add("alpha beta gamma delta");
  idx.add("completely different words here");
  const auto hits = idx.search("alpha beta gamma delta", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, id0);
  EXPECT_NEAR(hits[0].score, 1.0f, 1e-5);
}

TEST(VectorIndex, TopKOrderedAndClamped) {
  VectorIndex idx{Embedder(128)};
  idx.add("cats and dogs");
  idx.add("cats and birds");
  idx.add("quantum chromodynamics lattice");
  const auto hits = idx.search("cats and dogs", 10);
  ASSERT_EQ(hits.size(), 3u);  // clamped to index size
  EXPECT_GE(hits[0].score, hits[1].score);
  EXPECT_GE(hits[1].score, hits[2].score);
  EXPECT_EQ(hits[0].id, 0u);
}

TEST(VectorIndex, DeterministicTieBreakById) {
  VectorIndex idx{Embedder(128)};
  idx.add("identical passage");
  idx.add("identical passage");
  const auto hits = idx.search("identical passage", 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 1u);
}

TEST(ContextBuilder, TableShapeAndContent) {
  VectorIndex idx{Embedder(128)};
  idx.add("topic one fact alpha");
  idx.add("topic one fact beta");
  idx.add("topic two fact gamma");
  RagTableOptions opt;
  opt.k = 2;
  opt.question_field = "claim";
  opt.context_prefix = "evidence";
  const auto t = build_rag_table(idx, {"about topic one", "about topic two"}, opt);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.schema().field(0).name, "claim");
  EXPECT_EQ(t.schema().field(1).name, "evidence1");
  EXPECT_EQ(t.cell(0, 0), "about topic one");
  // Retrieved contexts must come from the corpus verbatim.
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 1; c <= 2; ++c) {
      bool found = false;
      for (std::size_t d = 0; d < idx.size(); ++d)
        if (idx.document(d) == t.cell(r, c)) found = true;
      EXPECT_TRUE(found);
    }
}

TEST(ContextBuilder, SharedContextsAcrossQuestions) {
  // Questions about the same topic should retrieve identical context sets
  // — the repetition the RAG experiment relies on.
  VectorIndex idx{Embedder(128)};
  idx.add("solar power grid integration study results");
  idx.add("solar power grid stability analysis report");
  idx.add("medieval pottery excavation field notes");
  idx.add("medieval pottery kiln reconstruction");
  RagTableOptions opt;
  opt.k = 2;
  const auto t = build_rag_table(
      idx,
      {"what about solar power grid?", "more on solar power grid",
       "tell me about medieval pottery"},
      opt);
  // Same topic -> same context *set* (retrieval order may differ with the
  // query's own wording; the planner's field reordering handles that).
  const std::set<std::string> q0{t.cell(0, 1), t.cell(0, 2)};
  const std::set<std::string> q1{t.cell(1, 1), t.cell(1, 2)};
  const std::set<std::string> q2{t.cell(2, 1), t.cell(2, 2)};
  EXPECT_EQ(q0, q1);
  EXPECT_NE(q0, q2);
}

TEST(ContextBuilder, FewerDocsThanKPadsEmpty) {
  VectorIndex idx{Embedder(64)};
  idx.add("only document");
  RagTableOptions opt;
  opt.k = 3;
  const auto t = build_rag_table(idx, {"q"}, opt);
  EXPECT_EQ(t.cell(0, 1), "only document");
  EXPECT_EQ(t.cell(0, 2), "");
  EXPECT_EQ(t.cell(0, 3), "");
}

TEST(ContextBuilder, QuestionLastOption) {
  VectorIndex idx{Embedder(64)};
  idx.add("doc");
  RagTableOptions opt;
  opt.k = 1;
  opt.question_first = false;
  const auto t = build_rag_table(idx, {"q"}, opt);
  EXPECT_EQ(t.schema().field(0).name, "evidence1");
  EXPECT_EQ(t.schema().field(1).name, "claim");
  EXPECT_EQ(t.cell(0, 1), "q");
}

}  // namespace
}  // namespace llmq::rag
