#include "core/windowed.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hpp"
#include "util/rng.hpp"

namespace llmq::core {
namespace {

using table::Schema;
using table::Table;

Table random_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back(std::string(
          1, static_cast<char>('a' + rng.next_below(alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

WindowedOptions opts(std::size_t window) {
  WindowedOptions o;
  o.window_rows = window;
  o.ggr.measure = LengthMeasure::Unit;
  return o;
}

TEST(Windowed, FullWindowEqualsPlainGgr) {
  util::Rng rng(21);
  const auto t = random_table(rng, 40, 3, 3);
  const auto w = windowed_ggr(t, {}, opts(0));
  GgrOptions go;
  go.measure = LengthMeasure::Unit;
  const auto g = ggr(t, go);
  EXPECT_EQ(w.ordering.row_order(), g.ordering.row_order());
  EXPECT_EQ(w.ordering.field_orders(), g.ordering.field_orders());
  EXPECT_DOUBLE_EQ(w.phc, g.phc);
  EXPECT_EQ(w.windows, 1u);
}

TEST(Windowed, OrderingAlwaysValid) {
  util::Rng rng(22);
  const auto t = random_table(rng, 53, 4, 2);
  for (std::size_t window : {1u, 2u, 7u, 10u, 53u, 100u}) {
    const auto w = windowed_ggr(t, {}, opts(window));
    EXPECT_TRUE(w.ordering.validate(t.num_rows(), t.num_cols()))
        << "window " << window;
  }
}

TEST(Windowed, WindowCountArithmetic) {
  util::Rng rng(23);
  const auto t = random_table(rng, 50, 2, 2);
  EXPECT_EQ(windowed_ggr(t, {}, opts(10)).windows, 5u);
  EXPECT_EQ(windowed_ggr(t, {}, opts(16)).windows, 4u);  // 16*3+2
  EXPECT_EQ(windowed_ggr(t, {}, opts(1)).windows, 50u);
}

TEST(Windowed, RowsStayInsideTheirWindow) {
  // Streaming constraint: a row may not be emitted before an earlier
  // window finishes — positions [k*w, (k+1)*w) hold exactly the rows of
  // window k.
  util::Rng rng(24);
  const auto t = random_table(rng, 30, 3, 2);
  const std::size_t window = 10;
  const auto w = windowed_ggr(t, {}, opts(window));
  for (std::size_t pos = 0; pos < t.num_rows(); ++pos) {
    const std::size_t k = pos / window;
    EXPECT_GE(w.ordering.row_at(pos), k * window);
    EXPECT_LT(w.ordering.row_at(pos), (k + 1) * window);
  }
}

TEST(Windowed, LargerWindowsNeverLoseMuch) {
  // Quality should broadly increase with buffer size; we assert the full
  // window is at least as good as the smallest one, and that every window
  // size beats nothing-reordered on groupy data.
  util::Rng rng(25);
  const auto t = random_table(rng, 120, 3, 2);
  const double original = phc(t, original_ordering(t), LengthMeasure::Unit);
  double prev = -1.0;
  (void)prev;
  const double tiny = windowed_ggr(t, {}, opts(4)).phc;
  const double full = windowed_ggr(t, {}, opts(0)).phc;
  EXPECT_GE(full + 1e-9, tiny);
  EXPECT_GT(tiny, original);
}

TEST(Windowed, PhcSelfConsistent) {
  util::Rng rng(26);
  const auto t = random_table(rng, 64, 4, 3);
  const auto w = windowed_ggr(t, {}, opts(16));
  EXPECT_DOUBLE_EQ(w.phc, phc(t, w.ordering, LengthMeasure::Unit));
}

TEST(Windowed, CountersAggregate) {
  util::Rng rng(27);
  const auto t = random_table(rng, 60, 3, 2);
  const auto w = windowed_ggr(t, {}, opts(15));
  EXPECT_GE(w.counters.recursion_nodes, 4u);  // at least one per window
}

TEST(Windowed, EmptyTableThrows) {
  Table t(Schema::of_names({"a"}));
  EXPECT_THROW(windowed_ggr(t, {}, opts(8)), std::invalid_argument);
}

TEST(Windowed, WholeTableWindowPhcEqualsPlainGgr) {
  // window_rows = 0 means "buffer everything": the result must be
  // indistinguishable from plain GGR, PHC included.
  util::Rng rng(28);
  const auto t = random_table(rng, 35, 4, 3);
  GgrOptions go;
  go.measure = LengthMeasure::Unit;
  EXPECT_DOUBLE_EQ(windowed_ggr(t, {}, opts(0)).phc, ggr(t, go).phc);
  // A window covering the row count exactly behaves the same way.
  EXPECT_DOUBLE_EQ(windowed_ggr(t, {}, opts(35)).phc, ggr(t, go).phc);
}

TEST(Windowed, WindowOfOneKeepsArrivalRowOrder) {
  // window_rows = 1 degenerates to the original row order (each window
  // holds a single row, so no row movement is possible) with stats-ranked
  // fields; it must stay valid and self-consistent.
  util::Rng rng(29);
  const auto t = random_table(rng, 17, 3, 2);
  const auto w = windowed_ggr(t, {}, opts(1));
  EXPECT_EQ(w.windows, 17u);
  for (std::size_t pos = 0; pos < t.num_rows(); ++pos)
    EXPECT_EQ(w.ordering.row_at(pos), pos);
  EXPECT_TRUE(w.ordering.validate(t.num_rows(), t.num_cols()));
  EXPECT_DOUBLE_EQ(w.phc, phc(t, w.ordering, LengthMeasure::Unit));
}

TEST(Windowed, NonDividingWindowKeepsPartialTailWindow) {
  // 23 rows with window 7: windows of 7,7,7 and a final partial window of
  // 2 holding exactly the last two original rows.
  util::Rng rng(30);
  const auto t = random_table(rng, 23, 3, 2);
  const auto w = windowed_ggr(t, {}, opts(7));
  EXPECT_EQ(w.windows, 4u);
  EXPECT_TRUE(w.ordering.validate(t.num_rows(), t.num_cols()));
  std::vector<std::size_t> tail = {w.ordering.row_at(21),
                                   w.ordering.row_at(22)};
  std::sort(tail.begin(), tail.end());
  EXPECT_EQ(tail, (std::vector<std::size_t>{21, 22}));
}

}  // namespace
}  // namespace llmq::core
