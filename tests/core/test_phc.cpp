#include "core/phc.hpp"

#include <gtest/gtest.h>

namespace llmq::core {
namespace {

using table::Schema;
using table::Table;

// The §3.2 worst case (Fig 1a): first field unique, remaining identical.
Table fig1a_table(std::size_t n, std::size_t m) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    row.push_back("u" + std::to_string(r));  // unique first field
    for (std::size_t c = 1; c < m; ++c) row.push_back("v");
    t.append_row(std::move(row));
  }
  return t;
}

TEST(Phc, SingleRowIsZero) {
  Table t(Schema::of_names({"a"}));
  t.append_row({"x"});
  EXPECT_DOUBLE_EQ(phc(t, Ordering::identity(1, 1), LengthMeasure::Unit), 0.0);
}

TEST(Phc, Fig1aOriginalOrderIsZero) {
  const auto t = fig1a_table(5, 4);
  EXPECT_DOUBLE_EQ(phc(t, Ordering::identity(5, 4), LengthMeasure::Unit), 0.0);
}

TEST(Phc, Fig1aBetterOrderingScoresNm) {
  // Placing the m-1 constant fields first yields (n-1)*(m-1) with unit
  // lengths — exactly the paper's Fig 1a analysis.
  const std::size_t n = 5, m = 4;
  const auto t = fig1a_table(n, m);
  const std::vector<std::size_t> fields{1, 2, 3, 0};
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  const auto o = Ordering::fixed_fields(rows, fields);
  EXPECT_DOUBLE_EQ(phc(t, o, LengthMeasure::Unit),
                   static_cast<double>((n - 1) * (m - 1)));
}

TEST(Phc, PrefixBreaksAtFirstMismatch) {
  Table t(Schema::of_names({"a", "b", "c"}));
  t.append_row({"s", "s", "s"});
  t.append_row({"s", "x", "s"});  // matches a, breaks at b; c must NOT count
  EXPECT_DOUBLE_EQ(phc(t, Ordering::identity(2, 3), LengthMeasure::Unit), 1.0);
}

TEST(Phc, FirstFieldMismatchScoresZeroDespiteLaterMatches) {
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"p", "shared"});
  t.append_row({"q", "shared"});
  EXPECT_DOUBLE_EQ(phc(t, Ordering::identity(2, 2), LengthMeasure::Unit), 0.0);
}

TEST(Phc, ComparesOnlyAdjacentRows) {
  Table t(Schema::of_names({"a"}));
  t.append_row({"v"});
  t.append_row({"w"});
  t.append_row({"v"});  // matches row 0 but not its predecessor row 1
  EXPECT_DOUBLE_EQ(phc(t, Ordering::identity(3, 1), LengthMeasure::Unit), 0.0);
}

TEST(Phc, SquaredLengthsCharMeasure) {
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"abc", "de"});
  t.append_row({"abc", "de"});
  // 3^2 + 2^2 = 13 under char measure.
  EXPECT_DOUBLE_EQ(phc(t, Ordering::identity(2, 2), LengthMeasure::Chars), 13.0);
}

TEST(Phc, TokenMeasureUsesTokenCounts) {
  Table t(Schema::of_names({"a"}));
  t.append_row({"two words"});
  t.append_row({"two words"});
  // "two words" = 2 tokens -> hit of 4.
  EXPECT_DOUBLE_EQ(phc(t, Ordering::identity(2, 1), LengthMeasure::Tokens), 4.0);
}

TEST(Phc, FieldAndValueModeRejectsCrossFieldMatch) {
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"v", "w"});
  t.append_row({"x", "v"});
  // Row 2 ordered (b, a) puts "v" first, positionally equal to row 1's "v"
  // from field a.
  const Ordering o({0, 1}, {{0, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(phc(t, o, LengthMeasure::Unit, MatchMode::FieldAndValue),
                   0.0);
  EXPECT_DOUBLE_EQ(phc(t, o, LengthMeasure::Unit, MatchMode::ValueOnly), 1.0);
}

TEST(Phc, BreakdownAccountsEveryRow) {
  Table t(Schema::of_names({"a"}));
  t.append_row({"v"});
  t.append_row({"v"});
  t.append_row({"v"});
  const auto b = phc_breakdown(t, Ordering::identity(3, 1), LengthMeasure::Unit);
  EXPECT_DOUBLE_EQ(b.total, 2.0);
  EXPECT_EQ(b.rows_with_hits, 2u);
  ASSERT_EQ(b.per_row.size(), 3u);
  EXPECT_DOUBLE_EQ(b.per_row[0], 0.0);
  EXPECT_DOUBLE_EQ(b.per_row[1], 1.0);
  // Chargeable content excludes the first (cold) row.
  EXPECT_DOUBLE_EQ(b.max_possible, 2.0);
  EXPECT_DOUBLE_EQ(b.hit_fraction(), 1.0);
}

TEST(Phc, HitFractionPartial) {
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"v", "p"});
  t.append_row({"v", "q"});
  const auto b = phc_breakdown(t, Ordering::identity(2, 2), LengthMeasure::Unit);
  EXPECT_DOUBLE_EQ(b.total, 1.0);
  EXPECT_DOUBLE_EQ(b.max_possible, 2.0);
  EXPECT_DOUBLE_EQ(b.hit_fraction(), 0.5);
}

TEST(TokenPhr, SequentialSharing) {
  std::vector<std::vector<std::uint32_t>> reqs{
      {1, 2, 3, 4}, {1, 2, 3, 9}, {1, 2, 3, 9}, {7, 8}};
  const auto r = token_phr(reqs);
  EXPECT_EQ(r.total_tokens, 14u);
  EXPECT_EQ(r.hit_tokens, 3u + 4u + 0u);
  EXPECT_NEAR(r.rate(), 7.0 / 14.0, 1e-12);
}

TEST(TokenPhr, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(token_phr({}).rate(), 0.0);
  EXPECT_DOUBLE_EQ(token_phr({{1, 2}}).rate(), 0.0);
}

}  // namespace
}  // namespace llmq::core
