#include "core/ophr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/baselines.hpp"
#include "tokenizer/tokenizer.hpp"
#include "util/rng.hpp"

namespace llmq::core {
namespace {

using table::Schema;
using table::Table;

/// Brute force: maximum PHC over all row permutations x per-row field
/// permutations. Only viable for very small tables.
double brute_force_max_phc(const Table& t, LengthMeasure measure) {
  const std::size_t n = t.num_rows();
  const std::size_t m = t.num_cols();
  std::vector<std::size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);

  std::vector<std::vector<std::size_t>> field_perms;
  std::vector<std::size_t> fields(m);
  std::iota(fields.begin(), fields.end(), 0);
  do {
    field_perms.push_back(fields);
  } while (std::next_permutation(fields.begin(), fields.end()));

  const CellLengths lengths(t, measure);
  double best = 0.0;
  do {
    // For a fixed row order, the optimal per-row field permutation can be
    // chosen greedily row by row (each row's hit depends only on the
    // previous row's chosen permutation), so search permutations jointly
    // via DP over (row position, previous perm index).
    const std::size_t p = field_perms.size();
    std::vector<double> dp(p, 0.0);
    for (std::size_t pos = 1; pos < n; ++pos) {
      std::vector<double> next(p, -1.0);
      for (std::size_t prev = 0; prev < p; ++prev) {
        for (std::size_t cur = 0; cur < p; ++cur) {
          double hit = 0.0;
          for (std::size_t f = 0; f < m; ++f) {
            const auto pc = field_perms[prev][f];
            const auto cc = field_perms[cur][f];
            if (pc != cc) break;
            if (t.cell(rows[pos], cc) != t.cell(rows[pos - 1], pc)) break;
            hit += lengths.sq_len(rows[pos], cc);
          }
          next[cur] = std::max(next[cur], dp[prev] + hit);
        }
      }
      dp = std::move(next);
    }
    best = std::max(best, *std::max_element(dp.begin(), dp.end()));
  } while (std::next_permutation(rows.begin(), rows.end()));
  return best;
}

Table random_small_table(util::Rng& rng, std::size_t n, std::size_t m,
                         int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back(std::string(1, static_cast<char>(
                                       'a' + rng.next_below(alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

TEST(Ophr, SingleRowZero) {
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"x", "y"});
  const auto r = ophr(t, {.measure = LengthMeasure::Unit});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->phc, 0.0);
  EXPECT_TRUE(r->ordering.validate(1, 2));
}

TEST(Ophr, SingleColumnGroupsValues) {
  Table t(Schema::of_names({"a"}));
  t.append_row({"v"});
  t.append_row({"w"});
  t.append_row({"v"});
  t.append_row({"v"});
  const auto r = ophr(t, {.measure = LengthMeasure::Unit});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->phc, 2.0);  // three v's grouped -> 2 hits
  EXPECT_DOUBLE_EQ(phc(t, r->ordering, LengthMeasure::Unit), 2.0);
}

TEST(Ophr, Fig1aRecoversOptimal) {
  // First field unique, rest constant: optimum is (n-1)*(m-1).
  const std::size_t n = 4, m = 3;
  Table t(Schema::of_names({"u", "c1", "c2"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"u" + std::to_string(r), "v", "v"});
  const auto r = ophr(t, {.measure = LengthMeasure::Unit});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->phc, static_cast<double>((n - 1) * (m - 1)));
  EXPECT_DOUBLE_EQ(phc(t, r->ordering, LengthMeasure::Unit), r->phc);
}

TEST(Ophr, Fig1bPerRowReorderingBeatsFixed) {
  // Paper Fig 1b: three non-overlapping groups across three fields.
  // Optimal per-row ordering scores 3*(x-1); any fixed ordering only x-1.
  const std::size_t x = 3;
  Table t(Schema::of_names({"f1", "f2", "f3"}));
  std::size_t uid = 0;
  auto uniq = [&] { return "u" + std::to_string(uid++); };
  for (std::size_t i = 0; i < x; ++i) t.append_row({"G1", uniq(), uniq()});
  for (std::size_t i = 0; i < x; ++i) t.append_row({uniq(), "G2", uniq()});
  for (std::size_t i = 0; i < x; ++i) t.append_row({uniq(), uniq(), "G3"});
  const auto r = ophr(t, {.measure = LengthMeasure::Unit});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->phc, static_cast<double>(3 * (x - 1)));
}

TEST(Ophr, EmittedOrderingAchievesReportedPhc) {
  util::Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const auto t = random_small_table(rng, 5, 3, 2);
    const auto r = ophr(t, {.measure = LengthMeasure::Unit});
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->ordering.validate(t.num_rows(), t.num_cols()));
    // The emitted list realizes at least the computed S (boundary hits can
    // only add).
    EXPECT_GE(phc(t, r->ordering, LengthMeasure::Unit) + 1e-9, r->phc);
  }
}

TEST(Ophr, MatchesBruteForceOnTinyTables) {
  util::Rng rng(202);
  for (int trial = 0; trial < 15; ++trial) {
    const auto t = random_small_table(rng, 4, 2, 2);
    const auto r = ophr(t, {.measure = LengthMeasure::Unit});
    ASSERT_TRUE(r.has_value());
    const double brute = brute_force_max_phc(t, LengthMeasure::Unit);
    const double achieved = phc(t, r->ordering, LengthMeasure::Unit);
    EXPECT_NEAR(std::max(achieved, r->phc), brute, 1e-9)
        << "trial " << trial;
  }
}

TEST(Ophr, MatchesBruteForceThreeByThree) {
  util::Rng rng(303);
  for (int trial = 0; trial < 6; ++trial) {
    const auto t = random_small_table(rng, 3, 3, 2);
    const auto r = ophr(t, {.measure = LengthMeasure::Unit});
    ASSERT_TRUE(r.has_value());
    const double brute = brute_force_max_phc(t, LengthMeasure::Unit);
    EXPECT_NEAR(std::max(phc(t, r->ordering, LengthMeasure::Unit), r->phc),
                brute, 1e-9);
  }
}

TEST(Ophr, TimeBudgetExpires) {
  // A table large enough that exhaustive search cannot finish in ~1 ms.
  util::Rng rng(404);
  const auto t = random_small_table(rng, 12, 5, 3);
  const auto r = ophr(t, {.measure = LengthMeasure::Unit,
                          .time_budget_seconds = 0.001});
  EXPECT_FALSE(r.has_value());
}

TEST(Ophr, EmptyTableThrows) {
  Table t(Schema::of_names({"a"}));
  EXPECT_THROW(ophr(t), std::invalid_argument);
}

TEST(Ophr, TokenMeasureWeighsSquaredTokenLengths) {
  Table t(Schema::of_names({"short", "long"}));
  const std::string shared_long = "a much longer shared description value";
  t.append_row({"aa", shared_long});
  t.append_row({"aa", shared_long});
  t.append_row({"aa", "something entirely different here"});
  const auto r = ophr(t, {.measure = LengthMeasure::Tokens});
  ASSERT_TRUE(r.has_value());
  // Optimal: "short" leads every row ("aa" shared by all three rows), and
  // the two long-sharing rows are adjacent: PHC = 2*len(aa)^2 + len(long)^2.
  const auto& tok = tokenizer::global_tokenizer();
  const double l_aa = static_cast<double>(tok.count("aa"));
  const double l_long = static_cast<double>(tok.count(shared_long));
  EXPECT_DOUBLE_EQ(phc(t, r->ordering, LengthMeasure::Tokens),
                   2 * l_aa * l_aa + l_long * l_long);
}

}  // namespace
}  // namespace llmq::core
