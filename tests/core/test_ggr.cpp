#include "core/ggr.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/ophr.hpp"
#include "util/rng.hpp"

namespace llmq::core {
namespace {

using table::FdSet;
using table::Schema;
using table::Table;

GgrOptions unit_opts(int row_depth = -1, int col_depth = -1) {
  GgrOptions o;
  o.measure = LengthMeasure::Unit;
  o.max_row_depth = row_depth;
  o.max_col_depth = col_depth;
  return o;
}

Table random_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back(std::string(
          1, static_cast<char>('a' + rng.next_below(alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

TEST(Ggr, SingleRow) {
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"x", "y"});
  const auto r = ggr(t, unit_opts());
  EXPECT_DOUBLE_EQ(r.phc, 0.0);
  EXPECT_TRUE(r.ordering.validate(1, 2));
}

TEST(Ggr, SingleColumnGroups) {
  Table t(Schema::of_names({"a"}));
  t.append_row({"v"});
  t.append_row({"w"});
  t.append_row({"v"});
  const auto r = ggr(t, unit_opts());
  EXPECT_DOUBLE_EQ(r.phc, 1.0);
  EXPECT_DOUBLE_EQ(r.estimated_phc, 1.0);
}

TEST(Ggr, Fig1aOptimal) {
  // Unique first field, constant remainder: GGR must find (n-1)*(m-1).
  const std::size_t n = 6, m = 4;
  Table t(Schema::of_names({"u", "c1", "c2", "c3"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"u" + std::to_string(r), "v", "v", "v"});
  const auto r = ggr(t, unit_opts());
  EXPECT_DOUBLE_EQ(r.phc, static_cast<double>((n - 1) * (m - 1)));
}

TEST(Ggr, Fig1bPerRowReordering) {
  // Non-overlapping groups per field: GGR should recover 3*(x-1), an m-fold
  // improvement over any fixed field ordering.
  const std::size_t x = 4;
  Table t(Schema::of_names({"f1", "f2", "f3"}));
  std::size_t uid = 0;
  auto uniq = [&] { return "u" + std::to_string(uid++); };
  for (std::size_t i = 0; i < x; ++i) t.append_row({"G1", uniq(), uniq()});
  for (std::size_t i = 0; i < x; ++i) t.append_row({uniq(), "G2", uniq()});
  for (std::size_t i = 0; i < x; ++i) t.append_row({uniq(), uniq(), "G3"});
  const auto r = ggr(t, unit_opts());
  EXPECT_DOUBLE_EQ(r.phc, static_cast<double>(3 * (x - 1)));
}

TEST(Ggr, OrderingAlwaysValid) {
  util::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = 2 + rng.next_below(30);
    const auto m = 1 + rng.next_below(6);
    const auto t = random_table(rng, n, m, 3);
    const auto r = ggr(t, unit_opts(4, 2));
    EXPECT_TRUE(r.ordering.validate(t.num_rows(), t.num_cols()))
        << "trial " << trial;
  }
}

TEST(Ggr, ReportedPhcMatchesMetric) {
  util::Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const auto t = random_table(rng, 20, 4, 3);
    const auto r = ggr(t, unit_opts());
    EXPECT_DOUBLE_EQ(r.phc, phc(t, r.ordering, LengthMeasure::Unit));
  }
}

TEST(Ggr, EstimateIsLowerBoundWithoutFds) {
  // With exact grouping and no FDs, the greedy's S counts only hits the
  // emitted ordering realizes, so measured PHC >= estimate.
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const auto t = random_table(rng, 16, 3, 2);
    const auto r = ggr(t, unit_opts());
    EXPECT_GE(r.phc + 1e-9, r.estimated_phc) << "trial " << trial;
  }
}

TEST(Ggr, BeatsOriginalOrderingOnSkewedData) {
  util::Rng rng(10);
  const auto t = random_table(rng, 60, 4, 3);
  const auto r = ggr(t, unit_opts());
  const double original = phc(t, original_ordering(t), LengthMeasure::Unit);
  EXPECT_GE(r.phc, original);
}

TEST(Ggr, WithinTwoPercentOfOphrOnSmallTables) {
  // Paper Appendix D.1: GGR achieves within ~2% of OPHR's PHR.
  util::Rng rng(11);
  double ggr_total = 0.0, ophr_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto t = random_table(rng, 6, 3, 2);
    const auto g = ggr(t, unit_opts());
    const auto o = ophr(t, {.measure = LengthMeasure::Unit});
    ASSERT_TRUE(o.has_value());
    const double o_achieved = phc(t, o->ordering, LengthMeasure::Unit);
    EXPECT_LE(g.phc, o_achieved + 1e-9) << "GGR cannot beat optimal";
    ggr_total += g.phc;
    ophr_total += o_achieved;
  }
  EXPECT_GE(ggr_total, 0.85 * ophr_total);
}

TEST(Ggr, FdPlacesDependentFieldsTogether) {
  // id <-> name exact FD; reviews repeat per id.
  Table t(Schema::of_names({"review", "id", "name"}));
  t.append_row({"r1", "A", "Alpha"});
  t.append_row({"r2", "A", "Alpha"});
  t.append_row({"r3", "A", "Alpha"});
  t.append_row({"r4", "B", "Beta"});
  t.append_row({"r5", "B", "Beta"});
  FdSet fds;
  fds.add_group({"id", "name"});
  auto opts = unit_opts();
  const auto r = ggr(t, fds, opts);
  // Wherever a group was committed, id and name are adjacent in the field
  // order, and PHC counts both: groups (A:3 rows, B:2 rows) give
  // (3-1)*2 + (2-1)*2 = 6 with unit lengths.
  EXPECT_DOUBLE_EQ(r.phc, 6.0);
  for (std::size_t pos = 0; pos < r.ordering.num_rows(); ++pos) {
    const auto& fo = r.ordering.fields_at(pos);
    // id (1) first, then its FD-inferred name (2), then review (0).
    EXPECT_EQ(fo[0], 1u);
    EXPECT_EQ(fo[1], 2u);
  }
}

TEST(Ggr, FdClosureSkipsColumns) {
  Table t(Schema::of_names({"a", "b", "c"}));
  for (int i = 0; i < 8; ++i) {
    const std::string k = i < 4 ? "k1" : "k2";
    t.append_row({k, k + "_dep", "x" + std::to_string(i)});
  }
  FdSet fds;
  fds.add("a", "b");
  auto opts = unit_opts();
  const auto with_fd = ggr(t, fds, opts);
  EXPECT_GT(with_fd.counters.fd_fields_skipped, 0u);
  auto no_fd_opts = opts;
  no_fd_opts.use_fds = false;
  const auto without_fd = ggr(t, no_fd_opts);
  EXPECT_EQ(without_fd.counters.fd_fields_skipped, 0u);
  // Both find the same PHC here (FDs are an efficiency hint, not required
  // for quality on tiny tables).
  EXPECT_DOUBLE_EQ(with_fd.phc, without_fd.phc);
}

TEST(Ggr, ApproximateFdDoesNotCorruptPhcReporting) {
  // Declare an FD that is wrong for one row: reported PHC must still match
  // the independent metric (honesty under bad hints).
  Table t(Schema::of_names({"k", "dep"}));
  t.append_row({"g", "same"});
  t.append_row({"g", "same"});
  t.append_row({"g", "DIFFERENT"});
  t.append_row({"g", "same"});
  FdSet fds;
  fds.add("k", "dep");
  const auto r = ggr(t, fds, unit_opts());
  EXPECT_DOUBLE_EQ(r.phc, phc(t, r.ordering, LengthMeasure::Unit));
}

TEST(Ggr, DepthLimitsTriggerFallback) {
  util::Rng rng(12);
  const auto t = random_table(rng, 64, 4, 2);
  const auto shallow = ggr(t, unit_opts(1, 1));
  EXPECT_GT(shallow.counters.fallbacks, 0u);
  const auto deep = ggr(t, unit_opts(-1, -1));
  EXPECT_GE(deep.phc + 1e-9, shallow.phc * 0.5);
}

TEST(Ggr, ThresholdTriggersFallback) {
  util::Rng rng(13);
  const auto t = random_table(rng, 32, 3, 2);
  auto opts = unit_opts();
  opts.hitcount_threshold = 1e9;  // nothing exceeds this
  const auto r = ggr(t, opts);
  EXPECT_GT(r.counters.fallbacks, 0u);
  EXPECT_TRUE(r.ordering.validate(t.num_rows(), t.num_cols()));
}

TEST(Ggr, FallbackStillFindsFixedOrderHits) {
  // Even with recursion disabled (depth 0), the stats fallback sorts rows
  // under a stats-ranked fixed field order and captures repeats.
  Table t(Schema::of_names({"u", "g"}));
  for (int i = 0; i < 10; ++i)
    t.append_row({"u" + std::to_string(i), i % 2 ? "even" : "odd"});
  const auto r = ggr(t, unit_opts(0, 0));
  EXPECT_GT(r.phc, 0.0);
  EXPECT_EQ(r.counters.recursion_nodes, 1u);
}

TEST(Ggr, AllDistinctTableScoresZero) {
  Table t(Schema::of_names({"a", "b"}));
  for (int i = 0; i < 12; ++i)
    t.append_row({"x" + std::to_string(i), "y" + std::to_string(i)});
  const auto r = ggr(t, unit_opts());
  EXPECT_DOUBLE_EQ(r.phc, 0.0);
  EXPECT_TRUE(r.ordering.validate(12, 2));
}

TEST(Ggr, EmptyTableThrows) {
  Table t(Schema::of_names({"a"}));
  EXPECT_THROW(ggr(t, unit_opts()), std::invalid_argument);
}

TEST(Ggr, DeterministicAcrossRuns) {
  util::Rng rng(14);
  const auto t = random_table(rng, 40, 5, 3);
  const auto r1 = ggr(t, unit_opts(4, 2));
  const auto r2 = ggr(t, unit_opts(4, 2));
  EXPECT_EQ(r1.ordering.row_order(), r2.ordering.row_order());
  EXPECT_EQ(r1.ordering.field_orders(), r2.ordering.field_orders());
  EXPECT_DOUBLE_EQ(r1.phc, r2.phc);
}

TEST(Ggr, LiteralHitcountModeRuns) {
  util::Rng rng(15);
  const auto t = random_table(rng, 20, 3, 2);
  auto opts = unit_opts();
  opts.square_inferred_lengths = false;
  const auto r = ggr(t, opts);
  EXPECT_TRUE(r.ordering.validate(t.num_rows(), t.num_cols()));
}

TEST(Ggr, SolverTimeRecorded) {
  util::Rng rng(16);
  const auto t = random_table(rng, 50, 4, 3);
  const auto r = ggr(t, unit_opts(4, 2));
  EXPECT_GE(r.solve_seconds, 0.0);
  EXPECT_LT(r.solve_seconds, 5.0);
}

}  // namespace
}  // namespace llmq::core
