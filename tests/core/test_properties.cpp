// Parameterized property suites over the reordering stack (paper §3-§4):
// invariants that must hold for every planner on randomized tables.

#include <gtest/gtest.h>

#include <ostream>
#include <set>

#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "core/ophr.hpp"
#include "core/phc.hpp"
#include "util/rng.hpp"

namespace llmq::core {
namespace {

using table::Schema;
using table::Table;

struct TableShape {
  std::size_t rows;
  std::size_t cols;
  int alphabet;        // distinct single-char values per column
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const TableShape& s) {
  return os << s.rows << "x" << s.cols << "/a" << s.alphabet << "/s" << s.seed;
}

Table make_table(const TableShape& shape) {
  util::Rng rng(shape.seed);
  std::vector<std::string> names;
  for (std::size_t c = 0; c < shape.cols; ++c)
    names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < shape.rows; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < shape.cols; ++c)
      row.push_back(std::string(
          1, static_cast<char>('a' + rng.next_below(shape.alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

class ReorderProperty : public ::testing::TestWithParam<TableShape> {};

TEST_P(ReorderProperty, GgrOrderingIsPermutation) {
  const auto t = make_table(GetParam());
  GgrOptions opts;
  opts.measure = LengthMeasure::Unit;
  const auto r = ggr(t, opts);
  EXPECT_TRUE(r.ordering.validate(t.num_rows(), t.num_cols()));
}

TEST_P(ReorderProperty, GgrPhcSelfConsistent) {
  const auto t = make_table(GetParam());
  GgrOptions opts;
  opts.measure = LengthMeasure::Unit;
  const auto r = ggr(t, opts);
  EXPECT_DOUBLE_EQ(r.phc, phc(t, r.ordering, LengthMeasure::Unit));
}

TEST_P(ReorderProperty, GgrAtLeastStatsFixed) {
  // GGR with unlimited depth should never do worse than its own fallback
  // policy applied to the whole table... but greedy choices can in theory
  // lose to the global sort, so we assert a generous 70% floor, which holds
  // across the sweep and would catch real regressions.
  const auto t = make_table(GetParam());
  GgrOptions opts;
  opts.measure = LengthMeasure::Unit;
  opts.max_row_depth = -1;
  opts.max_col_depth = -1;
  const auto r = ggr(t, opts);
  const double fixed = phc(t, stats_fixed_ordering(t), LengthMeasure::Unit);
  EXPECT_GE(r.phc + 1e-9, 0.7 * fixed);
}

TEST_P(ReorderProperty, PhcNonNegativeAndBounded) {
  const auto t = make_table(GetParam());
  const auto b =
      phc_breakdown(t, original_ordering(t), LengthMeasure::Unit);
  EXPECT_GE(b.total, 0.0);
  EXPECT_LE(b.total, b.max_possible + 1e-9);
}

TEST_P(ReorderProperty, RowPermutationPreservesRowMultiset) {
  const auto t = make_table(GetParam());
  GgrOptions opts;
  opts.measure = LengthMeasure::Unit;
  const auto r = ggr(t, opts);
  // Each emitted position, materialized in field order, must be a
  // permutation of the original row's cells.
  for (std::size_t pos = 0; pos < r.ordering.num_rows(); ++pos) {
    const std::size_t row = r.ordering.row_at(pos);
    std::multiset<std::string> expect;
    for (std::size_t c = 0; c < t.num_cols(); ++c)
      expect.insert(t.cell(row, c));
    std::multiset<std::string> got;
    for (std::size_t f = 0; f < t.num_cols(); ++f)
      got.insert(r.ordering.cell(t, pos, f));
    EXPECT_EQ(expect, got);
  }
}

TEST_P(ReorderProperty, DepthLimitedGgrNeverInvalid) {
  const auto t = make_table(GetParam());
  for (int rd : {0, 1, 4}) {
    for (int cd : {0, 2}) {
      GgrOptions opts;
      opts.measure = LengthMeasure::Unit;
      opts.max_row_depth = rd;
      opts.max_col_depth = cd;
      const auto r = ggr(t, opts);
      EXPECT_TRUE(r.ordering.validate(t.num_rows(), t.num_cols()))
          << "rd=" << rd << " cd=" << cd;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReorderProperty,
    ::testing::Values(TableShape{2, 1, 1, 1}, TableShape{2, 2, 2, 2},
                      TableShape{5, 3, 2, 3}, TableShape{8, 2, 3, 4},
                      TableShape{10, 4, 2, 5}, TableShape{16, 3, 4, 6},
                      TableShape{25, 5, 3, 7}, TableShape{40, 4, 5, 8},
                      TableShape{64, 6, 2, 9}, TableShape{100, 3, 8, 10},
                      TableShape{33, 7, 3, 11}, TableShape{50, 2, 2, 12}));

// OPHR-vs-GGR dominance on brute-forceable shapes.
class OptimalityProperty : public ::testing::TestWithParam<TableShape> {};

TEST_P(OptimalityProperty, OphrDominatesGgr) {
  const auto t = make_table(GetParam());
  const auto o = ophr(t, {.measure = LengthMeasure::Unit});
  ASSERT_TRUE(o.has_value());
  GgrOptions opts;
  opts.measure = LengthMeasure::Unit;
  opts.max_row_depth = -1;
  opts.max_col_depth = -1;
  const auto g = ggr(t, opts);
  EXPECT_GE(phc(t, o->ordering, LengthMeasure::Unit) + 1e-9, g.phc);
}

TEST_P(OptimalityProperty, OphrEmissionConsistent) {
  const auto t = make_table(GetParam());
  const auto o = ophr(t, {.measure = LengthMeasure::Unit});
  ASSERT_TRUE(o.has_value());
  EXPECT_TRUE(o->ordering.validate(t.num_rows(), t.num_cols()));
  EXPECT_GE(phc(t, o->ordering, LengthMeasure::Unit) + 1e-9, o->phc);
}

INSTANTIATE_TEST_SUITE_P(
    SmallSweep, OptimalityProperty,
    ::testing::Values(TableShape{2, 2, 2, 21}, TableShape{3, 2, 2, 22},
                      TableShape{4, 2, 2, 23}, TableShape{4, 3, 2, 24},
                      TableShape{5, 2, 3, 25}, TableShape{5, 3, 2, 26},
                      TableShape{6, 2, 2, 27}, TableShape{6, 3, 3, 28}));

}  // namespace
}  // namespace llmq::core
