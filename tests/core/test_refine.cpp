#include "core/refine.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/ggr.hpp"
#include "util/rng.hpp"

namespace llmq::core {
namespace {

using table::Schema;
using table::Table;

Table random_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back(std::string(
          1, static_cast<char>('a' + rng.next_below(alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

RefineOptions unit_opts() {
  RefineOptions o;
  o.measure = LengthMeasure::Unit;
  return o;
}

TEST(Refine, NeverDecreasesPhc) {
  util::Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const auto t = random_table(rng, 24, 3, 2);
    const auto start = random_ordering(t, rng);
    const auto r = refine_ordering(t, start, unit_opts());
    EXPECT_GE(r.phc_after + 1e-9, r.phc_before) << trial;
    EXPECT_TRUE(r.ordering.validate(t.num_rows(), t.num_cols()));
  }
}

TEST(Refine, ReportedPhcsMatchMetric) {
  util::Rng rng(32);
  const auto t = random_table(rng, 30, 4, 3);
  const auto start = original_ordering(t);
  const auto r = refine_ordering(t, start, unit_opts());
  EXPECT_DOUBLE_EQ(r.phc_before, phc(t, start, LengthMeasure::Unit));
  EXPECT_DOUBLE_EQ(r.phc_after, phc(t, r.ordering, LengthMeasure::Unit));
}

TEST(Refine, FieldMoveAlignsWithPredecessor) {
  // Two rows sharing a value in field b only; the identity ordering scores
  // 0 (a differs first), refinement should flip row 2's fields to (b, a).
  Table t(Schema::of_names({"a", "b"}));
  t.append_row({"x", "s"});
  t.append_row({"y", "s"});
  auto opts = unit_opts();
  const auto r = refine_ordering(t, original_ordering(t), opts);
  EXPECT_DOUBLE_EQ(r.phc_after, 1.0);
  EXPECT_GT(r.moves_applied, 0u);
}

TEST(Refine, RowSwapGroupsEqualRows) {
  // v, w, v: swapping the last two groups the v's.
  Table t(Schema::of_names({"a"}));
  t.append_row({"v"});
  t.append_row({"w"});
  t.append_row({"v"});
  const auto r = refine_ordering(t, original_ordering(t), unit_opts());
  EXPECT_DOUBLE_EQ(r.phc_after, 1.0);
}

TEST(Refine, FixedPointIsIdempotent) {
  util::Rng rng(33);
  const auto t = random_table(rng, 20, 3, 2);
  auto opts = unit_opts();
  opts.max_passes = 16;
  const auto first = refine_ordering(t, original_ordering(t), opts);
  const auto second = refine_ordering(t, first.ordering, opts);
  EXPECT_DOUBLE_EQ(second.phc_after, first.phc_after);
  EXPECT_EQ(second.moves_applied, 0u);
}

TEST(Refine, ImprovesRandomButRarelyGgr) {
  util::Rng rng(34);
  const auto t = random_table(rng, 40, 3, 2);
  GgrOptions go;
  go.measure = LengthMeasure::Unit;
  go.max_row_depth = -1;
  go.max_col_depth = -1;
  const auto g = ggr(t, go);
  const auto refined_ggr = refine_ordering(t, g.ordering, unit_opts());
  EXPECT_GE(refined_ggr.phc_after + 1e-9, g.phc);
  // From a random start the gains are large...
  const auto random_start = random_ordering(t, rng);
  const auto refined_rand = refine_ordering(t, random_start, unit_opts());
  const double rand_gain = refined_rand.phc_after - refined_rand.phc_before;
  // ...and strictly positive on this groupy table.
  EXPECT_GT(rand_gain, 0.0);
}

TEST(Refine, MoveTogglesRespected) {
  util::Rng rng(35);
  const auto t = random_table(rng, 20, 3, 2);
  auto opts = unit_opts();
  opts.row_swaps = false;
  opts.field_moves = false;
  const auto r = refine_ordering(t, original_ordering(t), opts);
  EXPECT_EQ(r.moves_applied, 0u);
  EXPECT_DOUBLE_EQ(r.phc_after, r.phc_before);
}

TEST(Refine, PassBudgetHonored) {
  util::Rng rng(36);
  const auto t = random_table(rng, 60, 3, 2);
  auto opts = unit_opts();
  opts.max_passes = 1;
  const auto r = refine_ordering(t, random_ordering(t, rng), opts);
  EXPECT_EQ(r.passes, 1u);
}

}  // namespace
}  // namespace llmq::core
