#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "core/phc.hpp"
#include "core/schedule.hpp"

namespace llmq::core {
namespace {

using table::Schema;
using table::Table;

Table sample() {
  Table t(Schema::of_names({"id", "group"}));
  t.append_row({"3", "b"});
  t.append_row({"1", "a"});
  t.append_row({"2", "a"});
  t.append_row({"4", "b"});
  return t;
}

TEST(Baselines, OriginalIsIdentity) {
  const auto t = sample();
  const auto o = original_ordering(t);
  EXPECT_TRUE(o.validate(4, 2));
  EXPECT_EQ(o.row_order(), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Baselines, SortedOriginalFieldsSorts) {
  const auto t = sample();
  const auto o = sorted_original_fields(t);
  // Lexicographic by (id, group): 1,2,3,4.
  EXPECT_EQ(o.row_order(), (std::vector<std::size_t>{1, 2, 0, 3}));
}

TEST(Baselines, StatsFixedPutsRepetitiveFieldFirst) {
  const auto t = sample();
  const auto o = stats_fixed_ordering(t);
  // "group" has card 2 over 4 rows; "id" is unique — group must lead.
  EXPECT_EQ(o.fields_at(0)[0], 1u);
  // Rows sorted by group: the two 'a's adjacent, two 'b's adjacent.
  const double score = phc(t, o, LengthMeasure::Unit);
  EXPECT_DOUBLE_EQ(score, 2.0);
}

TEST(Baselines, StatsFixedBeatsOriginalHere) {
  const auto t = sample();
  EXPECT_GT(phc(t, stats_fixed_ordering(t), LengthMeasure::Unit),
            phc(t, original_ordering(t), LengthMeasure::Unit));
}

TEST(Baselines, RandomOrderingValidates) {
  const auto t = sample();
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(random_ordering(t, rng).validate(4, 2));
}

TEST(Baselines, SuborderingCoversRequestedRows) {
  const auto t = sample();
  const auto sub = stats_fixed_subordering(t, {0, 3}, {0, 1});
  EXPECT_EQ(sub.row_order.size(), 2u);
  EXPECT_EQ(sub.field_order.size(), 2u);
}

TEST(PolicyFacade, RoundTripNames) {
  for (Policy p : {Policy::Original, Policy::SortedFixed, Policy::StatsFixed,
                   Policy::Ggr, Policy::Ophr}) {
    const auto name = to_string(p);
    ASSERT_TRUE(policy_from_string(name).has_value()) << name;
    EXPECT_EQ(*policy_from_string(name), p);
  }
  EXPECT_FALSE(policy_from_string("bogus").has_value());
}

TEST(PolicyFacade, PlansEveryPolicy) {
  const auto t = sample();
  table::FdSet fds;
  for (Policy p : {Policy::Original, Policy::SortedFixed, Policy::StatsFixed,
                   Policy::Ggr}) {
    PlanRequest req;
    req.policy = p;
    req.ggr.measure = LengthMeasure::Unit;
    const auto plan = plan_ordering(t, fds, req);
    EXPECT_TRUE(plan.ordering.validate(4, 2)) << to_string(p);
    EXPECT_FALSE(plan.timed_out);
  }
}

TEST(PolicyFacade, OphrTimeoutFallsBackToOriginal) {
  // Large-ish table with tiny budget: the facade must not hang and must
  // return a usable ordering.
  Table t(Schema::of_names({"a", "b", "c", "d"}));
  util::Rng rng(9);
  for (int i = 0; i < 14; ++i)
    t.append_row({std::string(1, static_cast<char>('a' + rng.next_below(2))),
                  std::string(1, static_cast<char>('a' + rng.next_below(2))),
                  std::string(1, static_cast<char>('a' + rng.next_below(2))),
                  std::string(1, static_cast<char>('a' + rng.next_below(2)))});
  PlanRequest req;
  req.policy = Policy::Ophr;
  req.ophr.time_budget_seconds = 0.0005;
  const auto plan = plan_ordering(t, table::FdSet{}, req);
  EXPECT_TRUE(plan.timed_out);
  EXPECT_TRUE(plan.ordering.validate(t.num_rows(), t.num_cols()));
}

}  // namespace
}  // namespace llmq::core
