#include "core/ordering.hpp"

#include <gtest/gtest.h>

namespace llmq::core {
namespace {

table::Table tiny() {
  table::Table t(table::Schema::of_names({"a", "b"}));
  t.append_row({"1", "x"});
  t.append_row({"2", "y"});
  return t;
}

TEST(Ordering, IdentityValidates) {
  const auto o = Ordering::identity(3, 4);
  EXPECT_TRUE(o.validate(3, 4));
  EXPECT_EQ(o.row_at(2), 2u);
  EXPECT_EQ(o.fields_at(1), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Ordering, FixedFieldsSharesPermutation) {
  const auto o = Ordering::fixed_fields({1, 0}, {1, 0});
  EXPECT_TRUE(o.validate(2, 2));
  EXPECT_EQ(o.fields_at(0), o.fields_at(1));
  EXPECT_EQ(o.row_at(0), 1u);
}

TEST(Ordering, SizeMismatchThrows) {
  EXPECT_THROW(Ordering({0, 1}, {{0}}), std::invalid_argument);
}

TEST(Ordering, ValidateCatchesDuplicateRow) {
  const Ordering o({0, 0}, {{0}, {0}});
  EXPECT_FALSE(o.validate(2, 1));
}

TEST(Ordering, ValidateCatchesOutOfRangeRow) {
  const Ordering o({0, 5}, {{0}, {0}});
  EXPECT_FALSE(o.validate(2, 1));
}

TEST(Ordering, ValidateCatchesBadFieldPermutation) {
  const Ordering o({0, 1}, {{0, 1}, {1, 1}});
  EXPECT_FALSE(o.validate(2, 2));
}

TEST(Ordering, ValidateCatchesWrongRowCount) {
  const auto o = Ordering::identity(2, 2);
  EXPECT_FALSE(o.validate(3, 2));
}

TEST(Ordering, CellAccessorRespectsPermutation) {
  const auto t = tiny();
  const Ordering o({1, 0}, {{1, 0}, {0, 1}});
  EXPECT_EQ(o.cell(t, 0, 0), "y");  // row 1, field b
  EXPECT_EQ(o.cell(t, 0, 1), "2");
  EXPECT_EQ(o.cell(t, 1, 0), "1");  // row 0, field a
}

}  // namespace
}  // namespace llmq::core
