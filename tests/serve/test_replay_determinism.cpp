// Deterministic replay: the online serving stack is a pure function of
// (seed, config). Two runs with identical inputs must produce
// bit-identical OnlineRunResult — every counter, per-replica metric, and
// per-request attribution — for n_replicas in {1, 4} and preemption both
// off and on. Preemption adds new event types (evict, re-queue, resume)
// to the merged virtual clock; any hidden nondeterminism they introduce
// (iteration over an unordered container, address-dependent tie-break,
// uninitialized field) shows up here as a diverging replay.

#include <gtest/gtest.h>

#include "serve/online.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table tiny_table(std::size_t n) {
  Table t(Schema::of_names({"category", "region", "status"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"cat_" + std::to_string(r % 3),
                  "region_" + std::to_string(r % 4),
                  r % 2 ? "active" : "archived"});
  return t;
}

void expect_latency_identical(const LatencySummary& a,
                              const LatencySummary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean_ttft, b.mean_ttft);
  EXPECT_EQ(a.p50_ttft, b.p50_ttft);
  EXPECT_EQ(a.p90_ttft, b.p90_ttft);
  EXPECT_EQ(a.p95_ttft, b.p95_ttft);
  EXPECT_EQ(a.p99_ttft, b.p99_ttft);
  EXPECT_EQ(a.mean_queue_delay, b.mean_queue_delay);
  EXPECT_EQ(a.p90_queue_delay, b.p90_queue_delay);
  EXPECT_EQ(a.p99_queue_delay, b.p99_queue_delay);
  EXPECT_EQ(a.mean_itl, b.mean_itl);
  EXPECT_EQ(a.p50_itl, b.p50_itl);
  EXPECT_EQ(a.p90_itl, b.p90_itl);
  EXPECT_EQ(a.p99_itl, b.p99_itl);
  EXPECT_EQ(a.p50_e2e, b.p50_e2e);
  EXPECT_EQ(a.p99_e2e, b.p99_e2e);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
}

void expect_engine_identical(const llm::EngineMetrics& a,
                             const llm::EngineMetrics& b) {
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.prefill_seconds, b.prefill_seconds);
  EXPECT_EQ(a.decode_seconds, b.decode_seconds);
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens);
  EXPECT_EQ(a.cached_prompt_tokens, b.cached_prompt_tokens);
  EXPECT_EQ(a.computed_prompt_tokens, b.computed_prompt_tokens);
  EXPECT_EQ(a.output_tokens, b.output_tokens);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.sum_batch_size, b.sum_batch_size);
  EXPECT_EQ(a.peak_batch_size, b.peak_batch_size);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.recompute_prefill_tokens, b.recompute_prefill_tokens);
  EXPECT_EQ(a.recompute_prefill_seconds, b.recompute_prefill_seconds);
  EXPECT_EQ(a.cache.lookups, b.cache.lookups);
  EXPECT_EQ(a.cache.hit_tokens, b.cache.hit_tokens);
  EXPECT_EQ(a.cache.lookup_tokens, b.cache.lookup_tokens);
  EXPECT_EQ(a.cache.inserted_blocks, b.cache.inserted_blocks);
  EXPECT_EQ(a.cache.evicted_blocks, b.cache.evicted_blocks);
}

void expect_identical(const OnlineRunResult& a, const OnlineRunResult& b) {
  // Per-request attribution, in completion order.
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const ServedRequest& x = a.requests[i];
    const ServedRequest& y = b.requests[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.tenant, y.tenant);
    EXPECT_EQ(x.row, y.row);
    EXPECT_EQ(x.replica, y.replica);
    EXPECT_EQ(x.arrival_time, y.arrival_time);
    EXPECT_EQ(x.dispatch_time, y.dispatch_time);
    EXPECT_EQ(x.admit_time, y.admit_time);
    EXPECT_EQ(x.first_token_time, y.first_token_time);
    EXPECT_EQ(x.finish_time, y.finish_time);
    EXPECT_EQ(x.prompt_tokens, y.prompt_tokens);
    EXPECT_EQ(x.cached_tokens, y.cached_tokens);
    EXPECT_EQ(x.output_tokens, y.output_tokens);
    EXPECT_EQ(x.priority, y.priority);
    EXPECT_EQ(x.preemptions, y.preemptions);
    EXPECT_EQ(x.recomputed_tokens, y.recomputed_tokens);
  }

  expect_latency_identical(a.latency, b.latency);
  expect_engine_identical(a.engine, b.engine);

  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.phc, b.phc);
  EXPECT_EQ(a.per_tenant, b.per_tenant);
  EXPECT_EQ(a.load_imbalance, b.load_imbalance);
  ASSERT_EQ(a.emitted.num_rows(), b.emitted.num_rows());
  for (std::size_t i = 0; i < a.emitted.num_rows(); ++i) {
    EXPECT_EQ(a.emitted.row_at(i), b.emitted.row_at(i));
    EXPECT_EQ(a.emitted.fields_at(i), b.emitted.fields_at(i));
  }

  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t r = 0; r < a.replicas.size(); ++r) {
    EXPECT_EQ(a.replicas[r].requests, b.replicas[r].requests);
    EXPECT_EQ(a.replicas[r].routed_prompt_tokens,
              b.replicas[r].routed_prompt_tokens);
    expect_engine_identical(a.replicas[r].engine, b.replicas[r].engine);
  }

  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    EXPECT_EQ(a.per_class[c].priority, b.per_class[c].priority);
    EXPECT_EQ(a.per_class[c].requests, b.per_class[c].requests);
    EXPECT_EQ(a.per_class[c].preemptions, b.per_class[c].preemptions);
    EXPECT_EQ(a.per_class[c].recomputed_tokens,
              b.per_class[c].recomputed_tokens);
    expect_latency_identical(a.per_class[c].latency, b.per_class[c].latency);
  }
}

struct ReplayCase {
  std::size_t n_replicas;
  bool preemption;
};

class ReplayDeterminism : public ::testing::TestWithParam<ReplayCase> {};

TEST_P(ReplayDeterminism, SameSeedSameConfigIsBitIdentical) {
  const ReplayCase rc = GetParam();
  const std::size_t n_rows = 60;
  const Table t = tiny_table(n_rows);
  const table::FdSet fds;

  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a serving assistant.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 6.0;
  cfg.class_output_multiplier = {0.5, 1.0, 4.0};
  cfg.ttft_slo_seconds = 5.0;
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 16;
  cfg.scheduler.max_wait_seconds = 1.0;
  cfg.scheduler.priority_order = true;
  cfg.scheduler.aging_seconds = 4.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.max_batch_size = 4;
  cfg.engine.kv_pool_blocks_override = 96;  // tight: defer + preempt traffic
  cfg.engine.preemption = rc.preemption;
  cfg.engine.priority_aging_seconds = 4.0;
  cfg.n_replicas = rc.n_replicas;
  cfg.router = RouterPolicy::PrefixAffinity;

  WorkloadOptions w;
  w.arrival_rate = 40.0;
  w.n_tenants = 3;
  w.tenant_classes = {llm::PriorityClass::Batch,
                      llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard};
  w.n_requests = 2 * n_rows;
  w.seed = 1234;
  const auto arrivals = generate_arrivals(n_rows, w);

  const OnlineRunResult run1 = run_online(t, fds, arrivals, cfg);
  const OnlineRunResult run2 = run_online(t, fds, arrivals, cfg);
  expect_identical(run1, run2);

  // The preemption-on arms must actually exercise preemption, otherwise
  // this replay pins nothing new.
  if (rc.preemption) {
    EXPECT_GT(run1.engine.preemptions, 0u);
  }
}

std::string case_name(const ::testing::TestParamInfo<ReplayCase>& info) {
  return "replicas" + std::to_string(info.param.n_replicas) +
         (info.param.preemption ? "_preempt" : "_nopreempt");
}

INSTANTIATE_TEST_SUITE_P(ReplicasXPreemption, ReplayDeterminism,
                         ::testing::Values(ReplayCase{1, false},
                                           ReplayCase{1, true},
                                           ReplayCase{4, false},
                                           ReplayCase{4, true}),
                         case_name);

}  // namespace
}  // namespace llmq::serve
