// Output-length predictor + SPJF scheduling properties.
//
//   * EWMA convergence — a constant per-tenant stream converges to the
//     true length and the error pad decays toward zero;
//   * penalty monotonicity — for a FIXED observation sequence, predictions
//     are non-decreasing in mispredict_penalty (the knob pads, never
//     flips);
//   * per-tenant isolation and the >= 1 token floor;
//   * FIFO fallback — spjf knobs with a disabled predictor are bit-exact
//     with spjf off (predicted_output_tokens == 0 means "no prediction");
//   * no starvation — under continuous short-predicted pressure with SPJF
//     admission, priority aging still promotes long-predicted requests:
//     their worst-case admission wait is strictly smaller than in the
//     same run without aging.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "serve/length_predictor.hpp"
#include "serve/online.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

TEST(LengthPredictor, ConvergesToAConstantStream) {
  LengthPredictorOptions opt;
  opt.enabled = true;
  opt.ewma_alpha = 0.25;
  opt.initial_estimate = 8.0;
  LengthPredictor p(opt);

  EXPECT_DOUBLE_EQ(p.predict(0), 8.0);  // prior before any observation
  for (int i = 0; i < 64; ++i) p.observe(0, 20);
  EXPECT_NEAR(p.predict(0), 20.0, 1e-6);
  EXPECT_EQ(p.predict_tokens(0), 20u);
  EXPECT_EQ(p.observations(0), 64u);

  // The error pad also decays: with penalty the padded prediction
  // converges to the same limit.
  LengthPredictorOptions padded = opt;
  padded.mispredict_penalty = 2.0;
  LengthPredictor q(padded);
  for (int i = 0; i < 256; ++i) q.observe(7, 20);
  EXPECT_NEAR(q.predict(7), 20.0, 1e-3);
}

TEST(LengthPredictor, PenaltyIsMonotoneOnAFixedObservationSequence) {
  // Noisy sequence so the abs-err pad is genuinely positive.
  util::Rng rng(9);
  std::vector<std::size_t> seq;
  for (int i = 0; i < 200; ++i) seq.push_back(1 + rng.next_below(40));

  double prev = 0.0;
  for (const double penalty : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    LengthPredictorOptions opt;
    opt.enabled = true;
    opt.mispredict_penalty = penalty;
    LengthPredictor p(opt);
    for (std::size_t x : seq) p.observe(3, x);
    const double pred = p.predict(3);
    EXPECT_GE(pred, prev) << "penalty=" << penalty;
    prev = pred;
  }
  // And the pad is real: the largest penalty strictly exceeds the raw
  // mean for this noisy stream.
  LengthPredictorOptions raw;
  raw.enabled = true;
  LengthPredictor p0(raw);
  for (std::size_t x : seq) p0.observe(3, x);
  EXPECT_GT(prev, p0.predict(3));
}

TEST(LengthPredictor, TenantsAreIsolatedAndPredictionsAreFloored) {
  LengthPredictorOptions opt;
  opt.enabled = true;
  LengthPredictor p(opt);
  for (int i = 0; i < 32; ++i) p.observe(0, 100);
  EXPECT_EQ(p.observations(1), 0u);
  EXPECT_DOUBLE_EQ(p.predict(1), opt.initial_estimate);

  // A tenant generating empty outputs still predicts at least one token.
  for (int i = 0; i < 64; ++i) p.observe(2, 0);
  EXPECT_DOUBLE_EQ(p.predict(2), 1.0);
  EXPECT_EQ(p.predict_tokens(2), 1u);

  // Disabled predictor: integer channel reports "no prediction".
  LengthPredictor off{};
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.predict_tokens(0), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end properties through run_online.

table::Table predictor_table(std::size_t n) {
  table::Table t(table::Schema::of_names({"item", "status"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"item " + std::to_string(r),
                  r % 2 ? "active" : "archived"});
  return t;
}

OnlineConfig overload_config() {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a serving assistant.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 8.0;
  // Tenant parity picks the length group: even tenants short, odd long.
  cfg.tenant_output_multiplier = {0.25, 4.0};
  cfg.scheduler.policy = Policy::Fifo;
  cfg.scheduler.window_rows = 16;
  cfg.scheduler.max_wait_seconds = 0.25;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.max_batch_size = 4;
  cfg.engine.kv_pool_blocks_override = 2048;
  return cfg;
}

std::vector<Arrival> overload_stream(std::size_t n_rows, std::size_t n) {
  WorkloadOptions w;
  w.arrival_rate = 200.0;  // far past capacity: a queue is always waiting
  w.n_tenants = 6;
  w.tenant_skew = 0.0;
  w.n_requests = n;
  w.seed = 77;
  return generate_arrivals(n_rows, w);
}

void expect_bit_identical(const OnlineRunResult& a, const OnlineRunResult& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_DOUBLE_EQ(a.requests[i].admit_time, b.requests[i].admit_time);
    EXPECT_DOUBLE_EQ(a.requests[i].finish_time, b.requests[i].finish_time);
    EXPECT_EQ(a.requests[i].prompt_tokens, b.requests[i].prompt_tokens);
    EXPECT_EQ(a.requests[i].cached_tokens, b.requests[i].cached_tokens);
    EXPECT_EQ(a.requests[i].output_tokens, b.requests[i].output_tokens);
    EXPECT_EQ(a.requests[i].preemptions, b.requests[i].preemptions);
  }
  EXPECT_EQ(a.emitted.row_order(), b.emitted.row_order());
  EXPECT_DOUBLE_EQ(a.phc, b.phc);
  EXPECT_EQ(a.engine.cached_prompt_tokens, b.engine.cached_prompt_tokens);
}

TEST(LengthPredictorServing, DisabledPredictorMakesSpjfExactFifo) {
  const table::Table t = predictor_table(48);
  const table::FdSet fds;
  const auto arrivals = overload_stream(t.num_rows(), 96);

  OnlineConfig plain = overload_config();
  OnlineConfig spjf_off_predictor = overload_config();
  spjf_off_predictor.scheduler.spjf = true;
  spjf_off_predictor.engine.spjf = true;
  // predictor.enabled stays false: every request carries
  // predicted_output_tokens == 0 and both spjf paths must keep FIFO order.
  const auto a = run_online(t, fds, arrivals, plain);
  const auto b = run_online(t, fds, arrivals, spjf_off_predictor);
  expect_bit_identical(a, b);
}

TEST(LengthPredictorServing, SpjfReordersButConservesCompletions) {
  const table::Table t = predictor_table(48);
  const table::FdSet fds;
  const auto arrivals = overload_stream(t.num_rows(), 96);

  OnlineConfig fifo = overload_config();
  OnlineConfig spjf = overload_config();
  spjf.predictor.enabled = true;
  spjf.scheduler.spjf = true;
  spjf.engine.spjf = true;

  const auto a = run_online(t, fds, arrivals, fifo);
  const auto b = run_online(t, fds, arrivals, spjf);
  ASSERT_EQ(a.requests.size(), arrivals.size());
  ASSERT_EQ(b.requests.size(), arrivals.size());

  // Same multiset of ids, and deterministic on rerun.
  auto ids = [](const OnlineRunResult& r) {
    std::vector<std::uint64_t> v;
    for (const ServedRequest& sr : r.requests) v.push_back(sr.id);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(ids(a), ids(b));
  expect_bit_identical(b, run_online(t, fds, arrivals, spjf));

  // The reorder is real under overload: short-predicted (even) tenants'
  // mean admission wait improves over FIFO.
  auto mean_wait = [](const OnlineRunResult& r, bool short_group) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const ServedRequest& sr : r.requests) {
      if ((sr.tenant % 2 == 0) != short_group) continue;
      sum += sr.admit_time - sr.arrival_time;
      ++n;
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_LT(mean_wait(b, true), mean_wait(a, true));
}

TEST(LengthPredictorServing, AgingPromotesLongPredictedUnderSpjfPressure) {
  const table::Table t = predictor_table(48);
  const table::FdSet fds;
  const auto arrivals = overload_stream(t.num_rows(), 96);

  OnlineConfig starved = overload_config();
  starved.predictor.enabled = true;
  starved.scheduler.spjf = true;
  starved.engine.spjf = true;

  OnlineConfig aged = starved;
  aged.engine.priority_aging_seconds = 0.5;
  aged.scheduler.aging_seconds = 0.5;

  const auto without = run_online(t, fds, arrivals, starved);
  const auto with = run_online(t, fds, arrivals, aged);
  ASSERT_EQ(without.requests.size(), arrivals.size());
  ASSERT_EQ(with.requests.size(), arrivals.size());

  // Worst-case admission wait of the long-predicted (odd-tenant) group:
  // aging promotes waiters past fresh short-predicted arrivals, so the
  // tail wait strictly shrinks versus pure SPJF.
  auto max_long_wait = [](const OnlineRunResult& r) {
    double worst = 0.0;
    for (const ServedRequest& sr : r.requests)
      if (sr.tenant % 2 == 1)
        worst = std::max(worst, sr.admit_time - sr.arrival_time);
    return worst;
  };
  EXPECT_LT(max_long_wait(with), max_long_wait(without));
}

}  // namespace
}  // namespace llmq::serve
