// Property tests: stream conservation over randomized online streams.
//
// For a seed-swept family of workloads x scheduler policies x replica
// counts x routers, every run must satisfy the conservation invariants
// the serving stack is built on:
//
//   * every admitted arrival completes exactly once (no loss, no
//     duplication, no invention);
//   * per-request timelines are causally ordered, and each replica's
//     virtual clock is monotone (its completions retire in
//     non-decreasing finish/admit order);
//   * per-tenant and per-replica attribution sums to the aggregate —
//     requests, prompt tokens, cached tokens, output tokens;
//   * the emitted schedule is a valid ordering over the arrival table.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "serve/online.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table random_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back("value_" +
                    std::string(1, static_cast<char>(
                                       'a' + rng.next_below(alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

class StreamConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamConservation, HoldsForRandomizedStreams) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 7919 + 13);

  // Randomized-but-reproducible scenario drawn from the seed.
  const std::size_t n_rows = 20 + rng.next_below(20);
  const Table t = random_table(rng, n_rows, 2 + rng.next_below(3),
                               2 + static_cast<int>(rng.next_below(3)));
  const table::FdSet fds;

  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 2.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.kv_pool_blocks_override = 128 + rng.next_below(256);
  const Policy policies[] = {Policy::Fifo, Policy::WindowedGgr,
                             Policy::TenantGgr};
  cfg.scheduler.policy = policies[rng.next_below(3)];
  cfg.scheduler.window_rows = 4 + rng.next_below(13);
  cfg.scheduler.max_wait_seconds = 0.25 + 0.25 * rng.next_below(4);
  cfg.n_replicas = 1 + rng.next_below(4);
  const RouterPolicy routers[] = {
      RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
      RouterPolicy::TenantHash, RouterPolicy::PrefixAffinity};
  cfg.router = routers[rng.next_below(4)];

  WorkloadOptions w;
  w.process =
      rng.next_bool(0.5) ? ArrivalProcess::Poisson : ArrivalProcess::Bursty;
  w.arrival_rate = 5.0 + static_cast<double>(rng.next_below(60));
  w.n_tenants = 1 + rng.next_below(4);
  w.n_requests = n_rows + rng.next_below(2 * n_rows);
  w.seed = seed;
  const auto arrivals = generate_arrivals(n_rows, w);

  const auto r = run_online(t, fds, arrivals, cfg);

  // ---- 1. Exactly-once completion. ----
  ASSERT_EQ(r.requests.size(), arrivals.size());
  std::set<std::uint64_t> expected, got;
  std::map<std::uint64_t, double> arrival_time;
  for (const auto& a : arrivals) {
    expected.insert(a.id);
    arrival_time[a.id] = a.time;
  }
  for (const auto& sr : r.requests) EXPECT_TRUE(got.insert(sr.id).second);
  EXPECT_EQ(got, expected);

  // ---- 2. Causal timelines; monotone per-replica virtual clocks. ----
  std::vector<double> last_finish(cfg.n_replicas, 0.0);
  for (const auto& sr : r.requests) {
    EXPECT_DOUBLE_EQ(arrival_time.at(sr.id), sr.arrival_time);
    EXPECT_LE(sr.arrival_time, sr.dispatch_time);
    EXPECT_LE(sr.dispatch_time, sr.admit_time);
    EXPECT_LE(sr.admit_time, sr.first_token_time);
    EXPECT_LE(sr.first_token_time, sr.finish_time);
    ASSERT_LT(sr.replica, cfg.n_replicas);
    // A replica's clock only moves forward: its completions retire in
    // non-decreasing finish order. (Admit times are NOT monotone in
    // completion order — a long-output request admitted early can
    // outlive a later short one.)
    EXPECT_GE(sr.finish_time, last_finish[sr.replica]);
    last_finish[sr.replica] = sr.finish_time;
  }

  // ---- 3. Attribution sums to the aggregate. ----
  std::size_t tenant_sum = 0;
  for (std::size_t c : r.per_tenant) tenant_sum += c;
  EXPECT_EQ(tenant_sum, arrivals.size());

  ASSERT_EQ(r.replicas.size(), cfg.n_replicas);
  std::size_t replica_requests = 0;
  std::uint64_t routed_tokens = 0, prompt_tokens = 0, cached_tokens = 0,
                output_tokens = 0;
  for (const auto& rep : r.replicas) {
    replica_requests += rep.requests;
    routed_tokens += rep.routed_prompt_tokens;
    prompt_tokens += rep.engine.prompt_tokens;
    cached_tokens += rep.engine.cached_prompt_tokens;
    output_tokens += rep.engine.output_tokens;
  }
  EXPECT_EQ(replica_requests, arrivals.size());
  EXPECT_EQ(routed_tokens, r.engine.prompt_tokens);
  EXPECT_EQ(prompt_tokens, r.engine.prompt_tokens);
  EXPECT_EQ(cached_tokens, r.engine.cached_prompt_tokens);
  EXPECT_EQ(output_tokens, r.engine.output_tokens);

  std::uint64_t req_prompt = 0, req_cached = 0, req_output = 0;
  for (const auto& sr : r.requests) {
    req_prompt += sr.prompt_tokens;
    req_cached += sr.cached_tokens;
    req_output += sr.output_tokens;
  }
  EXPECT_EQ(req_prompt, r.engine.prompt_tokens);
  EXPECT_EQ(req_cached, r.engine.cached_prompt_tokens);
  EXPECT_EQ(req_output, r.engine.output_tokens);

  // ---- 4. The emitted schedule covers the stream. ----
  EXPECT_TRUE(r.emitted.validate(arrivals.size(), t.num_cols()));
  EXPECT_GE(r.phc, 0.0);
  EXPECT_GE(r.load_imbalance, 1.0);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, StreamConservation,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace llmq::serve
