// Session-level conservation properties for multi-turn / agentic streams.
//
// Across 20 seeds of chat-session workloads, every run must prove:
//
//   * exactly-once per turn — each (session, turn) pair completes exactly
//     once, sessions x turns pairs in total, and every follow-up id is
//     allocated past the root id range;
//   * token-exact history extension — turn k's prompt length equals
//     turn k-1's prompt + output plus the tokenized segment label + the
//     follow-up row's JSON rendering (the prompt prefix is the parent's
//     transcript verbatim, never re-encoded or truncated);
//   * prefix reuse is real — with an ample cache, a follow-up's KV hit
//     covers at least its parent's block-floored prompt, and the session
//     run's aggregate PHR is >= the one-shot PHR over the same roots at
//     depth >= 2;
//   * accounting closure — per-class and per-tenant completion sums equal
//     the aggregate, for session streams exactly as for one-shot ones;
//   * determinism — re-running the same session workload reproduces every
//     completion bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "query/prompt.hpp"
#include "serve/online.hpp"
#include "tokenizer/tokenizer.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table session_table(util::Rng& rng, std::size_t n) {
  // Deliberately wordy cells that diverge at the very first token of the
  // payload (unique row id up front): one-shot arrivals then share only
  // the instruction prefix, while a follow-up re-hits its parent's whole
  // prompt — instructions AND row payload — so the session-beats-one-shot
  // PHR margin is structural, not an artifact of repeated cell text.
  Table t(Schema::of_names({"item", "region", "status"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"item " + std::to_string(r) + " flavor " +
                      std::to_string(rng.next_below(1u << 20)) +
                      " with a long descriptive product label",
                  "region " + std::to_string(rng.next_below(3)) +
                      " covering several distribution warehouses",
                  r % 2 ? "active and currently shipping to customers"
                        : "archived pending quarterly inventory review"});
  return t;
}

OnlineConfig session_config() {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a chat assistant.";
  cfg.prompt.user_prompt = "Answer about the row.";
  cfg.avg_output_tokens = 2.0;  // outputs are never cached: keep them small
                                // so turn chaining's reuse signal dominates
  cfg.scheduler.policy = Policy::Fifo;  // schema field order: arithmetic
  cfg.scheduler.window_rows = 8;        // below is exact, not approximate
  cfg.scheduler.max_wait_seconds = 0.2;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.kv_pool_blocks_override = 4096;  // ample: no eviction noise
  return cfg;
}

SessionWorkload make_sessions(std::size_t n_rows, std::uint64_t seed,
                              std::size_t turns, SessionKind kind) {
  WorkloadOptions w;
  w.arrival_rate = 20.0;
  w.n_tenants = 3;
  w.n_requests = 24;
  w.seed = seed;
  SessionOptions so;
  so.kind = kind;
  so.turns = turns;
  so.mean_gap_seconds = 0.25;
  return generate_sessions(n_rows, w, so);
}

TEST(SessionProperties, ConservationAcrossTwentySeeds) {
  util::Rng rng(71);
  const Table t = session_table(rng, 32);
  const table::FdSet fds;
  const OnlineConfig cfg = session_config();
  const std::size_t turns = 3;

  std::vector<std::size_t> schema_order(t.num_cols());
  for (std::size_t c = 0; c < t.num_cols(); ++c) schema_order[c] = c;
  const tokenizer::Tokenizer& tok = tokenizer::global_tokenizer();

  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const SessionWorkload sw =
        make_sessions(t.num_rows(), seed, turns, SessionKind::Chat);
    const OnlineConfig run_cfg = [&] {
      OnlineConfig c = cfg;
      c.sessions = &sw;
      return c;
    }();
    const OnlineRunResult r = run_online(t, fds, sw.roots, run_cfg);

    // Exactly-once per (session, turn).
    const std::size_t n_roots = sw.roots.size();
    ASSERT_EQ(r.requests.size(), n_roots * turns);
    std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
    std::map<std::pair<std::uint64_t, std::uint32_t>, const ServedRequest*>
        by_turn;
    for (const ServedRequest& sr : r.requests) {
      ASSERT_NE(sr.session, kNoSession);
      ASSERT_LT(sr.turn, turns);
      EXPECT_TRUE(seen.emplace(sr.session, sr.turn).second)
          << "duplicate (session, turn)";
      by_turn[{sr.session, sr.turn}] = &sr;
      if (sr.turn == 0)
        EXPECT_LT(sr.id, n_roots);  // roots keep the static id range
      else
        EXPECT_GE(sr.id, n_roots);  // follow-ups allocated past it
    }
    EXPECT_EQ(seen.size(), n_roots * turns);

    // Token-exact history extension + block-floored prefix reuse.
    for (std::size_t s = 0; s < n_roots; ++s) {
      for (std::uint32_t k = 1; k < turns; ++k) {
        const ServedRequest& parent =
            *by_turn.at({static_cast<std::uint64_t>(s), k - 1});
        const ServedRequest& child =
            *by_turn.at({static_cast<std::uint64_t>(s), k});
        const std::size_t follow_row = sw.plans[s].follow_ups[k - 1].row;
        const std::size_t added =
            tok.count(session_segment_label(sw.kind, k) +
                      query::render_row_json(t, follow_row, schema_order));
        EXPECT_EQ(child.prompt_tokens,
                  parent.prompt_tokens + parent.output_tokens + added)
            << "session " << s << " turn " << k;
        // The parent's full prompt was inserted at its admission and the
        // pool is ample, so the child's hit covers at least its
        // block-floored length (synthetic output tokens are not in the
        // cache — they were never prefilled).
        const std::size_t bs = run_cfg.engine.block_size;
        EXPECT_GE(child.cached_tokens, (parent.prompt_tokens / bs) * bs)
            << "session " << s << " turn " << k;
        EXPECT_GT(child.arrival_time, parent.finish_time);
      }
    }

    // Accounting closure: per-class and per-tenant sums equal aggregates.
    std::size_t class_sum = 0;
    for (const PriorityClassMetrics& pc : r.per_class)
      class_sum += pc.requests;
    EXPECT_EQ(class_sum, r.requests.size());
    std::size_t tenant_sum = 0;
    for (std::size_t c : r.per_tenant) tenant_sum += c;
    EXPECT_EQ(tenant_sum, r.requests.size());

    // Session PHR beats the one-shot PHR over the same roots.
    const OnlineRunResult one_shot = run_online(t, fds, sw.roots, cfg);
    EXPECT_GE(r.engine.prompt_cache_hit_rate(),
              one_shot.engine.prompt_cache_hit_rate());

    // Determinism: the exact same stream replays bit-for-bit.
    const OnlineRunResult again = run_online(t, fds, sw.roots, run_cfg);
    ASSERT_EQ(again.requests.size(), r.requests.size());
    for (std::size_t i = 0; i < r.requests.size(); ++i) {
      EXPECT_EQ(again.requests[i].id, r.requests[i].id);
      EXPECT_EQ(again.requests[i].session, r.requests[i].session);
      EXPECT_EQ(again.requests[i].turn, r.requests[i].turn);
      EXPECT_DOUBLE_EQ(again.requests[i].finish_time,
                       r.requests[i].finish_time);
      EXPECT_EQ(again.requests[i].prompt_tokens, r.requests[i].prompt_tokens);
      EXPECT_EQ(again.requests[i].cached_tokens, r.requests[i].cached_tokens);
      EXPECT_EQ(again.requests[i].output_tokens, r.requests[i].output_tokens);
    }
  }
}

TEST(SessionProperties, AgentLoopsReuseTheSameRowAndChainStrictly) {
  util::Rng rng(11);
  const Table t = session_table(rng, 24);
  const table::FdSet fds;
  const SessionWorkload sw =
      make_sessions(t.num_rows(), 901, 4, SessionKind::Agent);
  OnlineConfig cfg = session_config();
  cfg.sessions = &sw;
  const OnlineRunResult r = run_online(t, fds, sw.roots, cfg);
  ASSERT_EQ(r.requests.size(), sw.roots.size() * 4);

  // Agent loops call the tool on the same row every turn, and a turn's
  // arrival strictly follows its predecessor's finish (the think gap).
  std::map<std::pair<std::uint64_t, std::uint32_t>, const ServedRequest*>
      by_turn;
  for (const ServedRequest& sr : r.requests)
    by_turn[{sr.session, sr.turn}] = &sr;
  for (std::size_t s = 0; s < sw.roots.size(); ++s) {
    for (std::uint32_t k = 0; k < 4; ++k) {
      const ServedRequest& sr =
          *by_turn.at({static_cast<std::uint64_t>(s), k});
      EXPECT_EQ(sr.row, sw.roots[s].row);
      EXPECT_EQ(sr.tenant, sw.roots[s].tenant);
      if (k > 0) {
        const ServedRequest& prev =
            *by_turn.at({static_cast<std::uint64_t>(s), k - 1});
        EXPECT_GT(sr.arrival_time, prev.finish_time);
        EXPECT_GT(sr.prompt_tokens,
                  prev.prompt_tokens + prev.output_tokens);
      }
    }
  }
}

TEST(SessionProperties, GenerateSessionsValidatesAndIsDeterministic) {
  WorkloadOptions w;
  w.n_requests = 10;
  w.seed = 5;
  SessionOptions so;
  so.turns = 0;
  EXPECT_THROW(generate_sessions(8, w, so), std::invalid_argument);
  so.turns = 2;
  so.mean_gap_seconds = 0.0;
  EXPECT_THROW(generate_sessions(8, w, so), std::invalid_argument);

  so.mean_gap_seconds = 0.5;
  const SessionWorkload a = generate_sessions(8, w, so);
  const SessionWorkload b = generate_sessions(8, w, so);
  ASSERT_EQ(a.roots.size(), 10u);
  ASSERT_EQ(a.plans.size(), 10u);
  for (std::size_t i = 0; i < a.roots.size(); ++i) {
    EXPECT_EQ(a.roots[i].session, a.roots[i].id);
    EXPECT_EQ(a.roots[i].turn, 0u);
    EXPECT_EQ(a.roots[i].parent, kNoSession);
    ASSERT_EQ(a.plans[i].follow_ups.size(), 1u);
    EXPECT_EQ(a.plans[i].follow_ups[0].row, b.plans[i].follow_ups[0].row);
    EXPECT_DOUBLE_EQ(a.plans[i].follow_ups[0].gap_seconds,
                     b.plans[i].follow_ups[0].gap_seconds);
    EXPECT_GE(a.plans[i].follow_ups[0].gap_seconds, 1e-3);
  }

  // The driver rejects a stream that is not the session roots.
  util::Rng rng(2);
  const Table t = session_table(rng, 8);
  const table::FdSet fds;
  OnlineConfig cfg = session_config();
  cfg.sessions = &a;
  const auto other = generate_arrivals(8, w);
  EXPECT_THROW(run_online(t, fds, other, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace llmq::serve
