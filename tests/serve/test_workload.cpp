#include "serve/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace llmq::serve {
namespace {

TEST(Workload, DeterministicAndTimeSorted) {
  WorkloadOptions o;
  o.arrival_rate = 25.0;
  o.n_requests = 300;
  o.seed = 11;
  const auto a = generate_arrivals(100, o);
  const auto b = generate_arrivals(100, o);
  ASSERT_EQ(a.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].id, i);  // ids follow time order
    if (i > 0) {
      EXPECT_GE(a[i].time, a[i - 1].time);
    }
    EXPECT_GT(a[i].time, 0.0);
  }
}

TEST(Workload, PoissonMeanRateApproximatelyHonored) {
  WorkloadOptions o;
  o.arrival_rate = 40.0;
  o.n_requests = 4000;
  o.seed = 3;
  const auto a = generate_arrivals(50, o);
  const double observed =
      static_cast<double>(a.size()) / a.back().time;
  EXPECT_NEAR(observed, o.arrival_rate, 0.1 * o.arrival_rate);
}

TEST(Workload, BurstyPreservesMeanRateAndTerminates) {
  // Regression: the bursty sampler previously spun forever when the
  // remaining segment span underflowed below the clock's ulp at a phase
  // boundary. Generating a long stream exercises many boundary crossings.
  WorkloadOptions o;
  o.process = ArrivalProcess::Bursty;
  o.arrival_rate = 16.0;
  o.burst_multiplier = 4.0;
  o.burst_fraction = 0.2;
  o.cycle_seconds = 4.0;
  o.n_requests = 4000;
  o.seed = 5;
  const auto a = generate_arrivals(64, o);
  ASSERT_EQ(a.size(), 4000u);
  const double observed = static_cast<double>(a.size()) / a.back().time;
  EXPECT_NEAR(observed, o.arrival_rate, 0.15 * o.arrival_rate);
}

TEST(Workload, BurstyIsActuallyBursty) {
  // Max arrivals within any 1s sliding window should clearly exceed the
  // Poisson process's at the same mean rate.
  const auto count_peak = [](const std::vector<Arrival>& a) {
    std::size_t peak = 0;
    for (std::size_t i = 0, j = 0; i < a.size(); ++i) {
      while (a[i].time - a[j].time > 1.0) ++j;
      peak = std::max(peak, i - j + 1);
    }
    return peak;
  };
  WorkloadOptions o;
  o.arrival_rate = 20.0;
  o.n_requests = 2000;
  o.seed = 9;
  const auto poisson = generate_arrivals(64, o);
  o.process = ArrivalProcess::Bursty;
  o.burst_multiplier = 5.0;
  o.burst_fraction = 0.1;
  o.cycle_seconds = 5.0;
  const auto bursty = generate_arrivals(64, o);
  EXPECT_GT(count_peak(bursty), count_peak(poisson));
}

TEST(Workload, TenantZipfSkew) {
  WorkloadOptions o;
  o.arrival_rate = 50.0;
  o.n_tenants = 8;
  o.tenant_skew = 1.2;
  o.n_requests = 4000;
  o.seed = 17;
  const auto a = generate_arrivals(100, o);
  std::vector<std::size_t> counts(o.n_tenants, 0);
  for (const auto& x : a) {
    ASSERT_LT(x.tenant, o.n_tenants);
    ++counts[x.tenant];
  }
  // Rank 0 is the hottest tenant and decisively beats the coldest.
  EXPECT_GT(counts[0], counts[7] * 2);
  for (auto c : counts) EXPECT_GT(c, 0u);  // everyone shows up eventually
}

TEST(Workload, SingleTenantAllZero) {
  WorkloadOptions o;
  o.arrival_rate = 10.0;
  const auto a = generate_arrivals(20, o);
  for (const auto& x : a) EXPECT_EQ(x.tenant, 0u);
}

TEST(Workload, RowVisitOrderCoversTableAndWraps) {
  WorkloadOptions o;
  o.arrival_rate = 10.0;
  o.n_requests = 25;  // 2.5 passes over 10 rows
  o.seed = 23;
  const auto a = generate_arrivals(10, o);
  std::set<std::size_t> first_pass;
  for (std::size_t i = 0; i < 10; ++i) first_pass.insert(a[i].row);
  EXPECT_EQ(first_pass.size(), 10u);  // a full permutation before wrapping
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].row, a[i % 10].row);  // wrap repeats the permutation
}

TEST(Workload, UnshuffledRowsInTableOrder) {
  WorkloadOptions o;
  o.arrival_rate = 10.0;
  o.shuffle_rows = false;
  const auto a = generate_arrivals(6, o);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].row, i);
}

TEST(Workload, EmptyAndInvalidInputs) {
  EXPECT_TRUE(generate_arrivals(0).empty());
  WorkloadOptions o;
  o.arrival_rate = 0.0;
  EXPECT_THROW(generate_arrivals(5, o), std::invalid_argument);
}

TEST(Workload, TraceDriven) {
  const auto a = arrivals_from_trace({0.5, 1.0, 1.0, 2.5}, {3, 1, 0, 2},
                                     {0, 1, 0, 1});
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0].time, 0.5);
  EXPECT_EQ(a[3].row, 2u);
  EXPECT_EQ(a[1].tenant, 1u);
  EXPECT_EQ(a[2].id, 2u);

  EXPECT_THROW(arrivals_from_trace({1.0, 0.5}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(arrivals_from_trace({1.0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(arrivals_from_trace({1.0}, {0}, {0, 1}), std::invalid_argument);
}

TEST(Workload, TraceDrivenPriorityClasses) {
  using llm::PriorityClass;
  // Regression: traces used to drop classes entirely — every arrival came
  // out Standard even when the caller had a class assignment, silently
  // bypassing the whole priority path for trace-driven workloads.

  // Default stays the classic single-class stream.
  for (const auto& a : arrivals_from_trace({0.0, 1.0}, {0, 1}))
    EXPECT_EQ(a.priority, PriorityClass::Standard);

  // One class per arrival (a recorded class column).
  const auto per = arrivals_from_trace(
      {0.0, 1.0, 2.0}, {0, 1, 2}, {5, 6, 5},
      {PriorityClass::Batch, PriorityClass::Interactive,
       PriorityClass::Standard});
  EXPECT_EQ(per[0].priority, PriorityClass::Batch);
  EXPECT_EQ(per[1].priority, PriorityClass::Interactive);
  EXPECT_EQ(per[2].priority, PriorityClass::Standard);

  // Tenant->class mapping, expanded explicitly (same modulo rule as
  // WorkloadOptions::tenant_classes) — a map the size of the trace can
  // never be misread as a class column.
  const std::vector<std::uint32_t> tenants = {0, 1, 2, 3};
  const auto mapped = arrivals_from_trace(
      {0.0, 1.0, 2.0, 3.0}, {0, 1, 2, 3}, tenants,
      classes_for_tenants(tenants, {PriorityClass::Interactive,
                                    PriorityClass::Batch}));
  EXPECT_EQ(mapped[0].priority, PriorityClass::Interactive);
  EXPECT_EQ(mapped[1].priority, PriorityClass::Batch);
  EXPECT_EQ(mapped[2].priority, PriorityClass::Interactive);
  EXPECT_EQ(mapped[3].priority, PriorityClass::Batch);
  EXPECT_TRUE(classes_for_tenants({1, 2}, {}).empty());

  // Anything but one-class-per-arrival is rejected, not guessed at.
  EXPECT_THROW(arrivals_from_trace({0.0}, {0}, {},
                                   {PriorityClass::Interactive,
                                    PriorityClass::Batch}),
               std::invalid_argument);
  EXPECT_THROW(arrivals_from_trace({0.0, 1.0}, {0, 1}, {},
                                   {PriorityClass::Interactive}),
               std::invalid_argument);
}

}  // namespace
}  // namespace llmq::serve
