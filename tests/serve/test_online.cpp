#include "serve/online.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/windowed.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table groupy_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back("value_" + std::string(1, static_cast<char>(
                                                  'a' + rng.next_below(
                                                            alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

OnlineConfig small_config() {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 2.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.kv_pool_blocks_override = 2048;  // ample, deterministic
  return cfg;
}

std::vector<Arrival> stream_over(std::size_t n, double rate,
                                 std::uint64_t seed,
                                 std::size_t n_tenants = 1) {
  WorkloadOptions w;
  w.arrival_rate = rate;
  w.seed = seed;
  w.n_tenants = n_tenants;
  return generate_arrivals(n, w);
}

TEST(Online, ServesEveryArrivalExactlyOnceWithSaneTimeline) {
  util::Rng rng(31);
  const Table t = groupy_table(rng, 40, 3, 3);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 8;
  cfg.scheduler.max_wait_seconds = 1.0;
  const auto arrivals = stream_over(40, 20.0, 1, 2);

  const auto r = run_online(t, fds, arrivals, cfg);
  ASSERT_EQ(r.requests.size(), 40u);
  ASSERT_EQ(r.latency.count, 40u);
  std::set<std::uint64_t> ids;
  for (const auto& sr : r.requests) {
    EXPECT_TRUE(ids.insert(sr.id).second);
    EXPECT_LE(sr.arrival_time, sr.dispatch_time);
    EXPECT_LE(sr.dispatch_time, sr.admit_time);
    EXPECT_LE(sr.admit_time, sr.first_token_time);
    EXPECT_LE(sr.first_token_time, sr.finish_time);
    EXPECT_GT(sr.prompt_tokens, 0u);
    EXPECT_GT(sr.output_tokens, 0u);
  }
  // The emitted schedule is a valid ordering over the arrival table.
  EXPECT_TRUE(r.emitted.validate(40, t.num_cols()));
  EXPECT_GT(r.windows, 1u);
  // Per-tenant counts account for every request.
  std::size_t total = 0;
  for (auto c : r.per_tenant) total += c;
  EXPECT_EQ(total, 40u);
  // Engine metrics line up with the stream.
  EXPECT_EQ(r.engine.output_tokens,
            [&] {
              std::size_t s = 0;
              for (const auto& sr : r.requests) s += sr.output_tokens;
              return s;
            }());
}

TEST(Online, EquivalenceSingleWindowMatchesOfflineGgr) {
  // The ISSUE property: single tenant, no deadline, one window spanning
  // all arrivals => the online emitted order and PHC equal offline
  // windowed_ggr with window_rows = 0 (i.e. plain GGR) over the
  // arrival-ordered table. The row bound equals the stream length, so the
  // single window trips exactly when the last arrival lands (window_rows
  // = 0 with no deadline is rejected by the scheduler).
  util::Rng rng(32);
  const Table t = groupy_table(rng, 36, 3, 2);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 36;    // one window spanning the stream
  cfg.scheduler.max_wait_seconds = 0.0;  // no deadline

  // Arrivals visit rows in table order so the arrival table == t.
  WorkloadOptions w;
  w.arrival_rate = 50.0;
  w.shuffle_rows = false;
  w.seed = 2;
  const auto arrivals = generate_arrivals(36, w);

  const auto online = run_online(t, fds, arrivals, cfg);
  EXPECT_EQ(online.windows, 1u);

  core::WindowedOptions wo;
  wo.window_rows = 0;
  wo.ggr.measure = core::LengthMeasure::Unit;
  const auto offline = core::windowed_ggr(t, fds, wo);

  EXPECT_EQ(online.emitted.row_order(), offline.ordering.row_order());
  EXPECT_EQ(online.emitted.field_orders(), offline.ordering.field_orders());
  EXPECT_DOUBLE_EQ(online.phc, offline.phc);
}

TEST(Online, EquivalenceMultiWindowMatchesOfflineWindowedGgr) {
  // With a row-bound window and arrivals in table order, the online
  // schedule must equal offline windowed_ggr with the same window size:
  // both cut the stream into the same consecutive chunks.
  util::Rng rng(33);
  const Table t = groupy_table(rng, 50, 3, 2);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 16;  // 50 = 16+16+16+2: last window partial
  cfg.scheduler.max_wait_seconds = 0.0;

  WorkloadOptions w;
  w.arrival_rate = 40.0;
  w.shuffle_rows = false;
  w.seed = 3;
  const auto arrivals = generate_arrivals(50, w);

  const auto online = run_online(t, fds, arrivals, cfg);
  EXPECT_EQ(online.windows, 4u);

  core::WindowedOptions wo;
  wo.window_rows = 16;
  wo.ggr.measure = core::LengthMeasure::Unit;
  const auto offline = core::windowed_ggr(t, fds, wo);

  EXPECT_EQ(online.emitted.row_order(), offline.ordering.row_order());
  EXPECT_EQ(online.emitted.field_orders(), offline.ordering.field_orders());
  EXPECT_DOUBLE_EQ(online.phc, offline.phc);
}

TEST(Online, WindowedGgrBeatsFifoHitRateOnGroupyStream) {
  // The serving-side claim behind the whole subsystem: on the paper's data
  // shape — repeated metadata joined to mostly-unique text — with enough
  // buffer and an *oversubscribed* KV cache, reordering strictly raises
  // the engine's prompt cache hit rate on the same trace. Both conditions
  // are load-bearing: with an unbounded pool the radix tree retains every
  // prefix and hit rates become order-independent, and with few distinct
  // row values a uniform FIFO field order can out-hit GGR's per-row
  // permutations across the whole stream.
  util::Rng rng(34);
  Table t{Schema::of_names({"product", "description", "review", "rating"})};
  std::vector<std::string> product, description;
  for (int p = 0; p < 5; ++p) {
    product.push_back("product_" + std::to_string(p));
    std::string d;  // long repeated metadata, spans several KV blocks
    for (int k = 0; k < 10; ++k)
      d += "spec" + std::to_string(p) + "word" + std::to_string(k) + " ";
    description.push_back(d);
  }
  for (std::size_t r = 0; r < 150; ++r) {
    const std::size_t p = rng.next_below(5);
    std::string review;  // unique per row: no cross-row reuse here
    for (int k = 0; k < 12; ++k)
      review += "tok" + std::to_string(rng.next_u64() % 100000) + " ";
    t.append_row({product[p], description[p], std::move(review),
                  std::to_string(1 + rng.next_below(5))});
  }
  table::FdSet fds;
  fds.add_group({"product", "description"});
  const auto arrivals = stream_over(150, 30.0, 4);

  OnlineConfig cfg = small_config();
  cfg.engine.kv_pool_blocks_override = 192;  // forces LRU eviction
  cfg.scheduler.window_rows = 60;
  cfg.scheduler.max_wait_seconds = 4.0;

  cfg.scheduler.policy = Policy::Fifo;
  const auto fifo = run_online(t, fds, arrivals, cfg);
  cfg.scheduler.policy = Policy::WindowedGgr;
  const auto ggr = run_online(t, fds, arrivals, cfg);

  EXPECT_GT(ggr.engine.prompt_cache_hit_rate(),
            fifo.engine.prompt_cache_hit_rate());
  EXPECT_GT(ggr.phc, fifo.phc);
  // Same trace, same number of requests served.
  EXPECT_EQ(ggr.requests.size(), fifo.requests.size());
}

TEST(Online, DeadlineBoundsBufferingDelay) {
  // With a tight deadline every request's dispatch lags its arrival by at
  // most max_wait (plus the engine-busy gap to the next step boundary,
  // absent here because the stream is slow).
  util::Rng rng(35);
  const Table t = groupy_table(rng, 20, 3, 2);
  const table::FdSet fds;
  OnlineConfig cfg = small_config();
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 1000;  // row bound never trips
  cfg.scheduler.max_wait_seconds = 0.5;
  const auto arrivals = stream_over(20, 2.0, 6);  // slow stream

  const auto r = run_online(t, fds, arrivals, cfg);
  ASSERT_EQ(r.requests.size(), 20u);
  for (const auto& sr : r.requests)
    EXPECT_LE(sr.dispatch_time - sr.arrival_time, 0.5 + 0.25);
}

TEST(Online, EmptyStreamAndInvalidInputs) {
  util::Rng rng(36);
  const Table t = groupy_table(rng, 5, 2, 2);
  const table::FdSet fds;
  const OnlineConfig cfg = small_config();
  const auto r = run_online(t, fds, {}, cfg);
  EXPECT_TRUE(r.requests.empty());
  EXPECT_EQ(r.windows, 0u);

  std::vector<Arrival> bad = {{0, 1.0, 0, 0}, {1, 0.5, 1, 0}};
  EXPECT_THROW(run_online(t, fds, bad, cfg), std::invalid_argument);
  std::vector<Arrival> dup = {{7, 0.5, 0, 0}, {7, 1.0, 1, 0}};
  EXPECT_THROW(run_online(t, fds, dup, cfg), std::invalid_argument);
  std::vector<Arrival> oob = {{0, 0.5, 5, 0}};  // row 5 of a 5-row table
  EXPECT_THROW(run_online(t, fds, oob, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace llmq::serve
