// Query-over-serving: relational queries executed through the shared
// replica fleet (serve/query_client.hpp) against the offline per-stage
// engine path. The load-bearing property is order independence — a query
// served through the online stack returns per-row answers identical to
// run_stage/run_query, regardless of pacing, replication, or dedup —
// plus the attribution identities (lane metrics sum to the fleet
// aggregate; memo savings never masquerade as prefix hits).

#include "serve/query_client.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"
#include "query/executor.hpp"

namespace llmq::serve {
namespace {

data::GenOptions small(std::size_t n = 120) {
  data::GenOptions o;
  o.n_rows = n;
  o.seed = 11;
  return o;
}

ServedQuerySpec one_query(const data::Dataset& d, const data::QuerySpec& spec,
                          const query::ExecConfig& cfg) {
  ServedQuerySpec q;
  q.dataset = &d;
  q.query = &spec;
  q.config = cfg;
  return q;
}

TEST(QueryServing, SingleFilterQueryMatchesOfflineExactly) {
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-filter");
  const auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);

  const auto offline = query::run_query(d, spec, cfg);

  QueryClient::Options opt;
  opt.dedup_exact = false;  // strict engine parity: no memo interference
  const auto served = run_queries_served({one_query(d, spec, cfg)},
                                         fleet_from_exec(cfg), opt);

  ASSERT_EQ(served.queries.size(), 1u);
  const auto& q = served.queries[0];
  // Order independence: identical per-row answers and epilogue.
  EXPECT_EQ(q.answers, offline.answers);
  EXPECT_EQ(q.rows_selected, offline.rows_selected);
  // Engine parity: same requests in the same planned order on an
  // identically configured engine => identical token accounting.
  ASSERT_EQ(q.stages.size(), offline.stages.size());
  EXPECT_EQ(q.stages[0].engine.prompt_tokens,
            offline.stages[0].engine.prompt_tokens);
  EXPECT_EQ(q.stages[0].engine.cached_prompt_tokens,
            offline.stages[0].engine.cached_prompt_tokens);
  EXPECT_EQ(q.stages[0].engine.output_tokens,
            offline.stages[0].engine.output_tokens);
  EXPECT_DOUBLE_EQ(q.stages[0].token_phr, offline.stages[0].token_phr);
  EXPECT_EQ(q.stages[0].dedup_hits, 0u);
  // The fleet-level view agrees with the per-query attribution.
  EXPECT_EQ(served.serving.engine.prompt_tokens,
            offline.stages[0].engine.prompt_tokens);
  EXPECT_EQ(served.serving.requests.size(), d.table.num_rows());
}

TEST(QueryServing, MultiLlmQueryMatchesOfflineAcrossStages) {
  const auto d = data::generate_movies(small(150));
  const auto& spec = data::query_by_id("movies-multi");
  const auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);

  const auto offline = query::run_query(d, spec, cfg);

  QueryClient::Options opt;
  opt.dedup_exact = false;
  const auto served = run_queries_served({one_query(d, spec, cfg)},
                                         fleet_from_exec(cfg), opt);

  const auto& q = served.queries[0];
  EXPECT_EQ(q.answers, offline.answers);
  EXPECT_EQ(q.rows_selected, offline.rows_selected);
  ASSERT_EQ(q.stages.size(), 2u);
  ASSERT_EQ(offline.stages.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(q.stages[s].rows, offline.stages[s].rows) << "stage " << s;
    // Both paths share one persistent cache across the stages (the
    // offline session cache == the replica's long-lived cache), so the
    // per-stage hit accounting must agree token for token.
    EXPECT_EQ(q.stages[s].engine.prompt_tokens,
              offline.stages[s].engine.prompt_tokens)
        << "stage " << s;
    EXPECT_EQ(q.stages[s].engine.cached_prompt_tokens,
              offline.stages[s].engine.cached_prompt_tokens)
        << "stage " << s;
  }
}

TEST(QueryServing, OrderIndependentUnderPacingReplicasAndDedup) {
  // The property that makes the serving path safe to deploy: answers are
  // keyed by row id, so pacing, replication, routing, and the dedup memo
  // may reshape *when and where* rows execute but never *what* they
  // answer.
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-filter");
  const auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);
  const auto offline = query::run_query(d, spec, cfg);

  ServedQuerySpec q = one_query(d, spec, cfg);
  q.request_interval = 0.01;
  FleetConfig fleet = fleet_from_exec(cfg);
  fleet.n_replicas = 2;
  fleet.router = RouterPolicy::PrefixAffinity;
  const auto served = run_queries_served({q}, fleet);

  EXPECT_EQ(served.queries[0].answers, offline.answers);
  EXPECT_EQ(served.queries[0].rows_selected, offline.rows_selected);
  EXPECT_EQ(served.serving.requests.size(), d.table.num_rows());
}

TEST(QueryServing, LaneMetricsSumToFleetAggregate) {
  const auto d = data::generate_movies(small(100));
  const auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);
  std::vector<ServedQuerySpec> qs = {
      one_query(d, data::query_by_id("movies-filter"), cfg),
      one_query(d, data::query_by_id("movies-projection"), cfg),
      one_query(d, data::query_by_id("movies-aggregation"), cfg)};
  for (auto& q : qs) q.request_interval = 0.005;
  FleetConfig fleet = fleet_from_exec(cfg);
  fleet.n_replicas = 2;
  const auto r = run_queries_served(qs, fleet);

  ASSERT_EQ(r.serving.per_query.size(), 3u);
  std::size_t req_sum = 0, engine_req_sum = 0, dedup_sum = 0;
  std::uint64_t prompt_sum = 0, cached_sum = 0, output_sum = 0;
  for (const auto& lane : r.serving.per_query) {
    req_sum += lane.requests;
    engine_req_sum += lane.engine_requests;
    dedup_sum += lane.dedup_hits;
    prompt_sum += lane.prompt_tokens;
    cached_sum += lane.cached_prompt_tokens;
    output_sum += lane.output_tokens;
    EXPECT_EQ(lane.requests, lane.engine_requests + lane.dedup_hits);
  }
  // Engine-visible lane counters reproduce the fleet aggregate exactly;
  // memo hits are accounted once, in dedup.
  EXPECT_EQ(req_sum, r.serving.requests.size());
  EXPECT_EQ(prompt_sum, r.serving.engine.prompt_tokens);
  EXPECT_EQ(cached_sum, r.serving.engine.cached_prompt_tokens);
  EXPECT_EQ(output_sum, r.serving.engine.output_tokens);
  EXPECT_EQ(dedup_sum, r.serving.dedup.hits);
  EXPECT_EQ(engine_req_sum, r.serving.dedup.hits
                                ? req_sum - r.serving.dedup.hits
                                : req_sum);
  // Per-replica counters cover every executed request.
  std::size_t routed = 0;
  for (const auto& rep : r.serving.replicas) routed += rep.requests;
  EXPECT_EQ(routed, engine_req_sum);
  // Per-tenant == per-lane request counts.
  ASSERT_EQ(r.serving.per_tenant.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l)
    EXPECT_EQ(r.serving.per_tenant[l], r.serving.per_query[l].requests);
}

TEST(QueryServing, IdenticalConcurrentQueriesDedupAndBeatSerialPhr) {
  // The ISSUE acceptance shape: >= 2 concurrent queries on one shared
  // fleet must reach an aggregate hit fraction (prefix hits + memo
  // fan-outs) at least as good as serial cold-cache execution. Two
  // identical queries are the extreme case: the second query's every
  // invocation is an exact duplicate, answered once and fanned out.
  const auto d = data::generate_movies(small());
  const auto& spec = data::query_by_id("movies-filter");
  const auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);

  const auto serial = query::run_query(d, spec, cfg);  // cold cache

  const auto shared = run_queries_served(
      {one_query(d, spec, cfg), one_query(d, spec, cfg)},
      fleet_from_exec(cfg));

  // Same answers from both lanes.
  EXPECT_EQ(shared.queries[0].answers, serial.answers);
  EXPECT_EQ(shared.queries[1].answers, serial.answers);
  // The second query dedups against the first: at least one full query's
  // worth of rows never reached an engine.
  EXPECT_GE(shared.serving.dedup.hits, d.table.num_rows());
  EXPECT_GT(shared.serving.dedup.saved_prompt_tokens, 0u);
  // Memo hits never inflate PHR: engine cached tokens are bounded by the
  // single-query run's.
  EXPECT_LE(shared.serving.engine.prompt_tokens,
            2 * serial.stages[0].engine.prompt_tokens);
  // Shared-fleet effective hit fraction beats serial cold-cache PHR.
  EXPECT_GT(shared.serving.effective_hit_fraction(), serial.overall_phr());
}

TEST(QueryServing, PriorityLanesPreemptWithoutBreakingAnswersOrStats) {
  // Preempt-during-defer audit at the query-serving level: an interactive
  // lane sharing a memory-tight preemption-enabled fleet with a batch
  // lane will preempt the batch lane's rows while other rows sit in
  // deferred admission — the exact interleaving where a stats bug would
  // double-count lookups (each deferral retries, each resume re-probes).
  // Answers must stay order-independent and cache stats exactly-once:
  // one counted lookup per engine-executed request.
  const auto d = data::generate_movies(small(80));
  // Long-decode projection rows occupy slots for many steps — the shape
  // whose running requests an interactive arrival must evict, not wait
  // out.
  const auto& batch_spec = data::query_by_id("movies-projection");
  const auto& inter_spec = data::query_by_id("movies-filter");
  const auto cfg = query::ExecConfig::standard(query::Method::CacheGgr);
  const auto offline_batch = query::run_query(d, batch_spec, cfg);
  const auto offline_inter = query::run_query(d, inter_spec, cfg);

  ServedQuerySpec batch = one_query(d, batch_spec, cfg);
  batch.priority = llm::PriorityClass::Batch;
  ServedQuerySpec interactive = one_query(d, inter_spec, cfg);
  interactive.priority = llm::PriorityClass::Interactive;
  interactive.start_time = 0.5;  // arrives while batch occupies the fleet
  interactive.request_interval = 0.002;

  FleetConfig fleet = fleet_from_exec(cfg);
  fleet.engine.max_batch_size = 4;
  fleet.engine.kv_pool_blocks_override = 160;  // tight: defer + preempt
  fleet.engine.preemption = true;
  fleet.engine.priority_aging_seconds = 5.0;

  QueryClient::Options opt;
  opt.dedup_exact = false;  // every completion is engine-executed
  const auto served =
      run_queries_served({batch, interactive}, fleet, opt);

  // Order independence survives preemption.
  EXPECT_EQ(served.queries[0].answers, offline_batch.answers);
  EXPECT_EQ(served.queries[1].answers, offline_inter.answers);

  // The scenario actually preempts, and the preempted rows are batch's.
  const auto& s = served.serving;
  EXPECT_GT(s.engine.preemptions, 0u);
  ASSERT_EQ(s.per_class.size(), llm::kNumPriorityClasses);
  EXPECT_EQ(s.per_class[0].preemptions, 0u);  // interactive never evicted
  EXPECT_GT(
      s.per_class[static_cast<std::size_t>(llm::PriorityClass::Batch)]
          .preemptions,
      0u);

  // Exactly-once stats across defer/preempt/resume: one lookup per
  // engine-executed request, hit credits equal engine-side cached tokens.
  EXPECT_EQ(s.engine.cache.lookups, s.requests.size());
  EXPECT_EQ(s.engine.cache.hit_tokens, s.engine.cached_prompt_tokens);
  EXPECT_EQ(s.engine.cache.lookup_tokens, s.engine.prompt_tokens);

  // Lane priorities are reported on the lane metrics.
  ASSERT_EQ(s.per_query.size(), 2u);
  EXPECT_EQ(s.per_query[0].priority, llm::PriorityClass::Batch);
  EXPECT_EQ(s.per_query[1].priority, llm::PriorityClass::Interactive);
}

TEST(QueryServing, RejectsNullSpecs) {
  EXPECT_THROW(run_queries_served({ServedQuerySpec{}}, FleetConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace llmq::serve
