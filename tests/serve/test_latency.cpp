#include "serve/latency.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace llmq::serve {
namespace {

ServedRequest req(double arrival, double admit, double first_token,
                  double finish) {
  ServedRequest r;
  r.arrival_time = arrival;
  r.dispatch_time = arrival;
  r.admit_time = admit;
  r.first_token_time = first_token;
  r.finish_time = finish;
  return r;
}

TEST(Latency, EmptyInputYieldsZeros) {
  const LatencySummary s = summarize_latency({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99_ttft, 0.0);
  EXPECT_DOUBLE_EQ(s.throughput_rps, 0.0);
}

TEST(Latency, DerivedQuantities) {
  const ServedRequest r = req(1.0, 1.5, 1.7, 2.5);
  EXPECT_DOUBLE_EQ(r.queue_delay(), 0.5);
  EXPECT_DOUBLE_EQ(r.ttft(), 0.7);
  EXPECT_DOUBLE_EQ(r.e2e_latency(), 1.5);
}

TEST(Latency, SummaryStatistics) {
  std::vector<ServedRequest> rs;
  // TTFTs 0.1, 0.2, ..., 1.0 over arrivals at t=0.
  for (int i = 1; i <= 10; ++i)
    rs.push_back(req(0.0, 0.05, 0.1 * i, 0.1 * i + 1.0));
  const LatencySummary s = summarize_latency(rs);
  EXPECT_EQ(s.count, 10u);
  EXPECT_NEAR(s.mean_ttft, 0.55, 1e-9);
  EXPECT_NEAR(s.p50_ttft, 0.55, 1e-9);
  // Linear interpolation: rank (10-1)*0.9 = 8.1 between 0.9 and 1.0.
  EXPECT_NEAR(s.p90_ttft, 0.91, 1e-9);
  EXPECT_GT(s.p99_ttft, 0.9);
  EXPECT_LE(s.p99_ttft, 1.0 + 1e-9);
  EXPECT_LE(s.p50_ttft, s.p90_ttft);
  EXPECT_LE(s.p90_ttft, s.p95_ttft);
  EXPECT_LE(s.p95_ttft, s.p99_ttft);
  EXPECT_NEAR(s.makespan, 2.0, 1e-9);  // first arrival 0, last finish 2.0
  EXPECT_NEAR(s.throughput_rps, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.goodput_rps, s.throughput_rps);  // no SLO set
}

TEST(Latency, SingleRequest) {
  // Percentiles of one sample are that sample; throughput is 1/makespan.
  const LatencySummary s = summarize_latency({req(1.0, 1.2, 1.4, 3.0)});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean_ttft, 0.4);
  EXPECT_DOUBLE_EQ(s.p50_ttft, 0.4);
  EXPECT_DOUBLE_EQ(s.p90_ttft, 0.4);
  EXPECT_DOUBLE_EQ(s.p99_ttft, 0.4);
  EXPECT_DOUBLE_EQ(s.mean_queue_delay, 0.2);
  EXPECT_DOUBLE_EQ(s.p90_queue_delay, 0.2);
  EXPECT_DOUBLE_EQ(s.p50_e2e, 2.0);
  EXPECT_DOUBLE_EQ(s.p99_e2e, 2.0);
  EXPECT_DOUBLE_EQ(s.makespan, 2.0);
  EXPECT_DOUBLE_EQ(s.throughput_rps, 0.5);
  EXPECT_DOUBLE_EQ(s.goodput_rps, 0.5);
}

TEST(Latency, AllIdenticalTimestampsYieldZeroMakespanNotNan) {
  // Degenerate but reachable (e.g. zero-latency stubs in tests): every
  // timeline point equal. Zero makespan must report zero throughput and
  // goodput, not a division by zero.
  std::vector<ServedRequest> rs(3, req(5.0, 5.0, 5.0, 5.0));
  const LatencySummary s = summarize_latency(rs, 1.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean_ttft, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_e2e, 0.0);
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
  EXPECT_DOUBLE_EQ(s.throughput_rps, 0.0);
  EXPECT_DOUBLE_EQ(s.goodput_rps, 0.0);
}

TEST(Latency, P90ItlExcludesSingleTokenCompletions) {
  // Single-token completions have no inter-token gap: a run of only such
  // requests reports zeroed ITL percentiles, and mixed runs compute the
  // percentiles over the multi-token requests alone.
  std::vector<ServedRequest> single(3, req(0.0, 0.1, 0.2, 0.2));
  for (auto& r : single) r.output_tokens = 1;
  const LatencySummary none = summarize_latency(single);
  EXPECT_DOUBLE_EQ(none.mean_itl, 0.0);
  EXPECT_DOUBLE_EQ(none.p90_itl, 0.0);
  EXPECT_DOUBLE_EQ(none.p99_itl, 0.0);

  std::vector<ServedRequest> rs = single;
  // Mean ITLs 0.01, 0.02, ..., 0.10 (11 output tokens = 10 gaps).
  for (int i = 1; i <= 10; ++i) {
    ServedRequest r = req(0.0, 0.1, 0.2, 0.2 + 0.1 * i);
    r.output_tokens = 11;
    rs.push_back(r);
  }
  const LatencySummary s = summarize_latency(rs);
  EXPECT_NEAR(s.mean_itl, 0.055, 1e-9);
  EXPECT_NEAR(s.p90_itl, 0.091, 1e-9);  // rank 8.1 between 0.09 and 0.10
  EXPECT_LE(s.p50_itl, s.p90_itl);
  EXPECT_LE(s.p90_itl, s.p99_itl);
}

TEST(Latency, NonPositiveSloDisablesTheCut) {
  // ttft_slo <= 0 means "no SLO": goodput equals throughput (every request
  // counts as good), never zero goodput. Documented in latency.hpp.
  std::vector<ServedRequest> rs;
  for (int i = 1; i <= 4; ++i) rs.push_back(req(0.0, 0.1, 10.0 * i, 50.0));
  for (const double slo : {0.0, -3.0}) {
    const LatencySummary s = summarize_latency(rs, slo);
    EXPECT_DOUBLE_EQ(s.ttft_slo, slo);
    EXPECT_GT(s.throughput_rps, 0.0);
    EXPECT_DOUBLE_EQ(s.goodput_rps, s.throughput_rps);
  }
  // Sanity: a tiny positive SLO does cut.
  const LatencySummary cut = summarize_latency(rs, 1e-6);
  EXPECT_DOUBLE_EQ(cut.goodput_rps, 0.0);
}

// The pre-optimization summarize_latency, kept verbatim as the reference:
// ttft() re-derived per consumer, means over the unsorted samples, and
// every percentile through util::percentile (which copies and sorts its
// input each call). The production path computes each quantity once and
// sorts each sample once; this pins that the rewrite changed the work,
// not one bit of the output.
LatencySummary summarize_latency_reference(
    const std::vector<ServedRequest>& requests, double ttft_slo_seconds) {
  LatencySummary s;
  s.ttft_slo = ttft_slo_seconds;
  if (requests.empty()) return s;
  s.count = requests.size();
  std::vector<double> ttft, queue, e2e, itl;
  double first_arrival = requests.front().arrival_time;
  double last_finish = requests.front().finish_time;
  std::size_t within_slo = 0;
  for (const auto& r : requests) {
    ttft.push_back(r.ttft());
    queue.push_back(r.queue_delay());
    e2e.push_back(r.e2e_latency());
    if (r.output_tokens > 1) itl.push_back(r.mean_itl());
    first_arrival = std::min(first_arrival, r.arrival_time);
    last_finish = std::max(last_finish, r.finish_time);
    if (ttft_slo_seconds <= 0.0 || r.ttft() <= ttft_slo_seconds)
      ++within_slo;
  }
  s.mean_ttft = util::mean(ttft);
  s.p50_ttft = util::percentile(ttft, 50.0);
  s.p90_ttft = util::percentile(ttft, 90.0);
  s.p95_ttft = util::percentile(ttft, 95.0);
  s.p99_ttft = util::percentile(ttft, 99.0);
  s.mean_queue_delay = util::mean(queue);
  s.p90_queue_delay = util::percentile(queue, 90.0);
  s.p99_queue_delay = util::percentile(queue, 99.0);
  if (!itl.empty()) {
    s.mean_itl = util::mean(itl);
    s.p50_itl = util::percentile(itl, 50.0);
    s.p90_itl = util::percentile(itl, 90.0);
    s.p99_itl = util::percentile(itl, 99.0);
  }
  s.p50_e2e = util::percentile(e2e, 50.0);
  s.p99_e2e = util::percentile(e2e, 99.0);
  s.makespan = last_finish - first_arrival;
  if (s.makespan > 0.0) {
    s.throughput_rps = static_cast<double>(s.count) / s.makespan;
    s.goodput_rps = static_cast<double>(within_slo) / s.makespan;
  }
  return s;
}

void expect_bit_identical(const LatencySummary& a, const LatencySummary& b) {
  EXPECT_EQ(a.count, b.count);
  // operator== on double: exact bit-level agreement, not ULP tolerance —
  // the point is that downstream golden JSON bytes cannot move.
  EXPECT_EQ(a.mean_ttft, b.mean_ttft);
  EXPECT_EQ(a.p50_ttft, b.p50_ttft);
  EXPECT_EQ(a.p90_ttft, b.p90_ttft);
  EXPECT_EQ(a.p95_ttft, b.p95_ttft);
  EXPECT_EQ(a.p99_ttft, b.p99_ttft);
  EXPECT_EQ(a.mean_queue_delay, b.mean_queue_delay);
  EXPECT_EQ(a.p90_queue_delay, b.p90_queue_delay);
  EXPECT_EQ(a.p99_queue_delay, b.p99_queue_delay);
  EXPECT_EQ(a.mean_itl, b.mean_itl);
  EXPECT_EQ(a.p50_itl, b.p50_itl);
  EXPECT_EQ(a.p90_itl, b.p90_itl);
  EXPECT_EQ(a.p99_itl, b.p99_itl);
  EXPECT_EQ(a.p50_e2e, b.p50_e2e);
  EXPECT_EQ(a.p99_e2e, b.p99_e2e);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_EQ(a.ttft_slo, b.ttft_slo);
}

TEST(Latency, SingleSortRewriteIsBitIdenticalToReference) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.next_range(0, 200));
    std::vector<ServedRequest> rs;
    for (std::size_t i = 0; i < n; ++i) {
      const double arrival = rng.next_double() * 100.0;
      const double admit = arrival + rng.next_double();
      const double first = admit + rng.next_double() * 0.5;
      ServedRequest r = req(arrival, admit, first,
                            first + rng.next_double() * 10.0);
      // Mix of single-token (ITL-excluded) and multi-token completions,
      // including duplicate timestamps (ties stress sort stability).
      r.output_tokens = static_cast<std::size_t>(rng.next_range(1, 40));
      if (rng.next_below(8) == 0 && !rs.empty()) {
        r.first_token_time = rs.back().first_token_time;
        r.arrival_time = rs.back().arrival_time;
      }
      rs.push_back(r);
    }
    const double slo = trial % 3 == 0   ? 0.0
                       : trial % 3 == 1 ? rng.next_double()
                                        : -1.0;
    expect_bit_identical(summarize_latency(rs, slo),
                         summarize_latency_reference(rs, slo));
  }
}

TEST(Latency, GoodputCountsOnlyWithinSlo) {
  std::vector<ServedRequest> rs;
  for (int i = 1; i <= 10; ++i)
    rs.push_back(req(0.0, 0.05, 0.1 * i, 2.0));
  // SLO at 0.55s: TTFTs 0.1..0.5 qualify (5 of 10).
  const LatencySummary s = summarize_latency(rs, 0.55);
  EXPECT_DOUBLE_EQ(s.ttft_slo, 0.55);
  EXPECT_NEAR(s.goodput_rps, 0.5 * s.throughput_rps, 1e-9);
}

}  // namespace
}  // namespace llmq::serve
