// Online serving with chunked prefill, plus burst-dispatch coverage.
//
// The serving-level contract: enabling EngineConfig::prefill_chunk_tokens
// on a mixed long-prefill/short-decode overload stream must improve the
// interactive tail (p99 TTFT and p99 ITL) without changing WHAT was
// served — same completions, same prompt/output token totals — and a
// buffer holding several windows' worth of arrivals at one event-loop
// wakeup must dispatch them as multiple windows, not one oversized one.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "serve/online.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

/// Rows 0..n-1: every `long_every`-th row carries a long document cell
/// (~40 repeated words -> prompts in the hundreds of tokens), the rest
/// are short labels — the mixed long-prefill / short-decode shape where
/// monolithic admission prefill hurts the most.
Table mixed_table(std::size_t n, std::size_t long_every,
                  std::size_t long_words) {
  Table t(Schema::of_names({"label", "document"}));
  for (std::size_t r = 0; r < n; ++r) {
    std::string doc;
    if (r % long_every == 0) {
      for (std::size_t w = 0; w < long_words; ++w)
        doc += "token" + std::to_string(r) + "word" + std::to_string(w) + " ";
    } else {
      doc = "short entry " + std::to_string(r);
    }
    t.append_row({"label_" + std::to_string(r % 5), std::move(doc)});
  }
  return t;
}

OnlineConfig mixed_config() {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 6.0;
  cfg.scheduler.policy = Policy::Fifo;
  cfg.scheduler.window_rows = 4;
  cfg.scheduler.max_wait_seconds = 0.25;
  cfg.engine.max_batch_size = 8;
  cfg.engine.kv_pool_blocks_override = 1u << 14;
  cfg.ttft_slo_seconds = 1.0;
  return cfg;
}

/// Overloaded stream: interactive tenants hit the short rows, a batch
/// tenant replays the long-document rows. Built through
/// arrivals_from_trace with the tenant->class mapping, so this also
/// exercises the trace priority path end to end.
std::vector<Arrival> mixed_stream(const Table& t, std::size_t n_arrivals,
                                  double rate) {
  std::vector<double> times;
  std::vector<std::size_t> rows;
  std::vector<std::uint32_t> tenants;
  std::size_t next_short = 1, next_long = 0;
  for (std::size_t i = 0; i < n_arrivals; ++i) {
    times.push_back(static_cast<double>(i) / rate);
    if (i % 3 == 0) {  // every third arrival is a long batch prompt
      rows.push_back(next_long % t.num_rows());
      next_long += 4;  // long rows are every 4th
      tenants.push_back(1);
    } else {
      rows.push_back(next_short % t.num_rows());
      next_short += 1;
      if (next_short % 4 == 0) ++next_short;  // skip the long rows
      tenants.push_back(0);
    }
  }
  return arrivals_from_trace(
      times, rows, tenants,
      classes_for_tenants(tenants, {llm::PriorityClass::Interactive,
                                    llm::PriorityClass::Batch}));
}

TEST(ChunkedServing, ChunkingImprovesInteractiveTailsAndConservesTokens) {
  // Long documents (~1.5k-token prompts) at a rate that keeps the engine
  // saturated: the regime where monolithic admission prefill freezes
  // in-flight decodes for hundreds of ms and delays interactive first
  // tokens behind whole batch prefills.
  const Table t = mixed_table(64, 4, 300);
  const table::FdSet fds;
  const auto arrivals = mixed_stream(t, 72, 12.0);

  OnlineConfig mono_cfg = mixed_config();
  const OnlineRunResult mono = run_online(t, fds, arrivals, mono_cfg);

  OnlineConfig chk_cfg = mixed_config();
  chk_cfg.engine.prefill_chunk_tokens = 64;
  const OnlineRunResult chk = run_online(t, fds, arrivals, chk_cfg);

  // Same completions either way.
  ASSERT_EQ(mono.requests.size(), arrivals.size());
  ASSERT_EQ(chk.requests.size(), arrivals.size());
  EXPECT_EQ(chk.engine.prompt_tokens, mono.engine.prompt_tokens);
  EXPECT_EQ(chk.engine.output_tokens, mono.engine.output_tokens);
  // Conservation inside the chunked run: hit + computed == prompted, and
  // the chunk ledger covers exactly the computed work (no preemption).
  EXPECT_EQ(chk.engine.cached_prompt_tokens + chk.engine.computed_prompt_tokens,
            chk.engine.prompt_tokens);
  EXPECT_EQ(chk.engine.chunked_prefill_tokens,
            chk.engine.computed_prompt_tokens);
  EXPECT_GT(chk.engine.prefill_chunks, 0u);
  EXPECT_EQ(mono.engine.prefill_chunks, 0u);

  const auto& mono_int =
      mono.per_class[static_cast<std::size_t>(llm::PriorityClass::Interactive)];
  const auto& chk_int =
      chk.per_class[static_cast<std::size_t>(llm::PriorityClass::Interactive)];
  ASSERT_GT(mono_int.requests, 0u);
  ASSERT_EQ(chk_int.requests, mono_int.requests);

  // The headline: long batch prompts no longer freeze interactive decodes
  // (ITL tail) or delay their first token behind a whole admission
  // prefill (TTFT tail).
  EXPECT_GT(mono_int.latency.p99_itl, 0.0);
  EXPECT_LT(chk_int.latency.p99_itl, mono_int.latency.p99_itl);
  EXPECT_LT(chk_int.latency.p99_ttft, mono_int.latency.p99_ttft);
  // Engine-side view of the same effect.
  EXPECT_LT(chk.engine.max_decode_stall_seconds,
            mono.engine.max_decode_stall_seconds);
}

TEST(ChunkedServing, TracePriorityClassesReachPerClassAccounting) {
  // Regression for the arrivals_from_trace class drop: the per-class
  // breakdown of a trace-driven run must see both classes, not an
  // all-Standard flattening.
  const Table t = mixed_table(32, 4, 20);
  const table::FdSet fds;
  const auto arrivals = mixed_stream(t, 36, 30.0);
  const OnlineRunResult r = run_online(t, fds, arrivals, mixed_config());
  const auto& by_class = r.per_class;
  EXPECT_GT(
      by_class[static_cast<std::size_t>(llm::PriorityClass::Interactive)]
          .requests,
      0u);
  EXPECT_GT(
      by_class[static_cast<std::size_t>(llm::PriorityClass::Batch)].requests,
      0u);
  EXPECT_EQ(
      by_class[static_cast<std::size_t>(llm::PriorityClass::Standard)].requests,
      0u);
}

class BurstDispatch : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BurstDispatch, BufferHoldingManyWindowsDispatchesThemAll) {
  // Every arrival lands at t=0 — one event-loop wakeup sees 2.5x the row
  // bound buffered and must dispatch multiple row-bound windows (the
  // pop_ready loop), with the remainder going out as the deadline/flush
  // window. A single oversized window or a dropped remainder both fail.
  const std::size_t n_replicas = GetParam();
  const Table t = mixed_table(40, 4, 10);
  const table::FdSet fds;
  std::vector<double> times(40, 0.0);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 40; ++i) rows.push_back(i);
  const auto arrivals = arrivals_from_trace(times, rows);

  OnlineConfig cfg = mixed_config();
  cfg.scheduler.window_rows = 16;  // 40 buffered = 2 full windows + 8
  cfg.scheduler.max_wait_seconds = 0.5;
  cfg.n_replicas = n_replicas;
  const OnlineRunResult r = run_online(t, fds, arrivals, cfg);

  EXPECT_GE(r.windows, 3u);
  ASSERT_EQ(r.requests.size(), 40u);
  std::set<std::uint64_t> ids;
  for (const auto& sr : r.requests) EXPECT_TRUE(ids.insert(sr.id).second);
  // The two full windows leave at t=0; only the 8-row remainder may wait
  // for the deadline.
  std::size_t dispatched_at_zero = 0;
  for (const auto& sr : r.requests)
    if (sr.dispatch_time == 0.0) ++dispatched_at_zero;
  EXPECT_GE(dispatched_at_zero, 32u);
}

INSTANTIATE_TEST_SUITE_P(SingleAndFleet, BurstDispatch,
                         ::testing::Values(1u, 2u),
                         [](const auto& info) {
                           return "replicas" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace llmq::serve
