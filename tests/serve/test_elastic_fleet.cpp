// Elastic-fleet properties: prefix migration is exactly-once, and the
// watermark-driven scaling loop is deterministic and driver-agnostic.
//
// Migration semantics under test (cache-pair level, 20 seeds):
//  - no double-counted hits: begin_migration / admit_migrated /
//    end_migration leave both caches' lookup and hit counters untouched —
//    a migrated prefix is warm capacity, not a fake cache hit;
//  - deferred donor eviction: the donor's batch leases pin every migrated
//    prefix until end_migration, so the donor keeps serving the bytes the
//    recipient has not received yet;
//  - mid-migration drain loses nothing: even if the donor is drained and
//    fully evicted after the transfer lands, every migrated prefix is
//    servable from the recipient.
//
// Fleet level: elasticity-enabled runs replay bit-identically, the
// threaded driver matches the virtual-clock replicated driver event for
// event, and ReplicaSpawn actually fires under overload.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "obs/audit.hpp"
#include "obs/trace.hpp"
#include "serve/online.hpp"
#include "serve/threaded_fleet.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using cache::CacheConfig;
using cache::CacheLease;
using cache::CacheStats;
using cache::PrefixCache;

tokenizer::TokenSeq random_prompt(util::Rng& rng, std::size_t max_len,
                                  std::size_t vocab) {
  tokenizer::TokenSeq s(1 + rng.next_below(max_len));
  for (auto& t : s)
    t = static_cast<tokenizer::TokenId>(rng.next_below(vocab));
  return s;
}

class MigrationExactlyOnce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationExactlyOnce, DonorRecipientLedgersReconcile) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 7919 + 3);
  PrefixCache donor(CacheConfig{4, 32, true, 0, 2, 0, 0});
  PrefixCache recipient(CacheConfig{4, 32, true, 0, 2, 0, 0});

  // Warm the donor with a shared-prefix-heavy stream.
  std::vector<tokenizer::TokenSeq> prompts;
  for (int i = 0; i < 10; ++i)
    prompts.push_back(random_prompt(rng, 24, 3));
  for (int step = 0; step < 60; ++step) {
    const auto& p = prompts[rng.next_below(prompts.size())];
    auto lease = donor.lookup(p);
    donor.admit(p, lease);
    donor.release(lease);
  }
  const CacheStats donor_before = donor.stats();
  const std::size_t donor_resident = donor.resident_blocks();

  const std::size_t budget = 1 + rng.next_below(16);
  auto batch = donor.begin_migration(budget);
  EXPECT_LE(batch.blocks, donor_resident);
  EXPECT_EQ(batch.prefixes.size(), batch.leases.size());

  // Deferred donor eviction: while the transfer is in flight, pressure
  // cannot destroy or demote the pinned prefixes out from under it.
  donor.evict(donor.resident_blocks());
  for (const auto& p : batch.prefixes)
    EXPECT_EQ(donor.peek(p), p.size())
        << "donor dropped an in-flight migration prefix (seed " << seed
        << ")";

  // Land the transfer: recipient admits every prefix, exactly once each.
  std::size_t landed = 0;
  for (const auto& p : batch.prefixes) landed += recipient.admit_migrated(p);
  EXPECT_EQ(landed, recipient.resident_blocks());
  // Prefix-sharing means path blocks can overlap across batch entries;
  // the recipient holds each block once, never more than the batch total.
  EXPECT_LE(landed, batch.blocks);
  // Exactly-once: replaying the same transfer inserts nothing new.
  for (const auto& p : batch.prefixes)
    EXPECT_EQ(recipient.admit_migrated(p), 0u) << "seed " << seed;
  EXPECT_EQ(recipient.resident_blocks(), landed);

  // No double-counted hits, either side: migration is not a lookup.
  EXPECT_EQ(recipient.stats().lookups, 0u);
  EXPECT_EQ(recipient.stats().hit_tokens, 0u);
  EXPECT_EQ(recipient.stats().lookup_tokens, 0u);
  EXPECT_EQ(donor.stats().lookups, donor_before.lookups);
  EXPECT_EQ(donor.stats().hit_tokens, donor_before.hit_tokens);
  EXPECT_EQ(donor.stats().lookup_tokens, donor_before.lookup_tokens);

  // Mid-migration drain loses nothing: once the batch has landed, the
  // donor may be drained and flushed, yet every migrated prefix still
  // serves — from the recipient.
  donor.end_migration(batch);
  donor.evict(donor.resident_blocks());
  for (const auto& p : batch.prefixes) {
    auto lease = recipient.lookup(p);
    EXPECT_EQ(lease.cached_tokens, p.size()) << "seed " << seed;
    recipient.release(lease);
  }
  EXPECT_EQ(donor.check_invariants(), "");
  EXPECT_EQ(recipient.check_invariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationExactlyOnce,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

// ---- Fleet-level elasticity. ----

table::Table tiny_table(std::size_t n) {
  table::Table t(table::Schema::of_names({"category", "region", "status"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"cat_" + std::to_string(r % 3),
                  "region_" + std::to_string(r % 4),
                  r % 2 ? "active" : "archived"});
  return t;
}

OnlineConfig elastic_config() {
  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a serving assistant.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 6.0;
  cfg.class_output_multiplier = {0.5, 1.0, 4.0};
  cfg.ttft_slo_seconds = 5.0;
  cfg.scheduler.policy = Policy::WindowedGgr;
  cfg.scheduler.window_rows = 16;
  cfg.scheduler.max_wait_seconds = 1.0;
  cfg.scheduler.priority_order = true;
  cfg.scheduler.aging_seconds = 4.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.max_batch_size = 4;
  cfg.engine.kv_pool_blocks_override = 96;
  cfg.engine.priority_aging_seconds = 4.0;
  cfg.n_replicas = 1;
  cfg.router = RouterPolicy::PrefixAffinity;
  cfg.elasticity.enabled = true;
  cfg.elasticity.min_replicas = 1;
  cfg.elasticity.max_replicas = 3;
  cfg.elasticity.high_watermark_tokens = 200;
  cfg.elasticity.low_watermark_tokens = 40;
  cfg.elasticity.migrate_max_blocks = 8;
  cfg.elasticity.cooldown_seconds = 0.25;
  return cfg;
}

std::vector<Arrival> burst_arrivals(std::size_t n_rows) {
  WorkloadOptions w;
  w.arrival_rate = 60.0;  // burst: drives outstanding load over watermark
  w.n_tenants = 3;
  w.tenant_classes = {llm::PriorityClass::Batch,
                      llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard};
  w.n_requests = 2 * n_rows;
  w.seed = 4242;
  return generate_arrivals(n_rows, w);
}

TEST(ElasticFleet, ScalesUpUnderBurstAndAuditsClean) {
  const std::size_t n_rows = 60;
  const table::Table t = tiny_table(n_rows);
  const table::FdSet fds;
  OnlineConfig cfg = elastic_config();
  obs::TraceLog log;
  cfg.trace.sink = &log;

  const OnlineRunResult run = run_online(t, fds, burst_arrivals(n_rows), cfg);
  EXPECT_EQ(run.replicas.size(), 3u);  // elasticity ceiling sizing

  const obs::AuditResult audit = obs::audit_trace(log);
  EXPECT_TRUE(audit.ok()) << audit.first_violation();
  EXPECT_GT(audit.replica_spawns, 0u)
      << "the burst never crossed the high watermark — the fixture no "
         "longer exercises scale-up";
  // Warm spawns announce their migrated-prefix budget.
  EXPECT_GT(audit.prefix_migrations, 0u);
  EXPECT_GT(audit.migrated_blocks, 0u);
  // Work must actually land on a scaled-up replica.
  std::size_t active_with_work = 0;
  for (const auto& r : run.replicas) active_with_work += r.requests > 0;
  EXPECT_GT(active_with_work, 1u);
}

TEST(ElasticFleet, ElasticReplayIsBitIdentical) {
  const std::size_t n_rows = 60;
  const table::Table t = tiny_table(n_rows);
  const table::FdSet fds;
  const auto arrivals = burst_arrivals(n_rows);
  const OnlineConfig cfg = elastic_config();

  const OnlineRunResult a = run_online(t, fds, arrivals, cfg);
  const OnlineRunResult b = run_online(t, fds, arrivals, cfg);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].replica, b.requests[i].replica);
    EXPECT_EQ(a.requests[i].finish_time, b.requests[i].finish_time);
    EXPECT_EQ(a.requests[i].cached_tokens, b.requests[i].cached_tokens);
  }
  EXPECT_EQ(a.latency.p99_ttft, b.latency.p99_ttft);
  EXPECT_EQ(a.engine.cache.hit_tokens, b.engine.cache.hit_tokens);
  EXPECT_EQ(a.load_imbalance, b.load_imbalance);
}

TEST(ElasticFleet, ThreadedDriverMatchesVirtualClockWithElasticity) {
  const std::size_t n_rows = 60;
  const table::Table t = tiny_table(n_rows);
  const table::FdSet fds;
  const auto arrivals = burst_arrivals(n_rows);
  const OnlineConfig cfg = elastic_config();

  obs::TraceLog log_v, log_t;
  OnlineConfig cfg_v = cfg, cfg_t = cfg;
  cfg_v.trace.sink = &log_v;
  cfg_t.trace.sink = &log_t;
  const OnlineRunResult v = run_online_replicated(t, fds, arrivals, cfg_v);
  const OnlineRunResult th = run_online_threaded(t, fds, arrivals, cfg_t);

  ASSERT_EQ(v.requests.size(), th.requests.size());
  for (std::size_t i = 0; i < v.requests.size(); ++i) {
    EXPECT_EQ(v.requests[i].id, th.requests[i].id);
    EXPECT_EQ(v.requests[i].replica, th.requests[i].replica);
    EXPECT_EQ(v.requests[i].first_token_time, th.requests[i].first_token_time);
    EXPECT_EQ(v.requests[i].finish_time, th.requests[i].finish_time);
  }
  EXPECT_EQ(v.latency.p99_ttft, th.latency.p99_ttft);
  EXPECT_EQ(v.engine.cache.hit_tokens, th.engine.cache.hit_tokens);

  // Event-for-event: the scaling decisions themselves must line up.
  ASSERT_EQ(log_v.size(), log_t.size());
  const auto& ev = log_v.events();
  const auto& et = log_t.events();
  for (std::size_t i = 0; i < ev.size(); ++i) {
    ASSERT_EQ(ev[i].kind, et[i].kind) << "event " << i;
    ASSERT_EQ(ev[i].time, et[i].time) << "event " << i;
    ASSERT_EQ(ev[i].replica, et[i].replica) << "event " << i;
    ASSERT_EQ(ev[i].a, et[i].a) << "event " << i;
    ASSERT_EQ(ev[i].b, et[i].b) << "event " << i;
    ASSERT_EQ(ev[i].c, et[i].c) << "event " << i;
  }
}

TEST(ElasticFleet, DisabledElasticityLeavesSingleReplicaPathUntouched) {
  // elasticity.enabled routes n_replicas == 1 through the replicated
  // driver; with it off the dedicated single path must be taken and the
  // result must carry exactly one replica slice.
  const std::size_t n_rows = 40;
  const table::Table t = tiny_table(n_rows);
  const table::FdSet fds;
  OnlineConfig cfg = elastic_config();
  cfg.elasticity = ElasticityConfig{};  // off
  const OnlineRunResult run = run_online(t, fds, burst_arrivals(n_rows), cfg);
  EXPECT_EQ(run.replicas.size(), 1u);
}

}  // namespace
}  // namespace llmq::serve
