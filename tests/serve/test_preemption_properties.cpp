// Preemption conservation properties over seed-swept interleavings.
//
// For randomized overloaded streams with mixed priority classes, a
// preemption-enabled run must conserve everything the no-preemption run
// delivers:
//
//   * exactly-once answer delivery (same id set, no loss/duplication);
//   * token totals equal the no-preemption run — prompt and output
//     counters are exactly-once per request — plus the separately
//     measured recompute (recompute_prefill_tokens), which is the only
//     place replay work may appear;
//   * cache stats stay exactly-once: one counted lookup per request
//     regardless of defer/preempt/resume cycles, hit credits equal to
//     engine-side cached tokens;
//   * no pinned block is ever evicted: PrefixCache::check_invariants
//     walks the pin ledger (lease pins == tree ref counts) and
//     RadixTree::remove_node throws on any pinned eviction — exercised
//     here by randomized preempt/resume churn against a tight pool;
//   * aging bounds starvation: every batch-class request completes, with
//     a sane preemption count (no preempt/resume livelock).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "serve/online.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table random_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back("value_" +
                    std::string(1, static_cast<char>(
                                       'a' + rng.next_below(alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

class PreemptionConservation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreemptionConservation, TokensAndAnswersConserved) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 6271 + 7);

  const std::size_t n_rows = 20 + rng.next_below(20);
  const Table t = random_table(rng, n_rows, 2 + rng.next_below(3),
                               2 + static_cast<int>(rng.next_below(3)));
  const table::FdSet fds;

  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 3.0;
  cfg.class_output_multiplier = {0.5, 1.0, 2.0 + rng.next_below(4)};
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.scheduler.window_rows = 4 + rng.next_below(13);
  cfg.scheduler.max_wait_seconds = 0.25 + 0.25 * rng.next_below(4);
  cfg.scheduler.priority_order = rng.next_bool(0.5);
  cfg.scheduler.aging_seconds = 2.0;
  const Policy policies[] = {Policy::Fifo, Policy::WindowedGgr,
                             Policy::TenantGgr};
  cfg.scheduler.policy = policies[rng.next_below(3)];
  // Tight memory + small batch: the regime where preemption fires.
  cfg.engine.max_batch_size = 2 + rng.next_below(4);
  cfg.engine.kv_pool_blocks_override = 48 + rng.next_below(64);
  cfg.engine.priority_aging_seconds = 2.0;
  cfg.n_replicas = 1 + rng.next_below(4);
  const RouterPolicy routers[] = {
      RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
      RouterPolicy::TenantHash, RouterPolicy::PrefixAffinity};
  cfg.router = routers[rng.next_below(4)];

  WorkloadOptions w;
  w.arrival_rate = 20.0 + static_cast<double>(rng.next_below(60));
  w.n_tenants = 3;
  w.tenant_classes = {llm::PriorityClass::Batch,
                      llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard};
  w.n_requests = n_rows + rng.next_below(2 * n_rows);
  w.seed = seed;
  const auto arrivals = generate_arrivals(n_rows, w);

  OnlineConfig cfg_off = cfg;
  cfg_off.engine.preemption = false;
  OnlineConfig cfg_on = cfg;
  cfg_on.engine.preemption = true;
  const OnlineRunResult off = run_online(t, fds, arrivals, cfg_off);
  const OnlineRunResult on = run_online(t, fds, arrivals, cfg_on);

  // ---- 1. Exactly-once delivery, both arms, identical id sets. ----
  ASSERT_EQ(off.requests.size(), arrivals.size());
  ASSERT_EQ(on.requests.size(), arrivals.size());
  std::set<std::uint64_t> expected, got_on;
  for (const auto& a : arrivals) expected.insert(a.id);
  for (const auto& sr : on.requests)
    EXPECT_TRUE(got_on.insert(sr.id).second) << "duplicate completion";
  EXPECT_EQ(got_on, expected);

  // ---- 2. Token totals match the no-preemption run... ----
  EXPECT_EQ(on.engine.prompt_tokens, off.engine.prompt_tokens);
  EXPECT_EQ(on.engine.output_tokens, off.engine.output_tokens);
  EXPECT_EQ(off.engine.preemptions, 0u);
  EXPECT_EQ(off.engine.recompute_prefill_tokens, 0u);

  // ---- ...plus measured recompute, the only place replay work lives.
  std::uint64_t recomputed = 0, preempts = 0;
  for (const auto& sr : on.requests) {
    recomputed += sr.recomputed_tokens;
    preempts += sr.preemptions;
    EXPECT_EQ(sr.cached_tokens + (sr.prompt_tokens - sr.cached_tokens),
              sr.prompt_tokens);
    if (sr.preemptions == 0) {
      EXPECT_EQ(sr.recomputed_tokens, 0u);
    }
  }
  EXPECT_EQ(recomputed, on.engine.recompute_prefill_tokens);
  EXPECT_EQ(preempts, on.engine.preemptions);
  // Prefill-work decomposition: first-admission computed tokens plus
  // recompute is everything the engine prefilled.
  EXPECT_EQ(on.engine.cached_prompt_tokens + on.engine.computed_prompt_tokens,
            on.engine.prompt_tokens);

  // ---- 3. Cache stats exactly-once across defer/preempt/resume. ----
  for (const OnlineRunResult* r : {&off, &on}) {
    EXPECT_EQ(r->engine.cache.lookups, arrivals.size());
    EXPECT_EQ(r->engine.cache.hit_tokens, r->engine.cached_prompt_tokens);
    EXPECT_EQ(r->engine.cache.lookup_tokens, r->engine.prompt_tokens);
  }

  // ---- 4. Per-class attribution sums to the aggregate. ----
  ASSERT_EQ(on.per_class.size(), llm::kNumPriorityClasses);
  std::size_t class_requests = 0;
  std::uint64_t class_preempts = 0, class_recompute = 0;
  for (const auto& pc : on.per_class) {
    class_requests += pc.requests;
    class_preempts += pc.preemptions;
    class_recompute += pc.recomputed_tokens;
  }
  EXPECT_EQ(class_requests, arrivals.size());
  EXPECT_EQ(class_preempts, on.engine.preemptions);
  EXPECT_EQ(class_recompute, on.engine.recompute_prefill_tokens);

  // ---- 5. Aging bounds starvation: batch all complete, no livelock. ----
  for (const auto& sr : on.requests)
    EXPECT_LE(sr.preemptions, 50u) << "preempt/resume thrash for " << sr.id;
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PreemptionConservation,
                         ::testing::Range<std::uint64_t>(1, 21));

// At least one seed of the sweep must actually preempt, or the suite
// pins nothing; checked once here against a deliberately hostile config.
TEST(PreemptionConservation, SweepExercisesPreemption) {
  util::Rng rng(99);
  const Table t = random_table(rng, 30, 3, 3);
  const table::FdSet fds;

  OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a data analyst.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 4.0;
  cfg.class_output_multiplier = {0.5, 1.0, 8.0};
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.scheduler.window_rows = 8;
  cfg.scheduler.max_wait_seconds = 0.5;
  cfg.engine.max_batch_size = 2;
  cfg.engine.kv_pool_blocks_override = 48;
  cfg.engine.preemption = true;
  cfg.engine.priority_aging_seconds = 2.0;

  WorkloadOptions w;
  w.arrival_rate = 60.0;
  w.n_tenants = 2;
  w.tenant_classes = {llm::PriorityClass::Batch,
                      llm::PriorityClass::Interactive};
  w.n_requests = 60;
  w.seed = 5;
  const auto arrivals = generate_arrivals(30, w);
  const OnlineRunResult r = run_online(t, fds, arrivals, cfg);
  EXPECT_GT(r.engine.preemptions, 0u);
  EXPECT_GT(r.engine.recompute_prefill_tokens, 0u);
  EXPECT_EQ(r.requests.size(), arrivals.size());
}

// Randomized pause/evict/resume churn against one session with a tight
// pool: the pin ledger (no pinned block ever evicted, no pin leaked) must
// hold after every operation, and every request must still complete
// exactly once with its full output.
class PreemptResumeChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreemptResumeChurn, PinLedgerHoldsUnderRandomOps) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 31 + 11);

  llm::ModelSpec spec;
  spec.name = "tiny";
  spec.params = 1e9;
  spec.n_layers = 8;
  spec.hidden_dim = 512;
  spec.n_heads = 8;
  spec.n_kv_heads = 8;
  spec.head_dim = 64;
  spec.dtype_bytes = 2;
  llm::EngineConfig ec;
  ec.max_batch_size = 2 + rng.next_below(3);
  ec.block_size = 16;
  ec.kv_pool_blocks_override = 24 + rng.next_below(24);
  ec.preemption = rng.next_bool(0.5);
  ec.priority_aging_seconds = 1.0;
  const llm::ServingEngine engine(llm::CostModel(spec, llm::l4()), ec);
  auto cache = engine.make_session_cache();
  llm::EngineSession session(engine, cache);

  const std::size_t n = 12 + rng.next_below(12);
  std::vector<std::uint64_t> parked;
  std::set<std::uint64_t> completed;
  std::size_t submitted = 0;

  const auto submit_one = [&] {
    llm::Request r;
    r.id = submitted;
    r.priority = static_cast<llm::PriorityClass>(rng.next_below(3));
    const std::size_t len = 17 + rng.next_below(60);
    for (std::size_t k = 0; k < len; ++k)
      r.prompt.push_back(static_cast<tokenizer::TokenId>(
          k < 16 ? k : rng.next_below(200)));
    r.output_tokens = 1 + rng.next_below(8);
    session.submit(std::move(r));
    ++submitted;
  };

  submit_one();
  for (std::size_t op = 0; op < 400 && completed.size() < n; ++op) {
    const std::size_t kind = rng.next_below(10);
    if (kind < 3 && submitted < n) {
      submit_one();
    } else if (kind == 3 && session.num_running() > 0) {
      // Preempt a random running request (probe ids until one hits).
      for (std::uint64_t id = 0; id < submitted; ++id) {
        const std::uint64_t pick = (id + rng.next_below(submitted)) % submitted;
        if (session.preempt(pick)) {
          parked.push_back(pick);
          break;
        }
      }
    } else if (kind == 4 && !parked.empty()) {
      const std::size_t i = rng.next_below(parked.size());
      ASSERT_TRUE(session.resume(parked[i]));
      parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      for (const auto& res : session.step().completed)
        EXPECT_TRUE(completed.insert(res.id).second)
            << "duplicate completion " << res.id;
    }
    ASSERT_EQ(cache.check_invariants(), "") << "after op " << op;
  }
  // Resume everything parked, finish the stream, verify exactly-once.
  for (std::uint64_t id : parked) ASSERT_TRUE(session.resume(id));
  while (submitted < n) submit_one();
  for (const auto& res : session.drain())
    EXPECT_TRUE(completed.insert(res.id).second);
  EXPECT_EQ(completed.size(), n);
  EXPECT_EQ(session.num_parked(), 0u);
  EXPECT_EQ(session.outstanding_prompt_tokens(), 0u);
  EXPECT_EQ(cache.check_invariants(), "");
  // Every counted lookup is a real request, exactly once.
  EXPECT_EQ(session.metrics().cache.lookups, n);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PreemptResumeChurn,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace llmq::serve
