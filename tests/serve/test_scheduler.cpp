#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/ggr.hpp"
#include "util/rng.hpp"

namespace llmq::serve {
namespace {

using table::Schema;
using table::Table;

Table groupy_table(util::Rng& rng, std::size_t n, std::size_t m,
                   int alphabet) {
  std::vector<std::string> names;
  for (std::size_t c = 0; c < m; ++c) names.push_back("f" + std::to_string(c));
  Table t(Schema::of_names(names));
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < m; ++c)
      row.push_back(
          std::string(1, static_cast<char>('a' + rng.next_below(alphabet))));
    t.append_row(std::move(row));
  }
  return t;
}

std::vector<Arrival> sequential_arrivals(std::size_t n, double gap = 0.1,
                                         std::uint32_t tenants = 1) {
  std::vector<Arrival> out;
  for (std::size_t i = 0; i < n; ++i) {
    Arrival a;
    a.id = i;
    a.time = gap * static_cast<double>(i + 1);
    a.row = i;
    a.tenant = static_cast<std::uint32_t>(i % tenants);
    out.push_back(a);
  }
  return out;
}

SchedulerOptions fifo_opts(std::size_t window, double max_wait = 0.0) {
  SchedulerOptions o;
  o.policy = Policy::Fifo;
  o.window_rows = window;
  o.max_wait_seconds = max_wait;
  return o;
}

TEST(Scheduler, RowBoundWindowing) {
  util::Rng rng(1);
  const Table t = groupy_table(rng, 10, 2, 3);
  const table::FdSet fds;
  OnlineScheduler s(t, fds, fifo_opts(4));
  for (const auto& a : sequential_arrivals(10)) s.push(a);
  EXPECT_EQ(s.buffered(), 10u);

  auto w1 = s.pop_ready(1.0);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->arrivals.size(), 4u);
  auto w2 = s.pop_ready(1.0);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->arrivals.size(), 4u);
  // 2 left: below the row bound and no deadline -> not ready.
  EXPECT_FALSE(s.ready(100.0));
  EXPECT_FALSE(s.pop_ready(100.0).has_value());
  // Drain gets the remainder.
  auto w3 = s.flush(100.0);
  ASSERT_TRUE(w3.has_value());
  EXPECT_EQ(w3->arrivals.size(), 2u);
  EXPECT_EQ(s.buffered(), 0u);
  EXPECT_FALSE(s.flush(100.0).has_value());
}

TEST(Scheduler, DeadlineFlushTakesWholeBuffer) {
  util::Rng rng(2);
  const Table t = groupy_table(rng, 10, 2, 3);
  const table::FdSet fds;
  // Unbounded window: only the wait deadline can trigger dispatch.
  OnlineScheduler s(t, fds, fifo_opts(0, 1.0));
  const auto arrivals = sequential_arrivals(5, 0.1);  // t = 0.1 .. 0.5
  for (const auto& a : arrivals) s.push(a);

  EXPECT_DOUBLE_EQ(s.next_deadline(), 1.1);  // oldest arrival + max_wait
  EXPECT_FALSE(s.ready(1.05));
  EXPECT_TRUE(s.ready(1.1));
  auto w = s.pop_ready(1.1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->arrivals.size(), 5u);  // deadline flush empties the buffer
  EXPECT_EQ(s.buffered(), 0u);
  EXPECT_TRUE(std::isinf(s.next_deadline()));
}

TEST(Scheduler, FifoPreservesArrivalOrderAndSchemaFields) {
  util::Rng rng(3);
  const Table t = groupy_table(rng, 8, 3, 2);
  const table::FdSet fds;
  OnlineScheduler s(t, fds, fifo_opts(8));
  for (const auto& a : sequential_arrivals(8)) s.push(a);
  auto w = s.pop_ready(1.0);
  ASSERT_TRUE(w.has_value());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(w->arrivals[i].id, i);
    ASSERT_EQ(w->field_orders[i].size(), 3u);
    for (std::size_t f = 0; f < 3; ++f) EXPECT_EQ(w->field_orders[i][f], f);
  }
  EXPECT_DOUBLE_EQ(w->solve_seconds, 0.0);
}

TEST(Scheduler, WindowedGgrMatchesOfflineGgrOnTheWindow) {
  util::Rng rng(4);
  const Table t = groupy_table(rng, 12, 3, 2);
  const table::FdSet fds;
  SchedulerOptions o;
  o.policy = Policy::WindowedGgr;
  o.window_rows = 12;
  o.ggr.measure = core::LengthMeasure::Unit;
  OnlineScheduler s(t, fds, o);
  for (const auto& a : sequential_arrivals(12)) s.push(a);
  auto w = s.pop_ready(2.0);
  ASSERT_TRUE(w.has_value());

  core::GgrOptions go;
  go.measure = core::LengthMeasure::Unit;
  const auto offline = core::ggr(t, fds, go);
  ASSERT_EQ(w->arrivals.size(), 12u);
  for (std::size_t pos = 0; pos < 12; ++pos) {
    EXPECT_EQ(w->arrivals[pos].row, offline.ordering.row_at(pos));
    EXPECT_EQ(w->field_orders[pos], offline.ordering.fields_at(pos));
  }
  EXPECT_GT(w->solve_seconds, 0.0);
}

TEST(Scheduler, WindowedGgrEmitsEachArrivalOnce) {
  util::Rng rng(5);
  const Table t = groupy_table(rng, 30, 3, 2);
  const table::FdSet fds;
  SchedulerOptions o;
  o.policy = Policy::WindowedGgr;
  o.window_rows = 10;
  o.ggr.measure = core::LengthMeasure::Unit;
  OnlineScheduler s(t, fds, o);
  for (const auto& a : sequential_arrivals(30)) s.push(a);
  std::set<std::uint64_t> seen;
  while (auto w = s.pop_ready(10.0)) {
    EXPECT_EQ(w->arrivals.size(), 10u);
    for (std::size_t i = 0; i < w->arrivals.size(); ++i) {
      EXPECT_TRUE(seen.insert(w->arrivals[i].id).second);
      // Field orders are valid permutations of the schema.
      auto fo = w->field_orders[i];
      std::sort(fo.begin(), fo.end());
      for (std::size_t f = 0; f < fo.size(); ++f) EXPECT_EQ(fo[f], f);
    }
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(Scheduler, TenantGgrPartitionsByTenant) {
  util::Rng rng(6);
  const Table t = groupy_table(rng, 24, 3, 2);
  const table::FdSet fds;
  SchedulerOptions o;
  o.policy = Policy::TenantGgr;
  o.window_rows = 24;
  o.ggr.measure = core::LengthMeasure::Unit;
  OnlineScheduler s(t, fds, o);
  for (const auto& a : sequential_arrivals(24, 0.1, 3)) s.push(a);
  auto w = s.pop_ready(5.0);
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->arrivals.size(), 24u);

  // Each tenant's requests form one contiguous block in emission order...
  std::vector<std::uint32_t> block_tenants;
  for (const auto& a : w->arrivals)
    if (block_tenants.empty() || block_tenants.back() != a.tenant)
      block_tenants.push_back(a.tenant);
  std::set<std::uint32_t> distinct(block_tenants.begin(), block_tenants.end());
  EXPECT_EQ(block_tenants.size(), distinct.size());
  EXPECT_EQ(distinct.size(), 3u);
  // ...blocks are ordered by first arrival (tenant 0 arrived first here)...
  EXPECT_EQ(block_tenants.front(), 0u);
  // ...and every arrival is emitted exactly once.
  std::set<std::uint64_t> ids;
  for (const auto& a : w->arrivals) ids.insert(a.id);
  EXPECT_EQ(ids.size(), 24u);
}

TEST(Scheduler, RejectsConfigThatNeverDispatches) {
  // window_rows == 0 with no wait deadline means ready() can never fire:
  // the stream silently degrades to one end-of-stream flush batch. The
  // constructor must reject it.
  util::Rng rng(7);
  const Table t = groupy_table(rng, 4, 2, 2);
  const table::FdSet fds;
  EXPECT_THROW(OnlineScheduler(t, fds, fifo_opts(0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(OnlineScheduler(t, fds, fifo_opts(0, -1.0)),
               std::invalid_argument);
  // Either bound alone is a valid configuration.
  EXPECT_NO_THROW(OnlineScheduler(t, fds, fifo_opts(4, 0.0)));
  EXPECT_NO_THROW(OnlineScheduler(t, fds, fifo_opts(0, 1.0)));
}

TEST(Scheduler, PolicyNames) {
  EXPECT_EQ(to_string(Policy::Fifo), "FIFO");
  EXPECT_EQ(policy_from_string("fifo"), Policy::Fifo);
  EXPECT_EQ(policy_from_string("windowed-ggr"), Policy::WindowedGgr);
  EXPECT_EQ(policy_from_string("tenant-ggr"), Policy::TenantGgr);
  EXPECT_FALSE(policy_from_string("nope").has_value());
}

}  // namespace
}  // namespace llmq::serve
