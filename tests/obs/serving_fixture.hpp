#pragma once
// Shared fixture for the observability suite: a small multi-class serving
// workload on a deliberately tight KV pool, the same shape the replay
// determinism suite pins (defer + preempt traffic guaranteed), with knobs
// for replica count, preemption, and chunked prefill.

#include <cstddef>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/online.hpp"

namespace llmq::obs_test {

inline table::Table tiny_table(std::size_t n) {
  table::Table t(table::Schema::of_names({"category", "region", "status"}));
  for (std::size_t r = 0; r < n; ++r)
    t.append_row({"cat_" + std::to_string(r % 3),
                  "region_" + std::to_string(r % 4),
                  r % 2 ? "active" : "archived"});
  return t;
}

inline serve::OnlineConfig make_config(std::size_t n_replicas, bool preemption,
                                       std::size_t chunk_tokens) {
  serve::OnlineConfig cfg;
  cfg.prompt.system_prompt = "You are a serving assistant.";
  cfg.prompt.user_prompt = "Classify the row.";
  cfg.avg_output_tokens = 6.0;
  cfg.class_output_multiplier = {0.5, 1.0, 4.0};
  cfg.ttft_slo_seconds = 5.0;
  cfg.scheduler.policy = serve::Policy::WindowedGgr;
  cfg.scheduler.window_rows = 16;
  cfg.scheduler.max_wait_seconds = 1.0;
  cfg.scheduler.priority_order = true;
  cfg.scheduler.aging_seconds = 4.0;
  cfg.scheduler.ggr.measure = core::LengthMeasure::Unit;
  cfg.engine.max_batch_size = 4;
  cfg.engine.kv_pool_blocks_override = 96;  // tight: defer + preempt traffic
  cfg.engine.preemption = preemption;
  cfg.engine.priority_aging_seconds = 4.0;
  cfg.engine.prefill_chunk_tokens = chunk_tokens;
  cfg.n_replicas = n_replicas;
  cfg.router = serve::RouterPolicy::PrefixAffinity;
  return cfg;
}

inline std::vector<serve::Arrival> make_arrivals(std::size_t n_rows) {
  serve::WorkloadOptions w;
  w.arrival_rate = 40.0;
  w.n_tenants = 3;
  w.tenant_classes = {llm::PriorityClass::Batch,
                      llm::PriorityClass::Interactive,
                      llm::PriorityClass::Standard};
  w.n_requests = 2 * n_rows;
  w.seed = 1234;
  return serve::generate_arrivals(n_rows, w);
}

struct TracedRun {
  serve::OnlineRunResult result;
  obs::TraceLog log;
  obs::TimeSeries timeseries;
};

/// One traced run of the fixture workload (log + sampled gauges).
inline TracedRun run_traced(std::size_t n_replicas, bool preemption,
                            std::size_t chunk_tokens,
                            std::size_t n_rows = 60) {
  TracedRun run;
  const table::Table t = tiny_table(n_rows);
  const table::FdSet fds;
  serve::OnlineConfig cfg = make_config(n_replicas, preemption, chunk_tokens);
  cfg.trace.sink = &run.log;
  cfg.trace.timeseries = &run.timeseries;
  run.result = serve::run_online(t, fds, make_arrivals(n_rows), cfg);
  return run;
}

}  // namespace llmq::obs_test
