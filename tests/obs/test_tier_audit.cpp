// Auditor rules for the tier/elasticity events: the exactly-once tier
// ledger (every promoted block was first demoted, every lower-tier death
// was a resident block), the ReplicaSpawn/ReplicaDrain active-count
// chain, and PrefixMigrate sanity — each proven on a real tiered run and
// then falsified with single corrupted events.

#include <gtest/gtest.h>

#include "obs/audit.hpp"
#include "serving_fixture.hpp"

namespace llmq::obs {
namespace {

TraceEvent ev(EventKind kind, std::uint32_t track, double time,
              std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  TraceEvent e{};
  e.kind = kind;
  e.replica = track;
  e.time = time;
  e.a = a;
  e.b = b;
  e.c = c;
  return e;
}

TEST(TierAudit, TieredServingRunAuditsCleanAndMatchesEngine) {
  // The standard tight-pool fixture with a 2-tier cache: the preemption
  // pressure that destroys blocks on a flat cache demotes them here, so
  // the run exercises demote + promote traffic end to end.
  const std::size_t n_rows = 60;
  const table::Table t = obs_test::tiny_table(n_rows);
  const table::FdSet fds;
  serve::OnlineConfig cfg = obs_test::make_config(1, /*preemption=*/true, 0);
  cfg.engine.cache_tiers = 2;
  // The fixture's 96-block pool never pressures the shared cache (defers
  // and preemption absorb it first); 32 forces real demote + promote
  // traffic through the admission memory plan.
  cfg.engine.kv_pool_blocks_override = 32;
  TraceLog log;
  cfg.trace.sink = &log;
  const serve::OnlineRunResult run =
      serve::run_online(t, fds, obs_test::make_arrivals(n_rows), cfg);

  const AuditResult audit = audit_trace(log);
  EXPECT_TRUE(audit.ok()) << audit.first_violation();
  ASSERT_GT(run.engine.cache.demoted_blocks, 0u)
      << "the tight pool no longer demotes — tier traffic unexercised";
  // The events alone re-derive the cache's tier counters exactly.
  EXPECT_EQ(audit.tier_demoted_blocks, run.engine.cache.demoted_blocks);
  EXPECT_EQ(audit.tier_promoted_blocks, run.engine.cache.promoted_blocks);
  EXPECT_EQ(audit.cache_evicted_blocks, run.engine.cache.evicted_blocks);
}

TEST(TierAudit, DemotePromoteLedgerBalances) {
  TraceLog log;
  log.emit(ev(EventKind::TierDemote, 0, 1.0, 4, 1, 0));   // GPU -> host
  log.emit(ev(EventKind::TierDemote, 0, 2.0, 2, 2, 1));   // host -> disk
  log.emit(ev(EventKind::TierPromote, 0, 3.0, 2, 1, 48));  // 2 host + 1 disk
  const AuditResult audit = audit_trace(log);
  EXPECT_TRUE(audit.ok()) << audit.first_violation();
  EXPECT_EQ(audit.tier_demoted_blocks, 4u);  // only GPU->host enters
  EXPECT_EQ(audit.tier_promoted_blocks, 3u);
}

TEST(TierAudit, FlagsPromoteWithoutDemote) {
  TraceLog log;
  log.emit(ev(EventKind::TierPromote, 0, 1.0, 4, 0, 64));
  EXPECT_FALSE(audit_trace(log).ok());
}

TEST(TierAudit, FlagsOverDrawnPromotion) {
  TraceLog log;
  log.emit(ev(EventKind::TierDemote, 0, 1.0, 2, 1, 0));
  log.emit(ev(EventKind::TierPromote, 0, 2.0, 3, 0, 48));  // 3 > 2 demoted
  EXPECT_FALSE(audit_trace(log).ok());
}

TEST(TierAudit, FlagsSkippedTierDemotion) {
  TraceLog log;  // GPU -> disk skips the host tier
  log.emit(ev(EventKind::TierDemote, 0, 1.0, 4, 2, 0));
  EXPECT_FALSE(audit_trace(log).ok());
}

TEST(TierAudit, LowerTierEvictionDrawsFromDemotedResidency) {
  TraceLog log;
  log.emit(ev(EventKind::TierDemote, 0, 1.0, 4, 1, 0));
  log.emit(ev(EventKind::CacheEvict, 0, 2.0, 3, 1, 0));  // 3 die at host
  const AuditResult ok_audit = audit_trace(log);
  EXPECT_TRUE(ok_audit.ok()) << ok_audit.first_violation();
  EXPECT_EQ(ok_audit.tier_evicted_blocks, 3u);

  // One more death than was ever demoted on this track.
  log.emit(ev(EventKind::CacheEvict, 0, 3.0, 2, 1, 0));
  EXPECT_FALSE(audit_trace(log).ok());
}

TEST(TierAudit, SpawnDrainChainTheActiveCount) {
  TraceLog log;
  log.emit(ev(EventKind::ReplicaSpawn, kGlobalTrack, 1.0, 2, 1, 0));
  log.emit(ev(EventKind::ReplicaSpawn, kGlobalTrack, 2.0, 3, 0, 0));
  log.emit(ev(EventKind::ReplicaDrain, kGlobalTrack, 3.0, 2, 0, 0));
  const AuditResult audit = audit_trace(log);
  EXPECT_TRUE(audit.ok()) << audit.first_violation();
  EXPECT_EQ(audit.replica_spawns, 2u);
  EXPECT_EQ(audit.replica_drains, 1u);

  // A spawn that jumps the count breaks the chain.
  log.emit(ev(EventKind::ReplicaSpawn, kGlobalTrack, 4.0, 5, 0, 0));
  EXPECT_FALSE(audit_trace(log).ok());
}

TEST(TierAudit, FlagsDrainToZeroAndOffTrackElasticity) {
  {
    TraceLog log;  // draining the last serving replica is never legal
    log.emit(ev(EventKind::ReplicaDrain, kGlobalTrack, 1.0, 0, 0, 0));
    EXPECT_FALSE(audit_trace(log).ok());
  }
  {
    TraceLog log;  // scaling decisions belong to the driver's track
    log.emit(ev(EventKind::ReplicaSpawn, 1, 1.0, 2, 0, 0));
    EXPECT_FALSE(audit_trace(log).ok());
  }
}

TEST(TierAudit, PrefixMigrateSanity) {
  {
    TraceLog log;
    log.emit(ev(EventKind::PrefixMigrate, kGlobalTrack, 1.0, 8, 0, 1));
    const AuditResult audit = audit_trace(log);
    EXPECT_TRUE(audit.ok()) << audit.first_violation();
    EXPECT_EQ(audit.prefix_migrations, 1u);
    EXPECT_EQ(audit.migrated_blocks, 8u);
  }
  {
    TraceLog log;  // zero-block migration
    log.emit(ev(EventKind::PrefixMigrate, kGlobalTrack, 1.0, 0, 0, 1));
    EXPECT_FALSE(audit_trace(log).ok());
  }
  {
    TraceLog log;  // donor == recipient
    log.emit(ev(EventKind::PrefixMigrate, kGlobalTrack, 1.0, 8, 2, 2));
    EXPECT_FALSE(audit_trace(log).ok());
  }
}

}  // namespace
}  // namespace llmq::obs
