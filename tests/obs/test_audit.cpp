// Trace auditor: replaying a run's event log must independently re-derive
// the engine's exactly-once ledgers — and a corrupted log must be caught.
//
// The auditor sees only events (no engine state); equating its re-derived
// totals with EngineMetrics proves the emission sites tell the whole
// story: every prompt token cached or computed exactly once, every pin
// balanced by an unpin, every decoded token owned by a finished request.

#include <gtest/gtest.h>

#include "obs/audit.hpp"
#include "serving_fixture.hpp"

namespace llmq::obs {
namespace {

void expect_matches_engine(const AuditResult& audit,
                           const serve::OnlineRunResult& r) {
  EXPECT_TRUE(audit.ok()) << audit.first_violation();
  EXPECT_EQ(audit.unfinished, 0u);
  EXPECT_EQ(audit.finished, r.requests.size());

  EXPECT_EQ(audit.prompt_tokens, r.engine.prompt_tokens);
  EXPECT_EQ(audit.cached_prompt_tokens, r.engine.cached_prompt_tokens);
  EXPECT_EQ(audit.computed_prompt_tokens, r.engine.computed_prompt_tokens);
  EXPECT_EQ(audit.output_tokens, r.engine.output_tokens);
  EXPECT_EQ(audit.recompute_tokens, r.engine.recompute_prefill_tokens);
  EXPECT_EQ(audit.preemptions, r.engine.preemptions);

  EXPECT_EQ(audit.cache_lookups, r.engine.cache.lookups);
  EXPECT_EQ(audit.cache_hit_tokens, r.engine.cache.hit_tokens);
  EXPECT_EQ(audit.cache_inserted_blocks, r.engine.cache.inserted_blocks);
  EXPECT_EQ(audit.cache_evicted_blocks, r.engine.cache.evicted_blocks);
  EXPECT_EQ(audit.pin_balance, 0);

  EXPECT_EQ(audit.windows, r.windows);
  for (std::size_t c = 0; c < r.per_class.size(); ++c)
    EXPECT_EQ(audit.per_class_finished[c], r.per_class[c].requests)
        << "class " << c;
}

TEST(TraceAudit, ConfirmsLedgersOnPreemptionRun) {
  const auto run = obs_test::run_traced(1, /*preemption=*/true, /*chunk=*/0);
  ASSERT_GT(run.result.engine.preemptions, 0u);  // resume ledger exercised
  expect_matches_engine(audit_trace(run.log), run.result);
}

TEST(TraceAudit, ConfirmsLedgersOnChunkedPrefillRun) {
  const auto run = obs_test::run_traced(1, /*preemption=*/true, /*chunk=*/64);
  ASSERT_GT(run.result.engine.chunked_prefill_tokens, 0u);
  expect_matches_engine(audit_trace(run.log), run.result);
}

TEST(TraceAudit, ConfirmsLedgersOnReplicatedRun) {
  // Four replicas: per-request ledgers span tracks, route decisions ride
  // the global track, and the merged EngineMetrics sums all sessions.
  const auto run = obs_test::run_traced(4, /*preemption=*/true, /*chunk=*/0);
  const AuditResult audit = audit_trace(run.log);
  expect_matches_engine(audit, run.result);
  // Every enqueued request was dispatched through exactly one route
  // decision, and each matched the replica it was then enqueued on (the
  // auditor checks the pairing; here we check the count).
  EXPECT_EQ(audit.route_decisions, audit.enqueued);
}

TEST(TraceAudit, FlagsCorruptedTrace) {
  const auto run = obs_test::run_traced(1, /*preemption=*/true, /*chunk=*/0);
  ASSERT_TRUE(audit_trace(run.log).ok());

  // Mutating a single event must be caught — the ledgers are exact, not
  // statistical. One mutation per corruption mode, each on a fresh copy.
  {
    TraceLog log = run.log;  // a Finish claiming a different prompt length
    for (TraceEvent& e : log.mutable_events())
      if (e.kind == EventKind::Finish) {
        ++e.b;
        break;
      }
    EXPECT_FALSE(audit_trace(log).ok());
  }
  {
    TraceLog log = run.log;  // a decode step inventing an extra token
    for (TraceEvent& e : log.mutable_events())
      if (e.kind == EventKind::DecodeStep) {
        ++e.a;
        break;
      }
    EXPECT_FALSE(audit_trace(log).ok());
  }
  {
    TraceLog log = run.log;  // a timestamp stepping backwards on its track
    auto& events = log.mutable_events();
    for (std::size_t i = 1; i < events.size(); ++i) {
      bool seen_track = false;
      for (std::size_t j = 0; j < i; ++j)
        if (events[j].replica == events[i].replica &&
            events[j].time > 0.0) {
          seen_track = true;
          break;
        }
      if (seen_track) {
        events[i].time = -1.0;
        break;
      }
    }
    EXPECT_FALSE(audit_trace(log).ok());
  }
}

}  // namespace
}  // namespace llmq::obs
