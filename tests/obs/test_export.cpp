// Trace exporters: the Perfetto JSON must actually be loadable (valid
// JSON, trace_event envelope, well-formed events), and the JSONL export
// must round-trip every event through the JSON parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "obs/export.hpp"
#include "serving_fixture.hpp"
#include "util/json.hpp"

namespace llmq::obs {
namespace {

TEST(TraceExport, PerfettoEnvelopeIsWellFormed) {
  const auto run = obs_test::run_traced(4, /*preemption=*/true, /*chunk=*/64);
  ASSERT_FALSE(run.log.empty());
  ASSERT_GT(run.timeseries.size(), 0u);

  const std::string json = perfetto_trace_json(run.log, &run.timeseries);
  const auto doc = util::json_parse(json);
  ASSERT_TRUE(doc.has_value()) << "Perfetto export is not valid JSON";
  ASSERT_TRUE(doc->is_object());

  const util::JsonValue* unit = doc->find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_TRUE(unit->is_string());

  const util::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());

  std::set<std::string> phases;
  double last_ts = 0.0;
  for (const util::JsonValue& e : events->as_array()) {
    ASSERT_TRUE(e.is_object());
    const util::JsonValue* name = e.find("name");
    const util::JsonValue* ph = e.find("ph");
    const util::JsonValue* pid = e.find("pid");
    const util::JsonValue* tid = e.find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_TRUE(name->is_string());
    ASSERT_TRUE(ph->is_string());
    EXPECT_TRUE(pid->is_number());
    EXPECT_TRUE(tid->is_number());
    phases.insert(ph->as_string());
    if (ph->as_string() != "M") {
      const util::JsonValue* ts = e.find("ts");
      ASSERT_NE(ts, nullptr);
      ASSERT_TRUE(ts->is_number());
      EXPECT_GE(ts->as_number(), 0.0);
      last_ts = std::max(last_ts, ts->as_number());
    }
    if (ph->as_string() == "b" || ph->as_string() == "e" ||
        ph->as_string() == "n") {
      // Async events need (cat, id) to pair up into request spans.
      const util::JsonValue* cat = e.find("cat");
      const util::JsonValue* id = e.find("id");
      ASSERT_NE(cat, nullptr);
      ASSERT_NE(id, nullptr);
      EXPECT_EQ(cat->as_string(), "request");
      EXPECT_TRUE(id->is_number());
    }
  }
  // Process-name metadata, request span begin/end, counter samples, and
  // instants must all be present on this preempting chunked run.
  for (const char* ph : {"M", "b", "e", "n", "i", "C"})
    EXPECT_TRUE(phases.count(ph)) << "missing trace_event phase " << ph;
  EXPECT_GT(last_ts, 0.0) << "virtual timestamps never advanced";
}

TEST(TraceExport, JsonlRoundTripsEveryEvent) {
  const auto run = obs_test::run_traced(1, /*preemption=*/true, /*chunk=*/0);
  const std::string jsonl = trace_to_jsonl(run.log);
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');

  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    const auto doc = util::json_parse(jsonl.substr(pos, end - pos));
    ASSERT_TRUE(doc.has_value()) << "line " << lines << " is not valid JSON";
    ASSERT_TRUE(doc->is_object());
    for (const char* key : {"k", "t", "r", "cls", "id", "a", "b", "c"})
      ASSERT_NE(doc->find(key), nullptr) << "line " << lines << " lacks "
                                         << key;
    EXPECT_TRUE(doc->find("k")->is_string());
    EXPECT_TRUE(doc->find("t")->is_number());
    // The event kind must round-trip to a known name.
    bool known = false;
    for (int k = 0; k <= static_cast<int>(EventKind::WindowPlan); ++k)
      known = known || doc->find("k")->as_string() ==
                           to_string(static_cast<EventKind>(k));
    EXPECT_TRUE(known) << "unknown kind " << doc->find("k")->as_string();
    ++lines;
    pos = end + 1;
  }
  EXPECT_EQ(lines, run.log.size());
}

}  // namespace
}  // namespace llmq::obs
