// Trace determinism and purity.
//
// The serving stack is a pure function of (seed, config); the tracer must
// not break that. Two properties, pinned over the full grid of replicas
// {1, 4} x preemption {off, on} x prefill chunking {0, 64}:
//
//   * determinism — rerunning an identical traced run yields the same
//     events in the same order with the same payloads, down to the
//     serialized JSONL bytes (the canonical byte-level export);
//   * purity — attaching a sink never feeds back into scheduling: the
//     traced run's results are identical to the untraced run's.

#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "serving_fixture.hpp"

namespace llmq::obs {
namespace {

struct TraceCase {
  std::size_t n_replicas;
  bool preemption;
  std::size_t chunk_tokens;
};

class TraceDeterminism : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceDeterminism, Reruns_AreBitIdentical_And_TracingIsPure) {
  const TraceCase tc = GetParam();

  const obs_test::TracedRun a =
      obs_test::run_traced(tc.n_replicas, tc.preemption, tc.chunk_tokens);
  const obs_test::TracedRun b =
      obs_test::run_traced(tc.n_replicas, tc.preemption, tc.chunk_tokens);

  // The grid arm must exercise what its name claims, or it pins nothing.
  ASSERT_FALSE(a.log.empty());
  if (tc.preemption) {
    EXPECT_GT(a.result.engine.preemptions, 0u);
  }
  if (tc.chunk_tokens > 0) {
    EXPECT_GT(a.result.engine.chunked_prefill_tokens, 0u);
  }

  // Byte-identical serialized traces (JSONL is the canonical byte form;
  // the Perfetto export is derived from the same events, so it follows).
  ASSERT_EQ(a.log.size(), b.log.size());
  const std::string jsonl_a = trace_to_jsonl(a.log);
  const std::string jsonl_b = trace_to_jsonl(b.log);
  EXPECT_TRUE(jsonl_a == jsonl_b) << "serialized traces diverged";
  EXPECT_TRUE(perfetto_trace_json(a.log, &a.timeseries) ==
              perfetto_trace_json(b.log, &b.timeseries));

  // Sampled gauge rows replay identically too.
  ASSERT_EQ(a.timeseries.size(), b.timeseries.size());
  EXPECT_EQ(a.timeseries.time, b.timeseries.time);
  EXPECT_EQ(a.timeseries.kv_resident_blocks, b.timeseries.kv_resident_blocks);
  EXPECT_EQ(a.timeseries.rolling_phr, b.timeseries.rolling_phr);

  // Purity: the same run with no sink attached produces identical
  // results — emission sites are observation-only.
  const table::Table t = obs_test::tiny_table(60);
  const table::FdSet fds;
  const serve::OnlineConfig cfg =
      obs_test::make_config(tc.n_replicas, tc.preemption, tc.chunk_tokens);
  const serve::OnlineRunResult untraced =
      serve::run_online(t, fds, obs_test::make_arrivals(60), cfg);
  ASSERT_EQ(a.result.requests.size(), untraced.requests.size());
  for (std::size_t i = 0; i < untraced.requests.size(); ++i) {
    EXPECT_EQ(a.result.requests[i].id, untraced.requests[i].id);
    EXPECT_EQ(a.result.requests[i].finish_time,
              untraced.requests[i].finish_time);
    EXPECT_EQ(a.result.requests[i].cached_tokens,
              untraced.requests[i].cached_tokens);
  }
  EXPECT_EQ(a.result.engine.prompt_tokens, untraced.engine.prompt_tokens);
  EXPECT_EQ(a.result.engine.cached_prompt_tokens,
            untraced.engine.cached_prompt_tokens);
  EXPECT_EQ(a.result.engine.output_tokens, untraced.engine.output_tokens);
  EXPECT_EQ(a.result.engine.preemptions, untraced.engine.preemptions);
  EXPECT_EQ(a.result.latency.mean_ttft, untraced.latency.mean_ttft);
  EXPECT_EQ(a.result.latency.makespan, untraced.latency.makespan);
  EXPECT_EQ(a.result.windows, untraced.windows);
}

std::string case_name(const ::testing::TestParamInfo<TraceCase>& info) {
  return "replicas" + std::to_string(info.param.n_replicas) +
         (info.param.preemption ? "_preempt" : "_nopreempt") + "_chunk" +
         std::to_string(info.param.chunk_tokens);
}

INSTANTIATE_TEST_SUITE_P(
    ReplicasXPreemptionXChunking, TraceDeterminism,
    ::testing::Values(TraceCase{1, false, 0}, TraceCase{1, false, 64},
                      TraceCase{1, true, 0}, TraceCase{1, true, 64},
                      TraceCase{4, false, 0}, TraceCase{4, false, 64},
                      TraceCase{4, true, 0}, TraceCase{4, true, 64}),
    case_name);

}  // namespace
}  // namespace llmq::obs
