#include "tokenizer/tokenizer.hpp"

#include <algorithm>
#include <cctype>

#include "util/rng.hpp"
#include "util/token_ops.hpp"

namespace llmq::tokenizer {

namespace {

enum class CharClass { Alnum, Space, Punct };

CharClass classify(unsigned char c) {
  if (std::isalnum(c)) return CharClass::Alnum;
  if (std::isspace(c)) return CharClass::Space;
  return CharClass::Punct;
}

TokenId piece_id(std::string_view piece) {
  return static_cast<TokenId>(util::hash64(piece.data(), piece.size()));
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions opts) : opts_(opts) {}

template <typename Sink>
void Tokenizer::tokenize_pieces(std::string_view text, Sink&& sink) const {
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool pending_space = false;
  while (i < n) {
    const CharClass cls = classify(static_cast<unsigned char>(text[i]));
    if (cls == CharClass::Space) {
      // Collapse runs of whitespace into a space-prefix on the next token
      // (or a standalone token when space_prefix is off).
      std::size_t j = i;
      while (j < n && classify(static_cast<unsigned char>(text[j])) ==
                          CharClass::Space)
        ++j;
      if (opts_.space_prefix) {
        pending_space = true;
      } else {
        sink(text.substr(i, 1));
      }
      i = j;
      continue;
    }
    if (cls == CharClass::Punct) {
      // Each punctuation char is its own token (absorbing a pending space).
      if (pending_space) {
        char buf[2] = {' ', text[i]};
        sink(std::string_view(buf, 2));
        pending_space = false;
      } else {
        sink(text.substr(i, 1));
      }
      ++i;
      continue;
    }
    // Alphanumeric run.
    std::size_t j = i;
    while (j < n &&
           classify(static_cast<unsigned char>(text[j])) == CharClass::Alnum)
      ++j;
    std::size_t pos = i;
    bool first_piece = true;
    while (pos < j) {
      const std::size_t take = std::min(opts_.max_piece_chars, j - pos);
      if (first_piece && pending_space) {
        std::string with_space;
        with_space.reserve(take + 1);
        with_space += ' ';
        with_space.append(text.substr(pos, take));
        sink(std::string_view(with_space));
        pending_space = false;
      } else {
        sink(text.substr(pos, take));
      }
      first_piece = false;
      pos += take;
    }
    i = j;
  }
}

TokenSeq Tokenizer::encode(std::string_view text) const {
  TokenSeq out;
  out.reserve(text.size() / 4 + 4);
  tokenize_pieces(text, [&](std::string_view piece) {
    out.push_back(piece_id(piece));
  });
  return out;
}

std::size_t Tokenizer::count(std::string_view text) const {
  std::size_t n = 0;
  tokenize_pieces(text, [&](std::string_view) { ++n; });
  return n;
}

void Tokenizer::encode_append(std::string_view text, TokenSeq& out) const {
  tokenize_pieces(text, [&](std::string_view piece) {
    out.push_back(piece_id(piece));
  });
}

const Tokenizer& global_tokenizer() {
  static const Tokenizer tok;
  return tok;
}

std::size_t common_prefix_len(const TokenSeq& a, const TokenSeq& b) {
  const std::size_t n = std::min(a.size(), b.size());
  return util::token_ops::lcp(a.data(), b.data(), n);
}

}  // namespace llmq::tokenizer
