#pragma once
// Deterministic tokenizer substrate.
//
// The paper's cache operates on LLM token sequences produced by the Llama
// tokenizer. For the simulator what matters is (a) identical strings encode
// to identical token streams — the property prefix caching relies on — and
// (b) a realistic tokens-per-character rate so PHC measured in tokens and
// the serving cost model are sized like the paper's Table 1. We therefore
// implement a greedy word/punctuation splitter with BPE-style subword
// chunking for long words and a stable hashed vocabulary (no vocab file).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llmq::tokenizer {

using TokenId = std::uint32_t;

/// Sequence of token ids; equality of two streams implies the underlying
/// text segments were byte-identical (up to 32-bit hash collisions, which
/// are irrelevant at our vocabulary sizes).
using TokenSeq = std::vector<TokenId>;

struct TokenizerOptions {
  /// Longest subword chunk; words longer than this split into pieces,
  /// mimicking BPE behaviour on rare words.
  std::size_t max_piece_chars = 6;
  /// Words following a space carry the space in the token (GPT/Llama-style
  /// "Ġword" pieces), so token boundaries never straddle two fields in a
  /// surprising way.
  bool space_prefix = true;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions opts = {});

  /// Encode text to token ids. Deterministic; no state.
  TokenSeq encode(std::string_view text) const;

  /// Number of tokens `encode(text)` would produce, without materializing.
  std::size_t count(std::string_view text) const;

  /// Append the encoding of `text` to `out` (avoids reallocation in the
  /// prompt builder's hot path).
  void encode_append(std::string_view text, TokenSeq& out) const;

  const TokenizerOptions& options() const { return opts_; }

 private:
  template <typename Sink>
  void tokenize_pieces(std::string_view text, Sink&& sink) const;

  TokenizerOptions opts_;
};

/// Process-wide default tokenizer (options identical everywhere so that
/// cache keys agree between the planner and the serving engine).
const Tokenizer& global_tokenizer();

/// Length of the longest common prefix of two token sequences.
std::size_t common_prefix_len(const TokenSeq& a, const TokenSeq& b);

}  // namespace llmq::tokenizer
