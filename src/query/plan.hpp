#pragma once
// Query execution configuration and results.
//
// A QueryRun pairs one benchmark query with one "method arm" from the
// paper's evaluation: {No Cache, Cache (Original), Cache (GGR)} plus the
// ablation policies. The executor (executor.hpp) turns that into planner
// + operator + serving-engine calls and collects the metrics every bench
// reports.

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "data/benchmark_suite.hpp"
#include "data/generators.hpp"
#include "llm/engine.hpp"
#include "llm/task_model.hpp"

namespace llmq::query {

/// The paper's three evaluation arms (plus room for ablations via
/// `planner` overrides).
enum class Method {
  NoCache,         // caching disabled, original ordering
  CacheOriginal,   // prefix cache on, original ordering
  CacheGgr,        // prefix cache on, GGR reordering
};

std::string to_string(Method m);

struct ExecConfig {
  llm::ModelSpec model;
  llm::GpuSpec gpu;
  llm::EngineConfig engine;
  llm::ModelProfile model_profile;
  core::PlanRequest planner;   // policy + GGR/OPHR options
  bool cache_enabled = true;

  /// Paper-default configuration for a method arm (Llama3-8B on one L4,
  /// GGR with depth limits 4/2 as in §6.5).
  static ExecConfig standard(Method m);
  static ExecConfig standard(Method m, llm::ModelSpec model, llm::GpuSpec gpu);

  /// Shrink the KV pool to `fraction` of the GPU-derived capacity (floored
  /// so a single request still fits). Scaled-down experiments must scale
  /// the cache with the data: the paper's regime is a table orders of
  /// magnitude larger than KV memory, and with an *unscaled* cache a small
  /// sample fits entirely, hiding the reordering effect (reuse then works
  /// at any distance, not just adjacency).
  void scale_kv_pool(double fraction);
};

struct StageMetrics {
  llm::EngineMetrics engine;
  double solver_seconds = 0.0;
  double token_phr = 0.0;      // prompt-level cache hit rate for the stage
  std::size_t rows = 0;
  /// Rows answered by the serving layer's exact-duplicate memo instead of
  /// an engine (always 0 on the offline private-engine path; see
  /// serve/query_client.hpp). Memo-served rows are excluded from `engine`
  /// token counters, so token_phr keeps meaning KV-cache hits.
  std::size_t dedup_hits = 0;
};

struct QueryRunResult {
  std::string query_id;
  Method method = Method::CacheGgr;
  double total_seconds = 0.0;      // end-to-end simulated job time
  double solver_seconds = 0.0;     // reordering overhead (real wall clock)
  std::vector<StageMetrics> stages;

  /// Stage-1 answers per original row ("" where not applicable).
  std::vector<std::string> answers;
  /// Rows surviving the filter (filter / multi-LLM stage 1).
  std::size_t rows_selected = 0;
  /// Aggregate value (aggregation queries).
  double aggregate = 0.0;

  double overall_phr() const;
};

}  // namespace llmq::query
