#pragma once
// Prompt construction (paper §5).
//
// Each request = system prompt + user query + the row rendered as a JSON
// object whose *key order follows the planner's per-row field order*. The
// instruction prefix is identical across a query's rows (and is itself a
// cacheable shared prefix); everything the reordering algorithms optimize
// lives in the JSON section.

#include <cstddef>
#include <span>
#include <string>

#include "core/ordering.hpp"
#include "table/table.hpp"
#include "tokenizer/tokenizer.hpp"

namespace llmq::query {

struct PromptTemplate {
  std::string system_prompt;
  std::string user_prompt;
};

/// The instruction prefix shared by all rows of a query (Appendix C
/// layout): system prompt, "Answer the below query:" + user prompt, then
/// the "Given the following data:" header.
std::string render_instruction_prefix(const PromptTemplate& tmpl);

/// JSON rendering of row `row` of `t` with keys in `field_order` (indices
/// into t's schema).
std::string render_row_json(const table::Table& t, std::size_t row,
                            std::span<const std::size_t> field_order);

/// Full prompt text for one row.
std::string render_prompt(const PromptTemplate& tmpl, const table::Table& t,
                          std::size_t row,
                          std::span<const std::size_t> field_order);

/// Tokenized prompt; uses a precomputed instruction-prefix encoding so per
/// row work is proportional to the row's own content.
class PromptEncoder {
 public:
  PromptEncoder(PromptTemplate tmpl);

  tokenizer::TokenSeq encode(const table::Table& t, std::size_t row,
                             std::span<const std::size_t> field_order) const;

  std::size_t instruction_tokens() const { return prefix_tokens_.size(); }

 private:
  PromptTemplate tmpl_;
  tokenizer::TokenSeq prefix_tokens_;
};

}  // namespace llmq::query
