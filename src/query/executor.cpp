#include "query/executor.hpp"

#include <algorithm>
#include <optional>

#include "core/phc.hpp"
#include "table/value.hpp"

namespace llmq::query {

namespace {

/// Project `t` to the stage's field expressions ({T.*} when empty) and
/// carry the truth labels along.
table::Table stage_table(const table::Table& t,
                         const std::vector<std::string>& fields) {
  if (fields.empty()) return t;
  return t.project(fields);
}

}  // namespace

StagePrep prepare_stage(const table::Table& t, const table::FdSet& fds,
                        const data::QuerySpec& spec,
                        const data::StageSpec& stage,
                        const std::vector<std::string>& truth,
                        const std::string& key_field,
                        const ExecConfig& config) {
  StagePrep prep;
  prep.table = stage_table(t, stage.fields);

  // 1. Plan the request ordering over exactly the fields the operator
  //    touches (§3.1: the optimizer may permute fields within the LLM's
  //    field-expression list).
  prep.plan = core::plan_ordering(prep.table, fds, config.planner);

  // 2. Materialize requests + task answers.
  LlmOperatorSpec op;
  op.tmpl.system_prompt = spec.system_prompt;
  op.tmpl.user_prompt = stage.user_prompt;
  op.avg_output_tokens = stage.avg_output_tokens;
  op.answers = stage.answers;
  op.key_field = key_field;
  op.position_sensitivity = spec.position_sensitivity;
  const llm::TaskModel task_model(config.model_profile);
  prep.ops =
      build_requests(prep.table, prep.plan.ordering, op, task_model, truth);
  return prep;
}

StageRun run_stage(const table::Table& t, const table::FdSet& fds,
                   const data::QuerySpec& spec, const data::StageSpec& stage,
                   const std::vector<std::string>& truth,
                   const std::string& key_field, const ExecConfig& config,
                   cache::PrefixCache* session_cache) {
  StagePrep prep =
      prepare_stage(t, fds, spec, stage, truth, key_field, config);

  StageRun out;
  out.metrics.solver_seconds = prep.plan.solver_seconds;
  out.metrics.rows = prep.table.num_rows();

  // 3. Serve on a private engine (the offline path; the served path in
  //    serve/query_client.hpp executes the same prep on a shared fleet).
  llm::CostModel cost(config.model, config.gpu);
  llm::EngineConfig ec = config.engine;
  ec.cache_enabled = config.cache_enabled;
  llm::ServingEngine engine(cost, ec);
  llm::BatchRunResult run = session_cache
                                ? engine.run(prep.ops.requests, *session_cache)
                                : engine.run(prep.ops.requests);

  out.metrics.engine = run.metrics;
  out.metrics.token_phr = run.metrics.prompt_cache_hit_rate();
  out.answers = std::move(prep.ops.answers);
  return out;
}

std::vector<std::size_t> stage1_epilogue(
    QueryRunResult& result, const data::QuerySpec& spec,
    const data::Dataset& dataset, const std::vector<std::string>& answers) {
  switch (spec.type) {
    case data::QueryType::Filter:
    case data::QueryType::Rag: {
      // Relational epilogue: keep rows whose answer equals the first
      // (positive) answer choice.
      if (!spec.stage1.answers.empty()) {
        const std::string& keep = spec.stage1.answers.front();
        result.rows_selected = static_cast<std::size_t>(
            std::count(answers.begin(), answers.end(), keep));
      } else {
        result.rows_selected = dataset.table.num_rows();
      }
      break;
    }
    case data::QueryType::Projection:
      result.rows_selected = dataset.table.num_rows();
      break;
    case data::QueryType::Aggregation: {
      // AVG over numeric LLM outputs.
      double sum = 0.0;
      std::size_t count = 0;
      for (const auto& a : answers) {
        if (auto v = table::parse_double(a)) {
          sum += *v;
          ++count;
        }
      }
      result.aggregate = count ? sum / static_cast<double>(count) : 0.0;
      result.rows_selected = count;
      break;
    }
    case data::QueryType::MultiLlm: {
      // Stage 1 is a sentiment filter; the paper's example keeps NEGATIVE
      // reviews (Appendix A), i.e. the *last* answer choice.
      const std::string keep = spec.stage1.answers.empty()
                                   ? std::string()
                                   : spec.stage1.answers.back();
      std::vector<std::size_t> selected;
      for (std::size_t r = 0; r < answers.size(); ++r)
        if (answers[r] == keep) selected.push_back(r);
      result.rows_selected = selected.size();
      return selected;
    }
  }
  return {};
}

Stage2Input make_stage2_input(const data::Dataset& dataset,
                              const data::StageSpec& stage2,
                              const std::vector<std::size_t>& selected) {
  Stage2Input out;
  out.table = dataset.table.take_rows(selected);
  const auto& full_truth = dataset.truth_for(stage2.truth_key);
  out.truth.reserve(selected.size());
  for (std::size_t r : selected)
    out.truth.push_back(r < full_truth.size() ? full_truth[r]
                                              : std::string());
  return out;
}

QueryRunResult run_query(const data::Dataset& dataset,
                         const data::QuerySpec& spec,
                         const ExecConfig& config) {
  QueryRunResult result;
  result.query_id = spec.id;

  // ---- Stage 1 (every query type has one). ----
  // Multi-LLM queries talk to one long-lived server: both invocations
  // share the prompt cache (its state persists across the stages).
  std::optional<cache::PrefixCache> session;
  if (spec.type == data::QueryType::MultiLlm) {
    llm::EngineConfig ec = config.engine;
    ec.cache_enabled = config.cache_enabled;
    session.emplace(llm::ServingEngine(
                        llm::CostModel(config.model, config.gpu), ec)
                        .make_session_cache());
  }
  StageRun s1 = run_stage(dataset.table, dataset.fds, spec, spec.stage1,
                          dataset.truth_for(spec.stage1.truth_key),
                          dataset.key_field, config,
                          session ? &*session : nullptr);
  result.total_seconds += s1.metrics.engine.total_seconds;
  result.solver_seconds += s1.metrics.solver_seconds;
  result.stages.push_back(s1.metrics);
  result.answers = s1.answers;

  const std::vector<std::size_t> selected =
      stage1_epilogue(result, spec, dataset, s1.answers);

  if (!selected.empty() && spec.stage2) {
    Stage2Input in2 = make_stage2_input(dataset, *spec.stage2, selected);
    StageRun s2 = run_stage(in2.table, dataset.fds, spec, *spec.stage2,
                            in2.truth, dataset.key_field, config,
                            session ? &*session : nullptr);
    result.total_seconds += s2.metrics.engine.total_seconds;
    result.solver_seconds += s2.metrics.solver_seconds;
    result.stages.push_back(s2.metrics);
  }
  return result;
}

}  // namespace llmq::query
