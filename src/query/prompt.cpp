#include "query/prompt.hpp"

#include "util/json.hpp"

namespace llmq::query {

std::string render_instruction_prefix(const PromptTemplate& tmpl) {
  std::string out;
  out.reserve(tmpl.system_prompt.size() + tmpl.user_prompt.size() + 64);
  out += tmpl.system_prompt;
  out += "\n\nAnswer the below query:\n";
  out += tmpl.user_prompt;
  out += "\n\nGiven the following data:\n";
  return out;
}

std::string render_row_json(const table::Table& t, std::size_t row,
                            std::span<const std::size_t> field_order) {
  util::JsonWriter w;
  w.begin_object();
  for (std::size_t f : field_order)
    w.kv(t.schema().field(f).name, t.cell(row, f));
  w.end_object();
  return w.take();
}

std::string render_prompt(const PromptTemplate& tmpl, const table::Table& t,
                          std::size_t row,
                          std::span<const std::size_t> field_order) {
  return render_instruction_prefix(tmpl) + render_row_json(t, row, field_order);
}

PromptEncoder::PromptEncoder(PromptTemplate tmpl) : tmpl_(std::move(tmpl)) {
  prefix_tokens_ =
      tokenizer::global_tokenizer().encode(render_instruction_prefix(tmpl_));
}

tokenizer::TokenSeq PromptEncoder::encode(
    const table::Table& t, std::size_t row,
    std::span<const std::size_t> field_order) const {
  tokenizer::TokenSeq out = prefix_tokens_;
  tokenizer::global_tokenizer().encode_append(
      render_row_json(t, row, field_order), out);
  return out;
}

}  // namespace llmq::query
