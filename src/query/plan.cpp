#include "query/plan.hpp"

namespace llmq::query {

std::string to_string(Method m) {
  switch (m) {
    case Method::NoCache: return "No Cache";
    case Method::CacheOriginal: return "Cache (Original)";
    case Method::CacheGgr: return "Cache (GGR)";
  }
  return "?";
}

ExecConfig ExecConfig::standard(Method m) {
  return standard(m, llm::llama3_8b(), llm::l4());
}

ExecConfig ExecConfig::standard(Method m, llm::ModelSpec model,
                                llm::GpuSpec gpu) {
  ExecConfig c;
  c.model = std::move(model);
  c.gpu = std::move(gpu);
  c.model_profile = llm::profile_llama3_8b();
  c.engine.max_batch_size = 32;
  c.engine.block_size = 16;

  // Paper §6.5 solver configuration.
  c.planner.ggr.max_row_depth = 4;
  c.planner.ggr.max_col_depth = 2;
  c.planner.ggr.measure = core::LengthMeasure::Tokens;

  switch (m) {
    case Method::NoCache:
      c.cache_enabled = false;
      c.planner.policy = core::Policy::Original;
      break;
    case Method::CacheOriginal:
      c.cache_enabled = true;
      c.planner.policy = core::Policy::Original;
      break;
    case Method::CacheGgr:
      c.cache_enabled = true;
      c.planner.policy = core::Policy::Ggr;
      break;
  }
  c.engine.cache_enabled = c.cache_enabled;
  return c;
}

void ExecConfig::scale_kv_pool(double fraction) {
  engine.kv_pool_blocks_override =
      llm::scaled_kv_pool_blocks(model, gpu, engine.block_size, fraction);
}

double QueryRunResult::overall_phr() const {
  std::uint64_t hit = 0, total = 0;
  for (const auto& s : stages) {
    hit += s.engine.cached_prompt_tokens;
    total += s.engine.prompt_tokens;
  }
  return total ? static_cast<double>(hit) / static_cast<double>(total) : 0.0;
}

}  // namespace llmq::query
