#include "query/metrics.hpp"

#include "query/executor.hpp"
#include "util/strings.hpp"

namespace llmq::query {

double MethodComparison::speedup_vs_no_cache() const {
  return cache_ggr.total_seconds > 0.0
             ? no_cache.total_seconds / cache_ggr.total_seconds
             : 0.0;
}

double MethodComparison::speedup_vs_original() const {
  return cache_ggr.total_seconds > 0.0
             ? cache_original.total_seconds / cache_ggr.total_seconds
             : 0.0;
}

double MethodComparison::original_vs_no_cache() const {
  return cache_original.total_seconds > 0.0
             ? no_cache.total_seconds / cache_original.total_seconds
             : 0.0;
}

MethodComparison compare_methods(const data::Dataset& dataset,
                                 const data::QuerySpec& spec,
                                 const llm::ModelSpec& model,
                                 const llm::GpuSpec& gpu,
                                 double kv_fraction) {
  MethodComparison out;
  out.label = dataset.name;
  for (Method m : {Method::NoCache, Method::CacheOriginal, Method::CacheGgr}) {
    ExecConfig cfg = ExecConfig::standard(m, model, gpu);
    if (kv_fraction < 1.0) cfg.scale_kv_pool(kv_fraction);
    QueryRunResult r = run_query(dataset, spec, cfg);
    if (m == Method::NoCache) out.no_cache = std::move(r);
    else if (m == Method::CacheOriginal) out.cache_original = std::move(r);
    else out.cache_ggr = std::move(r);
  }
  return out;
}

std::string format_speedup(double s) { return util::fmt(s, 1) + "x"; }

}  // namespace llmq::query
