#pragma once
// End-to-end query execution: planner -> LLM operator -> serving engine.

#include "cache/prefix_cache.hpp"
#include "query/plan.hpp"

namespace llmq::query {

/// Run one benchmark query over its dataset under the given configuration.
/// Covers all five query types:
///  * Filter / Aggregation / RAG: one LLM invocation per row over the
///    operator's fields, then a relational epilogue (predicate / AVG).
///  * Projection: one invocation per row, free-form output.
///  * Multi-LLM: stage 1 filters (e.g. NEGATIVE sentiment), stage 2 runs
///    the projection over surviving rows; both stages are independently
///    replanned, matching the paper's setup where stage 1 sees mostly
///    distinct review text and gains little from reordering.
QueryRunResult run_query(const data::Dataset& dataset,
                         const data::QuerySpec& spec, const ExecConfig& config);

/// Internal building block (exposed for tests and custom pipelines): run
/// one LLM stage over `t` and return the stage metrics + answers.
struct StageRun {
  StageMetrics metrics;
  std::vector<std::string> answers;  // per original row of `t`
};
/// `session_cache` (optional) persists KV state across stages, like a
/// long-lived serving endpoint handling both invocations of a multi-LLM
/// query; pass nullptr for a cold cache per stage.
StageRun run_stage(const table::Table& t, const table::FdSet& fds,
                   const data::QuerySpec& spec, const data::StageSpec& stage,
                   const std::vector<std::string>& truth,
                   const std::string& key_field, const ExecConfig& config,
                   cache::PrefixCache* session_cache = nullptr);

}  // namespace llmq::query
