#pragma once
// End-to-end query execution: planner -> LLM operator -> serving engine.
//
// Stage execution is split into three reusable pieces so the offline path
// (private engine per stage, below) and the served path
// (serve/query_client.hpp: submission into a shared replica fleet) share
// everything except the execution substrate:
//
//   1. prepare_stage()   — plan the ordering, materialize requests and
//                          per-row answers (pure of any engine);
//   2. execution         — run_stage() feeds a private ServingEngine; the
//                          served path submits the same requests as
//                          timestamped invocations and collects
//                          completions keyed by row id;
//   3. stage1_epilogue() — the relational epilogue per query type, plus
//                          make_stage2_input() for multi-LLM stage 2.

#include "cache/prefix_cache.hpp"
#include "query/llm_operator.hpp"
#include "query/plan.hpp"

namespace llmq::query {

/// Run one benchmark query over its dataset under the given configuration.
/// Covers all five query types:
///  * Filter / Aggregation / RAG: one LLM invocation per row over the
///    operator's fields, then a relational epilogue (predicate / AVG).
///  * Projection: one invocation per row, free-form output.
///  * Multi-LLM: stage 1 filters (e.g. NEGATIVE sentiment), stage 2 runs
///    the projection over surviving rows; both stages are independently
///    replanned, matching the paper's setup where stage 1 sees mostly
///    distinct review text and gains little from reordering.
QueryRunResult run_query(const data::Dataset& dataset,
                         const data::QuerySpec& spec, const ExecConfig& config);

/// Internal building block (exposed for tests and custom pipelines): run
/// one LLM stage over `t` and return the stage metrics + answers.
struct StageRun {
  StageMetrics metrics;
  std::vector<std::string> answers;  // per original row of `t`
};
/// `session_cache` (optional) persists KV state across stages, like a
/// long-lived serving endpoint handling both invocations of a multi-LLM
/// query; pass nullptr for a cold cache per stage.
StageRun run_stage(const table::Table& t, const table::FdSet& fds,
                   const data::QuerySpec& spec, const data::StageSpec& stage,
                   const std::vector<std::string>& truth,
                   const std::string& key_field, const ExecConfig& config,
                   cache::PrefixCache* session_cache = nullptr);

/// Everything about a stage up to (but excluding) execution: the stage
/// projection, the planner's ordering, and the materialized requests +
/// per-row answers. Only `config.planner` and `config.model_profile` are
/// consulted — the engine half of the config belongs to whoever executes.
struct StagePrep {
  table::Table table;  // stage projection of the input table
  core::Plan plan;     // planner output over the stage table
  OperatorOutput ops;  // requests in schedule order; answers per row
};
StagePrep prepare_stage(const table::Table& t, const table::FdSet& fds,
                        const data::QuerySpec& spec,
                        const data::StageSpec& stage,
                        const std::vector<std::string>& truth,
                        const std::string& key_field,
                        const ExecConfig& config);

/// Stage-1 relational epilogue for `spec.type` over the per-row answers:
/// fills rows_selected / aggregate on `result` and returns the row
/// indices a multi-LLM stage 2 must run over (empty for every other query
/// type, and when no row survives the stage-1 filter).
std::vector<std::size_t> stage1_epilogue(
    QueryRunResult& result, const data::QuerySpec& spec,
    const data::Dataset& dataset, const std::vector<std::string>& answers);

/// Stage-2 inputs for a multi-LLM query: the filtered table and the truth
/// labels sliced to the surviving rows.
struct Stage2Input {
  table::Table table;
  std::vector<std::string> truth;
};
Stage2Input make_stage2_input(const data::Dataset& dataset,
                              const data::StageSpec& stage2,
                              const std::vector<std::size_t>& selected);

}  // namespace llmq::query
