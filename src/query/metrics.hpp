#pragma once
// Benchmark reporting helpers: method comparisons and speedup formatting
// shared by the bench binaries.

#include <string>
#include <vector>

#include "query/plan.hpp"

namespace llmq::query {

/// One dataset/query evaluated under the three paper arms.
struct MethodComparison {
  std::string label;       // e.g. "Movies"
  QueryRunResult no_cache;
  QueryRunResult cache_original;
  QueryRunResult cache_ggr;

  double speedup_vs_no_cache() const;       // GGR vs No Cache
  double speedup_vs_original() const;       // GGR vs Cache (Original)
  double original_vs_no_cache() const;      // Cache (Original) vs No Cache
};

/// Run `spec` under all three arms with the standard configuration for the
/// given model/GPU. `kv_fraction` scales the KV pool for scaled-down
/// datasets (pass n_rows / paper_rows; 1.0 = full GPU-derived pool).
MethodComparison compare_methods(const data::Dataset& dataset,
                                 const data::QuerySpec& spec,
                                 const llm::ModelSpec& model,
                                 const llm::GpuSpec& gpu,
                                 double kv_fraction = 1.0);

/// "3.4x" style formatting.
std::string format_speedup(double s);

}  // namespace llmq::query
