#include "query/llm_operator.hpp"

namespace llmq::query {

double key_field_fraction(const table::Schema& schema,
                          std::span<const std::size_t> field_order,
                          const std::string& key_field) {
  if (key_field.empty() || field_order.size() < 2) return 0.5;
  const auto idx = schema.index_of(key_field);
  if (!idx) return 0.5;
  for (std::size_t pos = 0; pos < field_order.size(); ++pos) {
    if (field_order[pos] == *idx)
      return static_cast<double>(pos) /
             static_cast<double>(field_order.size() - 1);
  }
  return 0.5;
}

OperatorOutput build_requests(const table::Table& t,
                              const core::Ordering& ordering,
                              const LlmOperatorSpec& spec,
                              const llm::TaskModel& model,
                              const std::vector<std::string>& truth) {
  OperatorOutput out;
  out.requests.reserve(t.num_rows());
  out.answers.assign(t.num_rows(), std::string());

  const PromptEncoder encoder(spec.tmpl);
  const auto& tok = tokenizer::global_tokenizer();

  for (std::size_t pos = 0; pos < ordering.num_rows(); ++pos) {
    const std::size_t row = ordering.row_at(pos);
    const auto& fields = ordering.fields_at(pos);

    llm::Request req;
    req.id = pos;
    req.row_tag = row;
    req.prompt = encoder.encode(t, row, fields);

    // Row identity for the deterministic channels: the key field's content
    // when present, else the whole row in *schema* order — deliberately
    // independent of the planner's ordering so output lengths (and thus
    // decode work) are identical across methods and timing comparisons
    // stay fair.
    std::string row_key;
    if (!spec.key_field.empty() && t.schema().has(spec.key_field)) {
      row_key = t.cell(row, t.schema().require(spec.key_field));
    } else {
      for (std::size_t c = 0; c < t.num_cols(); ++c) {
        row_key += t.cell(row, c);
        row_key += '\x1f';
      }
    }

    if (!spec.answers.empty() && row < truth.size() && !truth[row].empty()) {
      const double frac =
          key_field_fraction(t.schema(), fields, spec.key_field);
      out.answers[row] = model.answer(row_key, truth[row], spec.answers, frac,
                                      spec.position_sensitivity);
      req.output_tokens = std::max<std::size_t>(
          1, tok.count(out.answers[row]));
    } else {
      // Free-form output (projection/summarization): deterministic text
      // whose token count is what the engine decodes.
      out.answers[row] = model.generate_text(row_key, spec.avg_output_tokens);
      req.output_tokens =
          std::max<std::size_t>(1, tok.count(out.answers[row]));
    }
    out.requests.push_back(std::move(req));
  }
  return out;
}

}  // namespace llmq::query
