#pragma once
// The LLM operator (paper §3.1, §5).
//
// Takes a prompt template, a set of field expressions over a table, and a
// planner-produced Ordering; materializes the request stream the serving
// engine executes, plus (via the task model) the per-row answers and
// output lengths. The operator is where "relational row" becomes
// "LLM request".

#include <optional>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "llm/request.hpp"
#include "llm/task_model.hpp"
#include "query/prompt.hpp"
#include "table/table.hpp"

namespace llmq::query {

struct LlmOperatorSpec {
  PromptTemplate tmpl;
  double avg_output_tokens = 2.0;
  /// Categorical answers (filter/aggregation); empty = free-form output.
  std::vector<std::string> answers;
  /// Name of the answer-bearing field (position-sensitivity); empty = none.
  std::string key_field;
  /// Task position sensitivity (see data::QuerySpec).
  double position_sensitivity = 0.0;
};

struct OperatorOutput {
  /// Requests in schedule (ordering) order; row_tag = original row index.
  std::vector<llm::Request> requests;
  /// Task answer per *original* row index ("" for free-form tasks without
  /// ground truth).
  std::vector<std::string> answers;
};

/// Build the request stream for `ordering` over `t`.
/// `truth` (aligned with t's rows) supplies ground-truth labels for
/// categorical tasks; free-form tasks may pass an empty vector.
OperatorOutput build_requests(const table::Table& t,
                              const core::Ordering& ordering,
                              const LlmOperatorSpec& spec,
                              const llm::TaskModel& model,
                              const std::vector<std::string>& truth);

/// Fraction in [0,1] locating `key_field` within `field_order` (0 = first).
/// Returns 0.5 when the field is absent or the row has a single field.
double key_field_fraction(const table::Schema& schema,
                          std::span<const std::size_t> field_order,
                          const std::string& key_field);

}  // namespace llmq::query
