#include "util/table_printer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace llmq::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'x' && c != ',' && c != 'e' && c != '$')
      return false;
  }
  return true;
}
}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      const std::size_t pad = widths[c] - cell.size();
      if (looks_numeric(cell)) {
        out.append(pad, ' ');
        out += cell;
      } else {
        out += cell;
        out.append(pad, ' ');
      }
      out += (c + 1 == headers_.size()) ? " |\n" : " | ";
    }
  };

  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

void print_banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace llmq::util
