#pragma once
// Deterministic, seedable random number generation used throughout llmq.
//
// All stochastic components of the library (dataset generators, the
// accuracy task-model channel, bootstrap resampling) draw from Rng so that
// every experiment is reproducible from a single 64-bit seed.

#include <cstdint>
#include <vector>

namespace llmq::util {

/// splitmix64: used to derive well-mixed seeds from small integers.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a byte string (FNV-1a, then mixed).
/// Used wherever a deterministic value must be derived from text
/// (tokenizer vocabulary ids, embedding feature hashing, task-model labels).
std::uint64_t hash64(const void* data, std::size_t len);
std::uint64_t hash64(std::uint64_t x);

/// Combine two hashes (order-sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// xoshiro256** PRNG. Small, fast, and fully deterministic across
/// platforms (unlike std::mt19937 + std::uniform_*_distribution, whose
/// distributions are implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double p_true);

  /// Standard normal via Box-Muller (deterministic pairing).
  double next_gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derive an independent child stream; children with distinct tags are
  /// statistically independent of each other and of the parent.
  Rng fork(std::uint64_t tag) const;

 private:
  std::uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace llmq::util
