#pragma once
// Bounded multi-producer/single-consumer FIFO queue.
//
// The threaded fleet runtime (serve/threaded_fleet.hpp) uses one instance
// per direction and per replica: the driver thread pushes admission and
// epoch-control messages into a worker's inbox, and the worker pushes
// epoch reports back over its outbox. Both directions are actually
// single-producer/single-consumer today; the queue is written to the
// stronger MPSC contract so future multi-driver experiments don't need a
// new primitive.
//
// Contract:
//   - push() blocks while the queue is full (bounded backpressure) and
//     throws std::runtime_error if the queue was closed — a producer
//     writing into a closed queue is a protocol bug, not a race.
//   - pop() blocks while the queue is empty and returns false only once
//     the queue is closed AND drained, so no message is ever lost.
//   - FIFO order is total per queue: messages pushed by one producer are
//     consumed in push order (the fleet protocol depends on Submit
//     messages being processed before the RunUntil that follows them).
//
// Plain mutex + two condition variables: the payloads (requests, epoch
// reports) are heavyweight enough that lock-free buys nothing here, and
// the simple implementation is trivially TSan-clean.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace llmq::util {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Blocks while full. Throws if the queue has been closed.
  void push(T value) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) throw std::runtime_error("MpscQueue: push after close");
    items_.push_back(std::move(value));
    lk.unlock();
    not_empty_.notify_one();
  }

  /// Blocks while empty. Returns false once closed and fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop; returns false when empty (queue may still be open).
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Wakes every blocked producer (throws) and the consumer (drains, then
  /// sees false). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace llmq::util
