#include "util/token_ops.hpp"

#include "util/simd.hpp"

#if defined(LLMQ_TOKEN_OPS_AVX2)
#include <immintrin.h>
#endif
#if defined(LLMQ_TOKEN_OPS_NEON)
#include <arm_neon.h>
#endif

namespace llmq::util::token_ops {

namespace {
// FNV-1a constants. 32-bit per lane (vectorizable multiply everywhere:
// vpmulld on AVX2, vmulq_u32 on NEON), 64-bit for the final fold.
constexpr std::uint32_t kOffset32 = 2166136261u;
constexpr std::uint32_t kPrime32 = 16777619u;
constexpr std::uint64_t kOffset64 = 1469598103934665603ull;
constexpr std::uint64_t kPrime64 = 1099511628211ull;

// Fold the touched lane states and the length into the 64-bit result.
// Runs shorter than 32 tokens leave lanes n..31 at the constant offset —
// folding them would mix in nothing input-dependent, so the fold stops at
// min(n, 32) (the same count on every path, keeping ISAs bit-identical;
// short-block hashing is the radix tree's hot case). The length term
// keeps runs of identical tokens at different lengths (and the empty
// run) from colliding structurally.
inline std::uint64_t finalize(const std::uint32_t lane[32], std::size_t n) {
  const int nl = n < 32 ? static_cast<int>(n) : 32;
  std::uint64_t h = kOffset64;
  for (int l = 0; l < nl; ++l) h = (h ^ lane[l]) * kPrime64;
  h = (h ^ static_cast<std::uint64_t>(n)) * kPrime64;
  return h;
}
}  // namespace

// ---- Scalar reference path: the specification. ----

namespace scalar {

std::size_t lcp(const Token* a, const Token* b, std::size_t n) {
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

bool equal(const Token* a, const Token* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

std::uint64_t hash(const Token* d, std::size_t n) {
  std::uint32_t lane[32];
  for (auto& l : lane) l = kOffset32;
  for (std::size_t i = 0; i < n; ++i)
    lane[i & 31] = (lane[i & 31] ^ d[i]) * kPrime32;
  return finalize(lane, n);
}

}  // namespace scalar

// ---- AVX2 path (x86-64). Compiled via target attribute so the rest of
// the translation unit — and the whole build — needs no -mavx2; only
// reached when cpuid says the host has it. ----

#if defined(LLMQ_TOKEN_OPS_AVX2)
namespace avx2 {

namespace {
__attribute__((target("avx2"))) inline __m256i load8(const Token* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
// One sign bit per 32-bit lane: 0xFF == all eight lanes equal.
__attribute__((target("avx2"))) inline unsigned eqmask8(const Token* a,
                                                        const Token* b) {
  const __m256i eq = _mm256_cmpeq_epi32(load8(a), load8(b));
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}
}  // namespace

__attribute__((target("avx2"))) std::size_t lcp(const Token* a,
                                                const Token* b,
                                                std::size_t n) {
  std::size_t i = 0;
  // 2x unrolled: the two compares are independent, and one combined
  // 16-bit mask check per 16 tokens halves the branch overhead.
  for (; i + 16 <= n; i += 16) {
    const unsigned mask =
        eqmask8(a + i, b + i) | (eqmask8(a + i + 8, b + i + 8) << 8);
    if (mask != 0xFFFFu)
      return i + static_cast<std::size_t>(__builtin_ctz(~mask));
  }
  for (; i + 8 <= n; i += 8) {
    const unsigned mask = eqmask8(a + i, b + i);
    if (mask != 0xFFu)
      return i + static_cast<std::size_t>(__builtin_ctz(~mask));
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

__attribute__((target("avx2"))) bool equal(const Token* a, const Token* b,
                                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i eq0 = _mm256_cmpeq_epi32(load8(a + i), load8(b + i));
    const __m256i eq1 =
        _mm256_cmpeq_epi32(load8(a + i + 8), load8(b + i + 8));
    const __m256i both = _mm256_and_si256(eq0, eq1);
    if (static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(both))) != 0xFFu)
      return false;
  }
  for (; i + 8 <= n; i += 8)
    if (eqmask8(a + i, b + i) != 0xFFu) return false;
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

__attribute__((target("avx2"))) std::uint64_t hash(const Token* d,
                                                   std::size_t n) {
  // Four independent accumulators = four xor→vpmulld dependency chains in
  // flight; one chain alone would serialize on the multiplier's latency.
  __m256i h[4];
  for (auto& acc : h) acc = _mm256_set1_epi32(static_cast<int>(kOffset32));
  const __m256i p = _mm256_set1_epi32(static_cast<int>(kPrime32));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32)
    for (int k = 0; k < 4; ++k)
      h[k] = _mm256_mullo_epi32(_mm256_xor_si256(h[k], load8(d + i + 8 * k)),
                                p);
  // 8-wide tail: i stays a multiple of 8, so tokens i..i+7 occupy lanes
  // (i%32)..(i%32)+7 — exactly accumulator (i/8) % 4.
  for (; i + 8 <= n; i += 8) {
    __m256i& acc = h[(i >> 3) & 3];
    acc = _mm256_mullo_epi32(_mm256_xor_si256(acc, load8(d + i)), p);
  }
  alignas(32) std::uint32_t lane[32];
  for (int k = 0; k < 4; ++k)
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane + 8 * k), h[k]);
  // Scalar remainder lands in lane i & 31 — exactly the scalar recurrence.
  for (; i < n; ++i) lane[i & 31] = (lane[i & 31] ^ d[i]) * kPrime32;
  return finalize(lane, n);
}

}  // namespace avx2
#endif  // LLMQ_TOKEN_OPS_AVX2

// ---- NEON path (aarch64). Eight 128-bit accumulators carry the 32-lane
// recurrence (lanes 4k..4k+3 in accumulator k). ----

#if defined(LLMQ_TOKEN_OPS_NEON)
namespace neon {

std::size_t lcp(const Token* a, const Token* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32x4_t eq0 = vceqq_u32(vld1q_u32(a + i), vld1q_u32(b + i));
    const uint32x4_t eq1 =
        vceqq_u32(vld1q_u32(a + i + 4), vld1q_u32(b + i + 4));
    if (vminvq_u32(vandq_u32(eq0, eq1)) != 0xFFFFFFFFu) break;
  }
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t eq = vceqq_u32(vld1q_u32(a + i), vld1q_u32(b + i));
    if (vminvq_u32(eq) != 0xFFFFFFFFu) break;  // some lane differs
  }
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

bool equal(const Token* a, const Token* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint32x4_t eq0 = vceqq_u32(vld1q_u32(a + i), vld1q_u32(b + i));
    const uint32x4_t eq1 =
        vceqq_u32(vld1q_u32(a + i + 4), vld1q_u32(b + i + 4));
    if (vminvq_u32(vandq_u32(eq0, eq1)) != 0xFFFFFFFFu) return false;
  }
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t eq = vceqq_u32(vld1q_u32(a + i), vld1q_u32(b + i));
    if (vminvq_u32(eq) != 0xFFFFFFFFu) return false;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

std::uint64_t hash(const Token* d, std::size_t n) {
  uint32x4_t h[8];
  for (auto& acc : h) acc = vdupq_n_u32(kOffset32);
  const uint32x4_t p = vdupq_n_u32(kPrime32);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32)
    for (int k = 0; k < 8; ++k)
      h[k] = vmulq_u32(veorq_u32(h[k], vld1q_u32(d + i + 4 * k)), p);
  // 4-wide tail: i stays a multiple of 4, so tokens i..i+3 occupy lanes
  // (i%32)..(i%32)+3 — exactly accumulator (i/4) % 8.
  for (; i + 4 <= n; i += 4) {
    uint32x4_t& acc = h[(i >> 2) & 7];
    acc = vmulq_u32(veorq_u32(acc, vld1q_u32(d + i)), p);
  }
  std::uint32_t lane[32];
  for (int k = 0; k < 8; ++k) vst1q_u32(lane + 4 * k, h[k]);
  for (; i < n; ++i) lane[i & 31] = (lane[i & 31] ^ d[i]) * kPrime32;
  return finalize(lane, n);
}

}  // namespace neon
#endif  // LLMQ_TOKEN_OPS_NEON

// ---- Dispatch: resolved once per process from simd::active_isa(). ----

namespace {

struct Kernels {
  std::size_t (*lcp)(const Token*, const Token*, std::size_t);
  bool (*equal)(const Token*, const Token*, std::size_t);
  std::uint64_t (*hash)(const Token*, std::size_t);
};

const Kernels& kernels() {
  static const Kernels k = [] {
    switch (simd::active_isa()) {
#if defined(LLMQ_TOKEN_OPS_AVX2)
      case simd::Isa::Avx2:
        return Kernels{avx2::lcp, avx2::equal, avx2::hash};
#endif
#if defined(LLMQ_TOKEN_OPS_NEON)
      case simd::Isa::Neon:
        return Kernels{neon::lcp, neon::equal, neon::hash};
#endif
      default:
        return Kernels{scalar::lcp, scalar::equal, scalar::hash};
    }
  }();
  return k;
}

}  // namespace

std::size_t lcp(const Token* a, const Token* b, std::size_t n) {
  return kernels().lcp(a, b, n);
}
bool equal(const Token* a, const Token* b, std::size_t n) {
  return kernels().equal(a, b, n);
}
std::uint64_t hash(const Token* d, std::size_t n) {
  return kernels().hash(d, n);
}

}  // namespace llmq::util::token_ops
