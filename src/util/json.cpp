#include "util/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace llmq::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::maybe_comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  maybe_comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  maybe_comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  maybe_comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  maybe_comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  maybe_comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  maybe_comma();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  maybe_comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  maybe_comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::kv(std::string_view k, std::string_view v) {
  key(k);
  return value(v);
}

// ---- Reader. ----

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) throw std::logic_error("JsonValue: not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw std::logic_error("JsonValue: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::Array) throw std::logic_error("JsonValue: not an array");
  return items_;
}

const JsonValue::Members& JsonValue::as_object() const {
  if (type_ != Type::Object) throw std::logic_error("JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::Number;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(Members members) {
  JsonValue v;
  v.type_ = Type::Object;
  v.members_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view cursor. Failure is a
/// nullopt bubbling up — no exceptions, no error positions; the schema
/// tests only need parse-or-not plus the parsed tree.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    if (++depth_ > kMaxDepth) return std::nullopt;
    struct DepthGuard {
      std::size_t& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue::make_string(std::move(*s));
      }
      case 't':
        return literal("true") ? std::optional(JsonValue::make_bool(true))
                               : std::nullopt;
      case 'f':
        return literal("false") ? std::optional(JsonValue::make_bool(false))
                                : std::nullopt;
      case 'n':
        return literal("null") ? std::optional(JsonValue::make_null())
                               : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue::Members members;
    if (eat('}')) return JsonValue::make_object(std::move(members));
    do {
      skip_ws();
      auto key = parse_string();
      if (!key || !eat(':')) return std::nullopt;
      auto val = parse_value();
      if (!val) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*val));
    } while (eat(','));
    if (!eat('}')) return std::nullopt;
    return JsonValue::make_object(std::move(members));
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    if (eat(']')) return JsonValue::make_array(std::move(items));
    do {
      auto val = parse_value();
      if (!val) return std::nullopt;
      items.push_back(std::move(*val));
    } while (eat(','));
    if (!eat(']')) return std::nullopt;
    return JsonValue::make_array(std::move(items));
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          // The writer only emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 so round-trips are lossless.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) return std::nullopt;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) return std::nullopt;
    }
    return JsonValue::make_number(
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr));
  }

  static constexpr std::size_t kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace llmq::util
