#include "util/json.hpp"

#include <cstdio>

namespace llmq::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::maybe_comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  maybe_comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  maybe_comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  maybe_comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  maybe_comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  maybe_comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  maybe_comma();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  maybe_comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  maybe_comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::kv(std::string_view k, std::string_view v) {
  key(k);
  return value(v);
}

}  // namespace llmq::util
