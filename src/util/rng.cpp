#include "util/rng.hpp"

#include <cmath>
#include <cstring>

namespace llmq::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  // Final avalanche so short strings spread over all 64 bits.
  std::uint64_t s = h;
  return splitmix64(s);
}

std::uint64_t hash64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Lemire's unbiased bounded generation (rejection variant).
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

Rng Rng::fork(std::uint64_t tag) const {
  return Rng(hash_combine(s_[0] ^ s_[3], hash64(tag)));
}

}  // namespace llmq::util
