#pragma once
// Descriptive statistics and bootstrap resampling.
//
// The accuracy experiment (paper Fig. 6) reports bootstrapped medians of
// exact-match accuracy over 10,000 resamples; `bootstrap_median` implements
// that procedure deterministically.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace llmq::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: sorts a copy

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Same statistic over an ALREADY-SORTED sample — no copy, no sort. For
/// call sites that take many percentiles of one sample (latency
/// summaries), sort once and read them all through this; the arithmetic
/// is identical to percentile(), so the results are bit-identical.
double percentile_sorted(std::span<const double> sorted, double p);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

struct BootstrapResult {
  double median_of_medians = 0.0;
  double ci_low = 0.0;   // 2.5th percentile of the bootstrap distribution
  double ci_high = 0.0;  // 97.5th percentile
  std::vector<double> samples;  // one statistic per resample
};

/// Bootstrap the median of `xs`: `n_resamples` draws with replacement.
BootstrapResult bootstrap_median(std::span<const double> xs,
                                 std::size_t n_resamples, Rng& rng);

/// Bootstrap the mean (used for accuracy == mean of 0/1 exact-match scores).
BootstrapResult bootstrap_mean(std::span<const double> xs,
                               std::size_t n_resamples, Rng& rng);

/// Welford online accumulator for streaming statistics.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace llmq::util
