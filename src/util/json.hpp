#pragma once
// Minimal JSON writer.
//
// The LLM operator serializes each row as a JSON object (paper §5: "We use
// JSON formatting to encode row values"), so prompt construction needs a
// small, exact, deterministic JSON emitter. Only writing is needed; the
// library never parses JSON.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llmq::util {

/// Escape a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// Streaming writer producing compact JSON. Field order is exactly the
/// insertion order — this is load-bearing: per-row field *order* is the
/// paper's optimization variable, and the serialized prompt must respect it.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + string value.
  JsonWriter& kv(std::string_view k, std::string_view v);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void maybe_comma();
  std::string out_;
  std::vector<bool> needs_comma_;  // one per open scope
  bool after_key_ = false;
};

}  // namespace llmq::util
