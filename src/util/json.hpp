#pragma once
// Minimal JSON writer and reader.
//
// The LLM operator serializes each row as a JSON object (paper §5: "We use
// JSON formatting to encode row values"), so prompt construction needs a
// small, exact, deterministic JSON emitter. The reader exists for the
// golden bench-schema tests: every bench emits a --json report, and the
// test suite parses those reports back to pin their key/type schema.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace llmq::util {

/// Escape a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// Streaming writer producing compact JSON. Field order is exactly the
/// insertion order — this is load-bearing: per-row field *order* is the
/// paper's optimization variable, and the serialized prompt must respect it.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  /// String-literal overload: without it, `value("text")` silently picks
  /// the bool overload (pointer->bool is a standard conversion and beats
  /// the user-defined one to string_view).
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + string value.
  JsonWriter& kv(std::string_view k, std::string_view v);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void maybe_comma();
  std::string out_;
  std::vector<bool> needs_comma_;  // one per open scope
  bool after_key_ = false;
};

/// Parsed JSON value. Numbers are doubles (the writer emits nothing a
/// double cannot round-trip); object members keep document order (a
/// vector of pairs, not a map — JsonValue is incomplete at member
/// declaration, and only the sequence containers support that).
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const Members& as_object() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(const std::string& key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(Members members);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  Members members_;
};

/// Parse a complete JSON document (objects, arrays, strings with the
/// escapes json_escape produces plus \uXXXX, numbers, booleans, null).
/// Returns std::nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace llmq::util
