#pragma once
// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace llmq::util {

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool contains(std::string_view haystack, std::string_view needle);

/// Format a double with fixed decimals (locale-independent).
std::string fmt(double v, int decimals);

/// Human-readable large integers: 12345678 -> "12,345,678".
std::string with_commas(std::uint64_t v);

}  // namespace llmq::util
