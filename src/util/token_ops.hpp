#pragma once
// Vectorized token-sequence kernels — the per-token inner loops of the
// prefix cache (RadixTree block matching, block hashing) and tokenizer
// (longest-common-prefix). Three kernels:
//
//   * lcp(a, b, n)   — length of the longest common prefix of two runs;
//   * equal(a, b, n) — whole-run equality (the radix block compare);
//   * hash(d, n)     — 64-bit block hash (child-table index, stripe pick).
//
// Each has a scalar reference implementation (namespace scalar) that IS
// the specification, and SIMD forms (AVX2 / NEON) that are bit-identical
// to it by construction — the dispatched entry points below pick the
// widest ISA the host supports (util/simd.hpp) and the equivalence is
// property-pinned over randomized lengths and alignments in
// tests/util/test_token_ops.cpp.
//
// The hash is designed to vectorize EXACTLY: thirty-two independent
// 32-bit FNV-1a lanes, lane L folding tokens L, L+32, L+64, ...,
// finalized by folding the lane states and the length through 64-bit
// FNV-1a. Lane-striding makes the scalar and SIMD loops compute the same
// recurrences in the same order per lane; 32-bit lane multiplies wrap
// identically everywhere. Thirty-two lanes (not a single vector's worth)
// is deliberate: each FNV step is a serial xor→multiply chain, so an
// 8-lane spec would leave AVX2 latency-bound on one vpmulld chain —
// four 256-bit accumulators running four independent chains keep the
// multiplier pipeline full, and because lane groups are contiguous
// (tokens i..i+7 with i % 8 == 0 always land in one accumulator), runs as
// short as one vector still take the vector path. Zero-length input is
// legal (a pure length-seeded constant); the data pointer is never
// dereferenced then.

#include <cstddef>
#include <cstdint>
#include <span>

namespace llmq::util::token_ops {

using Token = std::uint32_t;

/// Dispatched entry points (widest supported ISA; scalar otherwise).
std::size_t lcp(const Token* a, const Token* b, std::size_t n);
bool equal(const Token* a, const Token* b, std::size_t n);
std::uint64_t hash(const Token* d, std::size_t n);

inline std::size_t lcp(std::span<const Token> a, std::span<const Token> b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  return lcp(a.data(), b.data(), n);
}
inline bool equal(std::span<const Token> a, std::span<const Token> b) {
  return a.size() == b.size() && equal(a.data(), b.data(), a.size());
}
inline std::uint64_t hash(std::span<const Token> d) {
  return hash(d.data(), d.size());
}

/// Scalar reference path — the specification the SIMD paths must match
/// bit-for-bit. Always compiled; exported for the property tests and the
/// microbench A/B comparison.
namespace scalar {
std::size_t lcp(const Token* a, const Token* b, std::size_t n);
bool equal(const Token* a, const Token* b, std::size_t n);
std::uint64_t hash(const Token* d, std::size_t n);
}  // namespace scalar

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define LLMQ_TOKEN_OPS_AVX2 1
/// AVX2 path (compiled via target attribute; only CALL these when
/// simd::active_isa() == Isa::Avx2 — exported for the property tests).
namespace avx2 {
std::size_t lcp(const Token* a, const Token* b, std::size_t n);
bool equal(const Token* a, const Token* b, std::size_t n);
std::uint64_t hash(const Token* d, std::size_t n);
}  // namespace avx2
#endif

#if defined(__aarch64__) || defined(__ARM_NEON)
#define LLMQ_TOKEN_OPS_NEON 1
namespace neon {
std::size_t lcp(const Token* a, const Token* b, std::size_t n);
bool equal(const Token* a, const Token* b, std::size_t n);
std::uint64_t hash(const Token* d, std::size_t n);
}  // namespace neon
#endif

}  // namespace llmq::util::token_ops
