#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace llmq::util {

Zipf::Zipf(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be positive");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double Zipf::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return cdf_[k] - (k == 0 ? 0.0 : cdf_[k - 1]);
}

}  // namespace llmq::util
