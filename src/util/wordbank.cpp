#include "util/wordbank.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>

namespace llmq::util {

namespace {

constexpr std::array<const char*, 24> kOnsets = {
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j",
    "k", "l",  "m", "n",  "p", "pr", "r", "s",  "st", "t", "tr", "v"};
constexpr std::array<const char*, 12> kNuclei = {
    "a", "e", "i", "o", "u", "ai", "ea", "ie", "oa", "ou", "ee", "io"};
constexpr std::array<const char*, 14> kCodas = {
    "", "n", "r", "s", "t", "l", "m", "nd", "st", "rk", "ck", "sh", "th", "ng"};

std::string make_word(Rng& rng) {
  const std::size_t n_syllables = 1 + rng.next_below(3);
  std::string w;
  for (std::size_t s = 0; s < n_syllables; ++s) {
    w += kOnsets[rng.next_below(kOnsets.size())];
    w += kNuclei[rng.next_below(kNuclei.size())];
    if (s + 1 == n_syllables || rng.next_bool(0.3))
      w += kCodas[rng.next_below(kCodas.size())];
  }
  return w;
}

}  // namespace

WordBank::WordBank(std::uint64_t seed, std::size_t vocab_size) {
  Rng rng(hash_combine(seed, 0x77047db07ULL));
  words_.reserve(vocab_size);
  while (words_.size() < vocab_size) {
    std::string w = make_word(rng);
    words_.push_back(std::move(w));
  }
  // Zipf(1.05) CDF over ranks — natural-language-like frequency profile.
  cdf_.resize(vocab_size);
  double acc = 0.0;
  for (std::size_t k = 0; k < vocab_size; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), 1.05);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

const std::string& WordBank::word(std::size_t id) const {
  return words_[id % words_.size()];
}

const std::string& WordBank::sample_word(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return words_[static_cast<std::size_t>(it - cdf_.begin())];
}

std::string WordBank::sentence(Rng& rng, std::size_t n_words) const {
  std::string out;
  std::size_t since_punct = 0;
  bool capitalize = true;
  for (std::size_t i = 0; i < n_words; ++i) {
    std::string w = sample_word(rng);
    if (capitalize) {
      w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
      capitalize = false;
    }
    if (!out.empty()) out += ' ';
    out += w;
    ++since_punct;
    const bool last = (i + 1 == n_words);
    if (last || (since_punct >= 8 && rng.next_bool(0.25))) {
      out += '.';
      since_punct = 0;
      capitalize = true;
    }
  }
  return out;
}

std::string WordBank::text_of_tokens(Rng& rng, std::size_t target_tokens) const {
  // ~1.9 tokens per word under the llmq tokenizer: one space-prefixed
  // piece per short word, 2-3 pieces for the long tail of multi-syllable
  // words, plus sentence punctuation. Calibrated against measurement in
  // tests/util/test_wordbank.cpp.
  const auto n_words = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(target_tokens) / 1.9));
  return sentence(rng, n_words);
}

std::string WordBank::title(Rng& rng, std::size_t n_words) const {
  std::string out;
  for (std::size_t i = 0; i < n_words; ++i) {
    std::string w = sample_word(rng);
    w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
    if (!out.empty()) out += ' ';
    out += w;
  }
  return out;
}

const WordBank& default_wordbank() {
  static const WordBank bank(42, 20000);
  return bank;
}

}  // namespace llmq::util
