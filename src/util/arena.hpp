#pragma once
// Fixed-slot pool allocator for the serving hot path.
//
// SlotPool<T> owns slabs of default-constructed T and hands out slot
// indices from a free list. allocate() pops a recycled slot when one
// exists — the steady-state case, where it touches no allocator at all —
// and only grows (geometrically, slab-at-a-time) when the pool is
// exhausted. deallocate() never releases memory; a slot's T keeps
// whatever capacity it accumulated (e.g. a token vector's buffer) so the
// next tenant reuses it instead of re-growing. That retention is the
// ownership contract (DESIGN.md §11): capacity belongs to the SLOT, not
// the logical object living in it, and is bounded by the pool's
// high-water slot count times the largest payload a slot ever held.
//
// Indices are stable for the lifetime of the pool (slabs are never moved
// or freed), so callers may hold raw slot indices across allocations.
// Not thread-safe; callers serialize access (RadixTree is externally
// locked per stripe).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace llmq::util {

template <typename T>
class SlotPool {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kInvalid = UINT32_MAX;

  explicit SlotPool(std::size_t slab_slots = 256)
      : slab_slots_(slab_slots < 1 ? 1 : slab_slots) {}

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;
  SlotPool(SlotPool&&) = default;
  SlotPool& operator=(SlotPool&&) = default;

  /// Pop a recycled slot, or carve a fresh one (growing a slab if needed).
  Slot allocate() {
    if (!free_.empty()) {
      const Slot s = free_.back();
      free_.pop_back();
      ++in_use_;
      return s;
    }
    if (next_ == capacity_) grow();
    const Slot s = next_++;
    ++in_use_;
    return s;
  }

  /// Return a slot to the free list. The T keeps its state/capacity; the
  /// next allocate() of this slot reuses it.
  void deallocate(Slot s) {
    free_.push_back(s);
    --in_use_;
  }

  T& operator[](Slot s) { return slabs_[s / slab_slots_][s % slab_slots_]; }
  const T& operator[](Slot s) const {
    return slabs_[s / slab_slots_][s % slab_slots_];
  }

  /// Slots ever carved (high-water mark). Flat across steady-state churn.
  std::size_t slots() const { return next_; }
  std::size_t in_use() const { return in_use_; }

 private:
  void grow() {
    // Geometric growth in slab count: double the number of slabs each
    // exhaustion (1, 1, 2, 4, ...) so n allocations cost O(n) total work.
    std::size_t add = slabs_.empty() ? 1 : slabs_.size();
    slabs_.reserve(slabs_.size() + add);
    for (std::size_t i = 0; i < add; ++i)
      slabs_.push_back(std::make_unique<T[]>(slab_slots_));
    capacity_ += add * slab_slots_;
  }

  std::size_t slab_slots_;
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<Slot> free_;
  std::size_t next_ = 0;      // first never-used slot index
  std::size_t capacity_ = 0;  // total slots across slabs
  std::size_t in_use_ = 0;
};

}  // namespace llmq::util
