#pragma once
// Runtime SIMD instruction-set detection for the hot-path kernels.
//
// The dispatch rule (DESIGN.md §11): every vectorized kernel in
// util/token_ops.* exists in a scalar reference form whose result is the
// SPECIFICATION, and in ISA forms (AVX2 on x86-64, NEON on aarch64) that
// must be bit-identical to it — the prefix cache's behavior (match
// lengths, stripe assignment, eviction order, trace bytes) must not
// depend on the machine the binary happens to run on. The ISA is picked
// once per process: compile-time on aarch64 (NEON is baseline there),
// cpuid at first use on x86-64. Setting LLMQ_SIMD=scalar in the
// environment forces the scalar path — the escape hatch the equivalence
// property tests and the microbench A/B comparisons use.

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace llmq::util::simd {

enum class Isa : std::uint8_t { Scalar, Avx2, Neon };

inline const char* name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
    case Isa::Neon: return "neon";
  }
  return "?";
}

namespace detail {
inline Isa detect() {
#if defined(__aarch64__) || defined(__ARM_NEON)
  return Isa::Neon;
#elif (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? Isa::Avx2 : Isa::Scalar;
#else
  return Isa::Scalar;
#endif
}
}  // namespace detail

/// The ISA the dispatched token_ops entry points run on. Cached after the
/// first call; honors LLMQ_SIMD=scalar.
inline Isa active_isa() {
  static const Isa isa = [] {
    const char* env = std::getenv("LLMQ_SIMD");
    if (env && std::strcmp(env, "scalar") == 0) return Isa::Scalar;
    return detail::detect();
  }();
  return isa;
}

}  // namespace llmq::util::simd
