#pragma once
// Aligned console table output used by the benchmark harnesses to print
// rows matching the paper's tables and figures.

#include <string>
#include <vector>

namespace llmq::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment. Numeric-looking cells are right-aligned.
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner: "== title ==".
void print_banner(const std::string& title);

}  // namespace llmq::util
