#pragma once
// Deterministic synthetic-English text generation.
//
// The benchmark datasets (reviews, post bodies, evidence passages) are
// replaced by synthetic text whose *statistical* shape matches the paper's
// Table 1 (average token lengths) and whose repetition structure matches
// each dataset's description. WordBank produces pronounceable pseudo-words
// from a seeded syllable model, so text is stable across runs and platforms
// and tokenizes at a realistic tokens-per-word rate.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace llmq::util {

class WordBank {
 public:
  /// `vocab_size` distinct words derived deterministically from `seed`.
  WordBank(std::uint64_t seed, std::size_t vocab_size);

  /// The id-th vocabulary word (stable).
  const std::string& word(std::size_t id) const;

  std::size_t vocab_size() const { return words_.size(); }

  /// Zipf-weighted random word (common words repeat, like natural text).
  const std::string& sample_word(Rng& rng) const;

  /// Space-separated text with exactly `n_words` words, sentence-cased with
  /// terminal punctuation roughly every 8-14 words.
  std::string sentence(Rng& rng, std::size_t n_words) const;

  /// Text sized to approximately `target_tokens` tokens under the llmq
  /// tokenizer (~1.9 tokens/word average); deterministic given `rng` state.
  std::string text_of_tokens(Rng& rng, std::size_t target_tokens) const;

  /// Title-case short phrase of `n_words` words (for names/titles).
  std::string title(Rng& rng, std::size_t n_words) const;

 private:
  std::vector<std::string> words_;
  std::vector<double> cdf_;  // Zipf CDF over the vocabulary
};

/// A globally shared bank (seed 42, 20k words) for generators that only
/// need generic prose.
const WordBank& default_wordbank();

}  // namespace llmq::util
