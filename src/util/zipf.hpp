#pragma once
// Zipfian sampler for skewed categorical data.
//
// Real relational columns (product ids, reviewer names, styles, genres)
// are heavily skewed; the dataset generators use Zipf draws so that a few
// values repeat across many rows — exactly the structure GGR exploits.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace llmq::util {

/// Samples ranks in [0, n) with P(rank=k) proportional to 1/(k+1)^s.
/// Precomputes the CDF; sampling is O(log n) via binary search.
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double skew() const { return s_; }

  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
  double s_;
};

}  // namespace llmq::util
