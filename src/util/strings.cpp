#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace llmq::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace llmq::util
