#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace llmq::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  const double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_sorted(xs, p);
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted[lo];
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

namespace {

template <typename Statistic>
BootstrapResult bootstrap_impl(std::span<const double> xs,
                               std::size_t n_resamples, Rng& rng,
                               Statistic stat) {
  if (xs.empty()) throw std::invalid_argument("bootstrap: empty sample");
  BootstrapResult out;
  out.samples.reserve(n_resamples);
  std::vector<double> draw(xs.size());
  for (std::size_t i = 0; i < n_resamples; ++i) {
    for (auto& d : draw) d = xs[rng.next_below(xs.size())];
    out.samples.push_back(stat(draw));
  }
  out.median_of_medians = median(out.samples);
  out.ci_low = percentile(out.samples, 2.5);
  out.ci_high = percentile(out.samples, 97.5);
  return out;
}

}  // namespace

BootstrapResult bootstrap_median(std::span<const double> xs,
                                 std::size_t n_resamples, Rng& rng) {
  return bootstrap_impl(xs, n_resamples, rng,
                        [](const std::vector<double>& d) { return median(d); });
}

BootstrapResult bootstrap_mean(std::span<const double> xs,
                               std::size_t n_resamples, Rng& rng) {
  return bootstrap_impl(xs, n_resamples, rng, [](const std::vector<double>& d) {
    return mean(std::span<const double>(d));
  });
}

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace llmq::util
