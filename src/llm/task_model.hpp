#pragma once
// Deterministic task model — the simulated "LLM answer" channel.
//
// The paper's accuracy study (Fig 6) asks whether GGR's per-row field
// reordering changes what the model answers. We replace the real model
// with a noisy channel whose parameters encode the paper's finding:
// answer correctness depends on the model's base task accuracy and (for
// weaker models) on *where* the answer-bearing field sits in the prompt.
// Everything is a pure function of (row key, model seed, position), so a
// run is exactly reproducible and the original-vs-GGR comparison is
// paired: the same row flips only if its latent difficulty lands between
// the two orderings' success probabilities — mirroring how a real model's
// flips concentrate on borderline rows.
//
// The same component generates output token lengths for the serving
// simulator (mean/dispersion from the paper's Table 1).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llmq::llm {

struct ModelProfile {
  std::string name;
  /// Base probability of answering a benchmark task correctly.
  double base_accuracy = 0.85;
  /// How strongly field position shifts accuracy (0 = fully robust).
  /// Positive values mean the model prefers the key field *late* in the
  /// prompt (the Llama3-8B/FEVER behaviour in paper §6.4).
  double position_susceptibility = 0.0;
  std::uint64_t seed = 0;
};

/// Profiles tuned to reproduce Fig 6's shape (see bench_fig6_accuracy).
ModelProfile profile_llama3_8b();
ModelProfile profile_llama3_70b();
ModelProfile profile_gpt4o();

class TaskModel {
 public:
  explicit TaskModel(ModelProfile profile) : profile_(std::move(profile)) {}

  const ModelProfile& profile() const { return profile_; }

  /// Probability of a correct answer when the answer-bearing field sits at
  /// `key_field_frac` in [0,1] (0 = first field, 1 = last) and the task
  /// itself shifts accuracy by `task_sensitivity` per unit of position.
  double success_probability(double key_field_frac,
                             double task_sensitivity) const;

  /// Deterministic answer: returns `truth` when the latent difficulty of
  /// this row (hashed from `row_key` and the model seed) falls below the
  /// success probability; otherwise a deterministic wrong choice drawn
  /// from `alternatives` (or a corrupted string if none apply).
  std::string answer(std::string_view row_key, std::string_view truth,
                     const std::vector<std::string>& alternatives,
                     double key_field_frac, double task_sensitivity) const;

  /// Output length in tokens for a row: mean with deterministic spread
  /// (~±25%), floor 1.
  std::size_t output_tokens(std::string_view row_key, double mean) const;

  /// Deterministic free-form output text of ~output_tokens(row_key, mean)
  /// tokens (projection/summarization tasks).
  std::string generate_text(std::string_view row_key, double mean_tokens) const;

 private:
  ModelProfile profile_;
};

}  // namespace llmq::llm
