#include "llm/engine.hpp"

#include "llm/engine_session.hpp"

namespace llmq::llm {

ServingEngine::ServingEngine(CostModel cost, EngineConfig config)
    : cost_(std::move(cost)), config_(config) {
  pool_blocks_ = config_.kv_pool_blocks_override
                     ? config_.kv_pool_blocks_override
                     : cost_.kv_pool_blocks(config_.block_size);
}

cache::PrefixCache ServingEngine::make_session_cache(
    std::size_t lock_stripes) const {
  // Cache holds the shared prompt blocks; the engine enforces the global
  // KV budget over cached + per-request private blocks, driving eviction.
  cache::CacheConfig cc;
  cc.block_size = config_.block_size;
  cc.capacity_blocks = 0;  // engine-enforced budget
  cc.enabled = config_.cache_enabled;
  cc.lock_stripes = lock_stripes;
  cc.tiers = config_.cache_tiers;
  cc.host_capacity_blocks = config_.host_capacity_blocks;
  cc.disk_capacity_blocks = config_.disk_capacity_blocks;
  return cache::PrefixCache(cc);
}

BatchRunResult ServingEngine::run(const std::vector<Request>& requests) {
  cache::PrefixCache cache = make_session_cache();
  return run(requests, cache);
}

BatchRunResult ServingEngine::run(const std::vector<Request>& requests,
                                  cache::PrefixCache& cache) {
  // A whole-batch job is the degenerate online session: everything is
  // submitted at t=0 and the session steps to completion. submit() copies
  // each request — the session must own its requests because the online
  // path materializes them from a stream; for batch runs that is one
  // prompt-vector copy per request, noise next to planning + simulation.
  EngineSession session(*this, cache);
  for (const auto& r : requests) session.submit(r);
  BatchRunResult out;
  out.results = session.drain();
  out.metrics = session.metrics();
  return out;
}

}  // namespace llmq::llm
