#include "llm/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace llmq::llm {

namespace {

struct Running {
  const Request* req = nullptr;
  cache::CacheLease lease;
  std::size_t cached = 0;        // prompt tokens served from cache
  std::size_t generated = 0;
  std::size_t context_len = 0;   // prompt + generated
  std::size_t private_blocks = 0;
  double admit_time = 0.0;
};

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

ServingEngine::ServingEngine(CostModel cost, EngineConfig config)
    : cost_(std::move(cost)), config_(config) {
  pool_blocks_ = config_.kv_pool_blocks_override
                     ? config_.kv_pool_blocks_override
                     : cost_.kv_pool_blocks(config_.block_size);
}

cache::PrefixCache ServingEngine::make_session_cache() const {
  // Cache holds the shared prompt blocks; the engine enforces the global
  // KV budget over cached + per-request private blocks, driving eviction.
  cache::CacheConfig cc;
  cc.block_size = config_.block_size;
  cc.capacity_blocks = 0;  // engine-enforced budget
  cc.enabled = config_.cache_enabled;
  return cache::PrefixCache(cc);
}

BatchRunResult ServingEngine::run(const std::vector<Request>& requests) {
  cache::PrefixCache cache = make_session_cache();
  return run(requests, cache);
}

BatchRunResult ServingEngine::run(const std::vector<Request>& requests,
                                  cache::PrefixCache& cache) {
  if (pool_blocks_ == 0)
    throw std::runtime_error(
        "ServingEngine: model does not fit on the configured GPU");

  BatchRunResult out;
  out.results.reserve(requests.size());
  EngineMetrics& m = out.metrics;

  const cache::CacheStats stats_before = cache.stats();

  std::deque<const Request*> pending;
  for (const auto& r : requests) pending.push_back(&r);
  std::vector<Running> running;
  std::size_t private_in_use = 0;
  double now = 0.0;

  const std::size_t bs = config_.block_size;

  while (!pending.empty() || !running.empty()) {
    // ---- Admission: fill the batch while memory allows. ----
    while (!pending.empty() && running.size() < config_.max_batch_size) {
      const Request* req = pending.front();
      const std::size_t prompt_len = req->prompt.size();
      const std::size_t output_len = std::max<std::size_t>(1, req->output_tokens);

      cache::CacheLease lease = cache.lookup(req->prompt);
      const std::size_t cached = lease.cached_tokens;

      // Memory plan: full prompt blocks beyond the cached path move into
      // the shared cache at admit(); the partial prompt tail plus all
      // output tokens are private to this request.
      const std::size_t new_shared =
          config_.cache_enabled ? cache.blocks_needed(prompt_len, cached) : 0;
      const std::size_t private_tokens =
          (config_.cache_enabled ? prompt_len % bs : prompt_len) + output_len;
      const std::size_t private_blocks = ceil_div(private_tokens, bs);
      const std::size_t needed = new_shared + private_blocks;

      std::size_t used = cache.resident_blocks() + private_in_use;
      if (used + needed > pool_blocks_) {
        const std::size_t shortfall = used + needed - pool_blocks_;
        cache.evict(shortfall);
        used = cache.resident_blocks() + private_in_use;
      }
      if (used + needed > pool_blocks_) {
        cache.release(lease);
        if (running.empty())
          throw std::runtime_error(
              "ServingEngine: request cannot fit in KV memory even alone");
        break;  // wait for completions to free memory
      }

      // Prefill the uncached suffix (quadratic attention against the
      // cached context included).
      const std::size_t uncached = prompt_len - cached;
      const double pf = cost_.prefill_seconds(uncached, cached);
      now += pf;
      m.prefill_seconds += pf;
      m.prompt_tokens += prompt_len;
      m.cached_prompt_tokens += cached;
      m.computed_prompt_tokens += uncached;

      if (config_.cache_enabled) cache.admit(req->prompt, lease);
      private_in_use += private_blocks;

      Running r;
      r.req = req;
      r.lease = std::move(lease);
      r.cached = cached;
      r.context_len = prompt_len;
      r.private_blocks = private_blocks;
      r.admit_time = now;
      running.push_back(std::move(r));
      pending.pop_front();
    }

    if (running.empty()) continue;  // admission made progress or threw

    // ---- One decode step across the whole batch. ----
    std::vector<std::size_t> ctx;
    ctx.reserve(running.size());
    for (const auto& r : running) ctx.push_back(r.context_len);
    const double dt = cost_.decode_step_seconds(ctx);
    now += dt;
    m.decode_seconds += dt;
    ++m.decode_steps;
    m.sum_batch_size += static_cast<double>(running.size());
    m.peak_batch_size = std::max(m.peak_batch_size, running.size());
    m.output_tokens += running.size();

    // Advance and retire completed requests.
    for (auto it = running.begin(); it != running.end();) {
      ++it->generated;
      ++it->context_len;
      const std::size_t want = std::max<std::size_t>(1, it->req->output_tokens);
      if (it->generated >= want) {
        RequestResult res;
        res.id = it->req->id;
        res.row_tag = it->req->row_tag;
        res.prompt_tokens = it->req->prompt.size();
        res.cached_tokens = it->cached;
        res.computed_tokens = res.prompt_tokens - it->cached;
        res.output_tokens = it->generated;
        res.admit_time = it->admit_time;
        res.finish_time = now;
        out.results.push_back(res);
        cache.release(it->lease);
        private_in_use -= it->private_blocks;
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  m.total_seconds = now;
  // Per-run cache stats (delta against the session's running totals).
  m.cache = cache.stats();
  m.cache.lookups -= stats_before.lookups;
  m.cache.hit_tokens -= stats_before.hit_tokens;
  m.cache.lookup_tokens -= stats_before.lookup_tokens;
  m.cache.inserted_blocks -= stats_before.inserted_blocks;
  m.cache.evicted_blocks -= stats_before.evicted_blocks;
  return out;
}

}  // namespace llmq::llm
