#include "llm/gpu_spec.hpp"

namespace llmq::llm {

GpuSpec l4() {
  GpuSpec g;
  g.name = "NVIDIA L4";
  g.peak_flops = 121e12;
  g.mem_bandwidth = 300e9;
  g.memory_bytes = 24e9;
  g.tensor_parallel = 1;
  return g;
}

GpuSpec l4_x8() {
  GpuSpec g = l4();
  g.name = "8x NVIDIA L4 (TP=8)";
  g.tensor_parallel = 8;
  // Tensor-parallel all-reduce overhead lowers achieved utilization.
  g.mfu = 0.4;
  g.bandwidth_util = 0.6;
  return g;
}

}  // namespace llmq::llm
