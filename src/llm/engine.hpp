#pragma once
// Discrete-event LLM serving engine with continuous batching and prompt
// prefix caching — the simulated stand-in for vLLM in the paper's setup
// (see DESIGN.md §1 for the substitution argument).
//
// Mechanics modeled:
//  * requests admitted in schedule order while KV memory and batch slots
//    allow (admission reserves the whole sequence: prompt + max output);
//  * admitted requests prefill only their *uncached* prompt suffix
//    (compute-bound, quadratic attention term included);
//  * one token per running request per decode step (bandwidth-bound,
//    weights read once per step for the whole batch);
//  * prompt KV blocks are shared through the radix-tree PrefixCache, so
//    shared prefixes cost memory once — sharing increases the admissible
//    batch size, which is the second-order win the paper reports for
//    memory-constrained models;
//  * completed requests free their private blocks; shared prefix blocks
//    stay cached until evicted by LRU.

#include <cstdint>
#include <vector>

#include "cache/prefix_cache.hpp"
#include "llm/cost_model.hpp"
#include "llm/request.hpp"

namespace llmq::llm {

struct EngineConfig {
  std::size_t max_batch_size = 32;  // paper §2: batching up to 32 requests
  std::size_t block_size = 16;
  bool cache_enabled = true;        // false = the "No Cache" arm
  /// Cap on KV pool blocks; 0 = derive from GPU memory minus weights.
  std::size_t kv_pool_blocks_override = 0;

  /// Prefix-cache tier hierarchy (cache::CacheConfig::tiers). 1 = flat
  /// GPU-only cache, bit-exact to the pre-tier build. 2 adds a host-DRAM
  /// tier, 3 adds disk below it: GPU pressure demotes cold blocks down
  /// instead of destroying them, a lower-tier hit is promoted back before
  /// reuse, and the admission charges CostModel::promote_seconds into
  /// TTFT (DESIGN.md §13).
  std::size_t cache_tiers = 1;
  /// Host / disk tier capacities in blocks; 0 = unlimited. Only read when
  /// the corresponding tier exists.
  std::size_t host_capacity_blocks = 0;
  std::size_t disk_capacity_blocks = 0;

  /// Priority preemption (vLLM-style recompute mode): when the
  /// highest-priority admissible request is blocked on KV blocks or batch
  /// slots, the session may evict the lowest-effective-class running
  /// request (strictly below the candidate's class), releasing its KV and
  /// re-queueing it; resume replays prefill through the prefix cache.
  /// Admission is ALWAYS strict-priority (ties FIFO) — with uniform
  /// priorities that is plain FIFO, so this flag only gates eviction.
  bool preemption = false;
  /// Anti-starvation aging horizon (seconds of waiting per one-class
  /// promotion; see llm::aged_class). 0 disables aging. Applies to both
  /// admission order and preemption-victim selection.
  double priority_aging_seconds = 0.0;

  /// Chunked prefill (Sarathi/vLLM-style continuous batching). 0 =
  /// monolithic admission prefill: an admission runs its ENTIRE uncached
  /// prompt prefill before the next decode step, so every running
  /// request's next token stalls behind it — bit-exactly the historical
  /// behavior. > 0 = an admission enters a prefill phase instead and each
  /// step() interleaves prefill chunks of at most this many tokens with
  /// one decode token for decode-phase requests, bounding the stall any
  /// decode sits through. Newly completed chunks admit() into the prefix
  /// cache at block-aligned boundaries, so a long prompt becomes reusable
  /// by followers while it is still prefilling.
  std::size_t prefill_chunk_tokens = 0;
  /// Total prefill tokens step() may spend across ALL prefill-phase
  /// requests per step (each request still capped at
  /// prefill_chunk_tokens, one chunk per request per step). 0 = same as
  /// prefill_chunk_tokens, i.e. one chunk per step. Ignored when
  /// prefill_chunk_tokens == 0.
  std::size_t step_token_budget = 0;

  /// Shortest-predicted-job-first admission: within the best effective
  /// priority class, admit the pending request with the smallest
  /// Request::predicted_output_tokens (ties FIFO by sequence) instead of
  /// strict FIFO. Class order and aging are unchanged — SPJF only
  /// reorders inside one effective class, so aging still promotes a
  /// starved request out of the contested class. When every prediction
  /// is 0 (predictor disabled) the order degenerates to exact FIFO,
  /// bit-identical to spjf == false.
  bool spjf = false;
};

struct EngineMetrics {
  double total_seconds = 0.0;
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;
  std::uint64_t prompt_tokens = 0;
  std::uint64_t cached_prompt_tokens = 0;
  std::uint64_t computed_prompt_tokens = 0;
  std::uint64_t output_tokens = 0;
  std::uint64_t decode_steps = 0;
  double sum_batch_size = 0.0;  // decode-phase requests, over decode steps
  /// Peak concurrent admitted requests (includes prefill-phase requests
  /// under chunking; equals the peak decode batch when chunking is off).
  std::size_t peak_batch_size = 0;
  /// Preemption accounting. prompt/cached/computed counters above stay
  /// exactly-once per request (first admission); replay work after a
  /// preemption is booked here instead, so
  ///   total prefill work = computed_prompt_tokens + recompute_prefill_tokens.
  std::uint64_t preemptions = 0;
  std::uint64_t recompute_prefill_tokens = 0;
  double recompute_prefill_seconds = 0.0;  // included in prefill_seconds
  /// Chunked-prefill accounting: chunk executions and the tokens they
  /// processed. Each chunk's tokens split by prompt position: positions
  /// prefilled for the first time book computed_prompt_tokens (exactly
  /// once per position across preempt/resume cycles, so
  /// cached + computed == prompt holds even under preemption); re-covered
  /// positions and generated-token replay book the recompute counters.
  /// chunked_prefill_tokens is the union, so with chunking on:
  ///   chunked_prefill_tokens ==
  ///       computed_prompt_tokens + recompute_prefill_tokens.
  std::uint64_t prefill_chunks = 0;
  std::uint64_t chunked_prefill_tokens = 0;
  /// Longest clock advance a decode-phase request sat through in one
  /// step() — the worst gap between two consecutive tokens of any running
  /// request. Monolithic admission prefill shows up here as multi-second
  /// stalls under long-prompt traffic; chunking bounds it.
  double max_decode_stall_seconds = 0.0;
  /// Tiered-cache promotion pricing (always 0 on a flat cache): blocks a
  /// lookup pulled back from the host / disk tier, and the transfer time
  /// admissions charged into the clock (hence into TTFT) for them. The
  /// cache's own promoted_blocks counter additionally includes free
  /// recompute refreshes; these fields are the PRICED subset.
  std::uint64_t promoted_host_blocks = 0;
  std::uint64_t promoted_disk_blocks = 0;
  double promote_seconds = 0.0;
  cache::CacheStats cache;

  double prompt_cache_hit_rate() const {
    return prompt_tokens ? static_cast<double>(cached_prompt_tokens) /
                               static_cast<double>(prompt_tokens)
                         : 0.0;
  }
  double mean_batch_size() const {
    return decode_steps ? sum_batch_size / static_cast<double>(decode_steps)
                        : 0.0;
  }
};

struct BatchRunResult {
  std::vector<RequestResult> results;  // completion order
  EngineMetrics metrics;
};

class ServingEngine {
 public:
  ServingEngine(CostModel cost, EngineConfig config);

  /// Run a whole batch job: requests are issued in the given order (the
  /// order is the paper's optimization variable). Returns per-request
  /// results and aggregate metrics. The engine is reusable; each run
  /// starts with a cold cache.
  BatchRunResult run(const std::vector<Request>& requests);

  /// Incremental execution (online serving) uses EngineSession
  /// (engine_session.hpp); run() is the submit-everything-then-drain
  /// special case of that state machine.
  ///
  /// Run against a caller-owned cache, which persists across calls — the
  /// paper's multi-LLM queries hit one long-lived server, so the second
  /// invocation can reuse blocks the first left behind. The cache must
  /// have been created with this engine's block size; its own capacity
  /// should be unlimited (the engine enforces the KV budget).
  BatchRunResult run(const std::vector<Request>& requests,
                     cache::PrefixCache& cache);

  /// A cache suitable for session use with this engine. `lock_stripes`
  /// follows CacheConfig: 0 (the default) builds the single-threaded,
  /// lock-free cache; S > 0 builds a thread-safe striped cache for
  /// runtimes whose worker threads share cache probes with a driver
  /// (serve/threaded_fleet.hpp).
  cache::PrefixCache make_session_cache(std::size_t lock_stripes = 0) const;

  const CostModel& cost_model() const { return cost_; }
  const EngineConfig& config() const { return config_; }
  /// KV pool capacity in blocks actually used for runs.
  std::size_t kv_pool_blocks() const { return pool_blocks_; }

 private:
  CostModel cost_;
  EngineConfig config_;
  std::size_t pool_blocks_ = 0;
};

}  // namespace llmq::llm
