#pragma once
// Inference requests and per-request results.

#include <cstddef>
#include <cstdint>
#include <string>

#include "tokenizer/tokenizer.hpp"

namespace llmq::llm {

struct Request {
  std::uint64_t id = 0;
  tokenizer::TokenSeq prompt;
  std::size_t output_tokens = 1;  // decode length (known for simulation)
  /// Opaque tag the caller can use to map results back to table rows.
  std::uint64_t row_tag = 0;
};

struct RequestResult {
  std::uint64_t id = 0;
  std::uint64_t row_tag = 0;
  std::size_t prompt_tokens = 0;
  std::size_t cached_tokens = 0;    // prompt tokens served from KV cache
  std::size_t computed_tokens = 0;  // prompt tokens actually prefilled
  std::size_t output_tokens = 0;
  double admit_time = 0.0;          // simulated seconds (post-prefill)
  double first_token_time = 0.0;    // end of the decode step emitting token 1
  double finish_time = 0.0;
};

}  // namespace llmq::llm
