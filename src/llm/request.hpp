#pragma once
// Inference requests, priority classes, and per-request results.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "tokenizer/tokenizer.hpp"

namespace llmq::llm {

/// Scheduling class of a request. Lower value = more urgent. Interactive
/// rows are latency-critical (a user is waiting on TTFT), Standard is the
/// default, Batch is throughput traffic (analytics scans) that tolerates
/// delay. The engine admits strictly by class (ties FIFO) and — when
/// preemption is enabled — lets an admitted higher class evict the
/// lowest-class running request when KV blocks or batch slots are short.
enum class PriorityClass : std::uint8_t {
  Interactive = 0,
  Standard = 1,
  Batch = 2,
};

inline constexpr std::size_t kNumPriorityClasses = 3;

std::string to_string(PriorityClass c);
std::optional<PriorityClass> priority_from_string(const std::string& name);

/// Anti-starvation aging: a request that has waited `waited_seconds` is
/// promoted one class per full `aging_seconds` elapsed, clamped at
/// Interactive. `aging_seconds <= 0` disables aging (returns `base`).
/// With aging on, every Batch request eventually competes as Interactive,
/// where nothing can preempt it and FIFO tie-breaking (it has the oldest
/// sequence number) admits it first — the eventual-completion guarantee
/// the preemption property tests pin.
PriorityClass aged_class(PriorityClass base, double waited_seconds,
                         double aging_seconds);

struct Request {
  std::uint64_t id = 0;
  tokenizer::TokenSeq prompt;
  std::size_t output_tokens = 1;  // decode length (known for simulation)
  /// Opaque tag the caller can use to map results back to table rows.
  std::uint64_t row_tag = 0;
  /// Scheduling class (see PriorityClass). Standard preserves the classic
  /// FIFO admission behavior when every request carries it.
  PriorityClass priority = PriorityClass::Standard;
  /// Predicted decode length (serve::LengthPredictor). 0 = no prediction;
  /// with EngineConfig::spjf set, nonzero predictions order admission
  /// within an effective priority class (shortest first, ties FIFO). The
  /// engine never reads output_tokens for scheduling — the simulation's
  /// oracle length stays hidden from the policy, like a real server.
  std::size_t predicted_output_tokens = 0;
};

struct RequestResult {
  std::uint64_t id = 0;
  std::uint64_t row_tag = 0;
  std::size_t prompt_tokens = 0;
  std::size_t cached_tokens = 0;    // prompt tokens served from KV cache
  std::size_t computed_tokens = 0;  // prompt tokens actually prefilled
  std::size_t output_tokens = 0;
  double admit_time = 0.0;          // simulated seconds (post-prefill)
  double first_token_time = 0.0;    // end of the decode step emitting token 1
  double finish_time = 0.0;
  PriorityClass priority = PriorityClass::Standard;
  /// Times this request was preempted (KV released, later resumed).
  std::size_t preemptions = 0;
  /// Prefill tokens spent replaying this request after preemption: the
  /// prompt suffix the cache no longer covered plus its already-generated
  /// tokens. Zero when never preempted. Kept separate from
  /// cached/computed_tokens, which describe the FIRST admission only, so
  /// prompt accounting stays exactly-once across preempt/resume cycles.
  std::uint64_t recomputed_tokens = 0;
};

}  // namespace llmq::llm
