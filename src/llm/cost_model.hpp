#pragma once
// Analytical inference cost model.
//
// Prefill is compute-bound: processing t new tokens costs ~2*P FLOPs per
// token in the linear layers plus attention FLOPs that grow with context
// (the quadratic term the PHC objective's squared lengths approximate).
// Cached prefix tokens skip both — that is the entire mechanism the paper
// exploits. Decode is bandwidth-bound: every step reads the weights once
// for the whole batch plus each sequence's KV cache, so prefix sharing
// also shrinks decode-time memory traffic and admits larger batches.

#include <cstddef>
#include <vector>

#include "llm/gpu_spec.hpp"
#include "llm/model_spec.hpp"

namespace llmq::llm {

class CostModel {
 public:
  CostModel(ModelSpec model, GpuSpec gpu)
      : model_(std::move(model)), gpu_(std::move(gpu)) {}

  const ModelSpec& model() const { return model_; }
  const GpuSpec& gpu() const { return gpu_; }

  /// One interconnect link of the KV tier hierarchy (DESIGN.md §13):
  /// effective bandwidth plus a fixed per-transfer setup latency.
  struct TierLink {
    double bandwidth = 0.0;  // bytes/s
    double latency = 0.0;    // seconds, paid once per transfer batch
  };

  /// KV transfer links for tiered prefix caches. Host ~= PCIe gen4 x16
  /// effective (~25 GB/s); disk ~= a datacenter NVMe read (~3.5 GB/s).
  /// Mutable by benches/tests that sweep the hierarchy.
  TierLink host_link{25.0e9, 50.0e-6};
  TierLink disk_link{3.5e9, 100.0e-6};

  /// Seconds to pull `host_blocks` + `disk_blocks` KV blocks (of
  /// `block_size` tokens each) back into GPU memory — what a lower-tier
  /// prefix hit costs before prefill can reuse it. Each source tier pays
  /// its link latency once plus bytes over bandwidth; 0 when nothing
  /// moved, so flat caches never charge.
  double promote_seconds(std::size_t host_blocks, std::size_t disk_blocks,
                         std::size_t block_size) const;

  /// FLOPs to prefill `new_tokens` given that the sequence already has
  /// `cached_tokens` of context in the KV cache (total length afterwards =
  /// cached_tokens + new_tokens).
  double prefill_flops(std::size_t new_tokens,
                       std::size_t cached_tokens) const;

  /// Seconds to prefill (compute-bound).
  double prefill_seconds(std::size_t new_tokens,
                         std::size_t cached_tokens) const;

  /// Seconds to prefill `new_tokens` in chunks of at most `chunk_tokens`,
  /// each chunk attending to the context grown by its predecessors
  /// (cached_tokens + progress). The attended-position sum telescopes, so
  /// the total FLOPs equal the monolithic prefill exactly — chunking
  /// changes WHEN the work runs (interleaved with decode steps, bounding
  /// decode stalls), not how much there is. `chunk_tokens == 0` means
  /// unchunked (one piece). Exposed so benches and tests can price a
  /// chunk schedule without stepping an engine.
  double chunked_prefill_seconds(std::size_t new_tokens,
                                 std::size_t cached_tokens,
                                 std::size_t chunk_tokens) const;

  /// Seconds for one decode step of a batch whose sequences have the given
  /// context lengths (prompt + generated so far). max(bandwidth, compute).
  double decode_step_seconds(const std::vector<std::size_t>& context_lens) const;

  /// KV bytes for n tokens.
  double kv_bytes(std::size_t n_tokens) const {
    return model_.kv_bytes_per_token() * static_cast<double>(n_tokens);
  }

  /// KV-pool capacity in tokens after the weights are resident. Zero when
  /// the model does not fit.
  std::size_t kv_pool_tokens() const;

  /// Blocks of `block_size` tokens the pool holds.
  std::size_t kv_pool_blocks(std::size_t block_size) const {
    return kv_pool_tokens() / block_size;
  }

 private:
  ModelSpec model_;
  GpuSpec gpu_;
};

/// KV pool size (in blocks) for a run scaled to `fraction` of the
/// GPU-derived capacity, floored so one long prompt (~4K tokens) always
/// fits. Scaled-down experiments must scale the cache with the data: the
/// paper's regime is a table orders of magnitude larger than KV memory,
/// and an unscaled cache hides the reordering effect. Shared by the batch
/// executor (query::ExecConfig) and the online server (serve::OnlineConfig).
std::size_t scaled_kv_pool_blocks(const ModelSpec& model, const GpuSpec& gpu,
                                  std::size_t block_size, double fraction);

}  // namespace llmq::llm
