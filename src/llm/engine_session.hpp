#pragma once
// Incremental stepping interface to the serving engine.
//
// ServingEngine::run() executes a batch job whose request list is fully
// known up front. Online serving (src/serve/) cannot use that shape:
// arrivals trickle in over simulated time and must interleave with
// execution. EngineSession exposes the same discrete-event mechanics as
// one admit/step/drain state machine:
//
//   * submit()      — queue a request for admission (any time);
//   * step()        — admit while memory and batch slots allow (advancing
//                     the clock by prefill), then run ONE decode step and
//                     retire completed requests;
//   * drain()       — step until everything submitted has finished;
//   * advance_to()  — move the clock forward across idle gaps between
//                     arrivals (only legal when nothing is in flight);
//   * preempt()/resume() — pause a running request (release its KV:
//                     unpin the cached prefix, drop the private
//                     uncached-suffix + generated blocks) and later
//                     re-queue it for admission.
//
// Admission is strict-priority over PriorityClass (FIFO within a class,
// optionally aged — see EngineConfig), which reduces to plain FIFO when
// every request carries the default class. With EngineConfig::preemption
// the admission loop preempts automatically: a blocked higher-class
// candidate evicts the lowest-effective-class running request and the
// victim re-queues itself (preempt + immediate resume). Resumed requests
// replay prefill through the prefix cache — recompute cost is the prompt
// suffix the cache no longer covers plus the tokens already generated —
// and every per-request and cache-stat counter stays exactly-once across
// arbitrary preempt/resume cycles (see EngineMetrics).
//
// ServingEngine::run() is implemented on top of this class, so the batch
// and online paths share one execution model; a whole-batch run is exactly
// "submit everything, then drain".

#include <deque>
#include <vector>

#include "llm/engine.hpp"

namespace llmq::llm {

class EngineSession {
 public:
  /// The cache must have been created compatible with the engine's block
  /// size (see ServingEngine::make_session_cache) and outlive the session.
  /// Throws if the model does not fit on the configured GPU.
  EngineSession(const ServingEngine& engine, cache::PrefixCache& cache);

  /// Queue a request for admission. Takes a copy: online requests are
  /// materialized from a stream, not a caller-owned batch vector.
  void submit(Request req);

  /// Admit queued requests (strict effective-priority order, FIFO within
  /// a class) while KV memory and batch slots allow. Each admission
  /// advances the clock by its prefill time. With preemption enabled, a
  /// blocked candidate may evict strictly-lower-class running requests
  /// (which re-queue for resume). Returns the number admitted. Throws if
  /// a request cannot fit in KV memory even with an otherwise empty
  /// engine.
  std::size_t try_admit();

  /// Preempt the running request `id`: unpins its cached prefix path,
  /// drops its private (prompt-tail + generated) KV blocks, and parks it.
  /// Generated tokens are kept — resume replays them as prefill, it does
  /// not re-decode them. Returns false when `id` is not running. Parked
  /// requests do NOT count as work (has_work/drain ignore them): whoever
  /// pauses owns calling resume().
  bool preempt(std::uint64_t id);

  /// Re-queue a parked request for admission. Its next admission runs
  /// prefill through the cache (recompute = uncached prompt suffix +
  /// generated tokens) and counts NO additional lookup stats. Returns
  /// false when `id` is not parked.
  bool resume(std::uint64_t id);

  struct StepEvents {
    std::size_t admitted = 0;
    std::size_t preempted = 0;  // auto-preemptions during this admission
    std::vector<RequestResult> completed;  // retired by this step
  };

  /// try_admit(), then one decode step across the running batch (one token
  /// per running request), then retire completed requests. A step with
  /// nothing admitted and nothing running returns empty events and leaves
  /// the clock untouched.
  StepEvents step();

  /// Step until all submitted requests have completed; returns their
  /// results in completion order.
  std::vector<RequestResult> drain();

  bool has_work() const { return !pending_.empty() || !running_.empty(); }
  std::size_t num_pending() const { return pending_.size(); }
  std::size_t num_running() const { return running_.size(); }
  std::size_t num_parked() const { return parked_.size(); }

  /// Prompt tokens submitted but not yet finished (pending + running) —
  /// the load signal replica routers balance on.
  std::size_t outstanding_prompt_tokens() const {
    return outstanding_prompt_tokens_;
  }

  /// The session's cache, exposed read-only so a router can probe it with
  /// PrefixCache::peek() without being able to mutate LRU state.
  const cache::PrefixCache& cache() const { return cache_; }

  /// Simulated seconds since the session started.
  double now() const { return now_; }

  /// Idle-wait: advance the clock to `t` (no-op when `t` is in the past).
  /// Only legal when nothing is pending or in flight — time inside a batch
  /// advances exclusively through decode steps.
  void advance_to(double t);

  /// Aggregate metrics since the session started. Cache stats are the
  /// delta over the session (the caller's cache may have prior history).
  EngineMetrics metrics() const;

 private:
  /// A queued request plus the state that must survive preempt/resume
  /// cycles. All carry-over fields are zero/initial on first submission.
  struct Pending {
    Request req;
    std::uint64_t seq = 0;       // submission order: FIFO tie-break forever
    double submit_time = 0.0;    // session clock at submit (aging base)
    bool resumed = false;        // re-queued by a preemption
    std::size_t generated = 0;   // tokens decoded before preemption
    std::size_t preemptions = 0;
    std::uint64_t recomputed_tokens = 0;
    std::size_t first_cached = 0;     // cached tokens at FIRST admission
    double first_admit_time = 0.0;    // FIRST admission (queue-delay base)
    double first_token_time = 0.0;    // 0 = no token emitted yet
  };

  struct Running {
    Request req;
    cache::CacheLease lease;
    std::size_t cached = 0;      // prompt tokens served from cache (first)
    std::size_t generated = 0;
    std::size_t context_len = 0; // prompt + generated
    std::size_t private_blocks = 0;
    double admit_time = 0.0;     // first admission
    double first_token_time = 0.0;
    // Preempt/resume carry-over (mirrors Pending).
    std::uint64_t seq = 0;
    double submit_time = 0.0;
    std::uint64_t admit_seq = 0;  // admission order: preemption tie-break
    std::size_t preemptions = 0;
    std::uint64_t recomputed_tokens = 0;
  };

  /// Effective class under aging (EngineConfig::priority_aging_seconds).
  PriorityClass effective_class(PriorityClass base, double submit_time) const;
  /// Index into pending_ of the next admission candidate: minimum
  /// (effective class, seq).
  std::size_t pick_next() const;
  /// Preempt the running request at `it` and return its re-queueable
  /// state (caller decides pending vs parked).
  Pending preempt_at(std::size_t idx);
  /// Auto-preempt the worst running victim strictly below `cls` (ties:
  /// most recently admitted, to minimize lost decode work); the victim
  /// re-queues into pending. False when no such victim exists.
  bool preempt_below(PriorityClass cls);

  const ServingEngine& engine_;
  cache::PrefixCache& cache_;
  cache::CacheStats stats_at_start_;
  std::deque<Pending> pending_;
  std::vector<Running> running_;
  std::vector<Pending> parked_;  // preempted via preempt(), awaiting resume()
  std::size_t private_in_use_ = 0;
  std::size_t outstanding_prompt_tokens_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_admit_seq_ = 0;
  std::size_t last_step_preempted_ = 0;
  double now_ = 0.0;
  EngineMetrics metrics_;
};

}  // namespace llmq::llm
