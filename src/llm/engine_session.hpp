#pragma once
// Incremental stepping interface to the serving engine.
//
// ServingEngine::run() executes a batch job whose request list is fully
// known up front. Online serving (src/serve/) cannot use that shape:
// arrivals trickle in over simulated time and must interleave with
// execution. EngineSession exposes the same discrete-event mechanics as
// one admit/step/drain state machine:
//
//   * submit()      — queue a request for admission (any time);
//   * step()        — admit while memory and batch slots allow (advancing
//                     the clock by prefill), then run ONE decode step and
//                     retire completed requests;
//   * drain()       — step until everything submitted has finished;
//   * advance_to()  — move the clock forward across idle gaps between
//                     arrivals (only legal when nothing is in flight).
//
// ServingEngine::run() is implemented on top of this class, so the batch
// and online paths share one execution model; a whole-batch run is exactly
// "submit everything, then drain".

#include <deque>
#include <vector>

#include "llm/engine.hpp"

namespace llmq::llm {

class EngineSession {
 public:
  /// The cache must have been created compatible with the engine's block
  /// size (see ServingEngine::make_session_cache) and outlive the session.
  /// Throws if the model does not fit on the configured GPU.
  EngineSession(const ServingEngine& engine, cache::PrefixCache& cache);

  /// Queue a request for admission. Takes a copy: online requests are
  /// materialized from a stream, not a caller-owned batch vector.
  void submit(Request req);

  /// Admit queued requests (in submit order) while KV memory and batch
  /// slots allow. Each admission advances the clock by its prefill time.
  /// Returns the number admitted. Throws if a request cannot fit in KV
  /// memory even with an otherwise empty engine.
  std::size_t try_admit();

  struct StepEvents {
    std::size_t admitted = 0;
    std::vector<RequestResult> completed;  // retired by this step
  };

  /// try_admit(), then one decode step across the running batch (one token
  /// per running request), then retire completed requests. A step with
  /// nothing admitted and nothing running returns empty events and leaves
  /// the clock untouched.
  StepEvents step();

  /// Step until all submitted requests have completed; returns their
  /// results in completion order.
  std::vector<RequestResult> drain();

  bool has_work() const { return !pending_.empty() || !running_.empty(); }
  std::size_t num_pending() const { return pending_.size(); }
  std::size_t num_running() const { return running_.size(); }

  /// Prompt tokens submitted but not yet finished (pending + running) —
  /// the load signal replica routers balance on.
  std::size_t outstanding_prompt_tokens() const {
    return outstanding_prompt_tokens_;
  }

  /// The session's cache, exposed read-only so a router can probe it with
  /// PrefixCache::peek() without being able to mutate LRU state.
  const cache::PrefixCache& cache() const { return cache_; }

  /// Simulated seconds since the session started.
  double now() const { return now_; }

  /// Idle-wait: advance the clock to `t` (no-op when `t` is in the past).
  /// Only legal when nothing is pending or in flight — time inside a batch
  /// advances exclusively through decode steps.
  void advance_to(double t);

  /// Aggregate metrics since the session started. Cache stats are the
  /// delta over the session (the caller's cache may have prior history).
  EngineMetrics metrics() const;

 private:
  struct Running {
    Request req;
    cache::CacheLease lease;
    std::size_t cached = 0;      // prompt tokens served from cache
    std::size_t generated = 0;
    std::size_t context_len = 0; // prompt + generated
    std::size_t private_blocks = 0;
    double admit_time = 0.0;
    double first_token_time = 0.0;
  };

  const ServingEngine& engine_;
  cache::PrefixCache& cache_;
  cache::CacheStats stats_at_start_;
  std::deque<Request> pending_;
  std::vector<Running> running_;
  std::size_t private_in_use_ = 0;
  std::size_t outstanding_prompt_tokens_ = 0;
  double now_ = 0.0;
  EngineMetrics metrics_;
};

}  // namespace llmq::llm
