#pragma once
// Incremental stepping interface to the serving engine.
//
// ServingEngine::run() executes a batch job whose request list is fully
// known up front. Online serving (src/serve/) cannot use that shape:
// arrivals trickle in over simulated time and must interleave with
// execution. EngineSession exposes the same discrete-event mechanics as
// one admit/step/drain state machine:
//
//   * submit()      — queue a request for admission (any time);
//   * step()        — admit while memory and batch slots allow, spend the
//                     chunked-prefill token budget (if enabled), then run
//                     ONE decode step across decode-phase requests and
//                     retire completed ones;
//   * drain()       — step until everything submitted has finished;
//   * advance_to()  — move the clock forward across idle gaps between
//                     arrivals (only legal when nothing is in flight);
//   * preempt()/resume() — pause a running request (release its KV:
//                     unpin the cached prefix, drop the private
//                     uncached-suffix + generated blocks) and later
//                     re-queue it for admission.
//
// Prefill scheduling (EngineConfig::prefill_chunk_tokens):
//
//   * 0 (monolithic) — an admission advances the clock by its ENTIRE
//     uncached-prompt prefill before the next decode step; every running
//     request's next token stalls behind it. Bit-exactly the historical
//     behavior — the replay-determinism and equivalence suites pin it.
//   * > 0 (chunked continuous batching) — an admission reserves memory
//     and enters a Prefill phase instead; each step() spends a token
//     budget (step_token_budget, default one chunk) walking prefill-phase
//     requests in strict effective-priority order (ties: admission
//     order), giving each at most one chunk of prefill_chunk_tokens,
//     then decodes one token for every decode-phase request. Completed
//     chunks admit() into the prefix cache at block-aligned boundaries,
//     so a half-prefilled long prompt is already reusable by followers,
//     and a preemption mid-prefill loses only the unadmitted tail.
//     Accounting stays exactly-once: prompt/cached counters book at
//     FIRST admission, and chunk tokens split by prompt position —
//     first-time positions book computed_prompt_tokens, re-covered
//     positions and generated-token replay book the recompute counters
//     (EngineMetrics::chunked_prefill_tokens is their union).
//
// Admission is strict-priority over PriorityClass (FIFO within a class,
// optionally aged — see EngineConfig), which reduces to plain FIFO when
// every request carries the default class. The pending set is kept as one
// seq-sorted FIFO deque per base class, so picking the next candidate is
// O(#classes) and admitting it pops a queue front — admission under a
// backlog of P requests is O(P), not the O(P^2) a linear-scan pick plus
// mid-deque erase would cost. With EngineConfig::preemption the admission
// loop preempts automatically: a blocked higher-class candidate evicts
// the lowest-effective-class running request and the victim re-queues
// itself (preempt + immediate resume). Resumed requests replay prefill
// through the prefix cache — recompute cost is the prompt suffix the
// cache no longer covers plus the tokens already generated — and every
// per-request and cache-stat counter stays exactly-once across arbitrary
// preempt/resume cycles (see EngineMetrics).
//
// ServingEngine::run() is implemented on top of this class, so the batch
// and online paths share one execution model; a whole-batch run is exactly
// "submit everything, then drain".

#include <array>
#include <deque>
#include <vector>

#include "llm/engine.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace llmq::llm {

class EngineSession {
 public:
  /// The cache must have been created compatible with the engine's block
  /// size (see ServingEngine::make_session_cache) and outlive the session.
  /// Throws if the model does not fit on the configured GPU.
  EngineSession(const ServingEngine& engine, cache::PrefixCache& cache);

  /// Queue a request for admission. Takes a copy: online requests are
  /// materialized from a stream, not a caller-owned batch vector.
  void submit(Request req);

  /// Admit queued requests (strict effective-priority order, FIFO within
  /// a class) while KV memory and batch slots allow. With monolithic
  /// prefill each admission advances the clock by its prefill time; with
  /// chunking an admission only reserves memory and enters the prefill
  /// phase (step() runs the chunks). With preemption enabled, a blocked
  /// candidate may evict strictly-lower-class running requests (which
  /// re-queue for resume). Returns the number admitted. Throws if a
  /// request cannot fit in KV memory even with an otherwise empty engine.
  std::size_t try_admit();

  /// Preempt the running request `id`: unpins its cached prefix path,
  /// drops its private (prompt-tail + generated) KV blocks, and parks it.
  /// Generated tokens are kept — resume replays them as prefill, it does
  /// not re-decode them. A victim preempted mid-prefill keeps the chunk
  /// progress already admitted into the cache (block-aligned) and loses
  /// only the unadmitted tail. Returns false when `id` is not running.
  /// Parked requests do NOT count as work (has_work/drain ignore them):
  /// whoever pauses owns calling resume().
  bool preempt(std::uint64_t id);

  /// Re-queue a parked request for admission. Its next admission runs
  /// prefill through the cache (recompute = uncached prompt suffix +
  /// generated tokens) and counts NO additional lookup stats. Returns
  /// false when `id` is not parked.
  bool resume(std::uint64_t id);

  struct StepEvents {
    std::size_t admitted = 0;
    std::size_t preempted = 0;  // auto-preemptions during this admission
    std::vector<RequestResult> completed;  // retired by this step
  };

  /// try_admit(), then (chunked mode) spend the prefill token budget, then
  /// one decode step across the decode-phase batch (one token per request)
  /// and retire completed requests. A step with nothing admitted and
  /// nothing running returns empty events and leaves the clock untouched.
  StepEvents step();

  /// Step until all submitted requests have completed; returns their
  /// results in completion order.
  std::vector<RequestResult> drain();

  bool has_work() const { return num_pending() > 0 || !running_.empty(); }
  std::size_t num_pending() const {
    std::size_t n = 0;
    for (const auto& q : pending_) n += q.size();
    return n;
  }
  std::size_t num_running() const { return running_.size(); }
  std::size_t num_parked() const { return parked_.size(); }

  /// Prompt tokens submitted but not yet finished (pending + running) —
  /// the load signal replica routers balance on.
  std::size_t outstanding_prompt_tokens() const {
    return outstanding_prompt_tokens_;
  }

  /// The session's cache, exposed read-only so a router can probe it with
  /// PrefixCache::peek() without being able to mutate LRU state.
  const cache::PrefixCache& cache() const { return cache_; }

  /// Simulated seconds since the session started.
  double now() const { return now_; }

  /// Idle-wait: advance the clock to `t` (no-op when `t` is in the past).
  /// Only legal when nothing is pending or in flight — time inside a batch
  /// advances exclusively through decode steps.
  void advance_to(double t);

  /// Aggregate metrics since the session started. Cache stats are the
  /// delta over the session (the caller's cache may have prior history).
  EngineMetrics metrics() const;

  /// Bind an event sink (obs/trace.hpp) under track id `replica`; also
  /// binds the session's cache (with this session's clock) so cache
  /// events land on the same track. nullptr disables emission — the
  /// default, and the only cost then is one branch per emission site.
  /// Emission never mutates session state: a traced run's results are
  /// bit-identical to an untraced run's (tests/obs pins this).
  void set_trace(obs::TraceSink* sink, std::uint32_t replica) {
    trace_ = sink;
    trace_replica_ = replica;
    cache_.set_trace(sink, replica, &now_);
  }

  /// Instantaneous gauge snapshot for time-series sampling (obs).
  obs::GaugeSample gauges() const;

 private:
  /// A queued request plus the state that must survive preempt/resume
  /// cycles. All carry-over fields are zero/initial on first submission.
  struct Pending {
    Request req;
    std::uint64_t seq = 0;       // submission order: FIFO tie-break forever
    double submit_time = 0.0;    // session clock at submit (aging base)
    bool resumed = false;        // re-queued by a preemption
    std::size_t generated = 0;   // tokens decoded before preemption
    std::size_t preemptions = 0;
    std::uint64_t recomputed_tokens = 0;
    std::size_t first_cached = 0;     // cached tokens at FIRST admission
    double first_admit_time = 0.0;    // FIRST admission (queue-delay base)
    double first_token_time = 0.0;    // 0 = no token emitted yet
    /// Furthest prompt position ever covered (initial cache hit + chunk
    /// progress) across admissions. Chunk work above this line is
    /// first-pass (books computed_prompt_tokens); at or below it — and
    /// any generated-token replay — is recompute. Keeps
    /// cached + computed == prompt exact across preempt/resume cycles
    /// under chunking.
    std::size_t max_prefilled = 0;
  };

  /// Execution phase of an admitted request. Monolithic admissions enter
  /// Decode directly (their prefill ran inside try_admit); chunked
  /// admissions start in Prefill and cross over once their chunk schedule
  /// completes. Only Decode-phase requests join decode steps.
  enum class Phase : std::uint8_t { Prefill, Decode };

  struct Running {
    Request req;
    cache::CacheLease lease;
    std::size_t cached = 0;      // prompt tokens served from cache (first)
    std::size_t generated = 0;
    std::size_t context_len = 0; // prompt + generated
    std::size_t private_blocks = 0;
    double admit_time = 0.0;     // first admission
    double first_token_time = 0.0;
    // Preempt/resume carry-over (mirrors Pending).
    std::uint64_t seq = 0;
    double submit_time = 0.0;
    std::uint64_t admit_seq = 0;  // admission order: preemption tie-break
    std::size_t preemptions = 0;
    std::uint64_t recomputed_tokens = 0;
    // Chunked-prefill phase state (Decode + zeros under monolithic mode).
    Phase phase = Phase::Decode;
    std::size_t prefill_done = 0;    // tokens chunk-prefilled this admission
    std::size_t prefill_target = 0;  // uncached suffix + replayed generated
    std::size_t prefill_cached = 0;  // cached context at THIS admission
    std::size_t max_prefilled = 0;   // first-pass line (mirrors Pending)
    std::size_t shared_reserved = 0; // planned shared blocks not yet admitted
  };

  /// Effective class under aging (EngineConfig::priority_aging_seconds).
  PriorityClass effective_class(PriorityClass base, double submit_time) const;
  /// Queue a Pending in its base-class FIFO (seq-sorted: fresh submissions
  /// append in O(1); re-queued victims carry an old seq and sorted-insert).
  void enqueue_pending(Pending p);
  /// Index into pending_ of the queue whose front is the next admission
  /// candidate: minimum (effective class, seq) over queue fronts. Within a
  /// seq-sorted same-base-class queue the front dominates (oldest seq AND
  /// most-aged), so comparing fronts finds the global minimum — the same
  /// pick a full linear scan makes, in O(#classes). kNumPriorityClasses
  /// when everything is empty.
  std::size_t pick_queue() const;
  /// The admission candidate's (queue, position). Without
  /// EngineConfig::spjf this is (pick_queue(), 0) — the front, exact
  /// FIFO. With spjf, the pick is the minimum (predicted_output_tokens,
  /// seq) over every pending request whose effective class equals the
  /// global best: within a seq-sorted base-class queue the effective
  /// class is non-increasing in urgency along the deque (older = more
  /// aged), so the equal-class candidates form a contiguous prefix and
  /// the scan stops at the first element of a worse effective class.
  /// queue == kNumPriorityClasses when everything is empty.
  struct PickedCandidate {
    std::size_t queue = kNumPriorityClasses;
    std::size_t pos = 0;
  };
  PickedCandidate pick_candidate() const;
  /// Preempt the running request at `idx` and return its re-queueable
  /// state (caller decides pending vs parked). `automatic` only tags the
  /// trace event (engine-initiated vs explicit preempt()).
  Pending preempt_at(std::size_t idx, bool automatic);
  /// Auto-preempt the worst running victim strictly below `cls` (ties:
  /// most recently admitted, to minimize lost decode work); the victim
  /// re-queues into pending. False when no such victim exists.
  bool preempt_below(PriorityClass cls);
  /// Chunked mode: spend this step's prefill token budget over
  /// prefill-phase requests in strict effective-priority order, ties by
  /// admission order (one chunk each) — an interactive arrival's chunks
  /// preempt the remainder of a batch prompt's chunk schedule.
  void run_prefill_chunks();
  /// Prefill complete: admit the full prompt, release the remaining
  /// shared-block reservation, enter the decode phase.
  void finish_prefill(Running& r);
  /// Re-derive `r`'s outstanding shared-block reservation from what its
  /// lease now covers (monotonically shrinking; engine-budget bookkeeping
  /// for blocks planned at admission but not yet admitted to the cache).
  void update_reservation(Running& r);

  const ServingEngine& engine_;
  cache::PrefixCache& cache_;
  cache::CacheStats stats_at_start_;
  /// Pending admissions, one seq-sorted FIFO per BASE class. Aging only
  /// ever promotes the longest-waiting (lowest-seq) element first, so the
  /// per-queue seq order is also effective-class order and pick_queue()
  /// needs only the fronts.
  std::array<std::deque<Pending>, kNumPriorityClasses> pending_;
  std::vector<Running> running_;
  std::vector<Pending> parked_;  // preempted via preempt(), awaiting resume()
  std::size_t private_in_use_ = 0;
  /// Shared blocks reserved by in-flight chunked prefills that their
  /// incremental admits have not yet moved into the cache. Counted against
  /// the KV pool so concurrent admissions cannot oversubscribe the
  /// headroom a prefilling prompt is still growing into. Always 0 under
  /// monolithic prefill (admission admits the full prompt immediately).
  std::size_t reserved_shared_ = 0;
  std::size_t outstanding_prompt_tokens_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_admit_seq_ = 0;
  std::size_t last_step_preempted_ = 0;
  double now_ = 0.0;
  EngineMetrics metrics_;
  /// Per-step scratch (capacity reused across steps so the steady-state
  /// step loop allocates nothing): prefill ordering for the chunk budget
  /// and the decode-phase context-length batch.
  std::vector<std::size_t> prefill_order_;
  std::vector<std::size_t> decode_ctx_;

  /// One branch when tracing is off; no allocation either way.
  void trace(obs::EventKind kind, std::uint64_t id, std::uint64_t a,
             std::uint64_t b, std::uint64_t c, PriorityClass cls) const {
    if (!trace_) return;
    trace_->emit({kind, static_cast<std::uint8_t>(cls), trace_replica_,
                  now_, id, a, b, c});
  }
  obs::TraceSink* trace_ = nullptr;
  std::uint32_t trace_replica_ = 0;
};

}  // namespace llmq::llm
