#include "llm/task_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/wordbank.hpp"

namespace llmq::llm {

ModelProfile profile_llama3_8b() {
  ModelProfile p;
  p.name = "Meta-Llama-3-8B-Instruct";
  p.base_accuracy = 0.78;
  p.position_susceptibility = 1.0;
  p.seed = 0x8b8b8b;
  return p;
}

ModelProfile profile_llama3_70b() {
  ModelProfile p;
  p.name = "Meta-Llama-3-70B-Instruct";
  p.base_accuracy = 0.88;
  p.position_susceptibility = 0.15;
  p.seed = 0x707070;
  return p;
}

ModelProfile profile_gpt4o() {
  ModelProfile p;
  p.name = "GPT-4o";
  p.base_accuracy = 0.90;
  // Slightly negative: GPT-4o in the paper trends a hair *worse* under
  // GGR's late-key-field orderings (Fig 6c, -3..+4 points).
  p.position_susceptibility = -0.10;
  p.seed = 0x40404040;
  return p;
}

double TaskModel::success_probability(double key_field_frac,
                                      double task_sensitivity) const {
  // Centered effect: frac 0.5 is neutral; the shift saturates at
  // +-(susceptibility * sensitivity / 2).
  const double shift = profile_.position_susceptibility * task_sensitivity *
                       (key_field_frac - 0.5);
  return std::clamp(profile_.base_accuracy + shift, 0.01, 0.999);
}

std::string TaskModel::answer(std::string_view row_key, std::string_view truth,
                              const std::vector<std::string>& alternatives,
                              double key_field_frac,
                              double task_sensitivity) const {
  const double p = success_probability(key_field_frac, task_sensitivity);
  // Latent difficulty of this row for this model: fixed across orderings,
  // so original-vs-GGR comparisons are paired.
  const std::uint64_t h = util::hash_combine(
      util::hash64(row_key.data(), row_key.size()), profile_.seed);
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
  if (u < p) return std::string(truth);
  // Deterministic wrong answer.
  for (const auto& alt : alternatives)
    if (alt != truth) return alt;
  return std::string(truth) + " (garbled)";
}

std::size_t TaskModel::output_tokens(std::string_view row_key,
                                     double mean) const {
  const std::uint64_t h = util::hash_combine(
      util::hash64(row_key.data(), row_key.size()),
      util::hash_combine(profile_.seed, 0xf00dULL));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double spread = 0.75 + 0.5 * u;  // uniform in [0.75, 1.25]
  return static_cast<std::size_t>(std::max(1.0, std::round(mean * spread)));
}

std::string TaskModel::generate_text(std::string_view row_key,
                                     double mean_tokens) const {
  const std::size_t target = output_tokens(row_key, mean_tokens);
  util::Rng rng(util::hash_combine(
      util::hash64(row_key.data(), row_key.size()),
      util::hash_combine(profile_.seed, 0x9e9e9eULL)));
  return util::default_wordbank().text_of_tokens(rng, target);
}

}  // namespace llmq::llm
