#include "llm/model_spec.hpp"

namespace llmq::llm {

ModelSpec llama3_1b() {
  ModelSpec m;
  m.name = "Llama-3.2-1B-Instruct";
  m.params = 1.24e9;
  m.n_layers = 16;
  m.hidden_dim = 2048;
  m.n_heads = 32;
  m.n_kv_heads = 8;
  m.head_dim = 64;
  return m;
}

ModelSpec llama3_8b() {
  ModelSpec m;
  m.name = "Meta-Llama-3-8B-Instruct";
  m.params = 8.03e9;
  m.n_layers = 32;
  m.hidden_dim = 4096;
  m.n_heads = 32;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  return m;
}

ModelSpec llama3_70b() {
  ModelSpec m;
  m.name = "Meta-Llama-3-70B-Instruct";
  m.params = 70.6e9;
  m.n_layers = 80;
  m.hidden_dim = 8192;
  m.n_heads = 64;
  m.n_kv_heads = 8;
  m.head_dim = 128;
  return m;
}

}  // namespace llmq::llm
