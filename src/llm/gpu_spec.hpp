#pragma once
// GPU hardware parameters.
//
// The paper evaluates on NVIDIA L4 (1x for 8B/1B, 8x tensor-parallel for
// 70B). We model a GPU as peak dense fp16 FLOPs, HBM bandwidth, and
// memory, with an MFU-style efficiency factor; tensor parallelism scales
// all three (communication overhead folded into the efficiency factor).

#include <cstddef>
#include <string>

namespace llmq::llm {

struct GpuSpec {
  std::string name;
  double peak_flops = 0.0;       // dense fp16 FLOP/s, per GPU
  double mem_bandwidth = 0.0;    // bytes/s, per GPU
  double memory_bytes = 0.0;     // per GPU
  std::size_t tensor_parallel = 1;
  double mfu = 0.5;              // achieved fraction of peak compute
  double bandwidth_util = 0.7;   // achieved fraction of peak bandwidth
  double memory_util = 0.9;      // fraction of memory usable for weights+KV

  double total_flops() const {
    return peak_flops * mfu * static_cast<double>(tensor_parallel);
  }
  double total_bandwidth() const {
    return mem_bandwidth * bandwidth_util *
           static_cast<double>(tensor_parallel);
  }
  double total_memory() const {
    return memory_bytes * memory_util * static_cast<double>(tensor_parallel);
  }
};

/// NVIDIA L4: 121 TFLOPs dense fp16, 300 GB/s, 24 GB.
GpuSpec l4();
/// 8x L4 with tensor parallelism (GCP g2-standard-48, paper Fig 5 setup).
GpuSpec l4_x8();

}  // namespace llmq::llm
