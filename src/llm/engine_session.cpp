#include "llm/engine_session.hpp"

#include <algorithm>
#include <stdexcept>

namespace llmq::llm {

namespace {
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

EngineSession::EngineSession(const ServingEngine& engine,
                             cache::PrefixCache& cache)
    : engine_(engine), cache_(cache), stats_at_start_(cache.stats()) {
  if (engine_.kv_pool_blocks() == 0)
    throw std::runtime_error(
        "ServingEngine: model does not fit on the configured GPU");
}

void EngineSession::submit(Request req) {
  outstanding_prompt_tokens_ += req.prompt.size();
  pending_.push_back(std::move(req));
}

std::size_t EngineSession::try_admit() {
  const EngineConfig& config = engine_.config();
  const std::size_t pool_blocks = engine_.kv_pool_blocks();
  const std::size_t bs = config.block_size;
  std::size_t admitted = 0;

  while (!pending_.empty() && running_.size() < config.max_batch_size) {
    Request& req = pending_.front();
    const std::size_t prompt_len = req.prompt.size();
    const std::size_t output_len = std::max<std::size_t>(1, req.output_tokens);

    cache::CacheLease lease = cache_.lookup(req.prompt);
    const std::size_t cached = lease.cached_tokens;

    // Memory plan: full prompt blocks beyond the cached path move into
    // the shared cache at admit(); the partial prompt tail plus all
    // output tokens are private to this request.
    const std::size_t new_shared =
        config.cache_enabled ? cache_.blocks_needed(prompt_len, cached) : 0;
    const std::size_t private_tokens =
        (config.cache_enabled ? prompt_len % bs : prompt_len) + output_len;
    const std::size_t private_blocks = ceil_div(private_tokens, bs);
    const std::size_t needed = new_shared + private_blocks;

    std::size_t used = cache_.resident_blocks() + private_in_use_;
    if (used + needed > pool_blocks) {
      const std::size_t shortfall = used + needed - pool_blocks;
      cache_.evict(shortfall);
      used = cache_.resident_blocks() + private_in_use_;
    }
    if (used + needed > pool_blocks) {
      // The request is not admitted this step; the retry will look up
      // again, so this lookup must not count (a request that waits K
      // steps would otherwise register K+1 lookups and K+1 hit-token
      // credits, inflating every cache-stats ratio under memory
      // pressure — exactly the regime a session cache shared across
      // multi-LLM stages is in when stage 2 starts against a full pool).
      cache_.cancel_lookup(lease, prompt_len);
      if (running_.empty())
        throw std::runtime_error(
            "ServingEngine: request cannot fit in KV memory even alone");
      break;  // wait for completions to free memory
    }

    // Prefill the uncached suffix (quadratic attention against the cached
    // context included).
    const std::size_t uncached = prompt_len - cached;
    const double pf = engine_.cost_model().prefill_seconds(uncached, cached);
    now_ += pf;
    metrics_.prefill_seconds += pf;
    metrics_.prompt_tokens += prompt_len;
    metrics_.cached_prompt_tokens += cached;
    metrics_.computed_prompt_tokens += uncached;

    if (config.cache_enabled) cache_.admit(req.prompt, lease);
    private_in_use_ += private_blocks;

    Running r;
    r.req = std::move(req);
    r.lease = std::move(lease);
    r.cached = cached;
    r.context_len = prompt_len;
    r.private_blocks = private_blocks;
    r.admit_time = now_;
    running_.push_back(std::move(r));
    pending_.pop_front();
    ++admitted;
  }
  return admitted;
}

EngineSession::StepEvents EngineSession::step() {
  StepEvents ev;
  ev.admitted = try_admit();
  if (running_.empty()) return ev;

  // One decode step across the whole batch.
  std::vector<std::size_t> ctx;
  ctx.reserve(running_.size());
  for (const auto& r : running_) ctx.push_back(r.context_len);
  const double dt = engine_.cost_model().decode_step_seconds(ctx);
  now_ += dt;
  metrics_.decode_seconds += dt;
  ++metrics_.decode_steps;
  metrics_.sum_batch_size += static_cast<double>(running_.size());
  metrics_.peak_batch_size =
      std::max(metrics_.peak_batch_size, running_.size());
  metrics_.output_tokens += running_.size();

  // Advance and retire completed requests.
  for (auto it = running_.begin(); it != running_.end();) {
    ++it->generated;
    ++it->context_len;
    if (it->generated == 1) it->first_token_time = now_;
    const std::size_t want = std::max<std::size_t>(1, it->req.output_tokens);
    if (it->generated >= want) {
      RequestResult res;
      res.id = it->req.id;
      res.row_tag = it->req.row_tag;
      res.prompt_tokens = it->req.prompt.size();
      res.cached_tokens = it->cached;
      res.computed_tokens = res.prompt_tokens - it->cached;
      res.output_tokens = it->generated;
      res.admit_time = it->admit_time;
      res.first_token_time = it->first_token_time;
      res.finish_time = now_;
      ev.completed.push_back(res);
      cache_.release(it->lease);
      private_in_use_ -= it->private_blocks;
      outstanding_prompt_tokens_ -= res.prompt_tokens;
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  return ev;
}

std::vector<RequestResult> EngineSession::drain() {
  std::vector<RequestResult> out;
  while (has_work()) {
    StepEvents ev = step();
    out.insert(out.end(), ev.completed.begin(), ev.completed.end());
  }
  return out;
}

void EngineSession::advance_to(double t) {
  if (has_work())
    throw std::logic_error(
        "EngineSession::advance_to: clock advances only through decode "
        "steps while requests are in flight");
  now_ = std::max(now_, t);
}

EngineMetrics EngineSession::metrics() const {
  EngineMetrics m = metrics_;
  m.total_seconds = now_;
  // Per-session cache stats (delta against the cache's running totals).
  m.cache = cache_.stats();
  m.cache.lookups -= stats_at_start_.lookups;
  m.cache.hit_tokens -= stats_at_start_.hit_tokens;
  m.cache.lookup_tokens -= stats_at_start_.lookup_tokens;
  m.cache.inserted_blocks -= stats_at_start_.inserted_blocks;
  m.cache.evicted_blocks -= stats_at_start_.evicted_blocks;
  return m;
}

}  // namespace llmq::llm
