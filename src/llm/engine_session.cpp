#include "llm/engine_session.hpp"

#include <algorithm>
#include <stdexcept>

namespace llmq::llm {

namespace {
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

EngineSession::EngineSession(const ServingEngine& engine,
                             cache::PrefixCache& cache)
    : engine_(engine), cache_(cache), stats_at_start_(cache.stats()) {
  if (engine_.kv_pool_blocks() == 0)
    throw std::runtime_error(
        "ServingEngine: model does not fit on the configured GPU");
}

void EngineSession::submit(Request req) {
  outstanding_prompt_tokens_ += req.prompt.size();
  Pending p;
  p.req = std::move(req);
  p.seq = next_seq_++;
  p.submit_time = now_;
  pending_.push_back(std::move(p));
}

PriorityClass EngineSession::effective_class(PriorityClass base,
                                             double submit_time) const {
  return aged_class(base, now_ - submit_time,
                    engine_.config().priority_aging_seconds);
}

std::size_t EngineSession::pick_next() const {
  // Strict priority, FIFO within a class: minimum (effective class, seq).
  // The tie-break must be seq, not deque position — preempted victims
  // re-queue via push_back, so the deque is NOT in seq order once
  // preemption has fired, and an index tie-break would demote the oldest
  // victim behind every younger same-class request each cycle. With
  // uniform priorities and no preemption this picks index 0 — plain
  // FIFO, exactly the pre-priority behavior.
  std::size_t best = 0;
  PriorityClass best_cls =
      effective_class(pending_[0].req.priority, pending_[0].submit_time);
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    const PriorityClass cls =
        effective_class(pending_[i].req.priority, pending_[i].submit_time);
    if (cls < best_cls ||
        (cls == best_cls && pending_[i].seq < pending_[best].seq)) {
      best = i;
      best_cls = cls;
    }
  }
  return best;
}

EngineSession::Pending EngineSession::preempt_at(std::size_t idx) {
  Running& r = running_[idx];
  // Release the victim's KV: unpin its cached prefix path (the shared
  // blocks stay resident until LRU eviction needs them — that residue is
  // what makes resume cheap) and free its private blocks (prompt tail +
  // generated tokens — the "uncached suffix" recompute must rebuild).
  cache_.release(r.lease);
  private_in_use_ -= r.private_blocks;
  ++metrics_.preemptions;

  Pending p;
  p.req = std::move(r.req);
  p.seq = r.seq;
  p.submit_time = r.submit_time;
  p.resumed = true;
  p.generated = r.generated;
  p.preemptions = r.preemptions + 1;
  p.recomputed_tokens = r.recomputed_tokens;
  p.first_cached = r.cached;
  p.first_admit_time = r.admit_time;
  p.first_token_time = r.first_token_time;
  running_.erase(running_.begin() +
                 static_cast<std::ptrdiff_t>(idx));
  return p;
}

bool EngineSession::preempt_below(PriorityClass cls) {
  // Victim: worst effective class strictly below `cls` (strictly — equal
  // classes never preempt each other, which is what makes the
  // preempt/resume cycle terminate); ties broken toward the most recent
  // admission, which has decoded the least and so wastes the least work.
  std::size_t victim = running_.size();
  for (std::size_t i = 0; i < running_.size(); ++i) {
    const PriorityClass c =
        effective_class(running_[i].req.priority, running_[i].submit_time);
    if (c <= cls) continue;
    if (victim == running_.size()) {
      victim = i;
      continue;
    }
    const PriorityClass vc = effective_class(running_[victim].req.priority,
                                             running_[victim].submit_time);
    if (c > vc || (c == vc && running_[i].admit_seq >
                                  running_[victim].admit_seq))
      victim = i;
  }
  if (victim == running_.size()) return false;
  ++last_step_preempted_;
  pending_.push_back(preempt_at(victim));
  return true;
}

bool EngineSession::preempt(std::uint64_t id) {
  for (std::size_t i = 0; i < running_.size(); ++i) {
    if (running_[i].req.id != id) continue;
    parked_.push_back(preempt_at(i));
    return true;
  }
  return false;
}

bool EngineSession::resume(std::uint64_t id) {
  for (std::size_t i = 0; i < parked_.size(); ++i) {
    if (parked_[i].req.id != id) continue;
    pending_.push_back(std::move(parked_[i]));
    parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

std::size_t EngineSession::try_admit() {
  const EngineConfig& config = engine_.config();
  const std::size_t pool_blocks = engine_.kv_pool_blocks();
  const std::size_t bs = config.block_size;
  std::size_t admitted = 0;
  last_step_preempted_ = 0;

  while (!pending_.empty()) {
    const std::size_t pick = pick_next();
    const PriorityClass cls = effective_class(pending_[pick].req.priority,
                                              pending_[pick].submit_time);
    if (running_.size() >= config.max_batch_size) {
      // Batch slots full. The head-of-line candidate may take a slot from
      // a strictly lower class; otherwise admission is over this step.
      if (!(config.preemption && preempt_below(cls))) break;
      continue;  // a slot freed (victim re-queued); re-pick
    }
    Pending& p = pending_[pick];
    Request& req = p.req;
    const std::size_t prompt_len = req.prompt.size();
    const std::size_t output_len = std::max<std::size_t>(1, req.output_tokens);

    // A fresh request's lookup counts stats; a preemption resume pins the
    // surviving prefix without recounting (exactly-once across cycles).
    cache::CacheLease lease = p.resumed ? cache_.resume_lookup(req.prompt)
                                        : cache_.lookup(req.prompt);
    const std::size_t cached = lease.cached_tokens;

    // Memory plan: full prompt blocks beyond the cached path move into
    // the shared cache at admit(); the partial prompt tail plus all
    // output tokens are private to this request. (For a resume the same
    // reservation covers already-generated tokens: they are part of the
    // output budget.)
    const std::size_t new_shared =
        config.cache_enabled ? cache_.blocks_needed(prompt_len, cached) : 0;
    const std::size_t private_tokens =
        (config.cache_enabled ? prompt_len % bs : prompt_len) + output_len;
    const std::size_t private_blocks = ceil_div(private_tokens, bs);
    const std::size_t needed = new_shared + private_blocks;

    std::size_t used = cache_.resident_blocks() + private_in_use_;
    if (used + needed > pool_blocks) {
      const std::size_t shortfall = used + needed - pool_blocks;
      cache_.evict(shortfall);
      used = cache_.resident_blocks() + private_in_use_;
    }
    if (used + needed > pool_blocks) {
      // The request is not admitted this step; the retry will probe
      // again, so this probe must not count (a request that waits K
      // steps would otherwise register K+1 lookups and K+1 hit-token
      // credits, inflating every cache-stats ratio under memory
      // pressure). A resumed request never counted its probe, so only
      // its pins are returned — cancel_lookup would double-subtract.
      if (p.resumed)
        cache_.release(lease);
      else
        cache_.cancel_lookup(lease, prompt_len);
      // Under priority preemption a blocked candidate may free memory by
      // evicting a strictly lower-class running request, then retry.
      if (config.preemption && preempt_below(cls)) continue;
      if (running_.empty())
        throw std::runtime_error(
            "ServingEngine: request cannot fit in KV memory even alone");
      break;  // wait for completions to free memory
    }

    // Prefill the uncached suffix (quadratic attention against the cached
    // context included). A resume also replays its generated tokens —
    // the recompute cost is exactly what the cache no longer covers.
    const std::size_t uncached = prompt_len - cached;
    const std::size_t prefill_tokens = uncached + p.generated;
    const double pf =
        engine_.cost_model().prefill_seconds(prefill_tokens, cached);
    now_ += pf;
    metrics_.prefill_seconds += pf;
    if (p.resumed) {
      metrics_.recompute_prefill_tokens += prefill_tokens;
      metrics_.recompute_prefill_seconds += pf;
      p.recomputed_tokens += prefill_tokens;
    } else {
      metrics_.prompt_tokens += prompt_len;
      metrics_.cached_prompt_tokens += cached;
      metrics_.computed_prompt_tokens += uncached;
    }

    if (config.cache_enabled) cache_.admit(req.prompt, lease);
    private_in_use_ += private_blocks;

    Running r;
    r.req = std::move(req);
    r.lease = std::move(lease);
    r.cached = p.resumed ? p.first_cached : cached;
    r.generated = p.generated;
    r.context_len = prompt_len + p.generated;
    r.private_blocks = private_blocks;
    r.admit_time = p.resumed ? p.first_admit_time : now_;
    r.first_token_time = p.first_token_time;
    r.seq = p.seq;
    r.submit_time = p.submit_time;
    r.admit_seq = next_admit_seq_++;
    r.preemptions = p.preemptions;
    r.recomputed_tokens = p.recomputed_tokens;
    running_.push_back(std::move(r));
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
    ++admitted;
  }
  return admitted;
}

EngineSession::StepEvents EngineSession::step() {
  StepEvents ev;
  ev.admitted = try_admit();
  ev.preempted = last_step_preempted_;
  if (running_.empty()) return ev;

  // One decode step across the whole batch.
  std::vector<std::size_t> ctx;
  ctx.reserve(running_.size());
  for (const auto& r : running_) ctx.push_back(r.context_len);
  const double dt = engine_.cost_model().decode_step_seconds(ctx);
  now_ += dt;
  metrics_.decode_seconds += dt;
  ++metrics_.decode_steps;
  metrics_.sum_batch_size += static_cast<double>(running_.size());
  metrics_.peak_batch_size =
      std::max(metrics_.peak_batch_size, running_.size());
  metrics_.output_tokens += running_.size();

  // Advance and retire completed requests.
  for (auto it = running_.begin(); it != running_.end();) {
    ++it->generated;
    ++it->context_len;
    if (it->first_token_time == 0.0) it->first_token_time = now_;
    const std::size_t want = std::max<std::size_t>(1, it->req.output_tokens);
    if (it->generated >= want) {
      RequestResult res;
      res.id = it->req.id;
      res.row_tag = it->req.row_tag;
      res.prompt_tokens = it->req.prompt.size();
      res.cached_tokens = it->cached;
      res.computed_tokens = res.prompt_tokens - it->cached;
      res.output_tokens = it->generated;
      res.admit_time = it->admit_time;
      res.first_token_time = it->first_token_time;
      res.finish_time = now_;
      res.priority = it->req.priority;
      res.preemptions = it->preemptions;
      res.recomputed_tokens = it->recomputed_tokens;
      ev.completed.push_back(res);
      cache_.release(it->lease);
      private_in_use_ -= it->private_blocks;
      outstanding_prompt_tokens_ -= res.prompt_tokens;
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  return ev;
}

std::vector<RequestResult> EngineSession::drain() {
  std::vector<RequestResult> out;
  while (has_work()) {
    StepEvents ev = step();
    out.insert(out.end(), ev.completed.begin(), ev.completed.end());
  }
  return out;
}

void EngineSession::advance_to(double t) {
  if (has_work())
    throw std::logic_error(
        "EngineSession::advance_to: clock advances only through decode "
        "steps while requests are in flight");
  now_ = std::max(now_, t);
}

EngineMetrics EngineSession::metrics() const {
  EngineMetrics m = metrics_;
  m.total_seconds = now_;
  // Per-session cache stats (delta against the cache's running totals).
  m.cache = cache_.stats();
  m.cache.lookups -= stats_at_start_.lookups;
  m.cache.hit_tokens -= stats_at_start_.hit_tokens;
  m.cache.lookup_tokens -= stats_at_start_.lookup_tokens;
  m.cache.inserted_blocks -= stats_at_start_.inserted_blocks;
  m.cache.evicted_blocks -= stats_at_start_.evicted_blocks;
  return m;
}

}  // namespace llmq::llm
