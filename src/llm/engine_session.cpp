#include "llm/engine_session.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace llmq::llm {

namespace {
std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }
}  // namespace

EngineSession::EngineSession(const ServingEngine& engine,
                             cache::PrefixCache& cache)
    : engine_(engine), cache_(cache), stats_at_start_(cache.stats()) {
  if (engine_.kv_pool_blocks() == 0)
    throw std::runtime_error(
        "ServingEngine: model does not fit on the configured GPU");
}

void EngineSession::submit(Request req) {
  outstanding_prompt_tokens_ += req.prompt.size();
  trace(obs::EventKind::Enqueue, req.id, req.prompt.size(),
        req.output_tokens, 0, req.priority);
  Pending p;
  p.req = std::move(req);
  p.seq = next_seq_++;
  p.submit_time = now_;
  enqueue_pending(std::move(p));
}

PriorityClass EngineSession::effective_class(PriorityClass base,
                                             double submit_time) const {
  return aged_class(base, now_ - submit_time,
                    engine_.config().priority_aging_seconds);
}

void EngineSession::enqueue_pending(Pending p) {
  auto& q = pending_[static_cast<std::size_t>(p.req.priority)];
  // Fresh submissions carry the globally newest seq — O(1) append. Only
  // preemption re-queues (old seq, FIFO position reclaimed) pay the
  // sorted insert, and those are bounded by preemption traffic, not by
  // backlog depth.
  if (q.empty() || q.back().seq < p.seq) {
    q.push_back(std::move(p));
    return;
  }
  const auto it = std::upper_bound(
      q.begin(), q.end(), p.seq,
      [](std::uint64_t seq, const Pending& x) { return seq < x.seq; });
  q.insert(it, std::move(p));
}

std::size_t EngineSession::pick_queue() const {
  // Strict priority, FIFO within a class: minimum (effective class, seq).
  // Each base-class queue is seq-sorted, and seq order is submit-time
  // order, so aging promotes the front at least as far as anything behind
  // it — the front holds its queue's minimum (effective class, seq) and
  // comparing the <= kNumPriorityClasses fronts finds the global minimum.
  // The tie-break must be seq, not queue position: preempted victims
  // re-queue with their ORIGINAL seq (sorted insert), so the oldest
  // victim keeps its FIFO slot instead of being demoted behind every
  // younger same-class request each cycle. With uniform priorities and no
  // preemption this picks the single queue's front — plain FIFO, exactly
  // the pre-priority behavior.
  std::size_t best = kNumPriorityClasses;
  PriorityClass best_cls = PriorityClass::Batch;
  for (std::size_t b = 0; b < kNumPriorityClasses; ++b) {
    const auto& q = pending_[b];
    if (q.empty()) continue;
    const PriorityClass cls =
        effective_class(q.front().req.priority, q.front().submit_time);
    if (best == kNumPriorityClasses || cls < best_cls ||
        (cls == best_cls && q.front().seq < pending_[best].front().seq)) {
      best = b;
      best_cls = cls;
    }
  }
  return best;
}

EngineSession::PickedCandidate EngineSession::pick_candidate() const {
  const std::size_t qi = pick_queue();
  if (qi == kNumPriorityClasses || !engine_.config().spjf) return {qi, 0};
  // SPJF: minimum (predicted, seq) over the equal-effective-class
  // prefixes. With every prediction 0 this is min seq over the same
  // candidate set — exactly the FIFO pick, so a disabled predictor is
  // bit-identical to spjf == false.
  const PriorityClass best_cls = effective_class(
      pending_[qi].front().req.priority, pending_[qi].front().submit_time);
  PickedCandidate best{qi, 0};
  std::size_t best_pred = pending_[qi].front().req.predicted_output_tokens;
  std::uint64_t best_seq = pending_[qi].front().seq;
  for (std::size_t b = 0; b < kNumPriorityClasses; ++b) {
    const auto& q = pending_[b];
    if (q.empty() ||
        effective_class(q.front().req.priority, q.front().submit_time) !=
            best_cls)
      continue;  // this queue's best candidate is in a worse class
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (effective_class(q[i].req.priority, q[i].submit_time) != best_cls)
        break;  // seq-sorted queue: effective class only worsens deeper
      const std::size_t pred = q[i].req.predicted_output_tokens;
      if (pred < best_pred || (pred == best_pred && q[i].seq < best_seq)) {
        best = {b, i};
        best_pred = pred;
        best_seq = q[i].seq;
      }
    }
  }
  return best;
}

EngineSession::Pending EngineSession::preempt_at(std::size_t idx,
                                                 bool automatic) {
  Running& r = running_[idx];
  trace(obs::EventKind::Preempt, r.req.id, r.generated, r.max_prefilled,
        automatic ? 1 : 0, r.req.priority);
  // Release the victim's KV: unpin its cached prefix path (the shared
  // blocks stay resident until LRU eviction needs them — that residue is
  // what makes resume cheap) and free its private blocks (prompt tail +
  // generated tokens — the "uncached suffix" recompute must rebuild). A
  // victim caught mid-prefill also returns the headroom its remaining
  // chunks had reserved; chunk progress already admitted into the cache
  // survives (block-aligned) and its next resume_lookup re-finds it.
  cache_.release(r.lease);
  private_in_use_ -= r.private_blocks;
  reserved_shared_ -= r.shared_reserved;
  ++metrics_.preemptions;

  Pending p;
  p.req = std::move(r.req);
  p.seq = r.seq;
  p.submit_time = r.submit_time;
  p.resumed = true;
  p.generated = r.generated;
  p.preemptions = r.preemptions + 1;
  p.recomputed_tokens = r.recomputed_tokens;
  p.first_cached = r.cached;
  p.first_admit_time = r.admit_time;
  p.first_token_time = r.first_token_time;
  p.max_prefilled = r.max_prefilled;
  running_.erase(running_.begin() +
                 static_cast<std::ptrdiff_t>(idx));
  return p;
}

bool EngineSession::preempt_below(PriorityClass cls) {
  // Victim: worst effective class strictly below `cls` (strictly — equal
  // classes never preempt each other, which is what makes the
  // preempt/resume cycle terminate); ties broken toward the most recent
  // admission, which has decoded the least and so wastes the least work.
  std::size_t victim = running_.size();
  for (std::size_t i = 0; i < running_.size(); ++i) {
    const PriorityClass c =
        effective_class(running_[i].req.priority, running_[i].submit_time);
    if (c <= cls) continue;
    if (victim == running_.size()) {
      victim = i;
      continue;
    }
    const PriorityClass vc = effective_class(running_[victim].req.priority,
                                             running_[victim].submit_time);
    if (c > vc || (c == vc && running_[i].admit_seq >
                                  running_[victim].admit_seq))
      victim = i;
  }
  if (victim == running_.size()) return false;
  ++last_step_preempted_;
  enqueue_pending(preempt_at(victim, /*automatic=*/true));
  return true;
}

bool EngineSession::preempt(std::uint64_t id) {
  for (std::size_t i = 0; i < running_.size(); ++i) {
    if (running_[i].req.id != id) continue;
    parked_.push_back(preempt_at(i, /*automatic=*/false));
    return true;
  }
  return false;
}

bool EngineSession::resume(std::uint64_t id) {
  for (std::size_t i = 0; i < parked_.size(); ++i) {
    if (parked_[i].req.id != id) continue;
    trace(obs::EventKind::Resume, id, parked_[i].generated, 0, 0,
          parked_[i].req.priority);
    enqueue_pending(std::move(parked_[i]));
    parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

std::size_t EngineSession::try_admit() {
  const EngineConfig& config = engine_.config();
  const std::size_t pool_blocks = engine_.kv_pool_blocks();
  const std::size_t bs = config.block_size;
  const bool chunked = config.prefill_chunk_tokens > 0;
  std::size_t admitted = 0;
  last_step_preempted_ = 0;

  for (;;) {
    const PickedCandidate cand = pick_candidate();
    const std::size_t qi = cand.queue;
    if (qi == kNumPriorityClasses) break;
    const PriorityClass cls =
        effective_class(pending_[qi][cand.pos].req.priority,
                        pending_[qi][cand.pos].submit_time);
    if (running_.size() >= config.max_batch_size) {
      // Batch slots full. The head-of-line candidate may take a slot from
      // a strictly lower class; otherwise admission is over this step.
      if (!(config.preemption && preempt_below(cls))) break;
      continue;  // a slot freed (victim re-queued); re-pick
    }
    Pending& p = pending_[qi][cand.pos];
    Request& req = p.req;
    const std::size_t prompt_len = req.prompt.size();
    const std::size_t output_len = std::max<std::size_t>(1, req.output_tokens);

    // A fresh request's lookup counts stats; a preemption resume pins the
    // surviving prefix without recounting (exactly-once across cycles).
    cache::CacheLease lease = p.resumed ? cache_.resume_lookup(req.prompt)
                                        : cache_.lookup(req.prompt);
    const std::size_t cached = lease.cached_tokens;

    // Memory plan: full prompt blocks beyond the cached path move into
    // the shared cache — at admit() under monolithic prefill, or
    // incrementally at chunk boundaries under chunked prefill (which is
    // why the reservation for not-yet-admitted shared blocks counts
    // toward `used` below). The partial prompt tail plus all output
    // tokens are private to this request. (For a resume the same
    // reservation covers already-generated tokens: they are part of the
    // output budget.)
    const std::size_t new_shared =
        config.cache_enabled ? cache_.blocks_needed(prompt_len, cached) : 0;
    const std::size_t private_tokens =
        (config.cache_enabled ? prompt_len % bs : prompt_len) + output_len;
    const std::size_t private_blocks = ceil_div(private_tokens, bs);
    const std::size_t needed = new_shared + private_blocks;

    // Budget against GPU-RESIDENT blocks only: lower-tier blocks occupy
    // host/disk memory, not the KV pool. On a flat cache this is exactly
    // resident_blocks(). A tiered evict() demotes instead of destroying.
    std::size_t used =
        cache_.gpu_resident_blocks() + private_in_use_ + reserved_shared_;
    if (used + needed > pool_blocks) {
      const std::size_t shortfall = used + needed - pool_blocks;
      cache_.evict(shortfall);
      used = cache_.gpu_resident_blocks() + private_in_use_ + reserved_shared_;
    }
    if (used + needed > pool_blocks) {
      trace(obs::EventKind::Defer, req.id, needed, used, pool_blocks,
            req.priority);
      // The request is not admitted this step; the retry will probe
      // again, so this probe must not count (a request that waits K
      // steps would otherwise register K+1 lookups and K+1 hit-token
      // credits, inflating every cache-stats ratio under memory
      // pressure). A resumed request never counted its probe, so only
      // its pins are returned — cancel_lookup would double-subtract.
      if (p.resumed)
        cache_.release(lease);
      else
        cache_.cancel_lookup(lease, prompt_len);
      // Under priority preemption a blocked candidate may free memory by
      // evicting a strictly lower-class running request, then retry.
      if (config.preemption && preempt_below(cls)) continue;
      if (running_.empty())
        throw std::runtime_error(
            "ServingEngine: request cannot fit in KV memory even alone");
      break;  // wait for completions to free memory
    }

    // Tier promotion pricing: a lower-tier hit physically copied its KV
    // back into GPU memory at lookup; the admission pays the transfer
    // BEFORE any prefill reuse, so TTFT honestly includes it. (A lookup
    // that promoted but then deferred pays nothing on retry — the blocks
    // are already GPU-resident.) Zero on a flat cache: the clock advance
    // below is bit-identical to the pre-tier build.
    const double promote_s = engine_.cost_model().promote_seconds(
        lease.promoted_host_blocks, lease.promoted_disk_blocks, bs);
    if (promote_s > 0.0) {
      now_ += promote_s;
      metrics_.promote_seconds += promote_s;
      metrics_.promoted_host_blocks += lease.promoted_host_blocks;
      metrics_.promoted_disk_blocks += lease.promoted_disk_blocks;
    }

    // The uncached suffix to prefill (quadratic attention against the
    // cached context included). A resume also replays its generated
    // tokens — the recompute cost is exactly what the cache no longer
    // covers.
    const std::size_t uncached = prompt_len - cached;
    const std::size_t prefill_tokens = uncached + p.generated;
    if (!chunked) {
      // Monolithic: the whole prefill runs here, inside admission, and
      // the clock (hence every running decode) waits for it.
      const double pf =
          engine_.cost_model().prefill_seconds(prefill_tokens, cached);
      now_ += pf;
      metrics_.prefill_seconds += pf;
      if (p.resumed) {
        metrics_.recompute_prefill_tokens += prefill_tokens;
        metrics_.recompute_prefill_seconds += pf;
        p.recomputed_tokens += prefill_tokens;
      } else {
        metrics_.prompt_tokens += prompt_len;
        metrics_.cached_prompt_tokens += cached;
        metrics_.computed_prompt_tokens += uncached;
      }
      if (config.cache_enabled) cache_.admit(req.prompt, lease);
    } else {
      // Chunked: admission only reserves memory and books the
      // first-admission-only prompt counters; the prefill itself runs as
      // step()-budgeted chunks (computed/recompute book per chunk there).
      if (!p.resumed) {
        metrics_.prompt_tokens += prompt_len;
        metrics_.cached_prompt_tokens += cached;
      } else if (cached > p.max_prefilled) {
        // While the victim was parked, a prefix-sharing request filled
        // the cache past its prefill line: those positions are served
        // from cache and will never be computed by this request, so the
        // hit must be booked (once — the line advances below) or
        // cached + computed == prompt would silently leak them.
        metrics_.cached_prompt_tokens += cached - p.max_prefilled;
      }
    }
    private_in_use_ += private_blocks;

    // Payload carries what the auditor needs to replay the exactly-once
    // cached ledger: this admission's cache coverage, the first-pass
    // line before it, and the resumed/chunked mode bits (the chunked
    // resume rule books max(0, cached - line) extra cached tokens).
    trace(obs::EventKind::Admit, req.id, cached, p.max_prefilled,
          (p.resumed ? 1u : 0u) | (chunked ? 2u : 0u), req.priority);

    Running r;
    r.req = std::move(req);
    r.lease = std::move(lease);
    r.cached = p.resumed ? p.first_cached : cached;
    r.generated = p.generated;
    r.context_len = prompt_len + p.generated;
    r.private_blocks = private_blocks;
    r.admit_time = p.resumed ? p.first_admit_time : now_;
    r.first_token_time = p.first_token_time;
    r.seq = p.seq;
    r.submit_time = p.submit_time;
    r.admit_seq = next_admit_seq_++;
    r.preemptions = p.preemptions;
    r.recomputed_tokens = p.recomputed_tokens;
    // Advance the first-pass line over whatever the cache now covers —
    // even for a fully-cached (straight-to-Decode) admission, so a later
    // preempt/resume cycle cannot re-book the same positions.
    if (chunked) r.max_prefilled = std::max(p.max_prefilled, cached);
    if (chunked && prefill_tokens > 0) {
      r.phase = Phase::Prefill;
      r.prefill_target = prefill_tokens;
      r.prefill_cached = cached;
      r.shared_reserved = new_shared;
      reserved_shared_ += new_shared;
    }
    running_.push_back(std::move(r));
    pending_[qi].erase(pending_[qi].begin() +
                       static_cast<std::ptrdiff_t>(cand.pos));
    ++admitted;
  }
  return admitted;
}

void EngineSession::update_reservation(Running& r) {
  if (!engine_.config().cache_enabled) return;
  const std::size_t remaining =
      cache_.blocks_needed(r.req.prompt.size(), r.lease.cached_tokens);
  const std::size_t released =
      r.shared_reserved > remaining ? r.shared_reserved - remaining : 0;
  reserved_shared_ -= released;
  r.shared_reserved -= released;
}

void EngineSession::finish_prefill(Running& r) {
  if (engine_.config().cache_enabled) {
    cache_.admit(r.req.prompt, r.lease);
    update_reservation(r);
  }
  r.phase = Phase::Decode;
}

void EngineSession::run_prefill_chunks() {
  const EngineConfig& config = engine_.config();
  const std::size_t chunk_cap = config.prefill_chunk_tokens;
  std::size_t budget =
      config.step_token_budget ? config.step_token_budget : chunk_cap;

  // Budget goes out in strict effective-priority order (ties: admission
  // order) — the same rule admission uses — so an interactive prompt that
  // lands mid-way through a long batch prefill takes the next chunks and
  // reaches its first token first, instead of queueing behind every
  // chunk the batch prompt has left. One chunk per request per step; the
  // budget cap keeps the whole step short enough that decode-phase
  // requests are never stalled more than ~budget tokens of prefill.
  std::vector<std::size_t>& order = prefill_order_;
  order.clear();
  for (std::size_t i = 0; i < running_.size(); ++i)
    if (running_[i].phase == Phase::Prefill) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PriorityClass ca =
        effective_class(running_[a].req.priority, running_[a].submit_time);
    const PriorityClass cb =
        effective_class(running_[b].req.priority, running_[b].submit_time);
    if (ca != cb) return ca < cb;
    return running_[a].admit_seq < running_[b].admit_seq;
  });
  for (const std::size_t idx : order) {
    if (budget == 0) break;
    Running& r = running_[idx];
    const std::size_t take =
        std::min({chunk_cap, budget, r.prefill_target - r.prefill_done});
    const double pf = engine_.cost_model().prefill_seconds(
        take, r.prefill_cached + r.prefill_done);
    now_ += pf;
    metrics_.prefill_seconds += pf;
    ++metrics_.prefill_chunks;
    metrics_.chunked_prefill_tokens += take;
    // First-pass vs replay split by prompt position: tokens above the
    // request's furthest-ever-prefilled line are first-pass work (each
    // prompt position books computed exactly once over the request's
    // lifetime, so cached + computed == prompt survives preemption);
    // tokens at or below it — progress lost to an unaligned preemption
    // or eviction — and generated-token replay beyond the prompt are
    // recompute.
    const std::size_t pos_start = r.prefill_cached + r.prefill_done;
    const std::size_t pos_end =
        std::min(pos_start + take, r.req.prompt.size());
    const std::size_t line = std::max(pos_start, r.max_prefilled);
    const std::size_t fresh = pos_end > line ? pos_end - line : 0;
    const std::size_t replay = take - fresh;
    metrics_.computed_prompt_tokens += fresh;
    if (replay > 0) {
      const double rec_pf =
          pf * static_cast<double>(replay) / static_cast<double>(take);
      metrics_.recompute_prefill_tokens += replay;
      metrics_.recompute_prefill_seconds += rec_pf;
      r.recomputed_tokens += replay;
    }
    if (pos_end > r.max_prefilled) r.max_prefilled = pos_end;
    r.prefill_done += take;
    budget -= take;
    trace(obs::EventKind::PrefillChunk, r.req.id, take, fresh, replay,
          r.req.priority);

    if (r.prefill_done >= r.prefill_target) {
      finish_prefill(r);
      continue;
    }
    // Incremental admit at block-aligned chunk boundaries: everything the
    // context now covers (cached prefix + chunk progress, capped at the
    // prompt — a resume's replayed generated tokens are private, never
    // cached) becomes reusable by followers mid-prefill.
    const std::size_t covered = std::min(
        r.prefill_cached + r.prefill_done, r.req.prompt.size());
    if (config.cache_enabled &&
        covered / config.block_size > r.lease.path.size()) {
      cache_.admit(
          std::span<const tokenizer::TokenId>(r.req.prompt.data(), covered),
          r.lease);
      update_reservation(r);
    }
  }
}

EngineSession::StepEvents EngineSession::step() {
  const bool chunked = engine_.config().prefill_chunk_tokens > 0;
  // Stall watch: requests already decoding when the step begins are the
  // ones whose next token waits for everything this step runs first
  // (admission prefill under monolithic mode, chunk budget under
  // chunking). The longest such wait is the worst inter-token gap.
  bool stall_watch = false;
  for (const auto& r : running_) {
    if (!chunked || r.phase == Phase::Decode) {
      stall_watch = true;
      break;
    }
  }
  const double step_start = now_;

  StepEvents ev;
  ev.admitted = try_admit();
  ev.preempted = last_step_preempted_;
  if (running_.empty()) return ev;

  if (chunked) run_prefill_chunks();

  // Peak concurrent admitted requests (prefill + decode phases); the
  // decode-only batch sizes feed sum_batch_size below.
  metrics_.peak_batch_size =
      std::max(metrics_.peak_batch_size, running_.size());

  // One decode step across the decode-phase batch.
  std::vector<std::size_t>& ctx = decode_ctx_;
  ctx.clear();
  for (const auto& r : running_)
    if (r.phase == Phase::Decode) ctx.push_back(r.context_len);
  if (!ctx.empty()) {
    const double dt = engine_.cost_model().decode_step_seconds(ctx);
    now_ += dt;
    metrics_.decode_seconds += dt;
    ++metrics_.decode_steps;
    metrics_.sum_batch_size += static_cast<double>(ctx.size());
    metrics_.output_tokens += ctx.size();

    // Advance and retire completed requests (prefill-phase requests have
    // not decoded and cannot complete).
    for (auto it = running_.begin(); it != running_.end();) {
      if (it->phase != Phase::Decode) {
        ++it;
        continue;
      }
      ++it->generated;
      ++it->context_len;
      if (it->first_token_time == 0.0) {
        it->first_token_time = now_;
        trace(obs::EventKind::FirstToken, it->req.id, it->generated, 0, 0,
              it->req.priority);
      }
      const std::size_t want = std::max<std::size_t>(1, it->req.output_tokens);
      if (it->generated >= want) {
        RequestResult res;
        res.id = it->req.id;
        res.row_tag = it->req.row_tag;
        res.prompt_tokens = it->req.prompt.size();
        res.cached_tokens = it->cached;
        res.computed_tokens = res.prompt_tokens - it->cached;
        res.output_tokens = it->generated;
        res.admit_time = it->admit_time;
        res.first_token_time = it->first_token_time;
        res.finish_time = now_;
        res.priority = it->req.priority;
        res.preemptions = it->preemptions;
        res.recomputed_tokens = it->recomputed_tokens;
        ev.completed.push_back(res);
        trace(obs::EventKind::Finish, res.id, res.output_tokens,
              res.prompt_tokens, res.cached_tokens, res.priority);
        cache_.release(it->lease);
        private_in_use_ -= it->private_blocks;
        // Normally zero by finish_prefill; a capacity-limited caller
        // cache can leave admit() short of the plan, and the leftover
        // reservation must not outlive the request.
        reserved_shared_ -= it->shared_reserved;
        outstanding_prompt_tokens_ -= res.prompt_tokens;
        it = running_.erase(it);
      } else {
        ++it;
      }
    }
    trace(obs::EventKind::DecodeStep, 0, ctx.size(), ev.completed.size(), 0,
          PriorityClass::Interactive);
  }
  if (stall_watch && now_ > step_start)
    metrics_.max_decode_stall_seconds =
        std::max(metrics_.max_decode_stall_seconds, now_ - step_start);
  return ev;
}

std::vector<RequestResult> EngineSession::drain() {
  std::vector<RequestResult> out;
  while (has_work()) {
    StepEvents ev = step();
    out.insert(out.end(), ev.completed.begin(), ev.completed.end());
  }
  return out;
}

void EngineSession::advance_to(double t) {
  if (has_work())
    throw std::logic_error(
        "EngineSession::advance_to: clock advances only through decode "
        "steps while requests are in flight");
  now_ = std::max(now_, t);
}

obs::GaugeSample EngineSession::gauges() const {
  obs::GaugeSample g;
  g.kv_resident_blocks = cache_.resident_blocks();
  g.kv_host_blocks = cache_.tier_resident_blocks(1);
  g.kv_disk_blocks = cache_.tier_resident_blocks(2);
  g.kv_private_blocks = private_in_use_;
  g.kv_reserved_blocks = reserved_shared_;
  g.kv_pinned_blocks = cache_.pinned_blocks();
  for (std::size_t b = 0; b < kNumPriorityClasses; ++b)
    g.pending_by_class[b] = pending_[b].size();
  for (const Running& r : running_) {
    if (r.phase == Phase::Prefill)
      ++g.running_prefill;
    else
      ++g.running_decode;
  }
  g.parked = parked_.size();
  g.outstanding_prompt_tokens = outstanding_prompt_tokens_;
  g.rolling_phr =
      metrics_.prompt_tokens
          ? static_cast<double>(metrics_.cached_prompt_tokens) /
                static_cast<double>(metrics_.prompt_tokens)
          : 0.0;
  return g;
}

EngineMetrics EngineSession::metrics() const {
  EngineMetrics m = metrics_;
  m.total_seconds = now_;
  // Per-session cache stats: field-wise delta against the cache's running
  // totals (the helper covers every CacheStats counter, present and
  // future — see the tripwire next to its definition).
  m.cache = cache_.stats() - stats_at_start_;
  return m;
}

}  // namespace llmq::llm
