#include "llm/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace llmq::llm {

double CostModel::prefill_flops(std::size_t new_tokens,
                                std::size_t cached_tokens) const {
  if (new_tokens == 0) return 0.0;
  const double t = static_cast<double>(new_tokens);
  const double c0 = static_cast<double>(cached_tokens);
  // Linear layers: 2 FLOPs per parameter per processed token.
  const double linear = 2.0 * model_.params * t;
  // Attention: each new token at position p attends to p+1 positions;
  // 2 (QK^T) + 2 (AV) multiply-accumulates per attended position per
  // attention dim. Sum over positions c0..c0+t-1 ~= t*c0 + t^2/2.
  const double attended = t * c0 + 0.5 * t * t;
  const double attn_dim =
      static_cast<double>(model_.n_heads * model_.head_dim);
  const double attention =
      4.0 * static_cast<double>(model_.n_layers) * attn_dim * attended;
  return linear + attention;
}

double CostModel::prefill_seconds(std::size_t new_tokens,
                                  std::size_t cached_tokens) const {
  return prefill_flops(new_tokens, cached_tokens) / gpu_.total_flops();
}

double CostModel::chunked_prefill_seconds(std::size_t new_tokens,
                                          std::size_t cached_tokens,
                                          std::size_t chunk_tokens) const {
  if (chunk_tokens == 0 || chunk_tokens >= new_tokens)
    return prefill_seconds(new_tokens, cached_tokens);
  double total = 0.0;
  for (std::size_t done = 0; done < new_tokens; done += chunk_tokens) {
    const std::size_t take = std::min(chunk_tokens, new_tokens - done);
    total += prefill_seconds(take, cached_tokens + done);
  }
  return total;
}

double CostModel::decode_step_seconds(
    const std::vector<std::size_t>& context_lens) const {
  if (context_lens.empty()) return 0.0;
  double kv_total = 0.0;
  for (std::size_t c : context_lens) kv_total += kv_bytes(c);
  // Bandwidth: weights read once per step (batch-amortized) + all KV.
  const double bytes = model_.weight_bytes() + kv_total;
  const double bw_time = bytes / gpu_.total_bandwidth();
  // Compute: 2*P FLOPs per generated token.
  const double flops =
      2.0 * model_.params * static_cast<double>(context_lens.size());
  const double compute_time = flops / gpu_.total_flops();
  return std::max(bw_time, compute_time);
}

double CostModel::promote_seconds(std::size_t host_blocks,
                                  std::size_t disk_blocks,
                                  std::size_t block_size) const {
  double s = 0.0;
  if (host_blocks > 0)
    s += host_link.latency +
         kv_bytes(host_blocks * block_size) / host_link.bandwidth;
  if (disk_blocks > 0)
    s += disk_link.latency +
         kv_bytes(disk_blocks * block_size) / disk_link.bandwidth;
  return s;
}

std::size_t CostModel::kv_pool_tokens() const {
  const double free_bytes = gpu_.total_memory() - model_.weight_bytes();
  if (free_bytes <= 0.0) return 0;
  return static_cast<std::size_t>(free_bytes / model_.kv_bytes_per_token());
}

std::size_t scaled_kv_pool_blocks(const ModelSpec& model, const GpuSpec& gpu,
                                  std::size_t block_size, double fraction) {
  const CostModel cm(model, gpu);
  const auto derived = static_cast<double>(cm.kv_pool_blocks(block_size));
  const std::size_t floor_blocks = 4096 / block_size;
  return std::max<std::size_t>(
      floor_blocks, static_cast<std::size_t>(derived * fraction));
}

}  // namespace llmq::llm
