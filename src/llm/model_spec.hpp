#pragma once
// Transformer model shapes.
//
// The serving simulator is parameterized by real Llama-3 architecture
// numbers: parameter count drives weight-read bandwidth and FLOPs, the
// (layers x kv-heads x head-dim) product drives KV-cache bytes per token —
// the quantity that makes prefix sharing save memory.

#include <cstddef>
#include <cstdint>
#include <string>

namespace llmq::llm {

struct ModelSpec {
  std::string name;
  double params = 0.0;            // total parameters
  std::size_t n_layers = 0;
  std::size_t hidden_dim = 0;
  std::size_t n_heads = 0;
  std::size_t n_kv_heads = 0;     // grouped-query attention
  std::size_t head_dim = 0;
  std::size_t dtype_bytes = 2;    // fp16/bf16 weights and KV

  /// KV-cache bytes per token: K and V, per layer, per kv-head.
  double kv_bytes_per_token() const {
    return 2.0 * static_cast<double>(n_layers * n_kv_heads * head_dim *
                                     dtype_bytes);
  }

  double weight_bytes() const { return params * static_cast<double>(dtype_bytes); }
};

/// Llama-3.2-1B-Instruct (paper Appendix D.2).
ModelSpec llama3_1b();
/// Meta-Llama-3-8B-Instruct (paper §6.1.3, main evaluation model).
ModelSpec llama3_8b();
/// Meta-Llama-3-70B-Instruct (paper Fig 5).
ModelSpec llama3_70b();

}  // namespace llmq::llm
