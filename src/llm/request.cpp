// Request types are header-only; this translation unit anchors the target.
#include "llm/request.hpp"
