#include "llm/request.hpp"

#include <algorithm>
#include <cmath>

namespace llmq::llm {

std::string to_string(PriorityClass c) {
  switch (c) {
    case PriorityClass::Interactive: return "interactive";
    case PriorityClass::Standard: return "standard";
    case PriorityClass::Batch: return "batch";
  }
  return "?";
}

std::optional<PriorityClass> priority_from_string(const std::string& name) {
  if (name == "interactive") return PriorityClass::Interactive;
  if (name == "standard") return PriorityClass::Standard;
  if (name == "batch") return PriorityClass::Batch;
  return std::nullopt;
}

PriorityClass aged_class(PriorityClass base, double waited_seconds,
                         double aging_seconds) {
  if (aging_seconds <= 0.0 || waited_seconds < aging_seconds) return base;
  const double steps = std::floor(waited_seconds / aging_seconds);
  const double promoted = static_cast<double>(base) - steps;
  return promoted <= 0.0 ? PriorityClass::Interactive
                         : static_cast<PriorityClass>(
                               static_cast<std::uint8_t>(promoted));
}

}  // namespace llmq::llm
