#pragma once
// Block-granular radix tree over token sequences.
//
// The same data structure family as SGLang's RadixAttention and vLLM's
// automatic prefix caching: prompts are chunked into fixed-size token
// blocks; each tree node holds one block; a request's cached prefix is the
// deepest path whose blocks exactly match the request's leading blocks.
// Reference counts pin paths of in-flight requests; unpinned nodes are
// LRU-evictable (leaves first, so the tree stays prefix-closed).
//
// Hot-path layout (DESIGN.md §11): nodes live in a util::SlotPool slab
// arena and their token blocks in parallel fixed-stride slabs keyed by
// node id, so steady-state churn (evict + re-insert) recycles slots
// without touching the heap. Every node caches the 64-bit token_ops hash
// of its block; child lookup compares hashes before tokens, and nodes
// whose fan-out reaches kIndexMinFanout carry an open-addressed child
// table that turns find_child into O(1) probes. Batch eviction is one
// scan plus a min-heap instead of a rescan per victim.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "tokenizer/tokenizer.hpp"
#include "util/arena.hpp"

namespace llmq::cache {

using tokenizer::TokenId;
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

class RadixTree {
 public:
  explicit RadixTree(std::size_t block_size);

  std::size_t block_size() const { return block_size_; }
  /// Number of resident blocks (== nodes, excluding the root).
  std::size_t num_blocks() const { return num_blocks_; }

  struct Match {
    std::size_t matched_tokens = 0;   // always a multiple of block_size
    std::vector<NodeId> path;         // matched nodes, root-child first
  };

  /// Longest cached block-aligned prefix of `tokens`. Does not touch
  /// recency; callers that consume the match should follow with touch().
  Match match(std::span<const TokenId> tokens) const;

  /// Allocation-free form of match(): only the matched token count.
  std::size_t match_tokens(std::span<const TokenId> tokens) const;

  /// Allocation-free form of match(): fills a caller-owned path vector
  /// (cleared first; capacity is reused). Returns matched token count.
  std::size_t match_into(std::span<const TokenId> tokens,
                         std::vector<NodeId>& path) const;

  struct InsertResult {
    std::vector<NodeId> path;      // full path covering the inserted prefix
    std::size_t new_blocks = 0;    // nodes created by this insert
  };

  /// Ensure a path for all *full* blocks of `tokens` exists, creating at
  /// most `max_new_blocks` new nodes (pass SIZE_MAX for no limit — the
  /// cap lets the cache admit partial prefixes under memory pressure).
  /// Updates last_access of every touched node to `now`.
  InsertResult insert(std::span<const TokenId> tokens, std::uint64_t now,
                      std::size_t max_new_blocks = SIZE_MAX);

  /// Allocation-free form of insert(): fills a caller-owned path vector
  /// (cleared first; capacity is reused). Returns nodes created.
  std::size_t insert_into(std::span<const TokenId> tokens, std::uint64_t now,
                          std::size_t max_new_blocks,
                          std::vector<NodeId>& path);

  /// Bump recency of a path (cache read).
  void touch(const std::vector<NodeId>& path, std::uint64_t now);

  /// Pin / unpin every node on a path (in-flight request holds its prefix).
  void pin(const std::vector<NodeId>& path);
  void unpin(const std::vector<NodeId>& path);

  /// Evict up to `want` least-recently-used, unpinned leaves. Returns the
  /// number actually evicted (may be fewer if everything is pinned or has
  /// children). One scan over the table builds a min-heap of victims;
  /// parents exposed as new leaves join the heap as their last child
  /// goes, so the victim sequence is identical to the classic
  /// rescan-per-victim loop (ties broken toward the lower node id).
  std::size_t evict_lru(std::size_t want);

  /// Total pinned nodes (diagnostics / tests).
  std::size_t pinned_blocks() const;

  /// last_access of the block evict_lru() would take next (the oldest
  /// unpinned leaf), or UINT64_MAX when nothing is evictable. Lets a
  /// sharded owner (PrefixCache with lock striping) pick the globally
  /// oldest victim across per-stripe trees without merging them: every
  /// access stamps a globally unique clock value, so comparing per-tree
  /// ages reproduces exactly the eviction order a single tree would give.
  /// Shares the evictable() predicate with evict_lru so the global-LRU
  /// decision cannot drift from actual eviction order.
  std::uint64_t lru_age() const;

  /// Sum of ref_count over all alive nodes — the number of (lease, node)
  /// pin edges outstanding. PrefixCache cross-checks this against its own
  /// lease accounting in check_invariants().
  std::uint64_t total_ref_count() const;

  /// Node slots ever carved from the arena (high-water mark; never
  /// shrinks). The arena microbench asserts this stays flat across
  /// steady-state evict/insert churn.
  std::size_t node_slots() const { return pool_.slots(); }

  /// Structural self-check for the property tests: parent/child/position
  /// consistency, arena accounting, per-node block hashing and sizing,
  /// sibling-block uniqueness, child-index coherence, node-count
  /// accounting, and the path-prefix monotonicity invariants — a node's
  /// parent is always at least as recently used and at least as pinned as
  /// the node, because touches and pins only ever cover root-down path
  /// prefixes. Returns an empty string when every invariant holds, else a
  /// description of the first violation.
  std::string check_invariants() const;

 private:
  /// Open-addressed child table: power-of-2 capacity, linear probing,
  /// backward-shift deletion. An empty `table` means the node is below
  /// the fan-out threshold and children are scanned linearly (with the
  /// cached block hash as a cheap first filter). Capacity is retained
  /// when the owning slot is recycled.
  struct ChildIndex {
    std::vector<NodeId> table;   // kNoNode = empty slot
    std::size_t size = 0;
  };

  struct Node {
    std::uint64_t block_hash = 0;     // token_ops::hash of the block
    std::uint64_t last_access = 0;
    std::vector<NodeId> children;
    ChildIndex index;
    NodeId parent = kNoNode;
    std::uint32_t pos_in_parent = 0;  // index in parent's children vector
    std::uint32_t ref_count = 0;
    bool alive = false;
  };

  // Fan-out at which a node gains a child hash table.
  static constexpr std::size_t kIndexMinFanout = 8;
  // Nodes per token slab (block storage stride group).
  static constexpr std::size_t kSlabNodes = 256;

  std::span<const TokenId> block_span(NodeId id) const {
    if (id == 0) return {};
    const TokenId* base = block_slabs_[id / kSlabNodes].get() +
                          (id % kSlabNodes) * block_size_;
    return {base, block_size_};
  }

  bool evictable(const Node& n) const {
    return n.alive && n.ref_count == 0 && n.children.empty();
  }

  NodeId find_child(NodeId node, std::span<const TokenId> block) const;
  NodeId add_child(NodeId node, std::span<const TokenId> block,
                   std::uint64_t now);
  void remove_node(NodeId id);

  void index_insert(ChildIndex& ix, NodeId id);
  void index_erase(ChildIndex& ix, NodeId id);
  void index_rebuild(Node& n, std::size_t min_capacity);

  std::size_t block_size_;
  util::SlotPool<Node> pool_;    // slot 0 is the root
  std::vector<std::unique_ptr<TokenId[]>> block_slabs_;
  std::size_t num_blocks_ = 0;
  // Scratch for evict_lru: (last_access, id) min-heap, capacity reused.
  std::vector<std::pair<std::uint64_t, NodeId>> evict_heap_;
};

}  // namespace llmq::cache
