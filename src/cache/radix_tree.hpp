#pragma once
// Block-granular radix tree over token sequences.
//
// The same data structure family as SGLang's RadixAttention and vLLM's
// automatic prefix caching: prompts are chunked into fixed-size token
// blocks; each tree node holds one block; a request's cached prefix is the
// deepest path whose blocks exactly match the request's leading blocks.
// Reference counts pin paths of in-flight requests; unpinned nodes are
// LRU-evictable (leaves first, so the tree stays prefix-closed).
//
// Hot-path layout (DESIGN.md §11): nodes live in a util::SlotPool slab
// arena and their token blocks in parallel fixed-stride slabs keyed by
// node id, so steady-state churn (evict + re-insert) recycles slots
// without touching the heap. Every node caches the 64-bit token_ops hash
// of its block; child lookup compares hashes before tokens, and nodes
// whose fan-out reaches kIndexMinFanout carry an open-addressed child
// table that turns find_child into O(1) probes. Batch eviction is one
// scan plus a min-heap instead of a rescan per victim.
//
// Tiers (DESIGN.md §13): each node carries a tier tag — 0 = GPU, 1 =
// host DRAM, 2 = disk. A flat cache leaves every node at tier 0 and the
// tier machinery is never touched. The tree maintains tier monotonicity
// down every path (child.tier >= parent.tier): demotion always takes the
// oldest unpinned block of a tier first, and recency is monotone down
// paths (a child is strictly older than its parent because touches cover
// root-down prefixes and clock stamps are unique), so a node's same-tier
// children always demote before it; promotion covers root-down path
// prefixes only. Pinned nodes are never demoted, which with promotion-
// before-pin gives "pinned => GPU-resident" as a walked invariant.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "tokenizer/tokenizer.hpp"
#include "util/arena.hpp"

namespace llmq::cache {

using tokenizer::TokenId;
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

class RadixTree {
 public:
  explicit RadixTree(std::size_t block_size);

  std::size_t block_size() const { return block_size_; }
  /// Number of resident blocks (== nodes, excluding the root).
  std::size_t num_blocks() const { return num_blocks_; }

  struct Match {
    std::size_t matched_tokens = 0;   // always a multiple of block_size
    std::vector<NodeId> path;         // matched nodes, root-child first
  };

  /// Longest cached block-aligned prefix of `tokens`. Does not touch
  /// recency; callers that consume the match should follow with touch().
  Match match(std::span<const TokenId> tokens) const;

  /// Allocation-free form of match(): only the matched token count.
  std::size_t match_tokens(std::span<const TokenId> tokens) const;

  /// Allocation-free form of match(): fills a caller-owned path vector
  /// (cleared first; capacity is reused). Returns matched token count.
  std::size_t match_into(std::span<const TokenId> tokens,
                         std::vector<NodeId>& path) const;

  struct InsertResult {
    std::vector<NodeId> path;      // full path covering the inserted prefix
    std::size_t new_blocks = 0;    // nodes created by this insert
  };

  /// Ensure a path for all *full* blocks of `tokens` exists, creating at
  /// most `max_new_blocks` new nodes (pass SIZE_MAX for no limit — the
  /// cap lets the cache admit partial prefixes under memory pressure).
  /// Updates last_access of every touched node to `now`.
  InsertResult insert(std::span<const TokenId> tokens, std::uint64_t now,
                      std::size_t max_new_blocks = SIZE_MAX);

  /// Allocation-free form of insert(): fills a caller-owned path vector
  /// (cleared first; capacity is reused). Returns nodes created.
  std::size_t insert_into(std::span<const TokenId> tokens, std::uint64_t now,
                          std::size_t max_new_blocks,
                          std::vector<NodeId>& path);

  /// Bump recency of a path (cache read).
  void touch(std::span<const NodeId> path, std::uint64_t now);

  /// Pin / unpin every node on a path (in-flight request holds its prefix).
  void pin(std::span<const NodeId> path);
  void unpin(std::span<const NodeId> path);

  /// Evict up to `want` least-recently-used, unpinned leaves. Returns the
  /// number actually evicted (may be fewer if everything is pinned or has
  /// children). One scan over the table builds a min-heap of victims;
  /// parents exposed as new leaves join the heap as their last child
  /// goes, so the victim sequence is identical to the classic
  /// rescan-per-victim loop (ties broken toward the lower node id).
  std::size_t evict_lru(std::size_t want);

  /// Total pinned nodes (diagnostics / tests).
  std::size_t pinned_blocks() const;

  /// last_access of the block evict_lru() would take next (the oldest
  /// unpinned leaf), or UINT64_MAX when nothing is evictable. Lets a
  /// sharded owner (PrefixCache with lock striping) pick the globally
  /// oldest victim across per-stripe trees without merging them: every
  /// access stamps a globally unique clock value, so comparing per-tree
  /// ages reproduces exactly the eviction order a single tree would give.
  /// Shares the evictable() predicate with evict_lru so the global-LRU
  /// decision cannot drift from actual eviction order.
  std::uint64_t lru_age() const;

  /// Sum of ref_count over all alive nodes — the number of (lease, node)
  /// pin edges outstanding. PrefixCache cross-checks this against its own
  /// lease accounting in check_invariants().
  std::uint64_t total_ref_count() const;

  // ---- Tier operations (no-ops on a flat, all-tier-0 tree). ----

  /// Tier of one alive node (0 = GPU).
  std::uint8_t node_tier(NodeId id) const { return pool_[id].tier; }

  /// Recency stamp of one alive node (for cross-stripe recency merges —
  /// stamps are globally unique, so the merged order is total).
  std::uint64_t node_last_access(NodeId id) const {
    return pool_[id].last_access;
  }

  /// Alive blocks currently at `tier` (ledger walk; O(slots)).
  std::size_t tier_blocks(std::uint8_t tier) const;

  /// last_access of the oldest unpinned block at `tier` (the next
  /// demotion victim), or UINT64_MAX when none. Mirrors lru_age() for the
  /// sharded owner's cross-stripe global-LRU demotion decision.
  std::uint64_t demote_age(std::uint8_t tier) const;

  /// Demote up to `want` oldest unpinned blocks from `from_tier` to
  /// `from_tier + 1`. No structural change; returns blocks demoted.
  /// Oldest-first order makes this tier-monotone by construction: an
  /// unpinned node's same-tier children are strictly older (and unpinned,
  /// since pins are monotone up paths), so they demote first.
  std::size_t demote_lru(std::size_t want, std::uint8_t from_tier);

  /// last_access of the oldest evictable (unpinned leaf) block at `tier`,
  /// or UINT64_MAX when none. Companion of evict_lru_tier.
  std::uint64_t evict_age(std::uint8_t tier) const;

  /// Evict up to `want` LRU unpinned leaves restricted to `tier` (the
  /// bottom tier sheds blocks for real; upper tiers demote instead).
  /// Parents exposed as leaves join the heap only if they sit at `tier`.
  std::size_t evict_lru_tier(std::size_t want, std::uint8_t tier);

  /// Read-only walk of the longest cached prefix (exactly match_tokens'
  /// traversal) that splits the matched tokens by the tier each block
  /// currently sits in. The router's tier-aware affinity probe.
  void match_tier_tokens(std::span<const TokenId> tokens, std::size_t& gpu,
                         std::size_t& host, std::size_t& disk) const;

  /// Count blocks of `path` at each non-GPU tier (no mutation).
  void count_tiered(std::span<const NodeId> path, std::size_t& host,
                    std::size_t& disk) const;

  /// Set every node of `path` to tier 0. `path` must be a root-down path
  /// prefix so tier monotonicity survives. The caller owns the GPU-pool
  /// accounting for the blocks that moved.
  void promote_path(std::span<const NodeId> path);

  // ---- Migration support (donor-side hot-prefix extraction). ----

  /// Ids of up to `max_leaves` most recently used leaves, most recent
  /// first (ties toward the lower id). A leaf's root-down path is the
  /// longest prefix it uniquely represents, so the hottest leaves name
  /// the hottest prefixes a donor should stream to a warming peer.
  void hottest_leaves(std::size_t max_leaves, std::vector<NodeId>& out) const;

  /// Append the token sequence of the root-down path ending at `id` to
  /// `out` (the raw bytes a migration actually transfers).
  void path_tokens(NodeId id, tokenizer::TokenSeq& out) const;

  /// Fill `out` with the root-down node path ending at `id`.
  void path_nodes(NodeId id, std::vector<NodeId>& out) const;

  /// Node slots ever carved from the arena (high-water mark; never
  /// shrinks). The arena microbench asserts this stays flat across
  /// steady-state evict/insert churn.
  std::size_t node_slots() const { return pool_.slots(); }

  /// Structural self-check for the property tests: parent/child/position
  /// consistency, arena accounting, per-node block hashing and sizing,
  /// sibling-block uniqueness, child-index coherence, node-count
  /// accounting, and the path-prefix monotonicity invariants — a node's
  /// parent is always at least as recently used and at least as pinned as
  /// the node, because touches and pins only ever cover root-down path
  /// prefixes. Returns an empty string when every invariant holds, else a
  /// description of the first violation.
  std::string check_invariants() const;

 private:
  /// Open-addressed child table: power-of-2 capacity, linear probing,
  /// backward-shift deletion. An empty `table` means the node is below
  /// the fan-out threshold and children are scanned linearly (with the
  /// cached block hash as a cheap first filter). Capacity is retained
  /// when the owning slot is recycled.
  struct ChildIndex {
    std::vector<NodeId> table;   // kNoNode = empty slot
    std::size_t size = 0;
  };

  struct Node {
    std::uint64_t block_hash = 0;     // token_ops::hash of the block
    std::uint64_t last_access = 0;
    std::vector<NodeId> children;
    ChildIndex index;
    NodeId parent = kNoNode;
    std::uint32_t pos_in_parent = 0;  // index in parent's children vector
    std::uint32_t ref_count = 0;
    std::uint8_t tier = 0;            // 0 = GPU, 1 = host, 2 = disk
    bool alive = false;
  };

  // Fan-out at which a node gains a child hash table.
  static constexpr std::size_t kIndexMinFanout = 8;
  // Nodes per token slab (block storage stride group).
  static constexpr std::size_t kSlabNodes = 256;

  std::span<const TokenId> block_span(NodeId id) const {
    if (id == 0) return {};
    const TokenId* base = block_slabs_[id / kSlabNodes].get() +
                          (id % kSlabNodes) * block_size_;
    return {base, block_size_};
  }

  bool evictable(const Node& n) const {
    return n.alive && n.ref_count == 0 && n.children.empty();
  }

  NodeId find_child(NodeId node, std::span<const TokenId> block) const;
  NodeId add_child(NodeId node, std::span<const TokenId> block,
                   std::uint64_t now);
  void remove_node(NodeId id);

  void index_insert(ChildIndex& ix, NodeId id);
  void index_erase(ChildIndex& ix, NodeId id);
  void index_rebuild(Node& n, std::size_t min_capacity);

  std::size_t block_size_;
  util::SlotPool<Node> pool_;    // slot 0 is the root
  std::vector<std::unique_ptr<TokenId[]>> block_slabs_;
  std::size_t num_blocks_ = 0;
  // Scratch for evict_lru: (last_access, id) min-heap, capacity reused.
  std::vector<std::pair<std::uint64_t, NodeId>> evict_heap_;
};

}  // namespace llmq::cache
