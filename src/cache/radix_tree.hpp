#pragma once
// Block-granular radix tree over token sequences.
//
// The same data structure family as SGLang's RadixAttention and vLLM's
// automatic prefix caching: prompts are chunked into fixed-size token
// blocks; each tree node holds one block; a request's cached prefix is the
// deepest path whose blocks exactly match the request's leading blocks.
// Reference counts pin paths of in-flight requests; unpinned nodes are
// LRU-evictable (leaves first, so the tree stays prefix-closed).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tokenizer/tokenizer.hpp"

namespace llmq::cache {

using tokenizer::TokenId;
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

class RadixTree {
 public:
  explicit RadixTree(std::size_t block_size);

  std::size_t block_size() const { return block_size_; }
  /// Number of resident blocks (== nodes, excluding the root).
  std::size_t num_blocks() const { return num_blocks_; }

  struct Match {
    std::size_t matched_tokens = 0;   // always a multiple of block_size
    std::vector<NodeId> path;         // matched nodes, root-child first
  };

  /// Longest cached block-aligned prefix of `tokens`. Does not touch
  /// recency; callers that consume the match should follow with touch().
  Match match(std::span<const TokenId> tokens) const;

  struct InsertResult {
    std::vector<NodeId> path;      // full path covering the inserted prefix
    std::size_t new_blocks = 0;    // nodes created by this insert
  };

  /// Ensure a path for all *full* blocks of `tokens` exists, creating at
  /// most `max_new_blocks` new nodes (pass SIZE_MAX for no limit — the
  /// cap lets the cache admit partial prefixes under memory pressure).
  /// Updates last_access of every touched node to `now`.
  InsertResult insert(std::span<const TokenId> tokens, std::uint64_t now,
                      std::size_t max_new_blocks = SIZE_MAX);

  /// Bump recency of a path (cache read).
  void touch(const std::vector<NodeId>& path, std::uint64_t now);

  /// Pin / unpin every node on a path (in-flight request holds its prefix).
  void pin(const std::vector<NodeId>& path);
  void unpin(const std::vector<NodeId>& path);

  /// Evict up to `want` least-recently-used, unpinned leaves. Returns the
  /// number actually evicted (may be fewer if everything is pinned or has
  /// children).
  std::size_t evict_lru(std::size_t want);

  /// Total pinned nodes (diagnostics / tests).
  std::size_t pinned_blocks() const;

  /// last_access of the block evict_lru() would take next (the oldest
  /// unpinned leaf), or UINT64_MAX when nothing is evictable. Lets a
  /// sharded owner (PrefixCache with lock striping) pick the globally
  /// oldest victim across per-stripe trees without merging them: every
  /// access stamps a globally unique clock value, so comparing per-tree
  /// ages reproduces exactly the eviction order a single tree would give.
  std::uint64_t lru_age() const;

  /// Sum of ref_count over all alive nodes — the number of (lease, node)
  /// pin edges outstanding. PrefixCache cross-checks this against its own
  /// lease accounting in check_invariants().
  std::uint64_t total_ref_count() const;

  /// Structural self-check for the property tests: parent/child
  /// consistency, alive/free-list partitioning, per-node block sizing,
  /// sibling-block uniqueness, node-count accounting, and the path-prefix
  /// monotonicity invariants — a node's parent is always at least as
  /// recently used and at least as pinned as the node, because touches and
  /// pins only ever cover root-down path prefixes. Returns an empty string
  /// when every invariant holds, else a description of the first
  /// violation.
  std::string check_invariants() const;

 private:
  struct Node {
    std::vector<TokenId> block;          // block_size tokens (root: empty)
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    std::uint64_t last_access = 0;
    std::uint32_t ref_count = 0;
    bool alive = false;
  };

  NodeId find_child(NodeId node, std::span<const TokenId> block) const;
  NodeId add_child(NodeId node, std::span<const TokenId> block,
                   std::uint64_t now);
  void remove_node(NodeId id);

  std::size_t block_size_;
  std::vector<Node> nodes_;      // index 0 is the root
  std::vector<NodeId> free_list_;
  std::size_t num_blocks_ = 0;
};

}  // namespace llmq::cache
