#include "cache/prefix_cache.hpp"

#include <algorithm>

#include "util/token_ops.hpp"

namespace llmq::cache {

// Tripwire: growing CacheStats without extending the accumulate/delta
// helpers below makes the new counter silently disappear from every
// per-session and fleet-aggregate report. If this assert fires, add the
// field to BOTH operators (and to the coverage test in tests/cache),
// then update the expected size.
static_assert(sizeof(CacheStats) == 7 * sizeof(std::uint64_t),
              "CacheStats changed: update operator+=/-= and tests/cache");

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  lookups += o.lookups;
  hit_tokens += o.hit_tokens;
  lookup_tokens += o.lookup_tokens;
  inserted_blocks += o.inserted_blocks;
  evicted_blocks += o.evicted_blocks;
  demoted_blocks += o.demoted_blocks;
  promoted_blocks += o.promoted_blocks;
  return *this;
}

CacheStats& CacheStats::operator-=(const CacheStats& o) {
  lookups -= o.lookups;
  hit_tokens -= o.hit_tokens;
  lookup_tokens -= o.lookup_tokens;
  inserted_blocks -= o.inserted_blocks;
  evicted_blocks -= o.evicted_blocks;
  demoted_blocks -= o.demoted_blocks;
  promoted_blocks -= o.promoted_blocks;
  return *this;
}

PrefixCache::PrefixCache(CacheConfig config)
    : config_(config), pool_(config.capacity_blocks) {
  if (config_.tiers < 1) config_.tiers = 1;
  if (config_.tiers > 3) config_.tiers = 3;
  const std::size_t n_trees =
      config_.lock_stripes > 0 ? config_.lock_stripes : 1;
  trees_.reserve(n_trees);
  for (std::size_t i = 0; i < n_trees; ++i)
    trees_.emplace_back(config_.block_size);
  if (config_.lock_stripes > 0)
    locks_ = std::make_unique<LockState>(config_.lock_stripes);
}

std::uint32_t PrefixCache::stripe_of(std::span<const TokenId> prompt) const {
  if (trees_.size() == 1) return 0;
  // Vectorized hash over the first (root) token block. Prompts can only
  // share tree structure below the root when they share their entire
  // first block, so hashing exactly that block guarantees related prompts
  // land on the same stripe; unrelated prompts that collide merely
  // coexist as distinct root children of the same per-stripe tree,
  // exactly as they would in one tree. Striped == unstriped behavior
  // holds for ANY stripe hash (the tests pin it), so swapping the scalar
  // FNV for token_ops::hash changed no observable.
  const std::size_t n = std::min(prompt.size(), config_.block_size);
  const std::uint64_t h = util::token_ops::hash(prompt.data(), n);
  return static_cast<std::uint32_t>(h % trees_.size());
}

std::unique_lock<std::mutex> PrefixCache::lock_stripe(std::uint32_t s) const {
  if (!locks_) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(locks_->stripe_mu[s]);
}

std::unique_lock<std::mutex> PrefixCache::lock_acct() const {
  if (!locks_) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(locks_->acct_mu);
}

std::vector<std::unique_lock<std::mutex>> PrefixCache::lock_all_stripes()
    const {
  std::vector<std::unique_lock<std::mutex>> held;
  if (!locks_) return held;
  held.reserve(locks_->stripe_mu.size());
  // Ascending index — the fixed stripe-lock order that makes multi-stripe
  // acquisition deadlock-free against every other path.
  for (std::mutex& m : locks_->stripe_mu) held.emplace_back(m);
  return held;
}

CacheStats PrefixCache::stats() const {
  auto acct = lock_acct();
  return stats_;
}

std::size_t PrefixCache::resident_blocks() const {
  auto all = lock_all_stripes();
  std::size_t n = 0;
  for (const RadixTree& t : trees_) n += t.num_blocks();
  return n;
}

std::size_t PrefixCache::gpu_resident_blocks() const {
  auto acct = lock_acct();
  return pool_.used();
}

std::size_t PrefixCache::tier_resident_blocks(std::uint8_t tier) const {
  auto acct = lock_acct();
  if (tier == 0) return pool_.used();
  return tier == 1 ? host_used_ : disk_used_;
}

std::size_t PrefixCache::pinned_blocks() const {
  auto all = lock_all_stripes();
  std::size_t n = 0;
  for (const RadixTree& t : trees_) n += t.pinned_blocks();
  return n;
}

std::vector<NodeId> PrefixCache::acquire_path() {
  if (path_pool_.empty()) return {};
  std::vector<NodeId> v = std::move(path_pool_.back());
  path_pool_.pop_back();
  v.clear();
  return v;
}

void PrefixCache::recycle_path(std::vector<NodeId>&& path) {
  if (path.capacity() > 0) path_pool_.push_back(std::move(path));
}

CacheLease PrefixCache::pinning_match(RadixTree& tree, std::uint32_t stripe,
                                      std::span<const TokenId> prompt) {
  // Pre: stripe's mutex and the accounting mutex held (when striped);
  // tiered caches hold ALL stripe mutexes (promotion may demote victims
  // from any stripe).
  CacheLease lease;
  lease.path = acquire_path();
  lease.cached_tokens = tree.match_into(prompt, lease.path);
  tree.touch(lease.path, clock_);
  tree.pin(lease.path);
  outstanding_pins_ += lease.path.size();
  lease.stripe = stripe;
  if (tiered()) {
    // Promotion-on-hit: a lower-tier match is pulled back to GPU before
    // the lease hands it out — pinned blocks are always GPU-resident,
    // and the engine prices the transfer the lease reports into TTFT.
    std::size_t host = 0, disk = 0;
    if (promote_pinned_path_locked(tree, lease.path, host, disk, /*cls=*/0))
      lease.cached_tokens = lease.path.size() * config_.block_size;
    lease.promoted_host_blocks = host;
    lease.promoted_disk_blocks = disk;
  }
  return lease;
}

CacheLease PrefixCache::lookup(std::span<const TokenId> prompt) {
  const std::uint32_t s = stripe_of(prompt);
  // Tiered lookups can demote blocks in any stripe to make promotion
  // room, so they take the full lock set; flat lookups stay one-stripe.
  auto all = tiered() ? lock_all_stripes()
                      : std::vector<std::unique_lock<std::mutex>>{};
  auto stripe = tiered() ? std::unique_lock<std::mutex>() : lock_stripe(s);
  auto acct = lock_acct();
  ++clock_;
  // A disabled cache must not register lookup traffic: the stats feed
  // hit-rate denominators, and the "No Cache" ablation arm reads them.
  if (!config_.enabled) return CacheLease{};
  ++stats_.lookups;
  stats_.lookup_tokens += prompt.size();
  CacheLease lease = pinning_match(trees_[s], s, prompt);
  stats_.hit_tokens += lease.cached_tokens;
  trace(EventKind::CacheLookup, prompt.size(), lease.cached_tokens,
        lease.path.size());
  return lease;
}

CacheLease PrefixCache::resume_lookup(std::span<const TokenId> prompt) {
  const std::uint32_t s = stripe_of(prompt);
  auto all = tiered() ? lock_all_stripes()
                      : std::vector<std::unique_lock<std::mutex>>{};
  auto stripe = tiered() ? std::unique_lock<std::mutex>() : lock_stripe(s);
  auto acct = lock_acct();
  ++clock_;
  if (!config_.enabled) return CacheLease{};
  // Pin + touch only: the resuming request's lookup stats were counted at
  // first admission and must not count again.
  CacheLease lease = pinning_match(trees_[s], s, prompt);
  trace(EventKind::CacheLookup, prompt.size(), lease.cached_tokens,
        lease.path.size(), /*cls=*/1);
  return lease;
}

std::size_t PrefixCache::peek(std::span<const TokenId> prompt) const {
  if (!config_.enabled) return 0;
  const std::uint32_t s = stripe_of(prompt);
  // Stripe lock only: the tree walk must not race concurrent structural
  // mutation, but peek touches no counter, recency stamp, or clock — the
  // probe stays invisible to every observable the stats/LRU tests pin.
  auto stripe = lock_stripe(s);
  return trees_[s].match_tokens(prompt);
}

TierPeek PrefixCache::peek_tiers(std::span<const TokenId> prompt) const {
  TierPeek out;
  if (!config_.enabled) return out;
  const std::uint32_t s = stripe_of(prompt);
  // Same contract as peek(): stripe lock for structural safety only; no
  // counter, recency stamp, clock, or tier is touched.
  auto stripe = lock_stripe(s);
  trees_[s].match_tier_tokens(prompt, out.gpu_tokens, out.host_tokens,
                              out.disk_tokens);
  return out;
}

std::size_t PrefixCache::admit_insert(RadixTree& tree, std::uint32_t stripe,
                                      std::span<const TokenId> prompt,
                                      CacheLease& lease, std::size_t need) {
  // Pre: stripe's mutex and the accounting mutex held (when striped).
  const std::size_t path_before = lease.path.size();
  tree.unpin(lease.path);
  outstanding_pins_ -= lease.path.size();
  std::vector<NodeId> path = acquire_path();
  const std::size_t new_blocks = tree.insert_into(prompt, clock_, need, path);
  pool_.allocate(new_blocks);
  stats_.inserted_blocks += new_blocks;
  tree.pin(path);
  outstanding_pins_ += path.size();
  lease.cached_tokens = path.size() * config_.block_size;
  recycle_path(std::move(lease.path));
  lease.path = std::move(path);
  lease.stripe = stripe;
  trace(EventKind::CacheAdmit, new_blocks, lease.path.size(), path_before);
  return new_blocks;
}

std::size_t PrefixCache::admit(std::span<const TokenId> prompt,
                               CacheLease& lease) {
  if (!config_.enabled) return 0;

  if (tiered()) {
    const std::uint32_t s = stripe_of(prompt);
    auto all = lock_all_stripes();
    auto acct = lock_acct();
    ++clock_;
    return admit_tiered_locked(trees_[s], s, prompt, lease);
  }

  if (!locks_) {
    // Single-threaded path: one tree, no locks — behavior is the
    // original unstriped sequence verbatim.
    ++clock_;
    const std::size_t full_blocks = prompt.size() / config_.block_size;
    const std::size_t have = lease.path.size();
    std::size_t need = full_blocks > have ? full_blocks - have : 0;

    // Make room: evict LRU unpinned leaves; accept a shorter insert if
    // the pool cannot satisfy the full request (everything pinned).
    if (!pool_.unlimited() && need > pool_.free()) {
      const std::size_t shortfall = need - pool_.free();
      const std::size_t evicted = trees_[0].evict_lru(shortfall);
      stats_.evicted_blocks += evicted;
      pool_.release(evicted);
      need = std::min(need, pool_.free());
      if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
    }
    return admit_insert(trees_[0], 0, prompt, lease, need);
  }

  const std::uint32_t s = stripe_of(prompt);
  {
    // Fast path: no eviction needed — one stripe plus accounting.
    auto stripe = lock_stripe(s);
    auto acct = lock_acct();
    ++clock_;
    const std::size_t full_blocks = prompt.size() / config_.block_size;
    const std::size_t have = lease.path.size();
    const std::size_t need = full_blocks > have ? full_blocks - have : 0;
    if (pool_.unlimited() || need <= pool_.free())
      return admit_insert(trees_[s], s, prompt, lease, need);
  }

  // Slow path: eviction may take victims from any stripe, so drop the
  // single-stripe locks and retake every stripe in ascending order (the
  // global lock order), then redo the sizing math — the world may have
  // changed in the window. The clock is bumped again under the new
  // locks: reusing the fast path's stamp after the gap could write an
  // older recency than a concurrent touch, breaking the tree's
  // parent-at-least-as-recent invariant. Clock values only ever need to
  // be unique and monotone at use, so the skipped value is harmless.
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  ++clock_;
  const std::size_t full_blocks = prompt.size() / config_.block_size;
  const std::size_t have = lease.path.size();
  std::size_t need = full_blocks > have ? full_blocks - have : 0;
  if (!pool_.unlimited() && need > pool_.free()) {
    const std::size_t shortfall = need - pool_.free();
    const std::size_t evicted = evict_blocks_locked(shortfall);
    stats_.evicted_blocks += evicted;
    pool_.release(evicted);
    need = std::min(need, pool_.free());
    if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
  }
  return admit_insert(trees_[s], s, prompt, lease, need);
}

std::size_t PrefixCache::evict_blocks_locked(std::size_t n) {
  if (trees_.size() == 1) return trees_[0].evict_lru(n);
  // Sharded LRU: each eviction takes the globally oldest unpinned leaf.
  // Clock stamps are globally unique (every op advances clock_ exactly
  // while holding the accounting mutex), so per-tree lru_age() values
  // never tie and the victim sequence is exactly what one merged tree
  // would produce. Ties on UINT64_MAX mean "nothing evictable" and break
  // the loop; the index tiebreak (strict <) is unreachable but keeps the
  // scan deterministic by construction.
  std::size_t evicted = 0;
  while (evicted < n) {
    std::size_t best = trees_.size();
    std::uint64_t best_age = UINT64_MAX;
    for (std::size_t i = 0; i < trees_.size(); ++i) {
      const std::uint64_t age = trees_[i].lru_age();
      if (age < best_age) {
        best_age = age;
        best = i;
      }
    }
    if (best == trees_.size()) break;  // every block pinned or interior
    evicted += trees_[best].evict_lru(1);
  }
  return evicted;
}

std::size_t PrefixCache::evict(std::size_t n) {
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  if (tiered()) {
    // The engine wants GPU headroom; cold blocks step down a tier and
    // stay servable instead of dying. Bottom-tier overflow is destroyed
    // inside the rebalance (that is where evicted_blocks grows).
    return demote_gpu_locked(n);
  }
  const std::size_t evicted = evict_blocks_locked(n);
  pool_.release(evicted);
  stats_.evicted_blocks += evicted;
  if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
  return evicted;
}

// ---- Tier machinery (all pre: every stripe mutex + acct held). ----

std::size_t PrefixCache::demote_gpu_locked(std::size_t n) {
  // One block per step, globally oldest across stripes — the same merge
  // that makes striped eviction identical to a single tree (stamps are
  // unique, so per-tree demote_age values never tie meaningfully).
  std::size_t demoted = 0;
  while (demoted < n) {
    std::size_t best = trees_.size();
    std::uint64_t best_age = UINT64_MAX;
    for (std::size_t i = 0; i < trees_.size(); ++i) {
      const std::uint64_t age = trees_[i].demote_age(0);
      if (age < best_age) {
        best_age = age;
        best = i;
      }
    }
    if (best == trees_.size()) break;  // every GPU block pinned
    if (trees_[best].demote_lru(1, 0) == 0) break;
    ++demoted;
  }
  if (demoted > 0) {
    pool_.release(demoted);
    host_used_ += demoted;
    stats_.demoted_blocks += demoted;
    trace(EventKind::TierDemote, demoted, 1, 0);
    rebalance_lower_tiers_locked();
  }
  return demoted;
}

void PrefixCache::make_gpu_room_locked(std::size_t need) {
  if (pool_.unlimited() || need <= pool_.free()) return;
  demote_gpu_locked(need - pool_.free());
}

void PrefixCache::rebalance_lower_tiers_locked() {
  if (config_.host_capacity_blocks > 0 &&
      host_used_ > config_.host_capacity_blocks) {
    const std::size_t excess = host_used_ - config_.host_capacity_blocks;
    if (config_.tiers >= 3) {
      // Push host overflow down to disk, globally oldest first. Host
      // blocks are never pinned (pinned => GPU), so this always clears
      // the full excess.
      std::size_t moved = 0;
      while (moved < excess) {
        std::size_t best = trees_.size();
        std::uint64_t best_age = UINT64_MAX;
        for (std::size_t i = 0; i < trees_.size(); ++i) {
          const std::uint64_t age = trees_[i].demote_age(1);
          if (age < best_age) {
            best_age = age;
            best = i;
          }
        }
        if (best == trees_.size()) break;
        if (trees_[best].demote_lru(1, 1) == 0) break;
        ++moved;
      }
      host_used_ -= moved;
      disk_used_ += moved;
      stats_.demoted_blocks += moved;
      if (moved > 0) trace(EventKind::TierDemote, moved, 2, 1);
    } else {
      // Host IS the bottom tier: overflow dies for real.
      host_used_ -= evict_bottom_locked(1, excess);
    }
  }
  if (config_.tiers >= 3 && config_.disk_capacity_blocks > 0 &&
      disk_used_ > config_.disk_capacity_blocks)
    disk_used_ -=
        evict_bottom_locked(2, disk_used_ - config_.disk_capacity_blocks);
}

std::size_t PrefixCache::evict_bottom_locked(std::uint8_t tier,
                                             std::size_t n) {
  std::size_t evicted = 0;
  while (evicted < n) {
    std::size_t best = trees_.size();
    std::uint64_t best_age = UINT64_MAX;
    for (std::size_t i = 0; i < trees_.size(); ++i) {
      const std::uint64_t age = trees_[i].evict_age(tier);
      if (age < best_age) {
        best_age = age;
        best = i;
      }
    }
    if (best == trees_.size()) break;
    evicted += trees_[best].evict_lru_tier(1, tier);
  }
  if (evicted > 0) {
    stats_.evicted_blocks += evicted;
    trace(EventKind::CacheEvict, evicted, tier, 0);
  }
  return evicted;
}

bool PrefixCache::promote_pinned_path_locked(RadixTree& tree,
                                             std::vector<NodeId>& path,
                                             std::size_t& host,
                                             std::size_t& disk,
                                             std::uint8_t cls) {
  host = 0;
  disk = 0;
  std::size_t lower_host = 0, lower_disk = 0;
  tree.count_tiered(path, lower_host, lower_disk);
  const std::size_t lower = lower_host + lower_disk;
  if (lower == 0) return false;
  // The path is already pinned, which is what keeps make_gpu_room's
  // demotion scan away from it.
  make_gpu_room_locked(lower);
  bool truncated = false;
  if (!pool_.unlimited() && pool_.free() < lower) {
    // Pin-saturated GPU pool: keep the longest prefix whose lower-tier
    // blocks fit, unpin and drop the tail — the request recomputes those
    // tokens instead of reading them back.
    const std::size_t free = pool_.free();
    std::size_t keep = 0, used = 0;
    for (NodeId id : path) {
      const bool lower_node = tree.node_tier(id) != 0;
      if (lower_node && used == free) break;
      used += lower_node;
      ++keep;
    }
    tree.unpin(std::span<const NodeId>(path.data() + keep,
                                       path.size() - keep));
    outstanding_pins_ -= path.size() - keep;
    path.resize(keep);
    truncated = true;
  }
  tree.count_tiered(path, host, disk);
  if (host + disk > 0) {
    tree.promote_path(path);
    pool_.allocate(host + disk);
    host_used_ -= host;
    disk_used_ -= disk;
    stats_.promoted_blocks += host + disk;
    trace(EventKind::TierPromote, host, disk, path.size(), cls);
  }
  return truncated;
}

std::size_t PrefixCache::admit_tiered_locked(RadixTree& tree,
                                             std::uint32_t stripe,
                                             std::span<const TokenId> prompt,
                                             CacheLease& lease) {
  const std::size_t path_before = lease.path.size();
  // Drop the lookup lease and re-match fresh: another request may have
  // grown (or demotion may have cooled) the matched prefix since.
  tree.unpin(lease.path);
  outstanding_pins_ -= lease.path.size();
  std::vector<NodeId> path = acquire_path();
  tree.match_into(prompt, path);
  tree.touch(path, clock_);
  tree.pin(path);
  outstanding_pins_ += path.size();
  // Refresh-promote the matched prefix BEFORE inserting new children:
  // inserting GPU-born children under a demoted (lower-tier) parent
  // would break tier monotonicity, and pinning a lower-tier node breaks
  // pinned => GPU-resident. Prefill just recomputed every prompt token
  // on-GPU, so this promotion is a free refresh (cls=1), not a priced
  // transfer.
  std::size_t host = 0, disk = 0;
  const bool truncated =
      promote_pinned_path_locked(tree, path, host, disk, /*cls=*/1);
  std::size_t new_blocks = 0;
  if (!truncated) {
    const std::size_t full_blocks = prompt.size() / config_.block_size;
    std::size_t need =
        full_blocks > path.size() ? full_blocks - path.size() : 0;
    if (need > 0) {
      make_gpu_room_locked(need);
      if (!pool_.unlimited()) need = std::min(need, pool_.free());
      tree.unpin(path);
      outstanding_pins_ -= path.size();
      std::vector<NodeId> full_path = acquire_path();
      new_blocks = tree.insert_into(prompt, clock_, need, full_path);
      pool_.allocate(new_blocks);
      stats_.inserted_blocks += new_blocks;
      tree.pin(full_path);
      outstanding_pins_ += full_path.size();
      recycle_path(std::move(path));
      path = std::move(full_path);
    }
  }
  lease.cached_tokens = path.size() * config_.block_size;
  recycle_path(std::move(lease.path));
  lease.path = std::move(path);
  lease.stripe = stripe;
  trace(EventKind::CacheAdmit, new_blocks, lease.path.size(), path_before);
  return new_blocks;
}

std::size_t PrefixCache::admit_migrated(std::span<const TokenId> tokens) {
  if (!config_.enabled) return 0;
  const std::uint32_t s = stripe_of(tokens);
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  ++clock_;
  RadixTree& tree = trees_[s];
  std::vector<NodeId> path = acquire_path();
  tree.match_into(tokens, path);
  tree.touch(path, clock_);
  if (tiered()) {
    // Same monotonicity hazard as admit(): refresh-promote the matched
    // prefix before hanging new GPU blocks under it. The migrated bytes
    // landed in GPU memory either way (cls=1: not a priced transfer —
    // the fleet already charged the inter-replica copy).
    tree.pin(path);
    outstanding_pins_ += path.size();
    std::size_t host = 0, disk = 0;
    const bool truncated =
        promote_pinned_path_locked(tree, path, host, disk, /*cls=*/1);
    tree.unpin(path);
    outstanding_pins_ -= path.size();
    if (truncated) {  // pin-saturated pool: nothing more fits
      recycle_path(std::move(path));
      return 0;
    }
  }
  const std::size_t full_blocks = tokens.size() / config_.block_size;
  std::size_t need = full_blocks > path.size() ? full_blocks - path.size() : 0;
  std::size_t new_blocks = 0;
  if (need > 0) {
    if (tiered()) {
      make_gpu_room_locked(need);
    } else if (!pool_.unlimited() && need > pool_.free()) {
      const std::size_t evicted = evict_blocks_locked(need - pool_.free());
      stats_.evicted_blocks += evicted;
      pool_.release(evicted);
      if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
    }
    if (!pool_.unlimited()) need = std::min(need, pool_.free());
    std::vector<NodeId> full_path = acquire_path();
    new_blocks = tree.insert_into(tokens, clock_, need, full_path);
    pool_.allocate(new_blocks);
    stats_.inserted_blocks += new_blocks;
    recycle_path(std::move(full_path));
  }
  recycle_path(std::move(path));
  // No CacheLookup/CacheAdmit events and no hit credit: migrated
  // prefixes must never read as prefix hits (the fleet's PrefixMigrate
  // event is the observable), and the audit's pin-balance rules only
  // cover lease traffic.
  return new_blocks;
}

PrefixCache::MigrationBatch PrefixCache::begin_migration(
    std::size_t max_blocks) {
  MigrationBatch batch;
  if (!config_.enabled || max_blocks == 0) return batch;
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  ++clock_;
  // Hottest leaves across every stripe, merged by recency (stamps are
  // globally unique, so the merged order is total and deterministic).
  struct Cand {
    std::uint64_t age;
    std::uint32_t stripe;
    NodeId leaf;
  };
  std::vector<Cand> cands;
  std::vector<NodeId> leaves;
  for (std::uint32_t s = 0; s < trees_.size(); ++s) {
    trees_[s].hottest_leaves(max_blocks, leaves);
    for (NodeId id : leaves)
      cands.push_back({trees_[s].node_last_access(id), s, id});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.age != b.age) return a.age > b.age;
    if (a.stripe != b.stripe) return a.stripe < b.stripe;
    return a.leaf < b.leaf;
  });
  std::vector<NodeId> nodes;
  for (const Cand& c : cands) {
    if (batch.blocks >= max_blocks) break;
    RadixTree& tree = trees_[c.stripe];
    tree.path_nodes(c.leaf, nodes);
    // Donor pins must stay GPU-only (pinned => GPU-resident), so the
    // prefix is cut at the first lower-tier node — migration streams the
    // hot GPU-resident part; the cold tail stays where it is.
    std::size_t keep = 0;
    for (NodeId id : nodes) {
      if (tree.node_tier(id) != 0) break;
      ++keep;
    }
    nodes.resize(keep);
    if (nodes.empty()) continue;
    CacheLease lease;
    lease.path = acquire_path();
    lease.path.assign(nodes.begin(), nodes.end());
    lease.stripe = c.stripe;
    lease.cached_tokens = nodes.size() * config_.block_size;
    tree.pin(lease.path);
    outstanding_pins_ += lease.path.size();
    tokenizer::TokenSeq toks;
    tree.path_tokens(nodes.back(), toks);
    batch.blocks += lease.path.size();
    batch.prefixes.push_back(std::move(toks));
    batch.leases.push_back(std::move(lease));
  }
  return batch;
}

void PrefixCache::end_migration(MigrationBatch& batch) {
  if (!config_.enabled) return;
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  for (CacheLease& lease : batch.leases) {
    trees_[lease.stripe].unpin(lease.path);
    outstanding_pins_ -= lease.path.size();
    recycle_path(std::move(lease.path));
  }
  batch.leases.clear();
  batch.prefixes.clear();
  batch.blocks = 0;
}

void PrefixCache::release_locked(CacheLease& lease) {
  RadixTree& tree = trees_[lease.stripe];
  tree.unpin(lease.path);
  outstanding_pins_ -= lease.path.size();
  trace(EventKind::CacheRelease, lease.path.size(), 0, 0);
  recycle_path(std::move(lease.path));
  lease.path = std::vector<NodeId>();  // moved-from: restore a defined empty
  lease.cached_tokens = 0;
  lease.promoted_host_blocks = 0;
  lease.promoted_disk_blocks = 0;
}

void PrefixCache::release(CacheLease& lease) {
  if (!config_.enabled) return;
  auto stripe = lock_stripe(lease.stripe);
  auto acct = lock_acct();
  release_locked(lease);
}

void PrefixCache::cancel_lookup(CacheLease& lease, std::size_t prompt_tokens) {
  if (!config_.enabled) return;
  auto stripe = lock_stripe(lease.stripe);
  auto acct = lock_acct();
  --stats_.lookups;
  stats_.lookup_tokens -= prompt_tokens;
  stats_.hit_tokens -= lease.cached_tokens;
  // Stat-undo only; the release below emits the CacheRelease that
  // balances this lease's pins (one unpin record, never two).
  trace(EventKind::CacheCancelLookup, prompt_tokens, lease.cached_tokens, 0);
  release_locked(lease);
}

std::string PrefixCache::check_invariants() const {
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  std::size_t resident = 0;
  std::uint64_t pins = 0;
  std::size_t gpu = 0, host = 0, disk = 0;
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    std::string tree = trees_[i].check_invariants();
    if (!tree.empty())
      return "tree[" + std::to_string(i) + "]: " + tree;
    resident += trees_[i].num_blocks();
    pins += trees_[i].total_ref_count();
    gpu += trees_[i].tier_blocks(0);
    host += trees_[i].tier_blocks(1);
    disk += trees_[i].tier_blocks(2);
  }
  // Tier ledger: every resident block lives in exactly one tier, the
  // per-tier walked totals match the pool/counter accounting, and a flat
  // cache never grows lower-tier blocks.
  if (gpu + host + disk != resident)
    return "tier totals do not sum to resident blocks";
  if (gpu != pool_.used())
    return "GPU tier ledger out of sync with pool usage";
  if (host != host_used_)
    return "host tier ledger out of sync with host_used_";
  if (disk != disk_used_)
    return "disk tier ledger out of sync with disk_used_";
  if (!tiered() && host + disk > 0)
    return "flat cache holds lower-tier blocks";
  if (config_.tiers < 3 && disk > 0)
    return "disk blocks without a disk tier";
  if (tiered() && config_.host_capacity_blocks > 0 &&
      host > config_.host_capacity_blocks)
    return "host tier over capacity";
  if (tiered() && config_.disk_capacity_blocks > 0 &&
      disk > config_.disk_capacity_blocks)
    return "disk tier over capacity";
  if (stats_.inserted_blocks - stats_.evicted_blocks != resident)
    return "inserted - evicted does not equal resident blocks";
  if (!pool_.unlimited() && pool_.used() > pool_.capacity())
    return "pool over capacity";
  if (pins != outstanding_pins_)
    return "tree pin count out of sync with outstanding leases";
  return std::string();
}

std::size_t PrefixCache::blocks_needed(std::size_t n_tokens,
                                       std::size_t cached_tokens) const {
  const std::size_t full = n_tokens / config_.block_size;
  const std::size_t have = cached_tokens / config_.block_size;
  return full > have ? full - have : 0;
}

}  // namespace llmq::cache
