#include "cache/prefix_cache.hpp"

#include <algorithm>

namespace llmq::cache {

// Tripwire: growing CacheStats without extending the accumulate/delta
// helpers below makes the new counter silently disappear from every
// per-session and fleet-aggregate report. If this assert fires, add the
// field to BOTH operators (and to the coverage test in tests/cache),
// then update the expected size.
static_assert(sizeof(CacheStats) == 5 * sizeof(std::uint64_t),
              "CacheStats changed: update operator+=/-= and tests/cache");

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  lookups += o.lookups;
  hit_tokens += o.hit_tokens;
  lookup_tokens += o.lookup_tokens;
  inserted_blocks += o.inserted_blocks;
  evicted_blocks += o.evicted_blocks;
  return *this;
}

CacheStats& CacheStats::operator-=(const CacheStats& o) {
  lookups -= o.lookups;
  hit_tokens -= o.hit_tokens;
  lookup_tokens -= o.lookup_tokens;
  inserted_blocks -= o.inserted_blocks;
  evicted_blocks -= o.evicted_blocks;
  return *this;
}

PrefixCache::PrefixCache(CacheConfig config)
    : config_(config),
      tree_(config.block_size),
      pool_(config.capacity_blocks) {}

CacheLease PrefixCache::pinning_match(std::span<const TokenId> prompt) {
  CacheLease lease;
  RadixTree::Match m = tree_.match(prompt);
  tree_.touch(m.path, clock_);
  tree_.pin(m.path);
  outstanding_pins_ += m.path.size();
  lease.path = std::move(m.path);
  lease.cached_tokens = m.matched_tokens;
  return lease;
}

CacheLease PrefixCache::lookup(std::span<const TokenId> prompt) {
  ++clock_;
  // A disabled cache must not register lookup traffic: the stats feed
  // hit-rate denominators, and the "No Cache" ablation arm reads them.
  if (!config_.enabled) return CacheLease{};
  ++stats_.lookups;
  stats_.lookup_tokens += prompt.size();
  CacheLease lease = pinning_match(prompt);
  stats_.hit_tokens += lease.cached_tokens;
  trace(EventKind::CacheLookup, prompt.size(), lease.cached_tokens,
        lease.path.size());
  return lease;
}

CacheLease PrefixCache::resume_lookup(std::span<const TokenId> prompt) {
  ++clock_;
  if (!config_.enabled) return CacheLease{};
  // Pin + touch only: the resuming request's lookup stats were counted at
  // first admission and must not count again.
  CacheLease lease = pinning_match(prompt);
  trace(EventKind::CacheLookup, prompt.size(), lease.cached_tokens,
        lease.path.size(), /*cls=*/1);
  return lease;
}

std::size_t PrefixCache::peek(std::span<const TokenId> prompt) const {
  if (!config_.enabled) return 0;
  return tree_.match(prompt).matched_tokens;
}

std::size_t PrefixCache::admit(std::span<const TokenId> prompt,
                               CacheLease& lease) {
  if (!config_.enabled) return 0;
  ++clock_;
  const std::size_t full_blocks = prompt.size() / config_.block_size;
  const std::size_t have = lease.path.size();
  std::size_t need = full_blocks > have ? full_blocks - have : 0;

  // Make room: evict LRU unpinned leaves; accept a shorter insert if the
  // pool cannot satisfy the full request (everything pinned).
  if (!pool_.unlimited() && need > pool_.free()) {
    const std::size_t shortfall = need - pool_.free();
    const std::size_t evicted = tree_.evict_lru(shortfall);
    stats_.evicted_blocks += evicted;
    pool_.release(evicted);
    need = std::min(need, pool_.free());
    if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
  }

  const std::size_t path_before = lease.path.size();
  tree_.unpin(lease.path);
  outstanding_pins_ -= lease.path.size();
  RadixTree::InsertResult ins = tree_.insert(prompt, clock_, need);
  pool_.allocate(ins.new_blocks);
  stats_.inserted_blocks += ins.new_blocks;
  tree_.pin(ins.path);
  outstanding_pins_ += ins.path.size();
  lease.cached_tokens = ins.path.size() * config_.block_size;
  lease.path = std::move(ins.path);
  trace(EventKind::CacheAdmit, ins.new_blocks, lease.path.size(),
        path_before);
  return ins.new_blocks;
}

std::size_t PrefixCache::evict(std::size_t n) {
  const std::size_t evicted = tree_.evict_lru(n);
  pool_.release(evicted);
  stats_.evicted_blocks += evicted;
  if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
  return evicted;
}

void PrefixCache::release(CacheLease& lease) {
  if (!config_.enabled) return;
  tree_.unpin(lease.path);
  outstanding_pins_ -= lease.path.size();
  trace(EventKind::CacheRelease, lease.path.size(), 0, 0);
  lease.path.clear();
  lease.cached_tokens = 0;
}

void PrefixCache::cancel_lookup(CacheLease& lease, std::size_t prompt_tokens) {
  if (!config_.enabled) return;
  --stats_.lookups;
  stats_.lookup_tokens -= prompt_tokens;
  stats_.hit_tokens -= lease.cached_tokens;
  // Stat-undo only; the release() below emits the CacheRelease that
  // balances this lease's pins (one unpin record, never two).
  trace(EventKind::CacheCancelLookup, prompt_tokens, lease.cached_tokens, 0);
  release(lease);
}

std::string PrefixCache::check_invariants() const {
  std::string tree = tree_.check_invariants();
  if (!tree.empty()) return "tree: " + tree;
  if (tree_.num_blocks() != pool_.used())
    return "pool usage out of sync with resident blocks";
  if (stats_.inserted_blocks - stats_.evicted_blocks != tree_.num_blocks())
    return "inserted - evicted does not equal resident blocks";
  if (!pool_.unlimited() && pool_.used() > pool_.capacity())
    return "pool over capacity";
  if (tree_.total_ref_count() != outstanding_pins_)
    return "tree pin count out of sync with outstanding leases";
  return std::string();
}

std::size_t PrefixCache::blocks_needed(std::size_t n_tokens,
                                       std::size_t cached_tokens) const {
  const std::size_t full = n_tokens / config_.block_size;
  const std::size_t have = cached_tokens / config_.block_size;
  return full > have ? full - have : 0;
}

}  // namespace llmq::cache
