#include "cache/prefix_cache.hpp"

#include <algorithm>

#include "util/token_ops.hpp"

namespace llmq::cache {

// Tripwire: growing CacheStats without extending the accumulate/delta
// helpers below makes the new counter silently disappear from every
// per-session and fleet-aggregate report. If this assert fires, add the
// field to BOTH operators (and to the coverage test in tests/cache),
// then update the expected size.
static_assert(sizeof(CacheStats) == 5 * sizeof(std::uint64_t),
              "CacheStats changed: update operator+=/-= and tests/cache");

CacheStats& CacheStats::operator+=(const CacheStats& o) {
  lookups += o.lookups;
  hit_tokens += o.hit_tokens;
  lookup_tokens += o.lookup_tokens;
  inserted_blocks += o.inserted_blocks;
  evicted_blocks += o.evicted_blocks;
  return *this;
}

CacheStats& CacheStats::operator-=(const CacheStats& o) {
  lookups -= o.lookups;
  hit_tokens -= o.hit_tokens;
  lookup_tokens -= o.lookup_tokens;
  inserted_blocks -= o.inserted_blocks;
  evicted_blocks -= o.evicted_blocks;
  return *this;
}

PrefixCache::PrefixCache(CacheConfig config)
    : config_(config), pool_(config.capacity_blocks) {
  const std::size_t n_trees =
      config_.lock_stripes > 0 ? config_.lock_stripes : 1;
  trees_.reserve(n_trees);
  for (std::size_t i = 0; i < n_trees; ++i)
    trees_.emplace_back(config_.block_size);
  if (config_.lock_stripes > 0)
    locks_ = std::make_unique<LockState>(config_.lock_stripes);
}

std::uint32_t PrefixCache::stripe_of(std::span<const TokenId> prompt) const {
  if (trees_.size() == 1) return 0;
  // Vectorized hash over the first (root) token block. Prompts can only
  // share tree structure below the root when they share their entire
  // first block, so hashing exactly that block guarantees related prompts
  // land on the same stripe; unrelated prompts that collide merely
  // coexist as distinct root children of the same per-stripe tree,
  // exactly as they would in one tree. Striped == unstriped behavior
  // holds for ANY stripe hash (the tests pin it), so swapping the scalar
  // FNV for token_ops::hash changed no observable.
  const std::size_t n = std::min(prompt.size(), config_.block_size);
  const std::uint64_t h = util::token_ops::hash(prompt.data(), n);
  return static_cast<std::uint32_t>(h % trees_.size());
}

std::unique_lock<std::mutex> PrefixCache::lock_stripe(std::uint32_t s) const {
  if (!locks_) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(locks_->stripe_mu[s]);
}

std::unique_lock<std::mutex> PrefixCache::lock_acct() const {
  if (!locks_) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(locks_->acct_mu);
}

std::vector<std::unique_lock<std::mutex>> PrefixCache::lock_all_stripes()
    const {
  std::vector<std::unique_lock<std::mutex>> held;
  if (!locks_) return held;
  held.reserve(locks_->stripe_mu.size());
  // Ascending index — the fixed stripe-lock order that makes multi-stripe
  // acquisition deadlock-free against every other path.
  for (std::mutex& m : locks_->stripe_mu) held.emplace_back(m);
  return held;
}

CacheStats PrefixCache::stats() const {
  auto acct = lock_acct();
  return stats_;
}

std::size_t PrefixCache::resident_blocks() const {
  auto all = lock_all_stripes();
  std::size_t n = 0;
  for (const RadixTree& t : trees_) n += t.num_blocks();
  return n;
}

std::size_t PrefixCache::pinned_blocks() const {
  auto all = lock_all_stripes();
  std::size_t n = 0;
  for (const RadixTree& t : trees_) n += t.pinned_blocks();
  return n;
}

std::vector<NodeId> PrefixCache::acquire_path() {
  if (path_pool_.empty()) return {};
  std::vector<NodeId> v = std::move(path_pool_.back());
  path_pool_.pop_back();
  v.clear();
  return v;
}

void PrefixCache::recycle_path(std::vector<NodeId>&& path) {
  if (path.capacity() > 0) path_pool_.push_back(std::move(path));
}

CacheLease PrefixCache::pinning_match(RadixTree& tree, std::uint32_t stripe,
                                      std::span<const TokenId> prompt) {
  // Pre: stripe's mutex and the accounting mutex held (when striped).
  CacheLease lease;
  lease.path = acquire_path();
  lease.cached_tokens = tree.match_into(prompt, lease.path);
  tree.touch(lease.path, clock_);
  tree.pin(lease.path);
  outstanding_pins_ += lease.path.size();
  lease.stripe = stripe;
  return lease;
}

CacheLease PrefixCache::lookup(std::span<const TokenId> prompt) {
  const std::uint32_t s = stripe_of(prompt);
  auto stripe = lock_stripe(s);
  auto acct = lock_acct();
  ++clock_;
  // A disabled cache must not register lookup traffic: the stats feed
  // hit-rate denominators, and the "No Cache" ablation arm reads them.
  if (!config_.enabled) return CacheLease{};
  ++stats_.lookups;
  stats_.lookup_tokens += prompt.size();
  CacheLease lease = pinning_match(trees_[s], s, prompt);
  stats_.hit_tokens += lease.cached_tokens;
  trace(EventKind::CacheLookup, prompt.size(), lease.cached_tokens,
        lease.path.size());
  return lease;
}

CacheLease PrefixCache::resume_lookup(std::span<const TokenId> prompt) {
  const std::uint32_t s = stripe_of(prompt);
  auto stripe = lock_stripe(s);
  auto acct = lock_acct();
  ++clock_;
  if (!config_.enabled) return CacheLease{};
  // Pin + touch only: the resuming request's lookup stats were counted at
  // first admission and must not count again.
  CacheLease lease = pinning_match(trees_[s], s, prompt);
  trace(EventKind::CacheLookup, prompt.size(), lease.cached_tokens,
        lease.path.size(), /*cls=*/1);
  return lease;
}

std::size_t PrefixCache::peek(std::span<const TokenId> prompt) const {
  if (!config_.enabled) return 0;
  const std::uint32_t s = stripe_of(prompt);
  // Stripe lock only: the tree walk must not race concurrent structural
  // mutation, but peek touches no counter, recency stamp, or clock — the
  // probe stays invisible to every observable the stats/LRU tests pin.
  auto stripe = lock_stripe(s);
  return trees_[s].match_tokens(prompt);
}

std::size_t PrefixCache::admit_insert(RadixTree& tree, std::uint32_t stripe,
                                      std::span<const TokenId> prompt,
                                      CacheLease& lease, std::size_t need) {
  // Pre: stripe's mutex and the accounting mutex held (when striped).
  const std::size_t path_before = lease.path.size();
  tree.unpin(lease.path);
  outstanding_pins_ -= lease.path.size();
  std::vector<NodeId> path = acquire_path();
  const std::size_t new_blocks = tree.insert_into(prompt, clock_, need, path);
  pool_.allocate(new_blocks);
  stats_.inserted_blocks += new_blocks;
  tree.pin(path);
  outstanding_pins_ += path.size();
  lease.cached_tokens = path.size() * config_.block_size;
  recycle_path(std::move(lease.path));
  lease.path = std::move(path);
  lease.stripe = stripe;
  trace(EventKind::CacheAdmit, new_blocks, lease.path.size(), path_before);
  return new_blocks;
}

std::size_t PrefixCache::admit(std::span<const TokenId> prompt,
                               CacheLease& lease) {
  if (!config_.enabled) return 0;

  if (!locks_) {
    // Single-threaded path: one tree, no locks — behavior is the
    // original unstriped sequence verbatim.
    ++clock_;
    const std::size_t full_blocks = prompt.size() / config_.block_size;
    const std::size_t have = lease.path.size();
    std::size_t need = full_blocks > have ? full_blocks - have : 0;

    // Make room: evict LRU unpinned leaves; accept a shorter insert if
    // the pool cannot satisfy the full request (everything pinned).
    if (!pool_.unlimited() && need > pool_.free()) {
      const std::size_t shortfall = need - pool_.free();
      const std::size_t evicted = trees_[0].evict_lru(shortfall);
      stats_.evicted_blocks += evicted;
      pool_.release(evicted);
      need = std::min(need, pool_.free());
      if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
    }
    return admit_insert(trees_[0], 0, prompt, lease, need);
  }

  const std::uint32_t s = stripe_of(prompt);
  {
    // Fast path: no eviction needed — one stripe plus accounting.
    auto stripe = lock_stripe(s);
    auto acct = lock_acct();
    ++clock_;
    const std::size_t full_blocks = prompt.size() / config_.block_size;
    const std::size_t have = lease.path.size();
    const std::size_t need = full_blocks > have ? full_blocks - have : 0;
    if (pool_.unlimited() || need <= pool_.free())
      return admit_insert(trees_[s], s, prompt, lease, need);
  }

  // Slow path: eviction may take victims from any stripe, so drop the
  // single-stripe locks and retake every stripe in ascending order (the
  // global lock order), then redo the sizing math — the world may have
  // changed in the window. The clock is bumped again under the new
  // locks: reusing the fast path's stamp after the gap could write an
  // older recency than a concurrent touch, breaking the tree's
  // parent-at-least-as-recent invariant. Clock values only ever need to
  // be unique and monotone at use, so the skipped value is harmless.
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  ++clock_;
  const std::size_t full_blocks = prompt.size() / config_.block_size;
  const std::size_t have = lease.path.size();
  std::size_t need = full_blocks > have ? full_blocks - have : 0;
  if (!pool_.unlimited() && need > pool_.free()) {
    const std::size_t shortfall = need - pool_.free();
    const std::size_t evicted = evict_blocks_locked(shortfall);
    stats_.evicted_blocks += evicted;
    pool_.release(evicted);
    need = std::min(need, pool_.free());
    if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
  }
  return admit_insert(trees_[s], s, prompt, lease, need);
}

std::size_t PrefixCache::evict_blocks_locked(std::size_t n) {
  if (trees_.size() == 1) return trees_[0].evict_lru(n);
  // Sharded LRU: each eviction takes the globally oldest unpinned leaf.
  // Clock stamps are globally unique (every op advances clock_ exactly
  // while holding the accounting mutex), so per-tree lru_age() values
  // never tie and the victim sequence is exactly what one merged tree
  // would produce. Ties on UINT64_MAX mean "nothing evictable" and break
  // the loop; the index tiebreak (strict <) is unreachable but keeps the
  // scan deterministic by construction.
  std::size_t evicted = 0;
  while (evicted < n) {
    std::size_t best = trees_.size();
    std::uint64_t best_age = UINT64_MAX;
    for (std::size_t i = 0; i < trees_.size(); ++i) {
      const std::uint64_t age = trees_[i].lru_age();
      if (age < best_age) {
        best_age = age;
        best = i;
      }
    }
    if (best == trees_.size()) break;  // every block pinned or interior
    evicted += trees_[best].evict_lru(1);
  }
  return evicted;
}

std::size_t PrefixCache::evict(std::size_t n) {
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  const std::size_t evicted = evict_blocks_locked(n);
  pool_.release(evicted);
  stats_.evicted_blocks += evicted;
  if (evicted > 0) trace(EventKind::CacheEvict, evicted, 0, 0);
  return evicted;
}

void PrefixCache::release_locked(CacheLease& lease) {
  RadixTree& tree = trees_[lease.stripe];
  tree.unpin(lease.path);
  outstanding_pins_ -= lease.path.size();
  trace(EventKind::CacheRelease, lease.path.size(), 0, 0);
  recycle_path(std::move(lease.path));
  lease.path = std::vector<NodeId>();  // moved-from: restore a defined empty
  lease.cached_tokens = 0;
}

void PrefixCache::release(CacheLease& lease) {
  if (!config_.enabled) return;
  auto stripe = lock_stripe(lease.stripe);
  auto acct = lock_acct();
  release_locked(lease);
}

void PrefixCache::cancel_lookup(CacheLease& lease, std::size_t prompt_tokens) {
  if (!config_.enabled) return;
  auto stripe = lock_stripe(lease.stripe);
  auto acct = lock_acct();
  --stats_.lookups;
  stats_.lookup_tokens -= prompt_tokens;
  stats_.hit_tokens -= lease.cached_tokens;
  // Stat-undo only; the release below emits the CacheRelease that
  // balances this lease's pins (one unpin record, never two).
  trace(EventKind::CacheCancelLookup, prompt_tokens, lease.cached_tokens, 0);
  release_locked(lease);
}

std::string PrefixCache::check_invariants() const {
  auto all = lock_all_stripes();
  auto acct = lock_acct();
  std::size_t resident = 0;
  std::uint64_t pins = 0;
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    std::string tree = trees_[i].check_invariants();
    if (!tree.empty())
      return "tree[" + std::to_string(i) + "]: " + tree;
    resident += trees_[i].num_blocks();
    pins += trees_[i].total_ref_count();
  }
  if (resident != pool_.used())
    return "pool usage out of sync with resident blocks";
  if (stats_.inserted_blocks - stats_.evicted_blocks != resident)
    return "inserted - evicted does not equal resident blocks";
  if (!pool_.unlimited() && pool_.used() > pool_.capacity())
    return "pool over capacity";
  if (pins != outstanding_pins_)
    return "tree pin count out of sync with outstanding leases";
  return std::string();
}

std::size_t PrefixCache::blocks_needed(std::size_t n_tokens,
                                       std::size_t cached_tokens) const {
  const std::size_t full = n_tokens / config_.block_size;
  const std::size_t have = cached_tokens / config_.block_size;
  return full > have ? full - have : 0;
}

}  // namespace llmq::cache
