#pragma once
// KV-cache block accounting.
//
// Serving engines (vLLM's PagedAttention) manage GPU memory for attention
// key/value state in fixed-size token blocks. The pool tracks how many
// blocks exist, how many are free, and enforces capacity — the scarcity
// that makes prefix *sharing* valuable: shared blocks are charged once,
// freeing memory for larger decode batches (the mechanism behind the
// paper's Table 7 observation).

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace llmq::cache {

class BlockPool {
 public:
  /// `capacity` = total blocks backed by GPU memory; 0 means unlimited
  /// (useful for pure hit-rate studies).
  explicit BlockPool(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  bool unlimited() const { return capacity_ == 0; }
  std::size_t used() const { return used_; }
  std::size_t free() const {
    return unlimited() ? SIZE_MAX : capacity_ - used_;
  }

  bool can_allocate(std::size_t n) const { return unlimited() || used_ + n <= capacity_; }

  void allocate(std::size_t n) {
    if (!can_allocate(n))
      throw std::runtime_error("BlockPool: out of blocks");
    used_ += n;
  }

  void release(std::size_t n) {
    if (n > used_) throw std::logic_error("BlockPool: double free");
    used_ -= n;
  }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
};

}  // namespace llmq::cache
