#include "cache/radix_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace llmq::cache {

RadixTree::RadixTree(std::size_t block_size) : block_size_(block_size) {
  if (block_size == 0)
    throw std::invalid_argument("RadixTree: block_size must be positive");
  nodes_.push_back(Node{});  // root
  nodes_[0].alive = true;
}

NodeId RadixTree::find_child(NodeId node, std::span<const TokenId> block) const {
  for (NodeId c : nodes_[node].children) {
    const auto& b = nodes_[c].block;
    if (std::equal(b.begin(), b.end(), block.begin(), block.end())) return c;
  }
  return kNoNode;
}

NodeId RadixTree::add_child(NodeId node, std::span<const TokenId> block,
                            std::uint64_t now) {
  NodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{});
  }
  Node& n = nodes_[id];
  n.block.assign(block.begin(), block.end());
  n.parent = node;
  n.children.clear();
  n.last_access = now;
  n.ref_count = 0;
  n.alive = true;
  nodes_[node].children.push_back(id);
  ++num_blocks_;
  return id;
}

void RadixTree::remove_node(NodeId id) {
  Node& n = nodes_[id];
  // Eviction must never take a pinned block (an in-flight request's KV
  // would dangle) or an inner node (the tree must stay prefix-closed).
  // evict_lru filters for both; enforce here so any future caller that
  // forgets fails loudly instead of corrupting leases.
  if (n.ref_count > 0)
    throw std::logic_error("RadixTree: removing a pinned node");
  if (!n.children.empty())
    throw std::logic_error("RadixTree: removing a non-leaf node");
  auto& siblings = nodes_[n.parent].children;
  siblings.erase(std::find(siblings.begin(), siblings.end(), id));
  n.alive = false;
  n.block.clear();
  free_list_.push_back(id);
  --num_blocks_;
}

RadixTree::Match RadixTree::match(std::span<const TokenId> tokens) const {
  Match out;
  NodeId cur = 0;
  std::size_t offset = 0;
  while (offset + block_size_ <= tokens.size()) {
    const NodeId child =
        find_child(cur, tokens.subspan(offset, block_size_));
    if (child == kNoNode) break;
    out.path.push_back(child);
    out.matched_tokens += block_size_;
    offset += block_size_;
    cur = child;
  }
  return out;
}

RadixTree::InsertResult RadixTree::insert(std::span<const TokenId> tokens,
                                          std::uint64_t now,
                                          std::size_t max_new_blocks) {
  InsertResult out;
  NodeId cur = 0;
  std::size_t offset = 0;
  while (offset + block_size_ <= tokens.size()) {
    const auto block = tokens.subspan(offset, block_size_);
    NodeId child = find_child(cur, block);
    if (child == kNoNode) {
      if (out.new_blocks >= max_new_blocks) break;
      child = add_child(cur, block, now);
      ++out.new_blocks;
    } else {
      nodes_[child].last_access = now;
    }
    out.path.push_back(child);
    offset += block_size_;
    cur = child;
  }
  return out;
}

void RadixTree::touch(const std::vector<NodeId>& path, std::uint64_t now) {
  for (NodeId id : path) nodes_[id].last_access = now;
}

void RadixTree::pin(const std::vector<NodeId>& path) {
  for (NodeId id : path) ++nodes_[id].ref_count;
}

void RadixTree::unpin(const std::vector<NodeId>& path) {
  for (NodeId id : path) {
    if (nodes_[id].ref_count == 0)
      throw std::logic_error("RadixTree: unpin of unpinned node");
    --nodes_[id].ref_count;
  }
}

std::size_t RadixTree::evict_lru(std::size_t want) {
  std::size_t evicted = 0;
  while (evicted < want) {
    // Scan for the LRU unpinned leaf. O(nodes) per eviction; eviction is
    // rare relative to matching in our workloads, and correctness
    // (prefix-closed tree) is what matters for the simulator.
    NodeId victim = kNoNode;
    std::uint64_t oldest = UINT64_MAX;
    for (NodeId id = 1; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (!n.alive || n.ref_count > 0 || !n.children.empty()) continue;
      if (n.last_access < oldest) {
        oldest = n.last_access;
        victim = id;
      }
    }
    if (victim == kNoNode) break;
    remove_node(victim);
    ++evicted;
  }
  return evicted;
}

std::string RadixTree::check_invariants() const {
  const auto fail = [](NodeId id, const char* what) {
    return "node " + std::to_string(id) + ": " + what;
  };
  if (nodes_.empty() || !nodes_[0].alive || nodes_[0].parent != kNoNode ||
      !nodes_[0].block.empty())
    return "root: missing, dead, parented, or non-empty block";

  std::size_t alive = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.alive) continue;
    if (id != 0) {
      ++alive;
      if (n.block.size() != block_size_) return fail(id, "block size mismatch");
      if (n.parent >= nodes_.size() || !nodes_[n.parent].alive)
        return fail(id, "dead or out-of-range parent");
      const auto& sib = nodes_[n.parent].children;
      if (std::count(sib.begin(), sib.end(), id) != 1)
        return fail(id, "not exactly once in parent's child list");
      if (n.parent != 0) {
        // Touches and pins cover root-down path prefixes, so recency and
        // pin counts are monotone down every path.
        if (nodes_[n.parent].last_access < n.last_access)
          return fail(id, "more recently used than its parent");
        if (nodes_[n.parent].ref_count < n.ref_count)
          return fail(id, "more pinned than its parent");
      }
    }
    for (NodeId c : n.children) {
      if (c >= nodes_.size() || !nodes_[c].alive || nodes_[c].parent != id)
        return fail(id, "child dead, out of range, or mis-parented");
    }
    for (std::size_t a = 0; a < n.children.size(); ++a)
      for (std::size_t b = a + 1; b < n.children.size(); ++b)
        if (nodes_[n.children[a]].block == nodes_[n.children[b]].block)
          return fail(id, "duplicate sibling blocks");
  }
  if (alive != num_blocks_) return "num_blocks out of sync with alive nodes";
  if (free_list_.size() != nodes_.size() - 1 - alive)
    return "free list does not cover the dead nodes";
  for (NodeId id : free_list_)
    if (id == 0 || id >= nodes_.size() || nodes_[id].alive)
      return fail(id, "alive, root, or out-of-range node on the free list");
  return std::string();
}

std::uint64_t RadixTree::total_ref_count() const {
  std::uint64_t n = 0;
  for (NodeId id = 1; id < nodes_.size(); ++id)
    if (nodes_[id].alive) n += nodes_[id].ref_count;
  return n;
}

std::size_t RadixTree::pinned_blocks() const {
  std::size_t n = 0;
  for (NodeId id = 1; id < nodes_.size(); ++id)
    if (nodes_[id].alive && nodes_[id].ref_count > 0) ++n;
  return n;
}

std::uint64_t RadixTree::lru_age() const {
  // Same victim filter as evict_lru: alive, unpinned, leaf.
  std::uint64_t oldest = UINT64_MAX;
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.alive || n.ref_count > 0 || !n.children.empty()) continue;
    oldest = std::min(oldest, n.last_access);
  }
  return oldest;
}

}  // namespace llmq::cache
