#include "cache/radix_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/token_ops.hpp"

namespace llmq::cache {

namespace ops = util::token_ops;

RadixTree::RadixTree(std::size_t block_size)
    : block_size_(block_size), pool_(kSlabNodes) {
  if (block_size == 0)
    throw std::invalid_argument("RadixTree: block_size must be positive");
  const auto root = pool_.allocate();  // slot 0
  pool_[root].alive = true;
  pool_[root].parent = kNoNode;
}

// ---- Child index (open addressing, linear probing). ----

void RadixTree::index_insert(ChildIndex& ix, NodeId id) {
  const std::size_t mask = ix.table.size() - 1;
  std::size_t pos = pool_[id].block_hash & mask;
  while (ix.table[pos] != kNoNode) pos = (pos + 1) & mask;
  ix.table[pos] = id;
  ++ix.size;
}

void RadixTree::index_erase(ChildIndex& ix, NodeId id) {
  const std::size_t mask = ix.table.size() - 1;
  std::size_t i = pool_[id].block_hash & mask;
  while (ix.table[i] != id) i = (i + 1) & mask;
  ix.table[i] = kNoNode;
  --ix.size;
  // Backward-shift deletion: walk the probe chain after the hole and pull
  // back any entry whose home slot does not lie strictly between the hole
  // and it (else a later lookup would stop at the hole and miss it).
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    const NodeId c = ix.table[j];
    if (c == kNoNode) return;
    const std::size_t home = pool_[c].block_hash & mask;
    const bool reachable =
        (j >= i) ? (home > i && home <= j) : (home > i || home <= j);
    if (!reachable) {
      ix.table[i] = c;
      ix.table[j] = kNoNode;
      i = j;
    }
  }
}

void RadixTree::index_rebuild(Node& n, std::size_t min_capacity) {
  std::size_t cap = 16;
  while (cap < min_capacity) cap <<= 1;
  if (n.index.table.size() < cap) n.index.table.resize(cap);
  std::fill(n.index.table.begin(), n.index.table.end(), kNoNode);
  n.index.size = 0;
  for (NodeId c : n.children) index_insert(n.index, c);
}

// ---- Core tree ops. ----

NodeId RadixTree::find_child(NodeId node,
                             std::span<const TokenId> block) const {
  const Node& n = pool_[node];
  if (!n.index.table.empty()) {
    const std::uint64_t h = ops::hash(block.data(), block.size());
    const std::size_t mask = n.index.table.size() - 1;
    for (std::size_t pos = h & mask;; pos = (pos + 1) & mask) {
      const NodeId c = n.index.table[pos];
      if (c == kNoNode) return kNoNode;
      const Node& cn = pool_[c];
      if (cn.block_hash == h &&
          ops::equal(block_span(c).data(), block.data(), block.size()))
        return c;
    }
  }
  for (NodeId c : n.children) {
    if (ops::equal(block_span(c).data(), block.data(), block.size())) return c;
  }
  return kNoNode;
}

NodeId RadixTree::add_child(NodeId node, std::span<const TokenId> block,
                            std::uint64_t now) {
  const NodeId id = static_cast<NodeId>(pool_.allocate());
  while (id / kSlabNodes >= block_slabs_.size())
    block_slabs_.push_back(
        std::make_unique<TokenId[]>(kSlabNodes * block_size_));
  TokenId* dst =
      block_slabs_[id / kSlabNodes].get() + (id % kSlabNodes) * block_size_;
  std::copy(block.begin(), block.end(), dst);

  Node& n = pool_[id];
  n.block_hash = ops::hash(block.data(), block.size());
  n.parent = node;
  n.children.clear();  // recycled slot: capacity retained, contents stale
  n.index.size = 0;
  if (!n.index.table.empty())
    std::fill(n.index.table.begin(), n.index.table.end(), kNoNode);
  n.last_access = now;
  n.ref_count = 0;
  n.tier = 0;  // new blocks are always born GPU-resident
  n.alive = true;

  Node& p = pool_[node];
  n.pos_in_parent = static_cast<std::uint32_t>(p.children.size());
  p.children.push_back(id);
  if (!p.index.table.empty()) {
    // Keep the table at load factor <= 3/4.
    if ((p.index.size + 1) * 4 > p.index.table.size() * 3)
      index_rebuild(p, p.children.size() * 2);
    else
      index_insert(p.index, id);
  } else if (p.children.size() >= kIndexMinFanout) {
    index_rebuild(p, p.children.size() * 2);
  }
  ++num_blocks_;
  return id;
}

void RadixTree::remove_node(NodeId id) {
  Node& n = pool_[id];
  // Eviction must never take a pinned block (an in-flight request's KV
  // would dangle) or an inner node (the tree must stay prefix-closed).
  // evict_lru filters for both; enforce here so any future caller that
  // forgets fails loudly instead of corrupting leases.
  if (n.ref_count > 0)
    throw std::logic_error("RadixTree: removing a pinned node");
  if (!n.children.empty())
    throw std::logic_error("RadixTree: removing a non-leaf node");
  Node& p = pool_[n.parent];
  // O(1) swap-remove: child order is unobservable (lookups go through the
  // hash index or an unordered scan), so move the last sibling into the
  // vacated position.
  const std::uint32_t pos = n.pos_in_parent;
  const NodeId moved = p.children.back();
  p.children[pos] = moved;
  pool_[moved].pos_in_parent = pos;
  p.children.pop_back();
  if (!p.index.table.empty()) index_erase(p.index, id);
  n.alive = false;
  pool_.deallocate(id);
  --num_blocks_;
}

RadixTree::Match RadixTree::match(std::span<const TokenId> tokens) const {
  Match out;
  out.matched_tokens = match_into(tokens, out.path);
  return out;
}

std::size_t RadixTree::match_tokens(std::span<const TokenId> tokens) const {
  NodeId cur = 0;
  std::size_t offset = 0;
  while (offset + block_size_ <= tokens.size()) {
    const NodeId child = find_child(cur, tokens.subspan(offset, block_size_));
    if (child == kNoNode) break;
    offset += block_size_;
    cur = child;
  }
  return offset;
}

std::size_t RadixTree::match_into(std::span<const TokenId> tokens,
                                  std::vector<NodeId>& path) const {
  path.clear();
  NodeId cur = 0;
  std::size_t offset = 0;
  while (offset + block_size_ <= tokens.size()) {
    const NodeId child = find_child(cur, tokens.subspan(offset, block_size_));
    if (child == kNoNode) break;
    path.push_back(child);
    offset += block_size_;
    cur = child;
  }
  return offset;
}

RadixTree::InsertResult RadixTree::insert(std::span<const TokenId> tokens,
                                          std::uint64_t now,
                                          std::size_t max_new_blocks) {
  InsertResult out;
  out.new_blocks = insert_into(tokens, now, max_new_blocks, out.path);
  return out;
}

std::size_t RadixTree::insert_into(std::span<const TokenId> tokens,
                                   std::uint64_t now,
                                   std::size_t max_new_blocks,
                                   std::vector<NodeId>& path) {
  path.clear();
  std::size_t new_blocks = 0;
  NodeId cur = 0;
  std::size_t offset = 0;
  while (offset + block_size_ <= tokens.size()) {
    const auto block = tokens.subspan(offset, block_size_);
    NodeId child = find_child(cur, block);
    if (child == kNoNode) {
      if (new_blocks >= max_new_blocks) break;
      child = add_child(cur, block, now);
      ++new_blocks;
    } else {
      pool_[child].last_access = now;
    }
    path.push_back(child);
    offset += block_size_;
    cur = child;
  }
  return new_blocks;
}

void RadixTree::touch(std::span<const NodeId> path, std::uint64_t now) {
  for (NodeId id : path) pool_[id].last_access = now;
}

void RadixTree::pin(std::span<const NodeId> path) {
  for (NodeId id : path) ++pool_[id].ref_count;
}

void RadixTree::unpin(std::span<const NodeId> path) {
  for (NodeId id : path) {
    if (pool_[id].ref_count == 0)
      throw std::logic_error("RadixTree: unpin of unpinned node");
    --pool_[id].ref_count;
  }
}

std::size_t RadixTree::evict_lru(std::size_t want) {
  if (want == 0) return 0;
  // One scan collects every current victim candidate into a min-heap of
  // (last_access, id); std::greater pops the oldest, lowest-id first —
  // the same victim order as the classic rescan-per-victim loop. Nothing
  // mutates recency or pins during eviction, so heap entries only go
  // stale one way: a popped parent that regained no children is still a
  // leaf. Parents exposed by removing their last child are pushed as they
  // become evictable.
  evict_heap_.clear();
  for (NodeId id = 1; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (evictable(n)) evict_heap_.emplace_back(n.last_access, id);
  }
  const auto cmp = std::greater<>{};
  std::make_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
  std::size_t evicted = 0;
  while (evicted < want && !evict_heap_.empty()) {
    std::pop_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
    const NodeId victim = evict_heap_.back().second;
    evict_heap_.pop_back();
    const NodeId parent = pool_[victim].parent;
    remove_node(victim);
    ++evicted;
    if (parent != 0 && evictable(pool_[parent])) {
      evict_heap_.emplace_back(pool_[parent].last_access, parent);
      std::push_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
    }
  }
  return evicted;
}

std::string RadixTree::check_invariants() const {
  const auto fail = [](NodeId id, const char* what) {
    return "node " + std::to_string(id) + ": " + what;
  };
  if (pool_.slots() == 0 || !pool_[0].alive || pool_[0].parent != kNoNode)
    return "root: missing, dead, or parented";

  std::size_t alive = 0;
  for (NodeId id = 0; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (!n.alive) continue;
    if (id != 0) {
      ++alive;
      const auto blk = block_span(id);
      if (blk.size() != block_size_) return fail(id, "block size mismatch");
      if (n.block_hash != ops::hash(blk.data(), blk.size()))
        return fail(id, "stale block hash");
      if (n.parent >= pool_.slots() || !pool_[n.parent].alive)
        return fail(id, "dead or out-of-range parent");
      const auto& sib = pool_[n.parent].children;
      if (n.pos_in_parent >= sib.size() || sib[n.pos_in_parent] != id)
        return fail(id, "pos_in_parent does not point back at the node");
      if (std::count(sib.begin(), sib.end(), id) != 1)
        return fail(id, "not exactly once in parent's child list");
      if (n.parent != 0) {
        // Touches and pins cover root-down path prefixes, so recency and
        // pin counts are monotone down every path.
        if (pool_[n.parent].last_access < n.last_access)
          return fail(id, "more recently used than its parent");
        if (pool_[n.parent].ref_count < n.ref_count)
          return fail(id, "more pinned than its parent");
        // Demotion is oldest-first and promotion covers root-down
        // prefixes, so tiers are monotone down every path too.
        if (pool_[n.parent].tier > n.tier)
          return fail(id, "in a higher tier than its parent");
      }
      // In-flight requests read KV from GPU memory; a pinned block in a
      // lower tier would mean a lease points at data that is not there.
      if (n.ref_count > 0 && n.tier != 0)
        return fail(id, "pinned but not GPU-resident");
    }
    for (NodeId c : n.children) {
      if (c >= pool_.slots() || !pool_[c].alive || pool_[c].parent != id)
        return fail(id, "child dead, out of range, or mis-parented");
    }
    for (std::size_t a = 0; a < n.children.size(); ++a)
      for (std::size_t b = a + 1; b < n.children.size(); ++b)
        if (ops::equal(block_span(n.children[a]), block_span(n.children[b])))
          return fail(id, "duplicate sibling blocks");
    if (!n.index.table.empty()) {
      if (n.index.size != n.children.size())
        return fail(id, "child index size out of sync");
      std::size_t filled = 0;
      for (NodeId c : n.index.table) filled += (c != kNoNode);
      if (filled != n.index.size)
        return fail(id, "child index occupancy out of sync");
      for (NodeId c : n.children)
        if (find_child(id, block_span(c)) != c)
          return fail(id, "child not reachable through its index");
    }
  }
  if (alive != num_blocks_) return "num_blocks out of sync with alive nodes";
  if (pool_.in_use() != alive + 1)  // +1: the root occupies a slot
    return "arena in_use out of sync with alive nodes";
  return std::string();
}

std::uint64_t RadixTree::total_ref_count() const {
  std::uint64_t n = 0;
  for (NodeId id = 1; id < pool_.slots(); ++id)
    if (pool_[id].alive) n += pool_[id].ref_count;
  return n;
}

std::size_t RadixTree::pinned_blocks() const {
  std::size_t n = 0;
  for (NodeId id = 1; id < pool_.slots(); ++id)
    if (pool_[id].alive && pool_[id].ref_count > 0) ++n;
  return n;
}

std::uint64_t RadixTree::lru_age() const {
  std::uint64_t oldest = UINT64_MAX;
  for (NodeId id = 1; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (evictable(n)) oldest = std::min(oldest, n.last_access);
  }
  return oldest;
}

// ---- Tier operations. ----

std::size_t RadixTree::tier_blocks(std::uint8_t tier) const {
  std::size_t n = 0;
  for (NodeId id = 1; id < pool_.slots(); ++id)
    if (pool_[id].alive && pool_[id].tier == tier) ++n;
  return n;
}

std::uint64_t RadixTree::demote_age(std::uint8_t tier) const {
  std::uint64_t oldest = UINT64_MAX;
  for (NodeId id = 1; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (n.alive && n.ref_count == 0 && n.tier == tier)
      oldest = std::min(oldest, n.last_access);
  }
  return oldest;
}

std::size_t RadixTree::demote_lru(std::size_t want, std::uint8_t from_tier) {
  if (want == 0) return 0;
  // Same single-scan min-heap as evict_lru, but over unpinned blocks of
  // one tier and with no structural change. A node with a same-tier child
  // must not demote before that child (tier monotonicity down paths);
  // recency monotonicity means the child is at least as old, but one
  // insert stamps a whole path with one clock value, so parent and child
  // can tie and the id tiebreak can order them either way. Popped nodes
  // that still have a same-tier child are therefore skipped — a deepest
  // minimal-age node always qualifies, so a caller looping want=1 drains
  // the tier in exact oldest-first order anyway.
  evict_heap_.clear();
  for (NodeId id = 1; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (n.alive && n.ref_count == 0 && n.tier == from_tier)
      evict_heap_.emplace_back(n.last_access, id);
  }
  const auto cmp = std::greater<>{};
  std::make_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
  std::size_t demoted = 0;
  while (demoted < want && !evict_heap_.empty()) {
    std::pop_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
    const NodeId victim = evict_heap_.back().second;
    evict_heap_.pop_back();
    const Node& n = pool_[victim];
    bool blocked = false;
    for (NodeId c : n.children) blocked |= (pool_[c].tier == from_tier);
    if (blocked) continue;
    pool_[victim].tier = from_tier + 1;
    ++demoted;
  }
  return demoted;
}

std::uint64_t RadixTree::evict_age(std::uint8_t tier) const {
  std::uint64_t oldest = UINT64_MAX;
  for (NodeId id = 1; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (evictable(n) && n.tier == tier) oldest = std::min(oldest, n.last_access);
  }
  return oldest;
}

std::size_t RadixTree::evict_lru_tier(std::size_t want, std::uint8_t tier) {
  if (want == 0) return 0;
  evict_heap_.clear();
  for (NodeId id = 1; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (evictable(n) && n.tier == tier)
      evict_heap_.emplace_back(n.last_access, id);
  }
  const auto cmp = std::greater<>{};
  std::make_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
  std::size_t evicted = 0;
  while (evicted < want && !evict_heap_.empty()) {
    std::pop_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
    const NodeId victim = evict_heap_.back().second;
    evict_heap_.pop_back();
    const NodeId parent = pool_[victim].parent;
    remove_node(victim);
    ++evicted;
    if (parent != 0 && evictable(pool_[parent]) &&
        pool_[parent].tier == tier) {
      evict_heap_.emplace_back(pool_[parent].last_access, parent);
      std::push_heap(evict_heap_.begin(), evict_heap_.end(), cmp);
    }
  }
  return evicted;
}

void RadixTree::match_tier_tokens(std::span<const TokenId> tokens,
                                  std::size_t& gpu, std::size_t& host,
                                  std::size_t& disk) const {
  NodeId cur = 0;
  std::size_t offset = 0;
  while (offset + block_size_ <= tokens.size()) {
    const NodeId child = find_child(cur, tokens.subspan(offset, block_size_));
    if (child == kNoNode) break;
    switch (pool_[child].tier) {
      case 0: gpu += block_size_; break;
      case 1: host += block_size_; break;
      default: disk += block_size_; break;
    }
    offset += block_size_;
    cur = child;
  }
}

void RadixTree::count_tiered(std::span<const NodeId> path, std::size_t& host,
                             std::size_t& disk) const {
  for (NodeId id : path) {
    const std::uint8_t t = pool_[id].tier;
    host += (t == 1);
    disk += (t == 2);
  }
}

void RadixTree::promote_path(std::span<const NodeId> path) {
  for (NodeId id : path) pool_[id].tier = 0;
}

void RadixTree::hottest_leaves(std::size_t max_leaves,
                               std::vector<NodeId>& out) const {
  out.clear();
  if (max_leaves == 0) return;
  // (last_access, id) of every leaf, sorted most-recent-first with the
  // lower id winning ties — deterministic regardless of slot layout.
  std::vector<std::pair<std::uint64_t, NodeId>> leaves;
  for (NodeId id = 1; id < pool_.slots(); ++id) {
    const Node& n = pool_[id];
    if (n.alive && n.children.empty()) leaves.emplace_back(n.last_access, id);
  }
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  if (leaves.size() > max_leaves) leaves.resize(max_leaves);
  for (const auto& [age, id] : leaves) out.push_back(id);
}

void RadixTree::path_tokens(NodeId id, tokenizer::TokenSeq& out) const {
  std::vector<NodeId> chain;
  path_nodes(id, chain);
  for (NodeId n : chain) {
    const auto blk = block_span(n);
    out.insert(out.end(), blk.begin(), blk.end());
  }
}

void RadixTree::path_nodes(NodeId id, std::vector<NodeId>& out) const {
  out.clear();
  for (NodeId cur = id; cur != 0; cur = pool_[cur].parent) out.push_back(cur);
  std::reverse(out.begin(), out.end());
}

}  // namespace llmq::cache
